// Command minerule is an interactive shell and script runner for the
// tightly-coupled mining system: it accepts plain SQL and MINE RULE
// statements side by side, against one in-memory database.
//
// Usage:
//
//	minerule                  # interactive shell on stdin
//	minerule -f script.sql    # run a script (';'-separated statements)
//	minerule -e "stmt"        # run one statement string
//	minerule -csv table=f.csv -hdr "a:int,b:string" ...  # preload CSV
//	minerule -db dir          # durable database (WAL + checkpointed heap files)
//
// MINE RULE statements are detected by their leading keywords; anything
// else goes to the SQL engine. Query results print as aligned tables.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"minerule"
	mrparse "minerule/internal/minerule/parse"
)

func main() {
	var (
		file    = flag.String("f", "", "script file to execute")
		expr    = flag.String("e", "", "statement(s) to execute")
		csvSpec = flag.String("csv", "", "preload CSV: table=path")
		hdr     = flag.String("hdr", "", "CSV header spec: name:type,name:type,…")
		replace = flag.Bool("replace", true, "MINE RULE replaces existing output tables")
		trace   = flag.Bool("trace", false, "print the kernel span tree after each MINE RULE run")
		load    = flag.String("load", "", "load a database directory saved with -save")
		save    = flag.String("save", "", "save the database to this directory on exit")
		dbDir   = flag.String("db", "", "durable database directory (WAL-backed; created if missing)")
	)
	flag.Parse()

	var sys *minerule.System
	switch {
	case *dbDir != "":
		if *load != "" {
			fatal(fmt.Errorf("-db and -load are mutually exclusive"))
		}
		var err error
		sys, err = minerule.Open(minerule.WithStorage(*dbDir))
		if err != nil {
			fatal(err)
		}
		defer sys.Close()
	case *load != "":
		var err error
		sys, err = minerule.LoadFrom(*load)
		if err != nil {
			fatal(err)
		}
	default:
		sys, _ = minerule.Open()
	}
	if *save != "" {
		defer func() {
			if err := sys.Save(*save); err != nil {
				fatal(err)
			}
		}()
	}

	if *csvSpec != "" {
		parts := strings.SplitN(*csvSpec, "=", 2)
		if len(parts) != 2 || *hdr == "" {
			fatal(fmt.Errorf("-csv needs table=path and -hdr"))
		}
		f, err := os.Open(parts[1])
		if err != nil {
			fatal(err)
		}
		n, err := sys.ImportCSV(parts[0], strings.Split(*hdr, ","), f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %d rows into %s\n", n, parts[0])
	}

	ro := runOpts{replace: *replace, trace: *trace}
	switch {
	case *expr != "":
		if err := runScript(sys, *expr, ro); err != nil {
			fatal(err)
		}
	case *file != "":
		data, err := os.ReadFile(*file)
		if err != nil {
			fatal(err)
		}
		if err := runScript(sys, string(data), ro); err != nil {
			fatal(err)
		}
	default:
		repl(sys, ro)
	}
}

// runOpts carries the per-statement flags through the script runner.
type runOpts struct {
	replace bool // MINE RULE replaces existing output tables
	trace   bool // print the kernel span tree after each MINE RULE
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minerule:", err)
	os.Exit(1)
}

// runScript executes a ';'-separated mixed script.
func runScript(sys *minerule.System, script string, ro runOpts) error {
	for _, stmt := range splitStatements(script) {
		if err := runOne(sys, stmt, ro); err != nil {
			return err
		}
	}
	return nil
}

func runOne(sys *minerule.System, stmt string, ro runOpts) error {
	// "EXPLAIN MINE RULE …" prints the classification and the generated
	// SQL programs instead of running the statement. Plain EXPLAIN
	// [ANALYZE] SELECT goes straight to the engine, which evaluates it
	// natively and returns the operator tree as QUERY PLAN rows.
	if trimmed := strings.TrimSpace(stmt); len(trimmed) > 7 && strings.EqualFold(trimmed[:7], "EXPLAIN") {
		rest := strings.TrimSpace(trimmed[7:])
		if !mrparse.IsMineRule(rest) {
			out, err := sys.Format(trimmed)
			if err != nil {
				return err
			}
			fmt.Print(out)
			return nil
		}
		{
			ex, err := sys.Explain(rest)
			if err != nil {
				return err
			}
			fmt.Printf("-- classification %s; core: ", ex.Class)
			if ex.Simple {
				fmt.Println("simple (itemset pool)")
			} else {
				fmt.Println("general (rule lattice)")
			}
			fmt.Printf("Q1      %s\n", ex.TotalGroupsQuery)
			for _, s := range ex.Steps {
				fmt.Printf("%-7s %s\n", s.Name, s.SQL)
			}
			for _, d := range ex.Decode {
				fmt.Printf("decode  %s\n", d)
			}
			return nil
		}
	}
	if mrparse.IsMineRule(stmt) {
		var opts []minerule.Option
		if ro.replace {
			opts = append(opts, minerule.WithReplaceOutput())
		}
		if ro.trace {
			opts = append(opts, minerule.WithTrace())
		}
		res, err := sys.Mine(stmt, opts...)
		if err != nil {
			return err
		}
		fmt.Printf("-- class %s, core %s, %d rule(s) into %s (+_Bodies, _Heads); %v\n",
			res.Class, res.Algorithm, res.RuleCount, res.OutputTable, res.Timings.Total().Round(1000))
		if ro.trace {
			fmt.Print(res.Stats.Trace.String())
		}
		for i, r := range res.Rules {
			if i == 25 {
				fmt.Printf("   … and %d more (query %s for the rest)\n", res.RuleCount-25, res.OutputTable)
				break
			}
			fmt.Println("   " + r.String())
		}
		return nil
	}
	upper := strings.ToUpper(strings.TrimSpace(stmt))
	if strings.HasPrefix(upper, "SELECT") {
		out, err := sys.Format(stmt)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}
	return sys.Exec(stmt)
}

// splitStatements splits on top-level semicolons, respecting single
// quotes.
func splitStatements(s string) []string {
	var out []string
	var b strings.Builder
	inStr := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '\'':
			inStr = !inStr
			b.WriteByte(c)
		case c == ';' && !inStr:
			if t := strings.TrimSpace(b.String()); t != "" {
				out = append(out, t)
			}
			b.Reset()
		default:
			b.WriteByte(c)
		}
	}
	if t := strings.TrimSpace(b.String()); t != "" {
		out = append(out, t)
	}
	return out
}

// repl reads statements from stdin; a statement ends at a line whose
// last non-space byte is ';'.
func repl(sys *minerule.System, ro runOpts) {
	fmt.Println("minerule shell — SQL and MINE RULE statements, ';' terminated. Ctrl-D exits.")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("minerule> ")
		} else {
			fmt.Print("      ... ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		buf.WriteString(line)
		buf.WriteByte('\n')
		if strings.HasSuffix(strings.TrimSpace(line), ";") {
			for _, stmt := range splitStatements(buf.String()) {
				if err := runOne(sys, stmt, ro); err != nil {
					fmt.Fprintln(os.Stderr, "error:", err)
				}
			}
			buf.Reset()
		}
		prompt()
	}
	fmt.Println()
}
