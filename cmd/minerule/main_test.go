package main

import (
	"strings"
	"testing"

	"minerule"
)

func TestSplitStatements(t *testing.T) {
	cases := []struct {
		in   string
		want []string
	}{
		{"a; b; c", []string{"a", "b", "c"}},
		{"a;", []string{"a"}},
		{"", nil},
		{";;", nil},
		{"INSERT INTO t VALUES ('x;y'); SELECT 1", []string{"INSERT INTO t VALUES ('x;y')", "SELECT 1"}},
		{"a\n;\nb", []string{"a", "b"}},
	}
	for _, c := range cases {
		got := splitStatements(c.in)
		if strings.Join(got, "|") != strings.Join(c.want, "|") {
			t.Errorf("splitStatements(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestRunScriptMixed(t *testing.T) {
	sys, _ := minerule.Open()
	script := `
		CREATE TABLE P (gid INTEGER, item VARCHAR);
		INSERT INTO P VALUES (1, 'a'), (1, 'b'), (2, 'a'), (2, 'b');
		MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
			FROM P GROUP BY gid EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5;
		SELECT COUNT(*) FROM R;
	`
	if err := runScript(sys, script, runOpts{replace: true}); err != nil {
		t.Fatal(err)
	}
	n, err := sys.QueryInt("SELECT COUNT(*) FROM R")
	if err != nil || n != 2 {
		t.Fatalf("rules = %d (%v)", n, err)
	}
	// Re-running the MINE RULE with replace succeeds.
	mine := `MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
		FROM P GROUP BY gid EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5;`
	if err := runScript(sys, mine, runOpts{replace: true}); err != nil {
		t.Fatal(err)
	}
	// Without replace it fails on the existing output table.
	if err := runScript(sys, mine, runOpts{}); err == nil {
		t.Error("expected output-exists error without -replace")
	}
	// Errors propagate.
	if err := runScript(sys, "SELECT * FROM missing;", runOpts{replace: true}); err == nil {
		t.Error("missing table accepted")
	}
}

func TestRunOneExplain(t *testing.T) {
	sys, _ := minerule.Open()
	if err := sys.Exec("CREATE TABLE P (gid INTEGER, item VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	err := runOne(sys, `EXPLAIN MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD
		FROM P GROUP BY gid EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1`, runOpts{replace: true})
	if err != nil {
		t.Fatal(err)
	}
	// Explain must not have created the output table.
	if err := sys.Exec("SELECT * FROM R"); err == nil {
		t.Error("EXPLAIN created output tables")
	}
}

func TestRunOneTraceDoesNotFail(t *testing.T) {
	sys, _ := minerule.Open()
	if err := sys.Exec("CREATE TABLE P (gid INTEGER, item VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	if err := sys.Exec("INSERT INTO P VALUES (1, 'a'), (1, 'b'), (2, 'a')"); err != nil {
		t.Fatal(err)
	}
	err := runOne(sys, `MINE RULE TR AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
		FROM P GROUP BY gid EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5`, runOpts{replace: true, trace: true})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDurableRoundTripCLI exercises the -db path: a script run against
// a WAL-backed database survives a close/reopen, and the recovered rows
// feed a MINE RULE run exactly like fresh ones.
func TestDurableRoundTripCLI(t *testing.T) {
	dir := t.TempDir()
	sys, err := minerule.Open(minerule.WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	script := `
		CREATE TABLE P (gid INTEGER, item VARCHAR);
		INSERT INTO P VALUES (1, 'a'), (1, 'b'), (2, 'a'), (2, 'b'), (3, 'a');
		DELETE FROM P WHERE gid = 3;
	`
	if err := runScript(sys, script, runOpts{replace: true}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := minerule.Open(minerule.WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	n, err := sys2.QueryInt("SELECT COUNT(*) FROM P")
	if err != nil || n != 4 {
		t.Fatalf("recovered rows = %d (%v), want 4", n, err)
	}
	mine := `MINE RULE R AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
		FROM P GROUP BY gid EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5;`
	if err := runScript(sys2, mine, runOpts{replace: true}); err != nil {
		t.Fatal(err)
	}
	rules, err := sys2.QueryInt("SELECT COUNT(*) FROM R")
	if err != nil || rules != 2 {
		t.Fatalf("rules over recovered data = %d (%v), want 2", rules, err)
	}
}

func TestRunOneEngineExplain(t *testing.T) {
	sys, _ := minerule.Open()
	if err := sys.Exec("CREATE TABLE P (gid INTEGER, item VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	// The engine evaluates EXPLAIN [ANALYZE] SELECT natively.
	for _, stmt := range []string{
		"EXPLAIN SELECT COUNT(*) FROM P WHERE gid = 1",
		"EXPLAIN ANALYZE SELECT gid, COUNT(*) FROM P GROUP BY gid",
	} {
		if err := runOne(sys, stmt, runOpts{}); err != nil {
			t.Errorf("%s: %v", stmt, err)
		}
	}
}
