package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"minerule"
	"minerule/internal/support"
)

func testSystem(t *testing.T) *minerule.System {
	t.Helper()
	sys, _ := minerule.Open()
	csv := "1,cust1,ski_pants\n1,cust1,hiking_boots\n2,cust2,col_shirts\n2,cust2,brown_boots\n2,cust2,jackets\n3,cust1,jackets\n"
	path := filepath.Join(t.TempDir(), "purchase.csv")
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	table, n, err := preloadCSV(sys, "Purchase="+path, "tr:int,cust:string,item:string")
	if err != nil {
		t.Fatal(err)
	}
	if table != "Purchase" || n != 6 {
		t.Fatalf("preloadCSV = %s/%d, want Purchase/6", table, n)
	}
	return sys
}

func TestPreloadCSVErrors(t *testing.T) {
	sys, _ := minerule.Open()
	if _, _, err := preloadCSV(sys, "nopath", "a:int"); err == nil {
		t.Error("spec without '=' accepted")
	}
	if _, _, err := preloadCSV(sys, "T=file.csv", ""); err == nil {
		t.Error("empty header accepted")
	}
	if _, _, err := preloadCSV(sys, "T=/does/not/exist.csv", "a:int"); err == nil {
		t.Error("missing file accepted")
	}
}

// TestDurableRoundTripWeb serves a WAL-backed database, mutates it over
// HTTP, and checks the mutation survives a close/reopen cycle.
func TestDurableRoundTripWeb(t *testing.T) {
	dir := t.TempDir()
	sys, err := minerule.Open(minerule.WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ExecScript("CREATE TABLE P (gid INTEGER, item VARCHAR)"); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(support.NewServer(sys))
	form := url.Values{"stmt": {"INSERT INTO P VALUES (1, 'a'), (1, 'b'), (2, 'a')"}}
	resp, err := http.PostForm(ts.URL+"/run", form)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("insert over HTTP = %d", resp.StatusCode)
	}
	ts.Close()
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	sys2, err := minerule.Open(minerule.WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer sys2.Close()
	ts2 := httptest.NewServer(support.NewServer(sys2))
	defer ts2.Close()
	resp, err = http.Get(ts2.URL + "/table/P")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || strings.Count(string(body), "<tr>") < 3 {
		t.Fatalf("recovered table page = %d:\n%s", resp.StatusCode, body)
	}
}

func TestWebEndToEnd(t *testing.T) {
	sys := testSystem(t)
	ts := httptest.NewServer(support.NewServer(sys))
	defer ts.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	// The home page lists the preloaded table.
	code, body := get("/")
	if code != http.StatusOK || !strings.Contains(body, "/table/Purchase") {
		t.Fatalf("home = %d:\n%s", code, body)
	}

	// A MINE RULE through the form endpoint.
	form := url.Values{"stmt": {`MINE RULE WebRules AS
		SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
		FROM Purchase GROUP BY tr
		EXTRACTING RULES WITH SUPPORT: 0.3, CONFIDENCE: 0.5`}}
	resp, err := http.PostForm(ts.URL+"/run", form)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(rb), "rule(s) into WebRules") {
		t.Fatalf("mine = %d:\n%s", resp.StatusCode, rb)
	}

	// /metrics reflects the run: stmtcache and view-plan traffic, mining
	// totals, in Prometheus exposition format.
	code, metrics := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"# TYPE minerule_stmtcache_hits_total counter",
		"minerule_stmtcache_misses_total",
		"minerule_viewplan_misses_total",
		"minerule_mine_runs_total 1",
		"minerule_stmt_executed_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q:\n%s", want, metrics)
		}
	}

	// The pprof index and a cheap profile are wired up.
	code, pprofBody := get("/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(pprofBody, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}
	code, _ = get("/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline = %d", code)
	}
}

// TestMetricsConcurrentWithQueries drives the UI and the lock-free
// observability endpoints from many goroutines at once; under -race it
// verifies /metrics bypassing the server mutex is sound.
func TestMetricsConcurrentWithQueries(t *testing.T) {
	sys := testSystem(t)
	ts := httptest.NewServer(support.NewServer(sys))
	defer ts.Close()

	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("/metrics = %d", resp.StatusCode)
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				form := url.Values{"stmt": {"SELECT COUNT(*) FROM Purchase"}}
				resp, err := http.PostForm(ts.URL+"/run", form)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("/run = %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	wg.Wait()
}
