// Command minerule-web serves the User Support UI (paper Figure 3's
// third module) over HTTP: schema browsing, SQL and MINE RULE
// execution, EXPLAIN, and a sortable rule viewer.
//
//	minerule-web -listen :8080 -csv Purchase=data.csv -hdr "tr:int,cust:string,item:string,dt:date,price:float,qty:int"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"minerule"
	"minerule/internal/support"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:8080", "address to serve on")
		csvSpec = flag.String("csv", "", "preload CSV: table=path")
		hdr     = flag.String("hdr", "", "CSV header spec: name:type,…")
		script  = flag.String("f", "", "SQL script to run before serving")
		dbDir   = flag.String("db", "", "durable database directory (WAL-backed; created if missing)")
	)
	flag.Parse()

	var sys *minerule.System
	if *dbDir != "" {
		var err error
		sys, err = minerule.Open(minerule.WithStorage(*dbDir))
		if err != nil {
			log.Fatal(err)
		}
		defer sys.Close()
	} else {
		var err error
		sys, err = minerule.Open()
		if err != nil {
			log.Fatal(err)
		}
	}
	if *csvSpec != "" {
		table, n, err := preloadCSV(sys, *csvSpec, *hdr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %d rows into %s\n", n, table)
	}
	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.ExecScript(string(data)); err != nil {
			log.Fatal(err)
		}
	}

	// Slow-client hardening: a stuck reader or writer cannot pin a
	// connection (and, through the server-wide mutex, the whole UI)
	// forever.
	srv := &http.Server{
		Addr:              *listen,
		Handler:           support.NewServer(sys),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      5 * time.Minute, // long MINE RULE runs stream late
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	runServer(ctx, stop, srv, *listen)
}

// preloadCSV loads one "table=path" CSV spec with its "name:type,…"
// header into the system, returning the table name and row count.
func preloadCSV(sys *minerule.System, csvSpec, hdr string) (string, int, error) {
	parts := strings.SplitN(csvSpec, "=", 2)
	if len(parts) != 2 || hdr == "" {
		return "", 0, fmt.Errorf("minerule-web: -csv needs table=path and -hdr")
	}
	f, err := os.Open(parts[1])
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	n, err := sys.ImportCSV(parts[0], strings.Split(hdr, ","), f)
	if err != nil {
		return "", 0, err
	}
	return parts[0], n, nil
}

func runServer(ctx context.Context, stop context.CancelFunc, srv *http.Server, listen string) {
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()

	fmt.Printf("minerule user support on http://%s\n", listen)
	select {
	case err := <-errc:
		// ListenAndServe failed outright (bad address, port in use).
		// ErrServerClosed only happens after Shutdown, i.e. not here —
		// but treat it as clean anyway rather than die on a benign race.
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
	case <-ctx.Done():
		stop()
		fmt.Println("minerule-web: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
			log.Printf("minerule-web: shutdown: %v", err)
		}
		// Shutdown has made ListenAndServe return; drain its error so
		// the serve goroutine's send never leaks and a real failure
		// (anything but the clean ErrServerClosed) still surfaces.
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("minerule-web: serve: %v", err)
		}
	}
}
