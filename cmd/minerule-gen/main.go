// Command minerule-gen emits the synthetic workloads of the benchmark
// harness as CSV, for use with the minerule shell's -csv flag or any
// other consumer.
//
//	minerule-gen -kind basket -groups 10000 -t 10 -i 4 -items 1000 > t10i4d10k.csv
//	minerule-gen -kind purchase -customers 500 > purchases.csv
//	minerule-gen -kind catalog -items 200 -categories 12 > catalog.csv
//
// Headers match the shell's -hdr syntax (name:type).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"strconv"

	"minerule/internal/gen"
)

func main() {
	var (
		kind       = flag.String("kind", "basket", "basket | purchase | catalog")
		groups     = flag.Int("groups", 1000, "basket: number of groups (D)")
		t          = flag.Int("t", 10, "basket: average group size (T)")
		i          = flag.Int("i", 4, "basket: average pattern length (I)")
		items      = flag.Int("items", 1000, "item universe size (N)")
		customers  = flag.Int("customers", 300, "purchase: number of customers")
		dates      = flag.Int("dates", 3, "purchase: average dates per customer")
		perDate    = flag.Int("perdate", 4, "purchase: average items per date")
		categories = flag.Int("categories", 10, "catalog: number of categories")
		seed       = flag.Int64("seed", 1, "PRNG seed")
		out        = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	cw := csv.NewWriter(w)
	defer cw.Flush()

	var err error
	switch *kind {
	case "basket":
		fmt.Fprintf(os.Stderr, "header: gid:int,item:string\n")
		for g, tx := range gen.Baskets(gen.BasketConfig{
			Groups: *groups, AvgSize: *t, AvgPatternLen: *i, Items: *items, Seed: *seed,
		}) {
			for _, it := range tx {
				if err = cw.Write([]string{strconv.Itoa(g + 1), "item_" + strconv.Itoa(it)}); err != nil {
					fatal(err)
				}
			}
		}
	case "purchase":
		fmt.Fprintf(os.Stderr, "header: tr:int,cust:string,item:string,dt:date,price:float,qty:int\n")
		for _, r := range gen.Purchases(gen.PurchaseConfig{
			Customers: *customers, DatesPerCust: *dates, ItemsPerDate: *perDate,
			Items: *items, Seed: *seed,
		}) {
			rec := []string{
				strconv.Itoa(r.Tr), r.Cust, r.Item,
				r.Date.Format("2006-01-02"),
				strconv.FormatFloat(r.Price, 'g', -1, 64),
				strconv.Itoa(r.Qty),
			}
			if err = cw.Write(rec); err != nil {
				fatal(err)
			}
		}
	case "catalog":
		fmt.Fprintf(os.Stderr, "header: pitem:string,category:string\n")
		// One source of truth for the item→category mapping: the same
		// function LoadCatalog uses.
		rows, err := gen.CatalogRows(*items, *categories, *seed)
		if err != nil {
			fatal(err)
		}
		for _, r := range rows {
			if err := cw.Write([]string{r[0], r[1]}); err != nil {
				fatal(err)
			}
		}
	default:
		fatal(fmt.Errorf("unknown -kind %q", *kind))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minerule-gen:", err)
	os.Exit(1)
}
