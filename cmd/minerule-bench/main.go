// Command minerule-bench regenerates the experiment tables of
// EXPERIMENTS.md (DESIGN.md §5, experiments E1–E8).
//
//	minerule-bench                  # all experiments
//	minerule-bench -exp E4          # one experiment
//	minerule-bench -json            # write BENCH_baseline.json
//	minerule-bench -json -out FILE  # write the baseline elsewhere
//	minerule-bench -check           # re-measure and gate vs the baseline
//	minerule-bench -check -tol 0.2  # with a custom tolerance (+20%)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"minerule/internal/bench"
	"minerule/internal/core"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: E1…E10 or all")
	jsonOut := flag.Bool("json", false, "measure the regression baseline and write it as JSON")
	out := flag.String("out", "BENCH_baseline.json", "baseline path (written by -json, read by -check)")
	trace := flag.Bool("trace", false, "run the paper statement once and print its kernel span tree")
	check := flag.Bool("check", false, "re-measure the baseline workloads and fail on ns/op regressions")
	tol := flag.Float64("tol", 0.15, "relative ns/op growth tolerated by -check (0.15 = +15%)")
	flag.Parse()

	if *check {
		f, err := os.Open(*out)
		if err != nil {
			fatal(err)
		}
		err = bench.CheckBaseline(f, os.Stdout, *tol)
		f.Close()
		if err != nil {
			fatal(err)
		}
		fmt.Println("baseline check passed")
		return
	}

	if *trace {
		if err := traceRun(); err != nil {
			fatal(err)
		}
		return
	}

	if *jsonOut {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteBaseline(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Println("wrote", *out)
		return
	}

	runners := map[string]func() (*bench.Table, error){
		"E1": bench.E1,
		"E2": func() (*bench.Table, error) { return bench.E2(nil) },
		"E3": func() (*bench.Table, error) { return bench.E3(nil) },
		"E4": func() (*bench.Table, error) { return bench.E4(0, nil) },
		"E5": bench.E5,
		"E6": bench.E6,
		"E7": bench.E7,
		"E8": func() (*bench.Table, error) { return bench.E8(nil) },
		"E9": bench.E9,
		"E10": func() (*bench.Table, error) { return bench.E10(nil) },
	}

	if strings.EqualFold(*exp, "all") {
		tables, err := bench.All()
		for _, t := range tables {
			fmt.Println(t)
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	run, ok := runners[strings.ToUpper(*exp)]
	if !ok {
		fatal(fmt.Errorf("unknown experiment %q (want E1…E10 or all)", *exp))
	}
	t, err := run()
	if t != nil {
		fmt.Println(t)
	}
	if err != nil {
		fatal(err)
	}
}

// traceRun evaluates the §2 FilteredOrderedSets statement on the
// Figure 1 table with tracing on and prints the span tree — the
// phase-split view of one kernel run.
func traceRun() error {
	db, err := bench.PaperDB()
	if err != nil {
		return err
	}
	res, err := core.Mine(db, bench.PaperStatement, core.Options{Trace: true})
	if err != nil {
		return err
	}
	fmt.Print(res.Trace.String())
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "minerule-bench:", err)
	os.Exit(1)
}
