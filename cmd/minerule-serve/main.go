// Command minerule-serve exposes a minerule system over the network:
// remote clients connect with the native database/sql driver
// (minerule/driver) and run SQL and MINE RULE statements against one
// shared engine, each session under its own resource limits.
//
//	minerule-serve -listen :7733 -db ./data -token secret \
//	    -max-rows 1000000 -max-runtime 2m
//
// A second, plain-HTTP listener (-metrics) serves /metrics in
// Prometheus text format and /healthz for liveness probes. SIGINT or
// SIGTERM starts a graceful drain: no new connections, in-flight
// statements finish, stragglers are canceled at the drain deadline.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"minerule"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:7733", "address to serve the wire protocol on")
		metrics = flag.String("metrics", "", "optional address for the /metrics and /healthz HTTP endpoints")
		dbDir   = flag.String("db", "", "durable database directory (WAL-backed; created if missing)")
		csvSpec = flag.String("csv", "", "preload CSV: table=path")
		hdr     = flag.String("hdr", "", "CSV header spec: name:type,…")
		script  = flag.String("f", "", "SQL script to run before serving")

		maxConns = flag.Int("max-conns", 0, "connection cap (0 = server default)")
		token    = flag.String("token", "", "startup credential; empty serves open")
		drain    = flag.Duration("drain-timeout", 5*time.Second, "graceful-shutdown bound before in-flight statements are canceled")

		maxRows       = flag.Int("max-rows", 0, "default/cap per-session row limit (0 = unbounded)")
		maxCandidates = flag.Int("max-candidates", 0, "default/cap per-session mining candidate limit")
		maxPageIO     = flag.Int("max-page-io", 0, "default/cap per-session page I/O limit")
		maxRuntime    = flag.Duration("max-runtime", 0, "default/cap per-session statement runtime")
	)
	flag.Parse()

	var (
		sys *minerule.System
		err error
	)
	if *dbDir != "" {
		sys, err = minerule.Open(minerule.WithStorage(*dbDir))
	} else {
		sys, err = minerule.Open()
	}
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	if *csvSpec != "" {
		table, n, err := preloadCSV(sys, *csvSpec, *hdr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("loaded %d rows into %s\n", n, table)
	}
	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			log.Fatal(err)
		}
		if err := sys.ExecScript(string(data)); err != nil {
			log.Fatal(err)
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var metricsDone <-chan struct{}
	if *metrics != "" {
		metricsDone = serveMetrics(ctx, sys, *metrics)
	}

	cfg := minerule.ServerConfig{
		MaxConns:     *maxConns,
		AuthToken:    *token,
		DrainTimeout: *drain,
		DefaultLimits: minerule.Limits{
			MaxRows:       *maxRows,
			MaxCandidates: *maxCandidates,
			MaxPageIO:     *maxPageIO,
			MaxRuntime:    *maxRuntime,
		},
		Logf: log.Printf,
	}

	fmt.Printf("minerule server on %s\n", *listen)
	serveErr := sys.Serve(ctx, *listen, cfg)

	// Join the metrics sidecar before exiting: stop() cancels ctx even
	// when Serve failed on its own, so the sidecar always shuts down.
	stop()
	if metricsDone != nil {
		<-metricsDone
	}
	if serveErr != nil {
		log.Fatal(serveErr)
	}
	fmt.Println("minerule-serve: drained, goodbye")
}

// serveMetrics runs the observability sidecar listener, shutting it
// down when ctx is canceled. The returned channel closes once the
// listener goroutine has exited, so main can join it before leaving.
func serveMetrics(ctx context.Context, sys *minerule.System, addr string) <-chan struct{} {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		sys.WriteMetrics(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	srv := &http.Server{
		Addr:              addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("minerule-serve: metrics listener: %v", err)
		}
	}()
	go func() {
		<-ctx.Done()
		shCtx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		if err := srv.Shutdown(shCtx); err != nil {
			srv.Close()
		}
	}()
	return done
}

// preloadCSV loads one "table=path" CSV spec with its "name:type,…"
// header into the system, returning the table name and row count.
func preloadCSV(sys *minerule.System, csvSpec, hdr string) (string, int, error) {
	parts := strings.SplitN(csvSpec, "=", 2)
	if len(parts) != 2 || hdr == "" {
		return "", 0, fmt.Errorf("minerule-serve: -csv needs table=path and -hdr")
	}
	f, err := os.Open(parts[1])
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	n, err := sys.ImportCSV(parts[0], strings.Split(hdr, ","), f)
	if err != nil {
		return "", 0, err
	}
	return parts[0], n, nil
}
