package main

import (
	"context"
	"database/sql"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"minerule"
	_ "minerule/driver"
)

func TestPreloadCSVServe(t *testing.T) {
	sys, err := minerule.Open()
	if err != nil {
		t.Fatal(err)
	}
	csv := "1,cust1,ski_pants\n1,cust1,hiking_boots\n2,cust2,col_shirts\n"
	path := filepath.Join(t.TempDir(), "purchase.csv")
	if err := os.WriteFile(path, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	table, n, err := preloadCSV(sys, "Purchase="+path, "tr:int,cust:string,item:string")
	if err != nil {
		t.Fatal(err)
	}
	if table != "Purchase" || n != 3 {
		t.Fatalf("preloadCSV = %s/%d, want Purchase/3", table, n)
	}
	if _, _, err := preloadCSV(sys, "nopath", "a:int"); err == nil {
		t.Error("spec without '=' accepted")
	}
	if _, _, err := preloadCSV(sys, "T=file.csv", ""); err == nil {
		t.Error("empty header accepted")
	}
}

// TestMetricsSidecar checks the /metrics and /healthz handlers the
// binary mounts, including the live session gauge fed by an actual
// wire connection.
func TestMetricsSidecar(t *testing.T) {
	sys, err := minerule.Open()
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()

	// Serve the wire protocol on a loopback port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		sys.ServeListener(ctx, ln, minerule.ServerConfig{DrainTimeout: time.Second})
	}()
	defer func() { cancel(); <-done }()

	db, err := sql.Open("minerule", "tcp://"+ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Ping(); err != nil {
		t.Fatal(err)
	}

	// Mount the same handlers main wires up.
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		sys.WriteMetrics(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(body)
	for _, want := range []string{
		"minerule_server_connections_opened_total 1",
		"minerule_server_sessions_active 1",
		"# TYPE minerule_server_sessions_active gauge",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("healthz = %q", body)
	}
}
