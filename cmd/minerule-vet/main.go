// Command minerule-vet runs the repository's custom analyzer suite
// (internal/lint): ctxflow, budgetcharge, spansafe, errtaxon, and the
// concurrency checks lockorder, guardedby, atomicmix and gorolifecycle.
//
// It speaks two protocols:
//
//	minerule-vet [-analyzers=a,b] [-json] [packages]   standalone, defaults to ./...
//	go vet -vettool=$(which minerule-vet) ./...  as a vet tool
//
// The vet-tool mode implements the cmd/go unitchecker handshake by hand
// (-V=full, -flags, then one JSON *.cfg per package) because the module
// is dependency-free and golang.org/x/tools/go/analysis/unitchecker is
// not available. Cross-package facts (lockorder's acquisition graph)
// ride the same .vetx files cmd/go already threads between packages:
// each run decodes the fact stores of its dependencies from PackageVetx
// and encodes its own into VetxOutput. Findings print as
// file:line:col: message (or as a JSON array with -json) and the exit
// status is 2 when any are reported, mirroring go vet.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"

	"minerule/internal/lint"
)

func main() {
	args := os.Args[1:]

	// Unitchecker handshake: cmd/go probes the tool's version (for build
	// cache keying) and its flag set before feeding it package configs.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		printVersion()
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}

	os.Exit(runStandalone(args))
}

// printVersion answers the -V=full probe. cmd/go keys its action cache
// on this line and, for non-release versions, requires a buildID= field
// — the convention is a digest of the executable itself, so rebuilding
// the tool invalidates cached vet results.
func printVersion() {
	name := "minerule-vet"
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))
			}
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", name, id)
}

// ---------------------------------------------------------------------------
// Standalone mode

// jsonDiag is the -json output shape: one object per finding, stable
// field names so CI scripts and editors can consume the stream.
type jsonDiag struct {
	Path     string `json:"path"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func runStandalone(args []string) int {
	fs := flag.NewFlagSet("minerule-vet", flag.ExitOnError)
	sel := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list the analyzer suite and exit")
	asJSON := fs.Bool("json", false, "emit findings as a JSON array on stdout")
	fs.Parse(args)

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.ByName(*sel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	loaded, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// Load returns packages in dependency order (go list -deps), so one
	// shared store sees every dependency's facts before its importers.
	facts := new(lint.FactStore)
	var found []lint.Diagnostic
	for _, l := range loaded {
		found = append(found, lint.RunWithFacts(l.Fset, l.Files, l.Pkg, l.Info, analyzers, facts)...)
	}
	if *asJSON {
		out := make([]jsonDiag, 0, len(found))
		for _, d := range found {
			out = append(out, jsonDiag{
				Path:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	} else {
		for _, d := range found {
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if len(found) > 0 {
		return 2
	}
	return 0
}

// ---------------------------------------------------------------------------
// go vet -vettool mode (unitchecker protocol)

// unitConfig is the per-package JSON config cmd/go writes for vet tools.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// writeVetx persists the fact store as this package's .vetx file. The
// cmd/go driver caches it and hands it to importers via PackageVetx, so
// it must be written even when the store is empty (or the run bailed):
// the file's existence is part of the vet-tool contract.
func writeVetx(path string, facts *lint.FactStore) error {
	if path == "" {
		return nil
	}
	data, err := facts.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o666)
}

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "minerule-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// Succeed-but-skip paths still owe the driver a vetx file; bail is
	// the empty store.
	bail := func() int {
		if err := writeVetx(cfg.VetxOutput, new(lint.FactStore)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return bail()
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("minerule-vet: no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	pkg, info, err := lint.TypeCheck(fset, cfg.ImportPath, files, importer.ForCompiler(fset, compiler, lookup))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return bail()
		}
		fmt.Fprintf(os.Stderr, "minerule-vet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	// Merge the dependencies' fact stores. Each dependency's vetx already
	// carries its own transitive facts (the whole store is encoded, not
	// just the package's contribution), so direct deps suffice.
	facts := new(lint.FactStore)
	for dep, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			// Stale or missing cache entry: analyze without that
			// dependency's facts rather than fail the build.
			continue
		}
		if err := facts.Decode(data); err != nil {
			fmt.Fprintf(os.Stderr, "minerule-vet: facts for %s: %v\n", dep, err)
			return 1
		}
	}

	diags := lint.RunWithFacts(fset, files, pkg, info, lint.All(), facts)
	if err := writeVetx(cfg.VetxOutput, facts); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if cfg.VetxOnly {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
