// Command minerule-vet runs the repository's custom analyzer suite
// (internal/lint): ctxflow, budgetcharge, spansafe and errtaxon.
//
// It speaks two protocols:
//
//	minerule-vet [-analyzers=a,b] [packages]   standalone, defaults to ./...
//	go vet -vettool=$(which minerule-vet) ./...  as a vet tool
//
// The vet-tool mode implements the cmd/go unitchecker handshake by hand
// (-V=full, -flags, then one JSON *.cfg per package) because the module
// is dependency-free and golang.org/x/tools/go/analysis/unitchecker is
// not available. Findings print as file:line:col: message and the exit
// status is 2 when any are reported, mirroring go vet.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"io"
	"os"
	"strings"

	"minerule/internal/lint"
)

func main() {
	args := os.Args[1:]

	// Unitchecker handshake: cmd/go probes the tool's version (for build
	// cache keying) and its flag set before feeding it package configs.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		printVersion()
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runUnit(args[0]))
	}

	os.Exit(runStandalone(args))
}

// printVersion answers the -V=full probe. cmd/go keys its action cache
// on this line and, for non-release versions, requires a buildID= field
// — the convention is a digest of the executable itself, so rebuilding
// the tool invalidates cached vet results.
func printVersion() {
	name := "minerule-vet"
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil))
			}
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", name, id)
}

// ---------------------------------------------------------------------------
// Standalone mode

func runStandalone(args []string) int {
	fs := flag.NewFlagSet("minerule-vet", flag.ExitOnError)
	sel := fs.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	list := fs.Bool("list", false, "list the analyzer suite and exit")
	fs.Parse(args)

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers, err := lint.ByName(*sel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	loaded, err := lint.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	found := 0
	for _, l := range loaded {
		for _, d := range lint.Run(l.Fset, l.Files, l.Pkg, l.Info, analyzers) {
			fmt.Fprintln(os.Stderr, d)
			found++
		}
	}
	if found > 0 {
		return 2
	}
	return 0
}

// ---------------------------------------------------------------------------
// go vet -vettool mode (unitchecker protocol)

// unitConfig is the per-package JSON config cmd/go writes for vet tools.
type unitConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "minerule-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	// The driver caches a .vetx facts file per package; this suite keeps
	// no cross-package facts, so an empty file satisfies the contract.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("minerule-vet: no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	pkg, info, err := lint.TypeCheck(fset, cfg.ImportPath, files, importer.ForCompiler(fset, compiler, lookup))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "minerule-vet: %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags := lint.Run(fset, files, pkg, info, lint.All())
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}
