package main

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestVettoolProtocol builds the tool and drives it through cmd/go's
// vettool protocol against the whole module: the handshake (-V=full,
// -flags, per-package .cfg) must succeed and the repository must be
// clean under the suite.
func TestVettoolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets the whole module")
	}
	tool := filepath.Join(t.TempDir(), "minerule-vet")
	build := exec.Command("go", "build", "-o", tool, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building minerule-vet: %v\n%s", err, out)
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	vet := exec.Command("go", "vet", "-vettool="+tool, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool reported findings or failed: %v\n%s", err, out)
	}
}
