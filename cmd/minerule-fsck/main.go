// Command minerule-fsck verifies a minerule database directory offline
// and, with -salvage, repairs what can be repaired without inventing
// data: it rebuilds a missing or dangling CURRENT pointer from the
// newest complete generation, truncates torn WAL tails, and removes
// checkpoint leftovers. Heap pages failing their CRC-32C are reported
// but never altered — those bytes are gone.
//
//	minerule-fsck [-salvage] DIR...
//
// Exit status: 0 when every directory is healthy (or was fully
// salvaged), 1 when problems remain, 2 on usage or I/O errors. Run it
// only on closed databases; fsck takes no locks.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"minerule/internal/sql/engine"
	"minerule/internal/sql/vfs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("minerule-fsck", flag.ContinueOnError)
	fs.SetOutput(stderr)
	salvage := fs.Bool("salvage", false, "repair recoverable damage (rebuild CURRENT, truncate torn WAL tails, remove checkpoint leftovers)")
	fs.Usage = func() {
		fmt.Fprintln(stderr, "usage: minerule-fsck [-salvage] DIR...")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fs.Usage()
		return 2
	}
	status := 0
	for _, dir := range fs.Args() {
		r, err := engine.Fsck(vfs.OS, dir, engine.FsckOptions{Salvage: *salvage})
		if err != nil {
			fmt.Fprintf(stderr, "minerule-fsck: %s: %v\n", dir, err)
			return 2
		}
		fmt.Fprint(stdout, r)
		if !r.Healthy() && status == 0 {
			status = 1
		}
	}
	return status
}
