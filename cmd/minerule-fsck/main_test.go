package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"minerule/internal/sql/engine"
)

func seedDB(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	db, err := engine.Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	err = db.ExecScript(`
		CREATE TABLE Purchase (tr INTEGER, item VARCHAR(20), price FLOAT);
		INSERT INTO Purchase VALUES (1, 'ski_pants', 140.0);
		INSERT INTO Purchase VALUES (1, 'hiking_boots', 180.0);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunHealthy(t *testing.T) {
	dir := seedDB(t)
	var out, errOut bytes.Buffer
	if code := run([]string{dir}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d on healthy db; stderr: %s\nstdout: %s", code, errOut.String(), out.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("report missing ok line:\n%s", out.String())
	}
}

func TestRunSalvageMissingCurrent(t *testing.T) {
	dir := seedDB(t)
	if err := os.Remove(filepath.Join(dir, "CURRENT")); err != nil {
		t.Fatal(err)
	}

	var out, errOut bytes.Buffer
	if code := run([]string{dir}, &out, &errOut); code != 1 {
		t.Fatalf("exit %d on damaged db, want 1\n%s", code, out.String())
	}

	out.Reset()
	if code := run([]string{"-salvage", dir}, &out, &errOut); code != 0 {
		t.Fatalf("salvage exit %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "CURRENT rebuilt") {
		t.Fatalf("salvage report missing rebuild line:\n%s", out.String())
	}
	db, err := engine.Open(dir, 0)
	if err != nil {
		t.Fatalf("open after salvage: %v", err)
	}
	defer db.Close()
	if n, err := db.QueryInt("SELECT COUNT(*) FROM Purchase"); err != nil || n != 2 {
		t.Fatalf("salvaged db: %d rows, err %v", n, err)
	}
}

func TestRunUsage(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("exit %d with no args, want 2", code)
	}
	if !strings.Contains(errOut.String(), "usage:") {
		t.Fatalf("no usage on stderr: %s", errOut.String())
	}
}
