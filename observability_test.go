package minerule_test

import (
	"strings"
	"testing"

	"minerule"
)

// The tests reuse resilience_test.go's simpleMine statement (simple
// class, so the levelwise pool records pass statistics).

func TestPublicTraceAndStats(t *testing.T) {
	sys := newSystem(t)
	res, err := sys.Mine(simpleMine, minerule.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Trace == nil {
		t.Fatal("Stats.Trace is nil under WithTrace")
	}
	if res.Stats.Candidates <= 0 {
		t.Errorf("Stats.Candidates = %d, want > 0", res.Stats.Candidates)
	}
	if len(res.Stats.Passes) == 0 {
		t.Error("Stats.Passes is empty for a levelwise run")
	}
	rendered := res.Stats.Trace.String()
	for _, want := range []string{"mine", "translate", "preprocess", "core", "postprocess", "pass", "algorithm=apriori"} {
		if !strings.Contains(rendered, want) {
			t.Errorf("rendered trace missing %q:\n%s", want, rendered)
		}
	}

	// Without WithTrace the stats stay, the tree goes away.
	res2, err := sys.Mine(simpleMine, minerule.WithReplaceOutput())
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Trace != nil {
		t.Error("Stats.Trace must be nil without WithTrace")
	}
	if res2.Stats.Candidates != res.Stats.Candidates {
		t.Errorf("Candidates differ across identical runs: %d vs %d",
			res2.Stats.Candidates, res.Stats.Candidates)
	}
}

func TestPublicWriteMetrics(t *testing.T) {
	sys := newSystem(t)
	if _, err := sys.Mine(simpleMine); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := sys.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	body := b.String()
	for _, want := range []string{
		"# TYPE minerule_stmt_executed_total counter",
		"minerule_mine_runs_total 1",
		"minerule_stmtcache_hits_total",
		"minerule_viewplan_misses_total",
		"minerule_phase_core_nanoseconds_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics body missing %q", want)
		}
	}
}
