package minerule_test

import (
	"fmt"
	"log"

	"minerule"
)

// Example reproduces the paper's worked example: the Figure 1 Purchase
// table and the §2 FilteredOrderedSets statement, yielding Figure 2.b.
func Example() {
	sys, _ := minerule.Open()
	err := sys.ExecScript(`
		CREATE TABLE Purchase (tr INTEGER, cust VARCHAR, item VARCHAR, dt DATE, price FLOAT, qty INTEGER);
		INSERT INTO Purchase VALUES
			(1, 'cust1', 'ski_pants',    DATE '1995-12-17', 140, 1),
			(1, 'cust1', 'hiking_boots', DATE '1995-12-17', 180, 1),
			(2, 'cust2', 'col_shirts',   DATE '1995-12-18',  25, 2),
			(2, 'cust2', 'brown_boots',  DATE '1995-12-18', 150, 1),
			(2, 'cust2', 'jackets',      DATE '1995-12-18', 300, 1),
			(3, 'cust1', 'jackets',      DATE '1995-12-18', 300, 1),
			(4, 'cust2', 'col_shirts',   DATE '1995-12-19',  25, 3),
			(4, 'cust2', 'jackets',      DATE '1995-12-19', 300, 2);
	`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Mine(`
		MINE RULE FilteredOrderedSets AS
		SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, SUPPORT, CONFIDENCE
		WHERE BODY.price >= 100 AND HEAD.price < 100
		FROM Purchase
		WHERE dt BETWEEN DATE '1995-01-01' AND DATE '1995-12-31'
		GROUP BY cust
		CLUSTER BY dt HAVING BODY.dt < HEAD.dt
		EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3`)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range res.Rules {
		fmt.Println(r)
	}
	// Unordered output:
	// {brown_boots} => {col_shirts} (s=0.5, c=1)
	// {jackets} => {col_shirts} (s=0.5, c=0.5)
	// {brown_boots, jackets} => {col_shirts} (s=0.5, c=1)
}

// ExampleSystem_Query shows that mining output is ordinary relations,
// queryable with plain SQL.
func ExampleSystem_Query() {
	sys, _ := minerule.Open()
	if err := sys.ExecScript(`
		CREATE TABLE T (gid INTEGER, item VARCHAR);
		INSERT INTO T VALUES (1,'a'), (1,'b'), (2,'a'), (2,'b'), (3,'b');
	`); err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Mine(`
		MINE RULE R AS
		SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
		FROM T GROUP BY gid
		EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5`); err != nil {
		log.Fatal(err)
	}
	n, err := sys.QueryInt(`
		SELECT COUNT(*) FROM R, R_Bodies B
		WHERE R.BodyId = B.BodyId AND B.item = 'a' AND R.CONFIDENCE >= 0.9`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("confident rules with 'a' in the body:", n)
	// Output:
	// confident rules with 'a' in the body: 1
}

// ExampleSystem_Explain prints the classification and the first
// generated program of the paper's translation scheme.
func ExampleSystem_Explain() {
	sys, _ := minerule.Open()
	if err := sys.Exec(`CREATE TABLE T (gid INTEGER, item VARCHAR, price FLOAT)`); err != nil {
		log.Fatal(err)
	}
	ex, err := sys.Explain(`
		MINE RULE R AS
		SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD
		WHERE BODY.price >= 100 AND HEAD.price < 100
		FROM T GROUP BY gid
		EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("class:", ex.Class)
	fmt.Println("simple core:", ex.Simple)
	fmt.Println(ex.Steps[0].Name, ex.Steps[0].SQL)
	// Output:
	// class: {M}
	// simple core: false
	// Q0 CREATE VIEW mr_r_source AS SELECT gid, item, price FROM T
}
