package minerule_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"minerule"
	"minerule/internal/sql/wal"
)

// crashSeedStmts builds the paper's Figure 1 Purchase table one
// statement at a time, so the WAL carries one record per row and the
// kill-point sweep gets a crash point between every pair of mutations.
var crashSeedStmts = []string{
	"CREATE TABLE Purchase (tr INTEGER, cust VARCHAR, item VARCHAR, dt DATE, price FLOAT, qty INTEGER)",
	"INSERT INTO Purchase VALUES (1, 'cust1', 'ski_pants',    DATE '1995-12-17', 140, 1)",
	"INSERT INTO Purchase VALUES (1, 'cust1', 'hiking_boots', DATE '1995-12-17', 180, 1)",
	"INSERT INTO Purchase VALUES (2, 'cust2', 'col_shirts',   DATE '1995-12-18',  25, 2)",
	"INSERT INTO Purchase VALUES (2, 'cust2', 'brown_boots',  DATE '1995-12-18', 150, 1)",
	"INSERT INTO Purchase VALUES (2, 'cust2', 'jackets',      DATE '1995-12-18', 300, 1)",
	"INSERT INTO Purchase VALUES (3, 'cust1', 'jackets',      DATE '1995-12-18', 300, 1)",
	"INSERT INTO Purchase VALUES (4, 'cust2', 'col_shirts',   DATE '1995-12-19',  25, 3)",
	"INSERT INTO Purchase VALUES (4, 'cust2', 'jackets',      DATE '1995-12-19', 300, 2)",
	"CREATE INDEX purchase_item ON Purchase(item)",
	"CREATE SEQUENCE rid",
}

// figure2b is the MINE RULE statement of §2 whose output is Figure 2.b.
const figure2b = `
	MINE RULE FilteredOrderedSets AS
	SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, SUPPORT, CONFIDENCE
	WHERE BODY.price >= 100 AND HEAD.price < 100
	FROM Purchase
	WHERE dt BETWEEN DATE '1995-01-01' AND DATE '1995-12-31'
	GROUP BY cust
	CLUSTER BY dt HAVING BODY.dt < HEAD.dt
	EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3`

// copyTree clones the database directory for one crash experiment.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(p string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		b, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(out, b, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// expectedRows interprets a WAL byte prefix and returns the row count
// each live table should have after recovery (absent key = no table).
func expectedRows(t *testing.T, prefix []byte) map[string]int {
	t.Helper()
	tables := map[string]int{}
	_, _, err := wal.ReplayBytes(prefix, func(r *wal.Record) error {
		switch r.Kind {
		case wal.KindCreateTable:
			tables[r.Name] = 0
		case wal.KindDropTable:
			delete(tables, r.Name)
		case wal.KindInsert:
			tables[r.Name] += len(r.Rows)
		case wal.KindTruncate:
			tables[r.Name] = 0
		case wal.KindReplace:
			tables[r.Name] = len(r.Rows)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return tables
}

// TestKillPointSweep is the crash matrix: it builds the Figure 1
// database durably, then simulates a kill at every WAL record boundary,
// mid-record, and under tail corruption. Every variant must recover to
// exactly the state the surviving log prefix describes, and once all
// eight Purchase rows survive, MINE RULE must reproduce Figure 2.b.
func TestKillPointSweep(t *testing.T) {
	base := t.TempDir()
	sys, err := minerule.Open(minerule.WithStorage(base))
	if err != nil {
		t.Fatal(err)
	}
	for _, stmt := range crashSeedStmts {
		if err := sys.Exec(stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	logPath := filepath.Join(base, "wal-1.log")
	logBytes, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	bounds := wal.Boundaries(logBytes)
	if len(bounds) < len(crashSeedStmts) {
		t.Fatalf("only %d WAL records for %d statements", len(bounds), len(crashSeedStmts))
	}

	// Crash points: the empty log, every record boundary, and a cut one
	// byte and half a record into the frame that follows each boundary.
	type cut struct {
		name    string
		len     int64 // bytes of the log that survive
		corrupt bool  // additionally flip a byte in the record after len
		next    int64 // end offset of that record (corrupt only)
	}
	var cuts []cut
	prev := int64(0)
	for i, end := range bounds {
		cuts = append(cuts,
			cut{name: "boundary", len: end},
			cut{name: "torn+1", len: prev + 1},
			cut{name: "torn-mid", len: (prev + end) / 2},
		)
		if i < len(bounds)-1 {
			cuts = append(cuts, cut{name: "corrupt", len: end, corrupt: true, next: bounds[i+1]})
		}
		prev = end
	}
	cuts = append(cuts, cut{name: "empty", len: 0})

	for _, c := range cuts {
		dir := t.TempDir()
		copyTree(t, base, dir)
		cutBytes := append([]byte(nil), logBytes[:c.len]...)
		onDisk := cutBytes
		if c.corrupt {
			// The rest of the log survives, but the record right after
			// this boundary has a flipped byte mid-frame: the CRC must
			// reject it and recovery must stop here, never resyncing to
			// the intact records behind it.
			tail := append([]byte(nil), logBytes[c.len:]...)
			tail[(c.next-c.len)/2] ^= 0xff
			onDisk = append(cutBytes, tail...)
		}
		if err := os.WriteFile(filepath.Join(dir, "wal-1.log"), onDisk, 0o644); err != nil {
			t.Fatal(err)
		}

		want := expectedRows(t, cutBytes)
		rec, err := minerule.Open(minerule.WithStorage(dir))
		if err != nil {
			t.Fatalf("%s@%d: recovery failed: %v", c.name, c.len, err)
		}
		for name, rows := range want {
			n, err := rec.QueryInt("SELECT COUNT(*) FROM " + name)
			if err != nil || int(n) != rows {
				t.Fatalf("%s@%d: %s has %d rows (%v), want %d", c.name, c.len, name, n, err, rows)
			}
		}
		if len(want) == 0 {
			if _, err := rec.QueryInt("SELECT COUNT(*) FROM Purchase"); err == nil {
				t.Fatalf("%s@%d: Purchase exists before its CREATE is durable", c.name, c.len)
			}
		}

		// Recovered databases accept new writes.
		if _, ok := want["purchase"]; ok {
			if err := rec.Exec("INSERT INTO Purchase VALUES (9, 'probe', 'probe', DATE '1996-01-01', 1, 1)"); err != nil {
				t.Fatalf("%s@%d: recovered database rejects writes: %v", c.name, c.len, err)
			}
			if err := rec.Exec("DELETE FROM Purchase WHERE cust = 'probe'"); err != nil {
				t.Fatalf("%s@%d: %v", c.name, c.len, err)
			}
		}

		// Full prefix: the recovered table must mine Figure 2.b exactly.
		if want["purchase"] == 8 {
			res, err := rec.Mine(figure2b)
			if err != nil {
				t.Fatalf("%s@%d: mine over recovered data: %v", c.name, c.len, err)
			}
			if res.RuleCount != 3 {
				t.Fatalf("%s@%d: %d rules over recovered data, want 3", c.name, c.len, res.RuleCount)
			}
			var all []string
			for _, r := range res.Rules {
				all = append(all, r.String())
			}
			joined := strings.Join(all, "\n")
			for _, wantRule := range []string{
				"{brown_boots} => {col_shirts} (s=0.5, c=1)",
				"{jackets} => {col_shirts} (s=0.5, c=0.5)",
			} {
				if !strings.Contains(joined, wantRule) {
					t.Fatalf("%s@%d: missing %q in:\n%s", c.name, c.len, wantRule, joined)
				}
			}
		}
		if err := rec.Close(); err != nil {
			t.Fatalf("%s@%d: close: %v", c.name, c.len, err)
		}
	}
}
