package minerule_test

import (
	"strings"
	"testing"

	"minerule"
)

func newSystem(t *testing.T) *minerule.System {
	t.Helper()
	sys, _ := minerule.Open()
	err := sys.ExecScript(`
		CREATE TABLE Purchase (tr INTEGER, cust VARCHAR, item VARCHAR, dt DATE, price FLOAT, qty INTEGER);
		INSERT INTO Purchase VALUES
			(1, 'cust1', 'ski_pants',    DATE '1995-12-17', 140, 1),
			(1, 'cust1', 'hiking_boots', DATE '1995-12-17', 180, 1),
			(2, 'cust2', 'col_shirts',   DATE '1995-12-18',  25, 2),
			(2, 'cust2', 'brown_boots',  DATE '1995-12-18', 150, 1),
			(2, 'cust2', 'jackets',      DATE '1995-12-18', 300, 1),
			(3, 'cust1', 'jackets',      DATE '1995-12-18', 300, 1),
			(4, 'cust2', 'col_shirts',   DATE '1995-12-19',  25, 3),
			(4, 'cust2', 'jackets',      DATE '1995-12-19', 300, 2);
	`)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestPublicAPIPaperExample(t *testing.T) {
	sys := newSystem(t)
	res, err := sys.Mine(`
		MINE RULE FilteredOrderedSets AS
		SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, SUPPORT, CONFIDENCE
		WHERE BODY.price >= 100 AND HEAD.price < 100
		FROM Purchase
		WHERE dt BETWEEN DATE '1995-01-01' AND DATE '1995-12-31'
		GROUP BY cust
		CLUSTER BY dt HAVING BODY.dt < HEAD.dt
		EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3`)
	if err != nil {
		t.Fatal(err)
	}
	if res.RuleCount != 3 || len(res.Rules) != 3 {
		t.Fatalf("rules = %d/%d, want 3", res.RuleCount, len(res.Rules))
	}
	if res.Simple {
		t.Error("Simple = true for a general statement")
	}
	if res.Class != "{W,M,C,K}" {
		t.Errorf("Class = %s", res.Class)
	}
	if res.Algorithm != "rule-lattice" {
		t.Errorf("Algorithm = %s", res.Algorithm)
	}
	if res.OutputTable != "FilteredOrderedSets" ||
		res.BodiesTable != "FilteredOrderedSets_Bodies" ||
		res.HeadsTable != "FilteredOrderedSets_Heads" {
		t.Errorf("tables = %s/%s/%s", res.OutputTable, res.BodiesTable, res.HeadsTable)
	}
	// Rule rendering matches the paper's set notation.
	var all []string
	for _, r := range res.Rules {
		all = append(all, r.String())
	}
	joined := strings.Join(all, "\n")
	for _, want := range []string{
		"{brown_boots} => {col_shirts} (s=0.5, c=1)",
		"{jackets} => {col_shirts} (s=0.5, c=0.5)",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}
	if res.Timings.Total() <= 0 {
		t.Error("timings missing")
	}
}

func TestPublicAPIQueryAndOptions(t *testing.T) {
	sys := newSystem(t)
	stmt := `MINE RULE R AS
		SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
		FROM Purchase GROUP BY tr
		EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.8`
	res, err := sys.Mine(stmt, minerule.WithAlgorithm(minerule.Partition))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Simple || res.Algorithm != "partition" {
		t.Errorf("algorithm = %s (simple=%v)", res.Algorithm, res.Simple)
	}
	// Second run fails without replace, succeeds with.
	if _, err := sys.Mine(stmt); err == nil {
		t.Fatal("expected output-exists error")
	}
	if _, err := sys.Mine(stmt, minerule.WithReplaceOutput()); err != nil {
		t.Fatal(err)
	}
	// Query the stored output like any table.
	tab, err := sys.Query("SELECT BodyId, HeadId FROM R")
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Columns) != 2 || tab.Columns[0] != "BodyId" {
		t.Errorf("columns = %v", tab.Columns)
	}
	if len(tab.Rows) != res.RuleCount {
		t.Errorf("rows = %d, rules = %d", len(tab.Rows), res.RuleCount)
	}
	n, err := sys.QueryInt("SELECT COUNT(*) FROM R")
	if err != nil || int(n) != res.RuleCount {
		t.Errorf("QueryInt = %d (%v)", n, err)
	}
}

func TestPublicAPIKeepEncoded(t *testing.T) {
	sys := newSystem(t)
	stmt := `MINE RULE R AS
		SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD
		FROM Purchase GROUP BY tr
		EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.8`
	if _, err := sys.Mine(stmt, minerule.WithKeepEncoded()); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Query("SELECT * FROM mr_r_bset"); err != nil {
		t.Errorf("encoded tables missing: %v", err)
	}
}

func TestPublicAPICSV(t *testing.T) {
	sys, _ := minerule.Open()
	n, err := sys.ImportCSV("T", []string{"gid:int", "item:string"},
		strings.NewReader("1,a\n1,b\n2,a\n2,b\n3,a\n"))
	if err != nil || n != 5 {
		t.Fatalf("import = %d (%v)", n, err)
	}
	res, err := sys.Mine(`MINE RULE R AS
		SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
		FROM T GROUP BY gid
		EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	if res.RuleCount != 2 {
		t.Fatalf("rules = %d, want 2 (a=>b, b=>a)", res.RuleCount)
	}
	var out strings.Builder
	if err := sys.ExportCSV(&out, "SELECT BodyId FROM R"); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(out.String(), "BodyId\n") {
		t.Errorf("export = %q", out.String())
	}
}

func TestPublicAPIErrors(t *testing.T) {
	sys, _ := minerule.Open()
	if err := sys.Exec("SELECT * FROM missing"); err == nil {
		t.Error("Exec on missing table must fail")
	}
	if _, err := sys.Mine("MINE RULE garbage"); err == nil {
		t.Error("bad statement must fail")
	}
	if _, err := sys.Query("CREATE TABLE t (a INTEGER)"); err == nil {
		t.Error("Query on DDL must fail")
	}
}

func TestRuleStringFormat(t *testing.T) {
	r := minerule.Rule{
		Body:       [][]string{{"a"}, {"b"}},
		Head:       [][]string{{"c", "10"}},
		Support:    0.25,
		Confidence: 1,
	}
	if got := r.String(); got != "{a, b} => {c/10} (s=0.25, c=1)" {
		t.Errorf("String = %q", got)
	}
}
