package driver_test

import (
	"testing"

	"minerule/internal/leakcheck"
)

// TestMain fails the binary if any test leaks a goroutine — the
// runtime complement of the static gorolifecycle analyzer.
func TestMain(m *testing.M) { leakcheck.Main(m) }
