package driver_test

import (
	"bufio"
	"context"
	"database/sql"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"minerule"
	mrdriver "minerule/driver"
	"minerule/internal/server/wire"
)

// startServer serves a fresh in-memory system on a loopback listener
// and returns its address. The server drains on test cleanup.
func startServer(t *testing.T, cfg minerule.ServerConfig) (string, *minerule.System) {
	t.Helper()
	sys, err := minerule.Open()
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.DrainTimeout == 0 {
		cfg.DrainTimeout = 2 * time.Second
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := sys.ServeListener(ctx, ln, cfg); err != nil {
			t.Errorf("serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		cancel()
		<-done
		sys.Close()
	})
	return ln.Addr().String(), sys
}

func openDB(t *testing.T, dsn string) *sql.DB {
	t.Helper()
	db, err := sql.Open("minerule", dsn)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.Close() })
	return db
}

const purchaseDDL = `
	CREATE TABLE Purchase (tr INTEGER, cust VARCHAR, item VARCHAR, dt DATE, price FLOAT, qty INTEGER);
	INSERT INTO Purchase VALUES
		(1, 'cust1', 'ski_pants',    DATE '1995-12-17', 140, 1),
		(1, 'cust1', 'hiking_boots', DATE '1995-12-17', 180, 1),
		(2, 'cust2', 'col_shirts',   DATE '1995-12-18',  25, 2),
		(2, 'cust2', 'brown_boots',  DATE '1995-12-18', 150, 1),
		(2, 'cust2', 'jackets',      DATE '1995-12-18', 300, 1),
		(3, 'cust1', 'jackets',      DATE '1995-12-18', 300, 1),
		(4, 'cust2', 'col_shirts',   DATE '1995-12-19',  25, 3),
		(4, 'cust2', 'jackets',      DATE '1995-12-19', 300, 2);
`

// TestRemoteEndToEnd is the acceptance path: a stock Go program using
// database/sql connects, creates and loads a table, runs MINE RULE and
// streams the mined rules back as rows — all remotely.
func TestRemoteEndToEnd(t *testing.T) {
	addr, _ := startServer(t, minerule.ServerConfig{})
	db := openDB(t, "tcp://"+addr)

	if _, err := db.Exec(purchaseDDL); err != nil {
		t.Fatal(err)
	}

	// Plain query with typed columns.
	rows, err := db.Query("SELECT item, price, qty FROM Purchase WHERE tr = 1")
	if err != nil {
		t.Fatal(err)
	}
	cols, _ := rows.Columns()
	if want := []string{"item", "price", "qty"}; strings.Join(cols, ",") != strings.Join(want, ",") {
		t.Fatalf("columns = %v", cols)
	}
	var n int
	for rows.Next() {
		var item string
		var price float64
		var qty int64
		if err := rows.Scan(&item, &price, &qty); err != nil {
			t.Fatal(err)
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("rows = %d, want 2", n)
	}

	// Aggregation through QueryRow.
	var total int64
	if err := db.QueryRow("SELECT COUNT(*) FROM Purchase").Scan(&total); err != nil {
		t.Fatal(err)
	}
	if total != 8 {
		t.Fatalf("count = %d", total)
	}

	// MINE RULE streams rules as ordinary rows.
	rrows, err := db.Query(`MINE RULE RemoteSets AS
		SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
		FROM Purchase GROUP BY tr
		EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.8`)
	if err != nil {
		t.Fatal(err)
	}
	cols, _ = rrows.Columns()
	if want := "BODY,HEAD,SUPPORT,CONFIDENCE"; strings.Join(cols, ",") != want {
		t.Fatalf("rule columns = %v", cols)
	}
	var mined int
	for rrows.Next() {
		var body, head string
		var sup, conf float64
		if err := rrows.Scan(&body, &head, &sup, &conf); err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(body, "{") || sup <= 0 || conf <= 0 {
			t.Fatalf("bad rule row: %s => %s (%v, %v)", body, head, sup, conf)
		}
		mined++
	}
	if err := rrows.Err(); err != nil {
		t.Fatal(err)
	}
	if mined == 0 {
		t.Fatal("no rules streamed")
	}

	// The output tables exist server-side like an embedded run's.
	var ruleRows int64
	if err := db.QueryRow("SELECT COUNT(*) FROM RemoteSets").Scan(&ruleRows); err != nil {
		t.Fatal(err)
	}
	if int(ruleRows) != mined {
		t.Fatalf("output table has %d rules, streamed %d", ruleRows, mined)
	}
}

func TestPreparedStatements(t *testing.T) {
	addr, _ := startServer(t, minerule.ServerConfig{})
	db := openDB(t, "tcp://"+addr)

	if _, err := db.Exec("CREATE TABLE kv (k VARCHAR, v INTEGER, price FLOAT, ok BOOLEAN, d DATE)"); err != nil {
		t.Fatal(err)
	}
	ins, err := db.Prepare("INSERT INTO kv VALUES (?, ?, ?, ?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	defer ins.Close()
	date := time.Date(1998, 2, 25, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 5; i++ {
		if _, err := ins.Exec(fmt.Sprintf("it's k%d", i), int64(i), float64(i)/2, i%2 == 0, date); err != nil {
			t.Fatal(err)
		}
	}

	sel, err := db.Prepare("SELECT k, v, price, ok, d FROM kv WHERE v >= ?")
	if err != nil {
		t.Fatal(err)
	}
	defer sel.Close()
	rows, err := sel.Query(int64(3))
	if err != nil {
		t.Fatal(err)
	}
	var n int
	for rows.Next() {
		var k string
		var v int64
		var price float64
		var ok bool
		var d time.Time
		if err := rows.Scan(&k, &v, &price, &ok, &d); err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(k, "it's k") || !d.Equal(date) {
			t.Fatalf("row %q %v", k, d)
		}
		n++
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("rows = %d, want 2", n)
	}

	// A bad statement fails at Prepare, not first use.
	if _, err := db.Prepare("SELECT nope FROM missing"); err == nil {
		t.Fatal("want eager prepare failure")
	}
}

func TestAuthTokenDSN(t *testing.T) {
	addr, _ := startServer(t, minerule.ServerConfig{AuthToken: "sesame"})

	db := openDB(t, "tcp://"+addr+"?token=sesame")
	if err := db.Ping(); err != nil {
		t.Fatal(err)
	}

	bad := openDB(t, "tcp://"+addr+"?token=wrong")
	err := bad.Ping()
	if err == nil {
		t.Fatal("want auth failure")
	}
	var werr *mrdriver.Error
	if !errors.As(err, &werr) || werr.Code != "AUTH" {
		t.Fatalf("want typed AUTH error, got %v", err)
	}
}

// TestConcurrentSessions runs N driver connections against one server,
// mixing DDL, DML, queries and MINE RULE. Run under -race this is the
// regression test for the session/limits plumbing.
func TestConcurrentSessions(t *testing.T) {
	addr, _ := startServer(t, minerule.ServerConfig{MaxConns: 16})
	seed := openDB(t, "tcp://"+addr)
	if _, err := seed.Exec(purchaseDDL); err != nil {
		t.Fatal(err)
	}

	const workers = 6
	var wg sync.WaitGroup
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			db, err := sql.Open("minerule", "tcp://"+addr)
			if err != nil {
				errc <- err
				return
			}
			defer db.Close()
			db.SetMaxOpenConns(1)

			tbl := fmt.Sprintf("w%d", w)
			if _, err := db.Exec(fmt.Sprintf("CREATE TABLE %s (a INTEGER, b VARCHAR)", tbl)); err != nil {
				errc <- fmt.Errorf("worker %d create: %w", w, err)
				return
			}
			for i := 0; i < 20; i++ {
				if _, err := db.Exec(fmt.Sprintf("INSERT INTO %s VALUES (%d, 'x%d')", tbl, i, i)); err != nil {
					errc <- fmt.Errorf("worker %d insert: %w", w, err)
					return
				}
			}
			var cnt int64
			if err := db.QueryRow(fmt.Sprintf("SELECT COUNT(*) FROM %s", tbl)).Scan(&cnt); err != nil {
				errc <- fmt.Errorf("worker %d count: %w", w, err)
				return
			}
			if cnt != 20 {
				errc <- fmt.Errorf("worker %d count = %d", w, cnt)
				return
			}
			rows, err := db.Query(fmt.Sprintf(`MINE RULE Out%d AS
				SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
				FROM Purchase GROUP BY tr
				EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.8`, w))
			if err != nil {
				errc <- fmt.Errorf("worker %d mine: %w", w, err)
				return
			}
			var mined int
			for rows.Next() {
				var body, head string
				var sup, conf float64
				if err := rows.Scan(&body, &head, &sup, &conf); err != nil {
					errc <- fmt.Errorf("worker %d scan: %w", w, err)
					return
				}
				mined++
			}
			if err := rows.Err(); err != nil {
				errc <- fmt.Errorf("worker %d rules: %w", w, err)
				return
			}
			if mined == 0 {
				errc <- fmt.Errorf("worker %d mined nothing", w)
			}
		}(w)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestPerSessionLimits verifies one session's budget trips without
// affecting a concurrent neighbour on the same server.
func TestPerSessionLimits(t *testing.T) {
	addr, _ := startServer(t, minerule.ServerConfig{})
	seed := openDB(t, "tcp://"+addr)
	if _, err := seed.Exec(purchaseDDL); err != nil {
		t.Fatal(err)
	}

	bounded := openDB(t, "tcp://"+addr+"?max_rows=3")
	free := openDB(t, "tcp://"+addr)

	var wg sync.WaitGroup
	wg.Add(2)
	var boundedErr, freeErr error
	go func() {
		defer wg.Done()
		rows, err := bounded.Query("SELECT * FROM Purchase")
		if err == nil {
			for rows.Next() {
			}
			err = rows.Err()
			rows.Close()
		}
		boundedErr = err
	}()
	go func() {
		defer wg.Done()
		var cnt int64
		freeErr = free.QueryRow("SELECT COUNT(*) FROM Purchase").Scan(&cnt)
		if freeErr == nil && cnt != 8 {
			freeErr = fmt.Errorf("count = %d", cnt)
		}
	}()
	wg.Wait()

	if boundedErr == nil {
		t.Fatal("bounded session: want budget error")
	}
	if !errors.Is(boundedErr, minerule.ErrBudgetExceeded) {
		t.Fatalf("bounded session: want ErrBudgetExceeded, got %v", boundedErr)
	}
	var werr *mrdriver.Error
	if !errors.As(boundedErr, &werr) || werr.Code != "BUDGET" {
		t.Fatalf("bounded session: want wire code BUDGET, got %v", boundedErr)
	}
	if freeErr != nil {
		t.Fatalf("free session must be unaffected: %v", freeErr)
	}
}

// TestServerCapsSessionLimits: a session may tighten but not exceed the
// server's default bounds.
func TestServerCapsSessionLimits(t *testing.T) {
	addr, _ := startServer(t, minerule.ServerConfig{
		DefaultLimits: minerule.Limits{MaxRows: 4},
	})
	seed := openDB(t, "tcp://"+addr+"?max_rows=1000000") // ask for more; get capped
	if _, err := seed.Exec("CREATE TABLE t (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := seed.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := seed.Query("SELECT * FROM t") // materializes 4 rows: at the cap
	if err == nil {
		for rows.Next() {
		}
		err = rows.Err()
		rows.Close()
	}
	if err != nil {
		t.Fatalf("4 rows at the cap must pass: %v", err)
	}
	if _, err := seed.Exec("INSERT INTO t VALUES (4)"); err != nil {
		t.Fatal(err)
	}
	rows, err = seed.Query("SELECT * FROM t") // 5 rows: beyond the capped bound
	if err == nil {
		for rows.Next() {
		}
		err = rows.Err()
		rows.Close()
	}
	if !errors.Is(err, minerule.ErrBudgetExceeded) {
		t.Fatalf("want capped budget trip, got %v", err)
	}
}

// TestMidQueryDisconnectCancellation cancels a client context mid-query
// and verifies the cancellation reaches the engine: the statement dies
// server-side (freeing the engine for the next session) instead of
// running to completion against a vanished client.
func TestMidQueryDisconnectCancellation(t *testing.T) {
	addr, sys := startServer(t, minerule.ServerConfig{})
	seed := openDB(t, "tcp://"+addr)
	if _, err := seed.Exec("CREATE TABLE big (a INTEGER, b INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if _, err := seed.Exec(fmt.Sprintf("INSERT INTO big VALUES (%d, %d)", i, i%7)); err != nil {
			t.Fatal(err)
		}
	}

	db := openDB(t, "tcp://"+addr)
	ctx, cancel := context.WithCancel(context.Background())
	start := time.Now()
	go func() {
		time.Sleep(150 * time.Millisecond)
		cancel()
	}()
	// A three-way cross product: far too slow to finish before cancel.
	_, err := db.QueryContext(ctx,
		"SELECT COUNT(*) FROM big x, big y, big z WHERE x.b = y.b AND y.b = z.b")
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("want cancellation error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancellation took %v: did not reach the engine", elapsed)
	}

	// The engine must be free again: a fresh session's statement runs
	// promptly because the canceled one aborted server-side.
	var cnt int64
	if err := seed.QueryRow("SELECT COUNT(*) FROM big").Scan(&cnt); err != nil {
		t.Fatal(err)
	}
	if cnt != 400 {
		t.Fatalf("count = %d", cnt)
	}

	// The canceled statement shows up on the server's counters. Since
	// statements run concurrently (no global engine lock), the fresh
	// COUNT above no longer serializes behind the canceled session's
	// teardown — poll until its disconnect has been accounted.
	deadline := time.Now().Add(10 * time.Second)
	for {
		var metrics strings.Builder
		if err := sys.WriteMetrics(&metrics); err != nil {
			t.Fatal(err)
		}
		if strings.Contains(metrics.String(), "minerule_server_canceled_total 1") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canceled counter missing:\n%s", grepLines(metrics.String(), "minerule_server"))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestExplainOverTheWire(t *testing.T) {
	addr, _ := startServer(t, minerule.ServerConfig{})
	db := openDB(t, "tcp://"+addr)
	if _, err := db.Exec(purchaseDDL); err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query(`EXPLAIN MINE RULE Never AS
		SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
		FROM Purchase GROUP BY tr
		EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.8`)
	if err != nil {
		t.Fatal(err)
	}
	var plan []string
	for rows.Next() {
		var line string
		if err := rows.Scan(&line); err != nil {
			t.Fatal(err)
		}
		plan = append(plan, line)
	}
	if err := rows.Err(); err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(plan, "\n")
	if !strings.Contains(joined, "classification") || !strings.Contains(joined, "Q1") {
		t.Fatalf("unexpected plan:\n%s", joined)
	}
	// EXPLAIN must not have executed anything.
	if _, err := db.Exec("SELECT COUNT(*) FROM Never"); err == nil {
		t.Fatal("EXPLAIN must not create output tables")
	}
}

func TestInvalidStatementKeepsSessionAlive(t *testing.T) {
	addr, _ := startServer(t, minerule.ServerConfig{})
	db := openDB(t, "tcp://"+addr)
	db.SetMaxOpenConns(1)
	if _, err := db.Exec("SELECT FROM nope ("); err == nil {
		t.Fatal("want parse error")
	}
	var one int64
	if err := db.QueryRow("SELECT 1").Scan(&one); err != nil || one != 1 {
		t.Fatalf("session must survive a bad statement: %v", err)
	}
}

func TestDSNValidation(t *testing.T) {
	if _, err := sql.Open("minerule", "http://x"); err == nil {
		db, _ := sql.Open("minerule", "http://x")
		if db != nil {
			if err := db.Ping(); err == nil {
				t.Fatal("want scheme error")
			}
		}
	}
	db, err := sql.Open("minerule", "tcp://127.0.0.1:1?bogus=1")
	if err == nil {
		if err := db.Ping(); err == nil || !strings.Contains(err.Error(), "unknown DSN parameter") {
			t.Fatalf("want unknown-parameter error, got %v", err)
		}
		db.Close()
	}
}

// grepLines filters s to lines containing sub, for failure messages.
func grepLines(s, sub string) string {
	var out []string
	for _, l := range strings.Split(s, "\n") {
		if strings.Contains(l, sub) {
			out = append(out, l)
		}
	}
	return strings.Join(out, "\n")
}

// TestDriverTransactions round-trips db.BeginTx onto the wire's
// BEGIN/COMMIT/ROLLBACK statements against a booted server: an open
// transaction's writes are invisible to other sessions until Commit,
// and Rollback discards them.
func TestDriverTransactions(t *testing.T) {
	addr, _ := startServer(t, minerule.ServerConfig{})
	db := openDB(t, "tcp://"+addr)
	other := openDB(t, "tcp://"+addr) // independent session: the observer

	if _, err := db.Exec("CREATE TABLE acct (id INTEGER, bal INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO acct VALUES (1, 100), (2, 200)"); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	tx, err := db.BeginTx(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("UPDATE acct SET bal = bal - 10 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("UPDATE acct SET bal = bal + 10 WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	// The transfer is uncommitted: the observer session must still see
	// the original balances.
	var bal int64
	if err := other.QueryRow("SELECT bal FROM acct WHERE id = 1").Scan(&bal); err != nil {
		t.Fatal(err)
	}
	if bal != 100 {
		t.Fatalf("uncommitted write leaked: observer sees bal=%d, want 100", bal)
	}
	// The transaction sees its own writes.
	if err := tx.QueryRow("SELECT bal FROM acct WHERE id = 1").Scan(&bal); err != nil {
		t.Fatal(err)
	}
	if bal != 90 {
		t.Fatalf("transaction does not see its own write: bal=%d, want 90", bal)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	var sum int64
	if err := other.QueryRow("SELECT SUM(bal) FROM acct").Scan(&sum); err != nil {
		t.Fatal(err)
	}
	if sum != 300 {
		t.Fatalf("sum after commit = %d, want 300", sum)
	}
	if err := other.QueryRow("SELECT bal FROM acct WHERE id = 2").Scan(&bal); err != nil {
		t.Fatal(err)
	}
	if bal != 210 {
		t.Fatalf("bal after commit = %d, want 210", bal)
	}

	// Rollback discards the write set.
	tx, err = db.BeginTx(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec("DELETE FROM acct"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	var n int64
	if err := db.QueryRow("SELECT COUNT(*) FROM acct").Scan(&n); err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("rows after rollback = %d, want 2", n)
	}

	// Unsupported isolation levels fail at BeginTx, before any frame.
	if _, err := db.BeginTx(ctx, &sql.TxOptions{Isolation: sql.LevelSerializable}); err == nil {
		t.Fatal("want isolation-level error")
	} else if !strings.Contains(err.Error(), "isolation level") {
		t.Fatalf("unexpected error: %v", err)
	}

	// A session that drops its socket mid-transaction must release its
	// locks and roll back. database/sql never abandons a checked-out
	// conn, so speak the wire protocol directly: handshake, BEGIN, one
	// UPDATE, then close the socket with the transaction open.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(nc)
	bw := bufio.NewWriter(nc)
	send := func(typ byte, payload []byte) {
		t.Helper()
		if err := wire.WriteFrame(bw, typ, payload); err != nil {
			t.Fatal(err)
		}
		if err := bw.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	var sb wire.Builder
	sb.PutU32(wire.ProtocolVersion)
	sb.PutU16(0)
	send(wire.MsgStartup, sb.B)
	if typ, _, err := wire.ReadFrame(br); err != nil || typ != wire.MsgAuthOK {
		t.Fatalf("startup: typ=%q err=%v", typ, err)
	}
	runRaw := func(stmt string) {
		t.Helper()
		var qb wire.Builder
		qb.PutString(stmt)
		send(wire.MsgQuery, qb.B)
		for {
			typ, payload, err := wire.ReadFrame(br)
			if err != nil {
				t.Fatal(err)
			}
			if typ == wire.MsgError {
				t.Fatalf("%s failed: %s", stmt, payload)
			}
			if typ == wire.MsgComplete {
				return
			}
		}
	}
	runRaw("BEGIN")
	runRaw("UPDATE acct SET bal = 0 WHERE id = 1")
	nc.Close() // mid-transaction disconnect
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := db.Exec("UPDATE acct SET bal = 100 WHERE id = 1"); err == nil {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("table still locked after mid-transaction disconnect: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := db.QueryRow("SELECT bal FROM acct WHERE id = 1").Scan(&bal); err != nil {
		t.Fatal(err)
	}
	if bal != 100 {
		t.Fatalf("bal = %d, want 100 (abandoned transaction must roll back)", bal)
	}
}
