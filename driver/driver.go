// Package driver is the native database/sql driver for a minerule
// server (cmd/minerule-serve or minerule.Serve). Import it blank and
// open with the "minerule" driver name:
//
//	import (
//	    "database/sql"
//	    _ "minerule/driver"
//	)
//
//	db, err := sql.Open("minerule", "tcp://localhost:7733?max_rows=100000")
//
// The DSN is a URL: tcp://host:port with optional query parameters
// token (startup credential), max_rows, max_candidates, max_page_io,
// max_runtime_ms (per-session resource limits, capped by the server's
// defaults) and mine_replace=0 to make MINE RULE fail instead of
// replacing an existing output table.
//
// Statements go through the ordinary database/sql surface, including
// MINE RULE: a Query whose text is a MINE RULE statement streams the
// mined rules back as rows with columns BODY, HEAD, SUPPORT and
// CONFIDENCE. Placeholders use '?'. Errors carry the server's typed
// code and unwrap to the same sentinels the embedded API returns, so
// errors.Is(err, minerule.ErrBudgetExceeded) works identically in both
// deployments.
package driver

import (
	"bufio"
	"context"
	"database/sql"
	sqldriver "database/sql/driver"
	"errors"
	"fmt"
	"io"
	"net"
	"net/url"
	"sync/atomic"

	"minerule/internal/resource"
	"minerule/internal/server/wire"
)

func init() {
	sql.Register("minerule", &Driver{})
}

// Driver implements database/sql/driver for the minerule wire protocol.
type Driver struct{}

// Open dials and performs the startup handshake.
func (d *Driver) Open(dsn string) (sqldriver.Conn, error) {
	return d.open(context.Background(), dsn)
}

func (d *Driver) open(ctx context.Context, dsn string) (sqldriver.Conn, error) {
	c, err := d.OpenConnector(dsn)
	if err != nil {
		return nil, err
	}
	return c.(*connector).connect(ctx)
}

// OpenConnector parses the DSN once; database/sql dials through the
// returned connector with the caller's context.
func (d *Driver) OpenConnector(dsn string) (sqldriver.Connector, error) {
	cfg, err := parseDSN(dsn)
	if err != nil {
		return nil, err
	}
	return &connector{drv: d, cfg: cfg}, nil
}

// config is a parsed DSN.
type config struct {
	addr    string
	options map[string]string // startup options, verbatim
}

func parseDSN(dsn string) (config, error) {
	u, err := url.Parse(dsn)
	if err != nil {
		return config{}, fmt.Errorf("minerule driver: bad DSN %q: %w", dsn, err)
	}
	if u.Scheme != "tcp" {
		return config{}, fmt.Errorf("minerule driver: unsupported DSN scheme %q (want tcp://host:port)", u.Scheme)
	}
	if u.Host == "" {
		return config{}, fmt.Errorf("minerule driver: DSN %q has no host", dsn)
	}
	cfg := config{addr: u.Host, options: make(map[string]string)}
	for k, vs := range u.Query() {
		switch k {
		case "token", "max_rows", "max_candidates", "max_page_io", "max_runtime_ms", "mine_replace":
			if len(vs) > 0 {
				cfg.options[k] = vs[0]
			}
		default:
			return config{}, fmt.Errorf("minerule driver: unknown DSN parameter %q", k)
		}
	}
	return cfg, nil
}

type connector struct {
	drv *Driver
	cfg config
}

func (c *connector) Driver() sqldriver.Driver { return c.drv }

func (c *connector) Connect(ctx context.Context) (sqldriver.Conn, error) {
	return c.connect(ctx)
}

func (c *connector) connect(ctx context.Context) (*conn, error) {
	var d net.Dialer
	nc, err := d.DialContext(ctx, "tcp", c.cfg.addr)
	if err != nil {
		return nil, fmt.Errorf("minerule driver: dial %s: %w", c.cfg.addr, err)
	}
	cn := &conn{
		nc: nc,
		br: bufio.NewReader(nc),
		bw: bufio.NewWriter(nc),
	}
	if err := cn.startup(ctx, c.cfg.options); err != nil {
		nc.Close()
		return nil, err
	}
	return cn, nil
}

// conn is one wire connection. database/sql guarantees a conn is used
// by one goroutine at a time; the only concurrent access is the
// context watchdog, which closes the socket to interrupt a blocking
// read and marks the conn bad through an atomic.
type conn struct {
	nc        net.Conn
	br        *bufio.Reader
	bw        *bufio.Writer
	sessionID uint64
	bad       atomic.Bool
	closed    bool
}

// Error is a typed failure reported by the server. Code is one of the
// wire codes (CANCELED, BUDGET, DEGRADED, CORRUPT, IO, INVALID, AUTH,
// ADMISSION, SHUTDOWN, PROTOCOL, INTERNAL); Unwrap maps it to the
// matching sentinel of the embedded API's error taxonomy.
type Error struct {
	Code string
	Msg  string
}

func (e *Error) Error() string { return e.Msg }

// Unwrap maps the wire code onto the embedded error taxonomy, so
// errors.Is against minerule.Err* works for remote failures too.
func (e *Error) Unwrap() error {
	switch e.Code {
	case wire.CodeCanceled:
		return resource.ErrCanceled
	case wire.CodeBudget:
		return resource.ErrBudgetExceeded
	case wire.CodeDegraded:
		return resource.ErrDegraded
	case wire.CodeCorrupt:
		return resource.ErrCorruptPage
	case wire.CodeIO:
		return resource.ErrIO
	default:
		return nil
	}
}

func (c *conn) startup(ctx context.Context, options map[string]string) error {
	stop := c.watch(ctx)
	defer stop()
	var b wire.Builder
	b.PutU32(wire.ProtocolVersion)
	b.PutU16(uint16(len(options)))
	for k, v := range options {
		b.PutString(k)
		b.PutString(v)
	}
	if err := c.send(wire.MsgStartup, b.B); err != nil {
		return err
	}
	typ, payload, err := wire.ReadFrame(c.br)
	if err != nil {
		return fmt.Errorf("minerule driver: startup: %w", err)
	}
	switch typ {
	case wire.MsgAuthOK:
		p := wire.Parser{B: payload}
		c.sessionID = p.U64()
		return p.Err()
	case wire.MsgError:
		return decodeError(payload)
	default:
		return fmt.Errorf("minerule driver: unexpected startup response frame %q", typ)
	}
}

// watch interrupts a blocking round-trip when ctx is canceled by
// closing the socket (the protocol has no out-of-band cancel); the
// conn is then bad and database/sql discards it.
func (c *conn) watch(ctx context.Context) (stop func()) {
	if ctx == nil || ctx.Done() == nil {
		return func() {}
	}
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			c.bad.Store(true)
			c.nc.Close()
		case <-done:
		}
	}()
	return func() { close(done) }
}

func (c *conn) send(typ byte, payload []byte) error {
	if err := wire.WriteFrame(c.bw, typ, payload); err != nil {
		c.bad.Store(true)
		return sqldriver.ErrBadConn
	}
	if err := c.bw.Flush(); err != nil {
		c.bad.Store(true)
		return sqldriver.ErrBadConn
	}
	return nil
}

// read returns the next response frame, converting transport failures
// into ErrBadConn so the pool retires the connection.
func (c *conn) read(ctx context.Context) (byte, []byte, error) {
	typ, payload, err := wire.ReadFrame(c.br)
	if err != nil {
		c.bad.Store(true)
		if ctx != nil && ctx.Err() != nil {
			return 0, nil, ctx.Err()
		}
		return 0, nil, sqldriver.ErrBadConn
	}
	return typ, payload, nil
}

func decodeError(payload []byte) error {
	p := wire.Parser{B: payload}
	code := p.String()
	msg := p.String()
	if p.Err() != nil {
		return fmt.Errorf("minerule driver: malformed error frame: %w", p.Err())
	}
	return &Error{Code: code, Msg: msg}
}

// ---------------------------------------------------------------------------
// driver.Conn

func (c *conn) Prepare(query string) (sqldriver.Stmt, error) {
	return c.PrepareContext(context.TODO(), query)
}

func (c *conn) PrepareContext(ctx context.Context, query string) (sqldriver.Stmt, error) {
	if c.bad.Load() {
		return nil, sqldriver.ErrBadConn
	}
	stop := c.watch(ctx)
	defer stop()
	var b wire.Builder
	b.PutString(query)
	if err := c.send(wire.MsgPrepare, b.B); err != nil {
		return nil, err
	}
	typ, payload, err := c.read(ctx)
	if err != nil {
		return nil, err
	}
	switch typ {
	case wire.MsgPrepared:
		p := wire.Parser{B: payload}
		id := p.U32()
		n := int(p.U16())
		if err := p.Err(); err != nil {
			c.bad.Store(true)
			return nil, sqldriver.ErrBadConn
		}
		return &stmt{c: c, id: id, numInput: n}, nil
	case wire.MsgError:
		return nil, decodeError(payload)
	default:
		c.bad.Store(true)
		return nil, sqldriver.ErrBadConn
	}
}

func (c *conn) Close() error {
	if c.closed {
		return nil
	}
	c.closed = true
	if !c.bad.Load() {
		// Best effort: tell the server we are leaving cleanly.
		wire.WriteFrame(c.bw, wire.MsgTerminate, nil)
		c.bw.Flush()
	}
	return c.nc.Close()
}

// Begin is required by driver.Conn; database/sql prefers BeginTx.
func (c *conn) Begin() (sqldriver.Tx, error) {
	return c.BeginTx(context.Background(), sqldriver.TxOptions{})
}

// BeginTx opens an explicit transaction on the session by sending BEGIN
// as an ordinary Query frame; Commit and Rollback send COMMIT/ROLLBACK
// the same way. The engine runs snapshot isolation, so only the default
// and snapshot isolation levels are accepted; ReadOnly is advisory (all
// reads are snapshot reads regardless).
func (c *conn) BeginTx(ctx context.Context, opts sqldriver.TxOptions) (sqldriver.Tx, error) {
	switch sql.IsolationLevel(opts.Isolation) {
	case sql.LevelDefault, sql.LevelSnapshot:
	default:
		return nil, fmt.Errorf("minerule driver: isolation level %s is not supported (the engine runs snapshot isolation)", sql.IsolationLevel(opts.Isolation))
	}
	if c.bad.Load() {
		return nil, sqldriver.ErrBadConn
	}
	if err := c.txnControl(ctx, "BEGIN"); err != nil {
		return nil, err
	}
	return &tx{c: c}, nil
}

// txnControl round-trips one transaction-control statement.
func (c *conn) txnControl(ctx context.Context, stmt string) error {
	var b wire.Builder
	b.PutString(stmt)
	_, err := c.roundTripExec(ctx, wire.MsgQuery, b.B)
	return err
}

// tx is an open explicit transaction on its conn. database/sql
// guarantees exactly one of Commit/Rollback is called, on the same
// goroutine that uses the conn.
type tx struct{ c *conn }

// Commit and Rollback are the API layer for transaction teardown —
// database/sql's driver.Tx interface carries no context, so they mint
// the background one.
func (t *tx) Commit() error { return t.c.finishTxn(context.Background(), "COMMIT") }

func (t *tx) Rollback() error { return t.c.finishTxn(context.Background(), "ROLLBACK") }

func (c *conn) finishTxn(ctx context.Context, stmt string) error {
	if c.bad.Load() {
		return sqldriver.ErrBadConn
	}
	return c.txnControl(ctx, stmt)
}

// IsValid keeps database/sql from handing out a conn whose socket was
// closed by a cancellation watchdog.
func (c *conn) IsValid() bool { return !c.bad.Load() }

// ---------------------------------------------------------------------------
// Direct query/exec (no server-side prepare round trip)

func (c *conn) QueryContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	if len(args) > 0 {
		return nil, sqldriver.ErrSkip // fall back to Prepare/Execute
	}
	if c.bad.Load() {
		return nil, sqldriver.ErrBadConn
	}
	var b wire.Builder
	b.PutString(query)
	return c.roundTripQuery(ctx, wire.MsgQuery, b.B)
}

func (c *conn) ExecContext(ctx context.Context, query string, args []sqldriver.NamedValue) (sqldriver.Result, error) {
	if len(args) > 0 {
		return nil, sqldriver.ErrSkip
	}
	if c.bad.Load() {
		return nil, sqldriver.ErrBadConn
	}
	var b wire.Builder
	b.PutString(query)
	return c.roundTripExec(ctx, wire.MsgQuery, b.B)
}

// roundTripQuery sends a request whose response is a row stream and
// returns lazily-reading Rows. The context watchdog stays armed until
// the rows are closed: canceling mid-stream closes the socket and the
// in-flight statement dies server-side.
func (c *conn) roundTripQuery(ctx context.Context, typ byte, payload []byte) (sqldriver.Rows, error) {
	stop := c.watch(ctx)
	if err := c.send(typ, payload); err != nil {
		stop()
		return nil, err
	}
	for {
		ftyp, fp, err := c.read(ctx)
		if err != nil {
			stop()
			return nil, err
		}
		switch ftyp {
		case wire.MsgRowDesc:
			p := wire.Parser{B: fp}
			n := int(p.U16())
			cols := make([]string, 0, n)
			tags := make([]byte, 0, n)
			for i := 0; i < n; i++ {
				cols = append(cols, p.String())
				tags = append(tags, p.Byte())
			}
			if err := p.Err(); err != nil {
				stop()
				c.bad.Store(true)
				return nil, sqldriver.ErrBadConn
			}
			return &rows{c: c, ctx: ctx, stop: stop, cols: cols, tags: tags}, nil
		case wire.MsgComplete:
			// Statement produced no rows (e.g. DDL run through Query):
			// surface an empty, already-done row set.
			stop()
			return &rows{c: c, ctx: ctx, stop: func() {}, done: true}, nil
		case wire.MsgError:
			stop()
			return nil, decodeError(fp)
		default:
			stop()
			c.bad.Store(true)
			return nil, sqldriver.ErrBadConn
		}
	}
}

// roundTripExec sends a request and drains its response, returning the
// rows-affected count from the Complete frame.
func (c *conn) roundTripExec(ctx context.Context, typ byte, payload []byte) (sqldriver.Result, error) {
	stop := c.watch(ctx)
	defer stop()
	if err := c.send(typ, payload); err != nil {
		return nil, err
	}
	for {
		ftyp, fp, err := c.read(ctx)
		if err != nil {
			return nil, err
		}
		switch ftyp {
		case wire.MsgRowDesc, wire.MsgDataRow, wire.MsgRuleRow:
			continue // Exec on a query: drain the rows
		case wire.MsgComplete:
			p := wire.Parser{B: fp}
			_ = p.String() // command tag
			n := p.U64()
			if err := p.Err(); err != nil {
				c.bad.Store(true)
				return nil, sqldriver.ErrBadConn
			}
			return result{rows: int64(n)}, nil
		case wire.MsgError:
			return nil, decodeError(fp)
		default:
			c.bad.Store(true)
			return nil, sqldriver.ErrBadConn
		}
	}
}

type result struct{ rows int64 }

func (r result) LastInsertId() (int64, error) {
	return 0, errors.New("minerule driver: LastInsertId is not supported")
}
func (r result) RowsAffected() (int64, error) { return r.rows, nil }

// ---------------------------------------------------------------------------
// Prepared statements

type stmt struct {
	c        *conn
	id       uint32
	numInput int
	closed   bool
}

func (s *stmt) Close() error {
	if s.closed || s.c.bad.Load() || s.c.closed {
		return nil
	}
	s.closed = true
	var b wire.Builder
	b.PutU32(s.id)
	if err := s.c.send(wire.MsgCloseStmt, b.B); err != nil {
		return err
	}
	for {
		typ, fp, err := s.c.read(nil) // read tolerates a nil ctx
		if err != nil {
			return err
		}
		switch typ {
		case wire.MsgComplete:
			return nil
		case wire.MsgError:
			return decodeError(fp)
		}
	}
}

func (s *stmt) NumInput() int { return s.numInput }

func (s *stmt) executePayload(args []sqldriver.NamedValue) []byte {
	var b wire.Builder
	b.PutU32(s.id)
	b.PutU16(uint16(len(args)))
	for _, a := range args {
		b.PutValue(a.Value)
	}
	return b.B
}

func (s *stmt) Exec(args []sqldriver.Value) (sqldriver.Result, error) {
	return s.ExecContext(context.TODO(), namedValues(args))
}

func (s *stmt) Query(args []sqldriver.Value) (sqldriver.Rows, error) {
	return s.QueryContext(context.TODO(), namedValues(args))
}

func (s *stmt) ExecContext(ctx context.Context, args []sqldriver.NamedValue) (sqldriver.Result, error) {
	if s.c.bad.Load() {
		return nil, sqldriver.ErrBadConn
	}
	return s.c.roundTripExec(ctx, wire.MsgExecute, s.executePayload(args))
}

func (s *stmt) QueryContext(ctx context.Context, args []sqldriver.NamedValue) (sqldriver.Rows, error) {
	if s.c.bad.Load() {
		return nil, sqldriver.ErrBadConn
	}
	return s.c.roundTripQuery(ctx, wire.MsgExecute, s.executePayload(args))
}

func namedValues(vals []sqldriver.Value) []sqldriver.NamedValue {
	out := make([]sqldriver.NamedValue, len(vals))
	for i, v := range vals {
		out[i] = sqldriver.NamedValue{Ordinal: i + 1, Value: v}
	}
	return out
}

// ---------------------------------------------------------------------------
// Rows

// rows streams response frames lazily: each Next reads one frame, so a
// large result (or a long rule stream) never materializes client-side.
type rows struct {
	c    *conn
	ctx  context.Context
	stop func() // disarms the cancellation watchdog
	cols []string
	tags []byte
	done bool
	rowsN int64
}

func (r *rows) Columns() []string { return r.cols }

func (r *rows) Close() error {
	if r.done {
		r.stop()
		return nil
	}
	// Drain the remaining frames so the connection returns to ready.
	for {
		typ, _, err := r.c.read(r.ctx)
		if err != nil {
			r.done = true
			r.stop()
			return err
		}
		if typ == wire.MsgComplete || typ == wire.MsgError {
			r.done = true
			r.stop()
			return nil
		}
	}
}

func (r *rows) Next(dest []sqldriver.Value) error {
	if r.done {
		return io.EOF
	}
	typ, fp, err := r.c.read(r.ctx)
	if err != nil {
		r.done = true
		r.stop()
		return err
	}
	switch typ {
	case wire.MsgDataRow, wire.MsgRuleRow:
		p := wire.Parser{B: fp}
		n := int(p.U16())
		if n != len(dest) {
			r.c.bad.Store(true)
			r.done = true
			r.stop()
			return fmt.Errorf("minerule driver: row has %d values, want %d", n, len(dest))
		}
		for i := 0; i < n; i++ {
			dest[i] = p.Value()
		}
		if err := p.Err(); err != nil {
			r.c.bad.Store(true)
			r.done = true
			r.stop()
			return sqldriver.ErrBadConn
		}
		r.rowsN++
		return nil
	case wire.MsgComplete:
		r.done = true
		r.stop()
		return io.EOF
	case wire.MsgError:
		r.done = true
		r.stop()
		return decodeError(fp)
	default:
		r.c.bad.Store(true)
		r.done = true
		r.stop()
		return sqldriver.ErrBadConn
	}
}

// ColumnTypeDatabaseTypeName surfaces the wire tag as a type name.
func (r *rows) ColumnTypeDatabaseTypeName(index int) string {
	if index >= len(r.tags) {
		return ""
	}
	switch r.tags[index] {
	case wire.TagInt:
		return "INT"
	case wire.TagFloat:
		return "FLOAT"
	case wire.TagBool:
		return "BOOL"
	case wire.TagDate:
		return "DATE"
	default:
		return "STRING"
	}
}

// Compile-time interface checks.
var (
	_ sqldriver.DriverContext                  = (*Driver)(nil)
	_ sqldriver.Conn                           = (*conn)(nil)
	_ sqldriver.ConnPrepareContext             = (*conn)(nil)
	_ sqldriver.QueryerContext                 = (*conn)(nil)
	_ sqldriver.ExecerContext                  = (*conn)(nil)
	_ sqldriver.Validator                      = (*conn)(nil)
	_ sqldriver.ConnBeginTx                    = (*conn)(nil)
	_ sqldriver.StmtExecContext                = (*stmt)(nil)
	_ sqldriver.StmtQueryContext               = (*stmt)(nil)
	_ sqldriver.RowsColumnTypeDatabaseTypeName = (*rows)(nil)
)
