package minerule_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"minerule"
	"minerule/internal/sql/value"
)

const simpleMine = `
MINE RULE ConcAssoc AS
SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
FROM Purchase
GROUP BY tr
EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.8`

// TestConcurrentQueryAndMine runs independent Systems in parallel —
// queries against one, mining against the other — under the race
// detector (the CI satellite runs go test -race). Each System is
// single-user, but separate Systems must never share mutable state.
func TestConcurrentQueryAndMine(t *testing.T) {
	querySystems := make([]*minerule.System, 4)
	for i := range querySystems {
		querySystems[i] = newSystem(t)
	}
	sysM := newSystem(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(2)
		go func(sysQ *minerule.System) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, err := sysQ.QueryInt("SELECT COUNT(*) FROM Purchase"); err != nil {
					errs <- err
					return
				}
			}
		}(querySystems[w])
		go func(w int) {
			defer wg.Done()
			sys, _ := minerule.Open()
			if err := sys.ExecScript(`
				CREATE TABLE Purchase (tr INTEGER, cust VARCHAR, item VARCHAR, dt DATE, price FLOAT, qty INTEGER);
				INSERT INTO Purchase VALUES
					(1, 'c1', 'a', DATE '1995-12-17', 10, 1),
					(1, 'c1', 'b', DATE '1995-12-17', 10, 1),
					(2, 'c2', 'a', DATE '1995-12-18', 10, 1),
					(2, 'c2', 'b', DATE '1995-12-18', 10, 1);
			`); err != nil {
				errs <- err
				return
			}
			if _, err := sys.Mine(simpleMine); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := sysM.Mine(simpleMine, minerule.WithAlgorithm(minerule.Partition)); err != nil {
			errs <- err
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestNoPanicFromSQLTypeMismatch drives value accessor mismatches
// through the executor: scalar functions applied to the wrong type must
// come back as errors, never as panics escaping Exec.
func TestNoPanicFromSQLTypeMismatch(t *testing.T) {
	sys := newSystem(t)
	for _, q := range []string{
		"SELECT UPPER(tr) FROM Purchase",
		"SELECT LOWER(price) FROM Purchase",
		"SELECT LENGTH(dt) FROM Purchase",
		"SELECT TRIM(qty) FROM Purchase",
		"SELECT SUBSTR(tr, 1, 2) FROM Purchase",
		"SELECT ABS(item) FROM Purchase",
		"SELECT MOD(item, 2) FROM Purchase",
		"SELECT item FROM Purchase WHERE item LIKE 5",
	} {
		if _, err := sys.Query(q); err == nil {
			t.Errorf("%s: expected a type error", q)
		}
	}
}

// TestAccessorPanicIsTyped pins the contract the executor's recover
// boundary relies on: a mismatched accessor panics with *value.TypeError.
func TestAccessorPanicIsTyped(t *testing.T) {
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("expected a panic")
		}
		te, ok := p.(*value.TypeError)
		if !ok {
			t.Fatalf("panic value is %T, want *value.TypeError", p)
		}
		if te.Op != "Int" {
			t.Errorf("TypeError.Op = %q, want Int", te.Op)
		}
	}()
	_ = value.NewString("x").Int()
}

// TestPublicCancellation exercises the exported context API and error
// taxonomy end to end.
func TestPublicCancellation(t *testing.T) {
	sys := newSystem(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	if _, err := sys.MineContext(ctx, simpleMine); !errors.Is(err, minerule.ErrCanceled) {
		t.Fatalf("MineContext error = %v, want ErrCanceled", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Errorf("expired deadline surfaced after %v, want <100ms", elapsed)
	}
	if err := sys.ExecContext(ctx, "SELECT * FROM Purchase"); !errors.Is(err, minerule.ErrCanceled) {
		t.Fatalf("ExecContext error = %v, want ErrCanceled", err)
	}
	if _, err := sys.QueryContext(ctx, "SELECT * FROM Purchase"); !errors.Is(err, minerule.ErrCanceled) {
		t.Fatalf("QueryContext error = %v, want ErrCanceled", err)
	}
	// The canceled attempts must not have left partial outputs behind.
	if _, err := sys.Query("SELECT * FROM ConcAssoc"); err == nil {
		t.Error("output table exists after canceled mine")
	}
	// And the system still works afterwards.
	if _, err := sys.Mine(simpleMine); err != nil {
		t.Fatalf("mine after cancellation: %v", err)
	}
}

// TestPublicLimits exercises WithLimits and the budget taxonomy through
// the public API.
func TestPublicLimits(t *testing.T) {
	sys := newSystem(t)
	_, err := sys.Mine(simpleMine, minerule.WithLimits(minerule.Limits{MaxCandidates: 1}))
	if !errors.Is(err, minerule.ErrBudgetExceeded) {
		t.Fatalf("Mine error = %v, want ErrBudgetExceeded", err)
	}
	_, err = sys.Mine(simpleMine, minerule.WithLimits(minerule.Limits{MaxRows: 1}))
	if !errors.Is(err, minerule.ErrBudgetExceeded) {
		t.Fatalf("Mine error = %v, want ErrBudgetExceeded", err)
	}
	// System-wide statement limits, removable again.
	sys.SetLimits(minerule.Limits{MaxRows: 2})
	if _, err := sys.Query("SELECT * FROM Purchase"); !errors.Is(err, minerule.ErrBudgetExceeded) {
		t.Fatalf("Query under MaxRows=2 = %v, want ErrBudgetExceeded", err)
	}
	sys.SetLimits(minerule.Limits{})
	if _, err := sys.Query("SELECT * FROM Purchase"); err != nil {
		t.Fatalf("Query after limits removed: %v", err)
	}
	// After the failed budget runs the statement still works.
	if res, err := sys.Mine(simpleMine); err != nil || res.RuleCount == 0 {
		t.Fatalf("mine after budget failures: res=%v err=%v", res, err)
	}
}

// TestInternalErrorString sanity-checks the re-exported error type.
func TestInternalErrorString(t *testing.T) {
	ie := &minerule.InternalError{Op: "core", Recovered: "boom"}
	if !strings.Contains(ie.Error(), "internal error") || !strings.Contains(ie.Error(), "boom") {
		t.Errorf("InternalError.Error() = %q", ie.Error())
	}
}

// TestStorageStatsFaultCounters drives the torn-tail recovery path
// through the public API: a garbage tail on the log must be truncated,
// counted in StorageStats, and exported on /metrics — with the store
// healthy, not degraded.
func TestStorageStatsFaultCounters(t *testing.T) {
	dir := t.TempDir()
	sys, err := minerule.Open(minerule.WithStorage(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ExecScript(`
		CREATE TABLE t (id INTEGER);
		INSERT INTO t VALUES (1);
	`); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}
	appendGarbage(t, dir, "wal-1.log", []byte{7, 0, 0, 0, 0xba, 0xad})

	sys, err = minerule.Open(minerule.WithStorage(dir))
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	defer sys.Close()
	st := sys.StorageStats()
	if st.TornTailTruncations != 1 {
		t.Fatalf("TornTailTruncations = %d, want 1", st.TornTailTruncations)
	}
	if st.Degraded || st.DegradedCause != "" {
		t.Fatalf("torn tail wrongly degraded the store: %+v", st)
	}
	if err := sys.DegradedErr(); err != nil {
		t.Fatalf("DegradedErr = %v, want nil", err)
	}
	if n, err := sys.QueryInt("SELECT COUNT(*) FROM t"); err != nil || n != 1 {
		t.Fatalf("recovered rows = %d, err %v; want 1", n, err)
	}
	var buf strings.Builder
	if err := sys.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "minerule_wal_torn_tail_truncations_total 1") {
		t.Fatalf("/metrics missing torn-tail counter:\n%s", buf.String())
	}
}

// appendGarbage tacks raw bytes onto a file in the database directory,
// simulating a torn tail left by a crash.
func appendGarbage(t *testing.T, dir, name string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, name), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
