// Basket mines simple association rules from a synthetic Quest-style
// market-basket workload (the T·I·D datasets of the algorithm papers the
// architecture builds on) and compares the core-operator pool on it.
package main

import (
	"fmt"
	"log"

	"minerule"
	"minerule/internal/gen"
)

func main() {
	sys, _ := minerule.Open()

	// T8.I4, 2000 groups, 200 items: a small classic basket workload.
	n, err := gen.LoadBaskets(sys.DB(), "Baskets", gen.BasketConfig{
		Groups:        2000,
		AvgSize:       8,
		AvgPatternLen: 4,
		Items:         200,
		Seed:          42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d purchase rows in 2000 baskets\n\n", n)

	stmt := `
		MINE RULE FrequentPairs AS
		SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
		FROM Baskets
		GROUP BY gid
		EXTRACTING RULES WITH SUPPORT: 0.03, CONFIDENCE: 0.5`

	// Run the same statement through each pool algorithm; results must
	// coincide (algorithm interoperability), timings differ.
	for _, algo := range []minerule.Algorithm{
		minerule.Apriori, minerule.AprioriHorizontal, minerule.AprioriTid,
		minerule.AprioriHybrid, minerule.AprioriDHP,
		minerule.Partition, minerule.Sampling,
	} {
		res, err := sys.Mine(stmt, minerule.WithAlgorithm(algo), minerule.WithReplaceOutput())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-20s %4d rules   core %-12v total %v\n",
			res.Algorithm, res.RuleCount, res.Timings.Core.Round(1000), res.Timings.Total().Round(1000))
	}

	res, err := sys.Mine(stmt, minerule.WithReplaceOutput())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nstrongest rules:")
	shown := 0
	for _, r := range res.Rules {
		if r.Confidence >= 0.8 {
			fmt.Println("  " + r.String())
			shown++
			if shown == 10 {
				break
			}
		}
	}
	if shown == 0 {
		fmt.Println("  (none above confidence 0.8; all rules:)")
		for i, r := range res.Rules {
			if i == 10 {
				break
			}
			fmt.Println("  " + r.String())
		}
	}
}
