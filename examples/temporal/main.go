// Temporal mines sequential-pattern-like rules (the paper's headline
// use case): expensive purchases followed on a later date by cheap
// purchases of the same customer, over a synthetic big-store workload.
// It exercises the full general path: CLUSTER BY with a HAVING pair
// condition plus a BODY/HEAD mining condition.
package main

import (
	"fmt"
	"log"

	"minerule"
	"minerule/internal/gen"
)

func main() {
	sys, _ := minerule.Open()

	n, err := gen.LoadPurchases(sys.DB(), "Purchase", gen.PurchaseConfig{
		Customers:    300,
		DatesPerCust: 4,
		ItemsPerDate: 5,
		Items:        60,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d purchase rows for 300 customers\n\n", n)

	res, err := sys.Mine(`
		MINE RULE FollowUpBuys AS
		SELECT DISTINCT 1..2 item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
		WHERE BODY.price >= 100 AND HEAD.price < 100
		FROM Purchase
		GROUP BY cust
		CLUSTER BY dt HAVING BODY.dt < HEAD.dt
		EXTRACTING RULES WITH SUPPORT: 0.05, CONFIDENCE: 0.3`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("classification %s   core %s\n", res.Class, res.Algorithm)
	fmt.Printf("phases: translate %v, preprocess %v, core %v, postprocess %v\n\n",
		res.Timings.Translate.Round(1000), res.Timings.Preprocess.Round(1000),
		res.Timings.Core.Round(1000), res.Timings.Postprocess.Round(1000))

	fmt.Printf("%d follow-up rules (expensive => later cheap):\n", res.RuleCount)
	for i, r := range res.Rules {
		if i == 15 {
			fmt.Printf("  ... and %d more\n", res.RuleCount-15)
			break
		}
		fmt.Println("  " + r.String())
	}

	// Contrast: the same premise/consequence without the ordering
	// constraint (drop the cluster HAVING → C without K: all date pairs).
	res2, err := sys.Mine(`
		MINE RULE AnyPairBuys AS
		SELECT DISTINCT 1..2 item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
		WHERE BODY.price >= 100 AND HEAD.price < 100
		FROM Purchase
		GROUP BY cust
		CLUSTER BY dt
		EXTRACTING RULES WITH SUPPORT: 0.05, CONFIDENCE: 0.3`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwithout the date ordering (%s): %d rules — the HAVING pair filter prunes %d\n",
		res2.Class, res2.RuleCount, res2.RuleCount-res.RuleCount)

	// Tighter still: the follow-up must happen within two weeks. Date
	// arithmetic in the cluster HAVING gives sliding-window sequential
	// patterns.
	res3, err := sys.Mine(`
		MINE RULE QuickFollowUps AS
		SELECT DISTINCT 1..2 item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
		WHERE BODY.price >= 100 AND HEAD.price < 100
		FROM Purchase
		GROUP BY cust
		CLUSTER BY dt HAVING BODY.dt < HEAD.dt AND HEAD.dt - BODY.dt <= 14
		EXTRACTING RULES WITH SUPPORT: 0.05, CONFIDENCE: 0.3`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("within a 14-day window: %d rules — the window prunes another %d\n",
		res3.RuleCount, res.RuleCount-res3.RuleCount)
}
