// Workflow walks the full analyst loop the tightly-coupled architecture
// enables: inspect the translation (EXPLAIN), mine keeping the encoded
// tables, re-mine at a tighter threshold reusing them (paper §3), then
// persist the database — mined rule tables included — and reload it.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"minerule"
	"minerule/internal/gen"
)

func main() {
	sys, _ := minerule.Open()
	if _, err := gen.LoadBaskets(sys.DB(), "Baskets", gen.BasketConfig{
		Groups: 1500, AvgSize: 8, AvgPatternLen: 4, Items: 150, Seed: 11,
	}); err != nil {
		log.Fatal(err)
	}

	stmt := func(support float64) string {
		return fmt.Sprintf(`
			MINE RULE Frequent AS
			SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
			FROM Baskets GROUP BY gid
			EXTRACTING RULES WITH SUPPORT: %g, CONFIDENCE: 0.4`, support)
	}

	// 1. What will the kernel do? EXPLAIN shows the classification and
	// the generated SQL programs without running anything.
	ex, err := sys.Explain(stmt(0.02))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classification %s, simple core: %v, %d preprocessing statements\n\n",
		ex.Class, ex.Simple, len(ex.Steps))

	// 2. Mine, keeping the encoded tables for reuse.
	first, err := sys.Mine(stmt(0.02), minerule.WithKeepEncoded())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("support 0.02: %4d rules, preprocess %8v, total %8v\n",
		first.RuleCount, first.Timings.Preprocess.Round(1000), first.Timings.Total().Round(1000))

	// 3. Tighten the threshold; the preprocessing is skipped entirely.
	second, err := sys.Mine(stmt(0.05),
		minerule.WithKeepEncoded(), minerule.WithReuseEncoded(), minerule.WithReplaceOutput())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("support 0.05: %4d rules, preprocess %8v, total %8v (reused: %v)\n\n",
		second.RuleCount, second.Timings.Preprocess.Round(1000), second.Timings.Total().Round(1000), second.Reused)

	// 4. The rules are tables; inspect how the engine answers a query
	// over them.
	plan, err := sys.ExplainSQL(`
		SELECT COUNT(*) FROM Frequent R, Frequent_Bodies B
		WHERE R.BodyId = B.BodyId AND R.CONFIDENCE >= 0.6`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("engine plan for a query over the mined rules:")
	fmt.Println(plan)

	// 5. Persist everything and prove it comes back.
	dir := filepath.Join(os.TempDir(), "minerule-workflow-demo")
	defer os.RemoveAll(dir)
	if err := sys.Save(dir); err != nil {
		log.Fatal(err)
	}
	restored, err := minerule.LoadFrom(dir)
	if err != nil {
		log.Fatal(err)
	}
	n, err := restored.QueryInt("SELECT COUNT(*) FROM Frequent")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("saved to %s and reloaded: %d rules survive the round trip\n", dir, n)
}
