// Quickstart reproduces the paper's worked example end to end: the
// Purchase table of Figure 1, the FilteredOrderedSets MINE RULE
// statement of §2, and the output rules of Figure 2.b.
package main

import (
	"fmt"
	"log"

	"minerule"
)

func main() {
	sys, _ := minerule.Open()

	// Figure 1: the Purchase table of the big-store.
	err := sys.ExecScript(`
		CREATE TABLE Purchase (tr INTEGER, cust VARCHAR, item VARCHAR, dt DATE, price FLOAT, qty INTEGER);
		INSERT INTO Purchase VALUES
			(1, 'cust1', 'ski_pants',    DATE '1995-12-17', 140, 1),
			(1, 'cust1', 'hiking_boots', DATE '1995-12-17', 180, 1),
			(2, 'cust2', 'col_shirts',   DATE '1995-12-18',  25, 2),
			(2, 'cust2', 'brown_boots',  DATE '1995-12-18', 150, 1),
			(2, 'cust2', 'jackets',      DATE '1995-12-18', 300, 1),
			(3, 'cust1', 'jackets',      DATE '1995-12-18', 300, 1),
			(4, 'cust2', 'col_shirts',   DATE '1995-12-19',  25, 3),
			(4, 'cust2', 'jackets',      DATE '1995-12-19', 300, 2);
	`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Purchase (Figure 1):")
	table, err := sys.Format("SELECT * FROM Purchase ORDER BY tr, item")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table)

	// §2: purchases of items >= $100 followed, by the same customer on a
	// later date, by purchases of items < $100.
	res, err := sys.Mine(`
		MINE RULE FilteredOrderedSets AS
		SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, SUPPORT, CONFIDENCE
		WHERE BODY.price >= 100 AND HEAD.price < 100
		FROM Purchase
		WHERE dt BETWEEN DATE '1995-01-01' AND DATE '1995-12-31'
		GROUP BY cust
		CLUSTER BY dt HAVING BODY.dt < HEAD.dt
		EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("classification: %s   core: %s   groups: %d\n\n",
		res.Class, res.Algorithm, res.TotalGroups)
	fmt.Println("FilteredOrderedSets (Figure 2.b):")
	for _, r := range res.Rules {
		fmt.Println("  " + r.String())
	}

	// The rules are also plain tables in the database.
	fmt.Println("\nStored output tables:")
	for _, t := range []string{res.OutputTable, res.BodiesTable, res.HeadsTable} {
		s, err := sys.Format("SELECT * FROM " + t)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n%s\n", t, s)
	}
}
