// Crossschema mines rules whose body and head live on different
// attributes (the translator's H class): which purchased items predict
// purchases from which product categories. It exercises the dual
// encoding (Bset and Hset) and the join-defined source (W).
package main

import (
	"fmt"
	"log"

	"minerule"
	"minerule/internal/gen"
)

func main() {
	sys, _ := minerule.Open()

	const items = 80
	if _, err := gen.LoadPurchases(sys.DB(), "Purchase", gen.PurchaseConfig{
		Customers:    400,
		DatesPerCust: 3,
		ItemsPerDate: 4,
		Items:        items,
		Seed:         99,
	}); err != nil {
		log.Fatal(err)
	}
	if err := gen.LoadCatalog(sys.DB(), "Products", items, 8, 99); err != nil {
		log.Fatal(err)
	}

	res, err := sys.Mine(`
		MINE RULE ItemToCategory AS
		SELECT DISTINCT 1..1 item AS BODY, 1..2 category AS HEAD, SUPPORT, CONFIDENCE
		FROM Purchase, Products
		WHERE Purchase.item = Products.pitem
		GROUP BY cust
		EXTRACTING RULES WITH SUPPORT: 0.15, CONFIDENCE: 0.6`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("classification %s (H: body on item, head on category; W: join source)\n", res.Class)
	fmt.Printf("%d rules over %d customers\n\n", res.RuleCount, res.TotalGroups)
	for i, r := range res.Rules {
		if i == 20 {
			fmt.Printf("  ... and %d more\n", res.RuleCount-20)
			break
		}
		fmt.Println("  " + r.String())
	}

	// The output is ordinary relations: join them back to SQL freely —
	// the integration the decoupled architecture cannot offer (§1).
	out, err := sys.Format(`
		SELECT B.item, COUNT(*) AS rules
		FROM ItemToCategory R, ItemToCategory_Bodies B
		WHERE R.BodyId = B.BodyId
		GROUP BY B.item
		ORDER BY rules DESC, B.item`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrules per body item (plain SQL over the output tables):")
	fmt.Println(out)
}
