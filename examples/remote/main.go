// Remote is the network variant of the quickstart: the same Purchase
// data and MINE RULE statement, but run through a stock database/sql
// program against a minerule-serve instance — the tightly-coupled
// architecture reached over the wire.
//
// Start a server first, then run this:
//
//	minerule-serve -listen 127.0.0.1:7733
//	go run ./examples/remote
//
// The address can be overridden with -addr.
package main

import (
	"database/sql"
	"flag"
	"fmt"
	"log"

	_ "minerule/driver"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7733", "minerule-serve address")
	flag.Parse()

	db, err := sql.Open("minerule", "tcp://"+*addr)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	if _, err := db.Exec(`
		CREATE TABLE Purchase (tr INTEGER, cust VARCHAR, item VARCHAR, dt DATE, price FLOAT, qty INTEGER);
		INSERT INTO Purchase VALUES
			(1, 'cust1', 'ski_pants',    DATE '1995-12-17', 140, 1),
			(1, 'cust1', 'hiking_boots', DATE '1995-12-17', 180, 1),
			(2, 'cust2', 'col_shirts',   DATE '1995-12-18',  25, 2),
			(2, 'cust2', 'brown_boots',  DATE '1995-12-18', 150, 1),
			(2, 'cust2', 'jackets',      DATE '1995-12-18', 300, 1),
			(3, 'cust1', 'jackets',      DATE '1995-12-18', 300, 1),
			(4, 'cust2', 'col_shirts',   DATE '1995-12-19',  25, 3),
			(4, 'cust2', 'jackets',      DATE '1995-12-19', 300, 2);
	`); err != nil {
		log.Fatal(err)
	}

	// Parameterized SQL through prepared statements.
	var expensive int64
	if err := db.QueryRow("SELECT COUNT(*) FROM Purchase WHERE price >= ?", int64(100)).Scan(&expensive); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d purchases of 100 or more\n", expensive)

	// MINE RULE over the wire: the rules stream back as ordinary rows.
	rows, err := db.Query(`
		MINE RULE SimpleAssociations AS
		SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
		FROM Purchase
		GROUP BY tr
		EXTRACTING RULES WITH SUPPORT: 0.25, CONFIDENCE: 0.5`)
	if err != nil {
		log.Fatal(err)
	}
	defer rows.Close()
	for rows.Next() {
		var body, head string
		var support, confidence float64
		if err := rows.Scan(&body, &head, &support, &confidence); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s => %s (s=%.2g, c=%.2g)\n", body, head, support, confidence)
	}
	if err := rows.Err(); err != nil {
		log.Fatal(err)
	}
}
