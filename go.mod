module minerule

go 1.22
