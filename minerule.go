// Package minerule is a tightly-coupled data mining system: an embedded
// SQL92-subset relational engine with the MINE RULE operator of Meo,
// Psaila and Ceri integrated on top, reproducing the architecture of
// "A Tightly-Coupled Architecture for Data Mining" (ICDE 1998).
//
// A System is a database plus the mining kernel. Load data with SQL or
// CSV, then evaluate MINE RULE statements; results are stored back into
// the database as ordinary tables and also returned decoded:
//
//	sys, _ := minerule.Open()
//	sys.ExecScript(`CREATE TABLE Purchase (...); INSERT INTO Purchase VALUES (...);`)
//	res, err := sys.Mine(`
//	    MINE RULE FrequentSets AS
//	    SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
//	    FROM Purchase
//	    GROUP BY cust
//	    EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.5`)
//	for _, r := range res.Rules { fmt.Println(r) }
//
// The kernel follows the paper exactly: a translator classifies the
// statement (H, W, M, G, C, K, F, R) and emits SQL translation programs;
// the preprocessor runs them on the engine, producing encoded tables;
// the core operator (a pool of itemset algorithms for simple rules, the
// m×n rule lattice for general rules) mines the encoded data; the
// postprocessor decodes the result into <name>, <name>_Bodies and
// <name>_Heads tables.
package minerule

import (
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"minerule/internal/core"
	"minerule/internal/obsv"
	"minerule/internal/resource"
	"minerule/internal/server"
	"minerule/internal/sql/engine"
)

// Limits bounds the resources one Mine, Exec or Query call may consume:
// MaxRows caps the rows any one SQL statement materializes, MaxCandidates
// caps the mining candidate count, MaxRuntime deadline-bounds a Mine
// call, and MaxPageIO caps the durable-storage page traffic (WAL frames
// plus heap pages) per statement on systems opened with WithStorage.
// The zero value is unbounded.
type Limits = resource.Limits

// Error taxonomy. A failed call wraps exactly one of these sentinels (or
// is an *InternalError), so callers can dispatch with errors.Is:
//
//   - ErrCanceled — the context was canceled or a deadline (including
//     Limits.MaxRuntime) expired;
//   - ErrBudgetExceeded — a Limits bound tripped (errors.As to
//     *resource.BudgetError tells which);
//   - ErrIO — a durable-storage operation failed (errors.As to *IOError
//     names the operation and the OS error);
//   - ErrDegraded — the durable store lost its durability guarantee (a
//     failed WAL fsync, an unrepairable torn append) and is read-only
//     until reopened; matches ErrIO too via the wrapped cause;
//   - ErrCorruptPage — a heap page failed its CRC-32C at read time
//     (bit-rot, torn write, or a lost write); matches ErrIO too;
//   - *InternalError — a panic inside the kernel was contained at the
//     recover boundary and converted to an error.
var (
	ErrCanceled       = resource.ErrCanceled
	ErrBudgetExceeded = resource.ErrBudgetExceeded
	ErrIO             = resource.ErrIO
	ErrDegraded       = resource.ErrDegraded
	ErrCorruptPage    = resource.ErrCorruptPage
)

// InternalError is a contained kernel panic: Op names the boundary that
// recovered it, Recovered holds the panic value and Stack the goroutine
// stack at recovery.
type InternalError = resource.InternalError

// IOError is a failed durable-storage operation (WAL append or fsync,
// heap page I/O, checkpoint swap); it matches ErrIO and unwraps to the
// OS error.
type IOError = resource.IOError

// DegradedError is the sticky error of a store whose durability is
// gone; it matches ErrDegraded and unwraps to the poisoning IOError.
type DegradedError = resource.DegradedError

// System is one embedded database with the mining kernel attached.
// It is safe for concurrent use: the engine serializes statement
// execution internally, so goroutines (and network sessions, see
// Serve) interleave at statement granularity, each under its own
// context and limits.
type System struct {
	db *engine.Database
}

// OpenOption configures Open.
type OpenOption func(*openConfig)

type openConfig struct {
	dir       string
	poolPages int
}

// WithStorage backs the system with the durable storage subsystem rooted
// at dir: every mutation reaches a write-ahead log before it applies,
// checkpoints bound recovery time, and a crash at any moment — even mid
// log record — recovers to a consistent catalog on the next Open. An
// empty dir (or omitting the option) keeps the default in-memory system.
func WithStorage(dir string) OpenOption {
	return func(c *openConfig) { c.dir = dir }
}

// WithBufferPool sizes the durable subsystem's page buffer pool (in
// 4 KiB pages; <= 0 means the default of 256). Only meaningful together
// with WithStorage.
func WithBufferPool(pages int) OpenOption {
	return func(c *openConfig) { c.poolPages = pages }
}

// Open creates a system: in-memory by default, durably backed when
// WithStorage is given (creating the directory on first open and
// recovering from the log on later ones).
func Open(opts ...OpenOption) (*System, error) {
	var c openConfig
	for _, o := range opts {
		o(&c)
	}
	if c.dir == "" {
		return &System{db: engine.New()}, nil
	}
	db, err := engine.Open(c.dir, c.poolPages)
	if err != nil {
		return nil, fmt.Errorf("minerule: open %s: %w", c.dir, err)
	}
	return &System{db: db}, nil
}

// Close releases the durable backend's files after a final group fsync;
// it is a no-op on in-memory systems. The directory reopens with
// recovery replaying anything after the last checkpoint.
func (s *System) Close() error { return s.db.Close() }

// Checkpoint snapshots the database to a fresh generation and restarts
// the log, bounding the next Open's recovery work. No-op in memory.
func (s *System) Checkpoint() error { return s.db.Checkpoint() }

// Durable reports whether the system was opened with WithStorage.
func (s *System) Durable() bool { return s.db.Durable() }

// StorageStats is a point-in-time snapshot of the durable subsystem's
// counters (all zero on an in-memory system).
type StorageStats struct {
	WalAppends      int64 // redo-log records appended
	WalBytes        int64 // redo-log bytes appended
	WalFsyncs       int64 // group commits (at most one per statement)
	PageReads       int64 // heap pages read from disk
	PageWrites      int64 // heap pages written to disk
	PoolHits        int64 // buffer-pool frame hits
	PoolMisses      int64 // buffer-pool frame misses
	PoolEvictions   int64 // frames evicted by the clock sweep
	Checkpoints     int64 // checkpoints taken
	RecoveryRecords int64 // records replayed by the last Open

	TornTailTruncations int64 // torn WAL tails dropped at recovery
	PageCRCErrors       int64 // heap pages failing their checksum
	IORetries           int64 // transient I/O faults retried
	EnospcVetoes        int64 // mutations vetoed cleanly on a full disk
	CheckpointFailures  int64 // checkpoints that failed and were discarded

	// Degraded reports that the store lost its durability guarantee and
	// is read-only until reopened; DegradedCause is the poisoning error
	// ("" while healthy).
	Degraded      bool
	DegradedCause string
}

// PoolHitRatio is hits/(hits+misses), or 0 before any page traffic.
func (st StorageStats) PoolHitRatio() float64 {
	total := st.PoolHits + st.PoolMisses
	if total == 0 {
		return 0
	}
	return float64(st.PoolHits) / float64(total)
}

// StorageStats reads the durable subsystem's counters (also exported in
// Prometheus form by WriteMetrics).
func (s *System) StorageStats() StorageStats {
	m := s.db.Metrics()
	st := StorageStats{
		WalAppends:      m.WalAppends.Load(),
		WalBytes:        m.WalBytes.Load(),
		WalFsyncs:       m.WalFsyncs.Load(),
		PageReads:       m.PageReads.Load(),
		PageWrites:      m.PageWrites.Load(),
		PoolHits:        m.PoolHits.Load(),
		PoolMisses:      m.PoolMisses.Load(),
		PoolEvictions:   m.PoolEvictions.Load(),
		Checkpoints:     m.Checkpoints.Load(),
		RecoveryRecords: m.RecoveryRecords.Load(),

		TornTailTruncations: m.WalTornTruncations.Load(),
		PageCRCErrors:       m.PageCRCErrors.Load(),
		IORetries:           m.IORetries.Load(),
		EnospcVetoes:        m.EnospcVetoes.Load(),
		CheckpointFailures:  m.CheckpointFailures.Load(),
	}
	if err := s.db.DegradedErr(); err != nil {
		st.Degraded = true
		st.DegradedCause = err.Error()
	}
	return st
}

// DegradedErr returns the typed error (matching ErrDegraded) when the
// durable store has lost its durability guarantee and is read-only,
// nil while healthy or in-memory. Reopening the directory recovers the
// on-disk state and restores writability.
func (s *System) DegradedErr() error { return s.db.DegradedErr() }

// DB exposes the underlying engine for in-module tooling (the cmd/
// binaries and benchmarks); it is internal machinery, not API surface.
func (s *System) DB() *engine.Database { return s.db }

// SetLimits sets the engine-wide default bounds for every subsequent
// statement that does not carry its own limits (via ContextWithLimits,
// a Mine WithLimits option, or a network session's negotiated limits).
// The zero Limits removes all bounds. Safe to call concurrently with
// running statements: in-flight ones keep the bounds they started with.
func (s *System) SetLimits(l Limits) { s.db.SetLimits(l) }

// ContextWithLimits returns a context that carries per-call resource
// limits: any Exec, Query or Mine evaluated under the returned context
// is bounded by l instead of the engine-wide default, without touching
// shared state — the mechanism behind per-session limits on the network
// server, available to embedded callers too.
func ContextWithLimits(ctx context.Context, l Limits) context.Context {
	return resource.WithLimits(ctx, l)
}

// Exec runs one SQL statement (DDL, DML or query, discarding rows).
func (s *System) Exec(sql string) error {
	return s.ExecContext(context.Background(), sql)
}

// ExecContext is Exec under a cancellation context: execution aborts at
// the next operator row batch once ctx is done, failing with an error
// matching ErrCanceled.
func (s *System) ExecContext(ctx context.Context, sql string) error {
	_, err := s.db.ExecContext(ctx, sql)
	return err
}

// ExecScript runs a semicolon-separated SQL script.
func (s *System) ExecScript(sql string) error { return s.db.ExecScript(sql) }

// Table is a materialized query result in display form.
type Table struct {
	Columns []string
	Rows    [][]string
}

// Query runs a SELECT and returns its rows as strings (NULL renders as
// "NULL").
func (s *System) Query(sql string) (*Table, error) {
	return s.QueryContext(context.Background(), sql)
}

// QueryContext is Query under a cancellation context.
func (s *System) QueryContext(ctx context.Context, sql string) (*Table, error) {
	res, err := s.db.QueryContext(ctx, sql)
	if err != nil {
		return nil, err
	}
	t := &Table{Columns: make([]string, res.Schema.Len())}
	for i := 0; i < res.Schema.Len(); i++ {
		t.Columns[i] = res.Schema.Col(i).Name
	}
	for _, row := range res.Rows {
		out := make([]string, len(row))
		for i, v := range row {
			out[i] = v.String()
		}
		t.Rows = append(t.Rows, out)
	}
	return t, nil
}

// QueryInt runs a single-value query and returns it as an integer.
func (s *System) QueryInt(sql string) (int64, error) { return s.db.QueryInt(sql) }

// ImportCSV creates a table from CSV data; header entries are
// "name:type" with type one of int, float, string, date, bool.
func (s *System) ImportCSV(table string, header []string, r io.Reader) (int, error) {
	return s.db.ImportCSV(table, header, r)
}

// ExportCSV writes a query result as CSV.
func (s *System) ExportCSV(w io.Writer, sql string) error { return s.db.ExportCSV(w, sql) }

// Save writes the whole database (tables, views, sequences) under dir:
// one typed CSV per table plus a manifest. Mining outputs are ordinary
// tables, so mined rule sets survive restarts too.
func (s *System) Save(dir string) error { return s.db.Save(dir) }

// Open- or load-time counterpart of Save.
func LoadFrom(dir string) (*System, error) {
	db, err := engine.Load(dir)
	if err != nil {
		return nil, err
	}
	return &System{db: db}, nil
}

// WriteMetrics writes the system's always-on counters — statement,
// cache, row and mining totals plus per-phase wall time — in Prometheus
// text exposition format (the same body cmd/minerule-web serves on
// /metrics).
func (s *System) WriteMetrics(w io.Writer) error {
	return s.db.Metrics().WritePrometheus(w)
}

// ExplainSQL runs a SELECT with executor tracing and returns the
// decision log (scan sources, join strategies, index use, filter
// selectivities) — EXPLAIN ANALYZE for the embedded engine.
func (s *System) ExplainSQL(sql string) (string, error) { return s.db.ExplainSQL(sql) }

// ServerConfig tunes the network server: connection cap, startup
// credential, default/session-cap resource limits and drain timeout.
// The zero value serves open (no auth) with the default connection cap
// and unbounded sessions.
type ServerConfig = server.Config

// Serve exposes the system over the minerule wire protocol on addr
// until ctx is done, then drains gracefully. Remote clients connect
// with the native database/sql driver (import _ "minerule/driver";
// sql.Open("minerule", "tcp://addr")) or any protocol implementation.
// Serving shares the engine with embedded callers: statements from
// sessions and in-process calls interleave safely.
func (s *System) Serve(ctx context.Context, addr string, cfg ServerConfig) error {
	return server.New(s.db, cfg).ListenAndServe(ctx, addr)
}

// ServeListener is Serve over an existing listener (tests, socket
// activation). The server owns ln and closes it on return.
func (s *System) ServeListener(ctx context.Context, ln net.Listener, cfg ServerConfig) error {
	return server.New(s.db, cfg).Serve(ctx, ln)
}

// Format renders a query result as an aligned text table.
func (s *System) Format(sql string) (string, error) {
	res, err := s.db.Query(sql)
	if err != nil {
		return "", err
	}
	return engine.FormatResult(res), nil
}

// Algorithm selects a member of the simple-core algorithm pool.
type Algorithm string

// The pool (general statements always use the rule-lattice core).
const (
	Apriori           Algorithm = Algorithm(core.AlgoApriori)
	AprioriHorizontal Algorithm = Algorithm(core.AlgoHorizontal)
	AprioriTid        Algorithm = Algorithm(core.AlgoAprioriTid)
	AprioriHybrid     Algorithm = Algorithm(core.AlgoAprioriHybrid)
	AprioriDHP        Algorithm = Algorithm(core.AlgoDHP)
	Partition         Algorithm = Algorithm(core.AlgoPartition)
	Sampling          Algorithm = Algorithm(core.AlgoSampling)
	Bitmap            Algorithm = Algorithm(core.AlgoBitmap)
)

// Option adjusts one Mine call.
type Option func(*core.Options)

// WithAlgorithm picks the simple-core pool member (default Apriori).
func WithAlgorithm(a Algorithm) Option {
	return func(o *core.Options) { o.Algorithm = core.Algorithm(a) }
}

// WithReplaceOutput overwrites existing output tables of the same name.
func WithReplaceOutput() Option {
	return func(o *core.Options) { o.ReplaceOutput = true }
}

// WithKeepEncoded keeps the encoded working tables after the run, so
// repeated statements over the same source can share preprocessing
// state for inspection (paper §3). It also records the metadata
// WithReuseEncoded relies on.
func WithKeepEncoded() Option {
	return func(o *core.Options) { o.KeepEncoded = true }
}

// WithLimits bounds one Mine call (see Limits). A tripped bound fails
// the run with an error matching ErrBudgetExceeded or ErrCanceled, and
// the run's working and output tables are rolled back.
func WithLimits(l Limits) Option {
	return func(o *core.Options) { o.Limits = l }
}

// WithTrace records a span tree for the run on MiningResult.Stats.Trace:
// one node per kernel phase, with Q-steps and levelwise mining passes as
// children. Off by default; the always-on counters (see WriteMetrics)
// are unaffected.
func WithTrace() Option {
	return func(o *core.Options) { o.Trace = true }
}

// WithReuseEncoded skips the preprocessing phase when a previous
// WithKeepEncoded run of an equivalent statement (same shape, support
// no lower than before) left its encoded tables in the database. The
// source must not have changed in between — the kernel cannot detect
// that; drop the mr_* tables (or run without reuse) to invalidate.
func WithReuseEncoded() Option {
	return func(o *core.Options) { o.ReuseEncoded = true }
}

// Timings is the wall time of each kernel phase of a Mine call.
type Timings struct {
	Translate   time.Duration
	Preprocess  time.Duration
	Core        time.Duration
	Postprocess time.Duration
}

// Total sums the phases.
func (t Timings) Total() time.Duration {
	return t.Translate + t.Preprocess + t.Core + t.Postprocess
}

// Rule is one decoded association rule. Body and Head hold one value
// tuple per rule element (tuples have one entry per schema attribute,
// e.g. just the item name for single-attribute schemas).
type Rule struct {
	Body       [][]string
	Head       [][]string
	Support    float64
	Confidence float64
}

// String renders the rule like the paper's Figure 2.b rows.
func (r Rule) String() string {
	side := func(els [][]string) string {
		parts := make([]string, len(els))
		for i, t := range els {
			parts[i] = strings.Join(t, "/")
		}
		return "{" + strings.Join(parts, ", ") + "}"
	}
	return fmt.Sprintf("%s => %s (s=%.4g, c=%.4g)", side(r.Body), side(r.Head), r.Support, r.Confidence)
}

// PassStat describes one levelwise pass of the core algorithm: the
// itemset size mined, the candidates examined and the large survivors.
type PassStat struct {
	Level      int
	Candidates int
	Large      int
}

// TraceAttr is one key/value annotation on a TraceNode, in the order the
// kernel recorded it.
type TraceAttr struct {
	Key   string
	Value string
}

// TraceNode is one span of a traced Mine call: a named timed region with
// attributes and nested children (phases contain Q-steps and passes).
type TraceNode struct {
	Name     string
	Duration time.Duration
	Attrs    []TraceAttr
	Children []*TraceNode
}

// String renders the subtree as indented text, one line per node — the
// same form the minerule CLI's -trace flag prints.
func (n *TraceNode) String() string {
	if n == nil {
		return ""
	}
	var b strings.Builder
	n.render(&b, 0)
	return b.String()
}

func (n *TraceNode) render(b *strings.Builder, depth int) {
	label := strings.Repeat("  ", depth) + n.Name
	dur := ""
	if n.Duration > 0 {
		dur = n.Duration.Round(time.Microsecond).String()
	}
	attrs := ""
	for _, a := range n.Attrs {
		attrs += " " + a.Key + "=" + a.Value
	}
	fmt.Fprintf(b, "%-32s %-10s%s\n", label, dur, attrs)
	for _, c := range n.Children {
		c.render(b, depth+1)
	}
}

func traceNode(sp *obsv.Span) *TraceNode {
	if sp == nil {
		return nil
	}
	n := &TraceNode{Name: sp.Name, Duration: sp.Duration}
	for _, a := range sp.Attrs {
		v := a.Str
		if v == "" {
			v = fmt.Sprintf("%d", a.Int)
		}
		n.Attrs = append(n.Attrs, TraceAttr{Key: a.Key, Value: v})
	}
	for _, c := range sp.Children {
		n.Children = append(n.Children, traceNode(c))
	}
	return n
}

// Stats describes how the core phase of a Mine call executed.
type Stats struct {
	// Candidates counts the candidate itemsets/rules the core examined.
	Candidates int64
	// Passes breaks the levelwise algorithms down per pass (empty for
	// non-levelwise cores such as the rule lattice).
	Passes []PassStat
	// Workers is the widest worker-pool fan-out the mining used
	// (0 = the run stayed sequential).
	Workers int
	// Trace is the span tree of the whole run when WithTrace was given,
	// nil otherwise.
	Trace *TraceNode
}

// MiningResult reports one evaluated MINE RULE statement.
type MiningResult struct {
	// OutputTable, BodiesTable, HeadsTable name the stored result
	// relations inside the system's database.
	OutputTable string
	BodiesTable string
	HeadsTable  string

	// Class is the translator's classification, e.g. "{W,M,C,K}".
	Class string
	// Simple reports whether the simple core processing ran.
	Simple bool
	// Algorithm is the core algorithm that ran.
	Algorithm string

	RuleCount   int
	TotalGroups int
	MinGroups   int
	// Reused reports that preprocessing was skipped via WithReuseEncoded.
	Reused  bool
	Timings Timings
	// Stats is the core-phase execution detail (always filled; its Trace
	// is non-nil only under WithTrace).
	Stats Stats

	// Rules is the decoded result (ordered as stored).
	Rules []Rule
}

// Explanation shows what a MINE RULE statement would do: its
// classification and the SQL translation programs the kernel generates,
// without executing anything.
type Explanation struct {
	// Class is the translator classification, e.g. "{W,M,C,K}".
	Class string
	// Simple reports which core-processing class would run.
	Simple bool
	// Steps are the preprocessing SQL statements in execution order,
	// labelled with the paper's query names ("Q0" … "Q10", "output").
	Steps []ExplainStep
	// TotalGroupsQuery is the paper's Q1.
	TotalGroupsQuery string
	// Decode are the postprocessor's SQL statements.
	Decode []string
}

// ExplainStep is one named preprocessing statement.
type ExplainStep struct {
	Name string
	SQL  string
}

// Explain translates a MINE RULE statement against the current catalog
// and returns the generated SQL programs, without running them.
func (s *System) Explain(statement string) (*Explanation, error) {
	ex, err := core.Explain(s.db, statement)
	if err != nil {
		return nil, err
	}
	out := &Explanation{
		Class:            ex.Class.String(),
		Simple:           ex.Simple,
		TotalGroupsQuery: ex.Q1,
		Decode:           ex.Decode,
	}
	for _, st := range ex.Steps {
		out.Steps = append(out.Steps, ExplainStep{Name: st.Name, SQL: st.SQL})
	}
	return out, nil
}

// Mine evaluates a MINE RULE statement. The output tables are stored in
// the system's database and the decoded rules returned.
func (s *System) Mine(statement string, opts ...Option) (*MiningResult, error) {
	return s.MineContext(context.Background(), statement, opts...)
}

// MineContext is Mine under a cancellation context: the deadline or
// cancellation is observed between kernel phases, between preprocessing
// Q-steps, inside SQL execution and between mining passes. A canceled
// run fails with an error matching ErrCanceled and rolls back its
// working and output tables, leaving the catalog as it was before.
func (s *System) MineContext(ctx context.Context, statement string, opts ...Option) (*MiningResult, error) {
	var co core.Options
	for _, o := range opts {
		o(&co)
	}
	res, err := core.MineContext(ctx, s.db, statement, co)
	if err != nil {
		return nil, err
	}
	out := &MiningResult{
		OutputTable: res.OutputTable,
		BodiesTable: res.BodiesTable,
		HeadsTable:  res.HeadsTable,
		Class:       res.Class.String(),
		Simple:      res.Class.Simple(),
		Algorithm:   res.Algorithm,
		RuleCount:   res.RuleCount,
		TotalGroups: res.TotalGroups,
		MinGroups:   res.MinGroups,
		Reused:      res.Reused,
		Timings: Timings{
			Translate:   res.Timings.Translate,
			Preprocess:  res.Timings.Preprocess,
			Core:        res.Timings.Core,
			Postprocess: res.Timings.Postprocess,
		},
		Stats: Stats{
			Candidates: res.Candidates,
			Workers:    res.Workers,
			Trace:      traceNode(res.Trace),
		},
	}
	for _, p := range res.Passes {
		out.Stats.Passes = append(out.Stats.Passes, PassStat{Level: p.Level, Candidates: p.Candidates, Large: p.Large})
	}
	decoded, err := core.ReadRules(s.db, res)
	if err != nil {
		return nil, err
	}
	for _, d := range decoded {
		out.Rules = append(out.Rules, Rule{
			Body:       d.Body,
			Head:       d.Head,
			Support:    d.Support,
			Confidence: d.Confidence,
		})
	}
	return out, nil
}
