package lex

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []Kind {
	out := make([]Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func texts(toks []Token) string {
	parts := make([]string, 0, len(toks))
	for _, t := range toks {
		if t.Kind == EOF {
			break
		}
		parts = append(parts, t.Text)
	}
	return strings.Join(parts, "|")
}

func TestBasicTokens(t *testing.T) {
	toks, err := Lex("SELECT a, b FROM t WHERE x >= 1.5")
	if err != nil {
		t.Fatal(err)
	}
	want := "SELECT|a|,|b|FROM|t|WHERE|x|>=|1.5"
	if got := texts(toks); got != want {
		t.Fatalf("got %s, want %s", got, want)
	}
}

func TestCardinalityDots(t *testing.T) {
	// "1..n" must lex as Number(1) Punct(..) Ident(n) — the MINE RULE
	// cardinality spec — not as the float 1. followed by .n.
	toks, err := Lex("1..n item")
	if err != nil {
		t.Fatal(err)
	}
	if got := texts(toks); got != "1|..|n|item" {
		t.Fatalf("got %s", got)
	}
	if toks[0].Kind != Number || toks[1].Kind != Punct || toks[2].Kind != Ident {
		t.Fatalf("kinds = %v", kinds(toks))
	}
}

func TestNumbers(t *testing.T) {
	cases := map[string]string{
		"0.2":    "0.2",
		"42":     "42",
		".5":     ".5",
		"1e3":    "1e3",
		"2.5E-2": "2.5E-2",
	}
	for in, want := range cases {
		toks, err := Lex(in)
		if err != nil {
			t.Errorf("%q: %v", in, err)
			continue
		}
		if toks[0].Kind != Number || toks[0].Text != want {
			t.Errorf("%q lexed to %v %q", in, toks[0].Kind, toks[0].Text)
		}
	}
}

func TestStrings(t *testing.T) {
	toks, err := Lex("'it''s a test'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != String || toks[0].Text != "it's a test" {
		t.Fatalf("got %v %q", toks[0].Kind, toks[0].Text)
	}
	if _, err := Lex("'unterminated"); err == nil {
		t.Error("unterminated string must fail")
	}
}

func TestDelimitedIdent(t *testing.T) {
	toks, err := Lex(`"Mixed Case"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != Ident || toks[0].Text != "Mixed Case" {
		t.Fatalf("got %v %q", toks[0].Kind, toks[0].Text)
	}
}

func TestComments(t *testing.T) {
	toks, err := Lex("a -- line comment\nb /* block\ncomment */ c")
	if err != nil {
		t.Fatal(err)
	}
	if got := texts(toks); got != "a|b|c" {
		t.Fatalf("got %s", got)
	}
	if _, err := Lex("/* unterminated"); err == nil {
		t.Error("unterminated block comment must fail")
	}
}

func TestMultiCharOperators(t *testing.T) {
	toks, err := Lex("a <= b >= c <> d != e || f")
	if err != nil {
		t.Fatal(err)
	}
	if got := texts(toks); got != "a|<=|b|>=|c|<>|d|!=|e||||f" {
		t.Fatalf("got %s", got)
	}
}

func TestKeywordHelpers(t *testing.T) {
	toks, _ := Lex("SeLeCt (")
	if !toks[0].IsKeyword("select") || !toks[0].IsKeyword("SELECT") {
		t.Error("keyword matching must be case-insensitive")
	}
	if !toks[1].IsPunct("(") || toks[1].IsPunct(")") {
		t.Error("IsPunct mismatch")
	}
}

func TestBadInput(t *testing.T) {
	if _, err := Lex("a ? b"); err == nil {
		t.Error("? must be rejected")
	}
}

func TestPositions(t *testing.T) {
	toks, err := Lex("ab cd")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos != 0 || toks[1].Pos != 3 {
		t.Fatalf("positions = %d %d", toks[0].Pos, toks[1].Pos)
	}
}

func TestEOFAlwaysLast(t *testing.T) {
	for _, in := range []string{"", "  ", "a", "-- only comment"} {
		toks, err := Lex(in)
		if err != nil {
			t.Fatal(err)
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != EOF {
			t.Errorf("%q: missing EOF", in)
		}
	}
}
