// Package lex tokenizes SQL text. The same lexical grammar serves both
// the engine's SQL dialect and the MINE RULE operator (paper §4.1), whose
// only lexical addition is the ".." cardinality token.
package lex

import (
	"fmt"
	"strings"
)

// Kind classifies tokens.
type Kind int

// Token kinds. Keywords are not distinguished lexically: parsers match
// identifiers case-insensitively, which keeps the keyword sets of the two
// languages independent.
const (
	EOF Kind = iota
	Ident
	Number // integer or decimal literal; Text holds the spelling
	String // quoted string; Text holds the unescaped content
	Punct  // operator or punctuation; Text holds the symbol
)

func (k Kind) String() string {
	switch k {
	case EOF:
		return "end of input"
	case Ident:
		return "identifier"
	case Number:
		return "number"
	case String:
		return "string"
	case Punct:
		return "punctuation"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Token is one lexical element with its source position (byte offset).
type Token struct {
	Kind Kind
	Text string
	Pos  int
}

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case EOF:
		return "end of input"
	case String:
		return fmt.Sprintf("'%s'", t.Text)
	default:
		return fmt.Sprintf("%q", t.Text)
	}
}

// IsKeyword reports a case-insensitive match of an identifier token
// against the given keyword.
func (t Token) IsKeyword(kw string) bool {
	return t.Kind == Ident && strings.EqualFold(t.Text, kw)
}

// IsPunct reports whether the token is the given punctuation symbol.
func (t Token) IsPunct(p string) bool {
	return t.Kind == Punct && t.Text == p
}

// multi lists multi-character operators, longest first so that the
// scanner prefers ".." over "." and "<=" over "<".
var multi = []string{"..", "<=", ">=", "<>", "!=", "||"}

// Lex tokenizes src. It returns an error for unterminated strings or
// bytes outside the lexical grammar. Comments use SQL's "--" to end of
// line and "/* */" blocks.
func Lex(src string) ([]Token, error) {
	var toks []Token
	i, n := 0, len(src)
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && src[i+1] == '-':
			for i < n && src[i] != '\n' {
				i++
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			end := strings.Index(src[i+2:], "*/")
			if end < 0 {
				return nil, fmt.Errorf("lex: unterminated block comment at offset %d", i)
			}
			i += 2 + end + 2
		case c == '\'':
			s, next, err := lexString(src, i)
			if err != nil {
				return nil, err
			}
			toks = append(toks, Token{Kind: String, Text: s, Pos: i})
			i = next
		case c >= '0' && c <= '9':
			start := i
			i = lexNumber(src, i)
			toks = append(toks, Token{Kind: Number, Text: src[start:i], Pos: start})
		case c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9':
			start := i
			i = lexNumber(src, i)
			toks = append(toks, Token{Kind: Number, Text: src[start:i], Pos: start})
		case isIdentStart(rune(c)):
			start := i
			for i < n && isIdentPart(rune(src[i])) {
				i++
			}
			toks = append(toks, Token{Kind: Ident, Text: src[start:i], Pos: start})
		case c == '"':
			// Delimited identifier: "Name" keeps its exact spelling.
			end := strings.IndexByte(src[i+1:], '"')
			if end < 0 {
				return nil, fmt.Errorf("lex: unterminated delimited identifier at offset %d", i)
			}
			if end == 0 {
				return nil, fmt.Errorf("lex: empty delimited identifier at offset %d", i)
			}
			toks = append(toks, Token{Kind: Ident, Text: src[i+1 : i+1+end], Pos: i})
			i += end + 2
		default:
			if op, ok := matchMulti(src[i:]); ok {
				toks = append(toks, Token{Kind: Punct, Text: op, Pos: i})
				i += len(op)
				break
			}
			if strings.IndexByte("(),.;*=<>+-/:%", c) >= 0 {
				toks = append(toks, Token{Kind: Punct, Text: string(c), Pos: i})
				i++
				break
			}
			return nil, fmt.Errorf("lex: unexpected character %q at offset %d", c, i)
		}
	}
	toks = append(toks, Token{Kind: EOF, Pos: n})
	return toks, nil
}

func matchMulti(s string) (string, bool) {
	for _, op := range multi {
		if strings.HasPrefix(s, op) {
			return op, true
		}
	}
	return "", false
}

// lexString scans a single-quoted string with ” escaping, starting at
// the opening quote; it returns the unescaped content and the index past
// the closing quote.
func lexString(src string, i int) (string, int, error) {
	var b strings.Builder
	j := i + 1
	for j < len(src) {
		if src[j] == '\'' {
			if j+1 < len(src) && src[j+1] == '\'' {
				b.WriteByte('\'')
				j += 2
				continue
			}
			return b.String(), j + 1, nil
		}
		b.WriteByte(src[j])
		j++
	}
	return "", 0, fmt.Errorf("lex: unterminated string at offset %d", i)
}

// lexNumber scans an integer or decimal literal starting at i, taking
// care not to consume ".." (the MINE RULE cardinality operator) after an
// integer: "1..n" lexes as Number(1) Punct(..) Ident(n).
func lexNumber(src string, i int) int {
	n := len(src)
	for i < n && src[i] >= '0' && src[i] <= '9' {
		i++
	}
	if i < n && src[i] == '.' {
		if i+1 < n && src[i+1] == '.' {
			return i // stop before ".."
		}
		i++
		for i < n && src[i] >= '0' && src[i] <= '9' {
			i++
		}
	}
	// Exponent part (1e-3).
	if i < n && (src[i] == 'e' || src[i] == 'E') {
		j := i + 1
		if j < n && (src[j] == '+' || src[j] == '-') {
			j++
		}
		if j < n && src[j] >= '0' && src[j] <= '9' {
			for j < n && src[j] >= '0' && src[j] <= '9' {
				j++
			}
			i = j
		}
	}
	return i
}

// Position converts a byte offset in src into a 1-based line and column
// (columns count bytes, which matches the ASCII identifier grammar).
// Offsets outside [0, len(src)] are clamped, so callers can pass a
// position from a statement that has since been reformatted without
// risking a panic — worst case the diagnostic points at the end.
func Position(src string, offset int) (line, col int) {
	if offset < 0 {
		offset = 0
	}
	if offset > len(src) {
		offset = len(src)
	}
	line, col = 1, 1
	for i := 0; i < offset; i++ {
		if src[i] == '\n' {
			line++
			col = 1
		} else {
			col++
		}
	}
	return line, col
}

// Identifiers are ASCII, per SQL92's base character set; scanning is
// byte-wise, so admitting non-ASCII here would misclassify multi-byte
// sequences.
func isIdentStart(r rune) bool {
	return r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z'
}

func isIdentPart(r rune) bool {
	return isIdentStart(r) || r == '$' || r == '#' || r >= '0' && r <= '9'
}
