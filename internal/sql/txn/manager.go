package txn

import (
	"sync"
	"time"

	"minerule/internal/obsv"
	"minerule/internal/sql/storage"
	"minerule/internal/sql/wal"
)

// CommitJournal is the durable store's transactional commit surface.
// AppendBatch logs a whole commit as one atomic WAL frame (a single
// record as itself, several wrapped in a KindTxn record), invoking
// charge with the frame's page count before any byte reaches the log so
// a page-I/O budget can veto the commit cleanly. SyncTo returns once
// every record up to lsn is durable; concurrent callers share fsyncs
// (group commit). LastLSN reports the newest appended record, durable
// or not — commits that only logged through side channels (DDL,
// sequence bumps) sync to it. A nil CommitJournal (in-memory database)
// skips logging and syncing entirely.
type CommitJournal interface {
	AppendBatch(recs []*wal.Record, charge func(pages int) error) (lsn uint64, err error)
	SyncTo(lsn uint64) error
	LastLSN() uint64
}

// Manager owns the transaction machinery of one database: the snapshot
// registry that tracks which commit stamps are still in use (bounding
// how much row and catalog history storage must retain), the lock
// manager, and the commit path. One Manager lives on each
// engine.Database; all methods are safe for concurrent use.
type Manager struct {
	cat   *storage.Catalog
	jn    CommitJournal // nil on in-memory databases
	met   *obsv.Metrics
	locks *LockManager

	mu     sync.Mutex
	active map[*Txn]uint64 // guarded by mu; registered snapshot stamps

	// pool recycles finished Txn values so the autocommit fast path —
	// one ephemeral transaction per statement — allocates nothing in
	// steady state.
	pool sync.Pool
}

// NewManager builds the transaction manager for cat. jn is the durable
// store's commit journal (nil in memory); lockTimeout bounds writer
// lock waits (zero selects DefaultLockTimeout). Attaching a manager
// turns on catalog name-map history: from here on, DDL preserves
// superseded dictionary states for the snapshots that still need them.
func NewManager(cat *storage.Catalog, jn CommitJournal, met *obsv.Metrics, lockTimeout time.Duration) *Manager {
	cat.EnableHistory()
	return &Manager{
		cat:    cat,
		jn:     jn,
		met:    met,
		locks:  newLockManager(lockTimeout, met),
		active: make(map[*Txn]uint64),
	}
}

// Begin opens a transaction on the current snapshot: the stamp is read
// from the visible watermark and registered under the same lock that
// computes low-water marks, so no publisher can prune state this
// snapshot needs.
func (m *Manager) Begin() *Txn {
	tx, _ := m.pool.Get().(*Txn)
	if tx == nil {
		tx = new(Txn)
	}
	*tx = Txn{m: m}
	m.mu.Lock()
	tx.snap = m.cat.Stamps().Visible()
	m.active[tx] = tx.snap
	m.mu.Unlock()
	if m.met != nil {
		m.met.TxnBegun.Inc()
	}
	return tx
}

// advance re-snapshots a live transaction to the current watermark
// (after its own DDL published, so it sees what it just created).
func (m *Manager) advance(tx *Txn) {
	m.mu.Lock()
	tx.snap = m.cat.Stamps().Visible()
	m.active[tx] = tx.snap
	m.mu.Unlock()
}

// unregister removes tx from the snapshot registry and returns the
// low-water mark: the oldest stamp any remaining snapshot (or any
// snapshot a concurrent Begin could still take) may hold. Publishers
// prune history below it.
func (m *Manager) unregister(tx *Txn) uint64 {
	m.mu.Lock()
	delete(m.active, tx)
	// A concurrent Begin serializes on m.mu and adopts the watermark as
	// it stands now, so the watermark floors the mark even when no
	// transaction is registered.
	lwm := m.cat.Stamps().Visible()
	for _, s := range m.active {
		if s < lwm {
			lwm = s
		}
	}
	m.mu.Unlock()
	return lwm
}

// Release returns a finished transaction to the Begin pool. The caller
// must drop every reference to tx; an unfinished transaction is ignored
// rather than recycled.
func (m *Manager) Release(tx *Txn) {
	if tx == nil || !tx.finished {
		return
	}
	m.pool.Put(tx)
}

// LockTimeout reports the lock manager's configured wait bound (for
// tests and tooling).
func (m *Manager) LockTimeout() time.Duration {
	m.locks.mu.Lock()
	defer m.locks.mu.Unlock()
	return m.locks.timeout
}
