package txn

import (
	"testing"

	"minerule/internal/leakcheck"
)

// TestMain gates the package on goroutine hygiene: lock waiters and
// group-commit followers must all have unwound when the suite ends.
func TestMain(m *testing.M) { leakcheck.Main(m) }
