package txn_dup_test

import (
	"testing"

	"minerule/internal/sql/engine"
)

func TestDropRecreateInsertDup(t *testing.T) {
	db := engine.New()
	c := db.Conn()
	mustExec := func(sql string) {
		if _, err := c.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec("BEGIN")
	mustExec("CREATE TABLE t (a int)")
	mustExec("INSERT INTO t VALUES (1)")
	mustExec("DROP TABLE t")
	mustExec("CREATE TABLE t (a int)")
	mustExec("INSERT INTO t VALUES (2)")
	mustExec("COMMIT")
	res, err := db.Query("SELECT a FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("want 1 row, got %d: %v", len(res.Rows), res.Rows)
	}
}
