package txn

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"minerule/internal/obsv"
	"minerule/internal/resource"
	"minerule/internal/sql/schema"
	"minerule/internal/sql/storage"
	"minerule/internal/sql/value"
)

// newTestManager builds an in-memory manager (no journal) with the
// given lock timeout (zero selects the default).
func newTestManager(timeout time.Duration) (*Manager, *obsv.Metrics) {
	met := &obsv.Metrics{}
	return NewManager(storage.NewCatalog(), nil, met, timeout), met
}

// mkTable creates table name with one INTEGER column through its own
// transaction (DDL publishes immediately).
func mkTable(t *testing.T, m *Manager, name string) {
	t.Helper()
	tx := m.Begin()
	defer m.Release(tx)
	if _, err := tx.CreateTable(context.Background(), name, schema.New(name, schema.Column{Name: "id", Type: value.TypeInt})); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// insert commits rows with the given ids into name.
func insert(t *testing.T, m *Manager, name string, ids ...int64) {
	t.Helper()
	tx := m.Begin()
	defer m.Release(tx)
	tab, ok, err := tx.ForWrite(context.Background(), name)
	if err != nil || !ok {
		t.Fatalf("ForWrite(%s): ok=%v err=%v", name, ok, err)
	}
	rows := make([]schema.Row, len(ids))
	for i, id := range ids {
		rows[i] = schema.Row{value.NewInt(id)}
	}
	if err := tx.InsertRows(tab, rows); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// count reads name's cardinality under tx's snapshot.
func count(t *testing.T, tx *Txn, name string) int {
	t.Helper()
	tab, ok := tx.Table(name)
	if !ok {
		t.Fatalf("table %s not visible", name)
	}
	return tx.Len(tab)
}

// TestSnapshotIsolation: a transaction's reads are frozen at its Begin
// — a concurrent committed write is invisible to it but visible to any
// transaction beginning afterwards.
func TestSnapshotIsolation(t *testing.T) {
	m, _ := newTestManager(0)
	mkTable(t, m, "t")
	insert(t, m, "t", 1, 2)

	reader := m.Begin()
	defer m.Release(reader)
	if n := count(t, reader, "t"); n != 2 {
		t.Fatalf("reader sees %d rows, want 2", n)
	}

	insert(t, m, "t", 3) // commits while reader is open

	if n := count(t, reader, "t"); n != 2 {
		t.Fatalf("snapshot leaked: reader sees %d rows after a concurrent commit, want 2", n)
	}
	reader.Rollback()

	after := m.Begin()
	defer m.Release(after)
	if n := count(t, after, "t"); n != 3 {
		t.Fatalf("new transaction sees %d rows, want 3", n)
	}
	after.Rollback()
}

// TestUncommittedInvisible: an open transaction's writes are invisible
// to every other transaction until Commit, and gone after Rollback.
func TestUncommittedInvisible(t *testing.T) {
	m, _ := newTestManager(0)
	mkTable(t, m, "t")

	w := m.Begin()
	tab, ok, err := w.ForWrite(context.Background(), "t")
	if err != nil || !ok {
		t.Fatalf("ForWrite: ok=%v err=%v", ok, err)
	}
	if err := w.InsertRows(tab, []schema.Row{{value.NewInt(1)}}); err != nil {
		t.Fatal(err)
	}
	// The writer sees its own write; nobody else does.
	if n := count(t, w, "t"); n != 1 {
		t.Fatalf("writer does not see its own write: %d", n)
	}
	other := m.Begin()
	if n := count(t, other, "t"); n != 0 {
		t.Fatalf("dirty read: observer sees %d uncommitted rows", n)
	}
	other.Rollback()
	m.Release(other)

	w.Rollback()
	m.Release(w)
	after := m.Begin()
	defer m.Release(after)
	if n := count(t, after, "t"); n != 0 {
		t.Fatalf("rollback leaked %d rows", n)
	}
	after.Rollback()
}

// TestLockTimeout: a writer blocked on a held table lock becomes the
// deadlock-timeout victim, surfacing a typed *resource.LockTimeoutError,
// and the holder is unaffected.
func TestLockTimeout(t *testing.T) {
	m, met := newTestManager(30 * time.Millisecond)
	mkTable(t, m, "t")

	holder := m.Begin()
	defer m.Release(holder)
	if _, _, err := holder.ForWrite(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}

	victim := m.Begin()
	defer m.Release(victim)
	_, _, err := victim.ForWrite(context.Background(), "t")
	var lte *resource.LockTimeoutError
	if !errors.As(err, &lte) {
		t.Fatalf("blocked writer got %v, want *resource.LockTimeoutError", err)
	}
	if lte.Table != "t" {
		t.Fatalf("timeout names table %q, want t", lte.Table)
	}
	victim.Rollback()
	if met.LockTimeouts.Load() == 0 || met.LockWaits.Load() == 0 {
		t.Fatalf("lock metrics not counted: waits=%d timeouts=%d", met.LockWaits.Load(), met.LockTimeouts.Load())
	}

	// The holder's transaction still commits.
	if err := holder.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestLockFIFOHandoff: a released lock goes to the oldest waiter —
// three queued writers commit in arrival order.
func TestLockFIFOHandoff(t *testing.T) {
	m, _ := newTestManager(5 * time.Second)
	mkTable(t, m, "t")

	holder := m.Begin()
	if _, _, err := holder.ForWrite(context.Background(), "t"); err != nil {
		t.Fatal(err)
	}

	const waiters = 3
	var order []int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	ready := make(chan struct{}, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tx := m.Begin()
			defer m.Release(tx)
			ready <- struct{}{}
			tab, ok, err := tx.ForWrite(context.Background(), "t")
			if err != nil || !ok {
				t.Errorf("waiter %d: ok=%v err=%v", i, ok, err)
				return
			}
			mu.Lock()
			order = append(order, int64(i))
			mu.Unlock()
			if err := tx.InsertRows(tab, []schema.Row{{value.NewInt(int64(i))}}); err != nil {
				t.Error(err)
				return
			}
			if err := tx.Commit(context.Background()); err != nil {
				t.Error(err)
			}
		}(i)
		<-ready // serialize goroutine starts so queue order is i order
		// Give the waiter time to reach the queue before the next starts.
		for {
			time.Sleep(2 * time.Millisecond)
			if lockQueueLen(m, "t") == i+1 {
				break
			}
		}
	}
	holder.Rollback()
	m.Release(holder)
	wg.Wait()
	for i, got := range order {
		if got != int64(i) {
			t.Fatalf("FIFO violated: grant order %v", order)
		}
	}
}

// lockQueueLen reports the current wait-queue depth on res.
func lockQueueLen(m *Manager, res string) int {
	m.locks.mu.Lock()
	defer m.locks.mu.Unlock()
	e := m.locks.entries[res]
	if e == nil {
		return 0
	}
	return len(e.queue)
}

// TestSavepointRollback: RollbackTo discards only the work after the
// savepoint; the transaction stays usable and commits the rest.
func TestSavepointRollback(t *testing.T) {
	m, _ := newTestManager(0)
	mkTable(t, m, "t")

	tx := m.Begin()
	defer m.Release(tx)
	tab, _, err := tx.ForWrite(context.Background(), "t")
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.InsertRows(tab, []schema.Row{{value.NewInt(1)}}); err != nil {
		t.Fatal(err)
	}
	sp := tx.Savepoint()
	if err := tx.InsertRows(tab, []schema.Row{{value.NewInt(2)}, {value.NewInt(3)}}); err != nil {
		t.Fatal(err)
	}
	if n := count(t, tx, "t"); n != 3 {
		t.Fatalf("pre-rollback count %d, want 3", n)
	}
	tx.RollbackTo(sp)
	if n := count(t, tx, "t"); n != 1 {
		t.Fatalf("post-rollback count %d, want 1", n)
	}
	if err := tx.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}

	after := m.Begin()
	defer m.Release(after)
	if n := count(t, after, "t"); n != 1 {
		t.Fatalf("committed count %d, want 1", n)
	}
	after.Rollback()
}

// TestTxnMetrics: Begin/Commit/Rollback drive the transaction counters
// the /metrics endpoint derives txn_active from.
func TestTxnMetrics(t *testing.T) {
	m, met := newTestManager(0)
	mkTable(t, m, "t")
	base := met.TxnBegun.Load()

	tx := m.Begin()
	if met.TxnBegun.Load() != base+1 {
		t.Fatalf("TxnBegun = %d, want %d", met.TxnBegun.Load(), base+1)
	}
	if err := tx.Commit(context.Background()); err != nil {
		t.Fatal(err)
	}
	m.Release(tx)
	tx2 := m.Begin()
	tx2.Rollback()
	m.Release(tx2)
	if met.TxnCommitted.Load() == 0 || met.TxnRolledBack.Load() == 0 {
		t.Fatalf("commit/rollback not counted: committed=%d rolledback=%d",
			met.TxnCommitted.Load(), met.TxnRolledBack.Load())
	}
	active := met.TxnBegun.Load() - met.TxnCommitted.Load() - met.TxnRolledBack.Load()
	if active != 0 {
		t.Fatalf("txn_active = %d after all transactions finished, want 0", active)
	}
}

// TestConcurrentWritersDisjointTables: writers on different tables
// never contend; all commits land.
func TestConcurrentWritersDisjointTables(t *testing.T) {
	m, _ := newTestManager(0)
	mkTable(t, m, "a")
	mkTable(t, m, "b")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := "a"
			if i%2 == 1 {
				name = "b"
			}
			insert(t, m, name, int64(i))
		}(i)
	}
	wg.Wait()
	tx := m.Begin()
	defer m.Release(tx)
	if n := count(t, tx, "a") + count(t, tx, "b"); n != 8 {
		t.Fatalf("committed rows = %d, want 8", n)
	}
	tx.Rollback()
}
