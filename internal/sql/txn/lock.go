// Package txn is the engine's transaction and concurrency-control
// subsystem: statement-consistent MVCC snapshots over the storage
// layer's versioned tables and catalog, a FIFO lock manager for
// writers, and WAL group commit for durable databases. The design
// target is the paper's tightly-coupled architecture — a minutes-long
// MINE RULE run executes as a lock-free snapshot read while OLTP
// writers keep committing beside it.
package txn

import (
	"context"
	"time"

	"sync"

	"minerule/internal/obsv"
	"minerule/internal/resource"
)

// DefaultLockTimeout bounds a writer's wait for a contended lock when
// the Manager is configured with zero. The engine has no waits-for
// graph; the bounded wait doubles as deadlock detection — in a cycle,
// whoever times out first becomes the victim and the rest proceed.
const DefaultLockTimeout = 5 * time.Second

// LockManager grants exclusive locks on named resources to
// transactions. Readers never touch it (snapshots make reads
// lock-free); writers take one lock per table they mutate, and DDL
// takes the affected table's lock so a drop cannot race a committing
// writer. Resources are arbitrary strings — the engine currently locks
// at table granularity (lowercased table name), and the key space
// leaves room for finer grains ("table/row-key") without changing the
// manager.
//
// Waiters queue FIFO per resource: a released lock goes to the oldest
// waiter, so a steady stream of newcomers cannot starve anyone.
type LockManager struct {
	mu      sync.Mutex
	entries map[string]*lockEntry // guarded by mu
	timeout time.Duration         // guarded by mu (set once at construction)
	met     *obsv.Metrics         // immutable after construction; counters are atomic
}

// lockEntry is one resource's lock word and wait queue. Both fields are
// accessed only under the owning LockManager's mu.
type lockEntry struct {
	holder *Txn
	queue  []*waiter // FIFO
}

// waiter is one queued lock request. ready is closed exactly once, by
// the releaser that hands the waiter the lock.
type waiter struct {
	tx    *Txn
	ready chan struct{}
}

// newLockManager builds a manager with the given wait bound (zero
// selects DefaultLockTimeout).
func newLockManager(timeout time.Duration, met *obsv.Metrics) *LockManager {
	if timeout <= 0 {
		timeout = DefaultLockTimeout
	}
	return &LockManager{entries: make(map[string]*lockEntry), timeout: timeout, met: met}
}

// acquire takes the exclusive lock on res for tx, blocking FIFO behind
// the current holder. It returns nil immediately when tx already holds
// the lock. The wait ends early when ctx expires; either ending
// surfaces as a *resource.LockTimeoutError (with the context cause
// attached when that is what cut the wait short).
func (lm *LockManager) acquire(ctx context.Context, tx *Txn, res string) error {
	if ctx == nil {
		ctx = context.Background()
	}
	lm.mu.Lock()
	e := lm.entries[res]
	if e == nil {
		e = &lockEntry{}
		lm.entries[res] = e
	}
	if e.holder == nil {
		e.holder = tx
		lm.mu.Unlock()
		return nil
	}
	if e.holder == tx {
		lm.mu.Unlock()
		return nil
	}
	w := &waiter{tx: tx, ready: make(chan struct{})}
	e.queue = append(e.queue, w)
	timeout := lm.timeout
	lm.mu.Unlock()
	if lm.met != nil {
		lm.met.LockWaits.Inc()
	}

	start := time.Now()
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	var cause error
	select {
	case <-w.ready:
		return nil
	case <-ctx.Done():
		cause = resource.Canceled(ctx.Err())
	case <-timer.C:
		// Deadlock-timeout victim.
	}

	// The grant may have raced the timeout: a releaser that closed
	// w.ready already transferred the lock to us, and backing out now
	// would strand it. Re-check under the lock.
	lm.mu.Lock()
	select {
	case <-w.ready:
		lm.mu.Unlock()
		return nil
	default:
	}
	for i, q := range e.queue {
		if q == w {
			e.queue = append(e.queue[:i], e.queue[i+1:]...)
			break
		}
	}
	lm.mu.Unlock()
	if lm.met != nil {
		lm.met.LockTimeouts.Inc()
	}
	return &resource.LockTimeoutError{Table: res, Wait: time.Since(start), Cause: cause}
}

// release drops every lock tx holds among resources, handing each to
// its oldest waiter.
func (lm *LockManager) release(tx *Txn, resources []string) {
	lm.mu.Lock()
	for _, res := range resources {
		e := lm.entries[res]
		if e == nil || e.holder != tx {
			continue
		}
		if len(e.queue) > 0 {
			next := e.queue[0]
			e.queue = e.queue[1:]
			e.holder = next.tx
			close(next.ready)
			continue
		}
		e.holder = nil
		delete(lm.entries, res)
	}
	lm.mu.Unlock()
}
