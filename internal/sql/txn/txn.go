package txn

import (
	"context"
	"fmt"
	"strings"

	"minerule/internal/resource"
	"minerule/internal/sql/schema"
	"minerule/internal/sql/storage"
	"minerule/internal/sql/wal"
)

// Txn is one transaction: a consistent snapshot for reads, buffered
// writes under exclusive table locks, and a single atomic commit.
//
// Reads (SELECT, MINE RULE, semantic checks) resolve names and rows as
// of the snapshot stamp taken at Begin — lock-free, unaffected by
// concurrent commits and DDL. Writes resolve against the live catalog
// under the table's lock and buffer in per-table overlays; the
// transaction reads its own writes. Commit logs the whole write set as
// one atomic WAL frame, publishes it at a fresh commit stamp, releases
// locks, and then waits for durability via group fsync.
//
// DDL is non-transactional, as in most SQL engines' spirit if not
// letter: it journals and publishes immediately (taking the affected
// table's lock so it cannot race a writer), advances this
// transaction's own snapshot so the statement sees what it created,
// and is NOT undone by ROLLBACK.
//
// A Txn belongs to one session and is not safe for concurrent use; the
// Manager and the storage layer provide all cross-transaction safety.
type Txn struct {
	m      *Manager
	snap   uint64
	limits resource.Limits

	writes map[string]*tableWrite // keyed by lowercase table name
	order  []string               // write-set insertion order (deterministic log/publish order)

	held      map[string]bool // lock keys this txn holds
	heldOrder []string

	charged  int  // page-I/O charged so far (MaxPageIO accounting)
	mustSync bool // a side-channel journal append (DDL, sequence bump) needs the commit fsync
	finished bool
}

// tableWrite is one table's uncommitted overlay. base is the committed
// row state captured under the lock (the latest state — the lock
// guarantees it can no longer change); appends accumulate separately
// until a whole-table rewrite flips replaced, after which rows carries
// the full divergent state.
type tableWrite struct {
	t        *storage.Table
	base     []schema.Row
	appended []schema.Row
	rows     []schema.Row
	replaced bool
	view     []schema.Row // cached base+appended concatenation
}

// visible returns the overlay's current row view.
func (w *tableWrite) visible() []schema.Row {
	if w.replaced {
		return w.rows
	}
	if len(w.appended) == 0 {
		return w.base
	}
	if len(w.view) != len(w.base)+len(w.appended) {
		w.view = make([]schema.Row, 0, len(w.base)+len(w.appended))
		w.view = append(w.view, w.base...)
		w.view = append(w.view, w.appended...)
	}
	return w.view
}

// diverged reports whether the overlay differs from its base.
func (w *tableWrite) diverged() bool { return w.replaced || len(w.appended) > 0 }

func lockKey(name string) string { return strings.ToLower(name) }

// Snap returns the transaction's snapshot stamp (tests, diagnostics).
func (tx *Txn) Snap() uint64 { return tx.snap }

// SetLimits installs the resource limits the commit's page-I/O charge
// runs under. The engine calls it at each statement boundary with the
// statement's effective limits.
func (tx *Txn) SetLimits(l resource.Limits) { tx.limits = l }

// ---------------------------------------------------------------------------
// Snapshot reads

// Table resolves a table name as of the snapshot; a table this
// transaction has opened for write resolves to the locked live table.
func (tx *Txn) Table(name string) (*storage.Table, bool) {
	if w := tx.writes[lockKey(name)]; w != nil {
		return w.t, true
	}
	return tx.m.cat.TableAt(name, tx.snap)
}

// View resolves a view name as of the snapshot.
func (tx *Txn) View(name string) (*storage.View, bool) {
	return tx.m.cat.ViewAt(name, tx.snap)
}

// Sequence resolves a sequence as of the snapshot. Sequences are
// non-transactional (NEXTVAL burns values immediately, Oracle-style);
// resolving one marks the transaction as needing the commit fsync,
// since a NEXTVAL may journal a cache-ceiling bump.
func (tx *Txn) Sequence(name string) (*storage.Sequence, bool) {
	s, ok := tx.m.cat.SequenceAt(name, tx.snap)
	if ok && tx.m.jn != nil {
		tx.mustSync = true
	}
	return s, ok
}

// Rows returns t's rows as this transaction sees them: the uncommitted
// overlay for tables it wrote, the snapshot state otherwise. The slice
// is read-only.
func (tx *Txn) Rows(t *storage.Table) []schema.Row {
	if w := tx.writes[lockKey(t.Name())]; w != nil {
		return w.visible()
	}
	return t.RowsAt(tx.snap)
}

// Len returns t's row count as this transaction sees it.
func (tx *Txn) Len(t *storage.Table) int {
	if w := tx.writes[lockKey(t.Name())]; w != nil {
		if w.replaced {
			return len(w.rows)
		}
		return len(w.base) + len(w.appended)
	}
	return t.LenAt(tx.snap)
}

// IndexOn returns an index usable for point lookups on the column, or
// nil when none applies. A written table's overlay is unindexed once it
// diverges, so lookups fall back to scans there.
func (tx *Txn) IndexOn(t *storage.Table, col int) *storage.Index {
	if w := tx.writes[lockKey(t.Name())]; w != nil {
		if w.diverged() {
			return nil
		}
		// Undiverged overlay: base is the live state and the lock keeps
		// it still, so the live index covers it exactly.
		return t.IndexOn(col)
	}
	return t.IndexOnAt(col, tx.snap)
}

// Lookup performs a point lookup through an index obtained from
// IndexOn, restricted to the rows this transaction sees.
func (tx *Txn) Lookup(t *storage.Table, ix *storage.Index, key string) []schema.Row {
	if w := tx.writes[lockKey(t.Name())]; w != nil {
		return t.Lookup(ix, key)
	}
	return t.LookupAt(ix, key, tx.snap)
}

// CatalogVersion returns the catalog's DDL version as of the snapshot —
// the key the statement and view-plan caches validate against, so a
// prepared program never revalidates against dictionary states this
// snapshot cannot see.
func (tx *Txn) CatalogVersion() uint64 { return tx.m.cat.VersionAt(tx.snap) }

// StatsEpoch returns the live statistics epoch. Statistics are
// planning advice, not visibility state; the freshest estimates are
// the most useful ones regardless of snapshot.
func (tx *Txn) StatsEpoch() uint64 { return tx.m.cat.StatsEpoch() }

// ---------------------------------------------------------------------------
// semck.Catalog: prepare-time checks resolve against the snapshot.

// TableSchema implements semck.Catalog.
func (tx *Txn) TableSchema(name string) (*schema.Schema, bool) {
	t, ok := tx.Table(name)
	if !ok {
		return nil, false
	}
	return t.Schema(), true
}

// ViewText implements semck.Catalog.
func (tx *Txn) ViewText(name string) (string, bool) {
	v, ok := tx.View(name)
	if !ok {
		return "", false
	}
	return v.Text, true
}

// HasSequence implements semck.Catalog.
func (tx *Txn) HasSequence(name string) bool {
	_, ok := tx.m.cat.SequenceAt(name, tx.snap)
	return ok
}

// HasIndex implements semck.Catalog.
func (tx *Txn) HasIndex(name string) bool { return tx.m.cat.HasIndexAt(name, tx.snap) }

// TableIndexes implements semck.Catalog.
func (tx *Txn) TableIndexes(table string) []string {
	return tx.m.cat.TableIndexesAt(table, tx.snap)
}

// ---------------------------------------------------------------------------
// Writes

// lock acquires (or re-enters) the table lock for key k.
func (tx *Txn) lock(ctx context.Context, k string) error {
	if tx.held[k] {
		return nil
	}
	if err := tx.m.locks.acquire(ctx, tx, k); err != nil {
		return err
	}
	if tx.held == nil {
		tx.held = make(map[string]bool)
	}
	tx.held[k] = true
	tx.heldOrder = append(tx.heldOrder, k)
	return nil
}

// ForWrite opens the named table for mutation: the table's exclusive
// lock is acquired (FIFO behind other writers, bounded wait), the live
// table resolved, and an overlay created whose base is the committed
// state — which the lock now freezes. ok is false when no such table
// exists (the lock is kept; it is released with the rest at txn end).
func (tx *Txn) ForWrite(ctx context.Context, name string) (t *storage.Table, ok bool, err error) {
	k := lockKey(name)
	if w := tx.writes[k]; w != nil {
		return w.t, true, nil
	}
	if err := tx.lock(ctx, k); err != nil {
		return nil, false, err
	}
	live, ok := tx.m.cat.Table(name)
	if !ok {
		return nil, false, nil
	}
	if tx.writes == nil {
		tx.writes = make(map[string]*tableWrite)
	}
	tx.writes[k] = &tableWrite{t: live, base: live.Snapshot()}
	tx.order = append(tx.order, k)
	return live, true, nil
}

// InsertRows buffers an append to a table previously opened with
// ForWrite. Nothing is journaled or visible to other transactions
// until Commit.
func (tx *Txn) InsertRows(t *storage.Table, rows []schema.Row) error {
	w := tx.writes[lockKey(t.Name())]
	if w == nil {
		return fmt.Errorf("txn: insert into table %q not opened for write", t.Name())
	}
	if w.replaced {
		w.rows = append(w.rows, rows...)
	} else {
		w.appended = append(w.appended, rows...)
	}
	w.view = nil
	return nil
}

// ReplaceRows buffers a whole-table rewrite (UPDATE/DELETE's idiom) of
// a table previously opened with ForWrite, taking ownership of rows.
func (tx *Txn) ReplaceRows(t *storage.Table, rows []schema.Row) error {
	w := tx.writes[lockKey(t.Name())]
	if w == nil {
		return fmt.Errorf("txn: replace of table %q not opened for write", t.Name())
	}
	w.replaced = true
	w.rows = rows
	w.appended = nil
	w.view = nil
	return nil
}

// ---------------------------------------------------------------------------
// DDL (non-transactional; see the type comment)

// ddlDone advances the snapshot past the DDL just applied and marks the
// commit as needing the group fsync (the DDL's journal append is not
// durable until then).
func (tx *Txn) ddlDone() {
	tx.m.advance(tx)
	if tx.m.jn != nil {
		tx.mustSync = true
	}
}

// CreateTable creates a table through the transaction.
func (tx *Txn) CreateTable(ctx context.Context, name string, s *schema.Schema) (*storage.Table, error) {
	t, err := tx.m.cat.CreateTable(name, s)
	if err != nil {
		return nil, err
	}
	tx.ddlDone()
	return t, nil
}

// DropTable drops a table. The table's lock is taken first, so the
// drop cannot race a writer mid-commit; any uncommitted writes this
// transaction had buffered for the table are discarded with it.
func (tx *Txn) DropTable(ctx context.Context, name string) error {
	k := lockKey(name)
	if err := tx.lock(ctx, k); err != nil {
		return err
	}
	if err := tx.m.cat.DropTable(name); err != nil {
		return err
	}
	if tx.writes[k] != nil {
		delete(tx.writes, k)
	}
	tx.ddlDone()
	return nil
}

// CreateIndex creates an index, locking the indexed table so the build
// cannot race a writer.
func (tx *Txn) CreateIndex(ctx context.Context, name, table string, col int) (*storage.Index, error) {
	if err := tx.lock(ctx, lockKey(table)); err != nil {
		return nil, err
	}
	ix, err := tx.m.cat.CreateIndex(name, table, col)
	if err != nil {
		return nil, err
	}
	tx.ddlDone()
	return ix, nil
}

// DropIndex drops an index, locking its owning table first.
func (tx *Txn) DropIndex(ctx context.Context, name string) error {
	if owner, ok := tx.m.cat.IndexOwner(name); ok {
		if err := tx.lock(ctx, lockKey(owner)); err != nil {
			return err
		}
	}
	if err := tx.m.cat.DropIndex(name); err != nil {
		return err
	}
	tx.ddlDone()
	return nil
}

// CreateView creates a view through the transaction.
func (tx *Txn) CreateView(name, text string) error {
	if err := tx.m.cat.CreateView(name, text); err != nil {
		return err
	}
	tx.ddlDone()
	return nil
}

// DropView drops a view through the transaction.
func (tx *Txn) DropView(name string) error {
	if err := tx.m.cat.DropView(name); err != nil {
		return err
	}
	tx.ddlDone()
	return nil
}

// CreateSequence creates a sequence through the transaction.
func (tx *Txn) CreateSequence(name string) (*storage.Sequence, error) {
	s, err := tx.m.cat.CreateSequence(name)
	if err != nil {
		return nil, err
	}
	tx.ddlDone()
	return s, nil
}

// DropSequence drops a sequence through the transaction.
func (tx *Txn) DropSequence(name string) error {
	if err := tx.m.cat.DropSequence(name); err != nil {
		return err
	}
	tx.ddlDone()
	return nil
}

// ---------------------------------------------------------------------------
// Savepoints

// Savepoint marks the current write-set state. The engine takes one
// before each statement inside an explicit transaction so a failed
// statement rolls back alone, leaving the transaction usable.
type Savepoint struct {
	marks map[string]tableMark
	n     int
}

// tableMark freezes one overlay's state by slice header: later
// operations only append to or wholesale-replace these slices, so the
// saved headers keep addressing the prefix as it was.
type tableMark struct {
	appended []schema.Row
	rows     []schema.Row
	replaced bool
}

// Savepoint captures the write-set state for RollbackTo.
func (tx *Txn) Savepoint() Savepoint {
	sp := Savepoint{n: len(tx.order)}
	if len(tx.writes) > 0 {
		sp.marks = make(map[string]tableMark, len(tx.writes))
		for k, w := range tx.writes {
			sp.marks[k] = tableMark{appended: w.appended, rows: w.rows, replaced: w.replaced}
		}
	}
	return sp
}

// RollbackTo restores the write set to a savepoint taken on this
// transaction: tables first written after the mark drop out entirely;
// earlier overlays revert to their marked state. Locks acquired since
// are kept until transaction end (releasing mid-txn would let another
// writer interleave with our still-pending earlier writes). DDL is not
// undone.
func (tx *Txn) RollbackTo(sp Savepoint) {
	for _, k := range tx.order[sp.n:] {
		delete(tx.writes, k)
	}
	tx.order = tx.order[:sp.n]
	for k, mark := range sp.marks {
		w := tx.writes[k]
		if w == nil {
			continue
		}
		w.appended = mark.appended
		w.rows = mark.rows
		w.replaced = mark.replaced
		w.view = nil
	}
}

// ---------------------------------------------------------------------------
// Commit / rollback

// charge is the page-I/O budget hook AppendBatch calls before logging
// the commit frame; exceeding MaxPageIO vetoes the commit before any
// byte reaches the WAL.
func (tx *Txn) charge(pages int) error {
	if tx.limits.MaxPageIO <= 0 {
		return nil
	}
	tx.charged += pages
	if tx.charged > tx.limits.MaxPageIO {
		return &resource.BudgetError{Resource: "pageio", Limit: tx.limits.MaxPageIO}
	}
	return nil
}

// buildRecords turns the write set into WAL records in write order.
// Overlays whose table this transaction itself dropped (and possibly
// recreated) are skipped: the drop already journaled, and a record for
// a dead table must never reach the log.
func (tx *Txn) buildRecords() []*wal.Record {
	var recs []*wal.Record
	for _, k := range tx.order {
		w := tx.writes[k]
		if w == nil || !w.diverged() {
			continue
		}
		if cur, ok := tx.m.cat.Table(w.t.Name()); !ok || cur != w.t {
			continue
		}
		if w.replaced {
			recs = append(recs, &wal.Record{Kind: wal.KindReplace, Name: w.t.Name(), Rows: w.rows})
		} else {
			recs = append(recs, &wal.Record{Kind: wal.KindInsert, Name: w.t.Name(), Rows: w.appended})
		}
	}
	return recs
}

// Commit makes the write set atomically visible and durable:
//
//  1. Under the catalog publish lock, the whole write set is appended
//     to the WAL as one frame (budget veto before any byte is logged;
//     an error here aborts the transaction with nothing published).
//     Append and publish share the lock so a checkpoint — which equates
//     "appended at or below the manifest LSN" with "applied in memory"
//     — can never capture a frame whose overlays it has not seen.
//  2. Still under the publish lock, a commit stamp is allocated at the
//     frame's LSN (or the next logical stamp in memory), every overlay
//     is published at it, and the visible watermark advances — readers
//     see all of the commit or none of it.
//  3. Locks release, unblocking queued writers.
//  4. SyncTo waits for the frame to be durable, sharing one fsync with
//     concurrently committing transactions (group commit). Only then is
//     the commit acknowledged — a crash beforehand loses an unacked
//     commit, never an acked one.
func (tx *Txn) Commit(ctx context.Context) error {
	if tx.finished {
		return nil
	}
	m := tx.m
	recs := tx.buildRecords()
	var lsn uint64
	if len(recs) > 0 {
		m.cat.LockPublish()
		if m.jn != nil {
			var err error
			lsn, err = m.jn.AppendBatch(recs, tx.charge)
			if err != nil {
				m.cat.UnlockPublish()
				tx.abort()
				return err
			}
		}
		stamp := m.cat.Stamps().Next(lsn)
		lwm := m.unregister(tx)
		for _, k := range tx.order {
			w := tx.writes[k]
			if w == nil || !w.diverged() {
				continue
			}
			if cur, ok := m.cat.Table(w.t.Name()); !ok || cur != w.t {
				continue
			}
			if w.replaced {
				w.t.PublishReplace(stamp, w.rows, lwm)
			} else {
				w.t.PublishAppend(stamp, w.appended, lwm)
			}
		}
		m.cat.Stamps().SetVisible(stamp)
		m.cat.UnlockPublish()
		m.cat.PruneHistory(lwm)
	} else {
		lwm := m.unregister(tx)
		m.cat.PruneHistory(lwm)
	}
	tx.releaseLocks()
	tx.finished = true
	tx.writes = nil
	if m.met != nil {
		m.met.TxnCommitted.Inc()
	}
	if m.jn != nil && (lsn > 0 || tx.mustSync) {
		syncLSN := lsn
		if syncLSN == 0 {
			syncLSN = m.jn.LastLSN()
		}
		if err := m.jn.SyncTo(syncLSN); err != nil {
			return err
		}
		if m.met != nil {
			m.met.GroupCommits.Inc()
		}
	}
	return nil
}

// Rollback discards the write set: nothing was journaled or published,
// so forgetting the overlays and releasing the locks is the whole job.
// DDL the transaction performed stays (it is non-transactional).
// Rollback after Commit (or a second Rollback) is a no-op.
func (tx *Txn) Rollback() {
	if tx.finished {
		return
	}
	tx.abort()
}

func (tx *Txn) abort() {
	lwm := tx.m.unregister(tx)
	tx.m.cat.PruneHistory(lwm)
	tx.releaseLocks()
	tx.finished = true
	tx.writes = nil
	if tx.m.met != nil {
		tx.m.met.TxnRolledBack.Inc()
	}
}

func (tx *Txn) releaseLocks() {
	if len(tx.heldOrder) == 0 {
		return
	}
	tx.m.locks.release(tx, tx.heldOrder)
	tx.heldOrder = nil
	tx.held = nil
}
