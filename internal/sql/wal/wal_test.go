package wal_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"minerule/internal/sql/schema"
	"minerule/internal/sql/value"
	"minerule/internal/sql/vfs"
	"minerule/internal/sql/wal"
)

func sampleRecords() []*wal.Record {
	return []*wal.Record{
		{Kind: wal.KindCreateTable, Name: "purchase", Cols: []schema.Column{
			{Name: "tr", Type: value.TypeInt},
			{Name: "item", Type: value.TypeString},
			{Name: "price", Type: value.TypeFloat},
		}},
		{Kind: wal.KindCreateSequence, Name: "rid"},
		{Kind: wal.KindInsert, Name: "purchase", Rows: []schema.Row{
			{value.NewInt(1), value.NewString("ski_pants"), value.NewFloat(140)},
			{value.NewInt(1), value.NewString("hiking_boots"), value.NewFloat(180)},
		}},
		{Kind: wal.KindCreateIndex, Name: "purchase_item", Table: "purchase", Col: 1},
		{Kind: wal.KindSeqBump, Name: "rid", Next: 33},
		{Kind: wal.KindCreateView, Name: "v", Text: "SELECT item FROM purchase"},
		{Kind: wal.KindTruncate, Name: "purchase"},
		{Kind: wal.KindReplace, Name: "purchase", Rows: []schema.Row{
			{value.NewInt(2), value.NewString("jackets"), value.Null},
		}},
		{Kind: wal.KindDropView, Name: "v"},
		{Kind: wal.KindCheckpoint, Next: 2},
	}
}

func writeLog(t *testing.T, recs []*wal.Record) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := wal.Create(vfs.OS, path, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if _, err := w.Append(r); err != nil {
			t.Fatal(err)
		}
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAppendReplayRoundTrip(t *testing.T) {
	recs := sampleRecords()
	path := writeLog(t, recs)

	var got []*wal.Record
	validEnd, lastLSN, _, err := wal.Replay(vfs.OS, path, func(r *wal.Record) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := os.Stat(path)
	if validEnd != st.Size() {
		t.Fatalf("validEnd %d != file size %d", validEnd, st.Size())
	}
	if lastLSN != uint64(len(recs)) {
		t.Fatalf("lastLSN %d want %d", lastLSN, len(recs))
	}
	if len(got) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(got), len(recs))
	}
	for i, r := range got {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d: LSN %d want %d", i, r.LSN, i+1)
		}
		want := recs[i] // Append stamped LSNs in place
		if !reflect.DeepEqual(r, want) {
			t.Fatalf("record %d mismatch:\n got %+v\nwant %+v", i, r, want)
		}
	}
}

// TestTornTailPrefix verifies the crash-recovery contract: truncating the
// log at any byte length recovers exactly the records whose frames fit,
// never an error, never a partial record.
func TestTornTailPrefix(t *testing.T) {
	recs := sampleRecords()
	path := writeLog(t, recs)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bounds := wal.Boundaries(b)
	if len(bounds) != len(recs) {
		t.Fatalf("Boundaries found %d records, want %d", len(bounds), len(recs))
	}
	if bounds[len(bounds)-1] != int64(len(b)) {
		t.Fatalf("last boundary %d != log size %d", bounds[len(bounds)-1], len(b))
	}
	for cut := 0; cut <= len(b); cut++ {
		wantN := 0
		var wantEnd int64
		for i, e := range bounds {
			if int64(cut) >= e {
				wantN, wantEnd = i+1, e
			}
		}
		n := 0
		validEnd, lastLSN, err := wal.ReplayBytes(b[:cut], func(*wal.Record) error {
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: replay error %v", cut, err)
		}
		if n != wantN || validEnd != wantEnd || lastLSN != uint64(wantN) {
			t.Fatalf("cut %d: got %d records (validEnd %d, lsn %d), want %d (validEnd %d)",
				cut, n, validEnd, lastLSN, wantN, wantEnd)
		}
	}
}

// TestCorruptTail flips one byte in the middle of the last record's
// payload; replay must stop cleanly at the previous boundary.
func TestCorruptTail(t *testing.T) {
	recs := sampleRecords()
	path := writeLog(t, recs)
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bounds := wal.Boundaries(b)
	prev := bounds[len(bounds)-2]
	b[prev+10] ^= 0xff // inside the last frame's payload

	n := 0
	validEnd, _, err := wal.ReplayBytes(b, func(*wal.Record) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if validEnd != prev || n != len(recs)-1 {
		t.Fatalf("corrupt tail: validEnd %d (want %d), %d records (want %d)",
			validEnd, prev, n, len(recs)-1)
	}
}

func TestOpenAppendContinues(t *testing.T) {
	recs := sampleRecords()
	path := writeLog(t, recs)
	b, _ := os.ReadFile(path)
	bounds := wal.Boundaries(b)

	// Simulate a torn tail, then recovery: truncate mid-record, reopen.
	tear := bounds[len(bounds)-1] - 3
	if err := os.Truncate(path, tear); err != nil {
		t.Fatal(err)
	}
	validEnd, lastLSN, _, err := wal.Replay(vfs.OS, path, nil)
	if err != nil {
		t.Fatal(err)
	}
	w, err := wal.OpenAppend(vfs.OS, path, validEnd, lastLSN)
	if err != nil {
		t.Fatal(err)
	}
	if w.LastLSN() != uint64(len(recs)-1) {
		t.Fatalf("recovered LSN %d want %d", w.LastLSN(), len(recs)-1)
	}
	if _, err := w.Append(&wal.Record{Kind: wal.KindTruncate, Name: "purchase"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var kinds []wal.Kind
	_, lastLSN, _, err = wal.Replay(vfs.OS, path, func(r *wal.Record) error {
		kinds = append(kinds, r.Kind)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(kinds) != len(recs) || kinds[len(kinds)-1] != wal.KindTruncate {
		t.Fatalf("after reopen: %d records, tail %v", len(kinds), kinds[len(kinds)-1])
	}
	if lastLSN != uint64(len(recs)) {
		t.Fatalf("lastLSN %d want %d", lastLSN, len(recs))
	}
}

func TestWriteHookTornFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	w, err := wal.Create(vfs.OS, path, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(&wal.Record{Kind: wal.KindCreateSequence, Name: "s"}); err != nil {
		t.Fatal(err)
	}
	boom := os.ErrClosed
	w.WriteHook = func(frame []byte) ([]byte, error) {
		return frame[:len(frame)-2], boom // torn write, then "crash"
	}
	if _, err := w.Append(&wal.Record{Kind: wal.KindCreateSequence, Name: "t"}); err == nil {
		t.Fatal("hooked append did not fail")
	}
	w.WriteHook = nil
	w.Close()

	n := 0
	validEnd, lastLSN, torn, err := wal.Replay(vfs.OS, path, func(*wal.Record) error { n++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || lastLSN != 1 {
		t.Fatalf("after torn frame: %d records (lsn %d), want 1", n, lastLSN)
	}
	st, _ := os.Stat(path)
	if validEnd >= st.Size() {
		t.Fatalf("torn bytes should trail the valid prefix (validEnd %d, size %d)", validEnd, st.Size())
	}
	if torn != st.Size()-validEnd {
		t.Fatalf("Replay reported %d torn bytes, want %d", torn, st.Size()-validEnd)
	}
}

func TestDecodePayloadRejectsJunk(t *testing.T) {
	cases := [][]byte{
		{},
		{0},
		{0xee, 1},                 // unknown kind
		{byte(wal.KindInsert), 1}, // missing body
	}
	for i, in := range cases {
		if _, err := wal.DecodePayload(in); err == nil {
			t.Errorf("case %d: junk payload accepted", i)
		}
	}
}
