// Package wal implements the append-only redo log of the durable
// storage subsystem. Every catalog mutation — DDL, insert batches,
// truncates/replaces, sequence bumps — appends one typed record; replay
// of the log over the last checkpoint reconstructs the catalog.
//
// Framing is length+CRC: each record is
//
//	[4B little-endian payload length][4B CRC-32C of payload][payload]
//
// so a reader can always distinguish a clean end-of-log from a torn or
// corrupt tail: the first frame whose length header is short, whose
// payload is truncated, or whose CRC mismatches ends the valid prefix.
// Any prefix of the log is therefore a consistent (if older) database
// state — the crash-recovery contract the kill-point sweep enforces.
//
// Records carry a monotonically increasing LSN. Replay skips records at
// or below the already-applied LSN, which makes recovery idempotent:
// replaying a log twice equals replaying it once.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"

	"minerule/internal/obsv"
	"minerule/internal/resource"
	"minerule/internal/sql/schema"
	"minerule/internal/sql/value"
	"minerule/internal/sql/vfs"
)

// Kind enumerates the record types of the redo log.
type Kind uint8

// The record types. The numeric values are part of the on-disk format;
// append only, never renumber.
const (
	KindCreateTable Kind = iota + 1
	KindDropTable
	KindCreateView
	KindDropView
	KindCreateSequence
	KindDropSequence
	KindCreateIndex
	KindDropIndex
	KindInsert
	KindTruncate
	KindReplace
	KindSeqBump
	KindCheckpoint
	// KindTxn is an atomic multi-record commit: the sub-records apply
	// together or (after a crash inside the frame) not at all — CRC
	// framing already makes every frame all-or-nothing, so transactions
	// get crash atomicity without a begin/end record pair. The wrapper
	// consumes one LSN; its sub-records carry LSN zero.
	KindTxn
)

// String names the kind for diagnostics.
func (k Kind) String() string {
	switch k {
	case KindCreateTable:
		return "CREATE TABLE"
	case KindDropTable:
		return "DROP TABLE"
	case KindCreateView:
		return "CREATE VIEW"
	case KindDropView:
		return "DROP VIEW"
	case KindCreateSequence:
		return "CREATE SEQUENCE"
	case KindDropSequence:
		return "DROP SEQUENCE"
	case KindCreateIndex:
		return "CREATE INDEX"
	case KindDropIndex:
		return "DROP INDEX"
	case KindInsert:
		return "INSERT"
	case KindTruncate:
		return "TRUNCATE"
	case KindReplace:
		return "REPLACE"
	case KindSeqBump:
		return "SEQ BUMP"
	case KindCheckpoint:
		return "CHECKPOINT"
	case KindTxn:
		return "TXN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Record is one logical redo-log entry. Which fields are meaningful
// depends on Kind; unused fields are zero.
type Record struct {
	LSN  uint64
	Kind Kind

	// Name is the object the record is about: the table for
	// CreateTable/DropTable/Insert/Truncate/Replace, the view, sequence
	// or index for their kinds.
	Name string
	// Table is the owning table of a CreateIndex record.
	Table string
	// Text is the SELECT body of a CreateView record.
	Text string
	// Cols is the schema of a CreateTable record.
	Cols []schema.Column
	// Col is the indexed column ordinal of a CreateIndex record.
	Col int
	// Rows is the batch of an Insert or Replace record.
	Rows []schema.Row
	// Next is the new sequence ceiling of a SeqBump record: recovery
	// restores the sequence so the next NEXTVAL returns Next (values
	// skipped by the crash become gaps, the classic sequence-cache
	// trade).
	Next int64
	// Subs is the record sequence of a KindTxn commit, applied in order.
	// Sub-records carry LSN zero (the wrapper owns the frame's LSN) and
	// may not nest further Txn records.
	Subs []*Record
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// frameHeader is the per-record on-disk overhead.
const frameHeader = 8

// FrameOverhead is frameHeader for callers sizing a frame from its
// payload (the durable store's page-I/O accounting).
const FrameOverhead = frameHeader

// appendString appends a uvarint-length-framed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func decodeString(b []byte) (string, []byte, error) {
	l, n := binary.Uvarint(b)
	if n <= 0 || uint64(len(b)-n) < l {
		return "", nil, fmt.Errorf("wal: bad string frame")
	}
	return string(b[n : n+int(l)]), b[n+int(l):], nil
}

// AppendPayload serializes the record (everything inside the frame).
func (r *Record) AppendPayload(dst []byte) []byte {
	dst = append(dst, byte(r.Kind))
	dst = binary.AppendUvarint(dst, r.LSN)
	switch r.Kind {
	case KindCreateTable:
		dst = appendString(dst, r.Name)
		dst = binary.AppendUvarint(dst, uint64(len(r.Cols)))
		for _, c := range r.Cols {
			dst = appendString(dst, c.Name)
			dst = binary.AppendUvarint(dst, uint64(c.Type))
		}
	case KindDropTable, KindDropView, KindCreateSequence, KindDropSequence,
		KindDropIndex, KindTruncate:
		dst = appendString(dst, r.Name)
	case KindCreateView:
		dst = appendString(dst, r.Name)
		dst = appendString(dst, r.Text)
	case KindCreateIndex:
		dst = appendString(dst, r.Name)
		dst = appendString(dst, r.Table)
		dst = binary.AppendUvarint(dst, uint64(r.Col))
	case KindInsert, KindReplace:
		dst = appendString(dst, r.Name)
		dst = binary.AppendUvarint(dst, uint64(len(r.Rows)))
		for _, row := range r.Rows {
			dst = row.AppendBinary(dst)
		}
	case KindSeqBump:
		dst = appendString(dst, r.Name)
		dst = binary.AppendVarint(dst, r.Next)
	case KindCheckpoint:
		dst = binary.AppendVarint(dst, r.Next)
	case KindTxn:
		dst = binary.AppendUvarint(dst, uint64(len(r.Subs)))
		for _, sub := range r.Subs {
			// Each sub-record is length-framed so decode needs no
			// knowledge of the inner payload shapes.
			body := sub.AppendPayload(nil)
			dst = binary.AppendUvarint(dst, uint64(len(body)))
			dst = append(dst, body...)
		}
	}
	return dst
}

// DecodePayload parses one record payload. It fails (never panics) on
// truncated or unknown input, which replay treats as a torn tail.
func DecodePayload(b []byte) (*Record, error) {
	if len(b) < 2 {
		return nil, fmt.Errorf("wal: short payload")
	}
	r := &Record{Kind: Kind(b[0])}
	lsn, n := binary.Uvarint(b[1:])
	if n <= 0 {
		return nil, fmt.Errorf("wal: bad LSN")
	}
	r.LSN = lsn
	rest := b[1+n:]
	var err error
	switch r.Kind {
	case KindCreateTable:
		if r.Name, rest, err = decodeString(rest); err != nil {
			return nil, err
		}
		ncols, n := binary.Uvarint(rest)
		if n <= 0 || ncols > uint64(len(rest)) {
			return nil, fmt.Errorf("wal: bad column count")
		}
		rest = rest[n:]
		r.Cols = make([]schema.Column, ncols)
		for i := range r.Cols {
			if r.Cols[i].Name, rest, err = decodeString(rest); err != nil {
				return nil, err
			}
			t, n := binary.Uvarint(rest)
			if n <= 0 {
				return nil, fmt.Errorf("wal: bad column type")
			}
			r.Cols[i].Type = value.Type(t)
			rest = rest[n:]
		}
	case KindDropTable, KindDropView, KindCreateSequence, KindDropSequence,
		KindDropIndex, KindTruncate:
		if r.Name, rest, err = decodeString(rest); err != nil {
			return nil, err
		}
	case KindCreateView:
		if r.Name, rest, err = decodeString(rest); err != nil {
			return nil, err
		}
		if r.Text, rest, err = decodeString(rest); err != nil {
			return nil, err
		}
	case KindCreateIndex:
		if r.Name, rest, err = decodeString(rest); err != nil {
			return nil, err
		}
		if r.Table, rest, err = decodeString(rest); err != nil {
			return nil, err
		}
		col, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("wal: bad index column")
		}
		r.Col = int(col)
		rest = rest[n:]
	case KindInsert, KindReplace:
		if r.Name, rest, err = decodeString(rest); err != nil {
			return nil, err
		}
		nrows, n := binary.Uvarint(rest)
		if n <= 0 || nrows > uint64(len(rest)) { // each row needs ≥ 1 byte
			return nil, fmt.Errorf("wal: bad row count")
		}
		rest = rest[n:]
		if nrows > 0 {
			r.Rows = make([]schema.Row, nrows)
			for i := range r.Rows {
				if r.Rows[i], rest, err = schema.DecodeRowBinary(rest); err != nil {
					return nil, fmt.Errorf("wal: row %d: %w", i, err)
				}
			}
		}
	case KindSeqBump:
		if r.Name, rest, err = decodeString(rest); err != nil {
			return nil, err
		}
		v, n := binary.Varint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("wal: bad sequence value")
		}
		r.Next = v
		rest = rest[n:]
	case KindCheckpoint:
		v, n := binary.Varint(rest)
		if n <= 0 {
			return nil, fmt.Errorf("wal: bad checkpoint value")
		}
		r.Next = v
		rest = rest[n:]
	case KindTxn:
		nsubs, n := binary.Uvarint(rest)
		if n <= 0 || nsubs > uint64(len(rest)) { // each sub needs ≥ 1 byte
			return nil, fmt.Errorf("wal: bad txn sub-record count")
		}
		rest = rest[n:]
		r.Subs = make([]*Record, nsubs)
		for i := range r.Subs {
			l, n := binary.Uvarint(rest)
			if n <= 0 || uint64(len(rest)-n) < l {
				return nil, fmt.Errorf("wal: bad txn sub-record frame")
			}
			sub, err := DecodePayload(rest[n : n+int(l)])
			if err != nil {
				return nil, fmt.Errorf("wal: txn sub-record %d: %w", i, err)
			}
			if sub.Kind == KindTxn {
				return nil, fmt.Errorf("wal: nested txn record")
			}
			r.Subs[i] = sub
			rest = rest[n+int(l):]
		}
	default:
		return nil, fmt.Errorf("wal: unknown record kind %d", r.Kind)
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("wal: %d trailing payload byte(s)", len(rest))
	}
	return r, nil
}

// ---------------------------------------------------------------------------
// Writer

// Writer appends records to one log file. Appends buffer in the OS;
// Sync is the group-commit point — the engine calls it once per
// statement, so all records of a multi-row statement share one fsync.
// Not safe for concurrent use; callers (the storage journal) serialize.
type Writer struct {
	f      vfs.File
	lsn    uint64 // last LSN handed out
	end    int64  // offset just past the last fully written frame
	broken bool   // a failed append left bytes past end; Repair pending
	buf    []byte // frame scratch, reused across appends
	pay    []byte // payload scratch for Append
	dirt   bool   // bytes appended since the last Sync

	// Met, when non-nil, receives WAL counters.
	Met *obsv.Metrics
	// WriteHook, when non-nil, intercepts every frame write — test-only
	// crash injection (internal/fault.WriteGate): it may shorten the
	// frame to simulate a torn write and return the error that "kills"
	// the process. Same idiom as engine.SetExecHook.
	WriteHook func(frame []byte) ([]byte, error)
}

// Create truncates/creates the log at path on fsys. Records appended
// will carry LSNs above lastLSN.
func Create(fsys vfs.FS, path string, lastLSN uint64) (*Writer, error) {
	f, err := fsys.Create(path)
	if err != nil {
		return nil, resource.NewIOError("wal create", err)
	}
	return &Writer{f: f, lsn: lastLSN}, nil
}

// OpenAppend opens an existing log for appending after recovery has
// validated it: the file is truncated to validEnd (dropping any torn
// tail so it can never corrupt later records) and new records carry
// LSNs above lastLSN.
func OpenAppend(fsys vfs.FS, path string, validEnd int64, lastLSN uint64) (*Writer, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, resource.NewIOError("wal open", err)
	}
	if err := f.Truncate(validEnd); err != nil {
		f.Close()
		return nil, resource.NewIOError("wal truncate", err)
	}
	if _, err := f.Seek(validEnd, io.SeekStart); err != nil {
		f.Close()
		return nil, resource.NewIOError("wal seek", err)
	}
	return &Writer{f: f, lsn: lastLSN, end: validEnd}, nil
}

// LastLSN returns the LSN of the most recently appended (or recovered)
// record.
func (w *Writer) LastLSN() uint64 { return w.lsn }

// Size returns the current log length in bytes.
func (w *Writer) Size() (int64, error) {
	size, err := w.f.Size()
	if err != nil {
		return 0, resource.NewIOError("wal stat", err)
	}
	return size, nil
}

// Append assigns the record the next LSN and writes its frame. The
// write lands in the OS cache; durability requires a following Sync.
// It returns the bytes appended (for page-I/O accounting).
func (w *Writer) Append(r *Record) (int, error) {
	r.LSN = w.lsn + 1
	w.pay = r.AppendPayload(w.pay[:0])
	return w.AppendEncoded(w.pay)
}

// AppendEncoded frames and writes an already-serialized payload, which
// must be an AppendPayload result carrying LSN LastLSN()+1. Append does
// both steps in one call; the split lets the durable store charge its
// page-I/O budget on the exact frame size before any byte reaches the
// log.
func (w *Writer) AppendEncoded(payload []byte) (int, error) {
	w.buf = append(w.buf[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	w.buf = append(w.buf, payload...)
	payload = w.buf[frameHeader:]
	binary.LittleEndian.PutUint32(w.buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(w.buf[4:8], crc32.Checksum(payload, crcTable))

	frame := w.buf
	if w.WriteHook != nil {
		cut, err := w.WriteHook(frame)
		if len(cut) > 0 {
			w.f.Write(cut) // partial (torn) frame reaches the disk
			w.dirt = true
		}
		if err != nil {
			w.broken = true
			return 0, resource.NewIOError("wal append", err)
		}
		frame = frame[len(cut):]
		if len(frame) == 0 {
			w.lsn++
			w.end += int64(len(w.buf))
			return len(cut), nil
		}
	}
	if n, err := w.f.Write(frame); err != nil {
		if n > 0 {
			w.dirt = true
		}
		w.broken = true
		return 0, resource.NewIOError("wal append", err)
	}
	w.dirt = true
	w.lsn++
	w.end += int64(len(payload) + frameHeader)
	if m := w.Met; m != nil {
		m.WalAppends.Inc()
		m.WalBytes.Add(int64(len(payload) + frameHeader))
	}
	return len(payload) + frameHeader, nil
}

// Repair restores the log to its last full-frame boundary after a
// failed append: any torn tail is truncated and the write offset
// reset, so the next append lands on a clean boundary. The durable
// store calls it before retrying a transient fault or vetoing an
// ENOSPC mutation; if Repair itself fails the log tail is in an
// unknown state and the store must degrade.
func (w *Writer) Repair() error {
	if !w.broken {
		return nil
	}
	if err := w.f.Truncate(w.end); err != nil {
		return resource.NewIOError("wal repair truncate", err)
	}
	if _, err := w.f.Seek(w.end, io.SeekStart); err != nil {
		return resource.NewIOError("wal repair seek", err)
	}
	w.broken = false
	return nil
}

// Sync is the group-commit point: it fsyncs the log iff records were
// appended since the last Sync, so read-only statements cost nothing
// and multi-record statements share one fsync.
func (w *Writer) Sync() error {
	if !w.dirt {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return resource.NewIOError("wal fsync", err)
	}
	w.dirt = false
	if m := w.Met; m != nil {
		m.WalFsyncs.Inc()
	}
	return nil
}

// Close syncs and closes the log.
func (w *Writer) Close() error {
	if err := w.Sync(); err != nil {
		w.f.Close()
		return err
	}
	if err := w.f.Close(); err != nil {
		return resource.NewIOError("wal close", err)
	}
	return nil
}

// Abort closes the log without syncing. A degraded store uses it: the
// durability of buffered bytes is already unknown, and a final fsync
// could neither restore the guarantee nor be trusted to fail again.
func (w *Writer) Abort() {
	w.f.Close()
}

// ---------------------------------------------------------------------------
// Reader

// ReplayBytes scans the log image, invoking fn for each intact record
// in order. It returns the byte length of the valid prefix and the last
// LSN seen. A torn or corrupt tail (short frame, truncated payload, CRC
// mismatch, undecodable payload) ends the scan silently — that is the
// expected shape of a crash — while an error from fn aborts the scan
// and is returned.
func ReplayBytes(b []byte, fn func(*Record) error) (validEnd int64, lastLSN uint64, err error) {
	off := 0
	for {
		if len(b)-off < frameHeader {
			return int64(off), lastLSN, nil
		}
		plen := int(binary.LittleEndian.Uint32(b[off : off+4]))
		want := binary.LittleEndian.Uint32(b[off+4 : off+8])
		if plen <= 0 || len(b)-off-frameHeader < plen {
			return int64(off), lastLSN, nil
		}
		payload := b[off+frameHeader : off+frameHeader+plen]
		if crc32.Checksum(payload, crcTable) != want {
			return int64(off), lastLSN, nil
		}
		rec, derr := DecodePayload(payload)
		if derr != nil {
			return int64(off), lastLSN, nil
		}
		if fn != nil {
			if err := fn(rec); err != nil {
				return int64(off), lastLSN, err
			}
		}
		lastLSN = rec.LSN
		off += frameHeader + plen
	}
}

// Replay reads the log file at path on fsys and replays it (see
// ReplayBytes). A missing file is an empty log, not an error. tornTail
// reports how many trailing bytes fall past the valid prefix — zero
// for a cleanly closed log; the store logs and counts a nonzero tail.
func Replay(fsys vfs.FS, path string, fn func(*Record) error) (validEnd int64, lastLSN uint64, tornTail int64, err error) {
	b, rerr := fsys.ReadFile(path)
	if rerr != nil {
		if errors.Is(rerr, fs.ErrNotExist) {
			return 0, 0, 0, nil
		}
		return 0, 0, 0, resource.NewIOError("wal read", rerr)
	}
	validEnd, lastLSN, err = ReplayBytes(b, fn)
	return validEnd, lastLSN, int64(len(b)) - validEnd, err
}

// Boundaries returns the end offset of every intact record in the log
// image, in order — the kill-point sweep truncates at (and between)
// these offsets.
func Boundaries(b []byte) []int64 {
	var out []int64
	off := int64(0)
	for {
		if int64(len(b))-off < frameHeader {
			return out
		}
		plen := int64(binary.LittleEndian.Uint32(b[off : off+4]))
		if plen <= 0 || int64(len(b))-off-frameHeader < plen {
			return out
		}
		payload := b[off+frameHeader : off+frameHeader+plen]
		if crc32.Checksum(payload, crcTable) != binary.LittleEndian.Uint32(b[off+4:off+8]) {
			return out
		}
		if _, err := DecodePayload(payload); err != nil {
			return out
		}
		off += frameHeader + plen
		out = append(out, off)
	}
}
