package vfs

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"syscall"
)

// Op names a class of filesystem operation for fault targeting.
type Op string

const (
	OpOpen     Op = "open"
	OpCreate   Op = "create"
	OpRead     Op = "read"     // File.Read / File.ReadAt
	OpReadFile Op = "readfile" // FS.ReadFile
	OpWrite    Op = "write"    // File.Write / File.WriteAt
	OpSync     Op = "sync"     // File.Sync
	OpTruncate Op = "truncate"
	OpRename   Op = "rename"
	OpRemove   Op = "remove" // FS.Remove / FS.RemoveAll
	OpMkdir    Op = "mkdir"
	OpReadDir  Op = "readdir"
	OpSyncDir  Op = "syncdir"
)

// Profile sets the per-operation probabilities of the seeded fault
// schedule. A zero Profile injects nothing (arms planted with FailNth
// still fire). Probabilities are sampled independently per call, so a
// long run sees transient faults (one failed call among successes) as
// well as bursts.
type Profile struct {
	Write float64 // chance a Write/WriteAt fails, usually torn (short)
	Sync  float64 // chance a Sync fails — fsyncgate territory
	Read  float64 // chance a Read/ReadAt/ReadFile fails with EIO
	Meta  float64 // chance open/create/rename/remove/truncate/mkdir fails

	// Enospc is the chance an injected write/meta fault reports ENOSPC
	// instead of EIO.
	Enospc float64
	// Dead is the chance an injected fault also kills the device: every
	// later operation fails with EIO until Crash resets the FaultFS.
	Dead float64

	// Crash fates for each unsynced extent: with probability
	// DropUnsynced the bytes are lost (truncated or zeroed), with
	// probability RotUnsynced a single bit is flipped, otherwise the
	// extent survives intact. Synced data is never touched — that is
	// exactly the contract fsync buys.
	DropUnsynced float64
	RotUnsynced  float64

	// SkipInnerSync makes successful Syncs skip the real fsync while
	// still advancing the durable watermark. Crash damage is applied by
	// FaultFS itself, so simulated runs do not need physical barriers;
	// this makes a 500-schedule simulation cheap.
	SkipInnerSync bool
}

type extent struct{ off, end int64 }

type fileMeta struct {
	// unsynced write extents since the last successful (or
	// lucky-failed) Sync, in write order.
	extents []extent
}

type arm struct {
	op   Op
	nth  int
	err  error
	keep int // bytes written before a write fault fires
}

// FaultFS wraps another FS and injects deterministic faults driven by a
// seed. It also tracks which written bytes have been fsynced, so
// Crash() can damage exactly the data a real power cut could take —
// and nothing else.
type FaultFS struct {
	inner FS
	prof  Profile

	mu       sync.Mutex
	rng      *rand.Rand              // guarded by mu
	enabled  bool                    // guarded by mu
	dead     bool                    // guarded by mu
	counts   map[Op]int              // guarded by mu
	arms     []arm                   // guarded by mu
	files    map[string]*fileMeta    // guarded by mu
	open     map[*faultFile]struct{} // guarded by mu
	injected int                     // guarded by mu
}

// NewFaultFS wraps inner with seed-driven fault injection. Probabilistic
// injection starts disabled; call SetEnabled(true) once setup I/O is
// done. Arms planted with FailNth fire regardless.
func NewFaultFS(inner FS, seed int64, prof Profile) *FaultFS {
	return &FaultFS{
		inner:  inner,
		prof:   prof,
		rng:    rand.New(rand.NewSource(seed)),
		counts: make(map[Op]int),
		files:  make(map[string]*fileMeta),
		open:   make(map[*faultFile]struct{}),
	}
}

// SetEnabled turns the probabilistic schedule on or off. Planted arms
// are unaffected.
func (f *FaultFS) SetEnabled(on bool) {
	f.mu.Lock()
	f.enabled = on
	f.mu.Unlock()
}

// FailNth plants a one-shot fault: the nth operation of kind op
// (counted from the moment of planting, 1-based) fails with err. Write
// faults write zero bytes first; use FailNthKeep for torn writes.
func (f *FaultFS) FailNth(op Op, nth int, err error) { f.FailNthKeep(op, nth, err, 0) }

// FailNthKeep is FailNth for writes that should tear: keep bytes of the
// payload reach the file before the error.
func (f *FaultFS) FailNthKeep(op Op, nth int, err error, keep int) {
	f.mu.Lock()
	f.arms = append(f.arms, arm{op: op, nth: nth + f.counts[op], err: err, keep: keep})
	f.mu.Unlock()
}

// Injected reports how many faults have fired (arms and schedule).
func (f *FaultFS) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// fault decides whether the current call of kind op fails. It returns
// the error to inject and, for writes, how many payload bytes to keep.
// n is the payload length for write ops (0 otherwise).
func (f *FaultFS) fault(op Op, n int) (error, int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	if f.dead {
		f.injected++
		return injectErr(op, syscall.EIO), 0
	}
	for i, a := range f.arms {
		if a.op == op && f.counts[op] == a.nth {
			f.arms = append(f.arms[:i], f.arms[i+1:]...)
			f.injected++
			keep := a.keep
			if keep > n {
				keep = n
			}
			return injectErr(op, a.err), keep
		}
	}
	if !f.enabled {
		return nil, 0
	}
	var p float64
	switch op {
	case OpWrite:
		p = f.prof.Write
	case OpSync:
		p = f.prof.Sync
	case OpRead, OpReadFile, OpReadDir:
		p = f.prof.Read
	case OpOpen, OpCreate, OpTruncate, OpRename, OpRemove, OpMkdir:
		p = f.prof.Meta
	}
	if p == 0 || f.rng.Float64() >= p {
		return nil, 0
	}
	f.injected++
	errno := error(syscall.EIO)
	if (op == OpWrite || op == OpOpen || op == OpCreate || op == OpMkdir) &&
		f.rng.Float64() < f.prof.Enospc {
		errno = syscall.ENOSPC
	}
	if f.rng.Float64() < f.prof.Dead {
		f.dead = true
	}
	keep := 0
	if op == OpWrite && n > 0 {
		keep = f.rng.Intn(n + 1) // torn write: any prefix may land
	}
	return injectErr(op, errno), keep
}

func injectErr(op Op, errno error) error {
	return fmt.Errorf("faultfs: injected %s fault: %w", op, errno)
}

func (f *FaultFS) meta(path string) *fileMeta {
	m := f.files[path]
	if m == nil {
		m = &fileMeta{}
		f.files[path] = m
	}
	return m
}

func (f *FaultFS) recordWrite(path string, off int64, n int) {
	if n <= 0 {
		return
	}
	f.mu.Lock()
	m := f.meta(path)
	m.extents = append(m.extents, extent{off: off, end: off + int64(n)})
	f.mu.Unlock()
}

// Open, Create, and friends implement FS.

func (f *FaultFS) Open(path string) (File, error) {
	if err, _ := f.fault(OpOpen, 0); err != nil {
		return nil, err
	}
	inner, err := f.inner.Open(path)
	if err != nil {
		return nil, err
	}
	ff := &faultFile{fs: f, path: path, inner: inner}
	f.mu.Lock()
	f.open[ff] = struct{}{}
	f.mu.Unlock()
	return ff, nil
}

func (f *FaultFS) Create(path string) (File, error) {
	if err, _ := f.fault(OpCreate, 0); err != nil {
		return nil, err
	}
	inner, err := f.inner.Create(path)
	if err != nil {
		return nil, err
	}
	ff := &faultFile{fs: f, path: path, inner: inner}
	f.mu.Lock()
	f.files[path] = &fileMeta{} // truncated: prior extents are gone
	f.open[ff] = struct{}{}
	f.mu.Unlock()
	return ff, nil
}

func (f *FaultFS) ReadFile(path string) ([]byte, error) {
	if err, _ := f.fault(OpReadFile, 0); err != nil {
		return nil, err
	}
	return f.inner.ReadFile(path)
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if err, _ := f.fault(OpRename, 0); err != nil {
		return err
	}
	if err := f.inner.Rename(oldpath, newpath); err != nil {
		return err
	}
	f.mu.Lock()
	if m, ok := f.files[oldpath]; ok {
		f.files[newpath] = m
		delete(f.files, oldpath)
	}
	f.mu.Unlock()
	return nil
}

func (f *FaultFS) Remove(path string) error {
	if err, _ := f.fault(OpRemove, 0); err != nil {
		return err
	}
	if err := f.inner.Remove(path); err != nil {
		return err
	}
	f.mu.Lock()
	delete(f.files, path)
	f.mu.Unlock()
	return nil
}

func (f *FaultFS) RemoveAll(path string) error {
	if err, _ := f.fault(OpRemove, 0); err != nil {
		return err
	}
	if err := f.inner.RemoveAll(path); err != nil {
		return err
	}
	f.mu.Lock()
	for p := range f.files {
		if len(p) >= len(path) && p[:len(path)] == path {
			delete(f.files, p)
		}
	}
	f.mu.Unlock()
	return nil
}

func (f *FaultFS) MkdirAll(path string) error {
	if err, _ := f.fault(OpMkdir, 0); err != nil {
		return err
	}
	return f.inner.MkdirAll(path)
}

func (f *FaultFS) ReadDir(path string) ([]string, error) {
	if err, _ := f.fault(OpReadDir, 0); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(path)
}

func (f *FaultFS) SyncDir(path string) error {
	if err, _ := f.fault(OpSyncDir, 0); err != nil {
		return err
	}
	if f.prof.SkipInnerSync {
		return nil
	}
	return f.inner.SyncDir(path)
}

// Crash simulates a power cut: every open handle is closed, and each
// unsynced extent independently survives, vanishes, or rots according
// to the seeded schedule. Synced bytes are never modified, so whatever
// the WAL acknowledged as durable is still durable afterward. The
// FaultFS resets to a clean, disabled state; the damaged directory is
// normally reopened with vfs.OS to run real recovery.
func (f *FaultFS) Crash() error {
	f.mu.Lock()
	for ff := range f.open {
		ff.closed = true
		ff.inner.Close()
	}
	f.open = make(map[*faultFile]struct{})
	files := f.files
	f.files = make(map[string]*fileMeta)
	f.arms = nil
	f.counts = make(map[Op]int)
	f.dead = false
	f.enabled = false
	rng := f.rng
	f.mu.Unlock()

	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		if err := f.damage(rng, p, files[p].extents); err != nil {
			return err
		}
	}
	return nil
}

// damage applies the crash fate of each unsynced extent of one file,
// going through the inner FS directly (the crash is not itself faulty).
func (f *FaultFS) damage(rng *rand.Rand, path string, extents []extent) error {
	if len(extents) == 0 {
		return nil
	}
	h, err := f.inner.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil // file was removed (e.g. a discarded generation)
		}
		return err
	}
	defer h.Close()
	size, err := h.Size()
	if err != nil {
		return err
	}
	// Later extents are damaged first so that truncating a tail extent
	// cannot spare an earlier one that was already chosen for loss.
	for i := len(extents) - 1; i >= 0; i-- {
		e := extents[i]
		if e.off >= size {
			continue
		}
		if e.end > size {
			e.end = size
		}
		roll := rng.Float64()
		switch {
		case roll < f.prof.DropUnsynced:
			// Lose the bytes: a tail extent shrinks the file (possibly
			// keeping a torn prefix); a middle extent reads back as
			// zeroes, like an unwritten page.
			cut := e.off + rng.Int63n(e.end-e.off+1)
			if e.end == size {
				if err := h.Truncate(cut); err != nil {
					return err
				}
				size = cut
			} else {
				zero := make([]byte, e.end-cut)
				if _, err := h.WriteAt(zero, cut); err != nil {
					return err
				}
			}
		case roll < f.prof.DropUnsynced+f.prof.RotUnsynced:
			// Bit-rot: flip one bit somewhere in the extent.
			pos := e.off + rng.Int63n(e.end-e.off)
			var b [1]byte
			if _, err := h.ReadAt(b[:], pos); err != nil {
				return err
			}
			b[0] ^= 1 << uint(rng.Intn(8))
			if _, err := h.WriteAt(b[:], pos); err != nil {
				return err
			}
		}
	}
	return nil
}

type faultFile struct {
	fs     *FaultFS
	path   string
	inner  File
	pos    int64
	closed bool
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if ff.closed {
		return 0, os.ErrClosed
	}
	if err, _ := ff.fs.fault(OpRead, 0); err != nil {
		return 0, err
	}
	n, err := ff.inner.Read(p)
	ff.pos += int64(n)
	return n, err
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if ff.closed {
		return 0, os.ErrClosed
	}
	if err, _ := ff.fs.fault(OpRead, 0); err != nil {
		return 0, err
	}
	return ff.inner.ReadAt(p, off)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	if ff.closed {
		return 0, os.ErrClosed
	}
	if err, keep := ff.fs.fault(OpWrite, len(p)); err != nil {
		n := 0
		if keep > 0 {
			n, _ = ff.inner.Write(p[:keep])
			ff.fs.recordWrite(ff.path, ff.pos, n)
			ff.pos += int64(n)
		}
		return n, err
	}
	n, err := ff.inner.Write(p)
	ff.fs.recordWrite(ff.path, ff.pos, n)
	ff.pos += int64(n)
	return n, err
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if ff.closed {
		return 0, os.ErrClosed
	}
	if err, keep := ff.fs.fault(OpWrite, len(p)); err != nil {
		n := 0
		if keep > 0 {
			n, _ = ff.inner.WriteAt(p[:keep], off)
			ff.fs.recordWrite(ff.path, off, n)
		}
		return n, err
	}
	n, err := ff.inner.WriteAt(p, off)
	ff.fs.recordWrite(ff.path, off, n)
	return n, err
}

func (ff *faultFile) Seek(offset int64, whence int) (int64, error) {
	if ff.closed {
		return 0, os.ErrClosed
	}
	abs, err := ff.inner.Seek(offset, whence)
	if err == nil {
		ff.pos = abs
	}
	return abs, err
}

func (ff *faultFile) Truncate(size int64) error {
	if ff.closed {
		return os.ErrClosed
	}
	if err, _ := ff.fs.fault(OpTruncate, 0); err != nil {
		return err
	}
	if err := ff.inner.Truncate(size); err != nil {
		return err
	}
	ff.fs.mu.Lock()
	m := ff.fs.meta(ff.path)
	kept := m.extents[:0]
	for _, e := range m.extents {
		if e.off >= size {
			continue
		}
		if e.end > size {
			e.end = size
		}
		kept = append(kept, e)
	}
	m.extents = kept
	ff.fs.mu.Unlock()
	return nil
}

func (ff *faultFile) Sync() error {
	if ff.closed {
		return os.ErrClosed
	}
	err, _ := ff.fs.fault(OpSync, 0)
	ff.fs.mu.Lock()
	if err == nil || ff.fs.rng.Float64() < 0.5 {
		// The write-back either completed (success) or had in fact
		// finished before the error was reported — in both cases the
		// extents are durable. A failed fsync whose data did NOT land
		// keeps its extents eligible for crash damage: the caller was
		// told nothing is guaranteed, and nothing is.
		delete(ff.fs.files, ff.path)
	}
	ff.fs.mu.Unlock()
	if err != nil {
		return err
	}
	if ff.fs.prof.SkipInnerSync {
		return nil
	}
	return ff.inner.Sync()
}

func (ff *faultFile) Size() (int64, error) {
	if ff.closed {
		return 0, os.ErrClosed
	}
	return ff.inner.Size()
}

func (ff *faultFile) Close() error {
	if ff.closed {
		return nil
	}
	ff.closed = true
	ff.fs.mu.Lock()
	delete(ff.fs.open, ff)
	ff.fs.mu.Unlock()
	// Close does not sync: unsynced extents stay crash-eligible, like
	// data sitting in the page cache after close(2).
	return ff.inner.Close()
}
