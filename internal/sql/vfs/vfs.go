// Package vfs is the filesystem seam under the durable storage stack.
//
// Everything the WAL, the pager, and the engine's durable store do to
// disk goes through the FS and File interfaces, never through the os
// package directly (the errtaxon lint rule enforces this). Production
// code uses OS, a thin wrapper over the os package; tests substitute a
// FaultFS that injects deterministic, seed-scheduled faults — transient
// and permanent EIO, ENOSPC, fsync failure, short writes, and
// post-crash damage to unsynced data — so the recovery invariants can
// be checked against hundreds of simulated failure histories instead of
// only the happy path.
package vfs

import "io"

// FS is the set of filesystem operations the storage stack needs. All
// paths are interpreted by the underlying implementation (absolute or
// process-relative for OS).
type FS interface {
	// Open opens path read-write, creating it if absent (O_RDWR|O_CREATE).
	Open(path string) (File, error)
	// Create opens path read-write, truncating any existing content
	// (O_RDWR|O_CREATE|O_TRUNC).
	Create(path string) (File, error)
	// ReadFile returns the full content of path. A missing file reports
	// an error satisfying errors.Is(err, fs.ErrNotExist).
	ReadFile(path string) ([]byte, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	Remove(path string) error
	RemoveAll(path string) error
	MkdirAll(path string) error
	// ReadDir lists the entry names of a directory in sorted order.
	ReadDir(path string) ([]string, error)
	// SyncDir flushes the directory entry metadata for path, making
	// renames and creates within it durable.
	SyncDir(path string) error
}

// File is an open file handle. Sequential Read/Write share one offset
// (advanced by Seek); ReadAt/WriteAt are positioned and do not move it.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Seeker
	io.Closer
	// Truncate cuts (or extends) the file to size bytes.
	Truncate(size int64) error
	// Sync flushes file data to stable storage. After a Sync error the
	// durability of every write since the previous successful Sync is
	// unknown (fsyncgate): callers must not retry and claim durability.
	Sync() error
	// Size reports the current length of the file in bytes.
	Size() (int64, error)
}
