package vfs_test

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"minerule/internal/sql/vfs"
)

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "a", "b")
	if err := vfs.OS.MkdirAll(sub); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(sub, "f.txt")
	f, err := vfs.OS.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("HELLO"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if size, err := f.Size(); err != nil || size != 11 {
		t.Fatalf("Size = %d, %v; want 11", size, err)
	}
	if err := f.Truncate(5); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	b, err := vfs.OS.ReadFile(path)
	if err != nil || string(b) != "HELLO" {
		t.Fatalf("ReadFile = %q, %v", b, err)
	}
	if _, err := vfs.OS.ReadFile(filepath.Join(sub, "missing")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing ReadFile: %v, want fs.ErrNotExist", err)
	}
	names, err := vfs.OS.ReadDir(sub)
	if err != nil || len(names) != 1 || names[0] != "f.txt" {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
	if err := vfs.OS.Rename(path, filepath.Join(sub, "g.txt")); err != nil {
		t.Fatal(err)
	}
	if err := vfs.OS.SyncDir(sub); err != nil {
		t.Fatal(err)
	}
	if err := vfs.OS.Remove(filepath.Join(sub, "g.txt")); err != nil {
		t.Fatal(err)
	}
	if err := vfs.OS.RemoveAll(filepath.Join(dir, "a")); err != nil {
		t.Fatal(err)
	}
}

func TestFaultFSArms(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 1, vfs.Profile{})
	path := filepath.Join(dir, "f")
	f, err := ffs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Arms count from the moment of planting: the first write after this
	// line fails even though Create already happened.
	ffs.FailNthKeep(vfs.OpWrite, 2, syscall.EIO, 3)
	if _, err := f.Write([]byte("aaaa")); err != nil {
		t.Fatalf("write 1 (unarmed): %v", err)
	}
	n, err := f.Write([]byte("bbbb"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("write 2: err = %v, want EIO", err)
	}
	if n != 3 {
		t.Fatalf("torn write kept %d bytes, want 3", n)
	}
	if _, err := f.Write([]byte("cccc")); err != nil {
		t.Fatalf("write 3 (arm consumed): %v", err)
	}
	if got := ffs.Injected(); got != 1 {
		t.Fatalf("Injected = %d, want 1", got)
	}
	b, _ := vfs.OS.ReadFile(path)
	if string(b) != "aaaabbbcccc" {
		t.Fatalf("file = %q, want torn middle write", b)
	}
}

// TestFaultFSCrashDropsOnlyUnsynced is the contract the whole
// simulation rests on: bytes acknowledged by a successful Sync survive
// Crash untouched; bytes after it are fair game.
func TestFaultFSCrashDropsOnlyUnsynced(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 7, vfs.Profile{DropUnsynced: 1.0})
	path := filepath.Join(dir, "f")
	f, err := ffs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable!")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("doomed")); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Crash(); err != nil {
		t.Fatal(err)
	}
	b, err := vfs.OS.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) < len("durable!") || string(b[:8]) != "durable!" {
		t.Fatalf("synced prefix damaged: %q", b)
	}
	if len(b) == 14 {
		t.Fatalf("unsynced tail survived intact with DropUnsynced=1: %q", b)
	}
	// The handle is dead after the crash, like the process that held it.
	if _, err := f.Write([]byte("x")); !errors.Is(err, os.ErrClosed) {
		t.Fatalf("write through crashed handle: %v, want ErrClosed", err)
	}
}

func TestFaultFSCrashDeterministic(t *testing.T) {
	image := func(seed int64) []byte {
		dir := t.TempDir()
		ffs := vfs.NewFaultFS(vfs.OS, seed, vfs.Profile{DropUnsynced: 0.5, RotUnsynced: 0.3})
		f, err := ffs.Create(filepath.Join(dir, "f"))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			if _, err := f.Write([]byte("0123456789abcdef")); err != nil {
				t.Fatal(err)
			}
		}
		if err := ffs.Crash(); err != nil {
			t.Fatal(err)
		}
		b, err := vfs.OS.ReadFile(filepath.Join(dir, "f"))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := image(123), image(123)
	if string(a) != string(b) {
		t.Fatalf("same seed, different crash damage:\n%q\n%q", a, b)
	}
}

// TestFaultFSDisabledIsTransparent: with the schedule off and no arms,
// the wrapper must behave exactly like the inner FS.
func TestFaultFSDisabledIsTransparent(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 99, vfs.Profile{Write: 1.0, Sync: 1.0, Meta: 1.0, Read: 1.0})
	f, err := ffs.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := ffs.Injected(); got != 0 {
		t.Fatalf("disabled FaultFS injected %d faults", got)
	}

	ffs.SetEnabled(true)
	if _, err := ffs.Create(filepath.Join(dir, "g")); err == nil {
		t.Fatal("enabled Meta=1.0 schedule did not fire")
	}
}

// TestFaultFSDeadDevice: a Dead fault turns every later call into EIO
// until Crash resets the device.
func TestFaultFSDeadDevice(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 5, vfs.Profile{Sync: 1.0, Dead: 1.0})
	f, err := ffs.Create(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	ffs.SetEnabled(true)
	if err := f.Sync(); !errors.Is(err, syscall.EIO) {
		t.Fatalf("sync on dying device: %v", err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("write on dead device: %v, want EIO", err)
	}
	if _, err := ffs.ReadDir(dir); !errors.Is(err, syscall.EIO) {
		t.Fatalf("readdir on dead device: %v, want EIO", err)
	}
	if err := ffs.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := ffs.ReadDir(dir); err != nil {
		t.Fatalf("device still dead after crash reset: %v", err)
	}
}

// TestFaultFSTruncateForgetsExtents: truncated-away bytes are no longer
// crash-damage candidates (the file no longer has them).
func TestFaultFSTruncateForgetsExtents(t *testing.T) {
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, 11, vfs.Profile{DropUnsynced: 1.0})
	path := filepath.Join(dir, "f")
	f, err := ffs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("keepkeep")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("gone")); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(8); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Crash(); err != nil {
		t.Fatal(err)
	}
	b, _ := vfs.OS.ReadFile(path)
	if string(b) != "keepkeep" {
		t.Fatalf("file = %q, want synced prefix intact after truncate+crash", b)
	}
}
