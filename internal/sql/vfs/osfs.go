package vfs

import "os"

// OS is the production FS: a direct mapping onto the os package.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Open(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) Create(path string) (File, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	return osFile{f}, nil
}

func (osFS) ReadFile(path string) ([]byte, error) { return os.ReadFile(path) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(path string) error { return os.Remove(path) }

func (osFS) RemoveAll(path string) error { return os.RemoveAll(path) }

func (osFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

func (osFS) ReadDir(path string) ([]string, error) {
	ents, err := os.ReadDir(path)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names, nil
}

func (osFS) SyncDir(path string) error {
	d, err := os.Open(path)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

type osFile struct {
	*os.File
}

func (f osFile) Size() (int64, error) {
	fi, err := f.Stat()
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}
