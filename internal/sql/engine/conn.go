package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"minerule/internal/sql/exec"
	"minerule/internal/sql/parse"
	"minerule/internal/sql/schema"
	"minerule/internal/sql/semck"
	"minerule/internal/sql/txn"
	"minerule/internal/sql/value"
)

// Conn is one session's connection to the database: the unit of
// transaction scope. A connection outside an explicit transaction runs
// every statement in autocommit — an ephemeral transaction per
// statement, fully concurrent with other connections. BEGIN opens an
// explicit transaction on the connection; until COMMIT/ROLLBACK, the
// connection's statements execute inside it (serialized per connection
// — a transaction belongs to one session, as everywhere in SQL).
//
// A Conn is safe for concurrent use, but interleaving statements from
// several goroutines inside one explicit transaction gives the usual
// undefined statement order.
type Conn struct {
	db *Database
	mu sync.Mutex
	tx *txn.Txn // guarded by mu; non-nil inside an explicit transaction
}

// Conn returns a new connection. Connections are cheap; the network
// session layer creates one per remote session.
func (db *Database) Conn() *Conn { return &Conn{db: db} }

// InTxn reports whether the connection has an explicit transaction
// open.
func (c *Conn) InTxn() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tx != nil
}

// Close rolls back any open explicit transaction and releases the
// connection. The database itself stays open.
func (c *Conn) Close() error {
	c.mu.Lock()
	tx := c.tx
	c.tx = nil
	c.mu.Unlock()
	if tx != nil {
		tx.Rollback()
		c.db.mgr.Release(tx)
	}
	return nil
}

// Exec parses and executes one SQL statement on this connection.
func (c *Conn) Exec(sql string) (*exec.Result, error) {
	return c.ExecContext(context.Background(), sql)
}

// ExecContext parses and executes one SQL statement under a
// cancellation context. Execution is bounded by the database Limits and
// guarded by the executor's panic-containment boundary.
func (c *Conn) ExecContext(ctx context.Context, sql string) (*exec.Result, error) {
	db := c.db
	t0 := time.Now()
	p, err := db.parseStmt(sql)
	db.met.ParseNanos.Add(int64(time.Since(t0)))
	if err != nil {
		db.met.StmtErrors.Inc()
		return nil, fmt.Errorf("engine: %w\n  in: %s", err, compact(sql))
	}
	return c.execParsed(ctx, p.st, p, sql, sql, nil)
}

// ExecScript executes a semicolon-separated sequence of statements on
// this connection, stopping at the first error.
func (c *Conn) ExecScript(sql string) error {
	return c.ExecScriptContext(context.Background(), sql)
}

// ExecScriptContext is ExecScript under a cancellation context. The
// script is semantically checked as a unit (DDL effects threaded
// through an overlay), so the per-statement verdict cache is bypassed;
// transaction-control statements inside the script act on this
// connection, so a script may open, populate, and commit a transaction.
func (c *Conn) ExecScriptContext(ctx context.Context, sql string) error {
	sts, err := c.db.prepareScript(sql)
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	for _, st := range sts {
		if _, err := c.execParsed(ctx, st, nil, sql, st.SQL(), nil); err != nil {
			return err
		}
	}
	return nil
}

// execParsed dispatches one parsed statement: transaction control acts
// on the connection itself; everything else runs inside a transaction —
// the connection's explicit one when open, an ephemeral autocommit
// transaction otherwise.
func (c *Conn) execParsed(ctx context.Context, st parse.Statement, p *prepared, src, stmtSQL string, trace func(string)) (*exec.Result, error) {
	switch st.(type) {
	case *parse.Begin:
		return c.beginTxn()
	case *parse.Commit:
		return c.commitTxn(ctx)
	case *parse.Rollback:
		return c.rollbackTxn()
	}
	db := c.db
	c.mu.Lock()
	if c.tx != nil {
		// Explicit transaction: the statement joins it; the connection
		// lock serializes the session's own statements against its
		// COMMIT/ROLLBACK.
		defer c.mu.Unlock()
		return db.execStatement(ctx, c.tx, false, st, p, src, stmtSQL, trace)
	}
	c.mu.Unlock()
	tx := db.mgr.Begin()
	res, err := db.execStatement(ctx, tx, true, st, p, src, stmtSQL, trace)
	db.mgr.Release(tx)
	return res, err
}

// beginTxn implements BEGIN: it opens an explicit transaction on the
// connection.
func (c *Conn) beginTxn() (*exec.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tx != nil {
		c.db.met.StmtErrors.Inc()
		return nil, errors.New("engine: transaction already in progress")
	}
	c.tx = c.db.mgr.Begin()
	c.db.met.StmtExecuted.Inc()
	return &exec.Result{}, nil
}

// commitTxn implements COMMIT: the explicit transaction's write set
// becomes visible atomically and the call returns once it is durable
// (sharing a group fsync with concurrent committers).
func (c *Conn) commitTxn(ctx context.Context) (*exec.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tx == nil {
		c.db.met.StmtErrors.Inc()
		return nil, errors.New("engine: no transaction in progress")
	}
	tx := c.tx
	c.tx = nil
	err := tx.Commit(ctx)
	c.db.mgr.Release(tx)
	if err != nil {
		c.db.met.StmtErrors.Inc()
		return nil, fmt.Errorf("engine: %w", err)
	}
	c.db.met.StmtExecuted.Inc()
	return &exec.Result{}, nil
}

// rollbackTxn implements ROLLBACK: the explicit transaction's write set
// is discarded. DDL the transaction performed stays (it is
// non-transactional, see txn.Txn).
func (c *Conn) rollbackTxn() (*exec.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tx == nil {
		c.db.met.StmtErrors.Inc()
		return nil, errors.New("engine: no transaction in progress")
	}
	tx := c.tx
	c.tx = nil
	tx.Rollback()
	c.db.mgr.Release(tx)
	c.db.met.StmtExecuted.Inc()
	return &exec.Result{}, nil
}

// execStatement runs one parsed statement inside tx. auto marks an
// ephemeral autocommit transaction, which commits on success and rolls
// back on failure; inside an explicit transaction a failed statement
// instead rolls back to a savepoint taken at its start, leaving the
// transaction's earlier work intact and the transaction usable. src is
// the text position diagnostics refer to (the whole script for script
// statements); stmtSQL the single statement's own text. p, when
// non-nil, carries the statement's cached semantic verdict, validated
// against the transaction snapshot's catalog version; script statements
// pass nil (their check already ran against the script overlay). trace,
// when non-nil, receives the executor's decision log for the duration.
func (db *Database) execStatement(ctx context.Context, tx *txn.Txn, auto bool, st parse.Statement, p *prepared, src, stmtSQL string, trace func(string)) (*exec.Result, error) {
	if p != nil {
		if err := db.verdict(p, src, tx, tx.CatalogVersion()); err != nil {
			// EXPLAIN of a semantically invalid query reports the
			// diagnostic as its plan instead of failing: the tool's whole
			// purpose is to show what the engine makes of the statement.
			var se *semck.Error
			if _, isExplain := st.(*parse.Explain); isExplain && errors.As(err, &se) {
				if auto {
					tx.Rollback()
				}
				db.met.StmtExecuted.Inc()
				s := schema.New("", schema.Column{Name: "QUERY PLAN", Type: value.TypeString})
				row := schema.Row{value.NewString("error: " + se.Error())}
				return &exec.Result{Schema: s, Rows: []schema.Row{row}}, nil
			}
			if auto {
				tx.Rollback()
			}
			db.met.StmtErrors.Inc()
			return nil, fmt.Errorf("engine: %w\n  in: %s", err, compact(stmtSQL))
		}
	}
	if hook := db.hook.Load(); hook != nil {
		if err := (*hook)(stmtSQL); err != nil {
			if auto {
				tx.Rollback()
			}
			return nil, fmt.Errorf("engine: %w\n  in: %s", err, compact(stmtSQL))
		}
	}
	db.met.StmtExecuted.Inc()
	t1 := time.Now()
	l := db.effLimits(ctx)
	tx.SetLimits(l)
	rt := db.getRuntime()
	rt.Txn = tx
	rt.Limits = l
	rt.Trace = trace
	var sp txn.Savepoint
	if !auto {
		sp = tx.Savepoint()
	}
	res, err := rt.ExecContext(ctx, st)
	db.putRuntime(rt)
	if auto {
		if err == nil {
			err = tx.Commit(ctx)
		} else {
			tx.Rollback()
		}
	} else if err != nil {
		tx.RollbackTo(sp)
	}
	db.met.ExecNanos.Add(int64(time.Since(t1)))
	if err != nil {
		db.met.StmtErrors.Inc()
		return nil, fmt.Errorf("engine: %w%s\n  in: %s", err, posSuffix(err, src), compact(stmtSQL))
	}
	if res.Schema != nil {
		db.met.RowsReturned.Add(int64(len(res.Rows)))
	}
	return res, nil
}

// getRuntime takes a pooled executor runtime; putRuntime returns it.
// Pooling keeps the autocommit fast path allocation-free and lets a
// runtime's view-plan and join-order caches survive across statements.
func (db *Database) getRuntime() *exec.Runtime {
	rt := db.rtPool.Get().(*exec.Runtime)
	rt.RowMode(db.rowMode.Load())
	return rt
}

func (db *Database) putRuntime(rt *exec.Runtime) {
	rt.Txn = nil
	rt.Trace = nil
	db.rtPool.Put(rt)
}
