package engine

import (
	"testing"

	"minerule/internal/sql/semck"
)

// prepareLive is the test stand-in for the engine's prepare path:
// parse (cached) plus the semantic verdict against the live catalog.
func prepareLive(db *Database, sql string) error {
	p, err := db.parseStmt(sql)
	if err != nil {
		return err
	}
	return db.verdict(p, sql, semck.FromStorage(db.cat), db.cat.Version())
}

func hitPathDB(tb testing.TB) *Database {
	tb.Helper()
	db := New()
	if err := db.ExecScript(`
		CREATE TABLE t (a INTEGER, b VARCHAR);
		INSERT INTO t VALUES (1, 'x'), (2, 'y');
	`); err != nil {
		tb.Fatal(err)
	}
	return db
}

// TestPrepareHitAllocationFree guards the cost model the semantic
// checker was wired in under: the check runs once per cached program
// per catalog version, so a statement-cache hit at an unchanged version
// is a pure lookup — zero heap allocations, no semck work. A regression
// here means semck (or anything else) leaked onto the per-execution
// path.
func TestPrepareHitAllocationFree(t *testing.T) {
	db := hitPathDB(t)
	sql := "SELECT a, UPPER(b) FROM t WHERE a > 1 ORDER BY a"
	if err := prepareLive(db, sql); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := prepareLive(db, sql); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("prepare() hit path allocates %.1f objects/op, want 0", allocs)
	}

	// DDL bumps the catalog version: the next hit rechecks once and
	// re-stamps, after which the path is allocation-free again.
	if _, err := db.Exec("CREATE TABLE u (x INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if err := prepareLive(db, sql); err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(200, func() {
		if err := prepareLive(db, sql); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("prepare() hit path allocates %.1f objects/op after recheck, want 0", allocs)
	}
}

// TestSemCheckOncePerProgram pins the "once per cached program" half of
// the contract via the cache counters: N executions of one text are one
// miss (parse + check) and N-1 verdict reuses.
func TestSemCheckOncePerProgram(t *testing.T) {
	db := hitPathDB(t)
	h0, m0 := db.StatementCacheStats()
	sql := "SELECT COUNT(*) FROM t"
	for i := 0; i < 50; i++ {
		if _, err := db.Query(sql); err != nil {
			t.Fatal(err)
		}
	}
	h, m := db.StatementCacheStats()
	if m-m0 != 1 || h-h0 != 49 {
		t.Fatalf("50 executions: %d misses, %d hits; want 1 and 49", m-m0, h-h0)
	}
}

// BenchmarkPrepareHit measures the statement-cache hit path (lookup +
// cached semck verdict). Compare against BENCH_baseline.json's
// end-to-end targets when assessing prepare-time overhead: the hit path
// must stay allocation-free.
func BenchmarkPrepareHit(b *testing.B) {
	db := hitPathDB(b)
	sql := "SELECT a, UPPER(b) FROM t WHERE a > 1 ORDER BY a"
	if err := prepareLive(db, sql); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := prepareLive(db, sql); err != nil {
			b.Fatal(err)
		}
	}
}
