package engine

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"minerule/internal/resource"
)

const durableSeed = `
CREATE TABLE Purchase (tr INTEGER, item VARCHAR(20), price FLOAT);
INSERT INTO Purchase VALUES (1, 'ski_pants', 140.0);
INSERT INTO Purchase VALUES (1, 'hiking_boots', 180.0);
INSERT INTO Purchase VALUES (2, 'col_shirts', 25.0);
CREATE INDEX purchase_item ON Purchase(item);
CREATE SEQUENCE rid;
CREATE VIEW cheap AS SELECT item FROM Purchase WHERE price < 100.0;
`

func openDurable(t *testing.T, dir string) *Database {
	t.Helper()
	db, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func countRows(t *testing.T, db *Database, table string) int64 {
	t.Helper()
	n, err := db.QueryInt("SELECT COUNT(*) FROM " + table)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	if !db.Durable() {
		t.Fatal("Open returned a non-durable database")
	}
	if err := db.ExecScript(durableSeed); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("UPDATE Purchase SET price = 30.0 WHERE item = 'col_shirts'"); err != nil {
		t.Fatal(err)
	}
	seq, _ := db.Catalog().Sequence("rid")
	first := seq.NextVal()
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir)
	defer db2.Close()
	if got := countRows(t, db2, "Purchase"); got != 3 {
		t.Fatalf("recovered %d rows, want 3", got)
	}
	n, err := db2.QueryInt("SELECT COUNT(*) FROM Purchase WHERE price = 30.0")
	if err != nil || n != 1 {
		t.Fatalf("UPDATE lost in recovery: n=%d err=%v", n, err)
	}
	if _, ok := db2.Catalog().View("cheap"); !ok {
		t.Fatal("view lost in recovery")
	}
	if !db2.Catalog().HasIndex("purchase_item") {
		t.Fatal("index lost in recovery")
	}
	seq2, ok := db2.Catalog().Sequence("rid")
	if !ok {
		t.Fatal("sequence lost in recovery")
	}
	// The recovered sequence must never repeat a handed-out value; gaps
	// (up to the bump cache) are the accepted trade.
	if got := seq2.NextVal(); got <= first {
		t.Fatalf("sequence repeated a value: %d after %d", got, first)
	}
	if db2.Metrics().RecoveryRecords.Load() == 0 {
		t.Fatal("recovery replayed no records")
	}
}

func TestDurableCheckpointAndRetire(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	if err := db.ExecScript(durableSeed); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if db.Metrics().Checkpoints.Load() != 1 {
		t.Fatal("checkpoint counter silent")
	}
	// Post-checkpoint mutations land in the new generation's log.
	if _, err := db.Exec("INSERT INTO Purchase VALUES (3, 'jackets', 300.0)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	if _, err := os.Stat(filepath.Join(dir, "gen-1")); !os.IsNotExist(err) {
		t.Fatal("old generation not retired after checkpoint")
	}
	if _, err := os.Stat(filepath.Join(dir, "wal-1.log")); !os.IsNotExist(err) {
		t.Fatal("old WAL not retired after checkpoint")
	}

	db2 := openDurable(t, dir)
	defer db2.Close()
	if got := countRows(t, db2, "Purchase"); got != 4 {
		t.Fatalf("recovered %d rows after checkpoint, want 4", got)
	}
	if !db2.Catalog().HasIndex("purchase_item") {
		t.Fatal("index lost across checkpoint")
	}
}

// TestReplayIdempotent replays the recovered log a second time over the
// live catalog: the applied-LSN guard must skip every record.
func TestReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	if err := db.ExecScript(durableSeed); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir)
	defer db2.Close()
	before := countRows(t, db2, "Purchase")
	verBefore := db2.Catalog().Version()

	db2.cat.SetJournal(nil) // a second replay must not re-log either
	if _, _, err := db2.store.replayLog(); err != nil {
		t.Fatal(err)
	}
	db2.cat.SetJournal(db2.store)

	if got := countRows(t, db2, "Purchase"); got != before {
		t.Fatalf("second replay changed row count: %d -> %d", before, got)
	}
	if db2.Catalog().Version() != verBefore {
		t.Fatal("second replay bumped the catalog version")
	}
}

func TestDurableDropAndRecreate(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	if err := db.ExecScript(durableSeed); err != nil {
		t.Fatal(err)
	}
	script := `
DROP VIEW cheap;
DROP INDEX purchase_item;
DROP TABLE Purchase;
CREATE TABLE Purchase (tr INTEGER, item VARCHAR(20));
INSERT INTO Purchase VALUES (9, 'brown_boots');
DELETE FROM Purchase WHERE tr = 9;
INSERT INTO Purchase VALUES (10, 'jackets');
`
	if err := db.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir)
	defer db2.Close()
	if got := countRows(t, db2, "Purchase"); got != 1 {
		t.Fatalf("recovered %d rows, want 1", got)
	}
	n, err := db2.QueryInt("SELECT COUNT(*) FROM Purchase WHERE item = 'jackets'")
	if err != nil || n != 1 {
		t.Fatalf("recreated table content wrong: n=%d err=%v", n, err)
	}
	if _, ok := db2.Catalog().View("cheap"); ok {
		t.Fatal("dropped view resurrected by recovery")
	}
	if db2.Catalog().HasIndex("purchase_item") {
		t.Fatal("dropped index resurrected by recovery")
	}
}

func TestPageIOBudget(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	defer db.Close()
	if err := db.ExecScript(durableSeed); err != nil {
		t.Fatal(err)
	}
	db.SetLimits(resource.Limits{MaxPageIO: 1})
	// A page-sized row cannot fit the 1-page budget alongside its frame.
	big := make([]byte, 8000)
	for i := range big {
		big[i] = 'x'
	}
	_, err := db.Exec("INSERT INTO Purchase VALUES (4, '" + string(big) + "', 1.0)")
	if err == nil {
		t.Fatal("page-I/O budget did not trip")
	}
	if !errors.Is(err, resource.ErrBudgetExceeded) {
		t.Fatalf("budget trip is not ErrBudgetExceeded: %v", err)
	}
	var be *resource.BudgetError
	if !errors.As(err, &be) || be.Resource != "pageio" {
		t.Fatalf("budget error does not name pageio: %v", err)
	}
	// The vetoed insert must not have reached memory or the log.
	db.SetLimits(resource.Limits{})
	if got := countRows(t, db, "Purchase"); got != 3 {
		t.Fatalf("vetoed insert applied anyway: %d rows", got)
	}
}

func TestDurableMetricsFlow(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	defer db.Close()
	if err := db.ExecScript(durableSeed); err != nil {
		t.Fatal(err)
	}
	m := db.Metrics()
	if m.WalAppends.Load() == 0 || m.WalBytes.Load() == 0 || m.WalFsyncs.Load() == 0 {
		t.Fatalf("WAL counters silent: appends=%d bytes=%d fsyncs=%d",
			m.WalAppends.Load(), m.WalBytes.Load(), m.WalFsyncs.Load())
	}
	// Group commit: each of the 7 script statements gets at most one
	// fsync, and the read-only ones none.
	if m.WalFsyncs.Load() > m.StmtExecuted.Load() {
		t.Fatalf("more fsyncs (%d) than statements (%d)", m.WalFsyncs.Load(), m.StmtExecuted.Load())
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if m.PageWrites.Load() == 0 {
		t.Fatal("checkpoint wrote no pages")
	}
}
