package engine

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"syscall"
	"testing"

	"minerule/internal/resource"
	"minerule/internal/sql/vfs"
)

// TestFaultSim is the storage robustness sweep: hundreds of seeded
// fault schedules, each running a small workload against a FaultFS
// that tears writes, fails fsyncs, fills the disk, and kills the
// device — then a simulated power cut and real recovery. Two
// invariants are enforced on every schedule:
//
//  1. Prefix durability: the recovered row set contains every
//     acknowledged statement and nothing the engine did not at least
//     start writing — recovered ≡ acked, or acked plus the single
//     in-flight statement whose durability was indeterminate when the
//     store degraded. Never silent loss, never silent corruption.
//  2. fsyncgate: once a statement has failed on a sync fault, no later
//     write is ever acknowledged (the store is sticky read-only).
//
// The base seed comes from FAULTSIM_SEED (CI rotates it daily) so the
// explored schedule space moves over time while any failure is
// reproducible from the logged seed.
func TestFaultSim(t *testing.T) {
	schedules := 500
	if testing.Short() {
		schedules = 60
	}
	base := int64(20260808)
	if s := os.Getenv("FAULTSIM_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("bad FAULTSIM_SEED %q: %v", s, err)
		}
		base = v
	}
	t.Logf("fault simulation: %d schedules, base seed %d (set FAULTSIM_SEED to reproduce)", schedules, base)
	for i := 0; i < schedules; i++ {
		runFaultSchedule(t, base+int64(i))
		if t.Failed() {
			t.Fatalf("schedule with seed %d failed; rerun with FAULTSIM_SEED=%d and schedules=1 to isolate", base+int64(i), base+int64(i))
		}
	}
}

func runFaultSchedule(t *testing.T, seed int64) {
	t.Helper()
	dir := t.TempDir()
	ffs := vfs.NewFaultFS(vfs.OS, seed, vfs.Profile{
		Write:  0.06,
		Sync:   0.04,
		Meta:   0.02,
		Enospc: 0.3,
		Dead:   0.1,
		// Crash fates: half the unsynced extents vanish, a quarter rot.
		DropUnsynced: 0.5,
		RotUnsynced:  0.25,
		// Crash damage is simulated by the FaultFS itself, so the runs
		// need no physical write barriers.
		SkipInnerSync: true,
	})

	// Setup is fault-free: the interesting failures are mid-workload.
	db, err := OpenFS(ffs, dir, 0)
	if err != nil {
		t.Fatalf("seed %d: open: %v", seed, err)
	}
	if _, err := db.Exec("CREATE TABLE t (id INTEGER)"); err != nil {
		t.Fatalf("seed %d: create table: %v", seed, err)
	}
	ffs.SetEnabled(true)

	// The workload RNG is independent of the fault RNG so fault decisions
	// do not shift the statement sequence.
	wl := rand.New(rand.NewSource(seed ^ 0x5eed5eed))
	nOps := 8 + wl.Intn(10)
	var acked []int64
	maybe := int64(-1) // the one statement whose durability is indeterminate
	degraded := false
	for id := int64(1); id <= int64(nOps); id++ {
		if wl.Float64() < 0.15 {
			// Checkpoints move no rows: a failure either vetoes (old
			// generation stays live) or degrades the store.
			if err := db.Checkpoint(); err != nil {
				switch {
				case errors.Is(err, resource.ErrDegraded):
					degraded = true
				case errors.Is(err, resource.ErrIO):
					// vetoed; the store keeps running
				default:
					t.Fatalf("seed %d: unexpected checkpoint error: %v", seed, err)
				}
			}
		}
		_, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", id))
		switch {
		case err == nil:
			if degraded {
				t.Fatalf("seed %d: id %d acknowledged after degradation (fsyncgate violation)", seed, id)
			}
			acked = append(acked, id)
		case errors.Is(err, resource.ErrDegraded):
			if !degraded {
				// First degradation: this statement may have reached the
				// log before the fault (a torn frame can be complete).
				degraded = true
				maybe = id
			}
			// Later degraded rejections never touch the disk.
		case errors.Is(err, resource.ErrIO):
			// Clean veto: ENOSPC or a repaired torn frame. Never durable —
			// the repair truncated whatever landed.
		default:
			t.Fatalf("seed %d: id %d: unexpected error class: %v", seed, id, err)
		}
	}

	if degraded {
		// Degraded means read-only, not dead: queries must still answer.
		if _, err := db.Query("SELECT COUNT(*) FROM t"); err != nil {
			t.Fatalf("seed %d: degraded store refused a read: %v", seed, err)
		}
		if db.DegradedErr() == nil {
			t.Fatalf("seed %d: degraded store reports nil DegradedErr", seed)
		}
	}

	// Power cut (no clean Close — that would sync everything), then real
	// recovery on the damaged directory.
	if err := ffs.Crash(); err != nil {
		t.Fatalf("seed %d: crash simulation: %v", seed, err)
	}
	rdb, err := Open(dir, 0)
	if err != nil {
		t.Fatalf("seed %d: recovery failed: %v", seed, err)
	}
	defer rdb.Close()
	res, err := rdb.Query("SELECT id FROM t ORDER BY id")
	if err != nil {
		t.Fatalf("seed %d: recovered store refused a read: %v", seed, err)
	}
	got := make(map[int64]bool, len(res.Rows))
	for _, row := range res.Rows {
		id := row[0].Int()
		if got[id] {
			t.Fatalf("seed %d: id %d recovered twice (non-idempotent replay)", seed, id)
		}
		got[id] = true
	}
	for _, id := range acked {
		if !got[id] {
			t.Fatalf("seed %d: acknowledged id %d lost in recovery (acked %v, maybe %d, got %v)",
				seed, id, acked, maybe, res.Rows)
		}
	}
	if extra := len(got) - len(acked); extra > 1 || (extra == 1 && !got[maybe]) {
		t.Fatalf("seed %d: recovery invented rows: acked %v, maybe %d, got %v", seed, acked, maybe, res.Rows)
	}

	// Liveness: the recovered store is fully writable again.
	if _, err := rdb.Exec("INSERT INTO t VALUES (10000)"); err != nil {
		t.Fatalf("seed %d: recovered store refused a write: %v", seed, err)
	}
	if err := rdb.Close(); err != nil {
		t.Fatalf("seed %d: recovered store close: %v", seed, err)
	}
}

// ---------------------------------------------------------------------------
// Targeted fault scenarios

// faultDB opens a database over a FaultFS with no probabilistic
// schedule — faults come only from planted arms.
func faultDB(t *testing.T, dir string) (*Database, *vfs.FaultFS) {
	t.Helper()
	ffs := vfs.NewFaultFS(vfs.OS, 1, vfs.Profile{})
	db, err := OpenFS(ffs, dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE t (id INTEGER)"); err != nil {
		t.Fatal(err)
	}
	return db, ffs
}

// TestEnospcVetoesAppend: a full disk rejects the statement cleanly —
// typed ErrIO, no degradation, and the store keeps accepting writes
// once space is back.
func TestEnospcVetoesAppend(t *testing.T) {
	dir := t.TempDir()
	db, ffs := faultDB(t, dir)
	ffs.FailNthKeep(vfs.OpWrite, 1, syscall.ENOSPC, 5) // torn: 5 bytes land first

	_, err := db.Exec("INSERT INTO t VALUES (1)")
	if !errors.Is(err, resource.ErrIO) || errors.Is(err, resource.ErrDegraded) {
		t.Fatalf("ENOSPC append: err = %v, want ErrIO and not ErrDegraded", err)
	}
	if got := db.Metrics().EnospcVetoes.Load(); got != 1 {
		t.Fatalf("EnospcVetoes = %d, want 1", got)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (2)"); err != nil {
		t.Fatalf("insert after freed space: %v", err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	db2 := openDurable(t, dir)
	defer db2.Close()
	if n := countRows(t, db2, "t"); n != 1 {
		t.Fatalf("recovered %d rows, want 1 (the vetoed insert must not resurrect)", n)
	}
}

// TestTransientEIORetries: one flaky write is retried behind the
// statement's back; the caller sees success.
func TestTransientEIORetries(t *testing.T) {
	dir := t.TempDir()
	db, ffs := faultDB(t, dir)
	ffs.FailNthKeep(vfs.OpWrite, 1, syscall.EIO, 3)

	if _, err := db.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatalf("transient EIO not retried: %v", err)
	}
	if got := db.Metrics().IORetries.Load(); got != 1 {
		t.Fatalf("IORetries = %d, want 1", got)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2 := openDurable(t, dir)
	defer db2.Close()
	if n := countRows(t, db2, "t"); n != 1 {
		t.Fatalf("recovered %d rows, want 1", n)
	}
}

// TestPersistentEIODegrades: when the retries run out the store
// degrades instead of lying about durability.
func TestPersistentEIODegrades(t *testing.T) {
	db, ffs := faultDB(t, t.TempDir())
	for k := 1; k <= 4; k++ { // initial attempt + 3 retries
		ffs.FailNth(vfs.OpWrite, k, syscall.EIO)
	}
	_, err := db.Exec("INSERT INTO t VALUES (1)")
	if !errors.Is(err, resource.ErrDegraded) {
		t.Fatalf("persistent EIO: err = %v, want ErrDegraded", err)
	}
	if got := db.Metrics().IORetries.Load(); got != 3 {
		t.Fatalf("IORetries = %d, want 3", got)
	}
	db.Close()
}

// TestEnospcMidGroupFsync: the group-commit fsync hits a full disk.
// fsyncgate says the data may already be gone from the page cache, so
// the store must degrade — and Close must stay honest and idempotent.
func TestEnospcMidGroupFsync(t *testing.T) {
	dir := t.TempDir()
	db, ffs := faultDB(t, dir)
	if _, err := db.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	ffs.FailNth(vfs.OpSync, 1, syscall.ENOSPC)

	_, err := db.Exec("INSERT INTO t VALUES (2)")
	if !errors.Is(err, resource.ErrDegraded) || !errors.Is(err, resource.ErrIO) {
		t.Fatalf("failed group fsync: err = %v, want ErrDegraded (and ErrIO via the cause)", err)
	}
	if _, err := db.Exec("INSERT INTO t VALUES (3)"); !errors.Is(err, resource.ErrDegraded) {
		t.Fatalf("write after degradation: err = %v, want sticky ErrDegraded", err)
	}
	if _, err := db.Query("SELECT COUNT(*) FROM t"); err != nil {
		t.Fatalf("degraded store refused a read: %v", err)
	}
	if got := db.Metrics().StorageDegraded.Load(); got != 1 {
		t.Fatalf("StorageDegraded = %d, want 1", got)
	}

	first := db.Close()
	if !errors.Is(first, resource.ErrDegraded) {
		t.Fatalf("Close on degraded store: %v, want ErrDegraded", first)
	}
	if again := db.Close(); !errors.Is(again, resource.ErrDegraded) {
		t.Fatalf("second Close: %v, want the same sticky error", again)
	}

	// Recovery on the intact directory: the acknowledged row is there,
	// and the store is writable again.
	db2 := openDurable(t, dir)
	defer db2.Close()
	if n := countRows(t, db2, "t"); n < 1 || n > 2 {
		t.Fatalf("recovered %d rows, want 1 (acked) or 2 (acked + indeterminate)", n)
	}
	if _, err := db2.Exec("INSERT INTO t VALUES (4)"); err != nil {
		t.Fatalf("recovered store refused a write: %v", err)
	}
}

// TestEnospcMidCheckpoint: a checkpoint failing at any step leaves the
// old generation live and complete, no partial artifacts behind, and
// the store writable.
func TestEnospcMidCheckpoint(t *testing.T) {
	arms := []struct {
		name string
		op   vfs.Op
	}{
		{"heap-open", vfs.OpOpen},
		{"file-create", vfs.OpCreate}, // catalog.json or the new WAL
		{"file-sync", vfs.OpSync},
		{"current-rename", vfs.OpRename},
		{"dir-sync", vfs.OpSyncDir},
	}
	for _, tc := range arms {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			db, ffs := faultDB(t, dir)
			if _, err := db.Exec("INSERT INTO t VALUES (1)"); err != nil {
				t.Fatal(err)
			}
			ffs.FailNth(tc.op, 1, syscall.ENOSPC)

			err := db.Checkpoint()
			if err == nil {
				t.Fatalf("checkpoint with %s fault succeeded", tc.op)
			}
			if errors.Is(err, resource.ErrDegraded) {
				t.Fatalf("checkpoint %s fault degraded the store: %v (old WAL is still authoritative)", tc.op, err)
			}
			// No partial generation left behind.
			for _, junk := range []string{"gen-2", "wal-2.log", "CURRENT.tmp"} {
				if _, serr := os.Stat(filepath.Join(dir, junk)); !os.IsNotExist(serr) {
					t.Fatalf("%s fault leaked %s", tc.op, junk)
				}
			}
			if b, _ := os.ReadFile(filepath.Join(dir, "CURRENT")); string(b) != "1\n" {
				t.Fatalf("%s fault moved CURRENT to %q", tc.op, b)
			}
			// Still writable, and a later checkpoint succeeds.
			if _, err := db.Exec("INSERT INTO t VALUES (2)"); err != nil {
				t.Fatalf("insert after vetoed checkpoint: %v", err)
			}
			if err := db.Checkpoint(); err != nil {
				t.Fatalf("checkpoint after freed space: %v", err)
			}
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db2 := openDurable(t, dir)
			defer db2.Close()
			if n := countRows(t, db2, "t"); n != 2 {
				t.Fatalf("recovered %d rows, want 2", n)
			}
		})
	}
}

// TestCorruptHeapPageRefused: a flipped bit in a checkpointed heap page
// surfaces as a typed ErrCorruptPage at open, never as silent bad data.
func TestCorruptHeapPageRefused(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	if err := db.ExecScript(`CREATE TABLE t (id INTEGER); INSERT INTO t VALUES (7);`); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	heap := filepath.Join(dir, "gen-2", "t0.heap")
	b, err := os.ReadFile(heap)
	if err != nil {
		t.Fatal(err)
	}
	b[200] ^= 0x40
	if err := os.WriteFile(heap, b, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err = Open(dir, 0)
	if !errors.Is(err, resource.ErrCorruptPage) || !errors.Is(err, resource.ErrIO) {
		t.Fatalf("open on rotted heap: err = %v, want ErrCorruptPage (and ErrIO)", err)
	}
}

// TestTornTailCounted: recovery over a torn log truncates the tail and
// counts it (satellite: wal_torn_tail_truncations on /metrics).
func TestTornTailCounted(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	if err := db.ExecScript(`CREATE TABLE t (id INTEGER); INSERT INTO t VALUES (1);`); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	wal := filepath.Join(dir, "wal-1.log")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{9, 0, 0, 0, 1, 2, 3})
	f.Close()

	db2 := openDurable(t, dir)
	defer db2.Close()
	if got := db2.Metrics().WalTornTruncations.Load(); got != 1 {
		t.Fatalf("WalTornTruncations = %d, want 1", got)
	}
	if n := countRows(t, db2, "t"); n != 1 {
		t.Fatalf("recovered %d rows, want 1", n)
	}
}

// TestCheckpointOnDegradedStore: Checkpoint (like every mutation) on a
// degraded store returns the sticky typed error and changes nothing.
func TestCheckpointOnDegradedStore(t *testing.T) {
	db, ffs := faultDB(t, t.TempDir())
	if _, err := db.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	ffs.FailNth(vfs.OpSync, 1, syscall.EIO)
	if _, err := db.Exec("INSERT INTO t VALUES (2)"); !errors.Is(err, resource.ErrDegraded) {
		t.Fatalf("setup: %v", err)
	}
	if err := db.Checkpoint(); !errors.Is(err, resource.ErrDegraded) {
		t.Fatalf("checkpoint on degraded store: %v, want ErrDegraded", err)
	}
	if got := db.Metrics().Checkpoints.Load(); got != 0 {
		t.Fatalf("degraded checkpoint still ran (%d)", got)
	}
	db.Close()
}

// TestGroupCommitCrashAckedPrefix sweeps a kill point across the WAL
// group-commit fsync sequence: four concurrent autocommit writers share
// group fsyncs, the k-th fsync dies (degrading the store, fsyncgate),
// then the machine crashes losing every unsynced byte. Recovery must
// surface exactly the acknowledged prefix: every acked statement
// present, and nothing else — except statements that were in flight at
// the kill point, whose durability is genuinely indeterminate (their
// frame may have ridden the previous group's successful fsync without
// being acknowledged by it). A recovered row that was neither acked nor
// in flight would be retroactive acking; an acked row missing would be
// silent loss.
func TestGroupCommitCrashAckedPrefix(t *testing.T) {
	for k := 1; k <= 6; k++ {
		t.Run(fmt.Sprintf("killpoint=%d", k), func(t *testing.T) {
			dir := t.TempDir()
			ffs := vfs.NewFaultFS(vfs.OS, int64(k), vfs.Profile{DropUnsynced: 1})
			db, err := OpenFS(ffs, dir, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := db.Exec("CREATE TABLE t (id INTEGER)"); err != nil {
				t.Fatal(err)
			}
			// Plant after setup so the kill point counts workload fsyncs.
			ffs.FailNth(vfs.OpSync, k, syscall.EIO)

			const writers = 4
			var mu sync.Mutex
			acked := make(map[int64]bool)
			inflight := make(map[int64]bool)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 25; i++ {
						id := int64(w*1000 + i)
						if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", id)); err != nil {
							// First error per writer: the statement was in
							// flight when the group died — indeterminate.
							mu.Lock()
							inflight[id] = true
							mu.Unlock()
							return
						}
						mu.Lock()
						acked[id] = true
						mu.Unlock()
					}
				}(w)
			}
			wg.Wait()

			if err := ffs.Crash(); err != nil {
				t.Fatal(err)
			}
			rdb, err := Open(dir, 0)
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer rdb.Close()
			res, err := rdb.Query("SELECT id FROM t ORDER BY id")
			if err != nil {
				t.Fatal(err)
			}
			got := make(map[int64]bool, len(res.Rows))
			for _, row := range res.Rows {
				got[row[0].Int()] = true
			}
			for id := range acked {
				if !got[id] {
					t.Fatalf("acked id %d lost in recovery (acked %d, recovered %d)", id, len(acked), len(got))
				}
			}
			for id := range got {
				if !acked[id] && !inflight[id] {
					t.Fatalf("recovery resurrected id %d that was never in flight (acked %d, recovered %d)", id, len(acked), len(got))
				}
			}
		})
	}
}
