package engine

import (
	"strings"
	"testing"
)

func indexDB(t *testing.T) *Database {
	t.Helper()
	db := New()
	err := db.ExecScript(`
		CREATE TABLE t (k INTEGER, v VARCHAR, d DATE);
		INSERT INTO t VALUES
			(1, 'a', DATE '1995-01-01'),
			(2, 'b', DATE '1995-01-02'),
			(2, 'c', DATE '1995-01-02'),
			(3, NULL, NULL);
		CREATE INDEX t_k ON t (k);
	`)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestIndexPointLookup(t *testing.T) {
	db := indexDB(t)
	rows := rowStrings(t, db, "SELECT v FROM t WHERE k = 2 ORDER BY v")
	if strings.Join(rows, ",") != "b,c" {
		t.Fatalf("lookup = %v", rows)
	}
	// Misses return empty, not errors.
	rows = rowStrings(t, db, "SELECT v FROM t WHERE k = 99")
	if len(rows) != 0 {
		t.Fatalf("miss = %v", rows)
	}
	// Float literal matches integer keys (numeric promotion).
	n, err := db.QueryInt("SELECT COUNT(*) FROM t WHERE k = 2.0")
	if err != nil || n != 2 {
		t.Fatalf("promoted lookup = %d (%v)", n, err)
	}
	// Reversed operand order.
	n, err = db.QueryInt("SELECT COUNT(*) FROM t WHERE 1 = k")
	if err != nil || n != 1 {
		t.Fatalf("reversed lookup = %d (%v)", n, err)
	}
}

func TestIndexStaysConsistentAcrossMutations(t *testing.T) {
	db := indexDB(t)
	if err := db.ExecScript("INSERT INTO t VALUES (2, 'z', NULL)"); err != nil {
		t.Fatal(err)
	}
	n, _ := db.QueryInt("SELECT COUNT(*) FROM t WHERE k = 2")
	if n != 3 {
		t.Fatalf("after insert = %d", n)
	}
	if _, err := db.Exec("DELETE FROM t WHERE v = 'b'"); err != nil {
		t.Fatal(err)
	}
	n, _ = db.QueryInt("SELECT COUNT(*) FROM t WHERE k = 2")
	if n != 2 {
		t.Fatalf("after delete = %d", n)
	}
	if _, err := db.Exec("UPDATE t SET k = 5 WHERE v = 'c'"); err != nil {
		t.Fatal(err)
	}
	n, _ = db.QueryInt("SELECT COUNT(*) FROM t WHERE k = 5")
	if n != 1 {
		t.Fatalf("after update = %d", n)
	}
	n, _ = db.QueryInt("SELECT COUNT(*) FROM t WHERE k = 2")
	if n != 1 {
		t.Fatalf("stale index entry after update: %d", n)
	}
}

func TestIndexDateCoercion(t *testing.T) {
	db := indexDB(t)
	if err := db.ExecScript("CREATE INDEX t_d ON t (d)"); err != nil {
		t.Fatal(err)
	}
	n, err := db.QueryInt("SELECT COUNT(*) FROM t WHERE d = '1995-01-02'")
	if err != nil || n != 2 {
		t.Fatalf("date-string lookup = %d (%v)", n, err)
	}
	// NULLs are not indexed and never equal.
	n, _ = db.QueryInt("SELECT COUNT(*) FROM t WHERE d = '1990-01-01'")
	if n != 0 {
		t.Fatalf("null leak = %d", n)
	}
}

func TestIndexEquivalenceWithScan(t *testing.T) {
	// The same query with and without the index must agree.
	plain := New()
	err := plain.ExecScript(`
		CREATE TABLE t (k INTEGER, v VARCHAR, d DATE);
		INSERT INTO t VALUES (1, 'a', NULL), (2, 'b', NULL), (2, 'c', NULL), (3, NULL, NULL);
	`)
	if err != nil {
		t.Fatal(err)
	}
	indexed := indexDB(t)
	for _, q := range []string{
		"SELECT COUNT(*) FROM t WHERE k = 2",
		"SELECT COUNT(*) FROM t WHERE k = 2 AND v = 'b'",
		"SELECT COUNT(*) FROM t WHERE k = 2 OR k = 1",
		"SELECT COUNT(*) FROM t WHERE v = 'x'",
	} {
		a, err1 := plain.QueryInt(q)
		b, err2 := indexed.QueryInt(q)
		if err1 != nil || err2 != nil || a != b {
			t.Errorf("%s: plain %d (%v) vs indexed %d (%v)", q, a, err1, b, err2)
		}
	}
}

func TestIndexInJoinQuery(t *testing.T) {
	db := indexDB(t)
	if err := db.ExecScript("CREATE TABLE u (k INTEGER); INSERT INTO u VALUES (2), (3)"); err != nil {
		t.Fatal(err)
	}
	// The indexed conjunct narrows t before the join.
	n, err := db.QueryInt("SELECT COUNT(*) FROM t, u WHERE t.k = 2 AND t.k = u.k")
	if err != nil || n != 2 {
		t.Fatalf("join with index = %d (%v)", n, err)
	}
}

func TestIndexCatalogRules(t *testing.T) {
	db := indexDB(t)
	if err := db.ExecScript("CREATE INDEX t_k ON t (k)"); err == nil {
		t.Error("duplicate index accepted")
	}
	if err := db.ExecScript("CREATE INDEX t ON t (k)"); err == nil {
		t.Error("index named like a table accepted")
	}
	if err := db.ExecScript("CREATE INDEX i2 ON missing (k)"); err == nil {
		t.Error("index on missing table accepted")
	}
	if err := db.ExecScript("CREATE INDEX i2 ON t (missing)"); err == nil {
		t.Error("index on missing column accepted")
	}
	if err := db.ExecScript("DROP INDEX t_k"); err != nil {
		t.Fatal(err)
	}
	if err := db.ExecScript("DROP INDEX t_k"); err == nil {
		t.Error("double drop accepted")
	}
	// Dropping a table drops its indexes from the namespace.
	if err := db.ExecScript("CREATE INDEX t_k2 ON t (k); DROP TABLE t; CREATE SEQUENCE t_k2"); err != nil {
		t.Fatalf("index name not released on DROP TABLE: %v", err)
	}
}

func TestIndexSurvivesSaveLoad(t *testing.T) {
	dir := t.TempDir()
	db := indexDB(t)
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	tab, ok := db2.Catalog().Table("t")
	if !ok || len(tab.Indexes()) != 1 {
		t.Fatalf("indexes after load = %v", tab.Indexes())
	}
	n, _ := db2.QueryInt("SELECT COUNT(*) FROM t WHERE k = 2")
	if n != 2 {
		t.Fatalf("indexed lookup after load = %d", n)
	}
}

func TestExplainSQL(t *testing.T) {
	db := indexDB(t)
	if err := db.ExecScript("CREATE TABLE u (k INTEGER); INSERT INTO u VALUES (1), (2)"); err != nil {
		t.Fatal(err)
	}
	out, err := db.ExplainSQL("SELECT COUNT(*) FROM t, u WHERE t.k = 2 AND t.k = u.k")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"index lookup t.k", "hash join", "result: 1 row(s)"} {
		if !strings.Contains(out, want) {
			t.Errorf("explain missing %q:\n%s", want, out)
		}
	}
	// Non-equi join shows the cartesian fallback.
	out, err = db.ExplainSQL("SELECT COUNT(*) FROM u a, u b WHERE a.k < b.k")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cartesian product") || !strings.Contains(out, "filter") {
		t.Errorf("explain missing plan detail:\n%s", out)
	}
	// Tracing is off again after ExplainSQL.
	if _, err := db.Query("SELECT k FROM u"); err != nil {
		t.Fatal(err)
	}
	out2, err := db.ExplainSQL("SELECT k FROM u WHERE k = 1")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out2, "hash join") {
		t.Errorf("stale trace lines leaked:\n%s", out2)
	}
}
