package engine

import (
	"context"
	"strings"
	"testing"
	"time"

	"minerule/internal/resource"
)

// FuzzExec drives arbitrary statement text through the full engine —
// parser, planner, executor — against a small populated database, under
// a deadline and tight row limits. The executor's containment contract
// is that no input text may panic or hang the engine: everything
// surfaces as an error. Run with: go test -fuzz FuzzExec ./internal/sql/engine
func FuzzExec(f *testing.F) {
	seeds := []string{
		"SELECT * FROM t",
		"SELECT UPPER(a), LENGTH(b), TRIM(b) FROM t WHERE a > 0 ORDER BY b",
		"SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) >= 1",
		"SELECT t1.a, t2.b FROM t AS t1 JOIN t AS t2 ON t1.a = t2.a",
		"SELECT UPPER(a) FROM t",              // type mismatch: contained, not panicking
		"SELECT SUBSTR(a, 1, 2) FROM t",       // ditto
		"SELECT b || a FROM t WHERE b LIKE a", // ditto
		"INSERT INTO t VALUES (3, 'z')",
		"UPDATE t SET b = UPPER(b) WHERE a = 1",
		"DELETE FROM t WHERE a IN (SELECT a FROM t)",
		"CREATE TABLE u (x INTEGER); DROP TABLE u",
		"CREATE VIEW v AS SELECT a FROM t; SELECT * FROM v",
		"SELECT * FROM t, t AS u, t AS w", // cartesian growth hits MaxRows
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return // bound parse/exec work per iteration
		}
		db := New()
		if err := db.ExecScript(`
			CREATE TABLE t (a INTEGER, b VARCHAR);
			INSERT INTO t VALUES (1, 'x'), (2, 'y'), (2, NULL);
		`); err != nil {
			t.Fatal(err)
		}
		db.SetLimits(resource.Limits{MaxRows: 10000})
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		for _, stmt := range strings.Split(src, ";") {
			_, _ = db.ExecContext(ctx, stmt) // must not panic or hang
		}
	})
}
