package engine

import (
	"fmt"
	"testing"
)

// TestStatementCacheHits proves repeated statement texts are served from
// the prepared-program cache.
func TestStatementCacheHits(t *testing.T) {
	db := New()
	if err := db.ExecScript(`
		CREATE TABLE t (a INTEGER, b VARCHAR);
		INSERT INTO t VALUES (1, 'x');
		INSERT INTO t VALUES (2, 'y');
	`); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT a FROM t ORDER BY a"
	for i := 0; i < 5; i++ {
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 2 {
			t.Fatalf("run %d: got %d rows, want 2", i, len(res.Rows))
		}
	}
	hits, misses := db.StatementCacheStats()
	if hits < 4 {
		t.Errorf("hits = %d, want >= 4 (5 runs of one text)", hits)
	}
	if misses == 0 {
		t.Errorf("misses = 0, want at least the first parse")
	}
}

// TestStatementCacheHotEntriesSurviveChurn is the regression test for
// the full-flush eviction bug: a churn of distinct one-shot statements
// used to wipe the whole cache at the 1024-entry limit, discarding the
// kernel's hot templates along with the cold junk. Under second-chance
// eviction a hot statement that keeps being re-executed must never be
// re-parsed (zero misses after its first insertion) across 10k one-shot
// inserts.
func TestStatementCacheHotEntriesSurviveChurn(t *testing.T) {
	db := New()
	if err := db.ExecScript(`
		CREATE TABLE t (a INTEGER);
		INSERT INTO t VALUES (1);
	`); err != nil {
		t.Fatal(err)
	}
	const hot = "SELECT COUNT(*) FROM t"
	if _, err := db.QueryInt(hot); err != nil { // initial parse + insert
		t.Fatal(err)
	}

	var hotMisses uint64
	for i := 0; i < 10000; i++ {
		// One-shot statement with a distinct literal: never reused.
		if _, err := db.Query(fmt.Sprintf("SELECT a + %d FROM t", i)); err != nil {
			t.Fatal(err)
		}
		if i%16 == 0 {
			_, m0 := db.StatementCacheStats()
			if _, err := db.QueryInt(hot); err != nil {
				t.Fatal(err)
			}
			_, m1 := db.StatementCacheStats()
			hotMisses += m1 - m0
		}
	}
	if hotMisses != 0 {
		t.Errorf("hot statement re-parsed %d time(s) during churn; second-chance eviction should keep it cached", hotMisses)
	}
	if ev := db.StatementCacheEvictions(); ev == 0 {
		t.Errorf("evictions = 0, want > 0 after 10k one-shot statements against a %d-entry cache", stmtCacheLimit)
	}
}

// TestStatementCacheSeesDDL proves a cached program never reads a stale
// catalog: the same statement text re-executed after DROP/CREATE DDL
// must observe the new object, because cached entries are pure syntax
// and bind against the dictionary on every execution.
func TestStatementCacheSeesDDL(t *testing.T) {
	db := New()
	if err := db.ExecScript(`
		CREATE TABLE t (a INTEGER);
		INSERT INTO t VALUES (1);
	`); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT COUNT(*) FROM t"
	n, err := db.QueryInt(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("before DDL: COUNT(*) = %d, want 1", n)
	}

	// Replace the table wholesale; the cached text must see the new one.
	if err := db.ExecScript(`
		DROP TABLE t;
		CREATE TABLE t (a INTEGER, b INTEGER);
		INSERT INTO t VALUES (1, 10);
		INSERT INTO t VALUES (2, 20);
		INSERT INTO t VALUES (3, 30);
	`); err != nil {
		t.Fatal(err)
	}
	n, err = db.QueryInt(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("after DDL: COUNT(*) = %d, want 3 (stale catalog?)", n)
	}
	// A column that only exists post-DDL must resolve through the cache
	// path too.
	if _, err := db.Query("SELECT b FROM t"); err != nil {
		t.Fatalf("new column through cached bind: %v", err)
	}
}

// TestViewPlanCacheInvalidation proves the executor's view-plan cache
// keys on the catalog version: redefining a view under the same name
// changes the rows the next query sees.
func TestViewPlanCacheInvalidation(t *testing.T) {
	db := New()
	if err := db.ExecScript(`
		CREATE TABLE t (a INTEGER);
		INSERT INTO t VALUES (1);
		INSERT INTO t VALUES (2);
		INSERT INTO t VALUES (3);
		CREATE VIEW v AS SELECT a FROM t WHERE a < 3;
	`); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT COUNT(*) FROM v"
	n, err := db.QueryInt(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("original view: COUNT(*) = %d, want 2", n)
	}
	// Warm the plan cache with a second use, then redefine the view.
	if _, err := db.QueryInt(q); err != nil {
		t.Fatal(err)
	}
	if err := db.ExecScript(`
		DROP VIEW v;
		CREATE VIEW v AS SELECT a FROM t WHERE a >= 3;
	`); err != nil {
		t.Fatal(err)
	}
	n, err = db.QueryInt(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("redefined view: COUNT(*) = %d, want 1 (stale view plan?)", n)
	}
}
