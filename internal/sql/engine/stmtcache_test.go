package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestStatementCacheHits proves repeated statement texts are served from
// the prepared-program cache.
func TestStatementCacheHits(t *testing.T) {
	db := New()
	if err := db.ExecScript(`
		CREATE TABLE t (a INTEGER, b VARCHAR);
		INSERT INTO t VALUES (1, 'x');
		INSERT INTO t VALUES (2, 'y');
	`); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT a FROM t ORDER BY a"
	for i := 0; i < 5; i++ {
		res, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 2 {
			t.Fatalf("run %d: got %d rows, want 2", i, len(res.Rows))
		}
	}
	hits, misses := db.StatementCacheStats()
	if hits < 4 {
		t.Errorf("hits = %d, want >= 4 (5 runs of one text)", hits)
	}
	if misses == 0 {
		t.Errorf("misses = 0, want at least the first parse")
	}
}

// TestStatementCacheHotEntriesSurviveChurn is the regression test for
// the full-flush eviction bug: a churn of distinct one-shot statements
// used to wipe the whole cache at the 1024-entry limit, discarding the
// kernel's hot templates along with the cold junk. Under second-chance
// eviction a hot statement that keeps being re-executed must never be
// re-parsed (zero misses after its first insertion) across 10k one-shot
// inserts.
func TestStatementCacheHotEntriesSurviveChurn(t *testing.T) {
	db := New()
	if err := db.ExecScript(`
		CREATE TABLE t (a INTEGER);
		INSERT INTO t VALUES (1);
	`); err != nil {
		t.Fatal(err)
	}
	const hot = "SELECT COUNT(*) FROM t"
	if _, err := db.QueryInt(hot); err != nil { // initial parse + insert
		t.Fatal(err)
	}

	var hotMisses uint64
	for i := 0; i < 10000; i++ {
		// One-shot statement with a distinct literal: never reused.
		if _, err := db.Query(fmt.Sprintf("SELECT a + %d FROM t", i)); err != nil {
			t.Fatal(err)
		}
		if i%16 == 0 {
			_, m0 := db.StatementCacheStats()
			if _, err := db.QueryInt(hot); err != nil {
				t.Fatal(err)
			}
			_, m1 := db.StatementCacheStats()
			hotMisses += m1 - m0
		}
	}
	if hotMisses != 0 {
		t.Errorf("hot statement re-parsed %d time(s) during churn; second-chance eviction should keep it cached", hotMisses)
	}
	if ev := db.StatementCacheEvictions(); ev == 0 {
		t.Errorf("evictions = 0, want > 0 after 10k one-shot statements against a %d-entry cache", stmtCacheLimit)
	}
}

// TestStatementCacheSeesDDL proves a cached program never reads a stale
// catalog: the same statement text re-executed after DROP/CREATE DDL
// must observe the new object, because cached entries are pure syntax
// and bind against the dictionary on every execution.
func TestStatementCacheSeesDDL(t *testing.T) {
	db := New()
	if err := db.ExecScript(`
		CREATE TABLE t (a INTEGER);
		INSERT INTO t VALUES (1);
	`); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT COUNT(*) FROM t"
	n, err := db.QueryInt(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("before DDL: COUNT(*) = %d, want 1", n)
	}

	// Replace the table wholesale; the cached text must see the new one.
	if err := db.ExecScript(`
		DROP TABLE t;
		CREATE TABLE t (a INTEGER, b INTEGER);
		INSERT INTO t VALUES (1, 10);
		INSERT INTO t VALUES (2, 20);
		INSERT INTO t VALUES (3, 30);
	`); err != nil {
		t.Fatal(err)
	}
	n, err = db.QueryInt(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("after DDL: COUNT(*) = %d, want 3 (stale catalog?)", n)
	}
	// A column that only exists post-DDL must resolve through the cache
	// path too.
	if _, err := db.Query("SELECT b FROM t"); err != nil {
		t.Fatalf("new column through cached bind: %v", err)
	}
}

// TestViewPlanCacheInvalidation proves the executor's view-plan cache
// keys on the catalog version: redefining a view under the same name
// changes the rows the next query sees.
func TestViewPlanCacheInvalidation(t *testing.T) {
	db := New()
	if err := db.ExecScript(`
		CREATE TABLE t (a INTEGER);
		INSERT INTO t VALUES (1);
		INSERT INTO t VALUES (2);
		INSERT INTO t VALUES (3);
		CREATE VIEW v AS SELECT a FROM t WHERE a < 3;
	`); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT COUNT(*) FROM v"
	n, err := db.QueryInt(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("original view: COUNT(*) = %d, want 2", n)
	}
	// Warm the plan cache with a second use, then redefine the view.
	if _, err := db.QueryInt(q); err != nil {
		t.Fatal(err)
	}
	if err := db.ExecScript(`
		DROP VIEW v;
		CREATE VIEW v AS SELECT a FROM t WHERE a >= 3;
	`); err != nil {
		t.Fatal(err)
	}
	n, err = db.QueryInt(q)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("redefined view: COUNT(*) = %d, want 1 (stale view plan?)", n)
	}
}

// TestPrepareUnderConcurrentDDL: a verdict primed by Prepare at catalog
// version V must not execute after DDL replaces the table — the cached
// text revalidates against the current (or snapshot) catalog version,
// so a column dropped by the DDL is a semantic error, never a stale
// execution.
func TestPrepareUnderConcurrentDDL(t *testing.T) {
	db := New()
	if err := db.ExecScript(`
		CREATE TABLE t (a INTEGER);
		INSERT INTO t VALUES (1);
	`); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT a FROM t"
	if err := db.Prepare(q); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}

	// A snapshot transaction opened now is pinned to the pre-DDL catalog:
	// the cached statement must keep resolving column a inside it even
	// after the live table loses that column.
	conn := db.Conn()
	defer conn.Close()
	if _, err := conn.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec(q); err != nil {
		t.Fatalf("cached statement inside pre-DDL snapshot: %v", err)
	}

	if err := db.ExecScript(`
		DROP TABLE t;
		CREATE TABLE t (b INTEGER);
		INSERT INTO t VALUES (10);
		INSERT INTO t VALUES (20);
	`); err != nil {
		t.Fatal(err)
	}

	// The open transaction still validates against its snapshot's version.
	if _, err := conn.Exec(q); err != nil {
		t.Fatalf("cached statement revalidated against live catalog instead of the snapshot: %v", err)
	}
	if _, err := conn.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}

	// Autocommit now sees the new schema: column a is gone, b resolves.
	if _, err := db.Query(q); err == nil {
		t.Fatal("stale verdict: cached SELECT a executed against a table without column a")
	} else if !strings.Contains(err.Error(), "unknown column") {
		t.Fatalf("post-DDL error = %v, want unknown column", err)
	}
	n, err := db.QueryInt("SELECT COUNT(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Fatalf("post-DDL COUNT(*) = %d, want 2", n)
	}
}

// TestPrepareDDLRace hammers Prepare+execute against concurrent
// DROP/CREATE of the same table. Every outcome must be a clean success
// or a semantic error — never a stale-verdict execution, panic, or
// race-detector report.
func TestPrepareDDLRace(t *testing.T) {
	db := New()
	if err := db.ExecScript(`
		CREATE TABLE t (a INTEGER);
		INSERT INTO t VALUES (1);
	`); err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ddl := `DROP TABLE t; CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1);`
			if i%2 == 1 {
				ddl = `DROP TABLE t; CREATE TABLE t (b INTEGER); INSERT INTO t VALUES (2);`
			}
			if err := db.ExecScript(ddl); err != nil {
				t.Errorf("DDL churn: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		const q = "SELECT a FROM t"
		if err := db.Prepare(q); err != nil && !strings.Contains(err.Error(), "unknown column") {
			t.Fatalf("prepare during DDL churn: %v", err)
		}
		res, err := db.Query(q)
		if err != nil {
			if !strings.Contains(err.Error(), "unknown column") {
				t.Fatalf("query during DDL churn: %v", err)
			}
			continue
		}
		// When it executes, the verdict matched the schema it ran against.
		if got := res.Schema.Col(0).Name; got != "a" {
			t.Fatalf("stale plan returned column %q, want a", got)
		}
	}
	close(stop)
	wg.Wait()
}
