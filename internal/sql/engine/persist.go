package engine

import (
	"context"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"path/filepath"

	"minerule/internal/sql/value"
	"minerule/internal/sql/vfs"
)

// The on-disk format is one directory: manifest.json plus one CSV per
// table (typed headers, the ImportCSV format). It is deliberately plain
// — the engine is in-memory by design (DESIGN.md §7), and save/load
// exists so mining sessions and their rule tables survive restarts, not
// as a transactional store.

// manifest describes a saved database.
type manifest struct {
	Tables    []string         `json:"tables"`
	Views     []manifestView   `json:"views"`
	Sequences map[string]int64 `json:"sequences"`
	Indexes   []manifestIndex  `json:"indexes,omitempty"`
}

type manifestIndex struct {
	Name   string `json:"name"`
	Table  string `json:"table"`
	Column string `json:"column"`
}

type manifestView struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

// Save writes the whole database under dir (created if needed).
func (db *Database) Save(dir string) error {
	if err := vfs.OS.MkdirAll(dir); err != nil {
		return fmt.Errorf("engine: save: %w", err)
	}
	m := manifest{Sequences: make(map[string]int64)}
	m.Tables = db.cat.TableNames()
	for _, name := range m.Tables {
		if err := db.saveTable(dir, name); err != nil {
			return err
		}
		t, _ := db.cat.Table(name)
		for _, ix := range t.Indexes() {
			m.Indexes = append(m.Indexes, manifestIndex{
				Name:   ix.Name(),
				Table:  name,
				Column: t.Schema().Col(ix.Column()).Name,
			})
		}
	}
	for _, vn := range db.cat.ViewNames() {
		v, _ := db.cat.View(vn)
		m.Views = append(m.Views, manifestView{Name: v.Name, Text: v.Text})
	}
	for _, sn := range db.cat.SequenceNames() {
		s, _ := db.cat.Sequence(sn)
		m.Sequences[s.Name()] = s.CurrentVal()
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("engine: save: %w", err)
	}
	f, err := vfs.OS.Create(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return fmt.Errorf("engine: save: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("engine: save: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("engine: save: %w", err)
	}
	return nil
}

func (db *Database) saveTable(dir, name string) error {
	t, ok := db.cat.Table(name)
	if !ok {
		return fmt.Errorf("engine: save: table %q vanished", name)
	}
	f, err := vfs.OS.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return fmt.Errorf("engine: save: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	s := t.Schema()
	header := make([]string, s.Len())
	for i := 0; i < s.Len(); i++ {
		header[i] = s.Col(i).Name + ":" + csvTypeName(s.Col(i).Type)
	}
	if err := w.Write(header); err != nil {
		return err
	}
	rec := make([]string, s.Len())
	for _, row := range t.Snapshot() {
		for i, v := range row {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := w.Write(rec); err != nil {
			return err
		}
	}
	w.Flush()
	if err := w.Error(); err != nil {
		return err
	}
	return f.Close()
}

func csvTypeName(t value.Type) string {
	switch t {
	case value.TypeInt:
		return "int"
	case value.TypeFloat:
		return "float"
	case value.TypeDate:
		return "date"
	case value.TypeBool:
		return "bool"
	default:
		return "string"
	}
}

// Load reads a database saved by Save into a fresh Database.
func Load(dir string) (*Database, error) {
	return LoadContext(context.Background(), dir)
}

// LoadContext is Load under a cancellation context.
func LoadContext(ctx context.Context, dir string) (*Database, error) {
	data, err := vfs.OS.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("engine: load: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("engine: load: bad manifest: %w", err)
	}
	db := New()
	for _, name := range m.Tables {
		f, err := vfs.OS.Open(filepath.Join(dir, name+".csv"))
		if err != nil {
			return nil, fmt.Errorf("engine: load: %w", err)
		}
		r := csv.NewReader(f)
		header, err := r.Read()
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("engine: load %s: %w", name, err)
		}
		// Re-feed the remaining records through ImportCSV's machinery by
		// handing it the already-opened reader.
		if _, err := db.importRecords(ctx, name, header, r); err != nil {
			f.Close()
			return nil, fmt.Errorf("engine: load %s: %w", name, err)
		}
		f.Close()
	}
	// Views may reference each other; create in passes until a fixpoint,
	// which handles any dependency order without tracking it.
	pending := append([]manifestView(nil), m.Views...)
	for len(pending) > 0 {
		progressed := false
		var next []manifestView
		var lastErr error
		for _, v := range pending {
			if _, err := db.Exec("CREATE VIEW " + v.Name + " AS " + v.Text); err != nil {
				lastErr = err
				next = append(next, v)
				continue
			}
			progressed = true
		}
		if !progressed {
			return nil, fmt.Errorf("engine: load: cannot restore views: %w", lastErr)
		}
		pending = next
	}
	for name, nextVal := range m.Sequences {
		s, err := db.cat.CreateSequence(name)
		if err != nil {
			return nil, fmt.Errorf("engine: load: %w", err)
		}
		s.Restore(nextVal)
	}
	for _, ix := range m.Indexes {
		if _, err := db.Exec(fmt.Sprintf("CREATE INDEX %s ON %s (%s)", ix.Name, ix.Table, ix.Column)); err != nil {
			return nil, fmt.Errorf("engine: load: %w", err)
		}
	}
	return db, nil
}
