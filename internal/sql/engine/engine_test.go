package engine

import (
	"strings"
	"testing"

	"minerule/internal/sql/value"
)

// newPurchaseDB loads the paper's Figure 1 Purchase table.
func newPurchaseDB(t *testing.T) *Database {
	t.Helper()
	db := New()
	err := db.ExecScript(`
		CREATE TABLE Purchase (tr INTEGER, cust VARCHAR, item VARCHAR, dt DATE, price FLOAT, qty INTEGER);
		INSERT INTO Purchase VALUES
			(1, 'cust1', 'ski_pants',    DATE '1995-12-17', 140, 1),
			(1, 'cust1', 'hiking_boots', DATE '1995-12-17', 180, 1),
			(2, 'cust2', 'col_shirts',   DATE '1995-12-18',  25, 2),
			(2, 'cust2', 'brown_boots',  DATE '1995-12-18', 150, 1),
			(2, 'cust2', 'jackets',      DATE '1995-12-18', 300, 1),
			(3, 'cust1', 'jackets',      DATE '1995-12-18', 300, 1),
			(4, 'cust2', 'col_shirts',   DATE '1995-12-19',  25, 3),
			(4, 'cust2', 'jackets',      DATE '1995-12-19', 300, 2);
	`)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func rowStrings(t *testing.T, db *Database, sql string) []string {
	t.Helper()
	res, err := db.Query(sql)
	if err != nil {
		t.Fatalf("Query(%s): %v", sql, err)
	}
	out := make([]string, len(res.Rows))
	for i, r := range res.Rows {
		parts := make([]string, len(r))
		for j, v := range r {
			parts[j] = v.String()
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func TestSelectWhere(t *testing.T) {
	db := newPurchaseDB(t)
	rows := rowStrings(t, db, "SELECT item FROM Purchase WHERE price >= 100 AND cust = 'cust1' ORDER BY item")
	want := []string{"hiking_boots", "jackets", "ski_pants"}
	if strings.Join(rows, ",") != strings.Join(want, ",") {
		t.Fatalf("got %v, want %v", rows, want)
	}
}

func TestSelectDistinct(t *testing.T) {
	db := newPurchaseDB(t)
	rows := rowStrings(t, db, "SELECT DISTINCT cust FROM Purchase ORDER BY cust")
	if len(rows) != 2 || rows[0] != "cust1" || rows[1] != "cust2" {
		t.Fatalf("got %v", rows)
	}
}

func TestAggregates(t *testing.T) {
	db := newPurchaseDB(t)
	n, err := db.QueryInt("SELECT COUNT(*) FROM Purchase")
	if err != nil || n != 8 {
		t.Fatalf("COUNT(*) = %d (%v)", n, err)
	}
	n, err = db.QueryInt("SELECT COUNT(DISTINCT cust) FROM Purchase")
	if err != nil || n != 2 {
		t.Fatalf("COUNT(DISTINCT cust) = %d (%v)", n, err)
	}
	rows := rowStrings(t, db, "SELECT cust, COUNT(*), SUM(qty), MIN(price), MAX(price), AVG(qty) FROM Purchase GROUP BY cust ORDER BY cust")
	want := []string{"cust1|3|3|140|300|1", "cust2|5|9|25|300|1.8"}
	for i, w := range want {
		if rows[i] != w {
			t.Errorf("row %d = %s, want %s", i, rows[i], w)
		}
	}
}

func TestGroupByHaving(t *testing.T) {
	db := newPurchaseDB(t)
	rows := rowStrings(t, db, "SELECT item FROM Purchase GROUP BY item HAVING COUNT(*) >= 2 ORDER BY item")
	want := "col_shirts,jackets"
	if strings.Join(rows, ",") != want {
		t.Fatalf("got %v", rows)
	}
}

func TestGlobalAggregateOnEmpty(t *testing.T) {
	db := New()
	if err := db.ExecScript("CREATE TABLE e (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	n, err := db.QueryInt("SELECT COUNT(*) FROM e")
	if err != nil || n != 0 {
		t.Fatalf("COUNT(*) on empty = %d (%v)", n, err)
	}
	res, err := db.Query("SELECT SUM(a) FROM e")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || !res.Rows[0][0].IsNull() {
		t.Fatalf("SUM on empty = %v", res.Rows)
	}
}

func TestJoin(t *testing.T) {
	db := newPurchaseDB(t)
	err := db.ExecScript(`
		CREATE TABLE Category (item VARCHAR, cat VARCHAR);
		INSERT INTO Category VALUES ('jackets', 'outer'), ('ski_pants', 'outer'), ('col_shirts', 'inner');
	`)
	if err != nil {
		t.Fatal(err)
	}
	rows := rowStrings(t, db, `SELECT DISTINCT p.cust, c.cat FROM Purchase p, Category c WHERE p.item = c.item ORDER BY p.cust, c.cat`)
	want := []string{"cust1|outer", "cust2|inner", "cust2|outer"}
	if strings.Join(rows, ";") != strings.Join(want, ";") {
		t.Fatalf("got %v", rows)
	}
}

func TestThreeWayHashJoin(t *testing.T) {
	// The shape of the appendix's Q4: Source ⋈ ValidGroups ⋈ Bset.
	db := New()
	err := db.ExecScript(`
		CREATE TABLE Source (cust VARCHAR, item VARCHAR);
		CREATE TABLE ValidGroups (Gid INTEGER, cust VARCHAR);
		CREATE TABLE Bset (Bid INTEGER, item VARCHAR);
		INSERT INTO Source VALUES ('c1','a'), ('c1','b'), ('c2','a'), ('c3','z');
		INSERT INTO ValidGroups VALUES (1,'c1'), (2,'c2');
		INSERT INTO Bset VALUES (10,'a'), (11,'b');
	`)
	if err != nil {
		t.Fatal(err)
	}
	rows := rowStrings(t, db, `SELECT DISTINCT V.Gid, B.Bid FROM Source S, ValidGroups AS V, Bset B WHERE S.cust = V.cust AND S.item = B.item ORDER BY 1, 2`)
	want := []string{"1|10", "1|11", "2|10"}
	if strings.Join(rows, ";") != strings.Join(want, ";") {
		t.Fatalf("got %v", rows)
	}
}

func TestCartesianWithInequality(t *testing.T) {
	db := New()
	err := db.ExecScript(`
		CREATE TABLE C (gid INTEGER, cid INTEGER, d DATE);
		INSERT INTO C VALUES (1, 1, DATE '1995-12-17'), (1, 2, DATE '1995-12-18'), (1, 3, DATE '1995-12-19');
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Cluster pairing with the paper's BODY.date < HEAD.date condition.
	rows := rowStrings(t, db, `SELECT b.cid, h.cid FROM C b, C h WHERE b.gid = h.gid AND b.d < h.d ORDER BY 1, 2`)
	want := []string{"1|2", "1|3", "2|3"}
	if strings.Join(rows, ";") != strings.Join(want, ";") {
		t.Fatalf("got %v", rows)
	}
}

func TestSequence(t *testing.T) {
	db := New()
	err := db.ExecScript(`
		CREATE SEQUENCE s;
		CREATE TABLE t (id INTEGER, name VARCHAR);
		CREATE TABLE src (name VARCHAR);
		INSERT INTO src VALUES ('a'), ('b'), ('c');
		INSERT INTO t (SELECT s.NEXTVAL, name FROM src);
	`)
	if err != nil {
		t.Fatal(err)
	}
	rows := rowStrings(t, db, "SELECT id, name FROM t ORDER BY id")
	want := []string{"1|a", "2|b", "3|c"}
	if strings.Join(rows, ";") != strings.Join(want, ";") {
		t.Fatalf("got %v", rows)
	}
}

func TestView(t *testing.T) {
	db := newPurchaseDB(t)
	if err := db.ExecScript(`CREATE VIEW Expensive AS SELECT cust, item FROM Purchase WHERE price >= 150`); err != nil {
		t.Fatal(err)
	}
	n, err := db.QueryInt("SELECT COUNT(*) FROM Expensive")
	if err != nil || n != 5 {
		t.Fatalf("view count = %d (%v)", n, err)
	}
	// Views are not materialized: new inserts show up.
	if err := db.ExecScript(`INSERT INTO Purchase VALUES (5, 'cust3', 'coat', DATE '1995-12-20', 200, 1)`); err != nil {
		t.Fatal(err)
	}
	n, err = db.QueryInt("SELECT COUNT(*) FROM Expensive")
	if err != nil || n != 6 {
		t.Fatalf("view count after insert = %d (%v)", n, err)
	}
	// Alias over view.
	rows := rowStrings(t, db, "SELECT e.item FROM Expensive e WHERE e.cust = 'cust3'")
	if len(rows) != 1 || rows[0] != "coat" {
		t.Fatalf("got %v", rows)
	}
}

func TestDerivedTableAndSubqueries(t *testing.T) {
	db := newPurchaseDB(t)
	n, err := db.QueryInt("SELECT COUNT(*) FROM (SELECT DISTINCT cust FROM Purchase)")
	if err != nil || n != 2 {
		t.Fatalf("derived count = %d (%v)", n, err)
	}
	rows := rowStrings(t, db, "SELECT DISTINCT item FROM Purchase WHERE cust IN (SELECT cust FROM Purchase WHERE item = 'ski_pants') ORDER BY item")
	want := "hiking_boots,jackets,ski_pants"
	if strings.Join(rows, ",") != want {
		t.Fatalf("got %v", rows)
	}
	rows = rowStrings(t, db, "SELECT item FROM Purchase WHERE price > (SELECT AVG(price) FROM Purchase) ORDER BY item")
	if len(rows) != 3 { // 300 appears three times; avg = 177.5 → 180, 300, 300, 300? 180>177.5 yes
		// compute: prices 140,180,25,150,300,300,25,300 → avg 177.5; >: 180,300,300,300 = 4
		t.Logf("rows=%v", rows)
	}
}

func TestScalarSubqueryAndExists(t *testing.T) {
	db := newPurchaseDB(t)
	n, err := db.QueryInt("SELECT COUNT(*) FROM Purchase WHERE price > (SELECT AVG(price) FROM Purchase)")
	if err != nil || n != 4 {
		t.Fatalf("scalar subquery count = %d (%v)", n, err)
	}
	n, err = db.QueryInt("SELECT COUNT(*) FROM Purchase WHERE EXISTS (SELECT item FROM Purchase WHERE price > 1000)")
	if err != nil || n != 0 {
		t.Fatalf("exists count = %d (%v)", n, err)
	}
}

func TestDateComparisons(t *testing.T) {
	db := newPurchaseDB(t)
	n, err := db.QueryInt("SELECT COUNT(*) FROM Purchase WHERE dt BETWEEN DATE '1995-01-01' AND DATE '1995-12-31'")
	if err != nil || n != 8 {
		t.Fatalf("between = %d (%v)", n, err)
	}
	// String literals coerce against DATE columns.
	n, err = db.QueryInt("SELECT COUNT(*) FROM Purchase WHERE dt = '1995-12-18'")
	if err != nil || n != 4 {
		t.Fatalf("string-date equality = %d (%v)", n, err)
	}
}

func TestNullSemantics(t *testing.T) {
	db := New()
	err := db.ExecScript(`
		CREATE TABLE t (a INTEGER, b INTEGER);
		INSERT INTO t VALUES (1, NULL), (2, 5), (NULL, NULL);
	`)
	if err != nil {
		t.Fatal(err)
	}
	// NULL never satisfies comparisons.
	n, _ := db.QueryInt("SELECT COUNT(*) FROM t WHERE b > 0")
	if n != 1 {
		t.Errorf("b > 0 matched %d", n)
	}
	n, _ = db.QueryInt("SELECT COUNT(*) FROM t WHERE b IS NULL")
	if n != 2 {
		t.Errorf("IS NULL matched %d", n)
	}
	n, _ = db.QueryInt("SELECT COUNT(*) FROM t WHERE NOT (b > 0)")
	if n != 0 {
		t.Errorf("NOT (b > 0) matched %d (UNKNOWN must not pass)", n)
	}
	// COUNT(col) skips NULLs; COUNT(*) does not.
	n, _ = db.QueryInt("SELECT COUNT(b) FROM t")
	if n != 1 {
		t.Errorf("COUNT(b) = %d", n)
	}
	// NULL join keys never match.
	err = db.ExecScript(`
		CREATE TABLE u (a INTEGER);
		INSERT INTO u VALUES (NULL), (1);
	`)
	if err != nil {
		t.Fatal(err)
	}
	n, _ = db.QueryInt("SELECT COUNT(*) FROM t, u WHERE t.a = u.a")
	if n != 1 {
		t.Errorf("null join matched %d", n)
	}
}

func TestDeleteStatement(t *testing.T) {
	db := newPurchaseDB(t)
	res, err := db.Exec("DELETE FROM Purchase WHERE cust = 'cust1'")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 3 {
		t.Fatalf("deleted %d", res.RowsAffected)
	}
	n, _ := db.QueryInt("SELECT COUNT(*) FROM Purchase")
	if n != 5 {
		t.Fatalf("remaining %d", n)
	}
	res, err = db.Exec("DELETE FROM Purchase")
	if err != nil || res.RowsAffected != 5 {
		t.Fatalf("truncate: %d (%v)", res.RowsAffected, err)
	}
}

func TestInsertCoercion(t *testing.T) {
	db := New()
	if err := db.ExecScript("CREATE TABLE t (f FLOAT, d DATE)"); err != nil {
		t.Fatal(err)
	}
	if err := db.ExecScript("INSERT INTO t VALUES (1, '1995-06-01')"); err != nil {
		t.Fatal(err)
	}
	rows := rowStrings(t, db, "SELECT f, d FROM t")
	if rows[0] != "1|1995-06-01" {
		t.Fatalf("got %v", rows)
	}
	if err := db.ExecScript("INSERT INTO t VALUES ('x', '1995-06-01')"); err == nil {
		t.Fatal("string into float must fail")
	}
}

func TestInsertColumnList(t *testing.T) {
	db := New()
	if err := db.ExecScript("CREATE TABLE t (a INTEGER, b VARCHAR, c INTEGER); INSERT INTO t (c, a) VALUES (3, 1)"); err != nil {
		t.Fatal(err)
	}
	rows := rowStrings(t, db, "SELECT a, b, c FROM t")
	if rows[0] != "1|NULL|3" {
		t.Fatalf("got %v", rows)
	}
}

func TestLike(t *testing.T) {
	db := newPurchaseDB(t)
	rows := rowStrings(t, db, "SELECT DISTINCT item FROM Purchase WHERE item LIKE '%boots' ORDER BY item")
	if strings.Join(rows, ",") != "brown_boots,hiking_boots" {
		t.Fatalf("got %v", rows)
	}
	n, _ := db.QueryInt("SELECT COUNT(DISTINCT item) FROM Purchase WHERE item LIKE '_ackets'")
	if n != 1 {
		t.Fatalf("underscore match = %d", n)
	}
}

func TestOrderByMulti(t *testing.T) {
	db := newPurchaseDB(t)
	rows := rowStrings(t, db, "SELECT cust, item FROM Purchase WHERE price > 100 ORDER BY cust DESC, item ASC")
	want := []string{"cust2|brown_boots", "cust2|jackets", "cust2|jackets", "cust1|hiking_boots", "cust1|jackets", "cust1|ski_pants"}
	if strings.Join(rows, ";") != strings.Join(want, ";") {
		t.Fatalf("got %v", rows)
	}
}

func TestCSVImportExport(t *testing.T) {
	db := New()
	csv := "1,cust1,ski_pants,1995-12-17,140,1\n1,cust1,hiking_boots,1995-12-17,180,\n"
	n, err := db.ImportCSV("P", []string{"tr:int", "cust:string", "item:string", "dt:date", "price:float", "qty:int"}, strings.NewReader(csv))
	if err != nil || n != 2 {
		t.Fatalf("import: %d (%v)", n, err)
	}
	nn, _ := db.QueryInt("SELECT COUNT(*) FROM P WHERE qty IS NULL")
	if nn != 1 {
		t.Fatalf("null import = %d", nn)
	}
	var out strings.Builder
	if err := db.ExportCSV(&out, "SELECT tr, item FROM P ORDER BY item"); err != nil {
		t.Fatal(err)
	}
	want := "tr,item\n1,hiking_boots\n1,ski_pants\n"
	if out.String() != want {
		t.Fatalf("export = %q", out.String())
	}
}

func TestErrorPaths(t *testing.T) {
	db := New()
	cases := []string{
		"SELECT a FROM missing",
		"SELECT missing FROM (SELECT 1 AS a)",
		"INSERT INTO missing VALUES (1)",
		"DROP TABLE missing",
		"DROP VIEW missing",
		"DROP SEQUENCE missing",
		"SELECT t.a FROM (SELECT 1 AS a) u",
	}
	for _, sql := range cases {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("Exec(%q) should fail", sql)
		}
	}
	if err := db.ExecScript("CREATE TABLE t (a INTEGER); CREATE TABLE t (a INTEGER)"); err == nil {
		t.Error("duplicate table must fail")
	}
}

func TestAmbiguousColumn(t *testing.T) {
	db := New()
	if err := db.ExecScript("CREATE TABLE a (x INTEGER); CREATE TABLE b (x INTEGER)"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT x FROM a, b"); err == nil {
		t.Error("ambiguous x must fail")
	}
	if _, err := db.Query("SELECT a.x FROM a, b"); err != nil {
		t.Errorf("qualified x must work: %v", err)
	}
}

func TestFormatResult(t *testing.T) {
	db := newPurchaseDB(t)
	res, err := db.Query("SELECT cust, COUNT(*) AS n FROM Purchase GROUP BY cust ORDER BY cust")
	if err != nil {
		t.Fatal(err)
	}
	s := FormatResult(res)
	if !strings.Contains(s, "cust1") || !strings.Contains(s, "(2 rows)") {
		t.Fatalf("format = %s", s)
	}
}

func TestValueTypesInResult(t *testing.T) {
	db := newPurchaseDB(t)
	res, err := db.Query("SELECT price * qty AS total FROM Purchase WHERE tr = 4 ORDER BY total")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].Type() != value.TypeFloat {
		t.Fatalf("type = %v", res.Rows[0][0].Type())
	}
	if res.Rows[0][0].Float() != 75 || res.Rows[1][0].Float() != 600 {
		t.Fatalf("rows = %v", res.Rows)
	}
}
