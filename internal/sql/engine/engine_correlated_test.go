package engine

import (
	"strings"
	"testing"
)

func correlatedDB(t *testing.T) *Database {
	t.Helper()
	db := New()
	err := db.ExecScript(`
		CREATE TABLE emp (id INTEGER, name VARCHAR, dept INTEGER, salary FLOAT);
		CREATE TABLE dept (id INTEGER, dname VARCHAR);
		INSERT INTO emp VALUES
			(1, 'ann', 10, 120), (2, 'bob', 10, 90),
			(3, 'eve', 20, 200), (4, 'sam', 20, 150),
			(5, 'joe', 30, 80);
		INSERT INTO dept VALUES (10, 'eng'), (20, 'ops'), (30, 'hr');
	`)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCorrelatedExists(t *testing.T) {
	db := correlatedDB(t)
	// Departments with at least one employee above 100.
	rows := rowStrings(t, db, `
		SELECT dname FROM dept d
		WHERE EXISTS (SELECT 1 FROM emp e WHERE e.dept = d.id AND e.salary > 100)
		ORDER BY dname`)
	if strings.Join(rows, ",") != "eng,ops" {
		t.Fatalf("correlated EXISTS = %v", rows)
	}
	// NOT EXISTS: the complement.
	rows = rowStrings(t, db, `
		SELECT dname FROM dept d
		WHERE NOT EXISTS (SELECT 1 FROM emp e WHERE e.dept = d.id AND e.salary > 100)`)
	if strings.Join(rows, ",") != "hr" {
		t.Fatalf("correlated NOT EXISTS = %v", rows)
	}
}

func TestCorrelatedScalarSubquery(t *testing.T) {
	db := correlatedDB(t)
	// Each employee against the max salary of their own department.
	rows := rowStrings(t, db, `
		SELECT name FROM emp e
		WHERE salary = (SELECT MAX(salary) FROM emp x WHERE x.dept = e.dept)
		ORDER BY name`)
	if strings.Join(rows, ",") != "ann,eve,joe" {
		t.Fatalf("per-group max = %v", rows)
	}
	// Correlated scalar in the projection.
	rows = rowStrings(t, db, `
		SELECT d.dname, (SELECT COUNT(*) FROM emp e WHERE e.dept = d.id) AS n
		FROM dept d ORDER BY d.dname`)
	want := []string{"eng|2", "hr|1", "ops|2"}
	if strings.Join(rows, ";") != strings.Join(want, ";") {
		t.Fatalf("projected correlated count = %v", rows)
	}
}

func TestCorrelatedIn(t *testing.T) {
	db := correlatedDB(t)
	// Employees whose department contains someone earning over 180.
	rows := rowStrings(t, db, `
		SELECT name FROM emp e
		WHERE e.dept IN (SELECT x.dept FROM emp x WHERE x.salary > 180 AND x.dept = e.dept)
		ORDER BY name`)
	if strings.Join(rows, ",") != "eve,sam" {
		t.Fatalf("correlated IN = %v", rows)
	}
}

func TestNestedCorrelation(t *testing.T) {
	db := correlatedDB(t)
	// Two levels: departments where every employee earns above the
	// company-wide minimum of OTHER departments' maxima... keep it
	// simpler: departments whose every employee is above 85.
	rows := rowStrings(t, db, `
		SELECT dname FROM dept d
		WHERE NOT EXISTS (
			SELECT 1 FROM emp e
			WHERE e.dept = d.id AND e.salary <= (SELECT MIN(salary) FROM emp) )
		ORDER BY dname`)
	// Company-wide minimum is 80 (joe, hr): hr has an employee at the
	// minimum, others do not.
	if strings.Join(rows, ",") != "eng,ops" {
		t.Fatalf("nested = %v", rows)
	}
}

func TestUncorrelatedStillCached(t *testing.T) {
	db := correlatedDB(t)
	// An uncorrelated subquery with NEXTVAL would advance once per
	// evaluation; caching means it runs exactly once.
	if err := db.ExecScript("CREATE SEQUENCE s"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT name FROM emp WHERE id > (SELECT s.NEXTVAL FROM dept WHERE id = 10)"); err != nil {
		t.Fatal(err)
	}
	seq, _ := db.Catalog().Sequence("s")
	if got := seq.CurrentVal(); got != 2 {
		t.Fatalf("uncorrelated subquery ran %d times, want 1", got-1)
	}
}

func TestCorrelatedErrorsSurface(t *testing.T) {
	db := correlatedDB(t)
	// A genuinely unknown column fails, not silently treated as
	// correlated.
	if _, err := db.Query("SELECT name FROM emp e WHERE EXISTS (SELECT nope FROM dept)"); err == nil {
		t.Fatal("unknown column in subquery accepted")
	}
}
