package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"minerule/internal/sql/pager"
	"minerule/internal/sql/schema"
	"minerule/internal/sql/vfs"
	"minerule/internal/sql/wal"
)

// Fsck walks a database directory offline and verifies its structural
// invariants: the CURRENT pointer names a complete generation, every
// heap page passes its CRC-32C, every heap row decodes, the WAL frames
// chain with monotone LSNs above the snapshot, and its records
// reference objects that exist at their point in the log. With Salvage
// it additionally recovers the longest consistent prefix: it rebuilds
// a missing or dangling CURRENT from the newest verifiable generation,
// truncates torn WAL tails, and removes leftover temporaries and
// partial generations. Heap CRC violations are reported, never
// repaired — the bytes are gone; restore from a checkpoint.
//
// cmd/minerule-fsck is the CLI wrapper. Run it only on a closed
// database: fsck takes no locks.

// FsckOptions configures a check.
type FsckOptions struct {
	// Salvage applies repairs instead of only reporting.
	Salvage bool
}

// FsckProblem is one inconsistency found during the walk.
type FsckProblem struct {
	// Path is the offending file (or directory), Detail the diagnosis.
	Path   string
	Detail string
	// Salvaged reports that the problem was repaired in place.
	Salvaged bool
}

// FsckTable summarizes one table of the live generation.
type FsckTable struct {
	Name string
	Heap string
	// Pages is the heap page count, Rows the decoded row count.
	Pages uint32
	Rows  int
	// CorruptPages lists pages failing their checksum (rows on them are
	// lost; Rows counts only rows before the first corrupt page).
	CorruptPages []uint32
}

// FsckReport is the result of one Fsck run.
type FsckReport struct {
	Dir        string
	Generation uint64
	Tables     []FsckTable
	// WalRecords is the count of intact records in the live log;
	// WalTornBytes the bytes past the valid prefix (0 when clean).
	WalRecords   int
	WalValidEnd  int64
	WalTornBytes int64
	LastLSN      uint64
	Problems     []FsckProblem
	// Empty reports a directory with no database at all (not a problem).
	Empty bool
}

// Healthy reports whether no problems remain unrepaired.
func (r *FsckReport) Healthy() bool {
	for _, p := range r.Problems {
		if !p.Salvaged {
			return false
		}
	}
	return true
}

// String renders the report as indented text, one line per fact.
func (r *FsckReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:\n", r.Dir)
	if r.Empty {
		b.WriteString("  empty (no database)\n")
		return b.String()
	}
	fmt.Fprintf(&b, "  generation %d, %d table(s)\n", r.Generation, len(r.Tables))
	for _, t := range r.Tables {
		fmt.Fprintf(&b, "  table %-20s %5d row(s) in %d page(s) [%s]\n", t.Name, t.Rows, t.Pages, t.Heap)
		for _, pg := range t.CorruptPages {
			fmt.Fprintf(&b, "    page %d: CRC mismatch (data lost)\n", pg)
		}
	}
	fmt.Fprintf(&b, "  wal: %d record(s), last LSN %d, valid to byte %d", r.WalRecords, r.LastLSN, r.WalValidEnd)
	if r.WalTornBytes > 0 {
		fmt.Fprintf(&b, " (+%d torn byte(s))", r.WalTornBytes)
	}
	b.WriteString("\n")
	for _, p := range r.Problems {
		state := "PROBLEM"
		if p.Salvaged {
			state = "salvaged"
		}
		fmt.Fprintf(&b, "  %s: %s: %s\n", state, p.Path, p.Detail)
	}
	if r.Healthy() {
		b.WriteString("  ok\n")
	}
	return b.String()
}

func (r *FsckReport) problem(path, detail string, salvaged bool) {
	r.Problems = append(r.Problems, FsckProblem{Path: path, Detail: detail, Salvaged: salvaged})
}

// Fsck verifies (and with opt.Salvage repairs) the database directory
// at dir on fsys. The returned report is non-nil whenever the
// directory could be listed; the error covers only I/O failures that
// stop the walk itself.
func Fsck(fsys vfs.FS, dir string, opt FsckOptions) (*FsckReport, error) {
	r := &FsckReport{Dir: dir}
	names, err := fsys.ReadDir(dir)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			r.Empty = true
			return r, nil
		}
		return nil, err
	}

	gens := listGenerations(fsys, dir)
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })

	cur, err := fsys.ReadFile(filepath.Join(dir, currentFile))
	gen := uint64(0)
	haveCurrent := false
	switch {
	case errors.Is(err, fs.ErrNotExist):
		if len(gens) == 0 {
			r.Empty = true
			return r, nil
		}
		r.problem(currentFile, "missing, but generation data present", false)
	case err != nil:
		return nil, err
	default:
		g, perr := strconv.ParseUint(strings.TrimSpace(string(cur)), 10, 64)
		if perr != nil {
			r.problem(currentFile, "unparsable content "+strconv.Quote(strings.TrimSpace(string(cur))), false)
		} else if !verifyGeneration(fsys, dir, g) {
			r.problem(currentFile, fmt.Sprintf("points at generation %d, which is missing or incomplete", g), false)
		} else {
			gen, haveCurrent = g, true
		}
	}

	// A broken pointer: find the newest generation that verifies and,
	// under Salvage, point CURRENT back at it.
	if !haveCurrent {
		for _, g := range gens {
			if verifyGeneration(fsys, dir, g) {
				gen = g
				break
			}
		}
		if gen == 0 {
			r.problem(dir, "no complete generation found; the database is unrecoverable", false)
			return r, nil
		}
		last := &r.Problems[len(r.Problems)-1]
		if opt.Salvage {
			if err := writeCurrent(fsys, dir, gen); err != nil {
				return nil, err
			}
			last.Salvaged = true
			last.Detail += fmt.Sprintf("; CURRENT rebuilt to generation %d", gen)
		} else {
			last.Detail += fmt.Sprintf("; salvage would rebuild CURRENT to generation %d", gen)
		}
	}
	r.Generation = gen

	// Leftovers: a CURRENT.tmp from an interrupted swap, and any
	// generation or log that is not the live one (a retired generation
	// whose removal failed, or a discarded half-checkpoint).
	for _, name := range names {
		leaked := false
		switch {
		case name == currentFile+".tmp":
			leaked = true
		case strings.HasPrefix(name, "gen-") && name != fmt.Sprintf("gen-%d", gen):
			leaked = true
		case strings.HasPrefix(name, "wal-") && name != fmt.Sprintf("wal-%d.log", gen):
			leaked = true
		}
		if !leaked {
			continue
		}
		if opt.Salvage {
			if err := fsys.RemoveAll(filepath.Join(dir, name)); err != nil {
				return nil, err
			}
			r.problem(name, "leaked checkpoint artifact removed", true)
		} else {
			r.problem(name, "leaked checkpoint artifact (salvage removes it)", false)
		}
	}

	snap := fsckGeneration(fsys, dir, gen, r)
	fsckWal(fsys, dir, gen, snap, r, opt.Salvage)
	return r, nil
}

// verifyGeneration reports whether gen's directory holds a parsable
// catalog whose heap files all exist. Existence is checked against the
// directory listing, not by opening: vfs.FS.Open creates missing files,
// and a verifier must never modify what it inspects.
func verifyGeneration(fsys vfs.FS, dir string, gen uint64) bool {
	gd := genDir(dir, gen)
	b, err := fsys.ReadFile(filepath.Join(gd, "catalog.json"))
	if err != nil {
		return false
	}
	var snap snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return false
	}
	names, err := fsys.ReadDir(gd)
	if err != nil {
		return false
	}
	have := make(map[string]bool, len(names))
	for _, n := range names {
		have[n] = true
	}
	for _, st := range snap.Tables {
		if !have[st.Heap] {
			return false
		}
	}
	return true
}

func writeCurrent(fsys vfs.FS, dir string, gen uint64) error {
	tmp := filepath.Join(dir, currentFile+".tmp")
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	_, err = f.Write([]byte(strconv.FormatUint(gen, 10) + "\n"))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, currentFile)); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(dir)
}

// fsckGeneration CRC-scans every heap page and decodes every row of
// the live generation, recording per-table stats and corruption.
func fsckGeneration(fsys vfs.FS, dir string, gen uint64, r *FsckReport) *snapshot {
	gd := genDir(dir, gen)
	b, err := fsys.ReadFile(filepath.Join(gd, "catalog.json"))
	if err != nil {
		r.problem(filepath.Join(gd, "catalog.json"), "unreadable: "+err.Error(), false)
		return nil
	}
	var snap snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		r.problem(filepath.Join(gd, "catalog.json"), "corrupt JSON: "+err.Error(), false)
		return nil
	}
	r.LastLSN = snap.LastLSN
	pool := pager.NewPool(pager.DefaultPoolPages)
	for _, st := range snap.Tables {
		ft := FsckTable{Name: st.Name, Heap: st.Heap}
		path := filepath.Join(gd, st.Heap)
		f, err := pager.OpenFile(fsys, path)
		if err != nil {
			r.problem(path, "unopenable: "+err.Error(), false)
			r.Tables = append(r.Tables, ft)
			continue
		}
		ft.Pages, _ = f.Pages()
		// Page-level CRC sweep first: it localizes damage ScanHeap would
		// only report as one opaque failure.
		for no := uint32(0); no < ft.Pages; no++ {
			if _, err := pool.Get(f, no); err != nil {
				var cpe *pager.CorruptPageError
				if errors.As(err, &cpe) {
					ft.CorruptPages = append(ft.CorruptPages, no)
					r.problem(path, fmt.Sprintf("page %d fails CRC-32C (rows on it are lost; restore from a checkpoint)", no), false)
					continue
				}
				r.problem(path, fmt.Sprintf("page %d unreadable: %v", no, err), false)
			}
		}
		if len(ft.CorruptPages) == 0 {
			err = pager.ScanHeap(pool, f, func(rec []byte) error {
				row, rest, derr := schema.DecodeRowBinary(rec)
				if derr != nil {
					return derr
				}
				if len(rest) != 0 || len(row) != len(st.Cols) {
					return fmt.Errorf("row shape mismatch (%d values, %d trailing bytes)", len(row), len(rest))
				}
				ft.Rows++
				return nil
			})
			if err != nil {
				r.problem(path, "row decode: "+err.Error(), false)
			}
		}
		pool.DropFile(f)
		f.Close()
		r.Tables = append(r.Tables, ft)
	}
	return &snap
}

// fsckWal structurally replays the live log, checking LSN monotonicity
// and that every record references an object that exists at its point
// in the log (tables from the snapshot plus earlier CREATEs).
func fsckWal(fsys vfs.FS, dir string, gen uint64, snap *snapshot, r *FsckReport, salvage bool) {
	path := walPath(dir, gen)
	tables := map[string]bool{}
	seqs := map[string]bool{}
	if snap != nil {
		for _, st := range snap.Tables {
			tables[st.Name] = true
		}
		for _, sq := range snap.Sequences {
			seqs[sq.Name] = true
		}
	}
	floor := r.LastLSN
	prev := uint64(0)
	// check validates one record's dictionary references, recursing into
	// a commit frame's sub-records (which carry the frame's LSN).
	var check func(lsn uint64, rec *wal.Record)
	check = func(lsn uint64, rec *wal.Record) {
		switch rec.Kind {
		case wal.KindCreateTable:
			tables[rec.Name] = true
		case wal.KindDropTable:
			delete(tables, rec.Name)
		case wal.KindCreateSequence:
			seqs[rec.Name] = true
		case wal.KindDropSequence:
			delete(seqs, rec.Name)
		case wal.KindInsert, wal.KindTruncate, wal.KindReplace:
			if !tables[rec.Name] {
				r.problem(path, fmt.Sprintf("LSN %d: %s references unknown table %q", lsn, rec.Kind, rec.Name), false)
			}
		case wal.KindSeqBump:
			if !seqs[rec.Name] {
				r.problem(path, fmt.Sprintf("LSN %d: SEQ BUMP references unknown sequence %q", lsn, rec.Name), false)
			}
		case wal.KindTxn:
			for _, sub := range rec.Subs {
				check(lsn, sub)
			}
		}
	}
	validEnd, lastLSN, tornTail, err := wal.Replay(fsys, path, func(rec *wal.Record) error {
		r.WalRecords++
		if rec.LSN <= prev {
			r.problem(path, fmt.Sprintf("LSN %d after %d: log is not monotone", rec.LSN, prev), false)
		}
		prev = rec.LSN
		if rec.LSN <= floor {
			return nil // below the snapshot: replay skips it, shape is irrelevant
		}
		check(rec.LSN, rec)
		return nil
	})
	if err != nil {
		r.problem(path, "unreadable: "+err.Error(), false)
		return
	}
	r.WalValidEnd = validEnd
	r.WalTornBytes = tornTail
	if lastLSN > r.LastLSN {
		r.LastLSN = lastLSN
	}
	if tornTail > 0 {
		if salvage {
			f, err := fsys.Open(path)
			if err == nil {
				err = f.Truncate(validEnd)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				r.problem(path, fmt.Sprintf("%d torn tail byte(s); truncation failed: %v", tornTail, err), false)
			} else {
				r.problem(path, fmt.Sprintf("%d torn tail byte(s) truncated at offset %d", tornTail, validEnd), true)
				r.WalTornBytes = 0
			}
		} else {
			r.problem(path, fmt.Sprintf("%d torn tail byte(s) past offset %d (normal after a crash; recovery or salvage truncates them)", tornTail, validEnd), false)
		}
	}
}
