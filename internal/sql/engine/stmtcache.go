package engine

import (
	"sync"

	"minerule/internal/sql/parse"
	"minerule/internal/sql/semck"
)

// stmtCacheLimit bounds the number of distinct statement texts kept.
// The mining kernel's generated SQL cycles through a small set of
// templates, so the bound exists only to stop pathological workloads
// (e.g. millions of distinct literal-bearing INSERTs) from growing the
// cache without end. Eviction is second-chance (clock): entries touched
// since the hand last passed survive, so the kernel's hot Q0–Q11
// templates stay cached while one-shot statements cycle through the
// cold slots.
const stmtCacheLimit = 1024

// clockEntry is one cached program with its second-chance bit.
type clockEntry[V any] struct {
	key string
	v   V
	ref bool
}

// clockCache is a bounded map with second-chance (clock) eviction: get
// marks the entry referenced; put, when full, sweeps the ring clearing
// reference bits and replaces the first unreferenced entry. The sweep
// terminates within two revolutions. Not safe for concurrent use — the
// owning stmtCache serializes access.
type clockCache[V any] struct {
	entries map[string]*clockEntry[V]
	ring    []*clockEntry[V]
	hand    int
}

func (c *clockCache[V]) get(k string) (V, bool) {
	e, ok := c.entries[k]
	if !ok {
		var zero V
		return zero, false
	}
	e.ref = true
	return e.v, true
}

// put inserts k→v, evicting one cold entry when the cache is at limit;
// it reports whether an eviction happened.
func (c *clockCache[V]) put(k string, v V, limit int) bool {
	if c.entries == nil {
		c.entries = make(map[string]*clockEntry[V])
	}
	if e, ok := c.entries[k]; ok {
		e.v = v
		return false
	}
	e := &clockEntry[V]{key: k, v: v}
	if len(c.ring) < limit {
		c.entries[k] = e
		c.ring = append(c.ring, e)
		return false
	}
	for {
		cand := c.ring[c.hand]
		if cand.ref {
			cand.ref = false
			c.hand = (c.hand + 1) % len(c.ring)
			continue
		}
		delete(c.entries, cand.key)
		c.ring[c.hand] = e
		c.entries[k] = e
		c.hand = (c.hand + 1) % len(c.ring)
		return true
	}
}

// prepared is one cached program: the parsed statement(s) plus the
// result of the prepare-time semantic check, keyed by the catalog
// version the check ran against. A cache hit at the same version reuses
// the verdict without touching the dictionary; a hit after DDL rechecks
// once and re-stamps. err carries the statements themselves untouched —
// the engine still hands the parsed form out on a failed check so
// EXPLAIN can report the diagnostic as its plan.
type prepared struct {
	st  parse.Statement
	sts []parse.Statement // script form
	ver uint64
	err error
}

// stmtCache is the engine's prepared-program cache: statement text →
// parsed form plus semantic verdict, so each distinct text is parsed
// once and semantically checked once per catalog version, then
// re-executed many times. Name resolution still happens at bind time
// inside the executor on every execution, so a cached program can never
// observe a stale catalog; the version stamp only guards the cached
// semck verdict. (Catalog-dependent plan state, like resolved view
// bodies, is cached in the executor keyed by storage.Catalog.Version.)
type stmtCache struct {
	mu        sync.Mutex
	stmts     clockCache[*prepared] // guarded by mu
	scripts   clockCache[*prepared] // guarded by mu
	hits      uint64                // guarded by mu
	misses    uint64                // guarded by mu
	evictions uint64                // guarded by mu
}

// StatementCacheStats reports the prepared-program cache's hit and miss
// counts since the database was created (for tests and tooling).
func (db *Database) StatementCacheStats() (hits, misses uint64) {
	db.cache.mu.Lock()
	defer db.cache.mu.Unlock()
	return db.cache.hits, db.cache.misses
}

// StatementCacheEvictions reports how many cached programs second-chance
// eviction has discarded since the database was created.
func (db *Database) StatementCacheEvictions() uint64 {
	db.cache.mu.Lock()
	defer db.cache.mu.Unlock()
	return db.cache.evictions
}

// prepare returns the parsed form of one statement, from cache when the
// exact text has been seen before, together with the prepare-time
// semantic verdict. On a non-nil error the statement is still returned
// when parsing succeeded (the error is then a semantic diagnostic, not
// a syntax failure), so callers can inspect the statement kind.
func (db *Database) prepare(sql string) (parse.Statement, error) {
	c := &db.cache
	ver := db.cat.Version()
	c.mu.Lock()
	if p, ok := c.stmts.get(sql); ok {
		c.hits++
		if p.ver != ver {
			p.err = semck.Check(semck.FromStorage(db.cat), p.st, sql)
			p.ver = ver
		}
		st, err := p.st, p.err
		c.mu.Unlock()
		db.met.StmtCacheHits.Inc()
		return st, err
	}
	c.misses++
	c.mu.Unlock()
	db.met.StmtCacheMisses.Inc()

	st, err := parse.Parse(sql)
	if err != nil {
		return nil, err
	}
	cerr := semck.Check(semck.FromStorage(db.cat), st, sql)
	c.mu.Lock()
	if c.stmts.put(sql, &prepared{st: st, ver: ver, err: cerr}, stmtCacheLimit) {
		c.evictions++
		db.met.StmtCacheEvictions.Inc()
	}
	c.mu.Unlock()
	return st, cerr
}

// checkScript semantically checks a statement sequence in order,
// threading DDL effects through an overlay so later statements see
// tables and sequences earlier ones create. Offsets in diagnostics are
// script-relative, matching how the parser assigned them.
func (db *Database) checkScript(sts []parse.Statement, src string) error {
	ov := semck.NewOverlay(semck.FromStorage(db.cat))
	for _, st := range sts {
		if err := semck.Check(ov, st, src); err != nil {
			return err
		}
		ov.Apply(st)
	}
	return nil
}

// prepareScript is prepare for semicolon-separated scripts.
func (db *Database) prepareScript(sql string) ([]parse.Statement, error) {
	c := &db.cache
	ver := db.cat.Version()
	c.mu.Lock()
	if p, ok := c.scripts.get(sql); ok {
		c.hits++
		if p.ver != ver {
			p.err = db.checkScript(p.sts, sql)
			p.ver = ver
		}
		sts, err := p.sts, p.err
		c.mu.Unlock()
		db.met.StmtCacheHits.Inc()
		if err != nil {
			return nil, err
		}
		return sts, nil
	}
	c.misses++
	c.mu.Unlock()
	db.met.StmtCacheMisses.Inc()

	sts, err := parse.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	cerr := db.checkScript(sts, sql)
	c.mu.Lock()
	if c.scripts.put(sql, &prepared{sts: sts, ver: ver, err: cerr}, stmtCacheLimit) {
		c.evictions++
		db.met.StmtCacheEvictions.Inc()
	}
	c.mu.Unlock()
	if cerr != nil {
		return nil, cerr
	}
	return sts, nil
}
