package engine

import (
	"sync"

	"minerule/internal/sql/parse"
	"minerule/internal/sql/semck"
)

// stmtCacheLimit bounds the number of distinct statement texts kept.
// The mining kernel's generated SQL cycles through a small set of
// templates, so the bound exists only to stop pathological workloads
// (e.g. millions of distinct literal-bearing INSERTs) from growing the
// cache without end. Eviction is second-chance (clock): entries touched
// since the hand last passed survive, so the kernel's hot Q0–Q11
// templates stay cached while one-shot statements cycle through the
// cold slots.
const stmtCacheLimit = 1024

// clockEntry is one cached program with its second-chance bit.
type clockEntry[V any] struct {
	key string
	v   V
	ref bool
}

// clockCache is a bounded map with second-chance (clock) eviction: get
// marks the entry referenced; put, when full, sweeps the ring clearing
// reference bits and replaces the first unreferenced entry. The sweep
// terminates within two revolutions. Not safe for concurrent use — the
// owning stmtCache serializes access.
type clockCache[V any] struct {
	entries map[string]*clockEntry[V]
	ring    []*clockEntry[V]
	hand    int
}

func (c *clockCache[V]) get(k string) (V, bool) {
	e, ok := c.entries[k]
	if !ok {
		var zero V
		return zero, false
	}
	e.ref = true
	return e.v, true
}

// put inserts k→v, evicting one cold entry when the cache is at limit;
// it reports whether an eviction happened.
func (c *clockCache[V]) put(k string, v V, limit int) bool {
	if c.entries == nil {
		c.entries = make(map[string]*clockEntry[V])
	}
	if e, ok := c.entries[k]; ok {
		e.v = v
		return false
	}
	e := &clockEntry[V]{key: k, v: v}
	if len(c.ring) < limit {
		c.entries[k] = e
		c.ring = append(c.ring, e)
		return false
	}
	for {
		cand := c.ring[c.hand]
		if cand.ref {
			cand.ref = false
			c.hand = (c.hand + 1) % len(c.ring)
			continue
		}
		delete(c.entries, cand.key)
		c.ring[c.hand] = e
		c.entries[k] = e
		c.hand = (c.hand + 1) % len(c.ring)
		return true
	}
}

// prepared is one cached program: the parsed statement(s) plus the
// result of the prepare-time semantic check, keyed by the catalog
// version the check ran against. A statement executes under a
// transaction snapshot, so the verdict is validated against the
// snapshot's catalog version (txn.Txn.CatalogVersion) — a prepared
// program racing concurrent DDL rechecks against exactly the dictionary
// state its own statement will bind against, never a newer one. A hit
// at the same version reuses the verdict without touching the
// dictionary. err carries the statements themselves untouched — the
// engine still hands the parsed form out on a failed check so EXPLAIN
// can report the diagnostic as its plan.
// The verdict fields (checked/ver/err) are accessed only under the
// owning stmtCache's mu; st and sts are immutable once cached.
type prepared struct {
	st      parse.Statement
	sts     []parse.Statement // script form
	checked bool              // ver/err valid
	ver     uint64
	err     error
}

// stmtCache is the engine's prepared-program cache: statement text →
// parsed form plus semantic verdict, so each distinct text is parsed
// once and semantically checked once per catalog version, then
// re-executed many times. Name resolution still happens at bind time
// inside the executor on every execution, so a cached program can never
// observe a stale catalog; the version stamp only guards the cached
// semck verdict. (Catalog-dependent plan state, like resolved view
// bodies, is cached in the executor keyed by storage.Catalog.Version.)
type stmtCache struct {
	mu        sync.Mutex
	stmts     clockCache[*prepared] // guarded by mu
	scripts   clockCache[*prepared] // guarded by mu
	hits      uint64                // guarded by mu
	misses    uint64                // guarded by mu
	evictions uint64                // guarded by mu
}

// StatementCacheStats reports the prepared-program cache's hit and miss
// counts since the database was created (for tests and tooling).
func (db *Database) StatementCacheStats() (hits, misses uint64) {
	db.cache.mu.Lock()
	defer db.cache.mu.Unlock()
	return db.cache.hits, db.cache.misses
}

// StatementCacheEvictions reports how many cached programs second-chance
// eviction has discarded since the database was created.
func (db *Database) StatementCacheEvictions() uint64 {
	db.cache.mu.Lock()
	defer db.cache.mu.Unlock()
	return db.cache.evictions
}

// parseStmt returns the parsed form of one statement, from cache when
// the exact text has been seen before. The semantic check is deferred
// to verdict, which the engine calls with the executing transaction's
// snapshot catalog. Parse errors are not cached (they cannot become
// valid without the text changing, and failed texts rarely repeat).
func (db *Database) parseStmt(sql string) (*prepared, error) {
	c := &db.cache
	c.mu.Lock()
	if p, ok := c.stmts.get(sql); ok {
		c.hits++
		c.mu.Unlock()
		db.met.StmtCacheHits.Inc()
		return p, nil
	}
	c.misses++
	c.mu.Unlock()
	db.met.StmtCacheMisses.Inc()

	st, err := parse.Parse(sql)
	if err != nil {
		return nil, err
	}
	p := &prepared{st: st}
	c.mu.Lock()
	if c.stmts.put(sql, p, stmtCacheLimit) {
		c.evictions++
		db.met.StmtCacheEvictions.Inc()
	}
	c.mu.Unlock()
	return p, nil
}

// verdict returns the prepare-time semantic verdict for p as of catalog
// version ver, rechecking against scat — the executing statement's view
// of the dictionary (its transaction snapshot, or the live catalog for
// Prepare) — when the cached verdict was stamped under a different
// version. Catalog versions identify dictionary states exactly (every
// DDL publish advances the version), so a hit at the same version is
// sound no matter which snapshot produced it.
func (db *Database) verdict(p *prepared, src string, scat semck.Catalog, ver uint64) error {
	c := &db.cache
	c.mu.Lock()
	if p.checked && p.ver == ver {
		err := p.err
		c.mu.Unlock()
		return err
	}
	c.mu.Unlock()
	err := semck.Check(scat, p.st, src)
	c.mu.Lock()
	p.checked, p.ver, p.err = true, ver, err
	c.mu.Unlock()
	return err
}

// checkScript semantically checks a statement sequence in order,
// threading DDL effects through an overlay so later statements see
// tables and sequences earlier ones create. Offsets in diagnostics are
// script-relative, matching how the parser assigned them.
func (db *Database) checkScript(sts []parse.Statement, src string) error {
	ov := semck.NewOverlay(semck.FromStorage(db.cat))
	for _, st := range sts {
		if err := semck.Check(ov, st, src); err != nil {
			return err
		}
		ov.Apply(st)
	}
	return nil
}

// prepareScript is parseStmt+verdict for semicolon-separated scripts:
// the whole sequence is checked as a unit against the live catalog
// (with DDL effects threaded through an overlay), so the per-statement
// verdict path is bypassed at execution.
func (db *Database) prepareScript(sql string) ([]parse.Statement, error) {
	c := &db.cache
	ver := db.cat.Version()
	c.mu.Lock()
	if p, ok := c.scripts.get(sql); ok {
		c.hits++
		if !p.checked || p.ver != ver {
			p.err = db.checkScript(p.sts, sql)
			p.checked, p.ver = true, ver
		}
		sts, err := p.sts, p.err
		c.mu.Unlock()
		db.met.StmtCacheHits.Inc()
		if err != nil {
			return nil, err
		}
		return sts, nil
	}
	c.misses++
	c.mu.Unlock()
	db.met.StmtCacheMisses.Inc()

	sts, err := parse.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	cerr := db.checkScript(sts, sql)
	c.mu.Lock()
	if c.scripts.put(sql, &prepared{sts: sts, checked: true, ver: ver, err: cerr}, stmtCacheLimit) {
		c.evictions++
		db.met.StmtCacheEvictions.Inc()
	}
	c.mu.Unlock()
	if cerr != nil {
		return nil, cerr
	}
	return sts, nil
}
