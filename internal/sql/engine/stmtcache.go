package engine

import (
	"sync"

	"minerule/internal/sql/parse"
)

// stmtCacheLimit bounds the number of distinct statement texts kept.
// The mining kernel's generated SQL cycles through a small set of
// templates, so the bound exists only to stop pathological workloads
// (e.g. millions of distinct literal-bearing INSERTs) from growing the
// cache without end. Eviction is second-chance (clock): entries touched
// since the hand last passed survive, so the kernel's hot Q0–Q11
// templates stay cached while one-shot statements cycle through the
// cold slots.
const stmtCacheLimit = 1024

// clockEntry is one cached program with its second-chance bit.
type clockEntry[V any] struct {
	key string
	v   V
	ref bool
}

// clockCache is a bounded map with second-chance (clock) eviction: get
// marks the entry referenced; put, when full, sweeps the ring clearing
// reference bits and replaces the first unreferenced entry. The sweep
// terminates within two revolutions. Not safe for concurrent use — the
// owning stmtCache serializes access.
type clockCache[V any] struct {
	entries map[string]*clockEntry[V]
	ring    []*clockEntry[V]
	hand    int
}

func (c *clockCache[V]) get(k string) (V, bool) {
	e, ok := c.entries[k]
	if !ok {
		var zero V
		return zero, false
	}
	e.ref = true
	return e.v, true
}

// put inserts k→v, evicting one cold entry when the cache is at limit;
// it reports whether an eviction happened.
func (c *clockCache[V]) put(k string, v V, limit int) bool {
	if c.entries == nil {
		c.entries = make(map[string]*clockEntry[V])
	}
	if e, ok := c.entries[k]; ok {
		e.v = v
		return false
	}
	e := &clockEntry[V]{key: k, v: v}
	if len(c.ring) < limit {
		c.entries[k] = e
		c.ring = append(c.ring, e)
		return false
	}
	for {
		cand := c.ring[c.hand]
		if cand.ref {
			cand.ref = false
			c.hand = (c.hand + 1) % len(c.ring)
			continue
		}
		delete(c.entries, cand.key)
		c.ring[c.hand] = e
		c.entries[k] = e
		c.hand = (c.hand + 1) % len(c.ring)
		return true
	}
}

// stmtCache is the engine's prepared-program cache: statement text →
// parsed form, so each distinct text is parsed once and re-executed
// many times. Entries are pure syntax — name resolution happens at bind
// time inside the executor on every execution — so a cached program can
// never observe a stale catalog and no DDL-based invalidation is
// needed here. (Catalog-dependent plan state, like resolved view
// bodies, is cached in the executor keyed by storage.Catalog.Version.)
type stmtCache struct {
	mu        sync.Mutex
	stmts     clockCache[parse.Statement]
	scripts   clockCache[[]parse.Statement]
	hits      uint64
	misses    uint64
	evictions uint64
}

// StatementCacheStats reports the prepared-program cache's hit and miss
// counts since the database was created (for tests and tooling).
func (db *Database) StatementCacheStats() (hits, misses uint64) {
	db.cache.mu.Lock()
	defer db.cache.mu.Unlock()
	return db.cache.hits, db.cache.misses
}

// StatementCacheEvictions reports how many cached programs second-chance
// eviction has discarded since the database was created.
func (db *Database) StatementCacheEvictions() uint64 {
	db.cache.mu.Lock()
	defer db.cache.mu.Unlock()
	return db.cache.evictions
}

// prepare returns the parsed form of one statement, from cache when the
// exact text has been seen before.
func (db *Database) prepare(sql string) (parse.Statement, error) {
	c := &db.cache
	c.mu.Lock()
	if st, ok := c.stmts.get(sql); ok {
		c.hits++
		c.mu.Unlock()
		db.met.StmtCacheHits.Inc()
		return st, nil
	}
	c.misses++
	c.mu.Unlock()
	db.met.StmtCacheMisses.Inc()

	st, err := parse.Parse(sql)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.stmts.put(sql, st, stmtCacheLimit) {
		c.evictions++
		db.met.StmtCacheEvictions.Inc()
	}
	c.mu.Unlock()
	return st, nil
}

// prepareScript is prepare for semicolon-separated scripts.
func (db *Database) prepareScript(sql string) ([]parse.Statement, error) {
	c := &db.cache
	c.mu.Lock()
	if sts, ok := c.scripts.get(sql); ok {
		c.hits++
		c.mu.Unlock()
		db.met.StmtCacheHits.Inc()
		return sts, nil
	}
	c.misses++
	c.mu.Unlock()
	db.met.StmtCacheMisses.Inc()

	sts, err := parse.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.scripts.put(sql, sts, stmtCacheLimit) {
		c.evictions++
		db.met.StmtCacheEvictions.Inc()
	}
	c.mu.Unlock()
	return sts, nil
}
