package engine

import (
	"sync"

	"minerule/internal/sql/parse"
)

// stmtCacheLimit bounds the number of distinct statement texts kept.
// The mining kernel's generated SQL cycles through a small set of
// templates, so the bound exists only to stop pathological workloads
// (e.g. millions of distinct literal-bearing INSERTs) from growing the
// cache without end; eviction is a full flush, which is trivially
// correct and costs one re-parse per live statement afterwards.
const stmtCacheLimit = 1024

// stmtCache is the engine's prepared-program cache: statement text →
// parsed form, so each distinct text is parsed once and re-executed
// many times. Entries are pure syntax — name resolution happens at bind
// time inside the executor on every execution — so a cached program can
// never observe a stale catalog and no DDL-based invalidation is
// needed here. (Catalog-dependent plan state, like resolved view
// bodies, is cached in the executor keyed by storage.Catalog.Version.)
type stmtCache struct {
	mu      sync.Mutex
	stmts   map[string]parse.Statement
	scripts map[string][]parse.Statement
	hits    uint64
	misses  uint64
}

// StatementCacheStats reports the prepared-program cache's hit and miss
// counts since the database was created (for tests and tooling).
func (db *Database) StatementCacheStats() (hits, misses uint64) {
	db.cache.mu.Lock()
	defer db.cache.mu.Unlock()
	return db.cache.hits, db.cache.misses
}

// prepare returns the parsed form of one statement, from cache when the
// exact text has been seen before.
func (db *Database) prepare(sql string) (parse.Statement, error) {
	c := &db.cache
	c.mu.Lock()
	if st, ok := c.stmts[sql]; ok {
		c.hits++
		c.mu.Unlock()
		return st, nil
	}
	c.misses++
	c.mu.Unlock()

	st, err := parse.Parse(sql)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.stmts == nil || len(c.stmts) >= stmtCacheLimit {
		c.stmts = make(map[string]parse.Statement)
	}
	c.stmts[sql] = st
	c.mu.Unlock()
	return st, nil
}

// prepareScript is prepare for semicolon-separated scripts.
func (db *Database) prepareScript(sql string) ([]parse.Statement, error) {
	c := &db.cache
	c.mu.Lock()
	if sts, ok := c.scripts[sql]; ok {
		c.hits++
		c.mu.Unlock()
		return sts, nil
	}
	c.misses++
	c.mu.Unlock()

	sts, err := parse.ParseScript(sql)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	if c.scripts == nil || len(c.scripts) >= stmtCacheLimit {
		c.scripts = make(map[string][]parse.Statement)
	}
	c.scripts[sql] = sts
	c.mu.Unlock()
	return sts, nil
}
