package engine

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	db := newPurchaseDB(t)
	err := db.ExecScript(`
		CREATE VIEW Expensive AS SELECT cust, item FROM Purchase WHERE price >= 150;
		CREATE VIEW Both AS SELECT cust FROM Expensive GROUP BY cust;
		CREATE SEQUENCE ids;
	`)
	if err != nil {
		t.Fatal(err)
	}
	// Advance the sequence so restoration is observable.
	if _, err := db.Exec("SELECT ids.NEXTVAL FROM Purchase WHERE tr = 1"); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}

	db2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Rows and types survive.
	n, err := db2.QueryInt("SELECT COUNT(*) FROM Purchase WHERE dt = DATE '1995-12-18' AND price > 100")
	if err != nil || n != 3 {
		t.Fatalf("typed query after load = %d (%v)", n, err)
	}
	// Views survive, including the view-over-view dependency.
	n, err = db2.QueryInt("SELECT COUNT(*) FROM Both")
	if err != nil || n != 2 {
		t.Fatalf("chained view after load = %d (%v)", n, err)
	}
	// Sequences resume where they left off.
	s1, _ := db.Catalog().Sequence("ids")
	s2, ok := db2.Catalog().Sequence("ids")
	if !ok || s2.CurrentVal() != s1.CurrentVal() {
		t.Fatalf("sequence = %d, want %d", s2.CurrentVal(), s1.CurrentVal())
	}
}

func TestSaveLoadNulls(t *testing.T) {
	dir := t.TempDir()
	db := New()
	if err := db.ExecScript("CREATE TABLE t (a INTEGER, b VARCHAR); INSERT INTO t VALUES (1, NULL), (NULL, 'x')"); err != nil {
		t.Fatal(err)
	}
	if err := db.Save(dir); err != nil {
		t.Fatal(err)
	}
	db2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := db2.QueryInt("SELECT COUNT(*) FROM t WHERE a IS NULL")
	if n != 1 {
		t.Fatalf("null int lost: %d", n)
	}
	n, _ = db2.QueryInt("SELECT COUNT(*) FROM t WHERE b IS NULL")
	if n != 1 {
		t.Fatalf("null string lost: %d", n)
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load(t.TempDir()); err == nil {
		t.Error("empty dir accepted")
	}
	dir := t.TempDir()
	if err := writeFile(filepath.Join(dir, "manifest.json"), "{bad json"); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "manifest") {
		t.Errorf("bad manifest: %v", err)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
