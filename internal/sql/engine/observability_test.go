package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func obsDB(t *testing.T) *Database {
	t.Helper()
	db := New()
	if err := db.ExecScript(`
		CREATE TABLE s (tid INTEGER, item VARCHAR, price FLOAT);
		INSERT INTO s VALUES (1, 'ski_pants', 120.0);
		INSERT INTO s VALUES (1, 'hiking_boots', 180.0);
		INSERT INTO s VALUES (2, 'col_shirts', 25.0);
		INSERT INTO s VALUES (2, 'brown_boots', 150.0);
		INSERT INTO s VALUES (2, 'jackets', 300.0);
		INSERT INTO s VALUES (3, 'jackets', 300.0);
	`); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestExplainStatement proves EXPLAIN returns the resolved operator tree
// with per-node row counts instead of the query rows.
func TestExplainStatement(t *testing.T) {
	db := obsDB(t)
	res, err := db.Query("EXPLAIN SELECT item, COUNT(*) FROM s WHERE price > 100 GROUP BY item")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Schema.Col(0).Name; got != "QUERY PLAN" {
		t.Fatalf("column = %q, want QUERY PLAN", got)
	}
	var plan strings.Builder
	for _, r := range res.Rows {
		plan.WriteString(r[0].String())
		plan.WriteByte('\n')
	}
	out := plan.String()
	for _, want := range []string{
		"query rows=4",
		"select",
		"scan table=s rows=6",
		"filter",
		"rows_in=6 rows=5",
		"group groups=4 rows=4",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("plan missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "time=") {
		t.Fatalf("plain EXPLAIN should not include timings:\n%s", out)
	}
}

// TestExplainAnalyze proves ANALYZE adds per-node wall time.
func TestExplainAnalyze(t *testing.T) {
	db := obsDB(t)
	res, err := db.Query("EXPLAIN ANALYZE SELECT DISTINCT tid FROM s ORDER BY tid DESC")
	if err != nil {
		t.Fatal(err)
	}
	var plan strings.Builder
	for _, r := range res.Rows {
		plan.WriteString(r[0].String())
		plan.WriteByte('\n')
	}
	out := plan.String()
	for _, want := range []string{"scan table=s", "distinct", "sort", "time="} {
		if !strings.Contains(out, want) {
			t.Fatalf("plan missing %q:\n%s", want, out)
		}
	}
}

// TestExplainJoinStrategy proves the plan reports the join strategy the
// executor actually chose.
func TestExplainJoinStrategy(t *testing.T) {
	db := obsDB(t)
	res, err := db.Query(
		"EXPLAIN SELECT a.item FROM s AS a, s AS b WHERE a.tid = b.tid AND b.item = 'jackets'")
	if err != nil {
		t.Fatal(err)
	}
	var plan strings.Builder
	for _, r := range res.Rows {
		plan.WriteString(r[0].String())
		plan.WriteByte('\n')
	}
	if !strings.Contains(plan.String(), "strategy=hash") {
		t.Fatalf("expected hash join in plan:\n%s", plan.String())
	}
}

// TestExplainBatchedAttrs proves the plan carries the batched-pipeline
// telemetry: batch counts on vectorized operators and the planner's
// cardinality estimate on the hash join. The table is sized past the
// planner threshold so statistics are actually consulted.
func TestExplainBatchedAttrs(t *testing.T) {
	db := New()
	var ins strings.Builder
	ins.WriteString("CREATE TABLE big (tid INTEGER, item VARCHAR, price FLOAT);\n")
	for i := 0; i < 3000; i++ {
		fmt.Fprintf(&ins, "INSERT INTO big VALUES (%d, 'item%d', %d.0);\n", i%200, i%7, i%400)
	}
	if err := db.ExecScript(ins.String()); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query(
		"EXPLAIN ANALYZE SELECT a.item FROM big AS a, big AS b WHERE a.tid = b.tid AND b.price > 390.0")
	if err != nil {
		t.Fatal(err)
	}
	var plan strings.Builder
	for _, r := range res.Rows {
		plan.WriteString(r[0].String())
		plan.WriteByte('\n')
	}
	out := plan.String()
	for _, want := range []string{
		"join strategy=hash",
		"est_rows=",
		"build=right",
		"batches=",
		"time=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("plan missing %q:\n%s", want, out)
		}
	}
	// The grouped query reports batch counts on the aggregate node too.
	res, err = db.Query(
		"EXPLAIN ANALYZE SELECT item, COUNT(*) FROM big WHERE price > 100.0 GROUP BY item")
	if err != nil {
		t.Fatal(err)
	}
	plan.Reset()
	for _, r := range res.Rows {
		plan.WriteString(r[0].String())
		plan.WriteByte('\n')
	}
	var groupLine string
	for _, l := range strings.Split(plan.String(), "\n") {
		if strings.Contains(l, "group ") {
			groupLine = l
		}
	}
	if !strings.Contains(groupLine, "batches=") {
		t.Fatalf("group node missing batches attr:\n%s", plan.String())
	}
}

// TestMetricsCounters proves the engine registry tracks statements,
// cache traffic, and row flow.
func TestMetricsCounters(t *testing.T) {
	db := obsDB(t)
	m := db.Metrics()
	if m == nil {
		t.Fatal("Metrics() = nil")
	}
	base := m.Snapshot()

	const q = "SELECT * FROM s"
	for i := 0; i < 3; i++ {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.StmtExecuted.Load() - base["minerule_stmt_executed_total"]; got != 3 {
		t.Errorf("StmtExecuted delta = %d, want 3", got)
	}
	if got := m.StmtCacheHits.Load() - base["minerule_stmtcache_hits_total"]; got != 2 {
		t.Errorf("StmtCacheHits delta = %d, want 2", got)
	}
	if got := m.RowsScanned.Load() - base["minerule_rows_scanned_total"]; got != 18 {
		t.Errorf("RowsScanned delta = %d, want 18 (3 scans of 6 rows)", got)
	}
	if got := m.RowsReturned.Load() - base["minerule_rows_returned_total"]; got != 18 {
		t.Errorf("RowsReturned delta = %d, want 18", got)
	}
	if got := m.ExecBatches.Load() - base["minerule_exec_batches_total"]; got < 3 {
		t.Errorf("ExecBatches delta = %d, want >= 3 (one batch per scan)", got)
	}
	if got := m.ExecBatchRows.Load() - base["minerule_exec_batch_rows_total"]; got < 18 {
		t.Errorf("ExecBatchRows delta = %d, want >= 18", got)
	}
	if m.ExecNanos.Load() == 0 || m.ParseNanos.Load() == 0 {
		t.Errorf("timing counters not advancing: exec=%d parse=%d",
			m.ExecNanos.Load(), m.ParseNanos.Load())
	}

	// View-plan cache traffic.
	if err := db.ExecScript(`CREATE VIEW big AS SELECT * FROM s WHERE price > 100`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := db.Query("SELECT COUNT(*) FROM big"); err != nil {
			t.Fatal(err)
		}
	}
	if m.ViewPlanMisses.Load() == 0 {
		t.Error("ViewPlanMisses = 0, want first use to miss")
	}
	if m.ViewPlanHits.Load() < 2 {
		t.Errorf("ViewPlanHits = %d, want >= 2", m.ViewPlanHits.Load())
	}

	// Errors are counted.
	e0 := m.StmtErrors.Load()
	if _, err := db.Query("SELECT nope FROM missing"); err == nil {
		t.Fatal("expected error")
	}
	if m.StmtErrors.Load() != e0+1 {
		t.Errorf("StmtErrors did not advance")
	}
}

// expoValue extracts one metric's value from a Prometheus exposition
// dump, failing the test when the line is missing.
func expoValue(t *testing.T, dump, name string) int64 {
	t.Helper()
	for _, line := range strings.Split(dump, "\n") {
		var v int64
		if n, _ := fmt.Sscanf(line, name+" %d", &v); n == 1 && strings.HasPrefix(line, name+" ") {
			return v
		}
	}
	t.Fatalf("exposition missing %s:\n%s", name, dump)
	return 0
}

// TestTxnMetricsExposition drives the transaction subsystem — an open
// explicit transaction, a contended lock, a durable group commit — and
// asserts the /metrics exposition reports it: txn_active tracks open
// transactions, lock_waits_total counts the contention, and
// group_commit_batch_size is derivable once fsyncs happened.
func TestTxnMetricsExposition(t *testing.T) {
	dir := t.TempDir()
	db := openDurable(t, dir)
	defer db.Close()
	if _, err := db.Exec("CREATE TABLE t (id INTEGER)"); err != nil {
		t.Fatal(err)
	}

	dump := func() string {
		var b strings.Builder
		if err := db.Metrics().WritePrometheus(&b); err != nil {
			t.Fatal(err)
		}
		return b.String()
	}

	conn := db.Conn()
	defer conn.Close()
	if _, err := conn.Exec("BEGIN"); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Exec("INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	d := dump()
	if got := expoValue(t, d, "minerule_txn_active"); got != 1 {
		t.Fatalf("minerule_txn_active = %d with one open transaction, want 1", got)
	}
	if !strings.Contains(d, "# TYPE minerule_txn_active gauge") {
		t.Fatal("minerule_txn_active must be exposed as a gauge")
	}

	// Contention: an autocommit writer on the same table must wait for
	// the explicit transaction's lock.
	done := make(chan error, 1)
	go func() { _, err := db.Exec("INSERT INTO t VALUES (2)"); done <- err }()
	waitStart := db.Metrics().LockWaits.Load()
	deadline := time.Now().Add(5 * time.Second)
	for db.Metrics().LockWaits.Load() == waitStart {
		if time.Now().After(deadline) {
			t.Fatal("concurrent writer never queued on the table lock")
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := conn.Exec("COMMIT"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}

	d = dump()
	if got := expoValue(t, d, "minerule_txn_active"); got != 0 {
		t.Fatalf("minerule_txn_active = %d after commit, want 0", got)
	}
	if got := expoValue(t, d, "minerule_lock_waits_total"); got < 1 {
		t.Fatalf("minerule_lock_waits_total = %d, want >=1", got)
	}
	fsyncs := expoValue(t, d, "minerule_group_commit_fsyncs_total")
	if fsyncs < 1 {
		t.Fatalf("minerule_group_commit_fsyncs_total = %d on a durable store, want >=1", fsyncs)
	}
	commits := expoValue(t, d, "minerule_group_commit_commits_total")
	batch := expoValue(t, d, "minerule_group_commit_batch_size")
	if want := commits / fsyncs; batch != want {
		t.Fatalf("minerule_group_commit_batch_size = %d, want commits/fsyncs = %d", batch, want)
	}
}
