package engine

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"minerule/internal/fault"
	"minerule/internal/resource"
	"minerule/internal/sql/wal"
)

// prefixModel is what a WAL prefix says the catalog must look like.
type prefixModel struct {
	rows    map[string]int   // live table → row count
	indexes map[string]bool  // live index names
	seqs    map[string]int64 // live sequence → restored next value
}

func modelOf(t *testing.T, prefix []byte) prefixModel {
	t.Helper()
	m := prefixModel{rows: map[string]int{}, indexes: map[string]bool{}, seqs: map[string]int64{}}
	_, _, err := wal.ReplayBytes(prefix, func(r *wal.Record) error {
		switch r.Kind {
		case wal.KindCreateTable:
			m.rows[r.Name] = 0
		case wal.KindDropTable:
			delete(m.rows, r.Name)
		case wal.KindInsert:
			m.rows[r.Name] += len(r.Rows)
		case wal.KindTruncate:
			m.rows[r.Name] = 0
		case wal.KindReplace:
			m.rows[r.Name] = len(r.Rows)
		case wal.KindCreateIndex:
			m.indexes[r.Name] = true
		case wal.KindDropIndex:
			delete(m.indexes, r.Name)
		case wal.KindCreateSequence:
			m.seqs[r.Name] = 1
		case wal.KindDropSequence:
			delete(m.seqs, r.Name)
		case wal.KindSeqBump:
			m.seqs[r.Name] = r.Next
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestWALPrefixProperty replays every record-boundary prefix of a real
// log and checks the recovered catalog against the model the prefix
// describes: row counts, index membership and contents, sequence
// ceilings, and that a second replay of the same prefix is a no-op.
func TestWALPrefixProperty(t *testing.T) {
	base := t.TempDir()
	db := openDurable(t, base)
	if err := db.ExecScript(durableSeed); err != nil {
		t.Fatal(err)
	}
	seq, _ := db.Catalog().Sequence("rid")
	seq.NextVal() // force a SeqBump record into the log
	if _, err := db.Exec("UPDATE Purchase SET price = 20.0 WHERE item = 'col_shirts'"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	logBytes, err := os.ReadFile(filepath.Join(base, "wal-1.log"))
	if err != nil {
		t.Fatal(err)
	}
	bounds := append([]int64{0}, wal.Boundaries(logBytes)...)

	for _, end := range bounds {
		dir := t.TempDir()
		if err := os.MkdirAll(filepath.Join(dir, "gen-1"), 0o755); err != nil {
			t.Fatal(err)
		}
		for _, name := range []string{"CURRENT", filepath.Join("gen-1", "catalog.json")} {
			b, err := os.ReadFile(filepath.Join(base, name))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, name), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(filepath.Join(dir, "wal-1.log"), logBytes[:end], 0o644); err != nil {
			t.Fatal(err)
		}

		want := modelOf(t, logBytes[:end])
		rec := openDurable(t, dir)
		for name, rows := range want.rows {
			tab, ok := rec.Catalog().Table(name)
			if !ok {
				t.Fatalf("@%d: table %s missing", end, name)
			}
			if tab.Len() != rows {
				t.Fatalf("@%d: %s has %d rows, want %d", end, name, tab.Len(), rows)
			}
			// Index contents must agree with a full scan: every row is
			// reachable through its bucket, nothing else is.
			for _, ix := range tab.Indexes() {
				counts := map[string]int{}
				for _, row := range tab.Snapshot() {
					if !row[ix.Column()].IsNull() {
						counts[row[ix.Column()].Key()]++
					}
				}
				for key, n := range counts {
					if got := len(tab.Lookup(ix, key)); got != n {
						t.Fatalf("@%d: index %s bucket %q has %d rows, scan says %d",
							end, ix.Name(), key, got, n)
					}
				}
			}
		}
		for name := range want.indexes {
			if !rec.Catalog().HasIndex(name) {
				t.Fatalf("@%d: index %s missing", end, name)
			}
		}
		for name, next := range want.seqs {
			seq, ok := rec.Catalog().Sequence(name)
			if !ok {
				t.Fatalf("@%d: sequence %s missing", end, name)
			}
			if seq.CurrentVal() != next {
				t.Fatalf("@%d: sequence %s at %d, want %d", end, name, seq.CurrentVal(), next)
			}
		}

		// Replaying the prefix again over the live catalog changes nothing.
		verBefore := rec.Catalog().Version()
		rec.cat.SetJournal(nil)
		if _, _, err := rec.store.replayLog(); err != nil {
			t.Fatalf("@%d: second replay: %v", end, err)
		}
		rec.cat.SetJournal(rec.store)
		if rec.Catalog().Version() != verBefore {
			t.Fatalf("@%d: second replay bumped the version", end)
		}
		for name, rows := range want.rows {
			if tab, _ := rec.Catalog().Table(name); tab.Len() != rows {
				t.Fatalf("@%d: second replay changed %s to %d rows", end, name, tab.Len())
			}
		}
		if err := rec.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMidRunCrash kills the WAL writer mid-frame with a fault.WriteGate:
// the statement fails with an I/O error, the store goes sticky, and a
// reopen of the directory recovers exactly the pre-crash state.
func TestMidRunCrash(t *testing.T) {
	for _, keep := range []int{0, 1, 7, 1 << 20} {
		// With keep below the 8-byte frame header the record is torn and
		// the insert must vanish; with the whole frame kept (1<<20 clamps
		// to the frame length) the row is durable even though the client
		// never saw the commit — both are legal crash outcomes.
		wantRows := int64(3)
		if keep == 1<<20 {
			wantRows = 4
		}
		dir := t.TempDir()
		db := openDurable(t, dir)
		if err := db.ExecScript(durableSeed); err != nil {
			t.Fatal(err)
		}
		gate := fault.NewWriteGate()
		gate.KillNth(1, keep)
		db.store.w.WriteHook = gate.Hook()

		_, err := db.Exec("INSERT INTO Purchase VALUES (4, 'parkas', 90.0)")
		if err == nil {
			t.Fatalf("keep=%d: write survived the crash", keep)
		}
		if !errors.Is(err, resource.ErrIO) {
			t.Fatalf("keep=%d: crash error is not ErrIO: %v", keep, err)
		}
		if !gate.Fired() {
			t.Fatalf("keep=%d: gate never fired", keep)
		}
		// The process is dead: every later statement fails too.
		if _, err := db.Exec("INSERT INTO Purchase VALUES (5, 'scarves', 10.0)"); err == nil {
			t.Fatalf("keep=%d: store accepted writes after the crash", keep)
		}

		// No Close: reopen over the torn file, as after a real kill.
		db2 := openDurable(t, dir)
		if got := countRows(t, db2, "Purchase"); got != wantRows {
			t.Fatalf("keep=%d: recovered %d rows, want %d", keep, got, wantRows)
		}
		if _, err := db2.Exec("INSERT INTO Purchase VALUES (6, 'gloves', 15.0)"); err != nil {
			t.Fatalf("keep=%d: recovered database rejects writes: %v", keep, err)
		}
		if err := db2.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
