// Package engine exposes the embedded relational server: a Database that
// accepts SQL text, maintains the catalog (the paper's DBMS + Data
// Dictionary box in Figure 3), and imports/exports CSV. It is the only
// surface the mining kernel talks to, which is exactly the paper's
// portability requirement — everything the kernel asks for is SQL.
package engine

import (
	"context"
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"minerule/internal/obsv"
	"minerule/internal/resource"
	"minerule/internal/sql/exec"
	"minerule/internal/sql/lex"
	"minerule/internal/sql/schema"
	"minerule/internal/sql/semck"
	"minerule/internal/sql/storage"
	"minerule/internal/sql/txn"
	"minerule/internal/sql/value"
	"minerule/internal/sql/vfs"
)

// Database is an embedded in-memory SQL92-subset database. It is safe
// for concurrent use: every statement runs inside a transaction — the
// session's explicit one, or an ephemeral autocommit transaction — so
// reads execute lock-free against a consistent snapshot while writers
// proceed under per-table locks; statements from different connections
// run genuinely concurrently. Each statement resolves its resource
// bounds at start — a context-carried resource.WithLimits value
// overrides the engine-wide default — so concurrent sessions can run
// under different budgets without touching shared state.
type Database struct {
	cat *storage.Catalog
	// mgr is the transaction manager: snapshot registry, lock manager,
	// and commit path. Set once at construction (after recovery on
	// durable databases), immutable afterwards.
	mgr *txn.Manager
	// def is the default connection behind the Database-level Exec
	// surface; sessions wanting their own transaction scope call Conn().
	def *Conn
	// rtPool recycles executor runtimes: one is taken per statement, so
	// concurrent statements never share bind-time state, and a pooled
	// runtime keeps its view-plan and join-order caches warm.
	rtPool sync.Pool
	// rowMode selects the row-at-a-time reference executor for
	// subsequently executed statements (differential-testing oracle).
	rowMode atomic.Bool
	// defLimits is the engine-wide default statement bounds, replaced
	// atomically by SetLimits so configuring limits never races running
	// statements (which copy it at statement start).
	defLimits atomic.Pointer[resource.Limits]
	// cache is the prepared-program cache: each distinct statement text
	// parses once and re-executes from its AST (see stmtcache.go).
	cache stmtCache
	// met is the always-on counter registry (statement, cache, and row
	// stats); atomic adds only, so keeping it on costs no allocation.
	met *obsv.Metrics
	// hook, when set, runs before every statement with its SQL text;
	// returning an error aborts the statement. Test-only fault injection
	// — see internal/fault.
	hook atomic.Pointer[func(sql string) error]
	// store is the durable backend (WAL + checkpoints); nil on in-memory
	// databases, which is the default.
	store *store
}

// newDatabase builds the catalog, metrics, and pools common to the
// in-memory and durable constructors. The transaction manager is
// attached by the caller — on durable databases it must come after
// recovery, because attaching it turns on catalog history.
func newDatabase() *Database {
	cat := storage.NewCatalog()
	met := &obsv.Metrics{}
	db := &Database{cat: cat, met: met}
	db.def = &Conn{db: db}
	db.rtPool.New = func() any {
		rt := exec.NewRuntime(cat)
		rt.Met = met
		return rt
	}
	return db
}

// New returns an empty database.
func New() *Database {
	db := newDatabase()
	db.mgr = txn.NewManager(db.cat, nil, db.met, 0)
	return db
}

// Open returns a database durably backed by the given directory,
// creating it when empty and otherwise recovering: the last checkpoint
// generation is loaded and the write-ahead log replayed over it, so any
// crash-time prefix of the log yields a consistent catalog. poolPages
// sizes the buffer pool (<= 0 means the default).
func Open(dir string, poolPages int) (*Database, error) {
	return OpenFS(vfs.OS, dir, poolPages)
}

// OpenFS is Open over an explicit filesystem — the seam fault-injection
// tests use to run the full storage stack against a vfs.FaultFS. The
// transaction manager attaches only after recovery completes: replay
// applies the log with catalog history off, so it never pays for
// version retention no live snapshot could need.
func OpenFS(fsys vfs.FS, dir string, poolPages int) (*Database, error) {
	db := newDatabase()
	st, err := openStore(fsys, dir, poolPages, db.cat, db.met)
	if err != nil {
		return nil, err
	}
	db.store = st
	db.mgr = txn.NewManager(db.cat, st, db.met, 0)
	return db, nil
}

// Durable reports whether the database is backed by a storage directory.
func (db *Database) Durable() bool { return db.store != nil }

// DegradedErr returns the typed *resource.DegradedError when the store
// has lost its durability guarantee (a failed WAL fsync or an
// unrepairable append), nil while it is healthy or in-memory. A
// degraded database still answers queries; every mutation fails with
// this same error until the directory is closed and reopened.
func (db *Database) DegradedErr() error {
	if db.store == nil {
		return nil
	}
	return db.store.degradedErr()
}

// TxnManager exposes the transaction manager (tests and the network
// session layer's diagnostics).
func (db *Database) TxnManager() *txn.Manager { return db.mgr }

// Close releases the durable backend's files after a final group fsync.
// It does not checkpoint — reopening replays the log — and is a no-op
// on in-memory databases.
func (db *Database) Close() error {
	if db.store == nil {
		return nil
	}
	db.cat.SetJournal(nil)
	return db.store.close()
}

// Checkpoint forces a checkpoint: the catalog is snapshotted to a new
// generation and the log restarted, bounding the next open's replay
// work. No-op on in-memory databases.
func (db *Database) Checkpoint() error {
	if db.store == nil {
		return nil
	}
	return db.store.checkpoint()
}

// Metrics exposes the engine's counter registry (never nil). Callers
// export it with obsv.Metrics.WritePrometheus.
func (db *Database) Metrics() *obsv.Metrics { return db.met }

// Catalog exposes the data dictionary (read-mostly; used by the
// translator for semantic checks).
func (db *Database) Catalog() *storage.Catalog { return db.cat }

// SetLimits replaces the engine-wide default statement bounds; the zero
// Limits removes all bounds. Statements already running keep the bounds
// they started with — the default is copied at statement start, so
// SetLimits never races execution. A context carrying
// resource.WithLimits overrides the default for its own statements.
func (db *Database) SetLimits(l resource.Limits) { db.defLimits.Store(&l) }

// Limits returns the engine-wide default execution bounds.
func (db *Database) Limits() resource.Limits {
	if p := db.defLimits.Load(); p != nil {
		return *p
	}
	return resource.Limits{}
}

// effLimits resolves the bounds for one statement: a context-carried
// override (resource.WithLimits) wins over the engine-wide default.
func (db *Database) effLimits(ctx context.Context) resource.Limits {
	if l, ok := resource.LimitsFrom(ctx); ok {
		return l
	}
	return db.Limits()
}

// RowMode switches the executor between the batched default (off) and
// the row-at-a-time reference operators (on) for statements executed
// from here on. The reference path is the oracle for differential
// testing and the fallback should the batched pipeline ever need to be
// bypassed.
func (db *Database) RowMode(on bool) { db.rowMode.Store(on) }

// SetExecHook installs (or, with nil, removes) a pre-statement hook used
// by fault-injection tests; the hook receives each statement's SQL text
// before execution and may abort it by returning an error.
func (db *Database) SetExecHook(hook func(sql string) error) {
	if hook == nil {
		db.hook.Store(nil)
		return
	}
	db.hook.Store(&hook)
}

// Exec parses and executes one SQL statement on the database's default
// connection (sessions needing their own transaction scope use Conn).
func (db *Database) Exec(sql string) (*exec.Result, error) {
	return db.def.Exec(sql)
}

// ExecContext parses and executes one SQL statement under a cancellation
// context. Execution is bounded by the database Limits and guarded by
// the executor's panic-containment boundary.
func (db *Database) ExecContext(ctx context.Context, sql string) (*exec.Result, error) {
	return db.def.ExecContext(ctx, sql)
}

// ExecScript executes a semicolon-separated sequence of statements,
// stopping at the first error.
func (db *Database) ExecScript(sql string) error {
	return db.ExecScriptContext(context.Background(), sql)
}

// ExecScriptContext is ExecScript under a cancellation context, checked
// before (and during) every statement. The script was semantically
// checked as a unit (DDL effects threaded through an overlay), so the
// per-statement verdict cache is bypassed.
func (db *Database) ExecScriptContext(ctx context.Context, sql string) error {
	return db.def.ExecScriptContext(ctx, sql)
}

// Query executes a SELECT and returns its result.
func (db *Database) Query(sql string) (*exec.Result, error) {
	return db.QueryContext(context.Background(), sql)
}

// QueryContext executes a SELECT under a cancellation context.
func (db *Database) QueryContext(ctx context.Context, sql string) (*exec.Result, error) {
	res, err := db.ExecContext(ctx, sql)
	if err != nil {
		return nil, err
	}
	if res.Schema == nil {
		return nil, fmt.Errorf("engine: statement is not a query: %s", compact(sql))
	}
	return res, nil
}

// Prepare parses and semantically checks one statement without
// executing it, priming the prepared-program cache. The check runs
// against the live catalog; execution re-validates against its own
// transaction's snapshot. The network session layer uses Prepare to
// fail a bad statement eagerly, the way any remote database does.
func (db *Database) Prepare(sql string) error {
	t0 := time.Now()
	p, err := db.parseStmt(sql)
	db.met.ParseNanos.Add(int64(time.Since(t0)))
	if err == nil {
		err = db.verdict(p, sql, semck.FromStorage(db.cat), db.cat.Version())
	}
	if err != nil {
		db.met.StmtErrors.Inc()
		return fmt.Errorf("engine: %w\n  in: %s", err, compact(sql))
	}
	return nil
}

// ExplainSQL executes a query with executor tracing enabled and returns
// the decision log (scan sources, join strategies, index use, filter
// selectivities) followed by the result cardinality — an EXPLAIN
// ANALYZE for the embedded engine.
func (db *Database) ExplainSQL(sql string) (string, error) {
	return db.ExplainSQLContext(context.Background(), sql)
}

// ExplainSQLContext is ExplainSQL under a cancellation context. The
// trace hook is installed on the statement's own pooled runtime, so
// concurrent sessions never observe each other's decision logs.
func (db *Database) ExplainSQLContext(ctx context.Context, sql string) (string, error) {
	t0 := time.Now()
	p, err := db.parseStmt(sql)
	db.met.ParseNanos.Add(int64(time.Since(t0)))
	if err != nil {
		db.met.StmtErrors.Inc()
		return "", fmt.Errorf("engine: %w\n  in: %s", err, compact(sql))
	}
	var lines []string
	res, err := db.def.execParsed(ctx, p.st, p, sql, sql, func(l string) { lines = append(lines, l) })
	if err != nil {
		return "", err
	}
	if res.Schema == nil {
		return "", fmt.Errorf("engine: statement is not a query: %s", compact(sql))
	}
	var b strings.Builder
	for _, l := range lines {
		b.WriteString(l)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "result: %d row(s)\n", len(res.Rows))
	return b.String(), nil
}

// QueryInt runs a single-row single-column query and returns the integer
// result (the idiom behind the paper's "SELECT COUNT(*) INTO :totg").
func (db *Database) QueryInt(sql string) (int64, error) {
	return db.QueryIntContext(context.Background(), sql)
}

// QueryIntContext is QueryInt under a cancellation context.
func (db *Database) QueryIntContext(ctx context.Context, sql string) (int64, error) {
	res, err := db.QueryContext(ctx, sql)
	if err != nil {
		return 0, err
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return 0, fmt.Errorf("engine: expected one value, got %d row(s): %s", len(res.Rows), compact(sql))
	}
	v := res.Rows[0][0]
	switch v.Type() {
	case value.TypeInt:
		return v.Int(), nil
	case value.TypeFloat:
		return int64(v.Float()), nil
	default:
		return 0, fmt.Errorf("engine: expected numeric value, got %s", v.Type())
	}
}

// posSuffix renders " (line L, column C)" when the executor tagged err
// with the source offset of the failing node (exec.PosError); offsets
// are relative to the statement or script text the engine prepared.
func posSuffix(err error, src string) string {
	var pe *exec.PosError
	if !errors.As(err, &pe) {
		return ""
	}
	line, col := lex.Position(src, pe.Off)
	return fmt.Sprintf(" (line %d, column %d)", line, col)
}

func compact(sql string) string {
	f := strings.Join(strings.Fields(sql), " ")
	if len(f) > 160 {
		f = f[:157] + "..."
	}
	return f
}

// ---------------------------------------------------------------------------
// CSV

// ImportCSV creates table name with the given typed header and loads all
// records from r. The header format is "col:type" per column, with type
// one of int, float, string, date, bool. Empty fields load as NULL.
func (db *Database) ImportCSV(name string, header []string, r io.Reader) (int, error) {
	return db.ImportCSVContext(context.Background(), name, header, r)
}

// ImportCSVContext is ImportCSV under a cancellation context, which
// bounds the import transaction's lock waits and commit.
func (db *Database) ImportCSVContext(ctx context.Context, name string, header []string, r io.Reader) (int, error) {
	cr := csv.NewReader(r)
	cr.TrimLeadingSpace = true
	return db.importRecords(ctx, name, header, cr)
}

// importRecords implements CSV loading over an already-positioned
// reader (shared with Load, whose files carry the header in-band). The
// import runs as one transaction: the row batch becomes visible
// atomically and shares one group fsync at commit. Table creation is
// DDL and therefore survives a failed load (as a created-then-empty
// table), matching how a CREATE TABLE + failed INSERT script behaves.
func (db *Database) importRecords(ctx context.Context, name string, header []string, cr *csv.Reader) (int, error) {
	cols := make([]schema.Column, len(header))
	for i, h := range header {
		parts := strings.SplitN(h, ":", 2)
		if len(parts) != 2 {
			return 0, fmt.Errorf("engine: header %q must be name:type", h)
		}
		t, err := typeFromName(parts[1])
		if err != nil {
			return 0, err
		}
		cols[i] = schema.Column{Name: parts[0], Type: t}
	}
	tx := db.mgr.Begin()
	defer db.mgr.Release(tx)
	tx.SetLimits(db.Limits())
	if _, err := tx.CreateTable(ctx, name, schema.New(name, cols...)); err != nil {
		tx.Rollback()
		return 0, err
	}
	tab, ok, err := tx.ForWrite(ctx, name)
	if err != nil || !ok {
		tx.Rollback()
		if err == nil {
			err = fmt.Errorf("engine: table %q vanished during import", name)
		}
		return 0, err
	}
	var rows []schema.Row
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			tx.Rollback()
			return 0, fmt.Errorf("engine: csv: %w", err)
		}
		if len(rec) != len(cols) {
			tx.Rollback()
			return 0, fmt.Errorf("engine: csv record has %d fields, want %d", len(rec), len(cols))
		}
		row := make(schema.Row, len(cols))
		for i, f := range rec {
			v, err := parseField(f, cols[i].Type)
			if err != nil {
				tx.Rollback()
				return 0, fmt.Errorf("engine: csv field %q: %w", f, err)
			}
			row[i] = v
		}
		rows = append(rows, row)
	}
	if err := tx.InsertRows(tab, rows); err != nil {
		tx.Rollback()
		return 0, err
	}
	if err := tx.Commit(ctx); err != nil {
		return 0, err
	}
	return len(rows), nil
}

// ExportCSV writes a query result as CSV with a plain column-name header.
func (db *Database) ExportCSV(w io.Writer, sql string) error {
	res, err := db.Query(sql)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	header := make([]string, res.Schema.Len())
	for i := 0; i < res.Schema.Len(); i++ {
		header[i] = res.Schema.Col(i).Name
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	rec := make([]string, res.Schema.Len())
	for _, row := range res.Rows {
		for i, v := range row {
			if v.IsNull() {
				rec[i] = ""
			} else {
				rec[i] = v.String()
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func typeFromName(s string) (value.Type, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "int", "integer":
		return value.TypeInt, nil
	case "float", "real", "double":
		return value.TypeFloat, nil
	case "string", "varchar", "text":
		return value.TypeString, nil
	case "date":
		return value.TypeDate, nil
	case "bool", "boolean":
		return value.TypeBool, nil
	default:
		return value.TypeNull, fmt.Errorf("engine: unknown csv type %q", s)
	}
}

func parseField(f string, t value.Type) (value.Value, error) {
	if f == "" {
		return value.Null, nil
	}
	switch t {
	case value.TypeInt:
		i, err := strconv.ParseInt(f, 10, 64)
		if err != nil {
			return value.Null, err
		}
		return value.NewInt(i), nil
	case value.TypeFloat:
		fl, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return value.Null, err
		}
		return value.NewFloat(fl), nil
	case value.TypeString:
		return value.NewString(f), nil
	case value.TypeDate:
		return value.ParseDate(f)
	case value.TypeBool:
		b, err := strconv.ParseBool(strings.ToLower(f))
		if err != nil {
			return value.Null, err
		}
		return value.NewBool(b), nil
	}
	return value.Null, fmt.Errorf("engine: unsupported type %s", t)
}

// FormatResult renders a result as an aligned text table for tooling.
func FormatResult(res *exec.Result) string {
	if res.Schema == nil {
		return fmt.Sprintf("%d row(s) affected\n", res.RowsAffected)
	}
	n := res.Schema.Len()
	widths := make([]int, n)
	header := make([]string, n)
	for i := 0; i < n; i++ {
		header[i] = res.Schema.Col(i).Name
		widths[i] = len(header[i])
	}
	cells := make([][]string, len(res.Rows))
	for r, row := range res.Rows {
		cells[r] = make([]string, n)
		for i, v := range row {
			s := v.String()
			cells[r][i] = s
			if len(s) > widths[i] {
				widths[i] = len(s)
			}
		}
	}
	var b strings.Builder
	writeRow := func(vals []string) {
		for i, s := range vals {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(s)
			b.WriteString(strings.Repeat(" ", widths[i]-len(s)))
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, n)
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range cells {
		writeRow(row)
	}
	fmt.Fprintf(&b, "(%d rows)\n", len(res.Rows))
	return b.String()
}
