package engine

import (
	"fmt"
	"strings"
	"testing"
)

// benchDB loads two joinable tables of the given sizes.
func benchDB(b testing.TB, left, right int) *Database {
	b.Helper()
	db := New()
	if err := db.ExecScript("CREATE TABLE l (k INTEGER, v INTEGER); CREATE TABLE r (k INTEGER, w INTEGER)"); err != nil {
		b.Fatal(err)
	}
	load := func(table string, n int) {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			if sb.Len() > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d)", i%997, i)
			if (i+1)%500 == 0 || i == n-1 {
				if _, err := db.Exec("INSERT INTO " + table + " VALUES " + sb.String()); err != nil {
					b.Fatal(err)
				}
				sb.Reset()
			}
		}
	}
	load("l", left)
	load("r", right)
	return db
}

// BenchmarkHashJoin measures the equi-join path the preprocessor's
// Q3/Q4/Q8 queries live on.
func BenchmarkHashJoin(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			db := benchDB(b, n, n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query("SELECT COUNT(*) FROM l, r WHERE l.k = r.k"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHashJoinAsymmetric measures the lopsided join shape that
// punished the old build-side choice: a 10-row dimension table against
// a 50k-row fact table. The hash table must be built on the small side
// regardless of which side of the comma (or the equality) it appears
// on, so both orientations should cost the same.
func BenchmarkHashJoinAsymmetric(b *testing.B) {
	const small, big = 10, 50000
	for _, tc := range []struct {
		name, query string
	}{
		{"small-left", "SELECT COUNT(*) FROM l, r WHERE l.k = r.k"},
		{"small-right", "SELECT COUNT(*) FROM r, l WHERE r.k = l.k"},
	} {
		b.Run(tc.name, func(b *testing.B) {
			db := benchDB(b, small, big)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query(tc.query); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestHashJoinBuildSide proves the executor builds the hash table on
// the smaller input in both orientations of an asymmetric join.
func TestHashJoinBuildSide(t *testing.T) {
	db := benchDB(t, 10, 5000)
	for _, tc := range []struct {
		query, want string
	}{
		{"EXPLAIN SELECT COUNT(*) FROM l, r WHERE l.k = r.k", "build=left"},
		{"EXPLAIN SELECT COUNT(*) FROM r, l WHERE r.k = l.k", "build=right"},
	} {
		res, err := db.Query(tc.query)
		if err != nil {
			t.Fatal(err)
		}
		var plan strings.Builder
		for _, r := range res.Rows {
			plan.WriteString(r[0].String())
			plan.WriteByte('\n')
		}
		if !strings.Contains(plan.String(), tc.want) {
			t.Fatalf("%s: expected %s in plan:\n%s", tc.query, tc.want, plan.String())
		}
	}
}

// BenchmarkThetaJoin measures the Cartesian-plus-filter fallback used
// by the cluster-pair inequality of Q7.
func BenchmarkThetaJoin(b *testing.B) {
	db := benchDB(b, 300, 300)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT COUNT(*) FROM l, r WHERE l.k < r.k"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGroupByHaving measures the shape of Q2/Q3's encoding queries.
func BenchmarkGroupByHaving(b *testing.B) {
	db := benchDB(b, 20000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT k, COUNT(*) FROM l GROUP BY k HAVING COUNT(*) >= 10"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistinct measures the dedup path behind Q1 and the DISTINCT
// encodings.
func BenchmarkDistinct(b *testing.B) {
	db := benchDB(b, 20000, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Query("SELECT DISTINCT k FROM l"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInsertSelect measures the materialization path of Q0.
func BenchmarkInsertSelect(b *testing.B) {
	db := benchDB(b, 20000, 0)
	if err := db.ExecScript("CREATE TABLE sink (k INTEGER, v INTEGER)"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("DELETE FROM sink"); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Exec("INSERT INTO sink (SELECT k, v FROM l WHERE v >= 0)"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSequenceNextval measures identifier minting (Q2/Q3's
// NEXTVAL-per-row).
func BenchmarkSequenceNextval(b *testing.B) {
	db := benchDB(b, 10000, 0)
	if err := db.ExecScript("CREATE SEQUENCE s; CREATE TABLE ids (id INTEGER, k INTEGER)"); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Exec("DELETE FROM ids"); err != nil {
			b.Fatal(err)
		}
		if _, err := db.Exec("INSERT INTO ids (SELECT s.NEXTVAL, k FROM l)"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkIndexedPointLookup compares an equality SELECT with and
// without a hash index.
func BenchmarkIndexedPointLookup(b *testing.B) {
	for _, indexed := range []bool{false, true} {
		name := "scan"
		if indexed {
			name = "indexed"
		}
		b.Run(name, func(b *testing.B) {
			db := benchDB(b, 20000, 0)
			if indexed {
				if _, err := db.Exec("CREATE INDEX l_k ON l (k)"); err != nil {
					b.Fatal(err)
				}
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.Query("SELECT COUNT(*) FROM l WHERE k = 500"); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
