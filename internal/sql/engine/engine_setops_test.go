package engine

import (
	"strings"
	"testing"
)

func setupSetOps(t *testing.T) *Database {
	t.Helper()
	db := New()
	err := db.ExecScript(`
		CREATE TABLE a (x INTEGER);
		CREATE TABLE b (x INTEGER);
		INSERT INTO a VALUES (1), (2), (2), (3);
		INSERT INTO b VALUES (2), (3), (4);
	`)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestUnion(t *testing.T) {
	db := setupSetOps(t)
	rows := rowStrings(t, db, "SELECT x FROM a UNION SELECT x FROM b ORDER BY x")
	if strings.Join(rows, ",") != "1,2,3,4" {
		t.Fatalf("UNION = %v", rows)
	}
}

func TestUnionAll(t *testing.T) {
	db := setupSetOps(t)
	rows := rowStrings(t, db, "SELECT x FROM a UNION ALL SELECT x FROM b ORDER BY x")
	if strings.Join(rows, ",") != "1,2,2,2,3,3,4" {
		t.Fatalf("UNION ALL = %v", rows)
	}
}

func TestExcept(t *testing.T) {
	db := setupSetOps(t)
	rows := rowStrings(t, db, "SELECT x FROM a EXCEPT SELECT x FROM b ORDER BY x")
	if strings.Join(rows, ",") != "1" {
		t.Fatalf("EXCEPT = %v", rows)
	}
}

func TestIntersect(t *testing.T) {
	db := setupSetOps(t)
	rows := rowStrings(t, db, "SELECT x FROM a INTERSECT SELECT x FROM b ORDER BY x")
	if strings.Join(rows, ",") != "2,3" {
		t.Fatalf("INTERSECT = %v", rows)
	}
}

func TestChainedSetOps(t *testing.T) {
	db := setupSetOps(t)
	// (a UNION b) EXCEPT (x = 4) — left-associative chain.
	rows := rowStrings(t, db, "SELECT x FROM a UNION SELECT x FROM b EXCEPT SELECT x FROM b WHERE x = 4 ORDER BY x")
	if strings.Join(rows, ",") != "1,2,3" {
		t.Fatalf("chain = %v", rows)
	}
}

func TestSetOpArityMismatch(t *testing.T) {
	db := setupSetOps(t)
	if _, err := db.Query("SELECT x FROM a UNION SELECT x, x FROM b"); err == nil {
		t.Fatal("arity mismatch accepted")
	}
	if _, err := db.Query("SELECT x FROM a EXCEPT ALL SELECT x FROM b"); err == nil {
		t.Fatal("EXCEPT ALL accepted")
	}
}

func TestSetOpInDerivedTableAndView(t *testing.T) {
	db := setupSetOps(t)
	n, err := db.QueryInt("SELECT COUNT(*) FROM (SELECT x FROM a UNION SELECT x FROM b)")
	if err != nil || n != 4 {
		t.Fatalf("derived union count = %d (%v)", n, err)
	}
	if err := db.ExecScript("CREATE VIEW u AS SELECT x FROM a INTERSECT SELECT x FROM b"); err != nil {
		t.Fatal(err)
	}
	n, err = db.QueryInt("SELECT COUNT(*) FROM u")
	if err != nil || n != 2 {
		t.Fatalf("view intersect count = %d (%v)", n, err)
	}
}

func TestUpdate(t *testing.T) {
	db := setupSetOps(t)
	res, err := db.Exec("UPDATE a SET x = x * 10 WHERE x >= 2")
	if err != nil {
		t.Fatal(err)
	}
	if res.RowsAffected != 3 {
		t.Fatalf("updated %d", res.RowsAffected)
	}
	rows := rowStrings(t, db, "SELECT x FROM a ORDER BY x")
	if strings.Join(rows, ",") != "1,20,20,30" {
		t.Fatalf("after update = %v", rows)
	}
	// UPDATE without WHERE touches everything.
	res, err = db.Exec("UPDATE b SET x = 0")
	if err != nil || res.RowsAffected != 3 {
		t.Fatalf("bulk update = %d (%v)", res.RowsAffected, err)
	}
}

func TestUpdateMultiAssignSeesOldValues(t *testing.T) {
	db := New()
	if err := db.ExecScript("CREATE TABLE t (a INTEGER, b INTEGER); INSERT INTO t VALUES (1, 2)"); err != nil {
		t.Fatal(err)
	}
	// Swap: both assignments must read the pre-update row.
	if _, err := db.Exec("UPDATE t SET a = b, b = a"); err != nil {
		t.Fatal(err)
	}
	rows := rowStrings(t, db, "SELECT a, b FROM t")
	if rows[0] != "2|1" {
		t.Fatalf("swap = %v", rows)
	}
}

func TestUpdateErrors(t *testing.T) {
	db := setupSetOps(t)
	if _, err := db.Exec("UPDATE missing SET x = 1"); err == nil {
		t.Error("unknown table accepted")
	}
	if _, err := db.Exec("UPDATE a SET nope = 1"); err == nil {
		t.Error("unknown column accepted")
	}
	if _, err := db.Exec("UPDATE a SET x = 'text'"); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestCaseSearched(t *testing.T) {
	db := setupSetOps(t)
	rows := rowStrings(t, db, `
		SELECT x, CASE WHEN x < 2 THEN 'low' WHEN x < 3 THEN 'mid' ELSE 'high' END
		FROM a ORDER BY x`)
	want := []string{"1|low", "2|mid", "2|mid", "3|high"}
	if strings.Join(rows, ";") != strings.Join(want, ";") {
		t.Fatalf("case = %v", rows)
	}
}

func TestCaseWithOperand(t *testing.T) {
	db := setupSetOps(t)
	rows := rowStrings(t, db, `
		SELECT x, CASE x WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM a ORDER BY x`)
	want := []string{"1|one", "2|two", "2|two", "3|NULL"}
	if strings.Join(rows, ";") != strings.Join(want, ";") {
		t.Fatalf("case operand = %v", rows)
	}
}

func TestCaseNullNeverMatches(t *testing.T) {
	db := New()
	if err := db.ExecScript("CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (NULL)"); err != nil {
		t.Fatal(err)
	}
	rows := rowStrings(t, db, "SELECT CASE x WHEN 1 THEN 'a' ELSE 'other' END FROM t")
	if rows[0] != "other" {
		t.Fatalf("NULL operand matched: %v", rows)
	}
}

func TestCaseInAggregate(t *testing.T) {
	db := setupSetOps(t)
	// Conditional counting — the idiom CASE enables.
	n, err := db.QueryInt("SELECT SUM(CASE WHEN x >= 2 THEN 1 ELSE 0 END) FROM a")
	if err != nil || n != 3 {
		t.Fatalf("conditional sum = %d (%v)", n, err)
	}
}

func TestLimitOffset(t *testing.T) {
	db := setupSetOps(t)
	rows := rowStrings(t, db, "SELECT x FROM a ORDER BY x LIMIT 2")
	if strings.Join(rows, ",") != "1,2" {
		t.Fatalf("LIMIT = %v", rows)
	}
	rows = rowStrings(t, db, "SELECT x FROM a ORDER BY x LIMIT 2 OFFSET 1")
	if strings.Join(rows, ",") != "2,2" {
		t.Fatalf("LIMIT OFFSET = %v", rows)
	}
	rows = rowStrings(t, db, "SELECT x FROM a ORDER BY x OFFSET 3")
	if strings.Join(rows, ",") != "3" {
		t.Fatalf("OFFSET = %v", rows)
	}
	// Offset past the end is empty, not an error.
	rows = rowStrings(t, db, "SELECT x FROM a LIMIT 5 OFFSET 100")
	if len(rows) != 0 {
		t.Fatalf("big OFFSET = %v", rows)
	}
	// LIMIT 0 is empty.
	rows = rowStrings(t, db, "SELECT x FROM a LIMIT 0")
	if len(rows) != 0 {
		t.Fatalf("LIMIT 0 = %v", rows)
	}
	// LIMIT applies after set operations.
	rows = rowStrings(t, db, "SELECT x FROM a UNION SELECT x FROM b ORDER BY x LIMIT 3")
	if strings.Join(rows, ",") != "1,2,3" {
		t.Fatalf("set-op LIMIT = %v", rows)
	}
	if _, err := db.Query("SELECT x FROM a LIMIT 1.5"); err == nil {
		t.Fatal("fractional LIMIT accepted")
	}
}

func joinDB(t *testing.T) *Database {
	t.Helper()
	db := New()
	err := db.ExecScript(`
		CREATE TABLE emp (id INTEGER, name VARCHAR, dept INTEGER);
		CREATE TABLE dept (id INTEGER, dname VARCHAR);
		INSERT INTO emp VALUES (1, 'ann', 10), (2, 'bob', 20), (3, 'eve', NULL), (4, 'sam', 99);
		INSERT INTO dept VALUES (10, 'eng'), (20, 'ops'), (30, 'hr');
	`)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestInnerJoinOn(t *testing.T) {
	db := joinDB(t)
	rows := rowStrings(t, db, "SELECT e.name, d.dname FROM emp e JOIN dept d ON e.dept = d.id ORDER BY name")
	want := []string{"ann|eng", "bob|ops"}
	if strings.Join(rows, ";") != strings.Join(want, ";") {
		t.Fatalf("JOIN ON = %v", rows)
	}
	// INNER JOIN spelling is equivalent.
	rows2 := rowStrings(t, db, "SELECT e.name, d.dname FROM emp e INNER JOIN dept d ON e.dept = d.id ORDER BY name")
	if strings.Join(rows, ";") != strings.Join(rows2, ";") {
		t.Fatalf("INNER JOIN differs: %v", rows2)
	}
}

func TestLeftJoin(t *testing.T) {
	db := joinDB(t)
	rows := rowStrings(t, db, "SELECT e.name, d.dname FROM emp e LEFT JOIN dept d ON e.dept = d.id ORDER BY name")
	want := []string{"ann|eng", "bob|ops", "eve|NULL", "sam|NULL"}
	if strings.Join(rows, ";") != strings.Join(want, ";") {
		t.Fatalf("LEFT JOIN = %v", rows)
	}
	// LEFT OUTER JOIN spelling.
	rows2 := rowStrings(t, db, "SELECT e.name, d.dname FROM emp e LEFT OUTER JOIN dept d ON e.dept = d.id ORDER BY name")
	if strings.Join(rows, ";") != strings.Join(rows2, ";") {
		t.Fatalf("LEFT OUTER differs: %v", rows2)
	}
}

func TestJoinWithResidualCondition(t *testing.T) {
	db := joinDB(t)
	// Non-equi residual on top of the hash keys.
	rows := rowStrings(t, db, "SELECT e.name FROM emp e JOIN dept d ON e.dept = d.id AND e.id < 2 ORDER BY name")
	if strings.Join(rows, ",") != "ann" {
		t.Fatalf("residual = %v", rows)
	}
	// LEFT JOIN keeps rows the residual rejects, padded.
	rows = rowStrings(t, db, "SELECT e.name, d.dname FROM emp e LEFT JOIN dept d ON e.dept = d.id AND e.id < 2 ORDER BY name")
	want := []string{"ann|eng", "bob|NULL", "eve|NULL", "sam|NULL"}
	if strings.Join(rows, ";") != strings.Join(want, ";") {
		t.Fatalf("left residual = %v", rows)
	}
}

func TestChainedJoins(t *testing.T) {
	db := joinDB(t)
	if err := db.ExecScript(`
		CREATE TABLE loc (dept INTEGER, city VARCHAR);
		INSERT INTO loc VALUES (10, 'turin'), (20, 'milan');
	`); err != nil {
		t.Fatal(err)
	}
	rows := rowStrings(t, db, `
		SELECT e.name, d.dname, l.city
		FROM emp e JOIN dept d ON e.dept = d.id LEFT JOIN loc l ON d.id = l.dept
		ORDER BY name`)
	want := []string{"ann|eng|turin", "bob|ops|milan"}
	if strings.Join(rows, ";") != strings.Join(want, ";") {
		t.Fatalf("chained = %v", rows)
	}
}

func TestJoinMixedWithCommaList(t *testing.T) {
	db := joinDB(t)
	// Explicit join combined with a comma-list member.
	n, err := db.QueryInt(`
		SELECT COUNT(*) FROM emp e JOIN dept d ON e.dept = d.id, dept d2
		WHERE d2.id = 30`)
	if err != nil || n != 2 {
		t.Fatalf("mixed join = %d (%v)", n, err)
	}
}

func TestJoinOnNonEquiOnly(t *testing.T) {
	db := joinDB(t)
	// Pure theta join through the ON clause.
	n, err := db.QueryInt("SELECT COUNT(*) FROM emp e JOIN dept d ON e.dept < d.id")
	if err != nil {
		t.Fatal(err)
	}
	// dept values: 10 → {20,30}: 2; 20 → {30}: 1; NULL: 0; 99: 0.
	if n != 3 {
		t.Fatalf("theta ON = %d", n)
	}
}

func TestOrderByInputColumns(t *testing.T) {
	db := New()
	err := db.ExecScript(`
		CREATE TABLE t (a INTEGER, b VARCHAR);
		INSERT INTO t VALUES (3, 'x'), (1, 'z'), (2, 'y');
	`)
	if err != nil {
		t.Fatal(err)
	}
	// The sort key is not in the projection: pre-sort path.
	rows := rowStrings(t, db, "SELECT b FROM t ORDER BY a")
	if strings.Join(rows, ",") != "x,z,y" && strings.Join(rows, ",") != "x,z,y" {
		// a ascending: 1,2,3 → z,y,x
	}
	if strings.Join(rows, ",") != "z,y,x" {
		t.Fatalf("ORDER BY dropped column = %v", rows)
	}
	rows = rowStrings(t, db, "SELECT b FROM t ORDER BY a DESC")
	if strings.Join(rows, ",") != "x,y,z" {
		t.Fatalf("DESC = %v", rows)
	}
	// Output aliases take precedence over input columns of the same name.
	rows = rowStrings(t, db, "SELECT a * -1 AS a, b FROM t ORDER BY a")
	if strings.Join(rows, ";") != "-3|x;-2|y;-1|z" {
		t.Fatalf("alias precedence = %v", rows)
	}
	// Qualified input references.
	rows = rowStrings(t, db, "SELECT b FROM t u ORDER BY u.a")
	if strings.Join(rows, ",") != "z,y,x" {
		t.Fatalf("qualified input sort = %v", rows)
	}
	// DISTINCT still requires output-resolvable keys.
	if _, err := db.Query("SELECT DISTINCT b FROM t ORDER BY a"); err == nil {
		t.Fatal("DISTINCT with dropped sort key accepted")
	}
}

func TestScalarFunctions(t *testing.T) {
	db := New()
	if err := db.ExecScript("CREATE TABLE f (s VARCHAR, x FLOAT, i INTEGER); INSERT INTO f VALUES ('  Hello  ', 2.567, -4)"); err != nil {
		t.Fatal(err)
	}
	cases := map[string]string{
		"SELECT UPPER(s) FROM f":                "  HELLO  ",
		"SELECT LOWER(s) FROM f":                "  hello  ",
		"SELECT TRIM(s) FROM f":                 "Hello",
		"SELECT LENGTH(TRIM(s)) FROM f":         "5",
		"SELECT SUBSTR(TRIM(s), 2) FROM f":      "ello",
		"SELECT SUBSTR(TRIM(s), 2, 2) FROM f":   "el",
		"SELECT SUBSTR(TRIM(s), 99) FROM f":     "",
		"SELECT ROUND(x) FROM f":                "3",
		"SELECT ROUND(x, 1) FROM f":             "2.6",
		"SELECT ROUND(x, -1) FROM f":            "0",
		"SELECT ABS(i) FROM f":                  "4",
		"SELECT MOD(7, 3) FROM f":               "1",
		"SELECT COALESCE(NULL, NULL, s) FROM f": "  Hello  ",
	}
	for q, want := range cases {
		rows := rowStrings(t, db, q)
		if len(rows) != 1 || rows[0] != want {
			t.Errorf("%s = %v, want %q", q, rows, want)
		}
	}
	// NULL propagation.
	if err := db.ExecScript("INSERT INTO f VALUES (NULL, NULL, NULL)"); err != nil {
		t.Fatal(err)
	}
	n, _ := db.QueryInt("SELECT COUNT(*) FROM f WHERE TRIM(s) IS NULL AND ROUND(x) IS NULL AND SUBSTR(s, 1) IS NULL")
	if n != 1 {
		t.Errorf("NULL propagation through scalar functions: %d", n)
	}
	// Errors.
	for _, q := range []string{
		"SELECT NOSUCHFUNC(s) FROM f",
		"SELECT SUBSTR(s) FROM f",
		"SELECT ROUND(s) FROM f",
		"SELECT MOD(1, 0) FROM f",
	} {
		if _, err := db.Query(q); err == nil {
			t.Errorf("%s should fail", q)
		}
	}
}

func TestDateArithmetic(t *testing.T) {
	db := New()
	if err := db.ExecScript("CREATE TABLE d (dt DATE); INSERT INTO d VALUES (DATE '1995-12-31')"); err != nil {
		t.Fatal(err)
	}
	rows := rowStrings(t, db, "SELECT dt + 1, dt - 1 FROM d")
	if rows[0] != "1996-01-01|1995-12-30" {
		t.Fatalf("date arithmetic = %v", rows)
	}
	// Date difference in days.
	n, err := db.QueryInt("SELECT dt - DATE '1995-12-01' FROM d")
	if err != nil || n != 30 {
		t.Fatalf("date diff = %d (%v)", n, err)
	}
	// Windowed temporal predicate — the idiom for "within a week".
	if err := db.ExecScript("INSERT INTO d VALUES (DATE '1996-01-03'), (DATE '1996-02-01')"); err != nil {
		t.Fatal(err)
	}
	n, err = db.QueryInt("SELECT COUNT(*) FROM d a, d b WHERE b.dt > a.dt AND b.dt - a.dt <= 7")
	if err != nil || n != 1 {
		t.Fatalf("temporal window join = %d (%v)", n, err)
	}
}

func TestAggregatesOverDates(t *testing.T) {
	db := New()
	err := db.ExecScript(`
		CREATE TABLE d (g INTEGER, dt DATE);
		INSERT INTO d VALUES (1, DATE '1995-01-05'), (1, DATE '1995-01-01'), (2, DATE '1995-06-01');
	`)
	if err != nil {
		t.Fatal(err)
	}
	rows := rowStrings(t, db, "SELECT g, MIN(dt), MAX(dt) FROM d GROUP BY g ORDER BY g")
	want := []string{"1|1995-01-01|1995-01-05", "2|1995-06-01|1995-06-01"}
	if strings.Join(rows, ";") != strings.Join(want, ";") {
		t.Fatalf("date aggregates = %v", rows)
	}
}
