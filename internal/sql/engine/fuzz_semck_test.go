package engine

import (
	"context"
	"strings"
	"testing"
	"time"

	"minerule/internal/resource"
)

// staticErrMarkers are the error classes the semantic checker promises
// to preclude: when semck accepts a statement, the executor must never
// fail name resolution, function lookup or aggregate placement on it.
// Data-dependent failures (division by zero, date parsing, row limits,
// storage type errors on statically-NULL expressions) remain legal.
var staticErrMarkers = []string{
	"exec: unknown table or view ",
	"exec: unknown table ",
	"exec: unknown sequence ",
	"exec: unknown function ",
	"schema: unknown column ",
	"schema: ambiguous column reference ",
	"outside GROUP BY context",
	"takes one argument",
}

// FuzzSemCheck is the differential fuzz between the prepare-time
// semantic checker and the executor. Every statement is pushed through
// the full engine path (parse → semck → exec); the properties are:
//
//  1. no input text panics or hangs the checker or the engine;
//  2. a statement that passes semck (i.e. reaches the executor) never
//     fails with a static-analysis error class at runtime.
//
// Seeds cover the shapes of the kernel translator's generated program
// (Q0–Q11: source materialisation, group encoding with NEXTVAL and
// HAVING, cluster coupling self-joins, rule decode joins) plus the
// hand-written semck corpus. Run with:
// go test -fuzz FuzzSemCheck ./internal/sql/engine
func FuzzSemCheck(f *testing.F) {
	seeds := []string{
		// Q0/Q1 shape: source view + total-group count.
		"CREATE VIEW mrsrc AS SELECT a, b, d FROM t",
		"SELECT COUNT(*) FROM (SELECT DISTINCT a FROM t)",
		// Q2 shape: group encoding with a sequence and HAVING.
		"CREATE TABLE vg (mr_gid INTEGER, a INTEGER);" +
			" INSERT INTO vg (SELECT seq.NEXTVAL AS mr_gid, V.a FROM (SELECT DISTINCT a FROM t) AS V)",
		"CREATE TABLE bs (mr_bid INTEGER, b VARCHAR, mr_gcount INTEGER);" +
			" INSERT INTO bs (SELECT seq.NEXTVAL, b, COUNT(*) FROM t GROUP BY b HAVING COUNT(*) >= 1)",
		// Q3 shape: cluster-couple self-join.
		"SELECT b.a AS mr_bcid, h.a AS mr_hcid FROM t b, t h WHERE b.a = h.a AND b.b < h.b",
		// Q5/Q6 shape: coded-source join plus grouped support count.
		"SELECT DISTINCT V.a, B.b FROM t S, t V, t B WHERE S.a = V.a AND S.b = B.b",
		"SELECT a, b, COUNT(DISTINCT d) AS mr_scount FROM t GROUP BY a, b",
		// Q8-Q10/decode shape: rule materialisation and decode joins.
		"SELECT e.a, l.b FROM t e, s l WHERE e.a = l.x AND l.x >= 1",
		"INSERT INTO s (SELECT a, b FROM t WHERE d IS NOT NULL)",
		// semck corpus: typing, aggregates, subqueries, set ops, DDL.
		"SELECT ROUND(AVG(a), 2) FROM t GROUP BY b HAVING COUNT(*) > 1",
		"SELECT a FROM t WHERE EXISTS (SELECT 1 FROM s WHERE s.x = t.a)",
		"SELECT a FROM t UNION SELECT x FROM s ORDER BY 1",
		"SELECT CASE WHEN a > 1 THEN b ELSE 'none' END FROM t",
		"SELECT d + 1, d - d FROM t WHERE d > '2020-01-01'",
		"SELECT COALESCE(b, 'x'), SUBSTR(b, 1, 2) FROM t",
		"UPDATE t SET a = a + 1 WHERE b LIKE 'x%'",
		"CREATE TABLE u (x INTEGER); INSERT INTO u VALUES (1); DROP TABLE u",
		"CREATE VIEW w AS SELECT a FROM t; SELECT * FROM w; DROP VIEW w",
		"EXPLAIN SELECT a FROM t WHERE a > 0",
		// Statically ill-typed: semck must reject, never panic.
		"SELECT a + b FROM t",
		"SELECT * FROM nosuch",
		"SELECT NOSUCHFUNC(a) FROM t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			return // bound parse/check/exec work per iteration
		}
		db := New()
		if err := db.ExecScript(`
			CREATE TABLE t (a INTEGER, b VARCHAR, d DATE);
			INSERT INTO t VALUES (1, 'x', '2020-01-02'), (2, 'y', '2021-03-04'), (2, NULL, NULL);
			CREATE TABLE s (x INTEGER, y VARCHAR);
			INSERT INTO s VALUES (1, 'x');
			CREATE SEQUENCE seq;
		`); err != nil {
			t.Fatal(err)
		}
		db.SetLimits(resource.Limits{MaxRows: 10000})
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		for _, stmt := range strings.Split(src, ";") {
			_, err := db.ExecContext(ctx, stmt)
			if err == nil {
				continue
			}
			msg := err.Error()
			if strings.Contains(msg, "semck:") || strings.Contains(msg, "parse:") {
				continue // rejected before execution: the checker's job
			}
			for _, marker := range staticErrMarkers {
				if strings.Contains(msg, marker) {
					t.Fatalf("statement passed semck but failed statically at runtime:\n  stmt: %s\n  err:  %v", stmt, err)
				}
			}
		}
	})
}
