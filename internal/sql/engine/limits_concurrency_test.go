package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"minerule/internal/resource"
)

// TestSetLimitsConcurrentWithExecution is the -race regression test for
// the old data race: SetLimits used to write plain struct fields that
// running statements read mid-flight. Limits are now an atomic pointer
// copied at statement start, so changing the default while statements
// run must be clean under the race detector and never corrupt a bound.
func TestSetLimitsConcurrentWithExecution(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE t (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: flips the engine-wide default between unbounded and a
	// bound generous enough to never trip.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				db.SetLimits(resource.Limits{MaxRows: 100000})
			} else {
				db.SetLimits(resource.Limits{})
			}
		}
	}()

	// Readers: statements that must never observe a torn limit.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				res, err := db.Query("SELECT COUNT(*) FROM t")
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				if res.Rows[0][0].Int() != 50 {
					t.Errorf("count = %v", res.Rows[0][0])
					return
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	defer func() { <-done }()
	defer close(stop)
}

// TestContextLimitsOverrideDefault: limits carried on the statement
// context take precedence over the engine-wide default, and neither
// leaks into the other.
func TestContextLimitsOverrideDefault(t *testing.T) {
	db := New()
	if _, err := db.Exec("CREATE TABLE t (a INTEGER)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO t VALUES (%d)", i)); err != nil {
			t.Fatal(err)
		}
	}

	// Context bound trips even though the default is unbounded.
	ctx := resource.WithLimits(context.Background(), resource.Limits{MaxRows: 3})
	if _, err := db.ExecContext(ctx, "SELECT * FROM t"); !errors.Is(err, resource.ErrBudgetExceeded) {
		t.Fatalf("ctx limit: want ErrBudgetExceeded, got %v", err)
	}

	// Tight default trips a plain statement…
	db.SetLimits(resource.Limits{MaxRows: 3})
	if _, err := db.Exec("SELECT * FROM t"); !errors.Is(err, resource.ErrBudgetExceeded) {
		t.Fatalf("default limit: want ErrBudgetExceeded, got %v", err)
	}
	// …but a generous context override wins over it.
	ctx = resource.WithLimits(context.Background(), resource.Limits{MaxRows: 100})
	if _, err := db.ExecContext(ctx, "SELECT * FROM t"); err != nil {
		t.Fatalf("ctx override must win over default: %v", err)
	}

	// Concurrent sessions with different ctx limits don't interfere.
	db.SetLimits(resource.Limits{})
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var l resource.Limits
			if g%2 == 0 {
				l = resource.Limits{MaxRows: 2} // trips
			} else {
				l = resource.Limits{MaxRows: 1000} // passes
			}
			ctx := resource.WithLimits(context.Background(), l)
			for i := 0; i < 10; i++ {
				_, err := db.ExecContext(ctx, "SELECT * FROM t")
				if g%2 == 0 {
					if !errors.Is(err, resource.ErrBudgetExceeded) {
						errs[g] = fmt.Errorf("tight session run %d: want trip, got %v", i, err)
						return
					}
				} else if err != nil {
					errs[g] = fmt.Errorf("loose session run %d: %v", i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}
