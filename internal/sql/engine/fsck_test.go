package engine

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"minerule/internal/sql/vfs"
)

// seedCheckpointed builds a small durable database, checkpoints it (so
// the live generation has real heap files), and closes it.
func seedCheckpointed(t *testing.T, dir string) {
	t.Helper()
	db := openDurable(t, dir)
	if err := db.ExecScript(durableSeed); err != nil {
		t.Fatal(err)
	}
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec("INSERT INTO Purchase VALUES (3, 'jackets', 300.0)"); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
}

func runFsck(t *testing.T, dir string, salvage bool) *FsckReport {
	t.Helper()
	r, err := Fsck(vfs.OS, dir, FsckOptions{Salvage: salvage})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestFsckHealthy(t *testing.T) {
	dir := t.TempDir()
	seedCheckpointed(t, dir)
	r := runFsck(t, dir, false)
	if !r.Healthy() {
		t.Fatalf("healthy database reported problems:\n%s", r)
	}
	if r.Generation != 2 {
		t.Fatalf("generation %d, want 2", r.Generation)
	}
	if len(r.Tables) != 1 || r.Tables[0].Rows != 3 {
		t.Fatalf("tables %+v, want one table with 3 rows", r.Tables)
	}
	// The post-checkpoint INSERT lives in the WAL, not the heap.
	if r.WalRecords != 2 { // checkpoint marker + insert
		t.Fatalf("wal records %d, want 2:\n%s", r.WalRecords, r)
	}
}

func TestFsckEmptyDir(t *testing.T) {
	r := runFsck(t, filepath.Join(t.TempDir(), "nope"), false)
	if !r.Empty || !r.Healthy() {
		t.Fatalf("missing dir: empty=%v healthy=%v", r.Empty, r.Healthy())
	}
}

func TestFsckMissingCurrentSalvage(t *testing.T) {
	dir := t.TempDir()
	seedCheckpointed(t, dir)
	if err := os.Remove(filepath.Join(dir, "CURRENT")); err != nil {
		t.Fatal(err)
	}

	// Opening must refuse to wipe the data, and point at fsck.
	if _, err := Open(dir, 0); err == nil || !strings.Contains(err.Error(), "minerule-fsck") {
		t.Fatalf("Open on pointer-less dir: err = %v, want fsck hint", err)
	}

	r := runFsck(t, dir, false)
	if r.Healthy() {
		t.Fatal("missing CURRENT reported healthy without salvage")
	}
	if r.Generation != 2 {
		t.Fatalf("picked generation %d for salvage, want 2", r.Generation)
	}

	r = runFsck(t, dir, true)
	if !r.Healthy() {
		t.Fatalf("salvage left problems:\n%s", r)
	}
	db := openDurable(t, dir)
	defer db.Close()
	if got := countRows(t, db, "Purchase"); got != 4 {
		t.Fatalf("salvaged db has %d rows, want 4", got)
	}
}

func TestFsckTornTailSalvage(t *testing.T) {
	dir := t.TempDir()
	seedCheckpointed(t, dir)
	wal := filepath.Join(dir, "wal-2.log")
	f, err := os.OpenFile(wal, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0, 0, 0, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	r := runFsck(t, dir, false)
	if r.Healthy() || r.WalTornBytes != 6 {
		t.Fatalf("torn tail not reported (torn=%d):\n%s", r.WalTornBytes, r)
	}

	r = runFsck(t, dir, true)
	if !r.Healthy() || r.WalTornBytes != 0 {
		t.Fatalf("salvage did not truncate torn tail:\n%s", r)
	}
	if st, _ := os.Stat(wal); st.Size() != r.WalValidEnd {
		t.Fatalf("wal size %d after salvage, want %d", st.Size(), r.WalValidEnd)
	}
	db := openDurable(t, dir)
	defer db.Close()
	if got := countRows(t, db, "Purchase"); got != 4 {
		t.Fatalf("after salvage: %d rows, want 4", got)
	}
}

func TestFsckCorruptHeapPage(t *testing.T) {
	dir := t.TempDir()
	seedCheckpointed(t, dir)
	heap := filepath.Join(dir, "gen-2", "t0.heap")
	b, err := os.ReadFile(heap)
	if err != nil {
		t.Fatal(err)
	}
	b[100] ^= 0x01 // one flipped bit in the first page's payload
	if err := os.WriteFile(heap, b, 0o644); err != nil {
		t.Fatal(err)
	}

	r := runFsck(t, dir, true) // salvage must NOT claim to fix lost bytes
	if r.Healthy() {
		t.Fatalf("bit-rotted heap reported healthy:\n%s", r)
	}
	if len(r.Tables) != 1 || len(r.Tables[0].CorruptPages) == 0 {
		t.Fatalf("corrupt page not localized: %+v", r.Tables)
	}
	for _, p := range r.Problems {
		if p.Salvaged && strings.Contains(p.Detail, "CRC") {
			t.Fatalf("CRC damage marked salvaged: %+v", p)
		}
	}
}

func TestFsckLeakedArtifacts(t *testing.T) {
	dir := t.TempDir()
	seedCheckpointed(t, dir)
	// Simulate an interrupted checkpoint: a stale pointer temp file, a
	// partial generation, and its log.
	for _, junk := range []string{"CURRENT.tmp", "wal-9.log"} {
		if err := os.WriteFile(filepath.Join(dir, junk), []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if err := os.MkdirAll(filepath.Join(dir, "gen-9"), 0o755); err != nil {
		t.Fatal(err)
	}

	r := runFsck(t, dir, false)
	if r.Healthy() {
		t.Fatal("leaked artifacts reported healthy")
	}
	// The live generation must win over the junk gen-9 (which has no
	// catalog and cannot verify).
	if r.Generation != 2 {
		t.Fatalf("generation %d, want 2", r.Generation)
	}

	r = runFsck(t, dir, true)
	if !r.Healthy() {
		t.Fatalf("salvage left problems:\n%s", r)
	}
	for _, junk := range []string{"CURRENT.tmp", "wal-9.log", "gen-9"} {
		if _, err := os.Stat(filepath.Join(dir, junk)); !os.IsNotExist(err) {
			t.Fatalf("%s survived salvage (err=%v)", junk, err)
		}
	}
	db := openDurable(t, dir)
	db.Close()
}
