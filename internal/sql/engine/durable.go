package engine

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"log"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"minerule/internal/obsv"
	"minerule/internal/resource"
	"minerule/internal/sql/pager"
	"minerule/internal/sql/schema"
	"minerule/internal/sql/storage"
	"minerule/internal/sql/vfs"
	"minerule/internal/sql/wal"
)

// The durable store keeps a database directory in the LevelDB CURRENT
// style:
//
//	CURRENT      — the live generation number, swapped atomically
//	gen-N/       — checkpoint N: catalog.json + one heap file per table
//	wal-N.log    — redo log of everything since checkpoint N
//
// Opening loads the generation named by CURRENT, replays wal-N.log over
// it (skipping records at or below the snapshot's LSN), truncates any
// torn tail, and attaches itself as the catalog's journal. A checkpoint
// writes gen-(N+1) and an empty wal-(N+1).log, fsyncs both, and only
// then swaps CURRENT — a crash at any point leaves the previous
// generation fully intact. LSNs stay monotone across generations.
//
// Tables remain memory-resident: the heap files and buffer pool serve
// open-time loads and checkpoint writes, while statement reads keep the
// in-memory fast paths (and their alloc profile) untouched.

const (
	currentFile = "CURRENT"
	// autoCheckpointBytes triggers a checkpoint at commit once the live
	// WAL outgrows it, bounding recovery replay time.
	autoCheckpointBytes = 4 << 20
	// appendRetries bounds the retry-with-backoff loop for transient EIO
	// on WAL appends; the first backoff is appendBackoff, doubling.
	appendRetries = 3
	appendBackoff = time.Millisecond
)

// snapTable is one table entry of a checkpoint's catalog.json. Rows live
// in the named heap file; Heap is relative to the generation directory.
type snapTable struct {
	Name string          `json:"name"`
	Cols []schema.Column `json:"cols"`
	Heap string          `json:"heap"`
}

type snapView struct {
	Name string `json:"name"`
	Text string `json:"text"`
}

type snapSequence struct {
	Name string `json:"name"`
	Next int64  `json:"next"` // logged ceiling, not the live value
}

type snapIndex struct {
	Name  string `json:"name"`
	Table string `json:"table"`
	Col   int    `json:"col"`
}

// snapshot is the catalog.json schema of one checkpoint generation.
type snapshot struct {
	LastLSN   uint64         `json:"last_lsn"`
	Tables    []snapTable    `json:"tables"`
	Views     []snapView     `json:"views"`
	Sequences []snapSequence `json:"sequences"`
	Indexes   []snapIndex    `json:"indexes"`
}

// store is the durable backend of a Database: it implements
// storage.Journal (every catalog and table mutation reaches the WAL
// before it is applied in memory) and txn.CommitJournal (transactions
// log their write set as one atomic frame and wait for durability
// through the shared group-commit fsync).
//
// Lock order (see DESIGN.md §16): syncMu → Catalog publish lock →
// catalog/table/sequence locks → walMu. walMu is terminal: nothing is
// acquired under it.
type store struct {
	fs   vfs.FS
	dir  string
	cat  *storage.Catalog
	pool *pager.Pool
	met  *obsv.Metrics

	// walMu serializes log appends and guards the writer plus the
	// journal health flags. Appends are memory-speed (the fsync happens
	// in SyncTo), so the critical sections are short.
	walMu sync.Mutex
	gen   uint64      // guarded by walMu
	w     *wal.Writer // guarded by walMu
	// applied is the LSN of the newest record reflected in the live
	// catalog (from the snapshot, replay, or an accepted append). Replay
	// skips records at or below it, which is what makes recovery — and
	// replaying a log twice — idempotent.
	applied uint64 // guarded by walMu

	// sticky is the first journal failure that could not propagate to
	// its caller (NEXTVAL cannot fail); the next commit surfaces it and
	// the store refuses further writes.
	sticky error // guarded by walMu
	// degraded is set the moment durability is lost — a WAL fsync
	// failed, or a torn append could not be repaired. The store stays
	// queryable but every mutation, checkpoint, and close returns this
	// same *resource.DegradedError (fsyncgate: a failed fsync is never
	// followed by a successful write acknowledgment).
	degraded error // guarded by walMu

	// seqCeil tracks each sequence's journaled NEXTVAL ceiling, updated
	// in the same walMu critical section as the SeqBump append. A
	// checkpoint reads it instead of the live sequences, so the manifest
	// ceiling provably covers every bump at or below the manifest LSN
	// without ever taking a sequence lock under walMu.
	seqCeil map[string]int64 // guarded by walMu; lowercase name → ceiling

	closed   bool  // guarded by walMu
	closeErr error // guarded by walMu

	scratch []byte // guarded by walMu; payload encode buffer

	// syncMu elects the group-commit leader and serializes checkpoints:
	// one SyncTo caller fsyncs on behalf of everyone whose records the
	// fsync covers; the rest return on the synced watermark alone.
	syncMu sync.Mutex
	// synced is the highest LSN known durable (watermark). Written only
	// by the leader under syncMu; read lock-free by followers.
	synced atomic.Uint64
}

func genDir(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("gen-%d", gen))
}

func walPath(dir string, gen uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%d.log", gen))
}

func heapName(i int) string { return fmt.Sprintf("t%d.heap", i) }

// listGenerations returns the generation numbers present in dir (from
// gen-N directory entries), in directory order.
func listGenerations(fsys vfs.FS, dir string) []uint64 {
	names, err := fsys.ReadDir(dir)
	if err != nil {
		return nil
	}
	var gens []uint64
	for _, name := range names {
		if n, ok := strings.CutPrefix(name, "gen-"); ok {
			if g, err := strconv.ParseUint(n, 10, 64); err == nil {
				gens = append(gens, g)
			}
		}
	}
	return gens
}

// syncDir fsyncs a directory so renames and creations inside it are
// durable before the caller proceeds.
func syncDir(fsys vfs.FS, path string) error {
	if err := fsys.SyncDir(path); err != nil {
		return resource.NewIOError("dir fsync", err)
	}
	return nil
}

// openStore opens (creating if empty) the database directory on fsys
// and brings cat to the recovered state. The catalog must be empty. On
// return the store is attached as cat's journal.
func openStore(fsys vfs.FS, dir string, poolPages int, cat *storage.Catalog, met *obsv.Metrics) (*store, error) {
	if err := fsys.MkdirAll(dir); err != nil {
		return nil, resource.NewIOError("db dir", err)
	}
	s := &store{fs: fsys, dir: dir, cat: cat, pool: pager.NewPool(poolPages), met: met}
	s.pool.Met = met

	cur, err := fsys.ReadFile(filepath.Join(dir, currentFile))
	switch {
	case errors.Is(err, fs.ErrNotExist):
		// Corruption defense: a directory holding generation data whose
		// CURRENT pointer is missing is damaged, not fresh — initializing
		// it would silently wipe the database. minerule-fsck -salvage can
		// rebuild the pointer.
		if gens := listGenerations(fsys, dir); len(gens) > 0 {
			return nil, fmt.Errorf("engine: %s has generation data but no CURRENT pointer; run minerule-fsck -salvage", dir)
		}
		// The store is not yet shared; walMu is taken only to satisfy
		// the guarded-by contract on the fields initFresh populates.
		s.walMu.Lock()
		err := s.initFresh()
		s.walMu.Unlock()
		if err != nil {
			return nil, err
		}
	case err != nil:
		return nil, resource.NewIOError("read CURRENT", err)
	default:
		gen, perr := strconv.ParseUint(strings.TrimSpace(string(cur)), 10, 64)
		if perr != nil {
			return nil, fmt.Errorf("engine: corrupt CURRENT file in %s: %w", dir, perr)
		}
		s.gen = gen
		s.walMu.Lock()
		err := s.recover()
		s.walMu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	// Every record in the log was just read back from disk (or the log
	// is empty), so the recovered tail is durable by construction.
	s.synced.Store(s.w.LastLSN())
	// Seed the journaled-ceiling map from the recovered sequences; from
	// here on SequenceBump maintains it append-atomically.
	s.seqCeil = make(map[string]int64)
	for _, name := range cat.SequenceNames() {
		if sq, ok := cat.Sequence(name); ok {
			s.seqCeil[strings.ToLower(name)] = sq.LoggedCeiling()
		}
	}
	cat.SetJournal(s)
	return s, nil
}

// initFresh lays out generation 1 of a brand-new database: an empty
// snapshot, an empty log, and a CURRENT file — in that order, so a crash
// mid-init leaves a directory open treats as still uninitialized.
func (s *store) initFresh() error {
	s.gen = 1
	if err := writeSnapshot(s.fs, genDir(s.dir, 1), &snapshot{}, nil, s.pool); err != nil {
		return err
	}
	w, err := wal.Create(s.fs, walPath(s.dir, 1), 0)
	if err != nil {
		return err
	}
	if err := w.Sync(); err != nil {
		w.Close()
		return err
	}
	s.w = w
	s.w.Met = s.met
	if err := s.swapCurrent(1); err != nil {
		s.w.Close()
		return err
	}
	return nil
}

// recover loads generation s.gen and replays its WAL. The journal is
// still detached, so replayed records mutate memory without re-logging.
func (s *store) recover() error {
	snap, err := s.loadSnapshot(genDir(s.dir, s.gen))
	if err != nil {
		return err
	}
	s.applied = snap.LastLSN
	validEnd, lastLSN, err := s.replayLog()
	if err != nil {
		return err
	}
	if lastLSN < s.applied {
		lastLSN = s.applied
	}
	w, err := wal.OpenAppend(s.fs, walPath(s.dir, s.gen), validEnd, lastLSN)
	if err != nil {
		return err
	}
	s.w = w
	s.w.Met = s.met
	return nil
}

// replayLog redoes the live generation's log over the catalog, skipping
// records at or below s.applied and advancing it — so a second call (or
// a replay over a freshly loaded snapshot that already contains a log
// prefix) changes nothing.
func (s *store) replayLog() (validEnd int64, lastLSN uint64, err error) {
	path := walPath(s.dir, s.gen)
	validEnd, lastLSN, tornTail, err := wal.Replay(s.fs, path, func(r *wal.Record) error {
		if r.LSN <= s.applied {
			return nil
		}
		if err := applyRecord(s.cat, r); err != nil {
			return err
		}
		s.applied = r.LSN
		s.met.RecoveryRecords.Inc()
		return nil
	})
	if err != nil {
		return 0, 0, fmt.Errorf("engine: recovering %s: %w", path, err)
	}
	if tornTail > 0 {
		s.met.WalTornTruncations.Inc()
		log.Printf("minerule/storage: %s: truncating %d-byte torn tail at offset %d (crash artifact; the valid prefix is the recovered state)",
			path, tornTail, validEnd)
	}
	return validEnd, lastLSN, nil
}

// loadSnapshot reads one generation into the (empty, journal-detached)
// catalog and returns its manifest.
func (s *store) loadSnapshot(dir string) (*snapshot, error) {
	b, err := s.fs.ReadFile(filepath.Join(dir, "catalog.json"))
	if err != nil {
		return nil, resource.NewIOError("read snapshot", err)
	}
	var snap snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return nil, fmt.Errorf("engine: corrupt snapshot in %s: %w", dir, err)
	}
	for _, st := range snap.Tables {
		t, err := s.cat.CreateTable(st.Name, schema.New(st.Name, st.Cols...))
		if err != nil {
			return nil, err
		}
		f, err := pager.OpenFile(s.fs, filepath.Join(dir, st.Heap))
		if err != nil {
			return nil, err
		}
		var rows []schema.Row
		err = pager.ScanHeap(s.pool, f, func(rec []byte) error {
			row, rest, derr := schema.DecodeRowBinary(rec)
			if derr != nil {
				return derr
			}
			if len(rest) != 0 {
				return fmt.Errorf("engine: %d trailing bytes in heap row of %s", len(rest), st.Name)
			}
			rows = append(rows, row)
			return nil
		})
		s.pool.DropFile(f)
		f.Close()
		if err != nil {
			return nil, err
		}
		if err := t.InsertAll(rows); err != nil {
			return nil, err
		}
	}
	for _, v := range snap.Views {
		if err := s.cat.CreateView(v.Name, v.Text); err != nil {
			return nil, err
		}
	}
	for _, sq := range snap.Sequences {
		seq, err := s.cat.CreateSequence(sq.Name)
		if err != nil {
			return nil, err
		}
		seq.Restore(sq.Next)
	}
	for _, ix := range snap.Indexes {
		if _, err := s.cat.CreateIndex(ix.Name, ix.Table, ix.Col); err != nil {
			return nil, err
		}
	}
	return &snap, nil
}

// applyRecord redoes one WAL record against the catalog. It is only
// called with the journal detached (recovery), so nothing re-logs.
func applyRecord(cat *storage.Catalog, r *wal.Record) error {
	table := func() (*storage.Table, error) {
		t, ok := cat.Table(r.Name)
		if !ok {
			return nil, fmt.Errorf("engine: %s record for unknown table %q", r.Kind, r.Name)
		}
		return t, nil
	}
	switch r.Kind {
	case wal.KindCreateTable:
		_, err := cat.CreateTable(r.Name, schema.New(r.Name, r.Cols...))
		return err
	case wal.KindDropTable:
		return cat.DropTable(r.Name)
	case wal.KindCreateView:
		return cat.CreateView(r.Name, r.Text)
	case wal.KindDropView:
		return cat.DropView(r.Name)
	case wal.KindCreateSequence:
		_, err := cat.CreateSequence(r.Name)
		return err
	case wal.KindDropSequence:
		return cat.DropSequence(r.Name)
	case wal.KindCreateIndex:
		_, err := cat.CreateIndex(r.Name, r.Table, r.Col)
		return err
	case wal.KindDropIndex:
		return cat.DropIndex(r.Name)
	case wal.KindInsert:
		t, err := table()
		if err != nil {
			return err
		}
		return t.InsertAll(r.Rows)
	case wal.KindTruncate:
		t, err := table()
		if err != nil {
			return err
		}
		return t.Truncate()
	case wal.KindReplace:
		t, err := table()
		if err != nil {
			return err
		}
		return t.Replace(r.Rows)
	case wal.KindSeqBump:
		sq, ok := cat.Sequence(r.Name)
		if !ok {
			return fmt.Errorf("engine: SEQ BUMP for unknown sequence %q", r.Name)
		}
		sq.Restore(r.Next)
		return nil
	case wal.KindTxn:
		// One committed transaction: redo the write set in order. The
		// frame was appended (and CRC-covered) as a unit, so replay sees
		// all of the commit or none of it.
		for _, sub := range r.Subs {
			if err := applyRecord(cat, sub); err != nil {
				return err
			}
		}
		return nil
	case wal.KindCheckpoint:
		return nil // generation marker; state lives in the snapshot
	default:
		return fmt.Errorf("engine: unknown WAL record kind %d", r.Kind)
	}
}

// ---------------------------------------------------------------------------
// Journal implementation

// append serializes one record append under walMu (journal-first
// discipline for DDL and side-channel records; transaction commits go
// through AppendBatch).
func (s *store) append(rec *wal.Record) error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	return s.appendLocked(rec, nil)
}

// appendLocked encodes rec, invokes the caller's page-I/O charge on the
// exact frame size, and writes the frame. A budget or I/O error vetoes
// the in-memory mutation (the storage layer applies only after the
// journal accepts — journal-first discipline). Caller holds walMu.
//
// Failure classification:
//   - ENOSPC: the torn frame is truncated off and the mutation vetoed
//     with a plain I/O error — a full disk rejects writes, it does not
//     poison the store. After space is freed, writes flow again.
//   - transient EIO: the tail is repaired and the append retried with
//     bounded exponential backoff; only a persistent fault degrades.
//   - anything else (or an unrepairable tail): degraded mode — the
//     log's tail state is unknown, durability can no longer be claimed.
func (s *store) appendLocked(rec *wal.Record, charge func(pages int) error) error {
	if s.degraded != nil {
		return s.degraded
	}
	if s.sticky != nil {
		return s.sticky
	}
	rec.LSN = s.w.LastLSN() + 1
	s.scratch = rec.AppendPayload(s.scratch[:0])
	frameLen := len(s.scratch) + wal.FrameOverhead
	if charge != nil {
		if err := charge((frameLen + pager.PageSize - 1) / pager.PageSize); err != nil {
			return err
		}
	}
	backoff := appendBackoff
	for attempt := 0; ; attempt++ {
		_, err := s.w.AppendEncoded(s.scratch)
		if err == nil {
			break
		}
		switch {
		case errors.Is(err, syscall.ENOSPC):
			if rerr := s.w.Repair(); rerr != nil {
				return s.degradeLocked(rerr)
			}
			s.met.EnospcVetoes.Inc()
			return err
		case errors.Is(err, syscall.EIO) && attempt < appendRetries:
			if rerr := s.w.Repair(); rerr != nil {
				return s.degradeLocked(rerr)
			}
			s.met.IORetries.Inc()
			time.Sleep(backoff)
			backoff *= 2
		default:
			return s.degradeLocked(err)
		}
	}
	s.applied = rec.LSN // the caller applies in memory upon acceptance
	return nil
}

// degradeLocked flips the store into sticky read-only degraded mode (if
// it is not there already) and returns the typed error every subsequent
// mutation, checkpoint, and close will see. Caller holds walMu.
func (s *store) degradeLocked(cause error) error {
	if s.degraded == nil {
		s.degraded = &resource.DegradedError{Cause: cause}
		s.met.StorageDegraded.Inc()
		log.Printf("minerule/storage: %s: entering degraded (read-only) mode: %v", s.dir, cause)
	}
	return s.degraded
}

// degradedErr reports the sticky degraded error, nil while healthy.
func (s *store) degradedErr() error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	return s.degraded
}

// ---------------------------------------------------------------------------
// txn.CommitJournal implementation

// AppendBatch logs one transaction's write set as a single atomic
// frame: one record appends as itself, several wrap in a KindTxn
// record sharing one LSN and one CRC. charge is invoked with the
// frame's page count before any byte reaches the log, so a page-I/O
// budget vetoes the commit with the log untouched.
//
// The committing transaction holds the catalog publish lock across
// AppendBatch and its publish, which is what lets a checkpoint (also
// under the publish lock) equate "appended" with "applied in memory".
func (s *store) AppendBatch(recs []*wal.Record, charge func(pages int) error) (uint64, error) {
	rec := recs[0]
	if len(recs) > 1 {
		rec = &wal.Record{Kind: wal.KindTxn, Subs: recs}
	}
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if err := s.appendLocked(rec, charge); err != nil {
		return 0, err
	}
	return rec.LSN, nil
}

// LastLSN reports the newest appended LSN (durable or not); commits
// whose writes all went through side channels (DDL, sequence bumps)
// sync to it.
func (s *store) LastLSN() uint64 {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	return s.w.LastLSN()
}

// SyncTo blocks until every record up to lsn is durable. Concurrent
// committers share fsyncs: the first caller through syncMu becomes the
// leader and fsyncs the log as it stands — covering every record
// appended so far, its own and everyone else's — then publishes the
// new durable watermark; callers whose lsn the watermark already
// covers return without touching the file at all. The leader also
// rolls the log into a new checkpoint generation once it outgrows the
// auto-checkpoint threshold.
func (s *store) SyncTo(lsn uint64) error {
	if s.synced.Load() >= lsn {
		return nil
	}
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	if s.synced.Load() >= lsn {
		return nil
	}
	s.walMu.Lock()
	if s.degraded != nil {
		err := s.degraded
		s.walMu.Unlock()
		return err
	}
	if s.sticky != nil {
		err := s.sticky
		s.walMu.Unlock()
		return err
	}
	target := s.w.LastLSN()
	err := s.w.Sync()
	if err != nil {
		// fsyncgate: the kernel may have dropped the dirty pages while
		// reporting the failure, so retrying the fsync could "succeed"
		// without the data ever reaching disk. Durability is gone for
		// good — poison the store rather than lie.
		err = s.degradeLocked(err)
		s.walMu.Unlock()
		return err
	}
	size, serr := s.w.Size()
	s.walMu.Unlock()
	s.synced.Store(target)
	s.met.GroupFsyncs.Inc()
	if serr == nil && size > autoCheckpointBytes {
		if cerr := s.checkpointLocked(); cerr != nil {
			if derr := s.degradedErr(); derr != nil {
				return derr
			}
			// The commit itself is durable (the fsync above succeeded); a
			// failed auto-checkpoint just leaves the log long. Report it
			// and retry at a later commit.
			s.met.CheckpointFailures.Inc()
			log.Printf("minerule/storage: %s: auto-checkpoint failed (will retry): %v", s.dir, cerr)
		}
	}
	return nil
}

func (s *store) CreateTable(name string, sc *schema.Schema) error {
	return s.append(&wal.Record{Kind: wal.KindCreateTable, Name: name, Cols: sc.Columns()})
}

func (s *store) DropTable(name string) error {
	return s.append(&wal.Record{Kind: wal.KindDropTable, Name: name})
}

func (s *store) CreateView(name, text string) error {
	return s.append(&wal.Record{Kind: wal.KindCreateView, Name: name, Text: text})
}

func (s *store) DropView(name string) error {
	return s.append(&wal.Record{Kind: wal.KindDropView, Name: name})
}

func (s *store) CreateSequence(name string) error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if err := s.appendLocked(&wal.Record{Kind: wal.KindCreateSequence, Name: name}, nil); err != nil {
		return err
	}
	s.seqCeil[strings.ToLower(name)] = 1
	return nil
}

func (s *store) DropSequence(name string) error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if err := s.appendLocked(&wal.Record{Kind: wal.KindDropSequence, Name: name}, nil); err != nil {
		return err
	}
	delete(s.seqCeil, strings.ToLower(name))
	return nil
}

func (s *store) CreateIndex(name, table string, col int) error {
	return s.append(&wal.Record{Kind: wal.KindCreateIndex, Name: name, Table: table, Col: col})
}

func (s *store) DropIndex(name string) error {
	return s.append(&wal.Record{Kind: wal.KindDropIndex, Name: name})
}

func (s *store) Insert(table string, rows []schema.Row) error {
	return s.append(&wal.Record{Kind: wal.KindInsert, Name: table, Rows: rows})
}

func (s *store) Truncate(table string) error {
	return s.append(&wal.Record{Kind: wal.KindTruncate, Name: table})
}

func (s *store) Replace(table string, rows []schema.Row) error {
	return s.append(&wal.Record{Kind: wal.KindReplace, Name: table, Rows: rows})
}

func (s *store) SequenceBump(name string, next int64) error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	err := s.appendLocked(&wal.Record{Kind: wal.KindSeqBump, Name: name, Next: next}, nil)
	if err != nil {
		if s.sticky == nil {
			// NEXTVAL cannot surface this error; remember it so the
			// statement's commit fails instead of silently losing
			// durability.
			s.sticky = err
		}
		return err
	}
	// Recorded in the same critical section as the append: a checkpoint
	// that captures a manifest LSN covering this bump is guaranteed to
	// read a ceiling covering it too.
	if k := strings.ToLower(name); next > s.seqCeil[k] {
		s.seqCeil[k] = next
	}
	return nil
}

// ---------------------------------------------------------------------------
// Checkpointing

// checkpoint writes generation gen+1 (snapshot of the live catalog plus
// a fresh empty log) and atomically swaps CURRENT to it. A crash at any
// step leaves the old generation live and complete; a failure before
// the swap discards the partial generation so nothing is left behind.
func (s *store) checkpoint() error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	return s.checkpointLocked()
}

// checkpointLocked is checkpoint with syncMu already held (the
// group-commit leader auto-checkpoints without re-entering it).
//
// Consistency under concurrency: the catalog publish lock is held for
// the duration, so no transaction can append-and-publish and no DDL
// can run — the live catalog is frozen at a commit boundary and heap
// files are written from it without further locking. The only appends
// that can still race are sequence bumps, which never touch tables;
// the manifest LSN and the sequence ceilings are both captured under
// walMu after the heaps are written, and SequenceBump updates its
// ceiling in the same walMu section as its append, so every bump at or
// below the manifest LSN is covered by a manifest ceiling. walMu stays
// held from the LSN capture through the writer swap, so no record can
// land in the old log (which is about to be deleted) above the
// manifest LSN.
func (s *store) checkpointLocked() error {
	s.cat.LockPublish()
	defer s.cat.UnlockPublish()
	s.walMu.Lock()
	if err := s.degraded; err != nil {
		s.walMu.Unlock()
		return err
	}
	if err := s.sticky; err != nil {
		s.walMu.Unlock()
		return err
	}
	newGen := s.gen + 1
	s.walMu.Unlock()

	snap := s.buildManifest()
	dir := genDir(s.dir, newGen)
	if err := writeHeaps(s.fs, dir, snap, s.cat, s.pool); err != nil {
		s.discardGeneration(newGen)
		return err
	}

	s.walMu.Lock()
	snap.LastLSN = s.w.LastLSN()
	for _, name := range s.cat.SequenceNames() {
		ceil := s.seqCeil[strings.ToLower(name)]
		if ceil < 1 {
			ceil = 1
		}
		snap.Sequences = append(snap.Sequences, snapSequence{Name: name, Next: ceil})
	}
	if err := s.w.Sync(); err != nil {
		err = s.degradeLocked(err)
		s.walMu.Unlock()
		s.discardGeneration(newGen)
		return err
	}
	if err := writeManifest(s.fs, dir, snap); err != nil {
		s.walMu.Unlock()
		s.discardGeneration(newGen)
		return err
	}
	w, err := wal.Create(s.fs, walPath(s.dir, newGen), snap.LastLSN)
	if err != nil {
		s.walMu.Unlock()
		s.discardGeneration(newGen)
		return err
	}
	w.Met = s.met
	if _, err := w.Append(&wal.Record{Kind: wal.KindCheckpoint, Next: int64(newGen)}); err != nil {
		w.Abort()
		s.walMu.Unlock()
		s.discardGeneration(newGen)
		return err
	}
	if err := w.Sync(); err != nil {
		w.Abort()
		s.walMu.Unlock()
		s.discardGeneration(newGen)
		return err
	}
	if err := s.swapCurrent(newGen); err != nil {
		w.Abort()
		s.walMu.Unlock()
		s.discardGeneration(newGen)
		return err
	}
	// The swap is durable: retire the old generation. Failures past this
	// point only leak space, never consistency.
	oldGen, oldW := s.gen, s.w
	s.gen, s.w = newGen, w
	durable := w.LastLSN() // everything in the new log is fsynced above
	s.walMu.Unlock()
	s.synced.Store(durable)
	oldW.Close()
	s.fs.Remove(walPath(s.dir, oldGen))
	s.fs.RemoveAll(genDir(s.dir, oldGen))
	s.met.Checkpoints.Inc()
	return nil
}

// discardGeneration removes the partial artifacts of a failed
// checkpoint. The old generation and its log are still live, so a
// failure here (disk still broken) costs space, not consistency.
func (s *store) discardGeneration(gen uint64) {
	s.fs.Remove(walPath(s.dir, gen))
	s.fs.RemoveAll(genDir(s.dir, gen))
}

// buildManifest snapshots the live catalog's structure — tables, views
// and indexes. The manifest LSN and the sequence ceilings are filled in
// later, under walMu (see checkpointLocked): sequences record their
// journaled ceiling, because restoring the live value could re-issue
// NEXTVALs already handed out before the crash.
func (s *store) buildManifest() *snapshot {
	snap := &snapshot{}
	for i, name := range s.cat.TableNames() {
		t, ok := s.cat.Table(name)
		if !ok {
			continue
		}
		snap.Tables = append(snap.Tables, snapTable{
			Name: t.Name(),
			Cols: t.Schema().Columns(),
			Heap: heapName(i),
		})
		for _, ix := range t.Indexes() {
			snap.Indexes = append(snap.Indexes, snapIndex{Name: ix.Name(), Table: t.Name(), Col: ix.Column()})
		}
	}
	for _, name := range s.cat.ViewNames() {
		if v, ok := s.cat.View(name); ok {
			snap.Views = append(snap.Views, snapView{Name: v.Name, Text: v.Text})
		}
	}
	return snap
}

// writeSnapshot materializes one generation directory in a single call
// (heaps, then manifest): initFresh's empty generation and any caller
// that does not need the checkpoint's two-phase locking.
func writeSnapshot(fsys vfs.FS, dir string, snap *snapshot, cat *storage.Catalog, pool *pager.Pool) error {
	if err := writeHeaps(fsys, dir, snap, cat, pool); err != nil {
		return err
	}
	return writeManifest(fsys, dir, snap)
}

// writeHeaps creates the generation directory and writes one fsynced
// heap file per manifest table (cat may be nil only when the manifest
// lists no tables). Nothing references the generation until the caller
// writes the manifest and swaps CURRENT.
func writeHeaps(fsys vfs.FS, dir string, snap *snapshot, cat *storage.Catalog, pool *pager.Pool) error {
	if err := fsys.MkdirAll(dir); err != nil {
		return resource.NewIOError("snapshot dir", err)
	}
	var enc []byte
	for _, st := range snap.Tables {
		t, ok := cat.Table(st.Name)
		if !ok {
			return fmt.Errorf("engine: snapshot table %q vanished", st.Name)
		}
		f, err := pager.OpenFile(fsys, filepath.Join(dir, st.Heap))
		if err != nil {
			return err
		}
		hw := pager.NewHeapWriter(pool, f)
		for _, row := range t.Snapshot() {
			enc = row.AppendBinary(enc[:0])
			if err := hw.Append(enc); err != nil {
				pool.DropFile(f)
				f.Close()
				return err
			}
		}
		err = hw.Flush()
		if err == nil {
			err = f.Sync()
		}
		pool.DropFile(f)
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeManifest writes and fsyncs catalog.json, then fsyncs the
// generation directory, completing the snapshot.
func writeManifest(fsys vfs.FS, dir string, snap *snapshot) error {
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("engine: encode snapshot: %w", err)
	}
	path := filepath.Join(dir, "catalog.json")
	f, err := fsys.Create(path)
	if err != nil {
		return resource.NewIOError("snapshot write", err)
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		return resource.NewIOError("snapshot write", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return resource.NewIOError("snapshot fsync", err)
	}
	if err := f.Close(); err != nil {
		return resource.NewIOError("snapshot close", err)
	}
	return syncDir(fsys, dir)
}

// swapCurrent atomically points CURRENT at gen (write tmp, fsync,
// rename, fsync dir — the standard crash-safe pointer swap).
func (s *store) swapCurrent(gen uint64) error {
	tmp := filepath.Join(s.dir, currentFile+".tmp")
	f, err := s.fs.Create(tmp)
	if err != nil {
		return resource.NewIOError("CURRENT write", err)
	}
	_, err = f.Write([]byte(strconv.FormatUint(gen, 10) + "\n"))
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return resource.NewIOError("CURRENT write", err)
	}
	if err := s.fs.Rename(tmp, filepath.Join(s.dir, currentFile)); err != nil {
		s.fs.Remove(tmp) // best effort; fsck removes a survivor
		return resource.NewIOError("CURRENT swap", err)
	}
	return syncDir(s.fs, s.dir)
}

// close releases the WAL and heap files. The database directory stays
// openable; close does not checkpoint (recovery replays the log).
// Close is idempotent: a second call returns the first call's result.
// On a degraded or poisoned store it returns the typed sticky error and
// skips the final fsync — the guarantee it would buy is already gone.
func (s *store) close() error {
	s.syncMu.Lock() // wait out any in-flight group fsync or checkpoint
	defer s.syncMu.Unlock()
	s.walMu.Lock()
	defer s.walMu.Unlock()
	if s.closed {
		return s.closeErr
	}
	s.closed = true
	if s.w == nil {
		return nil
	}
	w := s.w
	s.w = nil
	switch {
	case s.degraded != nil:
		w.Abort()
		s.closeErr = s.degraded
	case s.sticky != nil:
		w.Abort()
		s.closeErr = s.sticky
	default:
		s.closeErr = w.Close()
	}
	return s.closeErr
}
