package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"minerule/internal/sql/schema"
	"minerule/internal/sql/value"
)

// The differential suite runs every query template twice against the
// same database — once on the batched pipeline (the default) and once
// on the row-at-a-time reference operators via RowMode — and requires
// identical results. The data deliberately hits the value-key edge
// cases: NULL, -0.0 vs +0.0, NaN, and exactly-representable
// power-of-two fractions (so SUM/AVG are order-independent and can be
// compared bit-for-bit).
//
// Rows are inserted through the catalog rather than SQL because SQL
// literals cannot express NaN or negative zero.

// diffFloats are exact in binary floating point, so any summation
// order produces the same bits.
var diffFloats = []float64{0.5, 1.25, -3.5, 2.0, -0.25, 7.75, 0.0, math.Copysign(0, -1), 12.5, -8.0}

func diffSetup(t *testing.T) *Database {
	t.Helper()
	db := New()
	t.Cleanup(func() { db.Close() })
	script := `
CREATE TABLE t1 (a INTEGER, b FLOAT, c VARCHAR);
CREATE TABLE t2 (a INTEGER, d FLOAT);
CREATE TABLE t3 (a INTEGER, e INTEGER);
`
	if err := db.ExecScript(script); err != nil {
		t.Fatalf("setup: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	strs := []string{"alpha", "beta", "gamma", "delta", ""}
	t1, _ := db.Catalog().Table("t1")
	for i := 0; i < 3000; i++ {
		row := schema.Row{
			value.NewInt(int64(rng.Intn(200))),
			value.NewFloat(diffFloats[rng.Intn(len(diffFloats))]),
			value.NewString(strs[rng.Intn(len(strs))]),
		}
		switch rng.Intn(20) {
		case 0:
			row[0] = value.Null
		case 1:
			row[1] = value.Null
		case 2:
			row[1] = value.NewFloat(math.NaN())
		case 3:
			row[2] = value.Null
		}
		if err := t1.Insert(row); err != nil {
			t.Fatalf("insert t1: %v", err)
		}
	}
	t2, _ := db.Catalog().Table("t2")
	for i := 0; i < 400; i++ {
		row := schema.Row{
			value.NewInt(int64(rng.Intn(200))),
			value.NewFloat(diffFloats[rng.Intn(len(diffFloats))]),
		}
		if rng.Intn(15) == 0 {
			row[0] = value.Null
		}
		if err := t2.Insert(row); err != nil {
			t.Fatalf("insert t2: %v", err)
		}
	}
	t3, _ := db.Catalog().Table("t3")
	for i := 0; i < 150; i++ {
		row := schema.Row{
			value.NewInt(int64(rng.Intn(200))),
			value.NewInt(int64(rng.Intn(10))),
		}
		if err := t3.Insert(row); err != nil {
			t.Fatalf("insert t3: %v", err)
		}
	}
	return db
}

// diffKeys renders each result row as its canonical key-byte string
// (the same encoding GROUP BY and DISTINCT use), which canonicalizes
// NaN payloads and -0.0 so semantically equal rows compare equal.
func diffKeys(rows []schema.Row) []string {
	out := make([]string, len(rows))
	var kb []byte
	for i, r := range rows {
		kb = kb[:0]
		for _, v := range r {
			kb = schema.AppendValueKey(kb, v)
		}
		out[i] = string(kb)
	}
	return out
}

type diffQuery struct {
	sql string
	// ordered queries ORDER BY every projected column, so tie rows have
	// identical key bytes and a positional comparison is exact; the rest
	// compare as sorted multisets (join and hash orders may differ).
	ordered bool
}

var diffQueries = []diffQuery{
	{sql: "SELECT a, b, c FROM t1"},
	{sql: "SELECT a, b FROM t1 WHERE a > 50"},
	{sql: "SELECT a, c FROM t1 WHERE b >= 0.0 AND c <> 'beta'"},
	{sql: "SELECT a, b FROM t1 WHERE b IS NULL OR c IS NULL"},
	{sql: "SELECT t1.a, t1.b, t2.d FROM t1, t2 WHERE t1.a = t2.a"},
	{sql: "SELECT t1.a, t2.d, t3.e FROM t1, t2, t3 WHERE t1.a = t2.a AND t2.a = t3.a"},
	{sql: "SELECT t1.a, t2.d FROM t1, t2 WHERE t1.a = t2.a AND t1.b > t2.d"},
	{sql: "SELECT t2.a, t3.e FROM t2, t3 WHERE t2.d > 1.0"},
	{sql: "SELECT c, COUNT(*), SUM(b) FROM t1 GROUP BY c"},
	{sql: "SELECT a, MIN(b), MAX(b), AVG(b) FROM t1 GROUP BY a"},
	{sql: "SELECT c, COUNT(DISTINCT a) FROM t1 GROUP BY c"},
	{sql: "SELECT c, COUNT(*) FROM t1 GROUP BY c HAVING COUNT(*) > 400"},
	{sql: "SELECT DISTINCT c FROM t1"},
	{sql: "SELECT DISTINCT a, b FROM t1 WHERE a < 30"},
	{sql: "SELECT t2.a, COUNT(*), SUM(t1.b) FROM t1, t2 WHERE t1.a = t2.a GROUP BY t2.a"},
	{sql: "SELECT t1.a, t2.d FROM t1 LEFT JOIN t2 ON t1.a = t2.a WHERE t1.a < 40"},
	{sql: "SELECT a FROM t1 UNION SELECT a FROM t2"},
	{sql: "SELECT a, b, c FROM t1 ORDER BY a, b, c", ordered: true},
	{sql: "SELECT DISTINCT c, a FROM t1 ORDER BY c, a", ordered: true},
}

func TestDifferentialBatchedVsRow(t *testing.T) {
	db := diffSetup(t)
	for _, q := range diffQueries {
		q := q
		t.Run(q.sql, func(t *testing.T) {
			db.RowMode(false)
			batched, err := db.Query(q.sql)
			if err != nil {
				t.Fatalf("batched: %v", err)
			}
			db.RowMode(true)
			ref, err := db.Query(q.sql)
			db.RowMode(false)
			if err != nil {
				t.Fatalf("row mode: %v", err)
			}
			bk, rk := diffKeys(batched.Rows), diffKeys(ref.Rows)
			if len(bk) != len(rk) {
				t.Fatalf("row count: batched %d, reference %d", len(bk), len(rk))
			}
			if !q.ordered {
				sort.Strings(bk)
				sort.Strings(rk)
			}
			for i := range bk {
				if bk[i] != rk[i] {
					t.Fatalf("row %d differs:\n  batched:   %s\n  reference: %s",
						i, diffRowAt(batched.Rows, rk, bk[i]), diffRowAt(ref.Rows, bk, rk[i]))
				}
			}
		})
	}
}

// diffRowAt finds the first row whose key is missing from the other
// side's key set, for a readable failure message.
func diffRowAt(rows []schema.Row, otherKeys []string, fallbackKey string) string {
	other := make(map[string]int, len(otherKeys))
	for _, k := range otherKeys {
		other[k]++
	}
	var kb []byte
	for _, r := range rows {
		kb = kb[:0]
		for _, v := range r {
			kb = schema.AppendValueKey(kb, v)
		}
		if other[string(kb)] > 0 {
			other[string(kb)]--
			continue
		}
		return fmt.Sprintf("%v", r)
	}
	return fmt.Sprintf("key %q", fallbackKey)
}
