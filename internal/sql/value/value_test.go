package value

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNullBasics(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
	if v.Type() != TypeNull {
		t.Fatalf("zero Value type = %v", v.Type())
	}
	if got := v.String(); got != "NULL" {
		t.Fatalf("NULL renders as %q", got)
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if got := NewInt(42).Int(); got != 42 {
		t.Errorf("Int = %d", got)
	}
	if got := NewFloat(2.5).Float(); got != 2.5 {
		t.Errorf("Float = %g", got)
	}
	if got := NewString("abc").Str(); got != "abc" {
		t.Errorf("Str = %q", got)
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("Bool round-trip failed")
	}
	d := NewDate(1995, time.December, 17)
	if got := d.String(); got != "1995-12-17" {
		t.Errorf("date renders as %q", got)
	}
	if got := NewInt(5).Float(); got != 5.0 {
		t.Errorf("int widens to %g", got)
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []func(){
		func() { Null.Int() },
		func() { NewInt(1).Str() },
		func() { NewString("x").Float() },
		func() { NewInt(1).Days() },
		func() { NewFloat(1).Bool() },
	}
	for i, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			f()
		}()
	}
}

func TestParseDate(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"1995-12-17", "1995-12-17"},
		{"12/17/95", "1995-12-17"},
		{"1/1/95", "1995-01-01"},
		{"12/31/1995", "1995-12-31"},
		{"6/5/05", "2005-06-05"},
	}
	for _, c := range cases {
		v, err := ParseDate(c.in)
		if err != nil {
			t.Errorf("ParseDate(%q): %v", c.in, err)
			continue
		}
		if got := v.String(); got != c.want {
			t.Errorf("ParseDate(%q) = %s, want %s", c.in, got, c.want)
		}
	}
	for _, bad := range []string{"", "17-12-1995x", "13/40/95", "a/b/c"} {
		if _, err := ParseDate(bad); err == nil {
			t.Errorf("ParseDate(%q) should fail", bad)
		}
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NewDate(1995, 1, 1), NewDate(1995, 1, 2), -1},
		{NewBool(false), NewBool(true), -1},
	}
	for i, c := range cases {
		got, err := Compare(c.a, c.b)
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if got != c.want {
			t.Errorf("case %d: Compare = %d, want %d", i, got, c.want)
		}
	}
	if _, err := Compare(NewInt(1), NewString("1")); err == nil {
		t.Error("int vs string should not compare")
	}
	if _, err := Compare(Null, NewInt(1)); err == nil {
		t.Error("NULL comparison must error")
	}
}

func TestCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x, err1 := Compare(NewInt(a), NewInt(b))
		y, err2 := Compare(NewInt(b), NewInt(a))
		return err1 == nil && err2 == nil && x == -y
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKeyEqualityProperty(t *testing.T) {
	// Key must collide exactly for SQL-equal values, across int/float
	// promotion.
	f := func(a int64) bool {
		return NewInt(a).Key() == NewFloat(float64(a)).Key()
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
	if NewString("1").Key() == NewInt(1).Key() {
		t.Error("string '1' must not collide with int 1")
	}
	if NewInt(1).Key() == NewBool(true).Key() {
		t.Error("bool true must not collide with int 1")
	}
	if Null.Key() != Null.Key() {
		t.Error("NULL keys must collide (single group semantics)")
	}
}

func TestArith(t *testing.T) {
	cases := []struct {
		op   byte
		a, b Value
		want Value
	}{
		{'+', NewInt(2), NewInt(3), NewInt(5)},
		{'-', NewInt(2), NewInt(3), NewInt(-1)},
		{'*', NewInt(4), NewInt(3), NewInt(12)},
		{'/', NewInt(7), NewInt(2), NewInt(3)},
		{'+', NewFloat(1.5), NewInt(1), NewFloat(2.5)},
		{'/', NewFloat(1), NewInt(2), NewFloat(0.5)},
		{'+', NewDate(1995, 1, 1), NewInt(1), NewDate(1995, 1, 2)},
		{'-', NewDate(1995, 1, 2), NewDate(1995, 1, 1), NewInt(1)},
	}
	for i, c := range cases {
		got, err := Arith(c.op, c.a, c.b)
		if err != nil {
			t.Errorf("case %d: %v", i, err)
			continue
		}
		if !Equal(got, c.want) {
			t.Errorf("case %d: %s %c %s = %s, want %s", i, c.a, c.op, c.b, got, c.want)
		}
	}
	if v, err := Arith('+', Null, NewInt(1)); err != nil || !v.IsNull() {
		t.Error("NULL must propagate through arithmetic")
	}
	if _, err := Arith('/', NewInt(1), NewInt(0)); err == nil {
		t.Error("division by zero must error")
	}
	if _, err := Arith('+', NewString("a"), NewInt(1)); err == nil {
		t.Error("string arithmetic must error")
	}
}

func TestNeg(t *testing.T) {
	if v, _ := Neg(NewInt(5)); v.Int() != -5 {
		t.Error("Neg int")
	}
	if v, _ := Neg(NewFloat(2.5)); v.Float() != -2.5 {
		t.Error("Neg float")
	}
	if v, _ := Neg(Null); !v.IsNull() {
		t.Error("Neg NULL")
	}
	if _, err := Neg(NewString("x")); err == nil {
		t.Error("Neg string must error")
	}
}

func TestCoerce(t *testing.T) {
	if v, _ := Coerce(NewInt(3), TypeFloat); v.Float() != 3.0 {
		t.Error("int→float")
	}
	if v, _ := Coerce(NewFloat(3.7), TypeInt); v.Int() != 3 {
		t.Error("float→int truncates")
	}
	if v, _ := Coerce(NewString("1995-06-01"), TypeDate); v.String() != "1995-06-01" {
		t.Error("string→date")
	}
	if v, _ := Coerce(NewInt(12), TypeString); v.Str() != "12" {
		t.Error("int→string")
	}
	if v, _ := Coerce(Null, TypeInt); !v.IsNull() {
		t.Error("NULL coerces to NULL")
	}
	if _, err := Coerce(NewBool(true), TypeInt); err == nil {
		t.Error("bool→int must error")
	}
}

func TestTristateTables(t *testing.T) {
	vals := []Tristate{False, True, Unknown}
	andWant := [3][3]Tristate{
		{False, False, False},
		{False, True, Unknown},
		{False, Unknown, Unknown},
	}
	orWant := [3][3]Tristate{
		{False, True, Unknown},
		{True, True, True},
		{Unknown, True, Unknown},
	}
	for i, a := range vals {
		for j, b := range vals {
			if got := a.And(b); got != andWant[i][j] {
				t.Errorf("%v AND %v = %v, want %v", a, b, got, andWant[i][j])
			}
			if got := a.Or(b); got != orWant[i][j] {
				t.Errorf("%v OR %v = %v, want %v", a, b, got, orWant[i][j])
			}
		}
	}
	if True.Not() != False || False.Not() != True || Unknown.Not() != Unknown {
		t.Error("NOT table wrong")
	}
}

func TestTristateValueRoundTrip(t *testing.T) {
	for _, ts := range []Tristate{False, True, Unknown} {
		got, err := TristateFromValue(ts.Value())
		if err != nil {
			t.Fatal(err)
		}
		if got != ts {
			t.Errorf("round-trip %v → %v", ts, got)
		}
	}
	if _, err := TristateFromValue(NewInt(1)); err == nil {
		t.Error("int is not a boolean")
	}
}

func TestSQLRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewString("it's"), "'it''s'"},
		{NewInt(-3), "-3"},
		{NewFloat(0.5), "0.5"},
		{NewDate(1995, 12, 19), "DATE '1995-12-19'"},
		{Null, "NULL"},
		{NewBool(true), "TRUE"},
	}
	for _, c := range cases {
		if got := c.v.SQL(); got != c.want {
			t.Errorf("SQL() = %q, want %q", got, c.want)
		}
	}
}

func TestFloatEdge(t *testing.T) {
	inf := NewFloat(math.Inf(1))
	c, err := Compare(inf, NewFloat(1e308))
	if err != nil || c != 1 {
		t.Error("inf compares greater")
	}
}
