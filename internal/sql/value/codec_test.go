package value_test

import (
	"math"
	"testing"
	"time"

	"minerule/internal/sql/value"
)

func TestBinaryRoundTrip(t *testing.T) {
	vals := []value.Value{
		value.Null,
		value.NewBool(false),
		value.NewBool(true),
		value.NewInt(0),
		value.NewInt(1),
		value.NewInt(-1),
		value.NewInt(math.MaxInt64),
		value.NewInt(math.MinInt64),
		value.NewFloat(0),
		value.NewFloat(3.25),
		value.NewFloat(-1e300),
		value.NewFloat(math.Inf(1)),
		value.NewString(""),
		value.NewString("ski_pants"),
		value.NewString("a\x00b\xffc"),
		value.NewDate(1995, time.December, 17),
		value.NewDateFromDays(-1),
	}
	var buf []byte
	for _, v := range vals {
		buf = v.AppendBinary(buf)
	}
	rest := buf
	for i, want := range vals {
		var got value.Value
		var err error
		got, rest, err = value.DecodeBinary(rest)
		if err != nil {
			t.Fatalf("decode %d: %v", i, err)
		}
		if got != want {
			t.Fatalf("value %d: got %v want %v", i, got, want)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes after decode", len(rest))
	}
}

func TestBinaryRoundTripNaN(t *testing.T) {
	enc := value.NewFloat(math.NaN()).AppendBinary(nil)
	got, rest, err := value.DecodeBinary(enc)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode NaN: %v (rest %d)", err, len(rest))
	}
	if got.Type() != value.TypeFloat || !math.IsNaN(got.Float()) {
		t.Fatalf("NaN did not round-trip: %v", got)
	}
}

func TestDecodeBinaryCorrupt(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"unknown tag":  {0x7f},
		"short float":  {0x04, 1, 2, 3},
		"short string": {0x05, 10, 'a'},
		"bad varint":   {0x03, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80},
	}
	for name, in := range cases {
		if _, _, err := value.DecodeBinary(in); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}
