package value

import (
	"math"
	"math/rand"
	"testing"
)

// TestKeyAgreesWithCompareOnFloatEdgeCases is the regression test for
// the -0.0/NaN key bug: AppendKey used to format -0.0 and +0.0 as
// distinct bytes ("−0" vs "0") while Compare ordered them equal, and
// cmpFloat64 ordered NaN equal to everything while its key stayed
// distinct — so GROUP BY/DISTINCT/hash-join buckets disagreed with
// ORDER BY and predicate equality.
func TestKeyAgreesWithCompareOnFloatEdgeCases(t *testing.T) {
	negZero := NewFloat(math.Copysign(0, -1))
	posZero := NewFloat(0)
	intZero := NewInt(0)
	nan := NewFloat(math.NaN())
	nanPayload := NewFloat(math.Float64frombits(math.Float64bits(math.NaN()) ^ 1))
	one := NewFloat(1)

	if c, err := Compare(negZero, posZero); err != nil || c != 0 {
		t.Fatalf("Compare(-0.0, +0.0) = %d, %v; want 0", c, err)
	}
	if negZero.Key() != posZero.Key() {
		t.Errorf("Key(-0.0) = %q != Key(+0.0) = %q while Compare orders them equal",
			negZero.Key(), posZero.Key())
	}
	if intZero.Key() != posZero.Key() {
		t.Errorf("Key(INT 0) = %q != Key(+0.0) = %q", intZero.Key(), posZero.Key())
	}

	// NaN is total-ordered: equal to itself (any payload), before all
	// other numbers.
	if c, err := Compare(nan, nanPayload); err != nil || c != 0 {
		t.Fatalf("Compare(NaN, NaN') = %d, %v; want 0", c, err)
	}
	if nan.Key() != nanPayload.Key() {
		t.Errorf("NaN payloads must share one key: %q vs %q", nan.Key(), nanPayload.Key())
	}
	if c, _ := Compare(nan, one); c != -1 {
		t.Errorf("Compare(NaN, 1.0) = %d, want -1 (NaN sorts first)", c)
	}
	if c, _ := Compare(one, nan); c != 1 {
		t.Errorf("Compare(1.0, NaN) = %d, want 1", c)
	}
	if nan.Key() == one.Key() {
		t.Errorf("NaN and 1.0 share a key but compare unequal")
	}
}

// TestKeyCompareProperty asserts Compare(a,b)==0 ⇒ Key(a)==Key(b) over
// randomized numeric values, including the int-widened-to-float key
// framing: an INT and a FLOAT that compare equal must share key bytes.
func TestKeyCompareProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))

	randomValue := func() Value {
		switch rng.Intn(8) {
		case 0:
			return NewInt(rng.Int63n(2000) - 1000)
		case 1:
			// Large ints exercise the float64 widening boundary.
			return NewInt(int64(1)<<53 + rng.Int63n(8) - 4)
		case 2:
			return NewFloat(float64(rng.Int63n(2000)-1000) / 8)
		case 3:
			// Integer-valued floats collide with equal ints.
			return NewFloat(float64(rng.Int63n(2000) - 1000))
		case 4:
			return NewFloat(math.Copysign(0, -1))
		case 5:
			return NewFloat(0)
		case 6:
			return NewFloat(math.NaN())
		default:
			return NewFloat(math.Inf(1 - 2*rng.Intn(2)))
		}
	}

	for i := 0; i < 20000; i++ {
		a, b := randomValue(), randomValue()
		c, err := Compare(a, b)
		if err != nil {
			t.Fatalf("Compare(%v, %v): %v", a, b, err)
		}
		if c == 0 && a.Key() != b.Key() {
			t.Fatalf("Compare(%v, %v)==0 but keys differ: %q vs %q", a, b, a.Key(), b.Key())
		}
		// Compare must be antisymmetric over the same pair.
		rc, _ := Compare(b, a)
		if rc != -c {
			t.Fatalf("Compare(%v, %v)=%d but Compare(%v, %v)=%d", a, b, c, b, a, rc)
		}
	}
}
