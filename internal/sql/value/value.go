// Package value defines the typed scalar values manipulated by the SQL
// engine: NULL, BOOL, INT, FLOAT, STRING and DATE, together with the
// comparison and arithmetic semantics of SQL92 (three-valued logic,
// numeric type promotion, date ordering).
//
// Values are small immutable structs passed by value. The zero Value is
// NULL, so freshly allocated rows are all-NULL without initialization.
package value

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Type enumerates the scalar types supported by the engine.
type Type int

// Supported scalar types. TypeNull is the type of the SQL NULL literal
// before it is coerced by context.
const (
	TypeNull Type = iota
	TypeBool
	TypeInt
	TypeFloat
	TypeString
	TypeDate
)

// String returns the SQL spelling of the type.
func (t Type) String() string {
	switch t {
	case TypeNull:
		return "NULL"
	case TypeBool:
		return "BOOLEAN"
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "FLOAT"
	case TypeString:
		return "VARCHAR"
	case TypeDate:
		return "DATE"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// Numeric reports whether the type participates in numeric promotion.
func (t Type) Numeric() bool { return t == TypeInt || t == TypeFloat }

// Value is a single SQL scalar. The zero Value is NULL.
type Value struct {
	typ Type
	i   int64   // TypeInt, TypeBool (0/1), TypeDate (days since epoch)
	f   float64 // TypeFloat
	s   string  // TypeString
}

// Null is the SQL NULL value.
var Null = Value{}

// NewBool returns a BOOLEAN value.
func NewBool(b bool) Value {
	var i int64
	if b {
		i = 1
	}
	return Value{typ: TypeBool, i: i}
}

// NewInt returns an INTEGER value.
func NewInt(i int64) Value { return Value{typ: TypeInt, i: i} }

// NewFloat returns a FLOAT value.
func NewFloat(f float64) Value { return Value{typ: TypeFloat, f: f} }

// NewString returns a VARCHAR value.
func NewString(s string) Value { return Value{typ: TypeString, s: s} }

// NewDate returns a DATE value for the given civil date.
func NewDate(year int, month time.Month, day int) Value {
	t := time.Date(year, month, day, 0, 0, 0, 0, time.UTC)
	return Value{typ: TypeDate, i: t.Unix() / 86400}
}

// NewDateFromDays returns a DATE value from a count of days since the
// Unix epoch. It is the inverse of Value.Days.
func NewDateFromDays(days int64) Value { return Value{typ: TypeDate, i: days} }

// Type returns the value's type. NULL values report TypeNull.
func (v Value) Type() Type { return v.typ }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.typ == TypeNull }

// TypeError reports an accessor called on a value of the wrong type.
// Accessors panic with a *TypeError; executor entry points recover it
// into an ordinary typed error, so a mistyped expression surfaces as an
// error instead of crashing the process.
type TypeError struct {
	// Op is the accessor name ("Bool", "Int", "Float", "Str", "Days").
	Op string
	// Type is the value's actual type.
	Type Type
}

func (e *TypeError) Error() string { return fmt.Sprintf("value: %s() on %s", e.Op, e.Type) }

// Bool returns the boolean content. It panics with a *TypeError unless
// the value is a non-null BOOLEAN.
func (v Value) Bool() bool {
	if v.typ != TypeBool {
		panic(&TypeError{Op: "Bool", Type: v.typ})
	}
	return v.i != 0
}

// Int returns the integer content. It panics with a *TypeError unless
// the value is a non-null INTEGER.
func (v Value) Int() int64 {
	if v.typ != TypeInt {
		panic(&TypeError{Op: "Int", Type: v.typ})
	}
	return v.i
}

// Float returns the numeric content widened to float64. It accepts both
// INTEGER and FLOAT values and panics with a *TypeError otherwise.
func (v Value) Float() float64 {
	switch v.typ {
	case TypeFloat:
		return v.f
	case TypeInt:
		return float64(v.i)
	default:
		panic(&TypeError{Op: "Float", Type: v.typ})
	}
}

// Str returns the string content. It panics with a *TypeError unless
// the value is a non-null VARCHAR.
func (v Value) Str() string {
	if v.typ != TypeString {
		panic(&TypeError{Op: "Str", Type: v.typ})
	}
	return v.s
}

// Days returns the DATE content as days since the Unix epoch. It panics
// with a *TypeError unless the value is a non-null DATE.
func (v Value) Days() int64 {
	if v.typ != TypeDate {
		panic(&TypeError{Op: "Days", Type: v.typ})
	}
	return v.i
}

// Time returns the DATE content as a time.Time at UTC midnight.
func (v Value) Time() time.Time {
	return time.Unix(v.Days()*86400, 0).UTC()
}

// String renders the value for display: NULL as "NULL", strings verbatim,
// dates as YYYY-MM-DD, floats with minimal digits.
func (v Value) String() string {
	switch v.typ {
	case TypeNull:
		return "NULL"
	case TypeBool:
		if v.i != 0 {
			return "TRUE"
		}
		return "FALSE"
	case TypeInt:
		return strconv.FormatInt(v.i, 10)
	case TypeFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case TypeString:
		return v.s
	case TypeDate:
		return v.Time().Format("2006-01-02")
	default:
		return fmt.Sprintf("Value(%d)", int(v.typ))
	}
}

// SQL renders the value as a SQL literal that the engine's parser accepts
// (strings quoted and escaped, dates as DATE 'YYYY-MM-DD'). Floats keep a
// float spelling so the literal round-trips to the same type (0.0, not 0).
func (v Value) SQL() string {
	switch v.typ {
	case TypeString:
		return "'" + strings.ReplaceAll(v.s, "'", "''") + "'"
	case TypeDate:
		return "DATE '" + v.Time().Format("2006-01-02") + "'"
	case TypeFloat:
		s := strconv.FormatFloat(v.f, 'g', -1, 64)
		if !strings.ContainsAny(s, ".eE") {
			s += ".0"
		}
		return s
	default:
		return v.String()
	}
}

// ParseDate parses a DATE literal in either ISO form (YYYY-MM-DD) or the
// paper's US form (M/D/YY or MM/DD/YYYY). Two-digit years are interpreted
// in 1970–2069, matching the paper's 1995 examples.
func ParseDate(s string) (Value, error) {
	if t, err := time.Parse("2006-01-02", s); err == nil {
		return NewDate(t.Year(), t.Month(), t.Day()), nil
	}
	parts := strings.Split(s, "/")
	if len(parts) == 3 {
		m, err1 := strconv.Atoi(parts[0])
		d, err2 := strconv.Atoi(parts[1])
		y, err3 := strconv.Atoi(parts[2])
		if err1 == nil && err2 == nil && err3 == nil {
			if y < 70 {
				y += 2000
			} else if y < 100 {
				y += 1900
			}
			if m >= 1 && m <= 12 && d >= 1 && d <= 31 {
				return NewDate(y, time.Month(m), d), nil
			}
		}
	}
	return Null, fmt.Errorf("value: cannot parse date %q", s)
}

// Compare orders two non-null values. It returns -1, 0 or +1, and an
// error when the types are not mutually comparable. Numeric types compare
// after promotion to float64 when mixed.
func Compare(a, b Value) (int, error) {
	if a.IsNull() || b.IsNull() {
		return 0, fmt.Errorf("value: Compare on NULL")
	}
	switch {
	case a.typ == TypeInt && b.typ == TypeInt:
		return cmpInt64(a.i, b.i), nil
	case a.typ.Numeric() && b.typ.Numeric():
		return cmpFloat64(a.Float(), b.Float()), nil
	case a.typ == TypeString && b.typ == TypeString:
		return strings.Compare(a.s, b.s), nil
	case a.typ == TypeDate && b.typ == TypeDate:
		return cmpInt64(a.i, b.i), nil
	case a.typ == TypeBool && b.typ == TypeBool:
		return cmpInt64(a.i, b.i), nil
	default:
		return 0, fmt.Errorf("value: cannot compare %s with %s", a.typ, b.typ)
	}
}

func cmpInt64(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

func cmpFloat64(a, b float64) int {
	// NaN orders before every number and equal to itself, which makes
	// the order total; without this, NaN vs anything fell through to 0
	// ("equal") while AppendKey kept NaN distinct, so GROUP BY/DISTINCT
	// buckets disagreed with ORDER BY and predicate equality.
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports SQL equality of two non-null values; NULL compared with
// anything is not equal (callers implementing three-valued logic should
// test IsNull first and produce UNKNOWN).
func Equal(a, b Value) bool {
	if a.IsNull() || b.IsNull() {
		return false
	}
	c, err := Compare(a, b)
	return err == nil && c == 0
}

// Key returns a string usable as a Go map key such that two values have
// the same key iff they are SQL-equal (after numeric promotion). NULLs
// all share one key, which matches SQL GROUP BY/DISTINCT semantics where
// NULLs form a single group.
func (v Value) Key() string {
	return string(v.AppendKey(make([]byte, 0, 24)))
}

// AppendKey appends Key's bytes to dst and returns the extended slice —
// the hot-path form: callers that probe maps in a loop reuse one buffer
// and index with string(buf), which the compiler compiles to an
// allocation-free map access.
func (v Value) AppendKey(dst []byte) []byte {
	switch v.typ {
	case TypeNull:
		return append(dst, 'n')
	case TypeBool:
		if v.i != 0 {
			return append(dst, 'b', 't')
		}
		return append(dst, 'b', 'f')
	case TypeInt:
		// Integer-valued floats must collide with equal ints, so ints
		// key through the same float64 canonicalization.
		return appendFloatKey(dst, float64(v.i))
	case TypeFloat:
		return appendFloatKey(dst, v.f)
	case TypeString:
		return append(append(dst, 's'), v.s...)
	case TypeDate:
		return strconv.AppendInt(append(dst, 'd'), v.i, 10)
	default:
		return append(dst, '?')
	}
}

// appendFloatKey writes the canonical 9-byte key of a numeric value: a
// tag plus the big-endian IEEE-754 bits of its float64 form, with -0.0
// collapsed onto +0.0 (they compare equal, so they must share a key)
// and every NaN payload collapsed onto one bit pattern, matching the
// NaN-total order of cmpFloat64. Fixed-width binary replaced the former
// strconv shortest-decimal formatting, which dominated group/join key
// building in profiles; the collision semantics are unchanged (distinct
// floats have distinct bit patterns).
func appendFloatKey(dst []byte, f float64) []byte {
	if f == 0 {
		f = 0 // true for -0.0 as well; rewrite to +0.0
	}
	bits := math.Float64bits(f)
	if math.IsNaN(f) {
		bits = math.Float64bits(math.NaN())
	}
	return append(dst, 'f',
		byte(bits>>56), byte(bits>>48), byte(bits>>40), byte(bits>>32),
		byte(bits>>24), byte(bits>>16), byte(bits>>8), byte(bits))
}

// Arith applies a binary arithmetic operator (+ - * /) with SQL numeric
// promotion and NULL propagation. Integer division of two INTEGERs
// truncates toward zero like SQL; division by zero is an error.
func Arith(op byte, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if op == '+' && a.typ == TypeDate && b.typ == TypeInt {
		return NewDateFromDays(a.i + b.i), nil
	}
	if op == '-' && a.typ == TypeDate {
		switch b.typ {
		case TypeInt:
			return NewDateFromDays(a.i - b.i), nil
		case TypeDate:
			return NewInt(a.i - b.i), nil
		}
	}
	if !a.typ.Numeric() || !b.typ.Numeric() {
		return Null, fmt.Errorf("value: %c on %s and %s", op, a.typ, b.typ)
	}
	if a.typ == TypeInt && b.typ == TypeInt {
		x, y := a.i, b.i
		switch op {
		case '+':
			return NewInt(x + y), nil
		case '-':
			return NewInt(x - y), nil
		case '*':
			return NewInt(x * y), nil
		case '/':
			if y == 0 {
				return Null, fmt.Errorf("value: division by zero")
			}
			return NewInt(x / y), nil
		}
	}
	x, y := a.Float(), b.Float()
	switch op {
	case '+':
		return NewFloat(x + y), nil
	case '-':
		return NewFloat(x - y), nil
	case '*':
		return NewFloat(x * y), nil
	case '/':
		if y == 0 {
			return Null, fmt.Errorf("value: division by zero")
		}
		return NewFloat(x / y), nil
	}
	return Null, fmt.Errorf("value: unknown operator %c", op)
}

// Neg returns the arithmetic negation with NULL propagation.
func Neg(a Value) (Value, error) {
	switch a.typ {
	case TypeNull:
		return Null, nil
	case TypeInt:
		return NewInt(-a.i), nil
	case TypeFloat:
		return NewFloat(-a.f), nil
	default:
		return Null, fmt.Errorf("value: unary minus on %s", a.typ)
	}
}

// Coerce converts v to the target type when a lossless or conventional
// SQL cast exists (int↔float, string→date, anything→string). NULL
// coerces to NULL of any type.
func Coerce(v Value, t Type) (Value, error) {
	if v.IsNull() || v.typ == t {
		return v, nil
	}
	switch t {
	case TypeFloat:
		if v.typ == TypeInt {
			return NewFloat(float64(v.i)), nil
		}
	case TypeInt:
		if v.typ == TypeFloat {
			return NewInt(int64(v.f)), nil
		}
	case TypeDate:
		if v.typ == TypeString {
			return ParseDate(v.s)
		}
	case TypeString:
		return NewString(v.String()), nil
	}
	return Null, fmt.Errorf("value: cannot coerce %s to %s", v.typ, t)
}

// Tristate is SQL's three-valued logic domain.
type Tristate int

// The three logic values.
const (
	False Tristate = iota
	True
	Unknown
)

// TristateOf lifts a Go bool into the logic domain.
func TristateOf(b bool) Tristate {
	if b {
		return True
	}
	return False
}

// And implements three-valued AND.
func (t Tristate) And(o Tristate) Tristate {
	if t == False || o == False {
		return False
	}
	if t == True && o == True {
		return True
	}
	return Unknown
}

// Or implements three-valued OR.
func (t Tristate) Or(o Tristate) Tristate {
	if t == True || o == True {
		return True
	}
	if t == False && o == False {
		return False
	}
	return Unknown
}

// Not implements three-valued NOT.
func (t Tristate) Not() Tristate {
	switch t {
	case True:
		return False
	case False:
		return True
	default:
		return Unknown
	}
}

// Value converts the logic value to a SQL BOOLEAN (UNKNOWN → NULL).
func (t Tristate) Value() Value {
	switch t {
	case True:
		return NewBool(true)
	case False:
		return NewBool(false)
	default:
		return Null
	}
}

// TristateFromValue interprets a BOOLEAN (or NULL) value as a logic value.
func TristateFromValue(v Value) (Tristate, error) {
	if v.IsNull() {
		return Unknown, nil
	}
	if v.typ != TypeBool {
		return Unknown, fmt.Errorf("value: %s where BOOLEAN expected", v.typ)
	}
	return TristateOf(v.i != 0), nil
}
