package value

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary codec: a reversible, typed serialization of Value for the
// durable storage layer (WAL records and heap-file cells). Unlike
// AppendKey — which canonicalizes for map-key equality and is lossy
// (INTEGER and FLOAT deliberately collide) — this codec round-trips
// every value exactly, including large int64s and NaN payload-free
// floats.
//
// Wire form: one tag byte followed by a tag-specific payload. Integers
// and dates use zig-zag varints; floats use 8-byte little-endian IEEE
// bits; strings are uvarint-length-framed, the same framing discipline
// as the composite key codec in package schema.
const (
	binNull  = 0x00
	binFalse = 0x01
	binTrue  = 0x02
	binInt   = 0x03
	binFloat = 0x04
	binStr   = 0x05
	binDate  = 0x06
)

// AppendBinary appends the value's binary encoding to dst and returns
// the extended slice.
func (v Value) AppendBinary(dst []byte) []byte {
	switch v.typ {
	case TypeNull:
		return append(dst, binNull)
	case TypeBool:
		if v.i != 0 {
			return append(dst, binTrue)
		}
		return append(dst, binFalse)
	case TypeInt:
		return binary.AppendVarint(append(dst, binInt), v.i)
	case TypeFloat:
		return binary.LittleEndian.AppendUint64(append(dst, binFloat), math.Float64bits(v.f))
	case TypeString:
		dst = binary.AppendUvarint(append(dst, binStr), uint64(len(v.s)))
		return append(dst, v.s...)
	case TypeDate:
		return binary.AppendVarint(append(dst, binDate), v.i)
	default:
		// Unreachable for values built through the constructors; encode
		// as NULL so a corrupt in-memory value cannot poison the log.
		return append(dst, binNull)
	}
}

// DecodeBinary decodes one value from the front of b, returning the
// value and the remaining bytes. It is the inverse of AppendBinary and
// fails (never panics) on truncated or unknown input.
func DecodeBinary(b []byte) (Value, []byte, error) {
	if len(b) == 0 {
		return Null, nil, fmt.Errorf("value: decode: empty input")
	}
	tag, rest := b[0], b[1:]
	switch tag {
	case binNull:
		return Null, rest, nil
	case binFalse:
		return NewBool(false), rest, nil
	case binTrue:
		return NewBool(true), rest, nil
	case binInt:
		i, n := binary.Varint(rest)
		if n <= 0 {
			return Null, nil, fmt.Errorf("value: decode: bad int varint")
		}
		return NewInt(i), rest[n:], nil
	case binFloat:
		if len(rest) < 8 {
			return Null, nil, fmt.Errorf("value: decode: short float")
		}
		return NewFloat(math.Float64frombits(binary.LittleEndian.Uint64(rest))), rest[8:], nil
	case binStr:
		l, n := binary.Uvarint(rest)
		if n <= 0 || uint64(len(rest)-n) < l {
			return Null, nil, fmt.Errorf("value: decode: bad string frame")
		}
		return NewString(string(rest[n : n+int(l)])), rest[n+int(l):], nil
	case binDate:
		i, n := binary.Varint(rest)
		if n <= 0 {
			return Null, nil, fmt.Errorf("value: decode: bad date varint")
		}
		return NewDateFromDays(i), rest[n:], nil
	default:
		return Null, nil, fmt.Errorf("value: decode: unknown tag 0x%02x", tag)
	}
}
