package semck

import (
	"minerule/internal/sql/parse"
	"minerule/internal/sql/schema"
	"minerule/internal/sql/value"
)

// scope is one level of the name-resolution chain: the schema an
// expression binds against, plus the enclosing query's chain for
// correlated subquery references. It mirrors the executor's binding and
// outerRef pair.
type scope struct {
	s     *schema.Schema
	outer *scope
}

// checkSelect validates a full query — core specification, set
// operations, ORDER BY over the combined result — and returns its
// output schema.
func (c *checker) checkSelect(s *parse.Select, outer *scope) (*schema.Schema, error) {
	allowPreSort := len(s.SetOps) == 0
	out, preSorted, err := c.checkCore(s, outer, allowPreSort)
	if err != nil {
		return nil, err
	}
	for _, op := range s.SetOps {
		right, _, err := c.checkCore(op.Sel, outer, false)
		if err != nil {
			return nil, err
		}
		if right.Len() != out.Len() {
			return nil, c.errf(op.Sel.Pos, "%s operands have %d and %d columns",
				op.Kind, out.Len(), right.Len())
		}
	}
	if len(s.OrderBy) > 0 && !preSorted {
		if err := c.checkOrderBy(s.OrderBy, out, outer); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// checkCore validates one query specification (no set operations). The
// bool result mirrors the executor's pre-sort decision: when the ORDER
// BY will be satisfied against the input relation before projection,
// the caller must not re-check it against the output.
func (c *checker) checkCore(s *parse.Select, outer *scope, allowPreSort bool) (*schema.Schema, bool, error) {
	input, conjs, err := c.checkFrom(s, outer)
	if err != nil {
		return nil, false, err
	}
	// Every WHERE conjunct type-checks under the scope the executor
	// binds it at (nil scope = consumed as a hash-join key, where no
	// expression is compiled).
	for _, cc := range conjs {
		if cc.sc == nil {
			continue
		}
		t, err := c.typeOf(cc.sc, cc.e, false)
		if err != nil {
			return nil, false, err
		}
		if e := c.wantBool(cc.e, t); e != nil {
			return nil, false, e
		}
	}

	grouped := len(s.GroupBy) > 0 || selectHasAgg(s)
	inScope := &scope{s: input, outer: outer}

	preSorted := false
	if allowPreSort && !grouped && !s.Distinct && len(s.OrderBy) > 0 &&
		!c.canOrderByOutput(s, input, outer) && c.canOrder(input, s.OrderBy, outer) {
		preSorted = true
		for _, o := range s.OrderBy {
			if _, err := c.typeOf(inScope, o.Expr, false); err != nil {
				return nil, false, err
			}
		}
	}

	var out *schema.Schema
	if grouped {
		out, err = c.checkGroup(s, input, outer)
	} else {
		if s.Having != nil {
			return nil, false, c.errf(parse.ExprOffset(s.Having), "HAVING without GROUP BY or aggregates")
		}
		out, err = c.checkProject(s, input, outer)
	}
	if err != nil {
		return nil, false, err
	}
	return out, preSorted, nil
}

// conjCheck is one WHERE conjunct with the scope the executor will
// compile it under; sc is nil when the conjunct is consumed as an
// equi-join key pair and never compiled as an expression.
type conjCheck struct {
	e  parse.Expr
	sc *scope
}

// checkFrom resolves the FROM list and replays the executor's conjunct
// placement: each WHERE conjunct is claimed by the first relation scope
// it compiles against (single table, then each widened join prefix),
// join-key equalities are consumed structurally, and the rest bind
// against the full joined schema.
func (c *checker) checkFrom(s *parse.Select, outer *scope) (*schema.Schema, []conjCheck, error) {
	conjuncts := splitConjuncts(s.Where)

	if len(s.From) == 0 {
		empty := schema.New("")
		sc := &scope{s: empty, outer: outer}
		out := make([]conjCheck, len(conjuncts))
		for i, e := range conjuncts {
			out[i] = conjCheck{e: e, sc: sc}
		}
		return empty, out, nil
	}

	used := make([]bool, len(conjuncts))
	scopes := make([]*scope, len(conjuncts))
	applyLocal := func(sch *schema.Schema) {
		sc := &scope{s: sch, outer: outer}
		for i, e := range conjuncts {
			if used[i] {
				continue
			}
			if c.compiles(sc, e) {
				used[i] = true
				scopes[i] = sc
			}
		}
	}

	cur, err := c.scanSchema(s.From[0], outer)
	if err != nil {
		return nil, nil, err
	}
	applyLocal(cur)
	for _, tr := range s.From[1:] {
		right, err := c.scanSchema(tr, outer)
		if err != nil {
			return nil, nil, err
		}
		applyLocal(right)
		for i, e := range conjuncts {
			if used[i] {
				continue
			}
			if isEquiJoin(e, cur, right) {
				used[i] = true // scopes[i] stays nil: hash-join key
			}
		}
		cur = cur.Append(right)
		applyLocal(cur)
	}

	full := &scope{s: cur, outer: outer}
	out := make([]conjCheck, len(conjuncts))
	for i, e := range conjuncts {
		sc := scopes[i]
		if !used[i] {
			// Residual conjunct: the executor compiles it against the
			// joined relation, so an unresolved name surfaces there.
			sc = full
		}
		out[i] = conjCheck{e: e, sc: sc}
	}
	return cur, out, nil
}

// scanSchema resolves one FROM element including its explicit JOIN
// chain, checking each ON condition the way the executor compiles it:
// equi-key conjuncts are consumed structurally, the rest bind against
// the combined schema of the two sides.
func (c *checker) scanSchema(tr parse.TableRef, outer *scope) (*schema.Schema, error) {
	cur, err := c.baseSchema(tr, outer)
	if err != nil {
		return nil, err
	}
	for _, j := range tr.Joins {
		right, err := c.baseSchema(j.Right, outer)
		if err != nil {
			return nil, err
		}
		combined := cur.Append(right)
		onScope := &scope{s: combined, outer: outer}
		for _, e := range splitConjuncts(j.On) {
			if isEquiJoin(e, cur, right) {
				continue
			}
			t, err := c.typeOf(onScope, e, false)
			if err != nil {
				return nil, err
			}
			if e2 := c.wantBool(e, t); e2 != nil {
				return nil, e2
			}
		}
		cur = combined
	}
	return cur, nil
}

// baseSchema resolves a base table, view or derived table to its
// schema, applying the alias as qualifier exactly as the executor's
// scanBase does.
func (c *checker) baseSchema(tr parse.TableRef, outer *scope) (*schema.Schema, error) {
	var s *schema.Schema
	qual := tr.Alias
	switch {
	case tr.Sub != nil:
		sub, err := c.checkSelect(tr.Sub, outer)
		if err != nil {
			return nil, err
		}
		s = sub
	default:
		if ts, ok := c.cat.TableSchema(tr.Name); ok {
			s = ts
			if qual == "" {
				qual = tr.Name
			}
			break
		}
		if text, ok := c.cat.ViewText(tr.Name); ok {
			vs, err := c.viewSchema(tr, text, outer)
			if err != nil {
				return nil, err
			}
			s = vs
			if qual == "" {
				qual = tr.Name
			}
			break
		}
		return nil, c.errf(tr.Pos, "unknown table or view %q", tr.Name)
	}
	if qual != "" {
		s = s.WithQualifier(qual)
	}
	return s, nil
}

// viewSchema checks a view body under the current outer chain (the
// executor re-plans views inside the enclosing environment, so a view
// body may hold correlated references). Diagnostics inside the body
// point at positions in the view's stored text, not the statement being
// checked, so they re-anchor at the referencing table position.
func (c *checker) viewSchema(tr parse.TableRef, text string, outer *scope) (*schema.Schema, error) {
	if c.viewDepth >= maxViewDepth {
		return nil, c.errf(tr.Pos, "view %s: nesting exceeds %d levels", tr.Name, maxViewDepth)
	}
	st, err := parse.Parse(text)
	if err != nil {
		return nil, c.errf(tr.Pos, "corrupt view %s: %v", tr.Name, err)
	}
	sel, ok := st.(*parse.Select)
	if !ok {
		return nil, c.errf(tr.Pos, "view %s is not a SELECT", tr.Name)
	}
	sub := &checker{cat: c.cat, src: text, viewDepth: c.viewDepth + 1}
	vs, verr := sub.checkSelect(sel, outer)
	if verr != nil {
		msg := verr.Error()
		if se, ok := verr.(*Error); ok {
			msg = se.Msg
		}
		return nil, c.errf(tr.Pos, "view %s: %s", tr.Name, msg)
	}
	return vs, nil
}

// isEquiJoin mirrors the executor's hash-join key detection: an
// equality of two column references that resolve on opposite sides and
// are absent from each other's side, in either orientation.
func isEquiJoin(e parse.Expr, left, right *schema.Schema) bool {
	be, ok := e.(*parse.BinaryExpr)
	if !ok || be.Op != parse.OpEq {
		return false
	}
	lc, lok := be.L.(*parse.ColumnRef)
	rc, rok := be.R.(*parse.ColumnRef)
	if !lok || !rok {
		return false
	}
	resolves := func(s *schema.Schema, cr *parse.ColumnRef) bool {
		_, err := s.Resolve(cr.Qual, cr.Name)
		return err == nil
	}
	if resolves(left, lc) && resolves(right, rc) &&
		!right.Has(lc.Qual, lc.Name) && !left.Has(rc.Qual, rc.Name) {
		return true
	}
	if resolves(left, rc) && resolves(right, lc) &&
		!right.Has(rc.Qual, rc.Name) && !left.Has(lc.Qual, lc.Name) {
		return true
	}
	return false
}

// projItem is one resolved output column: a star-expanded input column
// or an expression item.
type projItem struct {
	col  schema.Column
	expr parse.Expr // nil for star expansions
}

// expandItems resolves *, qual.* and expression items against the input
// schema, mirroring the executor's projection naming rules.
func (c *checker) expandItems(s *parse.Select, in *schema.Schema) ([]projItem, error) {
	var items []projItem
	for _, it := range s.Items {
		switch {
		case it.Star:
			for i := 0; i < in.Len(); i++ {
				items = append(items, projItem{col: in.Col(i)})
			}
		case it.StarQual != "":
			q := lowerQual(it.StarQual)
			found := false
			for i := 0; i < in.Len(); i++ {
				if in.Qual(i) == q {
					items = append(items, projItem{col: in.Col(i)})
					found = true
				}
			}
			if !found {
				return nil, c.errf(it.Pos, "unknown relation %q in %s.*", it.StarQual, it.StarQual)
			}
		default:
			name := it.Alias
			if name == "" {
				switch x := it.Expr.(type) {
				case *parse.ColumnRef:
					name = x.Name
				case *parse.FuncCall:
					name = x.Name
				case *parse.NextVal:
					name = "NEXTVAL"
				default:
					name = colN(len(items) + 1)
				}
			}
			items = append(items, projItem{col: schema.Column{Name: name}, expr: it.Expr})
		}
	}
	return items, nil
}

// checkProject validates a non-grouped projection and returns the
// output schema with statically inferred column types.
func (c *checker) checkProject(s *parse.Select, in *schema.Schema, outer *scope) (*schema.Schema, error) {
	items, err := c.expandItems(s, in)
	if err != nil {
		return nil, err
	}
	sc := &scope{s: in, outer: outer}
	cols := make([]schema.Column, len(items))
	for i, it := range items {
		cols[i] = it.col
		if it.expr != nil {
			t, err := c.typeOf(sc, it.expr, false)
			if err != nil {
				return nil, err
			}
			cols[i].Type = t
		}
	}
	return schema.New("", cols...), nil
}

// checkGroup validates GROUP BY keys (no aggregates), aggregate
// arguments (no nesting), the projection and HAVING (aggregates
// allowed), mirroring the executor's two binding modes.
func (c *checker) checkGroup(s *parse.Select, in *schema.Schema, outer *scope) (*schema.Schema, error) {
	items, err := c.expandItems(s, in)
	if err != nil {
		return nil, err
	}
	sc := &scope{s: in, outer: outer}
	for _, g := range s.GroupBy {
		if _, err := c.typeOf(sc, g, false); err != nil {
			return nil, err
		}
	}
	cols := make([]schema.Column, len(items))
	for i, it := range items {
		cols[i] = it.col
		if it.expr != nil {
			t, err := c.typeOf(sc, it.expr, true)
			if err != nil {
				return nil, err
			}
			cols[i].Type = t
		}
	}
	if s.Having != nil {
		t, err := c.typeOf(sc, s.Having, true)
		if err != nil {
			return nil, err
		}
		if e := c.wantBool(s.Having, t); e != nil {
			return nil, e
		}
	}
	return schema.New("", cols...), nil
}

// checkOrderBy validates ORDER BY against the output schema: 1-based
// integer ordinals must address an output column, and every other key
// must resolve there, with the executor's qualified→unqualified
// fallback for column references the projection stripped.
func (c *checker) checkOrderBy(order []parse.OrderItem, out *schema.Schema, outer *scope) error {
	sc := &scope{s: out, outer: outer}
	for _, o := range order {
		if lit, ok := o.Expr.(*parse.Literal); ok && lit.Val.Type() == value.TypeInt {
			ord := int(lit.Val.Int()) - 1
			if ord < 0 || ord >= out.Len() {
				return c.errf(lit.Pos, "ORDER BY position %d out of range", ord+1)
			}
			continue
		}
		if _, err := c.typeOf(sc, o.Expr, false); err != nil {
			if cr, ok := o.Expr.(*parse.ColumnRef); ok && cr.Qual != "" {
				if _, err2 := c.typeOf(sc, &parse.ColumnRef{Name: cr.Name, Pos: cr.Pos}, false); err2 == nil {
					continue
				}
			}
			return err
		}
	}
	return nil
}

// canOrder mirrors the executor's pre-sort eligibility test: every key
// must compile against the schema and none may be an integer ordinal.
func (c *checker) canOrder(sch *schema.Schema, order []parse.OrderItem, outer *scope) bool {
	sc := &scope{s: sch, outer: outer}
	for _, o := range order {
		if lit, ok := o.Expr.(*parse.Literal); ok && lit.Val.Type() == value.TypeInt {
			return false
		}
		if !c.compiles(sc, o.Expr) {
			return false
		}
	}
	return true
}

// canOrderByOutput mirrors the executor: would the ORDER BY resolve
// against the projection's column names alone?
func (c *checker) canOrderByOutput(s *parse.Select, in *schema.Schema, outer *scope) bool {
	items, err := c.expandItems(s, in)
	if err != nil {
		return false
	}
	cols := make([]schema.Column, len(items))
	for i, it := range items {
		cols[i] = it.col
	}
	return c.canOrder(schema.New("", cols...), s.OrderBy, outer)
}

func selectHasAgg(s *parse.Select) bool {
	for _, it := range s.Items {
		if it.Expr != nil && parse.HasAggregate(it.Expr) {
			return true
		}
	}
	return s.Having != nil && parse.HasAggregate(s.Having)
}

// splitConjuncts flattens a WHERE tree over AND, as the executor does.
func splitConjuncts(e parse.Expr) []parse.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*parse.BinaryExpr); ok && b.Op == parse.OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []parse.Expr{e}
}
