package semck

import (
	"fmt"
	"strings"

	"minerule/internal/sql/parse"
	"minerule/internal/sql/value"
)

func lowerQual(q string) string { return strings.ToLower(q) }

func colN(n int) string { return fmt.Sprintf("COL%d", n) }

// resolveRef resolves a column reference in the scope chain, innermost
// first, exactly like the executor's binding: on failure in the primary
// schema every outer level is tried, and the primary error is reported
// when none matches.
func (c *checker) resolveRef(sc *scope, x *parse.ColumnRef) (value.Type, *Error) {
	idx, err := sc.s.Resolve(x.Qual, x.Name)
	if err == nil {
		return sc.s.Col(idx).Type, nil
	}
	for o := sc.outer; o != nil; o = o.outer {
		if oidx, oerr := o.s.Resolve(x.Qual, x.Name); oerr == nil {
			return o.s.Col(oidx).Type, nil
		}
	}
	return value.TypeNull, c.schemaErr(x.Pos, err)
}

// compiles mirrors the executor's compile-time success predicate for an
// expression under an aggregate-free binding. The executor uses that
// predicate to decide where a WHERE conjunct binds (applyLocal) and
// whether a pre-projection sort is possible (canOrder); the checker
// must make the same decisions, so this must not be stricter or looser
// than binding.compile. Notably, subquery bodies never fail compilation
// (they are evaluated lazily), so they are not descended into here.
func (c *checker) compiles(sc *scope, e parse.Expr) bool {
	switch x := e.(type) {
	case nil:
		return true
	case *parse.Literal:
		return true
	case *parse.ColumnRef:
		_, err := c.resolveRef(sc, x)
		return err == nil
	case *parse.NextVal:
		return c.cat.HasSequence(x.Seq)
	case *parse.NegExpr:
		return c.compiles(sc, x.E)
	case *parse.NotExpr:
		return c.compiles(sc, x.E)
	case *parse.BinaryExpr:
		return c.compiles(sc, x.L) && c.compiles(sc, x.R)
	case *parse.BetweenExpr:
		return c.compiles(sc, x.E) && c.compiles(sc, x.Lo) && c.compiles(sc, x.Hi)
	case *parse.InListExpr:
		if !c.compiles(sc, x.E) {
			return false
		}
		for _, le := range x.List {
			if !c.compiles(sc, le) {
				return false
			}
		}
		return true
	case *parse.InSubquery:
		return c.compiles(sc, x.E)
	case *parse.ExistsExpr:
		return true
	case *parse.ScalarSubquery:
		return true
	case *parse.IsNullExpr:
		return c.compiles(sc, x.E)
	case *parse.LikeExpr:
		return c.compiles(sc, x.E) && c.compiles(sc, x.Pattern)
	case *parse.CaseExpr:
		if x.Operand != nil && !c.compiles(sc, x.Operand) {
			return false
		}
		for _, w := range x.Whens {
			if !c.compiles(sc, w.When) || !c.compiles(sc, w.Then) {
				return false
			}
		}
		return x.Else == nil || c.compiles(sc, x.Else)
	case *parse.FuncCall:
		if x.IsAggregate() {
			return false // aggs nil in every compile-predicate site
		}
		for _, a := range x.Args {
			if !c.compiles(sc, a) {
				return false
			}
		}
		return scalarArityOK(x)
	}
	return false
}

// scalarArityOK mirrors compileScalarFunc's name and arity gate.
func scalarArityOK(x *parse.FuncCall) bool {
	n := len(x.Args)
	switch x.Name {
	case "ABS", "UPPER", "LOWER", "LENGTH", "TRIM":
		return n == 1
	case "MOD":
		return n == 2
	case "SUBSTR", "SUBSTRING":
		return n == 2 || n == 3
	case "ROUND":
		return n == 1 || n == 2
	case "COALESCE":
		return n >= 1
	}
	return false
}

// wantBool rejects an expression whose static type can never yield a
// boolean (the executor's TristateFromValue fails on every non-null
// value of such a type).
func (c *checker) wantBool(e parse.Expr, t value.Type) *Error {
	if t == value.TypeBool || t == value.TypeNull {
		return nil
	}
	return c.errf(parse.ExprOffset(e), "%s where BOOLEAN expected", t)
}

// comparable reports whether two static types can ever compare without
// a runtime type error: unknowns always can, numerics promote, equal
// types compare, and date↔string coerces lazily.
func comparable(a, b value.Type) bool {
	if a == value.TypeNull || b == value.TypeNull || a == b {
		return true
	}
	if a.Numeric() && b.Numeric() {
		return true
	}
	if a == value.TypeDate && b == value.TypeString || a == value.TypeString && b == value.TypeDate {
		return true
	}
	return false
}

func numericOrNull(t value.Type) bool { return t == value.TypeNull || t.Numeric() }
func intOrNull(t value.Type) bool     { return t == value.TypeNull || t == value.TypeInt }
func stringOrNull(t value.Type) bool  { return t == value.TypeNull || t == value.TypeString }

// commonType folds a set of statically known types into one: all equal
// known types keep that type, anything mixed or unknown is TypeNull.
func commonType(ts ...value.Type) value.Type {
	res := value.TypeNull
	for _, t := range ts {
		if t == value.TypeNull {
			continue
		}
		if res == value.TypeNull {
			res = t
		} else if res != t {
			return value.TypeNull
		}
	}
	return res
}

// typeOf checks an expression under the scope chain and infers its
// static type. aggOK reports whether aggregate calls are legal here
// (projection items and HAVING of a grouped query); their arguments are
// always checked aggregate-free, mirroring the executor's two binding
// modes. TypeNull means "statically unknown" and propagates without
// ever erroring.
func (c *checker) typeOf(sc *scope, e parse.Expr, aggOK bool) (value.Type, error) {
	switch x := e.(type) {
	case *parse.Literal:
		return x.Val.Type(), nil

	case *parse.ColumnRef:
		t, err := c.resolveRef(sc, x)
		if err != nil {
			return value.TypeNull, err
		}
		return t, nil

	case *parse.NextVal:
		if !c.cat.HasSequence(x.Seq) {
			return value.TypeNull, c.errf(x.Pos, "unknown sequence %q", x.Seq)
		}
		return value.TypeInt, nil

	case *parse.NegExpr:
		t, err := c.typeOf(sc, x.E, aggOK)
		if err != nil {
			return value.TypeNull, err
		}
		if !numericOrNull(t) {
			return value.TypeNull, c.errf(x.Pos, "unary minus on %s", t)
		}
		return t, nil

	case *parse.NotExpr:
		t, err := c.typeOf(sc, x.E, aggOK)
		if err != nil {
			return value.TypeNull, err
		}
		if e2 := c.wantBool(x.E, t); e2 != nil {
			return value.TypeNull, e2
		}
		return value.TypeBool, nil

	case *parse.BinaryExpr:
		return c.typeOfBinary(sc, x, aggOK)

	case *parse.BetweenExpr:
		et, err := c.typeOf(sc, x.E, aggOK)
		if err != nil {
			return value.TypeNull, err
		}
		lot, err := c.typeOf(sc, x.Lo, aggOK)
		if err != nil {
			return value.TypeNull, err
		}
		hit, err := c.typeOf(sc, x.Hi, aggOK)
		if err != nil {
			return value.TypeNull, err
		}
		if !comparable(et, lot) {
			return value.TypeNull, c.errf(x.Pos, "cannot compare %s with %s", et, lot)
		}
		if !comparable(et, hit) {
			return value.TypeNull, c.errf(x.Pos, "cannot compare %s with %s", et, hit)
		}
		return value.TypeBool, nil

	case *parse.InListExpr:
		et, err := c.typeOf(sc, x.E, aggOK)
		if err != nil {
			return value.TypeNull, err
		}
		for _, le := range x.List {
			lt, err := c.typeOf(sc, le, aggOK)
			if err != nil {
				return value.TypeNull, err
			}
			if !comparable(et, lt) {
				return value.TypeNull, c.errf(parse.ExprOffset(le), "cannot compare %s with %s", et, lt)
			}
		}
		return value.TypeBool, nil

	case *parse.InSubquery:
		et, err := c.typeOf(sc, x.E, aggOK)
		if err != nil {
			return value.TypeNull, err
		}
		ss, err := c.checkSelect(x.Sub, sc)
		if err != nil {
			return value.TypeNull, err
		}
		if ss.Len() != 1 {
			return value.TypeNull, c.errf(x.Sub.Pos, "subquery must return 1 column(s), got %d", ss.Len())
		}
		if !comparable(et, ss.Col(0).Type) {
			return value.TypeNull, c.errf(x.Pos, "cannot compare %s with %s", et, ss.Col(0).Type)
		}
		return value.TypeBool, nil

	case *parse.ExistsExpr:
		if _, err := c.checkSelect(x.Sub, sc); err != nil {
			return value.TypeNull, err
		}
		return value.TypeBool, nil

	case *parse.ScalarSubquery:
		ss, err := c.checkSelect(x.Sub, sc)
		if err != nil {
			return value.TypeNull, err
		}
		if ss.Len() != 1 {
			return value.TypeNull, c.errf(x.Sub.Pos, "subquery must return 1 column(s), got %d", ss.Len())
		}
		return ss.Col(0).Type, nil

	case *parse.IsNullExpr:
		if _, err := c.typeOf(sc, x.E, aggOK); err != nil {
			return value.TypeNull, err
		}
		return value.TypeBool, nil

	case *parse.LikeExpr:
		et, err := c.typeOf(sc, x.E, aggOK)
		if err != nil {
			return value.TypeNull, err
		}
		pt, err := c.typeOf(sc, x.Pattern, aggOK)
		if err != nil {
			return value.TypeNull, err
		}
		if !stringOrNull(et) || !stringOrNull(pt) {
			return value.TypeNull, c.errf(x.Pos, "LIKE requires strings")
		}
		return value.TypeBool, nil

	case *parse.CaseExpr:
		return c.typeOfCase(sc, x, aggOK)

	case *parse.FuncCall:
		if x.IsAggregate() {
			return c.typeOfAggregate(sc, x, aggOK)
		}
		return c.typeOfScalarFunc(sc, x, aggOK)
	}
	return value.TypeNull, c.errf(parse.ExprOffset(e), "cannot check %T", e)
}

func (c *checker) typeOfBinary(sc *scope, x *parse.BinaryExpr, aggOK bool) (value.Type, error) {
	lt, err := c.typeOf(sc, x.L, aggOK)
	if err != nil {
		return value.TypeNull, err
	}
	rt, err := c.typeOf(sc, x.R, aggOK)
	if err != nil {
		return value.TypeNull, err
	}
	switch {
	case x.Op == parse.OpAnd || x.Op == parse.OpOr:
		if e := c.wantBool(x.L, lt); e != nil {
			return value.TypeNull, e
		}
		if e := c.wantBool(x.R, rt); e != nil {
			return value.TypeNull, e
		}
		return value.TypeBool, nil

	case x.Op.Comparison():
		if !comparable(lt, rt) {
			return value.TypeNull, c.errf(x.Pos, "cannot compare %s with %s", lt, rt)
		}
		return value.TypeBool, nil

	case x.Op == parse.OpConcat:
		// The executor renders both sides with String(), which accepts
		// every type; only the result type is fixed.
		return value.TypeString, nil

	default: // arithmetic
		return c.arithType(x, lt, rt)
	}
}

// arithType mirrors value.Arith's typing: date±int and date−date are
// special-cased, numerics promote, and anything else is a guaranteed
// runtime error once a non-null value appears.
func (c *checker) arithType(x *parse.BinaryExpr, lt, rt value.Type) (value.Type, error) {
	if lt == value.TypeNull || rt == value.TypeNull {
		return value.TypeNull, nil
	}
	var sym byte
	switch x.Op {
	case parse.OpAdd:
		sym = '+'
	case parse.OpSub:
		sym = '-'
	case parse.OpMul:
		sym = '*'
	case parse.OpDiv:
		sym = '/'
	}
	if sym == '+' && lt == value.TypeDate && rt == value.TypeInt {
		return value.TypeDate, nil
	}
	if sym == '-' && lt == value.TypeDate {
		if rt == value.TypeInt {
			return value.TypeDate, nil
		}
		if rt == value.TypeDate {
			return value.TypeInt, nil
		}
	}
	if !lt.Numeric() || !rt.Numeric() {
		return value.TypeNull, c.errf(x.Pos, "%c on %s and %s", sym, lt, rt)
	}
	if lt == value.TypeInt && rt == value.TypeInt {
		return value.TypeInt, nil
	}
	return value.TypeFloat, nil
}

func (c *checker) typeOfCase(sc *scope, x *parse.CaseExpr, aggOK bool) (value.Type, error) {
	var opType value.Type
	if x.Operand != nil {
		t, err := c.typeOf(sc, x.Operand, aggOK)
		if err != nil {
			return value.TypeNull, err
		}
		opType = t
	}
	results := make([]value.Type, 0, len(x.Whens)+1)
	for _, w := range x.Whens {
		wt, err := c.typeOf(sc, w.When, aggOK)
		if err != nil {
			return value.TypeNull, err
		}
		if x.Operand != nil {
			if !comparable(opType, wt) {
				return value.TypeNull, c.errf(parse.ExprOffset(w.When), "cannot compare %s with %s", opType, wt)
			}
		} else if e := c.wantBool(w.When, wt); e != nil {
			return value.TypeNull, e
		}
		tt, err := c.typeOf(sc, w.Then, aggOK)
		if err != nil {
			return value.TypeNull, err
		}
		results = append(results, tt)
	}
	if x.Else != nil {
		et, err := c.typeOf(sc, x.Else, aggOK)
		if err != nil {
			return value.TypeNull, err
		}
		results = append(results, et)
	}
	return commonType(results...), nil
}

// typeOfAggregate checks one aggregate call. The argument is checked
// with aggregates disallowed (the executor compiles it under the
// aggregate-free key binding, so nesting fails there).
func (c *checker) typeOfAggregate(sc *scope, x *parse.FuncCall, aggOK bool) (value.Type, error) {
	if !aggOK {
		return value.TypeNull, c.errf(x.Pos, "aggregate %s outside GROUP BY context", x.Name)
	}
	if x.Star {
		return value.TypeInt, nil
	}
	if len(x.Args) != 1 {
		return value.TypeNull, c.errf(x.Pos, "%s takes one argument", x.Name)
	}
	at, err := c.typeOf(sc, x.Args[0], false)
	if err != nil {
		return value.TypeNull, err
	}
	switch x.Name {
	case "COUNT":
		return value.TypeInt, nil
	case "AVG":
		if !numericOrNull(at) {
			return value.TypeNull, c.errf(x.Pos, "%s over %s", x.Name, at)
		}
		return value.TypeFloat, nil
	case "SUM":
		if !numericOrNull(at) {
			return value.TypeNull, c.errf(x.Pos, "%s over %s", x.Name, at)
		}
		return at, nil
	default: // MIN, MAX
		return at, nil
	}
}

func (c *checker) typeOfScalarFunc(sc *scope, x *parse.FuncCall, aggOK bool) (value.Type, error) {
	// Scalar function arguments compile under the same binding as the
	// call, so aggregates are legal inside them when aggOK (e.g.
	// ROUND(AVG(x), 2) in a grouped projection).
	args := make([]value.Type, len(x.Args))
	for i, a := range x.Args {
		t, err := c.typeOf(sc, a, aggOK)
		if err != nil {
			return value.TypeNull, err
		}
		args[i] = t
	}
	need := func(n int) *Error {
		if len(args) != n {
			return c.errf(x.Pos, "%s takes %d argument(s), got %d", x.Name, n, len(args))
		}
		return nil
	}
	switch x.Name {
	case "ABS":
		if e := need(1); e != nil {
			return value.TypeNull, e
		}
		if !numericOrNull(args[0]) {
			return value.TypeNull, c.errf(x.Pos, "ABS on %s", args[0])
		}
		return args[0], nil
	case "MOD":
		if e := need(2); e != nil {
			return value.TypeNull, e
		}
		if !intOrNull(args[0]) || !intOrNull(args[1]) {
			return value.TypeNull, c.errf(x.Pos, "MOD requires integers")
		}
		return value.TypeInt, nil
	case "UPPER", "LOWER":
		if e := need(1); e != nil {
			return value.TypeNull, e
		}
		if !stringOrNull(args[0]) {
			return value.TypeNull, c.errf(x.Pos, "%s on %s", x.Name, args[0])
		}
		return value.TypeString, nil
	case "LENGTH":
		if e := need(1); e != nil {
			return value.TypeNull, e
		}
		if !stringOrNull(args[0]) {
			return value.TypeNull, c.errf(x.Pos, "LENGTH on %s", args[0])
		}
		return value.TypeInt, nil
	case "SUBSTR", "SUBSTRING":
		if len(args) != 2 && len(args) != 3 {
			return value.TypeNull, c.errf(x.Pos, "%s takes 2 or 3 arguments", x.Name)
		}
		if !stringOrNull(args[0]) || !intOrNull(args[1]) {
			return value.TypeNull, c.errf(x.Pos, "SUBSTR requires (string, int[, int])")
		}
		if len(args) == 3 && !intOrNull(args[2]) {
			return value.TypeNull, c.errf(x.Pos, "SUBSTR length must be an integer")
		}
		return value.TypeString, nil
	case "TRIM":
		if e := need(1); e != nil {
			return value.TypeNull, e
		}
		if !stringOrNull(args[0]) {
			return value.TypeNull, c.errf(x.Pos, "TRIM on %s", args[0])
		}
		return value.TypeString, nil
	case "ROUND":
		if len(args) != 1 && len(args) != 2 {
			return value.TypeNull, c.errf(x.Pos, "ROUND takes 1 or 2 arguments")
		}
		if !numericOrNull(args[0]) {
			return value.TypeNull, c.errf(x.Pos, "ROUND on %s", args[0])
		}
		if len(args) == 2 && !intOrNull(args[1]) {
			return value.TypeNull, c.errf(x.Pos, "ROUND digits must be an integer")
		}
		return value.TypeFloat, nil
	case "COALESCE":
		if len(args) == 0 {
			return value.TypeNull, c.errf(x.Pos, "COALESCE needs arguments")
		}
		return commonType(args...), nil
	}
	return value.TypeNull, c.errf(x.Pos, "unknown function %s", x.Name)
}
