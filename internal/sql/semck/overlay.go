package semck

import (
	"strings"

	"minerule/internal/sql/parse"
	"minerule/internal/sql/schema"
)

// Overlay layers uncommitted DDL effects over a base dictionary, so a
// script of statements (the translator's generated Q0–Q11 program, a
// multi-statement setup file) can be checked in order before any of it
// executes: each statement is Checked against the overlay, then its DDL
// effect is Applied, and the next statement sees it.
type Overlay struct {
	base    Catalog
	tabs    map[string]*schema.Schema
	vws     map[string]string
	seqs    map[string]bool
	idxs    map[string]string // index name → owning table name (keys lowercased)
	dropped map[string]bool   // tombstones shadowing base objects
}

// NewOverlay returns an empty overlay over base.
func NewOverlay(base Catalog) *Overlay {
	return &Overlay{
		base:    base,
		tabs:    make(map[string]*schema.Schema),
		vws:     make(map[string]string),
		seqs:    make(map[string]bool),
		idxs:    make(map[string]string),
		dropped: make(map[string]bool),
	}
}

func okey(name string) string { return strings.ToLower(name) }

// TableSchema implements Catalog.
func (o *Overlay) TableSchema(name string) (*schema.Schema, bool) {
	k := okey(name)
	if s, ok := o.tabs[k]; ok {
		return s, true
	}
	if o.dropped[k] {
		return nil, false
	}
	return o.base.TableSchema(name)
}

// ViewText implements Catalog.
func (o *Overlay) ViewText(name string) (string, bool) {
	k := okey(name)
	if t, ok := o.vws[k]; ok {
		return t, true
	}
	if o.dropped[k] {
		return "", false
	}
	return o.base.ViewText(name)
}

// HasSequence implements Catalog.
func (o *Overlay) HasSequence(name string) bool {
	k := okey(name)
	if o.seqs[k] {
		return true
	}
	if o.dropped[k] {
		return false
	}
	return o.base.HasSequence(name)
}

// HasIndex implements Catalog.
func (o *Overlay) HasIndex(name string) bool {
	k := okey(name)
	if _, ok := o.idxs[k]; ok {
		return true
	}
	if o.dropped[k] {
		return false
	}
	return o.base.HasIndex(name)
}

// TableIndexes implements Catalog.
func (o *Overlay) TableIndexes(table string) []string {
	tk := okey(table)
	var out []string
	for _, ix := range o.base.TableIndexes(table) {
		if !o.dropped[okey(ix)] {
			out = append(out, ix)
		}
	}
	for ix, owner := range o.idxs {
		if owner == tk {
			out = append(out, ix)
		}
	}
	return out
}

// Apply records the dictionary effect of a DDL statement. Non-DDL
// statements are no-ops. Apply assumes the statement already passed
// Check against this overlay; it does not re-validate.
func (o *Overlay) Apply(st parse.Statement) {
	switch x := st.(type) {
	case *parse.CreateTable:
		cols := make([]schema.Column, len(x.Cols))
		for i, cd := range x.Cols {
			cols[i] = schema.Column{Name: cd.Name, Type: cd.Type}
		}
		k := okey(x.Name)
		o.tabs[k] = schema.New(x.Name, cols...)
		delete(o.dropped, k)
	case *parse.DropTable:
		// The table's indexes leave the namespace with it.
		for _, ix := range o.TableIndexes(x.Name) {
			ik := okey(ix)
			delete(o.idxs, ik)
			o.dropped[ik] = true
		}
		k := okey(x.Name)
		delete(o.tabs, k)
		o.dropped[k] = true
	case *parse.CreateView:
		k := okey(x.Name)
		o.vws[k] = x.Query.SQL()
		delete(o.dropped, k)
	case *parse.DropView:
		k := okey(x.Name)
		delete(o.vws, k)
		o.dropped[k] = true
	case *parse.CreateSequence:
		k := okey(x.Name)
		o.seqs[k] = true
		delete(o.dropped, k)
	case *parse.DropSequence:
		k := okey(x.Name)
		delete(o.seqs, k)
		o.dropped[k] = true
	case *parse.CreateIndex:
		k := okey(x.Name)
		o.idxs[k] = okey(x.Table)
		delete(o.dropped, k)
	case *parse.DropIndex:
		k := okey(x.Name)
		delete(o.idxs, k)
		o.dropped[k] = true
	}
}
