package semck

import (
	"strings"
	"testing"

	"minerule/internal/sql/parse"
	"minerule/internal/sql/schema"
	"minerule/internal/sql/storage"
	"minerule/internal/sql/value"
)

// testCatalog builds the dictionary the table-driven cases run against:
//
//	t(a INT, b VARCHAR, d DATE)   s(x INT, y VARCHAR)
//	sequence seq, view v AS SELECT a FROM t, index ix ON t(a)
func testCatalog(t *testing.T) Catalog {
	t.Helper()
	cat := storage.NewCatalog()
	mustCreate := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	_, err := cat.CreateTable("t", schema.New("t",
		schema.Column{Name: "a", Type: value.TypeInt},
		schema.Column{Name: "b", Type: value.TypeString},
		schema.Column{Name: "d", Type: value.TypeDate},
	))
	mustCreate(err)
	_, err = cat.CreateTable("s", schema.New("s",
		schema.Column{Name: "x", Type: value.TypeInt},
		schema.Column{Name: "y", Type: value.TypeString},
	))
	mustCreate(err)
	_, err = cat.CreateSequence("seq")
	mustCreate(err)
	mustCreate(cat.CreateView("v", "SELECT a FROM t"))
	_, err = cat.CreateIndex("ix", "t", 0)
	mustCreate(err)
	return FromStorage(cat)
}

func checkOne(t *testing.T, cat Catalog, sql string) error {
	t.Helper()
	st, err := parse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return Check(cat, st, sql)
}

func TestCheckAccepts(t *testing.T) {
	cat := testCatalog(t)
	for _, sql := range []string{
		"SELECT a, b FROM t",
		"SELECT t.a FROM t WHERE t.b = 'x'",
		"SELECT * FROM t WHERE a > 1 AND b LIKE 'a%'",
		"SELECT a FROM t ORDER BY 1",
		"SELECT a AS q FROM t ORDER BY q DESC",
		"SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1",
		"SELECT SUM(a) FROM t",
		"SELECT ROUND(AVG(a), 2) FROM t GROUP BY b",
		"SELECT a FROM t WHERE a IN (SELECT x FROM s)",
		"SELECT a FROM t WHERE EXISTS (SELECT 1 FROM s WHERE s.x = t.a)",
		"SELECT a FROM t WHERE a = (SELECT MAX(x) FROM s)",
		"SELECT * FROM t, s WHERE t.a = s.x",
		"SELECT * FROM t JOIN s ON t.a = s.x",
		"SELECT * FROM v",
		"SELECT q.a FROM (SELECT a FROM t) q",
		"SELECT a FROM t UNION SELECT x FROM s",
		"SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t",
		"SELECT seq.NEXTVAL FROM t",
		"SELECT d + 1 FROM t",
		"SELECT d - d FROM t",
		"SELECT a || b FROM t",
		"SELECT COALESCE(a, 0) FROM t",
		"SELECT SUBSTR(b, 1, 2) FROM t",
		"INSERT INTO t VALUES (1, 'x', '2020-01-01')",
		"INSERT INTO t (a, b) VALUES (1, 'x')",
		"INSERT INTO s (x) SELECT a FROM t",
		"UPDATE t SET a = a + 1 WHERE b = 'x'",
		"DELETE FROM t WHERE a = 3",
		"CREATE TABLE fresh (z INT)",
		"CREATE VIEW w AS SELECT b FROM t",
		"CREATE INDEX jx ON s (x)",
		"DROP TABLE s",
		"DROP VIEW v",
		"DROP SEQUENCE seq",
		"DROP INDEX ix",
		"SELECT a FROM t WHERE d = '2020-01-01'",
		"SELECT a FROM t LIMIT 2 OFFSET 1",
	} {
		if err := checkOne(t, cat, sql); err != nil {
			t.Errorf("Check(%q) = %v, want nil", sql, err)
		}
	}
}

func TestCheckRejects(t *testing.T) {
	cat := testCatalog(t)
	for _, tc := range []struct {
		sql  string
		want string
	}{
		{"SELECT nope FROM t", "unknown column"},
		{"SELECT z.a FROM t", "unknown column"},
		{"SELECT a FROM missing", `unknown table or view "missing"`},
		{"SELECT a FROM t, s WHERE a = y AND x = nosuch", "unknown column"},
		{"SELECT t.a, s.a FROM t JOIN s ON t.a = s.x", "unknown column"},
		{"SELECT a FROM t WHERE b > 1", "cannot compare VARCHAR with INTEGER"},
		{"SELECT a FROM t WHERE a + b > 1", "+ on INTEGER and VARCHAR"},
		{"SELECT -b FROM t", "unary minus on VARCHAR"},
		{"SELECT a FROM t WHERE a", "INTEGER where BOOLEAN expected"},
		{"SELECT NOT a FROM t", "INTEGER where BOOLEAN expected"},
		{"SELECT SUM(b) FROM t", "SUM over VARCHAR"},
		{"SELECT AVG(b) FROM t GROUP BY a", "AVG over VARCHAR"},
		{"SELECT a, SUM(SUM(a)) FROM t GROUP BY a", "aggregate SUM outside GROUP BY context"},
		{"SELECT a FROM t WHERE SUM(a) > 1", "aggregate SUM outside GROUP BY context"},
		{"SELECT a FROM t HAVING a > 1", "HAVING without GROUP BY or aggregates"},
		{"SELECT a FROM t ORDER BY 5", "ORDER BY position 5 out of range"},
		{"SELECT a FROM t ORDER BY zz", "unknown column"},
		{"SELECT a FROM t WHERE a IN (SELECT x, y FROM s)", "subquery must return 1 column(s), got 2"},
		{"SELECT a FROM t WHERE a = (SELECT x, y FROM s)", "subquery must return 1 column(s), got 2"},
		{"SELECT a FROM t WHERE b IN (SELECT x FROM s)", "cannot compare VARCHAR with INTEGER"},
		{"SELECT a FROM t UNION SELECT x, y FROM s", "UNION operands have 1 and 2 columns"},
		{"SELECT z.* FROM t", `unknown relation "z" in z.*`},
		{"SELECT NOSUCHFUNC(a) FROM t", "unknown function NOSUCHFUNC"},
		{"SELECT ABS(b) FROM t", "ABS on VARCHAR"},
		{"SELECT MOD(a, b) FROM t", "MOD requires integers"},
		{"SELECT UPPER(a) FROM t", "UPPER on INTEGER"},
		{"SELECT LENGTH(a) FROM t", "LENGTH on INTEGER"},
		{"SELECT SUBSTR(a, 1) FROM t", "SUBSTR requires (string, int[, int])"},
		{"SELECT SUBSTR(b, 1, b) FROM t", "SUBSTR length must be an integer"},
		{"SELECT ROUND(b) FROM t", "ROUND on VARCHAR"},
		{"SELECT ABS(a, a) FROM t", "ABS takes 1 argument(s), got 2"},
		{"SELECT a FROM t WHERE b LIKE 1", "LIKE requires strings"},
		{"SELECT nothere.NEXTVAL FROM t", `unknown sequence "nothere"`},
		{"SELECT CASE a WHEN 'x' THEN 1 END FROM t", "cannot compare INTEGER with VARCHAR"},
		{"SELECT CASE WHEN a THEN 1 END FROM t", "INTEGER where BOOLEAN expected"},
		{"INSERT INTO missing VALUES (1)", `unknown table "missing" in INSERT`},
		{"INSERT INTO t VALUES (1, 'x')", "INSERT expects 3 values, got 2"},
		{"INSERT INTO t (a) VALUES ('x')", "cannot store VARCHAR into INTEGER column"},
		{"INSERT INTO t (nope) VALUES (1)", "unknown column"},
		{"INSERT INTO s SELECT a FROM t", "INSERT expects 2 columns, query returns 1"},
		{"INSERT INTO s (x) SELECT b FROM t", "cannot store VARCHAR into INTEGER column"},
		{"UPDATE missing SET a = 1", `unknown table "missing" in UPDATE`},
		{"UPDATE t SET nope = 1", "unknown column"},
		{"UPDATE t SET a = 'x'", "cannot store VARCHAR into INTEGER column"},
		{"UPDATE t SET a = 1 WHERE b", "VARCHAR where BOOLEAN expected"},
		{"DELETE FROM missing", `unknown table "missing" in DELETE`},
		{"DELETE FROM t WHERE nope = 1", "unknown column"},
		{"CREATE TABLE t (z INT)", `"t" already exists as a table`},
		{"CREATE TABLE v (z INT)", `"v" already exists as a view`},
		{"CREATE SEQUENCE ix", `"ix" already exists as a index`},
		{"CREATE VIEW w AS SELECT nope FROM t", "unknown column"},
		{"CREATE INDEX jx ON missing (x)", `unknown table "missing" in CREATE INDEX`},
		{"CREATE INDEX jx ON t (nope)", "unknown column"},
		{"DROP TABLE missing", `table "missing" does not exist`},
		{"DROP VIEW missing", `view "missing" does not exist`},
		{"DROP SEQUENCE missing", `sequence "missing" does not exist`},
		{"DROP INDEX missing", `index "missing" does not exist`},
	} {
		err := checkOne(t, cat, tc.sql)
		if err == nil {
			t.Errorf("Check(%q) = nil, want error containing %q", tc.sql, tc.want)
			continue
		}
		se, ok := err.(*Error)
		if !ok {
			t.Errorf("Check(%q) returned %T, want *semck.Error", tc.sql, err)
			continue
		}
		if !strings.Contains(se.Msg, tc.want) {
			t.Errorf("Check(%q) = %q, want message containing %q", tc.sql, se.Msg, tc.want)
		}
	}
}

// TestErrorPositions pins the line/column arithmetic: the diagnostic
// must point at the offending token, not the statement start.
func TestErrorPositions(t *testing.T) {
	cat := testCatalog(t)
	sql := "SELECT a,\n       nope\nFROM t"
	err := checkOne(t, cat, sql)
	se, ok := err.(*Error)
	if !ok {
		t.Fatalf("Check = %v (%T), want *semck.Error", err, err)
	}
	if se.Line != 2 || se.Col != 8 {
		t.Errorf("position = line %d col %d, want line 2 col 8", se.Line, se.Col)
	}
	if !strings.Contains(se.Error(), "(line 2, column 8)") {
		t.Errorf("Error() = %q, want position suffix", se.Error())
	}
}

// TestCorrelatedViewAndDepth covers view expansion: bodies resolve
// against the dictionary, diagnostics re-anchor at the referencing
// table ref, and nesting is bounded.
func TestViewExpansion(t *testing.T) {
	cat := storage.NewCatalog()
	if _, err := cat.CreateTable("t", schema.New("t",
		schema.Column{Name: "a", Type: value.TypeInt})); err != nil {
		t.Fatal(err)
	}
	if err := cat.CreateView("good", "SELECT a FROM t"); err != nil {
		t.Fatal(err)
	}
	// A view whose body no longer resolves (its table was never made).
	if err := cat.CreateView("stale", "SELECT zz FROM gone"); err != nil {
		t.Fatal(err)
	}
	c := FromStorage(cat)

	if err := checkOne(t, c, "SELECT a FROM good"); err != nil {
		t.Errorf("good view: %v", err)
	}
	err := checkOne(t, c, "SELECT * FROM stale")
	if err == nil || !strings.Contains(err.Error(), "view stale") {
		t.Errorf("stale view: %v, want 'view stale' diagnostic", err)
	}

	// Self-referential chain: v1 -> v1 cannot be created through the
	// engine, but a dictionary could hold one after manual edits; the
	// checker must refuse rather than recurse forever.
	if err := cat.CreateView("loop", "SELECT * FROM loop"); err != nil {
		t.Fatal(err)
	}
	err = checkOne(t, c, "SELECT * FROM loop")
	if err == nil || !strings.Contains(err.Error(), "nesting exceeds") {
		t.Errorf("loop view: %v, want nesting-depth diagnostic", err)
	}
}

func TestOverlayScript(t *testing.T) {
	cat := testCatalog(t)
	ov := NewOverlay(cat)
	script := []string{
		"CREATE TABLE stage (g INT, item VARCHAR)",
		"CREATE SEQUENCE gid",
		"INSERT INTO stage VALUES (1, 'x')",
		"SELECT gid.NEXTVAL, item FROM stage",
		"DROP TABLE stage",
	}
	for _, sql := range script {
		st, err := parse.Parse(sql)
		if err != nil {
			t.Fatalf("parse %q: %v", sql, err)
		}
		if err := Check(ov, st, sql); err != nil {
			t.Fatalf("Check(%q) = %v, want nil", sql, err)
		}
		ov.Apply(st)
	}
	// After DROP TABLE the overlay must shadow nothing and reject reuse.
	if err := checkOne(t, ov, "SELECT g FROM stage"); err == nil {
		t.Error("dropped overlay table still visible")
	}
	// Tombstones must shadow base objects too.
	st, _ := parse.Parse("DROP TABLE t")
	ov.Apply(st)
	if err := checkOne(t, ov, "SELECT a FROM t"); err == nil {
		t.Error("tombstoned base table still visible")
	}
	if err := checkOne(t, ov, "CREATE TABLE t (a INT)"); err != nil {
		t.Errorf("recreate after tombstone: %v", err)
	}
}
