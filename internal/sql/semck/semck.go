// Package semck implements prepare-time semantic analysis for the SQL
// subset. It mirrors the resolution and typing rules of the executor
// (internal/sql/exec) without reading a single row: name resolution
// against the data dictionary, expression type checking over the value
// type lattice, aggregate-placement and GROUP BY/HAVING validity, and
// arity checks for set operations and INSERT … SELECT.
//
// The contract is one-directional: a statement semck accepts must never
// fail name or type resolution in the executor, while semck may reject
// statements whose runtime failure is data-dependent (a VARCHAR column
// compared with an INTEGER fails here even though an all-NULL column
// would execute). Statically unknown types — computed projections,
// COALESCE over mixed arguments — are TypeNull and never error, so the
// checker stays permissive exactly where the executor is dynamic.
package semck

import (
	"fmt"
	"strings"

	"minerule/internal/sql/lex"
	"minerule/internal/sql/parse"
	"minerule/internal/sql/schema"
	"minerule/internal/sql/storage"
	"minerule/internal/sql/value"
)

// Error is a semantic diagnostic with the statement position it points
// at. Offset is the byte offset in the checked source; Line and Col are
// the 1-based position derived from it.
type Error struct {
	Msg    string
	Offset int
	Line   int
	Col    int
}

func (e *Error) Error() string {
	return fmt.Sprintf("semck: %s (line %d, column %d)", e.Msg, e.Line, e.Col)
}

// Catalog is the slice of the data dictionary the checker consults. It
// is satisfied by FromStorage over the engine's *storage.Catalog and by
// Overlay, which layers uncommitted DDL effects on top for script and
// translator self-checking.
type Catalog interface {
	// TableSchema returns the schema of the named base table.
	TableSchema(name string) (*schema.Schema, bool)
	// ViewText returns the stored SELECT text of the named view.
	ViewText(name string) (string, bool)
	// HasSequence reports whether the named sequence exists.
	HasSequence(name string) bool
	// HasIndex reports whether the named index exists.
	HasIndex(name string) bool
	// TableIndexes returns the names of the indexes owned by the named
	// table; they leave the namespace together with it on DROP TABLE.
	TableIndexes(table string) []string
}

// storCat adapts *storage.Catalog to the Catalog interface.
type storCat struct{ c *storage.Catalog }

func (s storCat) TableSchema(name string) (*schema.Schema, bool) {
	t, ok := s.c.Table(name)
	if !ok {
		return nil, false
	}
	return t.Schema(), true
}

func (s storCat) ViewText(name string) (string, bool) {
	v, ok := s.c.View(name)
	if !ok {
		return "", false
	}
	return v.Text, true
}

func (s storCat) HasSequence(name string) bool {
	_, ok := s.c.Sequence(name)
	return ok
}

func (s storCat) HasIndex(name string) bool { return s.c.HasIndex(name) }

func (s storCat) TableIndexes(table string) []string { return s.c.TableIndexes(table) }

// FromStorage wraps the engine's catalog as a checker dictionary.
func FromStorage(c *storage.Catalog) Catalog { return storCat{c: c} }

// Check validates one parsed statement against the dictionary. src is
// the statement's source text, used to turn node offsets into
// line/column positions; it may be empty for programmatically built
// statements (every diagnostic then points at line 1, column 1). The
// returned error is nil or a *Error.
func Check(cat Catalog, st parse.Statement, src string) error {
	c := &checker{cat: cat, src: src}
	return c.checkStatement(st)
}

// maxViewDepth bounds view-in-view expansion; the executor would chase
// such a chain at plan time, so the checker refuses it first.
const maxViewDepth = 64

// checker carries one Check invocation's state.
type checker struct {
	cat       Catalog
	src       string
	viewDepth int
}

func (c *checker) errf(off int, format string, args ...any) *Error {
	line, col := lex.Position(c.src, off)
	return &Error{Msg: fmt.Sprintf(format, args...), Offset: off, Line: line, Col: col}
}

// schemaErr rewraps a schema.Resolve failure ("schema: unknown column"
// or "schema: ambiguous column reference") as a positioned diagnostic.
func (c *checker) schemaErr(off int, err error) *Error {
	return c.errf(off, "%s", strings.TrimPrefix(err.Error(), "schema: "))
}

// nameKind reports what kind of dictionary object holds the name, in
// the same probe order the storage catalog uses for its shared
// namespace.
func nameKind(cat Catalog, name string) (string, bool) {
	if _, ok := cat.TableSchema(name); ok {
		return "table", true
	}
	if _, ok := cat.ViewText(name); ok {
		return "view", true
	}
	if cat.HasSequence(name) {
		return "sequence", true
	}
	if cat.HasIndex(name) {
		return "index", true
	}
	return "", false
}

func (c *checker) checkStatement(st parse.Statement) error {
	switch x := st.(type) {
	case *parse.Select:
		_, err := c.checkSelect(x, nil)
		return err

	case *parse.Explain:
		_, err := c.checkSelect(x.Query, nil)
		return err

	case *parse.CreateTable:
		if kind, ok := nameKind(c.cat, x.Name); ok {
			return c.errf(x.Pos, "%q already exists as a %s", x.Name, kind)
		}
		return nil

	case *parse.DropTable:
		if _, ok := c.cat.TableSchema(x.Name); !ok {
			return c.errf(x.Pos, "table %q does not exist", x.Name)
		}
		return nil

	case *parse.CreateView:
		if kind, ok := nameKind(c.cat, x.Name); ok {
			return c.errf(x.Pos, "%q already exists as a %s", x.Name, kind)
		}
		// The body is part of this statement's source, so its
		// diagnostics carry their own positions.
		_, err := c.checkSelect(x.Query, nil)
		return err

	case *parse.DropView:
		if _, ok := c.cat.ViewText(x.Name); !ok {
			return c.errf(x.Pos, "view %q does not exist", x.Name)
		}
		return nil

	case *parse.CreateSequence:
		if kind, ok := nameKind(c.cat, x.Name); ok {
			return c.errf(x.Pos, "%q already exists as a %s", x.Name, kind)
		}
		return nil

	case *parse.DropSequence:
		if !c.cat.HasSequence(x.Name) {
			return c.errf(x.Pos, "sequence %q does not exist", x.Name)
		}
		return nil

	case *parse.CreateIndex:
		if kind, ok := nameKind(c.cat, x.Name); ok {
			return c.errf(x.Pos, "%q already exists as a %s", x.Name, kind)
		}
		ts, ok := c.cat.TableSchema(x.Table)
		if !ok {
			return c.errf(x.Pos, "unknown table %q in CREATE INDEX", x.Table)
		}
		if _, err := ts.Resolve("", x.Column); err != nil {
			return c.schemaErr(x.Pos, err)
		}
		return nil

	case *parse.DropIndex:
		if !c.cat.HasIndex(x.Name) {
			return c.errf(x.Pos, "index %q does not exist", x.Name)
		}
		return nil

	case *parse.Begin, *parse.Commit, *parse.Rollback:
		// Transaction control touches no names; the engine's session
		// layer validates state (e.g. COMMIT outside a transaction).
		return nil

	case *parse.Insert:
		return c.checkInsert(x)

	case *parse.Delete:
		ts, ok := c.cat.TableSchema(x.Table)
		if !ok {
			return c.errf(x.Pos, "unknown table %q in DELETE", x.Table)
		}
		if x.Where != nil {
			sc := &scope{s: ts}
			t, err := c.typeOf(sc, x.Where, false)
			if err != nil {
				return err
			}
			if e := c.wantBool(x.Where, t); e != nil {
				return e
			}
		}
		return nil

	case *parse.Update:
		return c.checkUpdate(x)
	}
	off := 0
	if p, ok := st.(parse.Positioned); ok {
		off = p.SrcPos()
	}
	return c.errf(off, "unsupported statement %T", st)
}

func (c *checker) checkInsert(x *parse.Insert) error {
	ts, ok := c.cat.TableSchema(x.Table)
	if !ok {
		return c.errf(x.Pos, "unknown table %q in INSERT", x.Table)
	}
	var target []schema.Column
	if len(x.Columns) > 0 {
		target = make([]schema.Column, len(x.Columns))
		for i, col := range x.Columns {
			idx, err := ts.Resolve("", col)
			if err != nil {
				return c.schemaErr(x.Pos, err)
			}
			target[i] = ts.Col(idx)
		}
	} else {
		target = make([]schema.Column, ts.Len())
		for i := range target {
			target[i] = ts.Col(i)
		}
	}

	if x.Query != nil {
		qs, err := c.checkSelect(x.Query, nil)
		if err != nil {
			return err
		}
		if qs.Len() != len(target) {
			return c.errf(x.Query.Pos, "INSERT expects %d columns, query returns %d", len(target), qs.Len())
		}
		for i := 0; i < qs.Len(); i++ {
			if !storable(qs.Col(i).Type, target[i].Type) {
				return c.errf(x.Query.Pos, "INSERT into %s.%s: cannot store %s into %s column",
					x.Table, target[i].Name, qs.Col(i).Type, target[i].Type)
			}
		}
		return nil
	}

	// VALUES rows evaluate against an empty schema; the executor coerces
	// every value to the target column, so a known-type mismatch is a
	// guaranteed runtime failure.
	sc := &scope{s: schema.New("")}
	for _, row := range x.Rows {
		if len(row) != len(target) {
			return c.errf(x.Pos, "INSERT expects %d values, got %d", len(target), len(row))
		}
		for i, e := range row {
			t, err := c.typeOf(sc, e, false)
			if err != nil {
				return err
			}
			if !storable(t, target[i].Type) {
				return c.errf(parse.ExprOffset(e), "INSERT into %s.%s: cannot store %s into %s column",
					x.Table, target[i].Name, t, target[i].Type)
			}
		}
	}
	return nil
}

func (c *checker) checkUpdate(x *parse.Update) error {
	ts, ok := c.cat.TableSchema(x.Table)
	if !ok {
		return c.errf(x.Pos, "unknown table %q in UPDATE", x.Table)
	}
	sc := &scope{s: ts}
	for _, a := range x.Set {
		idx, err := ts.Resolve("", a.Column)
		if err != nil {
			return c.schemaErr(a.Pos, err)
		}
		t, terr := c.typeOf(sc, a.Value, false)
		if terr != nil {
			return terr
		}
		if !storable(t, ts.Col(idx).Type) {
			return c.errf(parse.ExprOffset(a.Value), "UPDATE %s.%s: cannot store %s into %s column",
				x.Table, ts.Col(idx).Name, t, ts.Col(idx).Type)
		}
	}
	if x.Where != nil {
		t, err := c.typeOf(sc, x.Where, false)
		if err != nil {
			return err
		}
		if e := c.wantBool(x.Where, t); e != nil {
			return e
		}
	}
	return nil
}

// storable mirrors the executor's coerceForColumn matrix: NULL stores
// anywhere, exact matches store, int↔float and string→date coerce, and
// everything else is rejected. A TypeNull source is statically unknown
// and passes; a TypeNull column type (never produced by CREATE TABLE)
// accepts anything.
func storable(v, col value.Type) bool {
	if v == value.TypeNull || col == value.TypeNull || v == col {
		return true
	}
	switch {
	case col == value.TypeFloat && v == value.TypeInt,
		col == value.TypeInt && v == value.TypeFloat,
		col == value.TypeDate && v == value.TypeString:
		return true
	}
	return false
}
