// Package schema describes relations: column definitions, table schemas
// and name resolution. The catalog (the engine's data dictionary, paper
// Figure 3's "Data Dictionary") lives in package storage, which binds
// schemas to data.
package schema

import (
	"fmt"
	"strings"

	"minerule/internal/sql/value"
)

// Column is a named, typed attribute of a relation.
type Column struct {
	Name string
	Type value.Type
}

// Schema is an ordered list of columns, optionally qualified with the
// relation name (alias) they came from so that "t.a" resolves.
type Schema struct {
	cols []Column
	// quals[i] is the relation qualifier of cols[i] ("" when none).
	quals []string
}

// New builds a schema from columns, all qualified with qual (may be "").
func New(qual string, cols ...Column) *Schema {
	s := &Schema{cols: append([]Column(nil), cols...)}
	s.quals = make([]string, len(s.cols))
	for i := range s.quals {
		s.quals[i] = strings.ToLower(qual)
	}
	return s
}

// Len returns the number of columns.
func (s *Schema) Len() int { return len(s.cols) }

// Col returns the i-th column.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// Qual returns the i-th column's relation qualifier (lower-cased).
func (s *Schema) Qual(i int) string { return s.quals[i] }

// Columns returns a copy of the column list.
func (s *Schema) Columns() []Column { return append([]Column(nil), s.cols...) }

// WithQualifier returns a copy of the schema with every column
// re-qualified as qual (used when a table gets an alias in FROM).
func (s *Schema) WithQualifier(qual string) *Schema {
	n := &Schema{cols: append([]Column(nil), s.cols...), quals: make([]string, len(s.cols))}
	q := strings.ToLower(qual)
	for i := range n.quals {
		n.quals[i] = q
	}
	return n
}

// Append returns a new schema that is the concatenation s ++ o
// (used for join outputs; qualifiers are preserved).
func (s *Schema) Append(o *Schema) *Schema {
	n := &Schema{
		cols:  append(append([]Column(nil), s.cols...), o.cols...),
		quals: append(append([]string(nil), s.quals...), o.quals...),
	}
	return n
}

// AddColumn returns a new schema with one more column appended.
func (s *Schema) AddColumn(qual string, c Column) *Schema {
	n := &Schema{
		cols:  append(append([]Column(nil), s.cols...), c),
		quals: append(append([]string(nil), s.quals...), strings.ToLower(qual)),
	}
	return n
}

// Resolve finds the column referenced by (qual, name); qual may be empty
// for an unqualified reference. It returns the ordinal, or an error when
// the reference is unknown or ambiguous. Matching is case-insensitive,
// following SQL identifier rules.
func (s *Schema) Resolve(qual, name string) (int, error) {
	q := strings.ToLower(qual)
	n := strings.ToLower(name)
	found := -1
	for i, c := range s.cols {
		if strings.ToLower(c.Name) != n {
			continue
		}
		if q != "" && s.quals[i] != q {
			continue
		}
		if found >= 0 {
			return 0, fmt.Errorf("schema: ambiguous column reference %q", ref(qual, name))
		}
		found = i
	}
	if found < 0 {
		return 0, fmt.Errorf("schema: unknown column %q", ref(qual, name))
	}
	return found, nil
}

// Has reports whether (qual, name) resolves to exactly one column.
func (s *Schema) Has(qual, name string) bool {
	_, err := s.Resolve(qual, name)
	return err == nil
}

func ref(qual, name string) string {
	if qual == "" {
		return name
	}
	return qual + "." + name
}

// String renders the schema as "(a INTEGER, b VARCHAR)" for diagnostics.
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, c := range s.cols {
		if i > 0 {
			b.WriteString(", ")
		}
		if s.quals[i] != "" {
			b.WriteString(s.quals[i])
			b.WriteByte('.')
		}
		b.WriteString(c.Name)
		b.WriteByte(' ')
		b.WriteString(c.Type.String())
	}
	b.WriteByte(')')
	return b.String()
}

// Row is a tuple positionally matching a Schema.
type Row []value.Value

// Clone returns a copy of the row.
func (r Row) Clone() Row { return append(Row(nil), r...) }

// Key returns a composite map key for the row (see value.Value.Key).
// Every component is length-framed so adjacent values cannot collide.
func (r Row) Key() string {
	return string(r.AppendKey(make([]byte, 0, 16*len(r))))
}

// AppendKey appends the row's composite key to dst and returns the
// extended slice — the buffer-reusing form behind every hash join,
// DISTINCT, GROUP BY and set operation, so no key strings are rebuilt
// per row on those paths.
func (r Row) AppendKey(dst []byte) []byte {
	for _, v := range r {
		dst = AppendValueKey(dst, v)
	}
	return dst
}

// AppendValueKey appends one length-framed component of a composite row
// key (the framing Row.AppendKey uses): a fixed-width little-endian
// length header followed by the value's key bytes. Executor code that
// keys on a column subset builds its keys with this to stay consistent
// with whole-row keys.
func AppendValueKey(dst []byte, v value.Value) []byte {
	mark := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	dst = v.AppendKey(dst)
	n := len(dst) - mark - 4
	dst[mark] = byte(n)
	dst[mark+1] = byte(n >> 8)
	dst[mark+2] = byte(n >> 16)
	dst[mark+3] = byte(n >> 24)
	return dst
}

// Project returns the sub-row at the given ordinals.
func (r Row) Project(idx []int) Row {
	out := make(Row, len(idx))
	for i, j := range idx {
		out[i] = r[j]
	}
	return out
}
