package schema

import (
	"testing"
	"testing/quick"

	"minerule/internal/sql/value"
)

func twoCol() *Schema {
	return New("t",
		Column{Name: "a", Type: value.TypeInt},
		Column{Name: "b", Type: value.TypeString})
}

func TestResolve(t *testing.T) {
	s := twoCol()
	for _, ref := range []struct {
		qual, name string
		want       int
	}{
		{"", "a", 0}, {"", "B", 1}, {"t", "a", 0}, {"T", "b", 1},
	} {
		got, err := s.Resolve(ref.qual, ref.name)
		if err != nil || got != ref.want {
			t.Errorf("Resolve(%q, %q) = %d, %v", ref.qual, ref.name, got, err)
		}
	}
	if _, err := s.Resolve("", "c"); err == nil {
		t.Error("unknown column resolved")
	}
	if _, err := s.Resolve("u", "a"); err == nil {
		t.Error("wrong qualifier resolved")
	}
}

func TestAmbiguity(t *testing.T) {
	j := twoCol().Append(New("u", Column{Name: "a", Type: value.TypeInt}))
	if _, err := j.Resolve("", "a"); err == nil {
		t.Error("ambiguous reference resolved")
	}
	if i, err := j.Resolve("u", "a"); err != nil || i != 2 {
		t.Errorf("u.a = %d, %v", i, err)
	}
	if i, err := j.Resolve("t", "a"); err != nil || i != 0 {
		t.Errorf("t.a = %d, %v", i, err)
	}
	if !j.Has("u", "a") || j.Has("", "a") {
		t.Error("Has disagrees with Resolve")
	}
}

func TestWithQualifierAndAppend(t *testing.T) {
	s := twoCol().WithQualifier("x")
	if _, err := s.Resolve("t", "a"); err == nil {
		t.Error("old qualifier survived")
	}
	if i, err := s.Resolve("x", "a"); err != nil || i != 0 {
		t.Errorf("x.a = %d, %v", i, err)
	}
	// WithQualifier must not mutate the receiver.
	orig := twoCol()
	_ = orig.WithQualifier("y")
	if _, err := orig.Resolve("t", "a"); err != nil {
		t.Error("WithQualifier mutated receiver")
	}
	// Append concatenates and preserves both sides.
	j := orig.Append(New("u", Column{Name: "c", Type: value.TypeDate}))
	if j.Len() != 3 {
		t.Fatalf("len = %d", j.Len())
	}
	if j.Col(2).Name != "c" || j.Qual(2) != "u" {
		t.Errorf("col 2 = %v %q", j.Col(2), j.Qual(2))
	}
}

func TestAddColumn(t *testing.T) {
	s := twoCol().AddColumn("t", Column{Name: "c", Type: value.TypeFloat})
	if s.Len() != 3 || s.Col(2).Name != "c" {
		t.Fatalf("AddColumn result %s", s)
	}
}

func TestSchemaString(t *testing.T) {
	got := twoCol().String()
	want := "(t.a INTEGER, t.b VARCHAR)"
	if got != want {
		t.Errorf("String = %s, want %s", got, want)
	}
}

func TestRowKeyInjectiveOnLengths(t *testing.T) {
	// Composite keys must not collide across different splits of the
	// same concatenated content: ("ab","c") vs ("a","bc").
	r1 := Row{value.NewString("ab"), value.NewString("c")}
	r2 := Row{value.NewString("a"), value.NewString("bc")}
	if r1.Key() == r2.Key() {
		t.Error("row keys collide across splits")
	}
	// And equal rows collide.
	r3 := Row{value.NewString("ab"), value.NewString("c")}
	if r1.Key() != r3.Key() {
		t.Error("equal rows have different keys")
	}
}

func TestRowKeyProperty(t *testing.T) {
	f := func(a, b int64, s string) bool {
		r1 := Row{value.NewInt(a), value.NewString(s)}
		r2 := Row{value.NewInt(b), value.NewString(s)}
		same := r1.Key() == r2.Key()
		return same == (a == b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRowCloneAndProject(t *testing.T) {
	r := Row{value.NewInt(1), value.NewInt(2), value.NewInt(3)}
	c := r.Clone()
	c[0] = value.NewInt(9)
	if r[0].Int() != 1 {
		t.Error("Clone aliases the original")
	}
	p := r.Project([]int{2, 0})
	if len(p) != 2 || p[0].Int() != 3 || p[1].Int() != 1 {
		t.Errorf("Project = %v", p)
	}
}
