package schema

import (
	"encoding/binary"
	"fmt"

	"minerule/internal/sql/value"
)

// Row binary codec for the durable storage layer: a row encodes as a
// uvarint arity followed by each value's binary form (value.AppendBinary).
// Both WAL insert records and heap-file cells use this encoding, so a
// row written by either path decodes with the same function.

// AppendBinary appends the row's binary encoding to dst and returns the
// extended slice.
func (r Row) AppendBinary(dst []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r)))
	for _, v := range r {
		dst = v.AppendBinary(dst)
	}
	return dst
}

// DecodeRowBinary decodes one row from the front of b, returning the
// row and the remaining bytes. It fails on truncated or corrupt input.
func DecodeRowBinary(b []byte) (Row, []byte, error) {
	arity, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, nil, fmt.Errorf("schema: decode row: bad arity")
	}
	if arity > uint64(len(b)) { // each value needs at least one tag byte
		return nil, nil, fmt.Errorf("schema: decode row: arity %d exceeds input", arity)
	}
	rest := b[n:]
	row := make(Row, arity)
	for i := range row {
		var v value.Value
		var err error
		v, rest, err = value.DecodeBinary(rest)
		if err != nil {
			return nil, nil, fmt.Errorf("schema: decode row col %d: %w", i, err)
		}
		row[i] = v
	}
	return row, rest, nil
}
