package storage

import "minerule/internal/sql/schema"

// Journal receives every catalog and table mutation before it is applied
// in memory — the write-ahead discipline of the durable storage
// subsystem. The engine's durable store implements it by appending WAL
// records; an in-memory database has no journal and pays nothing.
//
// A Journal call that returns an error vetoes the mutation: the caller
// returns the error without touching in-memory state, so memory never
// runs ahead of the log. Replay runs with the journal detached, which is
// what makes recovery apply records exactly once.
type Journal interface {
	CreateTable(name string, s *schema.Schema) error
	DropTable(name string) error
	CreateView(name, text string) error
	DropView(name string) error
	CreateSequence(name string) error
	DropSequence(name string) error
	CreateIndex(name, table string, col int) error
	DropIndex(name string) error

	// Insert logs a batch append to a table. The journal must not retain
	// rows after returning.
	Insert(table string, rows []schema.Row) error
	// Truncate logs removal of all rows of a table.
	Truncate(table string) error
	// Replace logs an atomic truncate-plus-insert — one record, so a
	// crash can never observe the truncated-but-not-yet-refilled state
	// UPDATE and DELETE rewrites would otherwise expose.
	Replace(table string, rows []schema.Row) error
	// SequenceBump logs a new sequence ceiling: after recovery the
	// sequence resumes at next, skipping any unlogged values (the classic
	// sequence-cache gap trade).
	SequenceBump(name string, next int64) error
}

// SetJournal attaches (or, with nil, detaches) the journal, propagating
// it to every existing table and sequence. The durable store calls it
// once after recovery replay, so replayed records mutate memory without
// being re-logged.
func (c *Catalog) SetJournal(jn Journal) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.jn = jn
	for _, t := range c.tabs {
		t.setJournal(jn)
	}
	for _, s := range c.seqs {
		s.setJournal(jn)
	}
}

func (t *Table) setJournal(jn Journal) {
	t.mu.Lock()
	t.jn = jn
	t.mu.Unlock()
}

func (s *Sequence) setJournal(jn Journal) {
	s.mu.Lock()
	s.jn = jn
	// Force the next NextVal to log a fresh ceiling.
	s.logged = s.next
	s.mu.Unlock()
}
