package storage

import (
	"sort"
	"sync/atomic"

	"minerule/internal/sql/schema"
)

// This file is the storage half of the engine's multi-version
// concurrency control: tables keep enough row history for readers to see
// a consistent snapshot while writers commit, and the catalog keeps
// enough name-map history for those readers to resolve names as of their
// snapshot even while DDL executes.
//
// The versioning currency is the commit stamp, a monotone uint64 drawn
// from the catalog's StampClock. On a durable database the clock is kept
// at or above the WAL's last LSN (commits allocate with Next(lsn)), so a
// stamp names a log position; an in-memory database allocates from the
// same clock as a plain logical counter — the interface is identical.
//
// Visibility protocol: a publisher (the txn layer's commit, or a DDL
// statement) allocates its stamp and applies every effect while holding
// the catalog's publish lock, and only then advances the clock's visible
// watermark. Readers take their snapshot stamp from the watermark, so
// any stamp a reader can hold is fully published — no reader ever
// observes half a commit.
//
// Rows are versioned in two dimensions:
//
//   - bounds: within one append-only row array ("generation"), each
//     committed batch pushes a (stamp, length) boundary. A reader at
//     stamp S sees the prefix of the largest boundary at or below S.
//   - generations: UPDATE/DELETE replace the whole array. The superseded
//     generation (rows, its boundaries, and its index objects) is kept on
//     a history list until no registered snapshot can still need it.
//
// History retention is bounded by the low-water mark — the minimum stamp
// any registered snapshot holds — which publishers pass to prune.
// The legacy direct-mutation API (Insert/InsertAll/Truncate/Replace on a
// bare Table) publishes immediately and retains no history; it serves
// recovery replay, persistence loads, and tests, which run without
// concurrent snapshot readers.

// StampClock issues commit stamps and tracks the published watermark.
// All methods are safe for concurrent use.
type StampClock struct {
	alloc   atomic.Uint64 // last stamp allocated to a publisher
	visible atomic.Uint64 // highest stamp whose publication completed
}

// Next allocates the next commit stamp: one past the last allocation,
// raised to floor when that is higher. Durable commits pass their WAL
// LSN as floor, which is what keeps stamps aligned with log positions;
// everything else passes zero.
func (c *StampClock) Next(floor uint64) uint64 {
	for {
		cur := c.alloc.Load()
		s := cur + 1
		if floor > s {
			s = floor
		}
		if c.alloc.CompareAndSwap(cur, s) {
			return s
		}
	}
}

// Visible returns the snapshot watermark: every stamp at or below it is
// fully published, so a reader may adopt it as a consistent snapshot.
func (c *StampClock) Visible() uint64 { return c.visible.Load() }

// SetVisible raises the watermark to s (never lowers it). Publishers
// call it after their last effect is applied.
func (c *StampClock) SetVisible(s uint64) {
	for {
		cur := c.visible.Load()
		if s <= cur || c.visible.CompareAndSwap(cur, s) {
			return
		}
	}
}

// Advance raises both the allocator and the watermark to at least s.
// The durable store calls it once after recovery with the last replayed
// LSN, so post-recovery stamps continue above every logged position.
func (c *StampClock) Advance(s uint64) {
	for {
		cur := c.alloc.Load()
		if s <= cur || c.alloc.CompareAndSwap(cur, s) {
			break
		}
	}
	c.SetVisible(s)
}

// rowBound is one visibility boundary inside a row generation: readers
// at or past stamp see the first n rows of the generation's array.
type rowBound struct {
	stamp uint64
	n     int
}

// oldGen is a superseded row generation, retained until the low-water
// mark passes endStamp. Its indexes are the Index objects that covered
// it while live, so snapshot readers keep their point lookups.
type oldGen struct {
	rows     []schema.Row
	bounds   []rowBound
	indexes  []*Index
	endStamp uint64 // stamp of the generation that replaced this one
}

// visibleLen returns the row count visible at stamp within one
// generation: the largest boundary at or below stamp, or zero when the
// generation has no boundary that old (the rows did not exist yet).
func visibleLen(bounds []rowBound, stamp uint64) int {
	i := sort.Search(len(bounds), func(i int) bool { return bounds[i].stamp > stamp })
	if i == 0 {
		return 0
	}
	return bounds[i-1].n
}

// genAtLocked resolves the generation visible at stamp. Caller holds
// t.mu (read or write).
func (t *Table) genAtLocked(stamp uint64) (rows []schema.Row, bounds []rowBound, indexes []*Index) {
	for i := range t.hist {
		if t.hist[i].endStamp > stamp {
			g := &t.hist[i]
			return g.rows, g.bounds, g.indexes
		}
	}
	return t.rows, t.bounds, t.indexes
}

// RowsAt returns the rows visible at the given snapshot stamp. The
// slice must be treated as read-only; it aliases an immutable prefix
// (appends never move committed elements, replaced generations are
// never mutated).
func (t *Table) RowsAt(stamp uint64) []schema.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rows, bounds, _ := t.genAtLocked(stamp)
	n := visibleLen(bounds, stamp)
	return rows[:n:n]
}

// LenAt returns the row count visible at the given snapshot stamp.
func (t *Table) LenAt(stamp uint64) int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, bounds, _ := t.genAtLocked(stamp)
	return visibleLen(bounds, stamp)
}

// IndexOnAt returns an index covering the column ordinal in the
// generation visible at stamp, if any. The returned index may only be
// consulted through LookupAt with the same stamp.
func (t *Table) IndexOnAt(col int, stamp uint64) *Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	_, _, indexes := t.genAtLocked(stamp)
	for _, ix := range indexes {
		if ix.col == col {
			return ix
		}
	}
	return nil
}

// LookupAt is Lookup restricted to the rows visible at stamp: positions
// past the snapshot's visibility boundary are filtered out. ix must
// come from IndexOnAt at the same stamp.
func (t *Table) LookupAt(ix *Index, key string, stamp uint64) []schema.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	rows, bounds, _ := t.genAtLocked(stamp)
	n := visibleLen(bounds, stamp)
	bucket := ix.m[key]
	if bucket == nil {
		return nil
	}
	positions := *bucket
	// Positions are appended in row order, so the visible prefix of the
	// bucket is itself a prefix.
	cut := sort.SearchInts(positions, n)
	if cut == 0 {
		return nil
	}
	out := make([]schema.Row, cut)
	for i, p := range positions[:cut] {
		out[i] = rows[p]
	}
	return out
}

// PublishAppend makes a committed batch visible at stamp: the rows are
// appended to the current generation with a new visibility boundary.
// The caller (the txn layer) has already journaled the batch and holds
// the catalog's publish lock; lwm prunes history no snapshot needs.
func (t *Table) PublishAppend(stamp uint64, rs []schema.Row, lwm uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, r := range rs {
		for _, ix := range t.indexes {
			ix.add(r, len(t.rows)+i)
		}
	}
	t.rows = append(t.rows, rs...)
	t.bounds = append(t.bounds, rowBound{stamp: stamp, n: len(t.rows)})
	t.pruneLocked(lwm)
}

// PublishReplace makes a committed whole-table rewrite visible at
// stamp: the current generation moves to the history list (still
// readable by older snapshots) and rs becomes the new generation with
// freshly built index objects. Same contract as PublishAppend.
func (t *Table) PublishReplace(stamp uint64, rs []schema.Row, lwm uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.hist = append(t.hist, oldGen{rows: t.rows, bounds: t.bounds, indexes: t.indexes, endStamp: stamp})
	t.rows = rs
	t.bounds = []rowBound{{stamp: stamp, n: len(rs)}}
	fresh := make([]*Index, len(t.indexes))
	for i, old := range t.indexes {
		ix := &Index{name: old.name, col: old.col, m: make(map[string]*[]int)}
		for pos, row := range rs {
			ix.add(row, pos)
		}
		fresh[i] = ix
	}
	t.indexes = fresh
	t.pruneLocked(lwm)
}

// pruneLocked drops history no snapshot at or past lwm can reach:
// generations whose successor is itself at or below lwm, and visibility
// boundaries shadowed by a newer boundary at or below lwm. Caller holds
// t.mu.
func (t *Table) pruneLocked(lwm uint64) {
	drop := 0
	for drop < len(t.hist) && t.hist[drop].endStamp <= lwm {
		drop++
	}
	if drop > 0 {
		t.hist = append(t.hist[:0], t.hist[drop:]...)
	}
	for i := range t.hist {
		t.hist[i].bounds = pruneBounds(t.hist[i].bounds, lwm)
	}
	t.bounds = pruneBounds(t.bounds, lwm)
}

func pruneBounds(bounds []rowBound, lwm uint64) []rowBound {
	drop := 0
	for drop+1 < len(bounds) && bounds[drop+1].stamp <= lwm {
		drop++
	}
	if drop == 0 {
		return bounds
	}
	return append(bounds[:0], bounds[drop:]...)
}

// stampLocked allocates a commit stamp for a legacy direct mutation.
// Caller holds t.mu. Detached tables (NewTable, never registered in a
// catalog) lazily grow a private clock.
func (t *Table) stampLocked() uint64 {
	if t.clock == nil {
		t.clock = &StampClock{}
	}
	return t.clock.Next(0)
}

// publishLegacyLocked finishes a legacy direct mutation: the whole
// current state becomes visible at stamp and all history is discarded —
// the legacy API serves recovery replay, persistence loads, and tests,
// which have no concurrent snapshot readers. Caller holds t.mu.
func (t *Table) publishLegacyLocked(stamp uint64) {
	t.hist = nil
	t.bounds = append(t.bounds[:0], rowBound{stamp: stamp, n: len(t.rows)})
	t.clock.SetVisible(stamp)
}

// ---------------------------------------------------------------------------
// Catalog name-map history

// catPast is one superseded catalog state: the name maps as they were
// until stamp, retained so snapshot readers older than stamp resolve
// names against the dictionary they began under.
type catPast struct {
	stamp uint64 // the DDL stamp at which this state stopped being current
	ver   uint64 // catalog version of this state (cache keys)
	tabs  map[string]*Table
	vws   map[string]*View
	seqs  map[string]*Sequence
	idxs  map[string]string
}

// Stamps exposes the catalog's commit-stamp clock.
func (c *Catalog) Stamps() *StampClock { return &c.stamps }

// LockPublish acquires the catalog-wide publish lock. Every publisher —
// a committing transaction, a DDL statement, a checkpoint needing a
// still image — holds it across stamp allocation, effect application,
// and the watermark advance, which is what makes snapshots consistent.
// Lock order: LockPublish precedes Catalog.mu precedes Table.mu.
func (c *Catalog) LockPublish() { c.pubMu.Lock() }

// UnlockPublish releases the publish lock.
func (c *Catalog) UnlockPublish() { c.pubMu.Unlock() }

// EnableHistory turns on name-map versioning: from now on every DDL
// preserves the prior maps for snapshot readers. The transaction
// manager enables it once at attach; recovery replay (which runs with
// no readers) stays free of per-DDL map copies.
func (c *Catalog) EnableHistory() {
	c.mu.Lock()
	c.history = true
	c.mu.Unlock()
}

// PruneHistory drops catalog states no snapshot at or past lwm can
// reach. The transaction manager calls it as snapshots retire.
func (c *Catalog) PruneHistory(lwm uint64) {
	c.mu.Lock()
	drop := 0
	for drop < len(c.past) && c.past[drop].stamp <= lwm {
		drop++
	}
	if drop > 0 {
		c.past = append(c.past[:0], c.past[drop:]...)
	}
	c.mu.Unlock()
}

// ddlStampLocked allocates the stamp for one DDL mutation and, with
// history on, preserves the current name maps for older snapshots. It
// must run after the journal accepted the mutation and before any map
// is touched. Caller holds pubMu and c.mu; the caller advances the
// watermark with SetVisible(stamp) after its mutation is applied.
func (c *Catalog) ddlStampLocked() uint64 {
	stamp := c.stamps.Next(0)
	if c.history {
		p := catPast{
			stamp: stamp,
			ver:   c.version.Load(),
			tabs:  make(map[string]*Table, len(c.tabs)),
			vws:   make(map[string]*View, len(c.vws)),
			seqs:  make(map[string]*Sequence, len(c.seqs)),
			idxs:  make(map[string]string, len(c.idxs)),
		}
		for k, v := range c.tabs {
			p.tabs[k] = v
		}
		for k, v := range c.vws {
			p.vws[k] = v
		}
		for k, v := range c.seqs {
			p.seqs[k] = v
		}
		for k, v := range c.idxs {
			p.idxs[k] = v
		}
		c.past = append(c.past, p)
	}
	return stamp
}

// pastIdxLocked returns the index of the catalog state visible at
// stamp, or -1 for the live maps. Caller holds c.mu.
func (c *Catalog) pastIdxLocked(stamp uint64) int {
	if len(c.past) == 0 || stamp >= c.past[len(c.past)-1].stamp {
		return -1
	}
	// The first preserved state whose end stamp is past the snapshot is
	// the state the snapshot ran under.
	return sort.Search(len(c.past), func(i int) bool { return c.past[i].stamp > stamp })
}

// TableAt resolves a table name as of the given snapshot stamp.
func (c *Catalog) TableAt(name string, stamp uint64) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if i := c.pastIdxLocked(stamp); i >= 0 {
		t, ok := c.past[i].tabs[key(name)]
		return t, ok
	}
	t, ok := c.tabs[key(name)]
	return t, ok
}

// ViewAt resolves a view name as of the given snapshot stamp.
func (c *Catalog) ViewAt(name string, stamp uint64) (*View, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if i := c.pastIdxLocked(stamp); i >= 0 {
		v, ok := c.past[i].vws[key(name)]
		return v, ok
	}
	v, ok := c.vws[key(name)]
	return v, ok
}

// SequenceAt resolves a sequence name as of the given snapshot stamp.
func (c *Catalog) SequenceAt(name string, stamp uint64) (*Sequence, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if i := c.pastIdxLocked(stamp); i >= 0 {
		s, ok := c.past[i].seqs[key(name)]
		return s, ok
	}
	s, ok := c.seqs[key(name)]
	return s, ok
}

// HasIndexAt reports whether the named index existed at the stamp.
func (c *Catalog) HasIndexAt(name string, stamp uint64) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if i := c.pastIdxLocked(stamp); i >= 0 {
		_, ok := c.past[i].idxs[key(name)]
		return ok
	}
	_, ok := c.idxs[key(name)]
	return ok
}

// TableIndexesAt returns the sorted index names owned by the table as
// of the stamp.
func (c *Catalog) TableIndexesAt(table string, stamp uint64) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	idxs := c.idxs
	if i := c.pastIdxLocked(stamp); i >= 0 {
		idxs = c.past[i].idxs
	}
	tk := key(table)
	var out []string
	for ix, owner := range idxs {
		if owner == tk {
			out = append(out, ix)
		}
	}
	sort.Strings(out)
	return out
}

// VersionAt returns the catalog's DDL version as of the stamp — the key
// snapshot-scoped plan and statement caches validate against, so a
// prepared program checked under a snapshot never revalidates against
// dictionary states the snapshot cannot see.
func (c *Catalog) VersionAt(stamp uint64) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if i := c.pastIdxLocked(stamp); i >= 0 {
		return c.past[i].ver
	}
	return c.version.Load()
}
