package storage

import (
	"fmt"
	"strings"

	"minerule/internal/sql/schema"
)

// Index is a single-column hash index over a table: equality lookups in
// O(1) instead of a scan. Maintained under the owning table's lock on
// every mutation; NULLs are not indexed (SQL equality never matches
// them).
//
// Buckets are held by pointer so that appending a position to an
// existing bucket needs only an allocation-free map lookup — a key
// string is materialized only when a value is seen for the first time.
// The scratch buffer is reused across add calls; it is safe because all
// mutation happens under the owning table's write lock.
type Index struct {
	name    string
	col     int
	m       map[string]*[]int // value key → row positions
	scratch []byte
}

// Name returns the index's catalog name.
func (ix *Index) Name() string { return ix.name }

// Column returns the indexed column ordinal.
func (ix *Index) Column() int { return ix.col }

// CreateIndex builds a hash index over column col of the table,
// covering existing rows.
func (t *Table) CreateIndex(name string, col int) (*Index, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if col < 0 || col >= t.schema.Len() {
		return nil, fmt.Errorf("storage: index column %d out of range", col)
	}
	for _, ix := range t.indexes {
		if strings.EqualFold(ix.name, name) {
			return nil, fmt.Errorf("storage: index %q already exists on %s", name, t.name)
		}
	}
	ix := &Index{name: name, col: col, m: make(map[string]*[]int)}
	for pos, row := range t.rows {
		ix.add(row, pos)
	}
	t.indexes = append(t.indexes, ix)
	return ix, nil
}

// DropIndex removes the named index.
func (t *Table) DropIndex(name string) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i, ix := range t.indexes {
		if strings.EqualFold(ix.name, name) {
			t.indexes = append(t.indexes[:i], t.indexes[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("storage: index %q does not exist on %s", name, t.name)
}

// IndexOn returns an index covering the column ordinal, if any.
func (t *Table) IndexOn(col int) *Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	for _, ix := range t.indexes {
		if ix.col == col {
			return ix
		}
	}
	return nil
}

// Indexes returns the table's index list (for tooling and persistence).
func (t *Table) Indexes() []*Index {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]*Index(nil), t.indexes...)
}

// Lookup returns the rows whose indexed column equals key (a
// value.Value.Key result). The caller must treat the rows as read-only.
func (t *Table) Lookup(ix *Index, key string) []schema.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	bucket := ix.m[key]
	if bucket == nil {
		return nil
	}
	positions := *bucket
	out := make([]schema.Row, len(positions))
	for i, p := range positions {
		out[i] = t.rows[p]
	}
	return out
}

func (ix *Index) add(row schema.Row, pos int) {
	v := row[ix.col]
	if v.IsNull() {
		return
	}
	ix.scratch = v.AppendKey(ix.scratch[:0])
	if bucket := ix.m[string(ix.scratch)]; bucket != nil {
		*bucket = append(*bucket, pos)
		return
	}
	bucket := []int{pos}
	ix.m[string(ix.scratch)] = &bucket
}

// reindex rebuilds every index (after Truncate-and-reload mutations).
func (t *Table) reindexLocked() {
	for _, ix := range t.indexes {
		ix.m = make(map[string]*[]int)
		for pos, row := range t.rows {
			ix.add(row, pos)
		}
	}
}
