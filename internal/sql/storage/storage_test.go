package storage

import (
	"sync"
	"testing"

	"minerule/internal/sql/schema"
	"minerule/internal/sql/value"
)

func testSchema() *schema.Schema {
	return schema.New("t",
		schema.Column{Name: "a", Type: value.TypeInt},
		schema.Column{Name: "b", Type: value.TypeString})
}

func TestTableBasics(t *testing.T) {
	tab := NewTable("t", testSchema())
	if tab.Name() != "t" || tab.Len() != 0 {
		t.Fatal("fresh table state wrong")
	}
	tab.Insert(schema.Row{value.NewInt(1), value.NewString("x")})
	tab.InsertAll([]schema.Row{
		{value.NewInt(2), value.NewString("y")},
		{value.NewInt(3), value.NewString("z")},
	})
	if tab.Len() != 3 {
		t.Fatalf("len = %d", tab.Len())
	}
	snap := tab.Snapshot()
	if len(snap) != 3 || snap[2][0].Int() != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
	// Appends after a snapshot must not disturb it.
	tab.Insert(schema.Row{value.NewInt(4), value.NewString("w")})
	if len(snap) != 3 {
		t.Fatal("snapshot grew")
	}
	tab.Truncate()
	if tab.Len() != 0 {
		t.Fatal("truncate failed")
	}
}

func TestTableConcurrentInsert(t *testing.T) {
	tab := NewTable("t", testSchema())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tab.Insert(schema.Row{value.NewInt(int64(i)), value.Null})
			}
		}()
	}
	wg.Wait()
	if tab.Len() != 1600 {
		t.Fatalf("len = %d", tab.Len())
	}
}

func TestSequence(t *testing.T) {
	s := NewSequence("s")
	if s.CurrentVal() != 1 {
		t.Fatalf("initial = %d", s.CurrentVal())
	}
	for want := int64(1); want <= 5; want++ {
		if got := s.NextVal(); got != want {
			t.Fatalf("NextVal = %d, want %d", got, want)
		}
	}
	if s.CurrentVal() != 6 {
		t.Fatalf("current = %d", s.CurrentVal())
	}
}

func TestSequenceConcurrent(t *testing.T) {
	s := NewSequence("s")
	var wg sync.WaitGroup
	seen := make([][]int64, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				seen[w] = append(seen[w], s.NextVal())
			}
		}(w)
	}
	wg.Wait()
	all := make(map[int64]bool)
	for _, vals := range seen {
		for _, v := range vals {
			if all[v] {
				t.Fatalf("duplicate sequence value %d", v)
			}
			all[v] = true
		}
	}
	if len(all) != 800 {
		t.Fatalf("values = %d", len(all))
	}
}

func TestCatalogLifecycle(t *testing.T) {
	c := NewCatalog()
	if c.Exists("t") {
		t.Fatal("empty catalog has t")
	}
	if _, err := c.CreateTable("t", testSchema()); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("T", testSchema()); err == nil {
		t.Fatal("case-insensitive duplicate accepted")
	}
	if err := c.CreateView("t", "SELECT 1"); err == nil {
		t.Fatal("view over table name accepted")
	}
	if _, ok := c.Table("T"); !ok {
		t.Fatal("case-insensitive lookup failed")
	}
	if err := c.CreateView("v", "SELECT a FROM t"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("v", testSchema()); err == nil {
		t.Fatal("table over view name accepted")
	}
	if _, err := c.CreateSequence("s"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateSequence("s"); err == nil {
		t.Fatal("duplicate sequence accepted")
	}
	for _, n := range []string{"t", "v", "s"} {
		if !c.Exists(n) {
			t.Errorf("%s missing", n)
		}
	}
	if got := c.TableNames(); len(got) != 1 || got[0] != "t" {
		t.Errorf("TableNames = %v", got)
	}
	if got := c.ViewNames(); len(got) != 1 || got[0] != "v" {
		t.Errorf("ViewNames = %v", got)
	}
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropTable("t"); err == nil {
		t.Fatal("double drop accepted")
	}
	if err := c.DropView("v"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropSequence("s"); err != nil {
		t.Fatal(err)
	}
	if c.Exists("t") || c.Exists("v") || c.Exists("s") {
		t.Fatal("dropped objects still exist")
	}
}

func TestDropMissing(t *testing.T) {
	c := NewCatalog()
	if err := c.DropView("nope"); err == nil {
		t.Error("DropView on missing must fail")
	}
	if err := c.DropSequence("nope"); err == nil {
		t.Error("DropSequence on missing must fail")
	}
}

// TestConcurrentSnapshotAndInsert pins down the two aliasing contracts
// readers depend on (run under -race): a Snapshot is a stable prefix
// that concurrent InsertAll calls never move or mutate, and an index
// Lookup taken mid-append only ever surfaces fully-inserted rows whose
// indexed column actually matches the key.
func TestConcurrentSnapshotAndInsert(t *testing.T) {
	tab := NewTable("t", testSchema())
	ix, err := tab.CreateIndex("t_a", 0)
	if err != nil {
		t.Fatal(err)
	}
	// Row i is (i%8, "v<i%8>"): every row with the same a shares one
	// index bucket, so buckets grow while readers walk them.
	mk := func(i int) schema.Row {
		return schema.Row{value.NewInt(int64(i % 8)), value.NewString("v" + string(rune('0'+i%8)))}
	}
	const (
		batches   = 64
		batchSize = 16
		readers   = 4
	)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for n := 0; ; n++ {
				select {
				case <-done:
					return
				default:
				}
				snap := tab.Snapshot()
				for i, row := range snap {
					want := int64(i % 8)
					if got := row[0].Int(); got != want {
						t.Errorf("snapshot[%d].a = %d, want %d", i, got, want)
						return
					}
				}
				key := value.NewInt(int64((seed + n) % 8)).Key()
				for _, row := range tab.Lookup(ix, key) {
					if row[0].Key() != key {
						t.Errorf("Lookup(%q) returned row with a = %v", key, row[0])
						return
					}
				}
			}
		}(r)
	}
	next := 0
	for b := 0; b < batches; b++ {
		rows := make([]schema.Row, batchSize)
		for i := range rows {
			rows[i] = mk(next)
			next++
		}
		if err := tab.InsertAll(rows); err != nil {
			t.Fatal(err)
		}
	}
	close(done)
	wg.Wait()
	if tab.Len() != batches*batchSize {
		t.Fatalf("Len = %d, want %d", tab.Len(), batches*batchSize)
	}
	// Every bucket is complete once the writers stop.
	for a := 0; a < 8; a++ {
		got := len(tab.Lookup(ix, value.NewInt(int64(a)).Key()))
		if got != batches*batchSize/8 {
			t.Fatalf("bucket %d has %d rows, want %d", a, got, batches*batchSize/8)
		}
	}
}
