// Package storage implements the engine's in-memory storage layer: heap
// tables, named views, Oracle-style sequences, and the catalog that binds
// names to all three. The catalog doubles as the data dictionary the
// paper's translator consults to check MINE RULE statements (Figure 3.a).
package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"minerule/internal/sql/schema"
)

// Table is an in-memory heap of rows with a fixed schema. Rows are
// append-only except for Truncate; the engine's workloads (the paper's
// Q0–Q11 programs) only ever INSERT and read.
type Table struct {
	name   string
	schema *schema.Schema

	mu      sync.RWMutex
	rows    []schema.Row // guarded by mu; current row generation
	indexes []*Index     // guarded by mu; indexes over the current generation
	jn      Journal      // guarded by mu; nil on in-memory databases

	// MVCC state (see mvcc.go): bounds are the current generation's
	// visibility boundaries, hist the superseded generations still
	// reachable by registered snapshots, clock the owning catalog's
	// stamp clock (a private clock grows lazily on detached tables).
	bounds []rowBound  // guarded by mu
	hist   []oldGen    // guarded by mu
	clock  *StampClock // guarded by mu (the pointer; the clock is atomic)

	// stats is the last statistics snapshot (nil until first computed);
	// statsRows is the row count it was computed at, which drives the
	// staleness test. statsEpoch points at the owning catalog's shared
	// statistics generation counter (nil for detached tables). All three
	// are guarded by mu.
	stats      *TableStats    // guarded by mu
	statsRows  int            // guarded by mu
	statsEpoch *atomic.Uint64 // guarded by mu (the pointer; the counter is atomic)
}

// NewTable creates an empty table.
func NewTable(name string, s *schema.Schema) *Table {
	return &Table{name: name, schema: s}
}

// Name returns the table's catalog name.
func (t *Table) Name() string { return t.name }

// Schema returns the table's schema.
func (t *Table) Schema() *schema.Schema { return t.schema }

// Insert appends a row. The row must positionally match the schema; the
// caller (the executor) is responsible for type checking. With a journal
// attached the append is logged first; a journal error (I/O failure,
// page-I/O budget) vetoes the insert.
func (t *Table) Insert(r schema.Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.jn != nil {
		if err := t.jn.Insert(t.name, []schema.Row{r}); err != nil {
			return err
		}
	}
	stamp := t.stampLocked()
	for _, ix := range t.indexes {
		ix.add(r, len(t.rows))
	}
	t.rows = append(t.rows, r)
	t.publishLegacyLocked(stamp)
	return nil
}

// InsertAll appends many rows at once (one journal record for the batch).
func (t *Table) InsertAll(rs []schema.Row) error {
	if len(rs) == 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.jn != nil {
		if err := t.jn.Insert(t.name, rs); err != nil {
			return err
		}
	}
	stamp := t.stampLocked()
	for i, r := range rs {
		for _, ix := range t.indexes {
			ix.add(r, len(t.rows)+i)
		}
	}
	t.rows = append(t.rows, rs...)
	t.publishLegacyLocked(stamp)
	return nil
}

// Len returns the current row count.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rows)
}

// Truncate removes all rows.
func (t *Table) Truncate() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.jn != nil {
		if err := t.jn.Truncate(t.name); err != nil {
			return err
		}
	}
	stamp := t.stampLocked()
	t.rows = nil
	t.reindexLocked()
	t.publishLegacyLocked(stamp)
	return nil
}

// Replace atomically substitutes the table's contents with rs, taking
// ownership of the slice. UPDATE and DELETE rewrites use it instead of a
// Truncate/InsertAll pair so the journal sees one record — a crash
// between the two halves can never surface an empty table. Existing
// snapshots stay valid: the old row array is abandoned, never mutated.
func (t *Table) Replace(rs []schema.Row) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.jn != nil {
		if err := t.jn.Replace(t.name, rs); err != nil {
			return err
		}
	}
	stamp := t.stampLocked()
	t.rows = rs
	t.reindexLocked()
	t.publishLegacyLocked(stamp)
	return nil
}

// Snapshot returns the row slice as of now. The slice must be treated as
// read-only; appends by writers never move existing elements because the
// snapshot aliases the array prefix only.
func (t *Table) Snapshot() []schema.Row {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.rows[:len(t.rows):len(t.rows)]
}

// Sequence is an Oracle-style monotone counter supporting NEXTVAL,
// used by the paper's Q2–Q5 to mint Gid/Bid/Hid/Cid identifiers.
type Sequence struct {
	name   string
	mu     sync.Mutex
	next   int64   // guarded by mu
	logged int64   // guarded by mu; ceiling already journaled, values below it need no log
	jn     Journal // guarded by mu; nil on in-memory databases
}

// seqCache is how far past the current value a SeqBump record reaches:
// one journal append covers the next seqCache NEXTVALs, and a crash
// skips at most that many values (Oracle's CACHE semantics).
const seqCache = 32

// NewSequence creates a sequence starting at 1, matching Oracle's
// CREATE SEQUENCE default.
func NewSequence(name string) *Sequence { return &Sequence{name: name, next: 1, logged: 1} }

// Name returns the sequence's catalog name.
func (s *Sequence) Name() string { return s.name }

// NextVal returns the current value and advances the sequence. NEXTVAL
// cannot fail, so a journal error here does not surface — the durable
// store remembers it and fails the statement at its commit point; the
// ceiling stays unlogged so the bump is retried rather than lost.
func (s *Sequence) NextVal() int64 {
	s.mu.Lock()
	if s.jn != nil && s.next >= s.logged {
		if err := s.jn.SequenceBump(s.name, s.next+seqCache); err == nil {
			s.logged = s.next + seqCache
		}
	}
	v := s.next
	s.next++
	s.mu.Unlock()
	return v
}

// CurrentVal returns the value NextVal would return, without advancing.
func (s *Sequence) CurrentVal() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// LoggedCeiling returns the highest value covered by a journaled bump —
// what a checkpoint must persist so NEXTVAL never repeats a value handed
// out before a crash. On an in-memory database it equals CurrentVal.
func (s *Sequence) LoggedCeiling() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.logged > s.next {
		return s.logged
	}
	return s.next
}

// Restore sets the next value (used when loading a saved database or
// replaying a SeqBump record). The restored value counts as logged.
func (s *Sequence) Restore(next int64) {
	s.mu.Lock()
	s.next = next
	s.logged = next
	s.mu.Unlock()
}

// View is a named stored query. The text is re-planned at each use, which
// gives the paper's "not materialized view" semantics for Q11.
type View struct {
	Name string
	Text string // the SELECT body
}

// Catalog is the data dictionary: a name → object map for tables, views
// and sequences. Names are case-insensitive.
type Catalog struct {
	// pubMu is the publish lock (see LockPublish in mvcc.go): committing
	// transactions, DDL statements and checkpoints serialize on it so the
	// visible watermark only ever covers fully applied effects. It is
	// acquired before mu; it guards no fields itself.
	pubMu sync.Mutex

	mu   sync.RWMutex
	tabs map[string]*Table    // guarded by mu
	vws  map[string]*View     // guarded by mu
	seqs map[string]*Sequence // guarded by mu
	idxs map[string]string    // guarded by mu; index name → owning table name
	jn   Journal              // guarded by mu; nil on in-memory databases

	// stamps is the commit-stamp clock shared by every object in the
	// catalog; history/past retain superseded name maps for snapshot
	// readers (see mvcc.go).
	stamps  StampClock
	history bool      // guarded by mu; retain past states (a txn manager is attached)
	past    []catPast // guarded by mu; superseded catalog states, ascending by stamp

	// version counts DDL mutations. Caches of anything derived from the
	// dictionary (resolved view plans, compiled statements bound to
	// catalog objects) key on it: a mismatch means the dictionary changed
	// underneath and the cached artifact must be rebuilt.
	version atomic.Uint64

	// statsEpoch counts table-statistics refreshes across the catalog;
	// cost-based plan decisions cache against it (see StatsEpoch).
	statsEpoch atomic.Uint64
}

// Version returns the catalog's DDL generation counter. Every mutation
// of the dictionary (create/drop of a table, view, index or sequence)
// advances it.
func (c *Catalog) Version() uint64 { return c.version.Load() }

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		tabs: make(map[string]*Table),
		vws:  make(map[string]*View),
		seqs: make(map[string]*Sequence),
		idxs: make(map[string]string),
	}
}

func key(name string) string { return strings.ToLower(name) }

// taken reports what kind of object already holds the name, if any.
// Tables, views and sequences share one namespace, as in the SQL servers
// the paper targets. The caller must hold c.mu.
func (c *Catalog) taken(k string) (string, bool) {
	if _, ok := c.tabs[k]; ok {
		return "table", true
	}
	if _, ok := c.vws[k]; ok {
		return "view", true
	}
	if _, ok := c.seqs[k]; ok {
		return "sequence", true
	}
	if _, ok := c.idxs[k]; ok {
		return "index", true
	}
	return "", false
}

// CreateTable registers a new empty table.
func (c *Catalog) CreateTable(name string, s *schema.Schema) (*Table, error) {
	c.pubMu.Lock()
	defer c.pubMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if kind, ok := c.taken(k); ok {
		return nil, fmt.Errorf("catalog: %q already exists as a %s", name, kind)
	}
	if c.jn != nil {
		if err := c.jn.CreateTable(name, s); err != nil {
			return nil, err
		}
	}
	stamp := c.ddlStampLocked()
	// Built as a literal, not via NewTable: the table is unpublished
	// until the map insert below, so its fields may be set lock-free.
	t := &Table{name: name, schema: s, jn: c.jn, statsEpoch: c.statsEpochRef(), clock: &c.stamps}
	c.tabs[k] = t
	c.version.Add(1)
	c.stamps.SetVisible(stamp)
	return t, nil
}

// DropTable removes a table and its indexes; it is an error if absent.
func (c *Catalog) DropTable(name string) error {
	c.pubMu.Lock()
	defer c.pubMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	t, ok := c.tabs[k]
	if !ok {
		return fmt.Errorf("catalog: table %q does not exist", name)
	}
	if c.jn != nil {
		if err := c.jn.DropTable(name); err != nil {
			return err
		}
	}
	stamp := c.ddlStampLocked()
	for _, ix := range t.Indexes() {
		delete(c.idxs, key(ix.Name()))
	}
	delete(c.tabs, k)
	c.version.Add(1)
	c.stamps.SetVisible(stamp)
	return nil
}

// CreateIndex builds a hash index named name on table.column.
func (c *Catalog) CreateIndex(name, table string, col int) (*Index, error) {
	c.pubMu.Lock()
	defer c.pubMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if kind, taken := c.taken(k); taken {
		return nil, fmt.Errorf("catalog: %q already exists as a %s", name, kind)
	}
	t, ok := c.tabs[key(table)]
	if !ok {
		return nil, fmt.Errorf("catalog: table %q does not exist", table)
	}
	if col < 0 || col >= t.Schema().Len() {
		// Validated here so a journaled record is always replayable.
		return nil, fmt.Errorf("storage: index column %d out of range", col)
	}
	if c.jn != nil {
		if err := c.jn.CreateIndex(name, table, col); err != nil {
			return nil, err
		}
	}
	stamp := c.ddlStampLocked()
	ix, err := t.CreateIndex(name, col)
	if err != nil {
		return nil, err
	}
	c.idxs[k] = key(table)
	c.version.Add(1)
	c.stamps.SetVisible(stamp)
	return ix, nil
}

// DropIndex removes a named index wherever it lives.
func (c *Catalog) DropIndex(name string) error {
	c.pubMu.Lock()
	defer c.pubMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	tabKey, ok := c.idxs[k]
	if !ok {
		return fmt.Errorf("catalog: index %q does not exist", name)
	}
	if c.jn != nil {
		if err := c.jn.DropIndex(name); err != nil {
			return err
		}
	}
	stamp := c.ddlStampLocked()
	if t, ok := c.tabs[tabKey]; ok {
		if err := t.DropIndex(name); err != nil {
			return err
		}
	}
	delete(c.idxs, k)
	c.version.Add(1)
	c.stamps.SetVisible(stamp)
	return nil
}

// Table looks up a table by name.
func (c *Catalog) Table(name string) (*Table, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tabs[key(name)]
	return t, ok
}

// CreateView registers a named view over the given SELECT text.
func (c *Catalog) CreateView(name, text string) error {
	c.pubMu.Lock()
	defer c.pubMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if kind, ok := c.taken(k); ok {
		return fmt.Errorf("catalog: %q already exists as a %s", name, kind)
	}
	if c.jn != nil {
		if err := c.jn.CreateView(name, text); err != nil {
			return err
		}
	}
	stamp := c.ddlStampLocked()
	c.vws[k] = &View{Name: name, Text: text}
	c.version.Add(1)
	c.stamps.SetVisible(stamp)
	return nil
}

// DropView removes a view; it is an error if absent.
func (c *Catalog) DropView(name string) error {
	c.pubMu.Lock()
	defer c.pubMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.vws[k]; !ok {
		return fmt.Errorf("catalog: view %q does not exist", name)
	}
	if c.jn != nil {
		if err := c.jn.DropView(name); err != nil {
			return err
		}
	}
	stamp := c.ddlStampLocked()
	delete(c.vws, k)
	c.version.Add(1)
	c.stamps.SetVisible(stamp)
	return nil
}

// View looks up a view by name.
func (c *Catalog) View(name string) (*View, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.vws[key(name)]
	return v, ok
}

// CreateSequence registers a new sequence starting at 1.
func (c *Catalog) CreateSequence(name string) (*Sequence, error) {
	c.pubMu.Lock()
	defer c.pubMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if kind, ok := c.taken(k); ok {
		return nil, fmt.Errorf("catalog: %q already exists as a %s", name, kind)
	}
	if c.jn != nil {
		if err := c.jn.CreateSequence(name); err != nil {
			return nil, err
		}
	}
	stamp := c.ddlStampLocked()
	// Literal construction for the same unpublished-object reason as
	// CreateTable; next/logged start at 1 as in NewSequence.
	s := &Sequence{name: name, next: 1, logged: 1, jn: c.jn}
	c.seqs[k] = s
	c.version.Add(1)
	c.stamps.SetVisible(stamp)
	return s, nil
}

// DropSequence removes a sequence; it is an error if absent.
func (c *Catalog) DropSequence(name string) error {
	c.pubMu.Lock()
	defer c.pubMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	k := key(name)
	if _, ok := c.seqs[k]; !ok {
		return fmt.Errorf("catalog: sequence %q does not exist", name)
	}
	if c.jn != nil {
		if err := c.jn.DropSequence(name); err != nil {
			return err
		}
	}
	stamp := c.ddlStampLocked()
	delete(c.seqs, k)
	c.version.Add(1)
	c.stamps.SetVisible(stamp)
	return nil
}

// Sequence looks up a sequence by name.
func (c *Catalog) Sequence(name string) (*Sequence, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.seqs[key(name)]
	return s, ok
}

// Exists reports whether any object (table, view or sequence) has the name.
func (c *Catalog) Exists(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	k := key(name)
	_, t := c.tabs[k]
	_, v := c.vws[k]
	_, s := c.seqs[k]
	return t || v || s
}

// HasIndex reports whether an index with the given name exists. Indexes
// live in their own namespace slot of the dictionary (they are owned by
// tables and dropped with them), so Exists does not cover them.
func (c *Catalog) HasIndex(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.idxs[key(name)]
	return ok
}

// IndexOwner returns the table owning the named index, if the index
// exists (the lock a DROP INDEX must take before touching the table).
func (c *Catalog) IndexOwner(name string) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.idxs[key(name)]
	return t, ok
}

// TableIndexes returns the sorted names of the indexes owned by the
// named table (they leave the namespace together with it on DROP TABLE).
func (c *Catalog) TableIndexes(table string) []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	tk := key(table)
	var out []string
	for ix, owner := range c.idxs {
		if owner == tk {
			out = append(out, ix)
		}
	}
	sort.Strings(out)
	return out
}

// TableNames returns the sorted list of table names (for tooling).
func (c *Catalog) TableNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tabs))
	for _, t := range c.tabs {
		out = append(out, t.Name())
	}
	sort.Strings(out)
	return out
}

// SequenceNames returns the sorted list of sequence names.
func (c *Catalog) SequenceNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.seqs))
	for _, s := range c.seqs {
		out = append(out, s.Name())
	}
	sort.Strings(out)
	return out
}

// ViewNames returns the sorted list of view names.
func (c *Catalog) ViewNames() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.vws))
	for _, v := range c.vws {
		out = append(out, v.Name)
	}
	sort.Strings(out)
	return out
}
