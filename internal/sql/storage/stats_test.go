package storage

import (
	"fmt"
	"testing"

	"minerule/internal/sql/schema"
	"minerule/internal/sql/value"
)

func statsTestTable(t *testing.T, rows int) (*Catalog, *Table) {
	t.Helper()
	cat := NewCatalog()
	s := schema.New("T",
		schema.Column{Name: "gid", Type: value.TypeInt},
		schema.Column{Name: "item", Type: value.TypeString},
	)
	tab, err := cat.CreateTable("T", s)
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]schema.Row, 0, rows)
	for i := 0; i < rows; i++ {
		batch = append(batch, schema.Row{
			value.NewInt(int64(i)),
			value.NewString(fmt.Sprintf("item-%d", i%40)),
		})
	}
	if err := tab.InsertAll(batch); err != nil {
		t.Fatal(err)
	}
	return cat, tab
}

func TestStatsExactSmall(t *testing.T) {
	cat, tab := statsTestTable(t, 1000)
	st, refreshed := tab.Stats()
	if !refreshed {
		t.Fatal("first Stats() call should refresh")
	}
	if st.Rows != 1000 {
		t.Fatalf("Rows = %d, want 1000", st.Rows)
	}
	// Column 1 has 40 distinct values — below the sketch size, exact.
	if st.Cols[1].NDV != 40 {
		t.Fatalf("item NDV = %d, want 40", st.Cols[1].NDV)
	}
	if st.Cols[0].Nulls != 0 || !st.Cols[0].HasRange {
		t.Fatalf("gid stats missing range: %+v", st.Cols[0])
	}
	if st.Cols[0].Min.Int() != 0 || st.Cols[0].Max.Int() != 999 {
		t.Fatalf("gid range = [%v, %v], want [0, 999]", st.Cols[0].Min, st.Cols[0].Max)
	}
	if cat.StatsEpoch() == 0 {
		t.Fatal("catalog stats epoch did not advance on refresh")
	}
	// A second call with no mutations must not rescan.
	if _, again := tab.Stats(); again {
		t.Fatal("Stats() refreshed twice with no mutation")
	}
}

func TestStatsSketchEstimate(t *testing.T) {
	_, tab := statsTestTable(t, 20000)
	st, _ := tab.Stats()
	// Column 0 has 20000 distinct values — far above the sketch size;
	// KMV should land within 15% of the truth.
	ndv := float64(st.Cols[0].NDV)
	if ndv < 20000*0.85 || ndv > 20000*1.15 {
		t.Fatalf("gid NDV estimate = %v, want within 15%% of 20000", ndv)
	}
}

func TestStatsStaleness(t *testing.T) {
	cat, tab := statsTestTable(t, 100)
	tab.Stats()
	epoch := cat.StatsEpoch()

	// Small growth stays within the slack: no refresh.
	if err := tab.Insert(schema.Row{value.NewInt(100), value.NewString("x")}); err != nil {
		t.Fatal(err)
	}
	if st, refreshed := tab.Stats(); refreshed {
		t.Fatalf("refresh after one insert (stats %+v)", st)
	}

	// Growth beyond 20%+64 forces a refresh and bumps the epoch.
	batch := make([]schema.Row, 0, 200)
	for i := 0; i < 200; i++ {
		batch = append(batch, schema.Row{value.NewInt(int64(200 + i)), value.NewString("y")})
	}
	if err := tab.InsertAll(batch); err != nil {
		t.Fatal(err)
	}
	st, refreshed := tab.Stats()
	if !refreshed {
		t.Fatal("no refresh after 3x growth")
	}
	if st.Rows != 301 {
		t.Fatalf("Rows = %d, want 301", st.Rows)
	}
	if cat.StatsEpoch() == epoch {
		t.Fatal("stats epoch did not advance")
	}

	// Shrink always invalidates.
	if err := tab.Replace(batch[:10]); err != nil {
		t.Fatal(err)
	}
	if st, refreshed = tab.Stats(); !refreshed || st.Rows != 10 {
		t.Fatalf("refresh after Replace: refreshed=%v rows=%d", refreshed, st.Rows)
	}
}

func TestStatsNullsAndMixed(t *testing.T) {
	cat := NewCatalog()
	s := schema.New("N", schema.Column{Name: "v", Type: value.TypeInt})
	tab, err := cat.CreateTable("N", s)
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.InsertAll([]schema.Row{
		{value.Null}, {value.NewInt(3)}, {value.Null}, {value.NewInt(7)},
	}); err != nil {
		t.Fatal(err)
	}
	st, _ := tab.Stats()
	if st.Cols[0].Nulls != 2 || st.Cols[0].NDV != 2 {
		t.Fatalf("nulls=%d ndv=%d, want 2/2", st.Cols[0].Nulls, st.Cols[0].NDV)
	}
	if !st.Cols[0].HasRange || st.Cols[0].Min.Int() != 3 || st.Cols[0].Max.Int() != 7 {
		t.Fatalf("range = %+v, want [3, 7]", st.Cols[0])
	}
}
