package storage

import (
	"sort"
	"sync/atomic"

	"minerule/internal/sql/schema"
	"minerule/internal/sql/value"
)

// ColStats summarizes one column for the cost-based planner.
type ColStats struct {
	// NDV estimates the number of distinct non-NULL values (exact below
	// kmvK distinct values, a KMV sketch estimate above it).
	NDV int64
	// Nulls counts NULL entries.
	Nulls int64
	// Min and Max bound the non-NULL values when HasRange is set; the
	// range is dropped for columns whose values do not compare (mixed
	// incomparable types).
	Min, Max value.Value
	HasRange bool
}

// TableStats is one table's statistics snapshot, consistent as of the
// refresh that produced it. The planner treats it as immutable.
type TableStats struct {
	Rows int64
	Cols []ColStats
}

// kmvK is the sketch size for NDV estimation: the k smallest 64-bit
// hashes of the distinct values seen. Columns with fewer than kmvK
// distinct values get an exact count; above it the k-th smallest hash
// estimates the distinct density of the full hash space.
const kmvK = 256

// statsStale reports whether a statistics snapshot taken at refreshed
// rows no longer describes a table of cur rows: any shrink (Truncate,
// Replace, DELETE) and any growth beyond 20% + 64 rows force a refresh.
// The slack keeps trickle inserts from rescanning the table per
// statement while bounding how far the row estimate can drift.
func statsStale(cur, refreshed int) bool {
	if cur < refreshed {
		return true
	}
	return cur-refreshed > refreshed/5+64
}

// Stats returns the table's statistics, recomputing them when the row
// count has drifted past the staleness bound. The second result reports
// whether this call performed a refresh (the executor counts those).
func (t *Table) Stats() (*TableStats, bool) {
	t.mu.RLock()
	if t.stats != nil && !statsStale(len(t.rows), t.statsRows) {
		s := t.stats
		t.mu.RUnlock()
		return s, false
	}
	t.mu.RUnlock()

	t.mu.Lock()
	defer t.mu.Unlock()
	// Re-check under the write lock: another statement may have
	// refreshed while this one waited.
	if t.stats != nil && !statsStale(len(t.rows), t.statsRows) {
		return t.stats, false
	}
	t.stats = computeStats(t.schema.Len(), t.rows)
	t.statsRows = len(t.rows)
	if t.statsEpoch != nil {
		t.statsEpoch.Add(1)
	}
	return t.stats, true
}

// CachedStats returns the current statistics snapshot without
// refreshing — possibly stale, nil when none has been computed yet.
// EXPLAIN uses it to report the estimate a planner would have seen.
func (t *Table) CachedStats() *TableStats {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.stats
}

// computeStats scans rows once, maintaining per-column KMV sketches and
// min/max bounds.
func computeStats(cols int, rows []schema.Row) *TableStats {
	st := &TableStats{Rows: int64(len(rows)), Cols: make([]ColStats, cols)}
	sketches := make([]kmvSketch, cols)
	rangeDead := make([]bool, cols) // column proved incomparable
	var keyBuf []byte
	for _, r := range rows {
		for c := 0; c < cols && c < len(r); c++ {
			v := r[c]
			cs := &st.Cols[c]
			if v.IsNull() {
				cs.Nulls++
				continue
			}
			keyBuf = v.AppendKey(keyBuf[:0])
			sketches[c].add(fnv64a(keyBuf))
			if rangeDead[c] {
				continue
			}
			if !cs.HasRange {
				cs.Min, cs.Max, cs.HasRange = v, v, true
				continue
			}
			if cmp, err := value.Compare(v, cs.Min); err != nil {
				rangeDead[c], cs.HasRange = true, false
				continue
			} else if cmp < 0 {
				cs.Min = v
			}
			if cmp, err := value.Compare(v, cs.Max); err != nil {
				rangeDead[c], cs.HasRange = true, false
			} else if cmp > 0 {
				cs.Max = v
			}
		}
	}
	for c := range st.Cols {
		st.Cols[c].NDV = sketches[c].estimate()
	}
	return st
}

// kmvSketch keeps the k minimum distinct hash values seen. Membership
// is tracked in a map bounded by k entries, so memory stays O(k)
// regardless of table size.
type kmvSketch struct {
	hashes []uint64        // sorted ascending, len <= kmvK
	member map[uint64]bool // current members of hashes
	n      int64           // values observed (not distinct)
}

func (s *kmvSketch) add(h uint64) {
	s.n++
	if s.member == nil {
		s.member = make(map[uint64]bool, kmvK)
	}
	if s.member[h] {
		return
	}
	if len(s.hashes) < kmvK {
		s.member[h] = true
		i := sort.Search(len(s.hashes), func(i int) bool { return s.hashes[i] >= h })
		s.hashes = append(s.hashes, 0)
		copy(s.hashes[i+1:], s.hashes[i:])
		s.hashes[i] = h
		return
	}
	max := s.hashes[len(s.hashes)-1]
	if h >= max {
		return
	}
	delete(s.member, max)
	s.member[h] = true
	i := sort.Search(len(s.hashes)-1, func(i int) bool { return s.hashes[i] >= h })
	copy(s.hashes[i+1:], s.hashes[i:len(s.hashes)-1])
	s.hashes[i] = h
}

// estimate returns the distinct-count estimate: exact while the sketch
// is not full, else the standard KMV estimator (k-1)/U(k) where U(k) is
// the k-th smallest hash normalized into [0, 1).
func (s *kmvSketch) estimate() int64 {
	if len(s.hashes) < kmvK {
		return int64(len(s.hashes))
	}
	kth := float64(s.hashes[len(s.hashes)-1])
	if kth == 0 {
		return int64(len(s.hashes))
	}
	est := float64(kmvK-1) / (kth / (1 << 63) / 2)
	if est < float64(kmvK) {
		est = float64(kmvK)
	}
	if est > float64(s.n) {
		est = float64(s.n)
	}
	return int64(est)
}

// fnv64a hashes the canonical key bytes of one value: FNV-1a for the
// byte walk, then a 64-bit avalanche finalizer. Raw FNV-1a is not
// uniform enough in its high bits over near-sequential keys (integer
// columns), which skews the KMV order statistics; the finalizer
// restores uniformity.
func fnv64a(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// StatsEpoch returns the catalog's statistics generation: it advances
// whenever any table refreshes its statistics, so plan caches keyed on
// it re-derive their cost decisions once fresher estimates exist.
func (c *Catalog) StatsEpoch() uint64 { return c.statsEpoch.Load() }

// statsEpochRef hands tables the shared epoch counter at registration.
func (c *Catalog) statsEpochRef() *atomic.Uint64 { return &c.statsEpoch }
