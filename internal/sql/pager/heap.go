package pager

import (
	"encoding/binary"
	"fmt"
)

// Heap files store one cell per row (schema.Row binary encoding). A row
// larger than one page's cell capacity is chunked: a start cell carries
// the total length, continuation cells carry the rest, in order. Cell
// tags:
//
//	'R'  whole row in one cell
//	'S'  first fragment of a chunked row (uvarint total length follows)
//	'C'  continuation fragment
const (
	cellRow   = 'R'
	cellStart = 'S'
	cellCont  = 'C'
)

// HeapWriter appends encoded rows to a heap file through the pool,
// filling pages in order. Call Flush when done; the file then holds
// pages 0..Pages()-1.
type HeapWriter struct {
	pool *Pool
	f    *File
	no   uint32 // current page number
	page Page   // current page (resident, dirty)
	used bool   // a page has been allocated
	buf  []byte // cell scratch
}

// NewHeapWriter starts writing f from page 0 (the file is being
// rewritten; previous content beyond the new length is truncated by
// the checkpoint that owns it).
func NewHeapWriter(pool *Pool, f *File) *HeapWriter {
	return &HeapWriter{pool: pool, f: f}
}

func (h *HeapWriter) nextPage() error {
	if h.used {
		h.no++
	}
	pg, err := h.pool.Alloc(h.f, h.no)
	if err != nil {
		return err
	}
	h.page, h.used = pg, true
	return nil
}

// Append writes one encoded row, chunking across pages when needed.
func (h *HeapWriter) Append(rec []byte) error {
	if !h.used {
		if err := h.nextPage(); err != nil {
			return err
		}
	}
	// Fast path: whole row fits in one cell on the current (or a fresh)
	// page.
	h.buf = append(h.buf[:0], cellRow)
	h.buf = append(h.buf, rec...)
	if len(h.buf) <= MaxCell {
		if h.page.Append(h.buf) {
			h.pool.MarkDirty(h.f, h.no)
			return nil
		}
		if err := h.nextPage(); err != nil {
			return err
		}
		if h.page.Append(h.buf) {
			h.pool.MarkDirty(h.f, h.no)
			return nil
		}
		return fmt.Errorf("pager: cell of %d bytes does not fit an empty page", len(h.buf))
	}
	// Chunked row: start fragment then continuations, each filling
	// whatever space its page has.
	rest := rec
	h.buf = append(h.buf[:0], cellStart)
	h.buf = binary.AppendUvarint(h.buf, uint64(len(rec)))
	head := len(h.buf)
	first := true
	for len(rest) > 0 || first {
		room := h.page.FreeSpace() - head
		if room <= 0 {
			if err := h.nextPage(); err != nil {
				return err
			}
			continue
		}
		n := len(rest)
		if n > room {
			n = room
		}
		if n > MaxCell-head {
			n = MaxCell - head
		}
		h.buf = append(h.buf[:head], rest[:n]...)
		if !h.page.Append(h.buf) {
			if err := h.nextPage(); err != nil {
				return err
			}
			continue
		}
		h.pool.MarkDirty(h.f, h.no)
		rest = rest[n:]
		first = false
		h.buf = append(h.buf[:0], cellCont)
		head = len(h.buf)
	}
	return nil
}

// Pages returns how many pages the writer has filled so far.
func (h *HeapWriter) Pages() uint32 {
	if !h.used {
		return 0
	}
	return h.no + 1
}

// Flush writes the writer's dirty pages back through the pool (the
// caller fsyncs the file).
func (h *HeapWriter) Flush() error { return h.pool.FlushFile(h.f) }

// ScanHeap iterates the heap file through the pool, invoking fn with
// each row's encoded bytes in write order. The slice passed to fn is
// only valid during the call.
func ScanHeap(pool *Pool, f *File, fn func(rec []byte) error) error {
	pages, err := f.Pages()
	if err != nil {
		return err
	}
	var pending []byte // chunked-row reassembly buffer
	var want uint64
	inChunk := false
	for no := uint32(0); no < pages; no++ {
		pg, err := pool.Get(f, no)
		if err != nil {
			return err
		}
		for i := 0; i < pg.NumSlots(); i++ {
			cell, err := pg.Cell(i)
			if err != nil {
				return err
			}
			if len(cell) == 0 {
				return fmt.Errorf("pager: empty cell %d on page %d", i, no)
			}
			switch cell[0] {
			case cellRow:
				if inChunk {
					return fmt.Errorf("pager: row cell inside chunked row on page %d", no)
				}
				if err := fn(cell[1:]); err != nil {
					return err
				}
			case cellStart:
				total, n := binary.Uvarint(cell[1:])
				if n <= 0 {
					return fmt.Errorf("pager: bad chunk header on page %d", no)
				}
				want = total
				inChunk = true
				pending = append(pending[:0], cell[1+n:]...)
			case cellCont:
				if !inChunk {
					return fmt.Errorf("pager: continuation without start on page %d", no)
				}
				pending = append(pending, cell[1:]...)
			default:
				return fmt.Errorf("pager: unknown cell tag %q on page %d", cell[0], no)
			}
			if inChunk && uint64(len(pending)) >= want {
				if uint64(len(pending)) > want {
					return fmt.Errorf("pager: chunked row overflow on page %d", no)
				}
				if err := fn(pending); err != nil {
					return err
				}
				inChunk = false
				want = 0
			}
		}
	}
	if inChunk {
		return fmt.Errorf("pager: truncated chunked row at end of %s", f.Path())
	}
	return nil
}
