package pager_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"

	"minerule/internal/obsv"
	"minerule/internal/sql/pager"
	"minerule/internal/sql/vfs"
)

func TestPageAppendCell(t *testing.T) {
	b := make([]byte, pager.PageSize)
	pager.InitPage(b)
	p := pager.Page(b)

	var cells [][]byte
	for i := 0; ; i++ {
		c := []byte(fmt.Sprintf("cell-%04d-%s", i, bytes.Repeat([]byte{byte(i)}, i%60)))
		if !p.Append(c) {
			break
		}
		cells = append(cells, c)
	}
	if len(cells) < 2 {
		t.Fatalf("page fit only %d cells", len(cells))
	}
	if p.NumSlots() != len(cells) {
		t.Fatalf("NumSlots %d want %d", p.NumSlots(), len(cells))
	}
	for i, want := range cells {
		got, err := p.Cell(i)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cell %d mismatch", i)
		}
	}
	if _, err := p.Cell(len(cells)); err == nil {
		t.Fatal("out-of-range slot read succeeded")
	}
}

func TestPageMaxCell(t *testing.T) {
	b := make([]byte, pager.PageSize)
	pager.InitPage(b)
	p := pager.Page(b)
	if !p.Append(make([]byte, pager.MaxCell)) {
		t.Fatal("MaxCell cell did not fit an empty page")
	}
	if p.Append([]byte{1}) {
		t.Fatal("full page accepted another cell")
	}
}

func TestPoolEviction(t *testing.T) {
	dir := t.TempDir()
	f, err := pager.OpenFile(vfs.OS, filepath.Join(dir, "heap"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	met := &obsv.Metrics{}
	pool := pager.NewPool(4)
	pool.Met = met

	// Write 10 pages through a 4-frame pool: evictions must flush dirty
	// frames so every page survives on disk.
	const pages = 10
	for no := uint32(0); no < pages; no++ {
		pg, err := pool.Alloc(f, no)
		if err != nil {
			t.Fatal(err)
		}
		if !pg.Append([]byte{byte('a' + no)}) {
			t.Fatal("append failed")
		}
		pool.MarkDirty(f, no)
	}
	if err := pool.FlushFile(f); err != nil {
		t.Fatal(err)
	}
	if n, _ := f.Pages(); n != pages {
		t.Fatalf("file holds %d pages, want %d", n, pages)
	}
	if met.PoolEvictions.Load() == 0 {
		t.Fatal("no evictions with capacity 4 and 10 pages")
	}

	// Re-read all pages; early ones must come back from disk intact.
	for no := uint32(0); no < pages; no++ {
		pg, err := pool.Get(f, no)
		if err != nil {
			t.Fatal(err)
		}
		cell, err := pg.Cell(0)
		if err != nil {
			t.Fatal(err)
		}
		if len(cell) != 1 || cell[0] != byte('a'+no) {
			t.Fatalf("page %d content lost across eviction", no)
		}
	}
	if met.PageReads.Load() == 0 || met.PageWrites.Load() == 0 {
		t.Fatalf("page I/O counters silent: reads %d writes %d",
			met.PageReads.Load(), met.PageWrites.Load())
	}
}

func TestPoolHitTracking(t *testing.T) {
	dir := t.TempDir()
	f, err := pager.OpenFile(vfs.OS, filepath.Join(dir, "heap"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	met := &obsv.Metrics{}
	pool := pager.NewPool(2)
	pool.Met = met
	if _, err := pool.Alloc(f, 0); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := pool.Get(f, 0); err != nil {
			t.Fatal(err)
		}
	}
	if met.PoolHits.Load() != 5 || met.PoolMisses.Load() != 1 {
		t.Fatalf("hits %d misses %d, want 5/1", met.PoolHits.Load(), met.PoolMisses.Load())
	}
}

func heapRoundTrip(t *testing.T, poolPages int, recs [][]byte) {
	t.Helper()
	dir := t.TempDir()
	f, err := pager.OpenFile(vfs.OS, filepath.Join(dir, "heap"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	pool := pager.NewPool(poolPages)
	w := pager.NewHeapWriter(pool, f)
	for _, r := range recs {
		if err := w.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}

	var got [][]byte
	err = pager.ScanHeap(pool, f, func(rec []byte) error {
		got = append(got, append([]byte(nil), rec...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("scanned %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if !bytes.Equal(got[i], recs[i]) {
			t.Fatalf("record %d mismatch: %d vs %d bytes", i, len(got[i]), len(recs[i]))
		}
	}
}

func TestHeapRoundTripSmallRows(t *testing.T) {
	var recs [][]byte
	for i := 0; i < 2000; i++ {
		recs = append(recs, []byte(fmt.Sprintf("row-%d-%s", i, bytes.Repeat([]byte("x"), i%90))))
	}
	heapRoundTrip(t, 3, recs) // pool smaller than the file: scan crosses evictions
}

func TestHeapRoundTripChunkedRows(t *testing.T) {
	recs := [][]byte{
		[]byte("small"),
		bytes.Repeat([]byte("A"), pager.MaxCell-1), // exactly fits one cell with tag
		bytes.Repeat([]byte("B"), pager.PageSize),  // needs chunking
		bytes.Repeat([]byte("C"), 3*pager.PageSize+17),
		[]byte("tail"),
	}
	heapRoundTrip(t, 2, recs)
}

func TestHeapEmpty(t *testing.T) {
	heapRoundTrip(t, 2, nil)
}
