package pager

import (
	"fmt"

	"minerule/internal/obsv"
	"minerule/internal/resource"
	"minerule/internal/sql/vfs"
)

// File is one page-addressed heap file.
type File struct {
	f    vfs.File
	path string
}

// OpenFile opens (creating if needed) a heap file on fsys.
func OpenFile(fsys vfs.FS, path string) (*File, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, resource.NewIOError("page open", err)
	}
	return &File{f: f, path: path}, nil
}

// Path returns the file's path.
func (f *File) Path() string { return f.path }

// Pages returns the number of whole pages in the file.
func (f *File) Pages() (uint32, error) {
	size, err := f.f.Size()
	if err != nil {
		return 0, resource.NewIOError("page stat", err)
	}
	return uint32(size / PageSize), nil
}

// Sync fsyncs the file.
func (f *File) Sync() error {
	if err := f.f.Sync(); err != nil {
		return resource.NewIOError("page fsync", err)
	}
	return nil
}

// Close closes the file (without flushing pool frames; see Pool.FlushFile).
func (f *File) Close() error {
	if err := f.f.Close(); err != nil {
		return resource.NewIOError("page close", err)
	}
	return nil
}

// frame is one resident page with its clock state.
type frame struct {
	file  *File
	no    uint32
	data  []byte // len PageSize
	dirty bool
	ref   bool // second-chance bit
}

type frameKey struct {
	file *File
	no   uint32
}

// Pool is a fixed-capacity page cache over any number of files, with
// clock (second-chance) eviction: a miss that finds the pool full
// sweeps the frame ring clearing reference bits and replaces the first
// unreferenced frame, writing it back first when dirty. Frames touched
// since the hand last passed survive — hot pages stay resident while
// cold scans cycle through the rest.
//
// Not safe for concurrent use: the durable store serializes access, as
// the engine's runtime does for statements.
type Pool struct {
	capacity int
	frames   map[frameKey]*frame
	ring     []*frame
	hand     int

	// Met, when non-nil, receives page and pool counters.
	Met *obsv.Metrics
}

// DefaultPoolPages is the default buffer-pool capacity (1 MiB of pages).
const DefaultPoolPages = 256

// NewPool returns an empty pool holding at most capacity pages
// (DefaultPoolPages when capacity <= 0).
func NewPool(capacity int) *Pool {
	if capacity <= 0 {
		capacity = DefaultPoolPages
	}
	return &Pool{capacity: capacity, frames: make(map[frameKey]*frame)}
}

// Capacity returns the pool's frame limit.
func (p *Pool) Capacity() int { return p.capacity }

// Get returns page no of f, reading it from disk on a miss. The
// returned bytes are valid until the next pool operation; callers must
// finish with a page before requesting another.
func (p *Pool) Get(f *File, no uint32) (Page, error) {
	fr, err := p.frame(f, no, true)
	if err != nil {
		return nil, err
	}
	return Page(fr.data), nil
}

// Alloc returns a zero-initialized resident frame for page no of f
// without reading the disk (the page is about to be fully written), and
// marks it dirty.
func (p *Pool) Alloc(f *File, no uint32) (Page, error) {
	fr, err := p.frame(f, no, false)
	if err != nil {
		return nil, err
	}
	InitPage(fr.data)
	fr.dirty = true
	return Page(fr.data), nil
}

// MarkDirty flags page no of f as modified so eviction and FlushFile
// write it back. The page must be resident (returned by Get or Alloc).
func (p *Pool) MarkDirty(f *File, no uint32) {
	if fr, ok := p.frames[frameKey{f, no}]; ok {
		fr.dirty = true
	}
}

func (p *Pool) frame(f *File, no uint32, read bool) (*frame, error) {
	k := frameKey{f, no}
	if fr, ok := p.frames[k]; ok {
		fr.ref = true
		if m := p.Met; m != nil {
			m.PoolHits.Inc()
		}
		return fr, nil
	}
	if m := p.Met; m != nil {
		m.PoolMisses.Inc()
	}
	fr, err := p.victim()
	if err != nil {
		return nil, err
	}
	fr.file, fr.no, fr.dirty, fr.ref = f, no, false, true
	if read {
		if _, err := f.f.ReadAt(fr.data, int64(no)*PageSize); err != nil {
			// Leave the frame unmapped so a failed read is retryable.
			fr.file = nil
			return nil, resource.NewIOError("page read", err)
		}
		if !Page(fr.data).VerifyChecksum() {
			fr.file = nil
			if m := p.Met; m != nil {
				m.PageCRCErrors.Inc()
			}
			return nil, &CorruptPageError{Path: f.path, Page: no}
		}
		if m := p.Met; m != nil {
			m.PageReads.Inc()
		}
	}
	p.frames[k] = fr
	return fr, nil
}

// CorruptPageError reports a page whose stored CRC32C does not match
// its content: the disk returned bytes that were never (completely)
// written. errors.Is matches both resource.ErrCorruptPage and
// resource.ErrIO.
type CorruptPageError struct {
	// Path is the heap file and Page the zero-based page number.
	Path string
	Page uint32
}

func (e *CorruptPageError) Error() string {
	return fmt.Sprintf("storage: %s page %d: %v", e.Path, e.Page, resource.ErrCorruptPage)
}

// Is matches the ErrCorruptPage and ErrIO sentinels.
func (e *CorruptPageError) Is(target error) bool {
	return target == resource.ErrCorruptPage || target == resource.ErrIO
}

// victim produces a free frame: a fresh one below capacity, otherwise
// the clock sweep's choice (flushed first when dirty).
func (p *Pool) victim() (*frame, error) {
	if len(p.ring) < p.capacity {
		fr := &frame{data: make([]byte, PageSize)}
		p.ring = append(p.ring, fr)
		return fr, nil
	}
	for {
		cand := p.ring[p.hand]
		p.hand = (p.hand + 1) % len(p.ring)
		if cand.ref {
			cand.ref = false
			continue
		}
		if cand.dirty {
			if err := p.writeFrame(cand); err != nil {
				return nil, err
			}
		}
		if cand.file != nil {
			delete(p.frames, frameKey{cand.file, cand.no})
			if m := p.Met; m != nil {
				m.PoolEvictions.Inc()
			}
		}
		cand.file = nil
		return cand, nil
	}
}

func (p *Pool) writeFrame(fr *frame) error {
	Page(fr.data).StampChecksum()
	if _, err := fr.file.f.WriteAt(fr.data, int64(fr.no)*PageSize); err != nil {
		return resource.NewIOError("page write", err)
	}
	fr.dirty = false
	if m := p.Met; m != nil {
		m.PageWrites.Inc()
	}
	return nil
}

// FlushFile writes back every dirty resident page of f (without
// fsyncing; the caller syncs the file once afterwards).
func (p *Pool) FlushFile(f *File) error {
	for _, fr := range p.ring {
		if fr.file == f && fr.dirty {
			if err := p.writeFrame(fr); err != nil {
				return err
			}
		}
	}
	return nil
}

// DropFile forgets every resident page of f (dirty pages are discarded;
// flush first to keep them). Used when a file is closed or replaced by
// a checkpoint generation swap.
func (p *Pool) DropFile(f *File) {
	for _, fr := range p.ring {
		if fr.file == f {
			delete(p.frames, frameKey{fr.file, fr.no})
			fr.file = nil
			fr.dirty = false
			fr.ref = false
		}
	}
}
