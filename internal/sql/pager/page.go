// Package pager implements the page layer of the durable storage
// subsystem: fixed-size slotted pages, heap files of row cells, and a
// fixed-capacity buffer pool with clock (second-chance) eviction —
// the same discipline as the engine's statement cache, applied to
// pages instead of programs.
package pager

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// PageSize is the fixed on-disk page size. 4 KiB matches the common
// filesystem block size, so a page write is one block write.
const PageSize = 4096

// Slotted-page layout:
//
//	[0:2]  uint16 slot count
//	[2:4]  uint16 free offset (start of the unused middle)
//	[4:8]  uint32 CRC-32C of the rest of the page (bytes [0:4]+[8:]),
//	       stamped when the pool writes the page out and verified when
//	       it reads the page back — torn writes, bit-rot, and lost
//	       writes (a page of zeroes) all fail the check
//	[8:…]  cells, appended upward from offset 8
//	[…:]   slot directory, growing downward from the page end;
//	       slot i occupies [PageSize-4(i+1) : PageSize-4i] as
//	       (uint16 cell offset, uint16 cell length)
//
// Cells are never deleted in place — the heap is append-only except for
// whole-table truncation, which rewrites files — so there is no
// compaction path.
const pageHeader = 8

const slotSize = 4

// Page is one PageSize-byte slotted page viewed in place.
type Page []byte

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// checksum computes the page CRC over everything except the checksum
// field itself, without copying. An all-zero page (a lost write) does
// not checksum to zero, so it cannot masquerade as valid.
func (p Page) checksum() uint32 {
	c := crc32.Update(0, crcTable, p[0:4])
	return crc32.Update(c, crcTable, p[pageHeader:])
}

// StampChecksum writes the current content hash into the header. The
// pool stamps every page on its way to disk.
func (p Page) StampChecksum() {
	binary.LittleEndian.PutUint32(p[4:8], p.checksum())
}

// VerifyChecksum reports whether the stored hash matches the content.
func (p Page) VerifyChecksum() bool {
	return binary.LittleEndian.Uint32(p[4:8]) == p.checksum()
}

// InitPage formats b (len PageSize) as an empty slotted page.
func InitPage(b []byte) {
	for i := range b {
		b[i] = 0
	}
	binary.LittleEndian.PutUint16(b[2:4], pageHeader)
}

// NumSlots returns the number of cells on the page.
func (p Page) NumSlots() int { return int(binary.LittleEndian.Uint16(p[0:2])) }

func (p Page) freeOff() int { return int(binary.LittleEndian.Uint16(p[2:4])) }

// FreeSpace returns the bytes available for one more cell (its slot
// included).
func (p Page) FreeSpace() int {
	free := PageSize - slotSize*p.NumSlots() - p.freeOff() - slotSize
	if free < 0 {
		return 0
	}
	return free
}

// MaxCell is the largest cell payload a single page can hold.
const MaxCell = PageSize - pageHeader - slotSize

// Append places one cell on the page. It reports false when the cell
// does not fit (the caller then moves to a fresh page).
func (p Page) Append(cell []byte) bool {
	if len(cell) > p.FreeSpace() {
		return false
	}
	n := p.NumSlots()
	off := p.freeOff()
	copy(p[off:], cell)
	slot := PageSize - slotSize*(n+1)
	binary.LittleEndian.PutUint16(p[slot:slot+2], uint16(off))
	binary.LittleEndian.PutUint16(p[slot+2:slot+4], uint16(len(cell)))
	binary.LittleEndian.PutUint16(p[0:2], uint16(n+1))
	binary.LittleEndian.PutUint16(p[2:4], uint16(off+len(cell)))
	return true
}

// Cell returns the i-th cell's bytes, in place (read-only).
func (p Page) Cell(i int) ([]byte, error) {
	if i < 0 || i >= p.NumSlots() {
		return nil, fmt.Errorf("pager: slot %d out of range (have %d)", i, p.NumSlots())
	}
	slot := PageSize - slotSize*(i+1)
	off := int(binary.LittleEndian.Uint16(p[slot : slot+2]))
	l := int(binary.LittleEndian.Uint16(p[slot+2 : slot+4]))
	if off < pageHeader || off+l > PageSize-slotSize*p.NumSlots() {
		return nil, fmt.Errorf("pager: corrupt slot %d (off %d len %d)", i, off, l)
	}
	return p[off : off+l], nil
}
