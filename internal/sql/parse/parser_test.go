package parse

import (
	"strings"
	"testing"

	"minerule/internal/sql/value"
)

func mustSelect(t *testing.T, src string) *Select {
	t.Helper()
	st, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	s, ok := st.(*Select)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *Select", src, st)
	}
	return s
}

func TestSelectBasics(t *testing.T) {
	s := mustSelect(t, "SELECT DISTINCT a, t.b AS x, * FROM t1, t2 AS u WHERE a = 1")
	if !s.Distinct {
		t.Error("DISTINCT not parsed")
	}
	if len(s.Items) != 3 {
		t.Fatalf("items = %d", len(s.Items))
	}
	if s.Items[1].Alias != "x" {
		t.Errorf("alias = %q", s.Items[1].Alias)
	}
	if !s.Items[2].Star {
		t.Error("star item not parsed")
	}
	if len(s.From) != 2 || s.From[1].Alias != "u" {
		t.Errorf("from = %+v", s.From)
	}
	if s.Where == nil {
		t.Error("where missing")
	}
}

func TestImplicitAlias(t *testing.T) {
	s := mustSelect(t, "SELECT a b FROM t u")
	if s.Items[0].Alias != "b" {
		t.Errorf("implicit column alias = %q", s.Items[0].Alias)
	}
	if s.From[0].Alias != "u" {
		t.Errorf("implicit table alias = %q", s.From[0].Alias)
	}
}

func TestQualifiedStar(t *testing.T) {
	s := mustSelect(t, "SELECT Gidsequence.NEXTVAL AS Gid, V.* FROM ValidGroupsView AS V")
	if _, ok := s.Items[0].Expr.(*NextVal); !ok {
		t.Errorf("NEXTVAL parsed as %T", s.Items[0].Expr)
	}
	if s.Items[1].StarQual != "V" {
		t.Errorf("star qual = %q", s.Items[1].StarQual)
	}
}

func TestGroupByHaving(t *testing.T) {
	s := mustSelect(t, "SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2 ORDER BY a DESC")
	if len(s.GroupBy) != 1 || s.Having == nil {
		t.Fatal("group by / having not parsed")
	}
	if len(s.OrderBy) != 1 || !s.OrderBy[0].Desc {
		t.Fatal("order by not parsed")
	}
	f, ok := s.Items[1].Expr.(*FuncCall)
	if !ok || !f.Star || f.Name != "COUNT" {
		t.Fatalf("COUNT(*) parsed as %#v", s.Items[1].Expr)
	}
}

func TestPredicates(t *testing.T) {
	s := mustSelect(t, `SELECT a FROM t WHERE a BETWEEN 1 AND 2 AND b NOT IN (1,2) AND c LIKE 'x%' AND d IS NOT NULL AND e IN (SELECT x FROM u) AND NOT EXISTS (SELECT y FROM v)`)
	conj := splitTestConjuncts(s.Where)
	if len(conj) != 6 {
		t.Fatalf("conjuncts = %d", len(conj))
	}
	if _, ok := conj[0].(*BetweenExpr); !ok {
		t.Errorf("between = %T", conj[0])
	}
	in, ok := conj[1].(*InListExpr)
	if !ok || !in.Not || len(in.List) != 2 {
		t.Errorf("in list = %#v", conj[1])
	}
	if _, ok := conj[2].(*LikeExpr); !ok {
		t.Errorf("like = %T", conj[2])
	}
	isn, ok := conj[3].(*IsNullExpr)
	if !ok || !isn.Not {
		t.Errorf("is null = %#v", conj[3])
	}
	if _, ok := conj[4].(*InSubquery); !ok {
		t.Errorf("in subquery = %T", conj[4])
	}
	ne, ok := conj[5].(*NotExpr)
	if !ok {
		t.Fatalf("not exists = %T", conj[5])
	}
	if _, ok := ne.E.(*ExistsExpr); !ok {
		t.Errorf("exists under not = %T", ne.E)
	}
}

func splitTestConjuncts(e Expr) []Expr {
	if b, ok := e.(*BinaryExpr); ok && b.Op == OpAnd {
		return append(splitTestConjuncts(b.L), splitTestConjuncts(b.R)...)
	}
	return []Expr{e}
}

func TestPrecedence(t *testing.T) {
	s := mustSelect(t, "SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3")
	or, ok := s.Where.(*BinaryExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("top = %#v", s.Where)
	}
	and, ok := or.R.(*BinaryExpr)
	if !ok || and.Op != OpAnd {
		t.Fatalf("right of OR = %#v", or.R)
	}
}

func TestArithmeticPrecedence(t *testing.T) {
	st, err := ParseExpr("1 + 2 * 3")
	if err != nil {
		t.Fatal(err)
	}
	add, ok := st.(*BinaryExpr)
	if !ok || add.Op != OpAdd {
		t.Fatalf("top = %#v", st)
	}
	mul, ok := add.R.(*BinaryExpr)
	if !ok || mul.Op != OpMul {
		t.Fatalf("right = %#v", add.R)
	}
}

func TestNegativeLiteralFolding(t *testing.T) {
	e, err := ParseExpr("-5")
	if err != nil {
		t.Fatal(err)
	}
	lit, ok := e.(*Literal)
	if !ok || lit.Val.Int() != -5 {
		t.Fatalf("got %#v", e)
	}
}

func TestDateLiteral(t *testing.T) {
	e, err := ParseExpr("DATE '1995-12-17'")
	if err != nil {
		t.Fatal(err)
	}
	lit, ok := e.(*Literal)
	if !ok || lit.Val.Type() != value.TypeDate {
		t.Fatalf("got %#v", e)
	}
	if lit.Val.String() != "1995-12-17" {
		t.Errorf("date = %s", lit.Val)
	}
}

func TestInsertForms(t *testing.T) {
	st, err := Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
	if err != nil {
		t.Fatal(err)
	}
	ins := st.(*Insert)
	if len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Fatalf("%+v", ins)
	}

	st, err = Parse("INSERT INTO t SELECT a FROM u")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*Insert).Query == nil {
		t.Fatal("query insert not parsed")
	}

	// The appendix's Oracle style: INSERT INTO t (SELECT …).
	st, err = Parse("INSERT INTO CodedSource (SELECT DISTINCT V.Gid, B.Bid FROM Source S, ValidGroups AS V, Bset B WHERE S.cust = V.cust AND S.item = B.item)")
	if err != nil {
		t.Fatal(err)
	}
	ins = st.(*Insert)
	if ins.Query == nil || len(ins.Columns) != 0 {
		t.Fatalf("paren-query insert: %+v", ins)
	}
	if len(ins.Query.From) != 3 {
		t.Fatalf("from = %d", len(ins.Query.From))
	}
}

func TestCreateStatements(t *testing.T) {
	st, err := Parse("CREATE TABLE t (a INTEGER, b VARCHAR(20), c DATE, d FLOAT)")
	if err != nil {
		t.Fatal(err)
	}
	ct := st.(*CreateTable)
	if len(ct.Cols) != 4 {
		t.Fatalf("cols = %d", len(ct.Cols))
	}
	want := []value.Type{value.TypeInt, value.TypeString, value.TypeDate, value.TypeFloat}
	for i, w := range want {
		if ct.Cols[i].Type != w {
			t.Errorf("col %d type = %v, want %v", i, ct.Cols[i].Type, w)
		}
	}

	st, err = Parse("CREATE VIEW v AS (SELECT a FROM t GROUP BY a HAVING COUNT(*) > 1)")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*CreateView).Query == nil {
		t.Fatal("view query missing")
	}

	if _, err = Parse("CREATE SEQUENCE Gidsequence"); err != nil {
		t.Fatal(err)
	}
	if _, err = Parse("DROP TABLE t"); err != nil {
		t.Fatal(err)
	}
	if _, err = Parse("DROP VIEW v"); err != nil {
		t.Fatal(err)
	}
	if _, err = Parse("DROP SEQUENCE s"); err != nil {
		t.Fatal(err)
	}
}

func TestDelete(t *testing.T) {
	st, err := Parse("DELETE FROM t WHERE a = 1")
	if err != nil {
		t.Fatal(err)
	}
	if st.(*Delete).Where == nil {
		t.Fatal("where missing")
	}
}

func TestDerivedTable(t *testing.T) {
	s := mustSelect(t, "SELECT COUNT(*) FROM (SELECT DISTINCT cust FROM Source)")
	if s.From[0].Sub == nil {
		t.Fatal("derived table missing")
	}
}

func TestParseScript(t *testing.T) {
	sts, err := ParseScript("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1);; SELECT a FROM t;")
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 3 {
		t.Fatalf("statements = %d", len(sts))
	}
}

func TestErrors(t *testing.T) {
	bad := []string{
		"SELECT",
		"SELECT FROM t",
		"INSERT t VALUES (1)",
		"CREATE TABLE t (a UNKNOWNTYPE)",
		"SELECT a FROM t WHERE a NOT 1",
		"SELECT a FROM t GROUP a",
		"SELECT SUM(*) FROM t",
		"SELECT a FROM t extra garbage ,",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestSQLRoundTrip(t *testing.T) {
	// Rendering then re-parsing must fix the same AST shape; this is what
	// the view mechanism relies on.
	srcs := []string{
		"SELECT DISTINCT a, b FROM t WHERE a = 1 AND b BETWEEN 2 AND 3",
		"SELECT a, COUNT(*) AS n FROM t GROUP BY a HAVING COUNT(*) > 2 ORDER BY n DESC",
		"SELECT s.NEXTVAL AS id, v.* FROM ValidGroupsView AS v",
		"INSERT INTO t (a) SELECT x FROM u WHERE x IN (SELECT y FROM w)",
		"SELECT a FROM t WHERE c LIKE 'x%' OR d IS NULL",
		"CREATE VIEW v AS SELECT a FROM t",
		"DELETE FROM t WHERE a <> 2",
	}
	for _, src := range srcs {
		st1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		rendered := st1.SQL()
		st2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", rendered, err)
		}
		if st1.SQL() != st2.SQL() {
			t.Errorf("round trip changed:\n  %s\n  %s", st1.SQL(), st2.SQL())
		}
	}
}

func TestWalkAndHelpers(t *testing.T) {
	e, err := ParseExpr("a + COUNT(b) > SUM(c) AND t.d = 1")
	if err != nil {
		t.Fatal(err)
	}
	refs := ColumnRefs(e)
	names := make([]string, len(refs))
	for i, r := range refs {
		names[i] = r.SQL()
	}
	got := strings.Join(names, ",")
	if got != "a,b,c,t.d" {
		t.Errorf("refs = %s", got)
	}
	if !HasAggregate(e) {
		t.Error("HasAggregate = false")
	}
	e2, _ := ParseExpr("a + b")
	if HasAggregate(e2) {
		t.Error("HasAggregate on plain expr")
	}
}

func TestDepthLimit(t *testing.T) {
	deep := strings.Repeat("(", 500) + "1" + strings.Repeat(")", 500)
	if _, err := ParseExpr(deep); err == nil {
		t.Fatal("500-deep nesting accepted")
	} else if !strings.Contains(err.Error(), "nests deeper") {
		t.Fatalf("wrong error: %v", err)
	}
	// Reasonable nesting still parses.
	ok := strings.Repeat("(", 50) + "1" + strings.Repeat(")", 50)
	if _, err := ParseExpr(ok); err != nil {
		t.Fatalf("50-deep nesting rejected: %v", err)
	}
	// Depth resets between statements.
	if _, err := Parse("SELECT " + ok); err != nil {
		t.Fatalf("fresh parse after deep failure: %v", err)
	}
}
