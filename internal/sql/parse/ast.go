// Package parse defines the SQL abstract syntax tree and the recursive
// descent parser producing it. The dialect is the SQL92 subset used by
// the paper's Appendix-A programs: SELECT (DISTINCT, joins, GROUP BY,
// HAVING, aggregates, subqueries, ORDER BY), INSERT…VALUES/SELECT,
// DELETE, CREATE/DROP TABLE, CREATE/DROP VIEW, CREATE/DROP SEQUENCE,
// and Oracle's sequence NEXTVAL pseudo-column.
package parse

import (
	"fmt"
	"strings"

	"minerule/internal/sql/value"
)

// quoteIdent renders an identifier so that the parser reads it back:
// plain identifiers verbatim, anything else in double quotes. Double
// quotes inside delimited identifiers cannot be represented and render
// as a plain quote pair (the lexer rejects them on re-parse, surfacing
// the unsupported name instead of corrupting it silently).
func quoteIdent(s string) string {
	plain := s != ""
	for i, r := range s {
		switch {
		case r == '_' || r >= 'a' && r <= 'z' || r >= 'A' && r <= 'Z':
		case i > 0 && (r >= '0' && r <= '9' || r == '$' || r == '#'):
		default:
			plain = false
		}
		if !plain {
			break
		}
	}
	if plain && !quotedKeywords[strings.ToLower(s)] {
		return s
	}
	return "\"" + s + "\""
}

// quotedKeywords forces quoting of identifiers that would read as
// reserved words.
var quotedKeywords = map[string]bool{
	"select": true, "from": true, "where": true, "group": true,
	"having": true, "order": true, "union": true, "except": true,
	"intersect": true, "join": true, "left": true, "inner": true,
	"outer": true, "case": true, "when": true, "then": true,
	"else": true, "end": true, "and": true, "or": true, "not": true,
}

// Node is implemented by every AST node.
type Node interface {
	// SQL renders the node back to parseable SQL text; round-tripping is
	// used by the view mechanism and by the MINE RULE translator, which
	// splices user expressions into generated queries.
	SQL() string
}

// Statement is any top-level SQL statement.
type Statement interface {
	Node
	stmt()
}

// Expr is any scalar or boolean expression.
type Expr interface {
	Node
	expr()
}

// Positioned is implemented by nodes that carry a source position: the
// byte offset of the node's first token in the statement text. Offsets
// convert to line/column with lex.Position. Nodes built programmatically
// (the MINE RULE translator, view expansion) leave the offset at 0,
// which renders as line 1, column 1.
type Positioned interface {
	SrcPos() int
}

// ---------------------------------------------------------------------------
// Expressions

// ColumnRef references a column, optionally qualified: "t.a" or "a".
type ColumnRef struct {
	Qual string
	Name string
	Pos  int
}

// Literal is a constant value.
type Literal struct {
	Val value.Value
	Pos int
}

// BinaryOp enumerates binary operators.
type BinaryOp int

// Binary operators in increasing precedence groups.
const (
	OpOr BinaryOp = iota
	OpAnd
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
	OpAdd
	OpSub
	OpMul
	OpDiv
	OpConcat
)

func (o BinaryOp) String() string {
	switch o {
	case OpOr:
		return "OR"
	case OpAnd:
		return "AND"
	case OpEq:
		return "="
	case OpNe:
		return "<>"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpConcat:
		return "||"
	default:
		return "?"
	}
}

// Comparison reports whether the operator is a comparison predicate.
func (o BinaryOp) Comparison() bool { return o >= OpEq && o <= OpGe }

// BinaryExpr applies a binary operator.
type BinaryExpr struct {
	Op   BinaryOp
	L, R Expr
	Pos  int
}

// NotExpr is logical negation.
type NotExpr struct {
	E   Expr
	Pos int
}

// NegExpr is arithmetic negation.
type NegExpr struct {
	E   Expr
	Pos int
}

// BetweenExpr is "e [NOT] BETWEEN lo AND hi".
type BetweenExpr struct {
	E, Lo, Hi Expr
	Not       bool
	Pos       int
}

// InListExpr is "e [NOT] IN (e1, …, en)".
type InListExpr struct {
	E    Expr
	List []Expr
	Not  bool
	Pos  int
}

// InSubquery is "e [NOT] IN (SELECT …)". The subquery may be
// correlated and must produce exactly one column.
type InSubquery struct {
	E   Expr
	Sub *Select
	Not bool
	Pos int
}

// ExistsExpr is "[NOT] EXISTS (SELECT …)", correlated or not.
type ExistsExpr struct {
	Sub *Select
	Not bool
	Pos int
}

// ScalarSubquery is "(SELECT …)" used as a scalar; the subquery may be
// correlated and must produce one column and at most one row.
type ScalarSubquery struct {
	Sub *Select
	Pos int
}

// IsNullExpr is "e IS [NOT] NULL".
type IsNullExpr struct {
	E   Expr
	Not bool
	Pos int
}

// LikeExpr is "e [NOT] LIKE pattern" with % and _ wildcards.
type LikeExpr struct {
	E, Pattern Expr
	Not        bool
	Pos        int
}

// FuncCall is a function application. Star marks COUNT(*); Distinct marks
// COUNT(DISTINCT e) and friends. Aggregate functions are COUNT, SUM, AVG,
// MIN, MAX; everything else is a scalar function.
type FuncCall struct {
	Name     string // upper-cased
	Args     []Expr
	Star     bool
	Distinct bool
	Pos      int
}

// IsAggregate reports whether the call is one of the five SQL92
// aggregate functions.
func (f *FuncCall) IsAggregate() bool {
	switch f.Name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// NextVal is Oracle's "seq.NEXTVAL" pseudo-column.
type NextVal struct {
	Seq string
	Pos int
}

// CaseWhen is one WHEN…THEN arm of a CASE expression.
type CaseWhen struct {
	When Expr
	Then Expr
}

// CaseExpr is "CASE [operand] WHEN w THEN t … [ELSE e] END". With an
// operand the WHEN values compare for equality; without, each WHEN is a
// boolean condition.
type CaseExpr struct {
	Operand Expr // nil for the searched form
	Whens   []CaseWhen
	Else    Expr // nil → NULL
	Pos     int
}

func (*ColumnRef) expr()      {}
func (*Literal) expr()        {}
func (*BinaryExpr) expr()     {}
func (*NotExpr) expr()        {}
func (*NegExpr) expr()        {}
func (*BetweenExpr) expr()    {}
func (*InListExpr) expr()     {}
func (*InSubquery) expr()     {}
func (*ExistsExpr) expr()     {}
func (*ScalarSubquery) expr() {}
func (*IsNullExpr) expr()     {}
func (*LikeExpr) expr()       {}
func (*FuncCall) expr()       {}
func (*NextVal) expr()        {}
func (*CaseExpr) expr()       {}

func (c *ColumnRef) SrcPos() int      { return c.Pos }
func (l *Literal) SrcPos() int        { return l.Pos }
func (b *BinaryExpr) SrcPos() int     { return b.Pos }
func (n *NotExpr) SrcPos() int        { return n.Pos }
func (n *NegExpr) SrcPos() int        { return n.Pos }
func (b *BetweenExpr) SrcPos() int    { return b.Pos }
func (e *InListExpr) SrcPos() int     { return e.Pos }
func (e *InSubquery) SrcPos() int     { return e.Pos }
func (e *ExistsExpr) SrcPos() int     { return e.Pos }
func (e *ScalarSubquery) SrcPos() int { return e.Pos }
func (e *IsNullExpr) SrcPos() int     { return e.Pos }
func (e *LikeExpr) SrcPos() int       { return e.Pos }
func (f *FuncCall) SrcPos() int       { return f.Pos }
func (n *NextVal) SrcPos() int        { return n.Pos }
func (c *CaseExpr) SrcPos() int       { return c.Pos }

// ExprOffset returns the expression's source offset, or 0 when the node
// carries none (every parser-built expression does).
func ExprOffset(e Expr) int {
	if p, ok := e.(Positioned); ok {
		return p.SrcPos()
	}
	return 0
}

// ---------------------------------------------------------------------------
// SELECT

// SelectItem is one element of the projection list: an expression with an
// optional alias, "*", or "qual.*".
type SelectItem struct {
	Expr     Expr
	Alias    string
	Star     bool   // SELECT *
	StarQual string // SELECT t.* (Star is false in this case)
	Pos      int
}

// SrcPos implements Positioned.
func (s *SelectItem) SrcPos() int { return s.Pos }

// JoinKind classifies an explicit JOIN clause.
type JoinKind int

// Join kinds. Plain comma joins in the FROM list do not use these.
const (
	InnerJoin JoinKind = iota
	LeftJoin
)

func (k JoinKind) String() string {
	if k == LeftJoin {
		return "LEFT JOIN"
	}
	return "JOIN"
}

// JoinClause is one "… [LEFT] JOIN table ON cond" attached to a TableRef.
type JoinClause struct {
	Kind  JoinKind
	Right TableRef
	On    Expr
}

// TableRef is one element of the FROM list: a named relation or a derived
// table, with an optional alias, optionally followed by explicit JOIN
// clauses ("a JOIN b ON … LEFT JOIN c ON …").
type TableRef struct {
	Name  string  // table or view name, "" for derived tables
	Sub   *Select // derived table, nil for named relations
	Alias string
	Joins []JoinClause
	Pos   int
}

// SrcPos implements Positioned.
func (t *TableRef) SrcPos() int { return t.Pos }

// OrderItem is one ORDER BY element.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// SetOpKind enumerates the SQL92 set operators.
type SetOpKind int

// The set operators.
const (
	Union SetOpKind = iota
	Except
	Intersect
)

func (k SetOpKind) String() string {
	switch k {
	case Union:
		return "UNION"
	case Except:
		return "EXCEPT"
	case Intersect:
		return "INTERSECT"
	default:
		return "?"
	}
}

// SetOp is one "… UNION [ALL] select" tail clause; ALL is only valid
// for UNION.
type SetOp struct {
	Kind SetOpKind
	All  bool
	Sel  *Select
}

// Select is a query specification. SetOps, when present, combine this
// (leftmost) query with further ones; OrderBy then applies to the
// combined result, per SQL92.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableRef
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	SetOps   []SetOp
	OrderBy  []OrderItem
	// Limit and Offset bound the final result; -1 means absent.
	Limit  int64
	Offset int64
	// Pos is the byte offset of the SELECT keyword.
	Pos int
}

// ---------------------------------------------------------------------------
// Other statements

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name string
	Type value.Type
}

// CreateTable is "CREATE TABLE name (col type, …)".
type CreateTable struct {
	Name string
	Cols []ColumnDef
	Pos  int
}

// DropTable is "DROP TABLE name".
type DropTable struct {
	Name string
	Pos  int
}

// CreateIndex is "CREATE INDEX name ON table (column)": a single-column
// hash index accelerating equality predicates.
type CreateIndex struct {
	Name   string
	Table  string
	Column string
	Pos    int
}

// DropIndex is "DROP INDEX name".
type DropIndex struct {
	Name string
	Pos  int
}

// CreateView is "CREATE VIEW name AS select". Text preserves the SELECT
// source so the view re-plans at each use (paper Q11: CodedSource is a
// non-materialized view of MiningSource).
type CreateView struct {
	Name  string
	Query *Select
	Pos   int
}

// DropView is "DROP VIEW name".
type DropView struct {
	Name string
	Pos  int
}

// CreateSequence is Oracle's "CREATE SEQUENCE name".
type CreateSequence struct {
	Name string
	Pos  int
}

// DropSequence is "DROP SEQUENCE name".
type DropSequence struct {
	Name string
	Pos  int
}

// Insert is "INSERT INTO table [(cols)] VALUES (…), (…)" or
// "INSERT INTO table [(cols)] select".
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	Query   *Select
	Pos     int
}

// Delete is "DELETE FROM table [WHERE cond]".
type Delete struct {
	Table string
	Where Expr
	Pos   int
}

// Assignment is one "col = expr" of an UPDATE.
type Assignment struct {
	Column string
	Value  Expr
	Pos    int
}

// SrcPos implements Positioned.
func (a *Assignment) SrcPos() int { return a.Pos }

// Update is "UPDATE table SET col = expr, … [WHERE cond]".
type Update struct {
	Table string
	Set   []Assignment
	Where Expr
	Pos   int
}

// Explain is "EXPLAIN [ANALYZE] select". The engine interprets rather
// than plans ahead, so EXPLAIN executes the query with the operator
// collector installed and returns the resolved tree with per-node row
// counts; ANALYZE additionally reports per-node wall time.
type Explain struct {
	Analyze bool
	Query   *Select
	Pos     int
}

// Begin is "BEGIN [WORK|TRANSACTION]" / "START TRANSACTION": it opens
// an explicit transaction on the session.
type Begin struct {
	Pos int
}

// Commit is "COMMIT [WORK|TRANSACTION]".
type Commit struct {
	Pos int
}

// Rollback is "ROLLBACK [WORK|TRANSACTION]".
type Rollback struct {
	Pos int
}

func (*Select) stmt()         {}
func (*CreateTable) stmt()    {}
func (*DropTable) stmt()      {}
func (*CreateView) stmt()     {}
func (*DropView) stmt()       {}
func (*CreateSequence) stmt() {}
func (*DropSequence) stmt()   {}
func (*Insert) stmt()         {}
func (*Delete) stmt()         {}
func (*Update) stmt()         {}
func (*CreateIndex) stmt()    {}
func (*DropIndex) stmt()      {}
func (*Explain) stmt()        {}
func (*Begin) stmt()          {}
func (*Commit) stmt()         {}
func (*Rollback) stmt()       {}

func (s *Select) SrcPos() int         { return s.Pos }
func (c *CreateTable) SrcPos() int    { return c.Pos }
func (d *DropTable) SrcPos() int      { return d.Pos }
func (c *CreateView) SrcPos() int     { return c.Pos }
func (d *DropView) SrcPos() int       { return d.Pos }
func (c *CreateSequence) SrcPos() int { return c.Pos }
func (d *DropSequence) SrcPos() int   { return d.Pos }
func (i *Insert) SrcPos() int         { return i.Pos }
func (d *Delete) SrcPos() int         { return d.Pos }
func (u *Update) SrcPos() int         { return u.Pos }
func (c *CreateIndex) SrcPos() int    { return c.Pos }
func (d *DropIndex) SrcPos() int      { return d.Pos }
func (e *Explain) SrcPos() int        { return e.Pos }
func (b *Begin) SrcPos() int          { return b.Pos }
func (c *Commit) SrcPos() int         { return c.Pos }
func (r *Rollback) SrcPos() int       { return r.Pos }

// ---------------------------------------------------------------------------
// SQL rendering (Node.SQL)

func (c *ColumnRef) SQL() string {
	if c.Qual != "" {
		return quoteIdent(c.Qual) + "." + quoteIdent(c.Name)
	}
	return quoteIdent(c.Name)
}

func (l *Literal) SQL() string { return l.Val.SQL() }

func (b *BinaryExpr) SQL() string {
	return "(" + b.L.SQL() + " " + b.Op.String() + " " + b.R.SQL() + ")"
}

func (n *NotExpr) SQL() string { return "(NOT " + n.E.SQL() + ")" }
func (n *NegExpr) SQL() string { return "(- " + n.E.SQL() + ")" }

func (b *BetweenExpr) SQL() string {
	not := ""
	if b.Not {
		not = " NOT"
	}
	return "(" + b.E.SQL() + not + " BETWEEN " + b.Lo.SQL() + " AND " + b.Hi.SQL() + ")"
}

func (e *InListExpr) SQL() string {
	not := ""
	if e.Not {
		not = " NOT"
	}
	parts := make([]string, len(e.List))
	for i, x := range e.List {
		parts[i] = x.SQL()
	}
	return "(" + e.E.SQL() + not + " IN (" + strings.Join(parts, ", ") + "))"
}

func (e *InSubquery) SQL() string {
	not := ""
	if e.Not {
		not = " NOT"
	}
	return "(" + e.E.SQL() + not + " IN (" + e.Sub.SQL() + "))"
}

func (e *ExistsExpr) SQL() string {
	not := ""
	if e.Not {
		not = "NOT "
	}
	return "(" + not + "EXISTS (" + e.Sub.SQL() + "))"
}

func (e *ScalarSubquery) SQL() string { return "(" + e.Sub.SQL() + ")" }

func (e *IsNullExpr) SQL() string {
	not := ""
	if e.Not {
		not = " NOT"
	}
	return "(" + e.E.SQL() + " IS" + not + " NULL)"
}

func (e *LikeExpr) SQL() string {
	not := ""
	if e.Not {
		not = " NOT"
	}
	return "(" + e.E.SQL() + not + " LIKE " + e.Pattern.SQL() + ")"
}

func (f *FuncCall) SQL() string {
	if f.Star {
		return f.Name + "(*)"
	}
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.SQL()
	}
	d := ""
	if f.Distinct {
		d = "DISTINCT "
	}
	return f.Name + "(" + d + strings.Join(parts, ", ") + ")"
}

func (n *NextVal) SQL() string { return quoteIdent(n.Seq) + ".NEXTVAL" }

func (c *CaseExpr) SQL() string {
	var b strings.Builder
	b.WriteString("CASE")
	if c.Operand != nil {
		b.WriteString(" " + c.Operand.SQL())
	}
	for _, w := range c.Whens {
		b.WriteString(" WHEN " + w.When.SQL() + " THEN " + w.Then.SQL())
	}
	if c.Else != nil {
		b.WriteString(" ELSE " + c.Else.SQL())
	}
	b.WriteString(" END")
	return b.String()
}

func (s *Select) SQL() string {
	var b strings.Builder
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		switch {
		case it.Star:
			b.WriteByte('*')
		case it.StarQual != "":
			b.WriteString(quoteIdent(it.StarQual) + ".*")
		default:
			b.WriteString(it.Expr.SQL())
			if it.Alias != "" {
				b.WriteString(" AS " + quoteIdent(it.Alias))
			}
		}
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, t := range s.From {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(tableRefSQL(t))
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE " + s.Where.SQL())
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(g.SQL())
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING " + s.Having.SQL())
	}
	for _, op := range s.SetOps {
		b.WriteString(" " + op.Kind.String())
		if op.All {
			b.WriteString(" ALL")
		}
		b.WriteString(" " + op.Sel.SQL())
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(o.Expr.SQL())
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&b, " LIMIT %d", s.Limit)
	}
	if s.Offset > 0 {
		fmt.Fprintf(&b, " OFFSET %d", s.Offset)
	}
	return b.String()
}

func tableRefSQL(t TableRef) string {
	var b strings.Builder
	if t.Sub != nil {
		b.WriteString("(" + t.Sub.SQL() + ")")
	} else {
		b.WriteString(quoteIdent(t.Name))
	}
	if t.Alias != "" {
		b.WriteString(" AS " + quoteIdent(t.Alias))
	}
	for _, j := range t.Joins {
		b.WriteString(" " + j.Kind.String() + " " + tableRefSQL(j.Right) + " ON " + j.On.SQL())
	}
	return b.String()
}

func (c *CreateTable) SQL() string {
	parts := make([]string, len(c.Cols))
	for i, col := range c.Cols {
		parts[i] = quoteIdent(col.Name) + " " + typeSQL(col.Type)
	}
	return "CREATE TABLE " + quoteIdent(c.Name) + " (" + strings.Join(parts, ", ") + ")"
}

func typeSQL(t value.Type) string {
	switch t {
	case value.TypeInt:
		return "INTEGER"
	case value.TypeFloat:
		return "FLOAT"
	case value.TypeString:
		return "VARCHAR"
	case value.TypeDate:
		return "DATE"
	case value.TypeBool:
		return "BOOLEAN"
	default:
		return t.String()
	}
}

func (d *DropTable) SQL() string { return "DROP TABLE " + quoteIdent(d.Name) }

func (c *CreateIndex) SQL() string {
	return "CREATE INDEX " + quoteIdent(c.Name) + " ON " + quoteIdent(c.Table) + " (" + quoteIdent(c.Column) + ")"
}

func (d *DropIndex) SQL() string { return "DROP INDEX " + quoteIdent(d.Name) }
func (c *CreateView) SQL() string {
	return "CREATE VIEW " + quoteIdent(c.Name) + " AS " + c.Query.SQL()
}
func (d *DropView) SQL() string       { return "DROP VIEW " + quoteIdent(d.Name) }
func (c *CreateSequence) SQL() string { return "CREATE SEQUENCE " + quoteIdent(c.Name) }
func (d *DropSequence) SQL() string   { return "DROP SEQUENCE " + quoteIdent(d.Name) }

func (i *Insert) SQL() string {
	var b strings.Builder
	b.WriteString("INSERT INTO " + quoteIdent(i.Table))
	if len(i.Columns) > 0 {
		cols := make([]string, len(i.Columns))
		for j, c := range i.Columns {
			cols[j] = quoteIdent(c)
		}
		b.WriteString(" (" + strings.Join(cols, ", ") + ")")
	}
	if i.Query != nil {
		b.WriteString(" " + i.Query.SQL())
		return b.String()
	}
	b.WriteString(" VALUES ")
	for r, row := range i.Rows {
		if r > 0 {
			b.WriteString(", ")
		}
		parts := make([]string, len(row))
		for j, e := range row {
			parts[j] = e.SQL()
		}
		b.WriteString("(" + strings.Join(parts, ", ") + ")")
	}
	return b.String()
}

func (d *Delete) SQL() string {
	s := "DELETE FROM " + quoteIdent(d.Table)
	if d.Where != nil {
		s += " WHERE " + d.Where.SQL()
	}
	return s
}

func (e *Explain) SQL() string {
	s := "EXPLAIN "
	if e.Analyze {
		s += "ANALYZE "
	}
	return s + e.Query.SQL()
}
func (b *Begin) SQL() string    { return "BEGIN" }
func (c *Commit) SQL() string   { return "COMMIT" }
func (r *Rollback) SQL() string { return "ROLLBACK" }

func (u *Update) SQL() string {
	parts := make([]string, len(u.Set))
	for i, a := range u.Set {
		parts[i] = quoteIdent(a.Column) + " = " + a.Value.SQL()
	}
	s := "UPDATE " + quoteIdent(u.Table) + " SET " + strings.Join(parts, ", ")
	if u.Where != nil {
		s += " WHERE " + u.Where.SQL()
	}
	return s
}

// ---------------------------------------------------------------------------
// Expression tree utilities used by the binder and the MINE RULE
// translator.

// WalkExprs calls fn for every expression node in e, stopping early when
// fn returns false (children of a rejected node are still skipped).
func WalkExprs(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *BinaryExpr:
		WalkExprs(x.L, fn)
		WalkExprs(x.R, fn)
	case *NotExpr:
		WalkExprs(x.E, fn)
	case *NegExpr:
		WalkExprs(x.E, fn)
	case *BetweenExpr:
		WalkExprs(x.E, fn)
		WalkExprs(x.Lo, fn)
		WalkExprs(x.Hi, fn)
	case *InListExpr:
		WalkExprs(x.E, fn)
		for _, y := range x.List {
			WalkExprs(y, fn)
		}
	case *InSubquery:
		WalkExprs(x.E, fn)
	case *IsNullExpr:
		WalkExprs(x.E, fn)
	case *LikeExpr:
		WalkExprs(x.E, fn)
		WalkExprs(x.Pattern, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExprs(a, fn)
		}
	case *CaseExpr:
		WalkExprs(x.Operand, fn)
		for _, w := range x.Whens {
			WalkExprs(w.When, fn)
			WalkExprs(w.Then, fn)
		}
		WalkExprs(x.Else, fn)
	}
}

// ColumnRefs returns every column reference in the expression, in
// traversal order (subqueries are not descended into).
func ColumnRefs(e Expr) []*ColumnRef {
	var out []*ColumnRef
	WalkExprs(e, func(x Expr) bool {
		if c, ok := x.(*ColumnRef); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// HasAggregate reports whether the expression contains an aggregate
// function call (subqueries are not descended into).
func HasAggregate(e Expr) bool {
	found := false
	WalkExprs(e, func(x Expr) bool {
		if f, ok := x.(*FuncCall); ok && f.IsAggregate() {
			found = true
			return false
		}
		return true
	})
	return found
}
