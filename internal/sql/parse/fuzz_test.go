package parse

import (
	"testing"

	"minerule/internal/sql/lex"
)

// FuzzParse checks the parser never panics, and that anything it
// accepts renders back to SQL it accepts again (the view mechanism's
// contract). Run with: go test -fuzz FuzzParse ./internal/sql/parse
func FuzzParse(f *testing.F) {
	seeds := []string{
		"SELECT 1",
		"SELECT DISTINCT a, b AS x FROM t, u WHERE a = 1 AND b BETWEEN 2 AND 3 ORDER BY x DESC",
		"SELECT a, COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 2",
		"SELECT s.NEXTVAL, v.* FROM view_name AS v",
		"INSERT INTO t (a, b) VALUES (1, 'x''y'), (NULL, 'z')",
		"INSERT INTO t (SELECT DISTINCT a FROM u WHERE a IN (SELECT b FROM w))",
		"CREATE TABLE t (a INTEGER, b VARCHAR(10), c DATE)",
		"CREATE VIEW v AS SELECT a FROM t UNION SELECT b FROM u",
		"UPDATE t SET a = CASE WHEN b > 0 THEN 1 ELSE -1 END WHERE c IS NOT NULL",
		"DELETE FROM t WHERE a LIKE 'x%' OR b NOT IN (1, 2)",
		"SELECT a FROM t JOIN u ON t.x = u.y LEFT JOIN w ON u.y = w.z LIMIT 5 OFFSET 2",
		"SELECT CASE a WHEN 1 THEN 'x' END FROM t EXCEPT SELECT b FROM u",
		"SELECT * FROM (SELECT a FROM t INTERSECT SELECT a FROM u) d WHERE EXISTS (SELECT 1)",
		"SELECT -a + 2 * (b - 3) / 4 || 'tail' FROM t",
		"SELECT DATE '1995-12-17' FROM t",
		"CREATE SEQUENCE s; DROP SEQUENCE s; DROP VIEW v; DROP TABLE t",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		sts, err := ParseScript(src)
		if err != nil {
			return
		}
		for _, st := range sts {
			rendered := st.SQL()
			st2, err := Parse(rendered)
			if err != nil {
				t.Fatalf("accepted %q but rejected its rendering %q: %v", src, rendered, err)
			}
			if st2.SQL() != rendered {
				t.Fatalf("rendering not a fixpoint:\n  %s\n  %s", rendered, st2.SQL())
			}
		}
	})
}

// FuzzLex checks the lexer never panics and that token positions stay
// within bounds and non-decreasing.
func FuzzLex(f *testing.F) {
	for _, s := range []string{"", "a 1 'x' \"q\" <= .. -- c\n/* b */", "1..n item AS BODY", "'unterminated"} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lex.Lex(src)
		if err != nil {
			return
		}
		prev := -1
		for _, tok := range toks {
			if tok.Pos < prev || tok.Pos > len(src) {
				t.Fatalf("position %d out of order (prev %d, len %d)", tok.Pos, prev, len(src))
			}
			prev = tok.Pos
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != lex.EOF {
			t.Fatal("missing EOF token")
		}
	})
}
