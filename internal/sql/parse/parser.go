package parse

import (
	"fmt"
	"strconv"
	"strings"

	"minerule/internal/sql/lex"
	"minerule/internal/sql/value"
)

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(";")
	if !p.atEOF() {
		return nil, p.errf("unexpected %s after statement", p.peek())
	}
	return st, nil
}

// ParseScript parses a semicolon-separated sequence of statements.
func ParseScript(src string) ([]Statement, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var out []Statement
	for !p.atEOF() {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.accept(";") && !p.atEOF() {
			return nil, p.errf("expected ';' between statements, got %s", p.peek())
		}
		for p.accept(";") {
		}
	}
	return out, nil
}

// ParseExpr parses a standalone expression (used by the MINE RULE
// translator for conditions embedded in the operator).
func ParseExpr(src string) (Expr, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected %s after expression", p.peek())
	}
	return e, nil
}

// maxDepth bounds expression and query nesting so pathological inputs
// fail with an error instead of exhausting the stack.
const maxDepth = 200

// parser is a hand-written recursive descent parser over the token list.
type parser struct {
	toks  []lex.Token
	pos   int
	src   string
	depth int
}

// enter tracks recursion depth; callers must pair it with leave.
func (p *parser) enter() error {
	p.depth++
	if p.depth > maxDepth {
		return fmt.Errorf("parse: statement nests deeper than %d levels", maxDepth)
	}
	return nil
}

func (p *parser) leave() { p.depth-- }

func newParser(src string) (*parser, error) {
	toks, err := lex.Lex(src)
	if err != nil {
		return nil, err
	}
	return &parser{toks: toks, src: src}, nil
}

func (p *parser) peek() lex.Token  { return p.toks[p.pos] }
func (p *parser) next() lex.Token  { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) atEOF() bool      { return p.peek().Kind == lex.EOF }
func (p *parser) save() int        { return p.pos }
func (p *parser) restore(mark int) { p.pos = mark }

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("parse: "+format+" (at offset %d)", append(args, p.peek().Pos)...)
}

// accept consumes the next token when it is the given punctuation.
func (p *parser) accept(punct string) bool {
	if p.peek().IsPunct(punct) {
		p.pos++
		return true
	}
	return false
}

// expect consumes the given punctuation or fails.
func (p *parser) expect(punct string) error {
	if !p.accept(punct) {
		return p.errf("expected %q, got %s", punct, p.peek())
	}
	return nil
}

// acceptKw consumes the next token when it is the given keyword.
func (p *parser) acceptKw(kw string) bool {
	if p.peek().IsKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

// expectKw consumes the given keyword or fails.
func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s, got %s", strings.ToUpper(kw), p.peek())
	}
	return nil
}

// ident consumes an identifier token and returns its text.
func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.Kind != lex.Ident {
		return "", p.errf("expected identifier, got %s", t)
	}
	p.pos++
	return t.Text, nil
}

// reserved lists keywords that terminate an identifier context, so that
// "FROM Source GROUP BY…" does not read GROUP as an alias.
var reserved = map[string]bool{
	"select": true, "from": true, "where": true, "group": true,
	"having": true, "order": true, "insert": true, "values": true,
	"create": true, "drop": true, "delete": true, "as": true, "on": true,
	"and": true, "or": true, "not": true, "in": true, "between": true,
	"like": true, "is": true, "exists": true, "union": true, "by": true,
	"distinct": true, "into": true, "asc": true, "desc": true,
	"except": true, "intersect": true, "update": true, "set": true,
	"case": true, "when": true, "then": true, "else": true, "end": true,
	"limit": true, "offset": true,
	"join": true, "left": true, "inner": true, "outer": true,
}

func isReserved(s string) bool { return reserved[strings.ToLower(s)] }

// ---------------------------------------------------------------------------
// Statements

func (p *parser) statement() (Statement, error) {
	t := p.peek()
	switch {
	case t.IsKeyword("select"):
		return p.selectStmt()
	case t.IsKeyword("insert"):
		return p.insertStmt()
	case t.IsKeyword("delete"):
		return p.deleteStmt()
	case t.IsKeyword("update"):
		return p.updateStmt()
	case t.IsKeyword("create"):
		return p.createStmt()
	case t.IsKeyword("drop"):
		return p.dropStmt()
	case t.IsKeyword("begin"):
		p.next()
		p.acceptKw("work")
		p.acceptKw("transaction")
		return &Begin{Pos: t.Pos}, nil
	case t.IsKeyword("start"):
		p.next()
		if err := p.expectKw("transaction"); err != nil {
			return nil, err
		}
		return &Begin{Pos: t.Pos}, nil
	case t.IsKeyword("commit"):
		p.next()
		p.acceptKw("work")
		p.acceptKw("transaction")
		return &Commit{Pos: t.Pos}, nil
	case t.IsKeyword("rollback"):
		p.next()
		p.acceptKw("work")
		p.acceptKw("transaction")
		return &Rollback{Pos: t.Pos}, nil
	case t.IsKeyword("explain"):
		p.next()
		analyze := p.acceptKw("analyze")
		sel, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		return &Explain{Analyze: analyze, Query: sel, Pos: t.Pos}, nil
	case t.IsPunct("("):
		// Parenthesized SELECT at statement level, as the appendix
		// writes "INSERT INTO t (SELECT …)"-style standalone queries.
		mark := p.save()
		p.next()
		if p.peek().IsKeyword("select") {
			s, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return s, nil
		}
		p.restore(mark)
	}
	return nil, p.errf("expected a statement, got %s", t)
}

// selectStmt parses a full query: a query core, optional set-operation
// tails, and a trailing ORDER BY that applies to the combined result.
func (p *parser) selectStmt() (*Select, error) {
	s, err := p.selectCore()
	if err != nil {
		return nil, err
	}
	for {
		var kind SetOpKind
		switch {
		case p.acceptKw("union"):
			kind = Union
		case p.acceptKw("except"):
			kind = Except
		case p.acceptKw("intersect"):
			kind = Intersect
		default:
			goto orderBy
		}
		all := false
		if p.acceptKw("all") {
			if kind != Union {
				return nil, p.errf("ALL is only supported with UNION")
			}
			all = true
		}
		right, err := p.selectCore()
		if err != nil {
			return nil, err
		}
		s.SetOps = append(s.SetOps, SetOp{Kind: kind, All: all, Sel: right})
	}
orderBy:
	if p.acceptKw("order") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			oi := OrderItem{Expr: e}
			if p.acceptKw("desc") {
				oi.Desc = true
			} else {
				p.acceptKw("asc")
			}
			s.OrderBy = append(s.OrderBy, oi)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKw("limit") {
		n, err := p.uint64Lit()
		if err != nil {
			return nil, err
		}
		s.Limit = n
	}
	if p.acceptKw("offset") {
		n, err := p.uint64Lit()
		if err != nil {
			return nil, err
		}
		s.Offset = n
	}
	return s, nil
}

// uint64Lit consumes a non-negative integer literal.
func (p *parser) uint64Lit() (int64, error) {
	t := p.peek()
	if t.Kind != lex.Number || strings.ContainsAny(t.Text, ".eE") {
		return 0, p.errf("expected integer, got %s", t)
	}
	p.pos++
	n, err := strconv.ParseInt(t.Text, 10, 64)
	if err != nil {
		return 0, p.errf("bad integer %q", t.Text)
	}
	return n, nil
}

// selectCore parses one query specification without set operations or
// ORDER BY. Limit -1 marks "no LIMIT".
func (p *parser) selectCore() (*Select, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	pos := p.peek().Pos
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	s := &Select{Limit: -1, Pos: pos}
	if p.acceptKw("distinct") {
		s.Distinct = true
	} else {
		p.acceptKw("all")
	}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		s.Items = append(s.Items, item)
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKw("from") {
		for {
			tr, err := p.tableRef()
			if err != nil {
				return nil, err
			}
			s.From = append(s.From, tr)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKw("where") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	if p.acceptKw("group") {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.accept(",") {
				break
			}
		}
	}
	if p.acceptKw("having") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Having = e
	}
	return s, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	pos := p.peek().Pos
	if p.accept("*") {
		return SelectItem{Star: true, Pos: pos}, nil
	}
	// "qual.*"
	if p.peek().Kind == lex.Ident && !isReserved(p.peek().Text) {
		mark := p.save()
		q, _ := p.ident()
		if p.accept(".") && p.accept("*") {
			return SelectItem{StarQual: q, Pos: pos}, nil
		}
		p.restore(mark)
	}
	e, err := p.expr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e, Pos: pos}
	if p.acceptKw("as") {
		a, err := p.ident()
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = a
	} else if p.peek().Kind == lex.Ident && !isReserved(p.peek().Text) {
		a, _ := p.ident()
		item.Alias = a
	}
	return item, nil
}

// tableRef parses one FROM element with any trailing explicit JOIN
// clauses (left-associative).
func (p *parser) tableRef() (TableRef, error) {
	tr, err := p.tableRefBase()
	if err != nil {
		return tr, err
	}
	for {
		var kind JoinKind
		switch {
		case p.acceptKw("join"):
			kind = InnerJoin
		case p.acceptKw("inner"):
			if err := p.expectKw("join"); err != nil {
				return tr, err
			}
			kind = InnerJoin
		case p.acceptKw("left"):
			p.acceptKw("outer")
			if err := p.expectKw("join"); err != nil {
				return tr, err
			}
			kind = LeftJoin
		default:
			return tr, nil
		}
		right, err := p.tableRefBase()
		if err != nil {
			return tr, err
		}
		if err := p.expectKw("on"); err != nil {
			return tr, err
		}
		cond, err := p.expr()
		if err != nil {
			return tr, err
		}
		tr.Joins = append(tr.Joins, JoinClause{Kind: kind, Right: right, On: cond})
	}
}

// tableRefBase parses a named or derived table with its alias, without
// JOIN clauses.
func (p *parser) tableRefBase() (TableRef, error) {
	var tr TableRef
	tr.Pos = p.peek().Pos
	if p.accept("(") {
		sub, err := p.selectStmt()
		if err != nil {
			return tr, err
		}
		if err := p.expect(")"); err != nil {
			return tr, err
		}
		tr.Sub = sub
	} else {
		name, err := p.ident()
		if err != nil {
			return tr, err
		}
		tr.Name = name
	}
	if p.acceptKw("as") {
		a, err := p.ident()
		if err != nil {
			return tr, err
		}
		tr.Alias = a
	} else if p.peek().Kind == lex.Ident && !isReserved(p.peek().Text) {
		a, _ := p.ident()
		tr.Alias = a
	}
	return tr, nil
}

func (p *parser) insertStmt() (Statement, error) {
	pos := p.peek().Pos
	if err := p.expectKw("insert"); err != nil {
		return nil, err
	}
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: name, Pos: pos}
	// Optional column list — disambiguate from "INSERT INTO t (SELECT…)".
	if p.peek().IsPunct("(") {
		mark := p.save()
		p.next()
		if p.peek().IsKeyword("select") {
			sub, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			ins.Query = sub
			return ins, nil
		}
		for {
			c, err := p.ident()
			if err != nil {
				p.restore(mark)
				return nil, err
			}
			ins.Columns = append(ins.Columns, c)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
	}
	switch {
	case p.acceptKw("values"):
		for {
			if err := p.expect("("); err != nil {
				return nil, err
			}
			var row []Expr
			for {
				e, err := p.expr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.accept(",") {
					break
				}
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if !p.accept(",") {
				break
			}
		}
	case p.peek().IsKeyword("select"):
		sub, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		ins.Query = sub
	case p.peek().IsPunct("("):
		p.next()
		sub, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		ins.Query = sub
	default:
		return nil, p.errf("expected VALUES or SELECT in INSERT, got %s", p.peek())
	}
	return ins, nil
}

func (p *parser) deleteStmt() (Statement, error) {
	pos := p.peek().Pos
	if err := p.expectKw("delete"); err != nil {
		return nil, err
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	d := &Delete{Table: name, Pos: pos}
	if p.acceptKw("where") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Where = e
	}
	return d, nil
}

func (p *parser) updateStmt() (Statement, error) {
	pos := p.peek().Pos
	if err := p.expectKw("update"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("set"); err != nil {
		return nil, err
	}
	u := &Update{Table: name, Pos: pos}
	for {
		apos := p.peek().Pos
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("="); err != nil {
			return nil, err
		}
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, Assignment{Column: col, Value: e, Pos: apos})
		if !p.accept(",") {
			break
		}
	}
	if p.acceptKw("where") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		u.Where = e
	}
	return u, nil
}

func (p *parser) createStmt() (Statement, error) {
	pos := p.peek().Pos
	if err := p.expectKw("create"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKw("table"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		ct := &CreateTable{Name: name, Pos: pos}
		for {
			cn, err := p.ident()
			if err != nil {
				return nil, err
			}
			tn, err := p.ident()
			if err != nil {
				return nil, err
			}
			typ, err := parseTypeName(tn)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			// Swallow optional length "(n)" after VARCHAR and friends.
			if p.accept("(") {
				if p.peek().Kind != lex.Number {
					return nil, p.errf("expected length, got %s", p.peek())
				}
				p.next()
				if err := p.expect(")"); err != nil {
					return nil, err
				}
			}
			ct.Cols = append(ct.Cols, ColumnDef{Name: cn, Type: typ})
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return ct, nil
	case p.acceptKw("view"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("as"); err != nil {
			return nil, err
		}
		paren := p.accept("(")
		sub, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if paren {
			if err := p.expect(")"); err != nil {
				return nil, err
			}
		}
		return &CreateView{Name: name, Query: sub, Pos: pos}, nil
	case p.acceptKw("sequence"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &CreateSequence{Name: name, Pos: pos}, nil
	case p.acceptKw("index"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("on"); err != nil {
			return nil, err
		}
		table, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect("("); err != nil {
			return nil, err
		}
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &CreateIndex{Name: name, Table: table, Column: col, Pos: pos}, nil
	}
	return nil, p.errf("expected TABLE, VIEW, SEQUENCE or INDEX after CREATE, got %s", p.peek())
}

func (p *parser) dropStmt() (Statement, error) {
	pos := p.peek().Pos
	if err := p.expectKw("drop"); err != nil {
		return nil, err
	}
	switch {
	case p.acceptKw("table"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTable{Name: name, Pos: pos}, nil
	case p.acceptKw("view"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropView{Name: name, Pos: pos}, nil
	case p.acceptKw("sequence"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropSequence{Name: name, Pos: pos}, nil
	case p.acceptKw("index"):
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropIndex{Name: name, Pos: pos}, nil
	}
	return nil, p.errf("expected TABLE, VIEW, SEQUENCE or INDEX after DROP, got %s", p.peek())
}

func parseTypeName(name string) (value.Type, error) {
	switch strings.ToUpper(name) {
	case "INT", "INTEGER", "SMALLINT", "BIGINT", "NUMBER":
		return value.TypeInt, nil
	case "FLOAT", "REAL", "DOUBLE", "DECIMAL", "NUMERIC":
		return value.TypeFloat, nil
	case "VARCHAR", "CHAR", "TEXT", "STRING", "VARCHAR2":
		return value.TypeString, nil
	case "DATE":
		return value.TypeDate, nil
	case "BOOLEAN", "BOOL":
		return value.TypeBool, nil
	default:
		return value.TypeNull, fmt.Errorf("parse: unknown type %q", name)
	}
}

// ---------------------------------------------------------------------------
// Expressions, precedence climbing: OR < AND < NOT < predicate <
// additive < multiplicative < unary < primary.

func (p *parser) expr() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	return p.orExpr()
}

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("or") {
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpOr, L: l, R: r, Pos: ExprOffset(l)}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.notExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptKw("and") {
		r, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpAnd, L: l, R: r, Pos: ExprOffset(l)}
	}
	return l, nil
}

func (p *parser) notExpr() (Expr, error) {
	pos := p.peek().Pos
	if p.acceptKw("not") {
		e, err := p.notExpr()
		if err != nil {
			return nil, err
		}
		return &NotExpr{E: e, Pos: pos}, nil
	}
	return p.predicate()
}

func (p *parser) predicate() (Expr, error) {
	if p.peek().IsKeyword("exists") {
		pos := p.next().Pos
		if err := p.expect("("); err != nil {
			return nil, err
		}
		sub, err := p.selectStmt()
		if err != nil {
			return nil, err
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &ExistsExpr{Sub: sub, Pos: pos}, nil
	}
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	// Comparison operators.
	for _, cand := range []struct {
		sym string
		op  BinaryOp
	}{{"<=", OpLe}, {">=", OpGe}, {"<>", OpNe}, {"!=", OpNe}, {"=", OpEq}, {"<", OpLt}, {">", OpGt}} {
		if p.accept(cand.sym) {
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: cand.op, L: l, R: r, Pos: ExprOffset(l)}, nil
		}
	}
	not := false
	if p.peek().IsKeyword("not") {
		// Only when followed by BETWEEN / IN / LIKE; bare NOT here is a
		// syntax error anyway.
		p.next()
		not = true
	}
	switch {
	case p.acceptKw("between"):
		lo, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("and"); err != nil {
			return nil, err
		}
		hi, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &BetweenExpr{E: l, Lo: lo, Hi: hi, Not: not, Pos: ExprOffset(l)}, nil
	case p.acceptKw("in"):
		if err := p.expect("("); err != nil {
			return nil, err
		}
		if p.peek().IsKeyword("select") {
			sub, err := p.selectStmt()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return &InSubquery{E: l, Sub: sub, Not: not, Pos: ExprOffset(l)}, nil
		}
		var list []Expr
		for {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return &InListExpr{E: l, List: list, Not: not, Pos: ExprOffset(l)}, nil
	case p.acceptKw("like"):
		pat, err := p.addExpr()
		if err != nil {
			return nil, err
		}
		return &LikeExpr{E: l, Pattern: pat, Not: not, Pos: ExprOffset(l)}, nil
	case p.acceptKw("is"):
		if not {
			return nil, p.errf("NOT before IS")
		}
		isNot := p.acceptKw("not")
		if !p.acceptKw("null") {
			return nil, p.errf("expected NULL after IS")
		}
		return &IsNullExpr{E: l, Not: isNot, Pos: ExprOffset(l)}, nil
	}
	if not {
		return nil, p.errf("expected BETWEEN, IN or LIKE after NOT")
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("+"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: OpAdd, L: l, R: r, Pos: ExprOffset(l)}
		case p.accept("-"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: OpSub, L: l, R: r, Pos: ExprOffset(l)}
		case p.accept("||"):
			r, err := p.mulExpr()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: OpConcat, L: l, R: r, Pos: ExprOffset(l)}
		default:
			return l, nil
		}
	}
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept("*"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: OpMul, L: l, R: r, Pos: ExprOffset(l)}
		case p.accept("/"):
			r, err := p.unaryExpr()
			if err != nil {
				return nil, err
			}
			l = &BinaryExpr{Op: OpDiv, L: l, R: r, Pos: ExprOffset(l)}
		default:
			return l, nil
		}
	}
}

func (p *parser) unaryExpr() (Expr, error) {
	pos := p.peek().Pos
	if p.accept("-") {
		e, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		if lit, ok := e.(*Literal); ok {
			if v, err := value.Neg(lit.Val); err == nil {
				return &Literal{Val: v, Pos: pos}, nil
			}
		}
		return &NegExpr{E: e, Pos: pos}, nil
	}
	p.accept("+")
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.peek()
	switch t.Kind {
	case lex.Number:
		p.next()
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return &Literal{Val: value.NewFloat(f), Pos: t.Pos}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &Literal{Val: value.NewInt(i), Pos: t.Pos}, nil
	case lex.String:
		p.next()
		return &Literal{Val: value.NewString(t.Text), Pos: t.Pos}, nil
	case lex.Punct:
		if t.Text == "(" {
			p.next()
			if p.peek().IsKeyword("select") {
				sub, err := p.selectStmt()
				if err != nil {
					return nil, err
				}
				if err := p.expect(")"); err != nil {
					return nil, err
				}
				return &ScalarSubquery{Sub: sub, Pos: t.Pos}, nil
			}
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case lex.Ident:
		switch {
		case t.IsKeyword("null"):
			p.next()
			return &Literal{Val: value.Null, Pos: t.Pos}, nil
		case t.IsKeyword("true"):
			p.next()
			return &Literal{Val: value.NewBool(true), Pos: t.Pos}, nil
		case t.IsKeyword("false"):
			p.next()
			return &Literal{Val: value.NewBool(false), Pos: t.Pos}, nil
		case t.IsKeyword("case"):
			return p.caseExpr()
		case t.IsKeyword("date"):
			// DATE 'YYYY-MM-DD' literal.
			mark := p.save()
			p.next()
			if p.peek().Kind == lex.String {
				s := p.next().Text
				v, err := value.ParseDate(s)
				if err != nil {
					return nil, p.errf("%v", err)
				}
				return &Literal{Val: v, Pos: t.Pos}, nil
			}
			p.restore(mark)
		}
		if isReserved(t.Text) {
			return nil, p.errf("expected expression, got reserved word %s", t)
		}
		return p.identExpr()
	}
	return nil, p.errf("expected expression, got %s", t)
}

// caseExpr parses both CASE forms (searched and with operand).
func (p *parser) caseExpr() (Expr, error) {
	pos := p.peek().Pos
	if err := p.expectKw("case"); err != nil {
		return nil, err
	}
	c := &CaseExpr{Pos: pos}
	if !p.peek().IsKeyword("when") {
		op, err := p.expr()
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKw("when") {
		w, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("then"); err != nil {
			return nil, err
		}
		t, err := p.expr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{When: w, Then: t})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE needs at least one WHEN")
	}
	if p.acceptKw("else") {
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("end"); err != nil {
		return nil, err
	}
	return c, nil
}

// identExpr parses identifier-led expressions: column references
// (qualified or not), function calls, and seq.NEXTVAL.
func (p *parser) identExpr() (Expr, error) {
	pos := p.peek().Pos
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	// Function call.
	if p.peek().IsPunct("(") {
		p.next()
		f := &FuncCall{Name: strings.ToUpper(name), Pos: pos}
		if p.accept("*") {
			f.Star = true
			if err := p.expect(")"); err != nil {
				return nil, err
			}
			if f.Name != "COUNT" {
				return nil, p.errf("%s(*) is only valid for COUNT", f.Name)
			}
			return f, nil
		}
		if p.accept(")") {
			return f, nil
		}
		if p.acceptKw("distinct") {
			f.Distinct = true
		}
		for {
			a, err := p.expr()
			if err != nil {
				return nil, err
			}
			f.Args = append(f.Args, a)
			if !p.accept(",") {
				break
			}
		}
		if err := p.expect(")"); err != nil {
			return nil, err
		}
		return f, nil
	}
	// Qualified name: "t.col" or "seq.NEXTVAL".
	if p.accept(".") {
		sub, err := p.ident()
		if err != nil {
			return nil, err
		}
		if strings.EqualFold(sub, "nextval") {
			return &NextVal{Seq: name, Pos: pos}, nil
		}
		return &ColumnRef{Qual: name, Name: sub, Pos: pos}, nil
	}
	return &ColumnRef{Name: name, Pos: pos}, nil
}
