package exec

// PosError attaches the byte offset of the AST node a runtime
// resolution error refers to (an unknown column, table, sequence or
// function, or a misplaced aggregate). It renders identically to the
// wrapped error — the position is side-channel data for callers like
// the engine, which translates the offset to a line/column suffix on
// the statement text it holds. Most such failures are caught earlier by
// the prepare-time checker (internal/sql/semck); this covers statements
// built programmatically and any path that bypasses prepare.
type PosError struct {
	Err error
	Off int
}

func (e *PosError) Error() string { return e.Err.Error() }

func (e *PosError) Unwrap() error { return e.Err }
