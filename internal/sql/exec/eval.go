// Package exec evaluates SQL statements against a storage.Catalog. It is
// a straightforward volcano-style executor specialized for the workload
// the paper's translator generates: scans, equi-joins (hash), grouping
// with aggregates, DISTINCT and subqueries.
package exec

import (
	"fmt"
	"math"
	"strings"

	"minerule/internal/sql/parse"
	"minerule/internal/sql/schema"
	"minerule/internal/sql/value"
)

// evalFunc computes an expression over one input row.
type evalFunc func(row schema.Row) (value.Value, error)

// outerRef links a subquery's compilation environment to the enclosing
// query's schema and current row, enabling correlated references. The
// chain extends through nested subqueries via parent.
type outerRef struct {
	schema *schema.Schema
	row    *schema.Row // written before each subquery evaluation
	parent *outerRef
}

// binding is the compilation environment for expressions: the input
// schema, pre-computed aggregate results (during the grouping stage),
// the runtime for sequences and subqueries, and the enclosing query's
// environment for correlated references.
type binding struct {
	rt     *Runtime
	schema *schema.Schema
	// aggs maps aggregate call nodes to the slot where the grouping
	// stage deposits their per-group value; nil outside grouping.
	aggs map[*parse.FuncCall]int
	// aggRow points at the current group's aggregate values.
	aggRow *[]value.Value
	// outer is the enclosing environment chain (nil at top level).
	outer *outerRef
}

// compile turns an expression into an evalFunc bound to b's schema.
func (b *binding) compile(e parse.Expr) (evalFunc, error) {
	switch x := e.(type) {
	case *parse.Literal:
		v := x.Val
		return func(schema.Row) (value.Value, error) { return v, nil }, nil

	case *parse.ColumnRef:
		idx, err := b.schema.Resolve(x.Qual, x.Name)
		if err != nil {
			// Correlated reference: fall back to the enclosing query's
			// row, innermost scope first.
			for o := b.outer; o != nil; o = o.parent {
				if oidx, oerr := o.schema.Resolve(x.Qual, x.Name); oerr == nil {
					holder := o.row
					return func(schema.Row) (value.Value, error) {
						return (*holder)[oidx], nil
					}, nil
				}
			}
			return nil, &PosError{Err: err, Off: x.Pos}
		}
		return func(row schema.Row) (value.Value, error) { return row[idx], nil }, nil

	case *parse.NextVal:
		seq, ok := b.rt.tv().Sequence(x.Seq)
		if !ok {
			return nil, &PosError{Err: fmt.Errorf("exec: unknown sequence %q", x.Seq), Off: x.Pos}
		}
		return func(schema.Row) (value.Value, error) {
			return value.NewInt(seq.NextVal()), nil
		}, nil

	case *parse.NegExpr:
		sub, err := b.compile(x.E)
		if err != nil {
			return nil, err
		}
		return func(row schema.Row) (value.Value, error) {
			v, err := sub(row)
			if err != nil {
				return value.Null, err
			}
			return value.Neg(v)
		}, nil

	case *parse.NotExpr:
		sub, err := b.compile(x.E)
		if err != nil {
			return nil, err
		}
		return func(row schema.Row) (value.Value, error) {
			v, err := sub(row)
			if err != nil {
				return value.Null, err
			}
			t, err := value.TristateFromValue(v)
			if err != nil {
				return value.Null, err
			}
			return t.Not().Value(), nil
		}, nil

	case *parse.BinaryExpr:
		return b.compileBinary(x)

	case *parse.BetweenExpr:
		// e BETWEEN lo AND hi  ≡  e >= lo AND e <= hi.
		ef, err := b.compile(x.E)
		if err != nil {
			return nil, err
		}
		lof, err := b.compile(x.Lo)
		if err != nil {
			return nil, err
		}
		hif, err := b.compile(x.Hi)
		if err != nil {
			return nil, err
		}
		return func(row schema.Row) (value.Value, error) {
			v, err := ef(row)
			if err != nil {
				return value.Null, err
			}
			lo, err := lof(row)
			if err != nil {
				return value.Null, err
			}
			hi, err := hif(row)
			if err != nil {
				return value.Null, err
			}
			a, err := compareTri(v, lo, parse.OpGe)
			if err != nil {
				return value.Null, err
			}
			c, err := compareTri(v, hi, parse.OpLe)
			if err != nil {
				return value.Null, err
			}
			t := a.And(c)
			if x.Not {
				t = t.Not()
			}
			return t.Value(), nil
		}, nil

	case *parse.InListExpr:
		ef, err := b.compile(x.E)
		if err != nil {
			return nil, err
		}
		fns := make([]evalFunc, len(x.List))
		for i, le := range x.List {
			fns[i], err = b.compile(le)
			if err != nil {
				return nil, err
			}
		}
		return func(row schema.Row) (value.Value, error) {
			v, err := ef(row)
			if err != nil {
				return value.Null, err
			}
			res := value.False
			for _, fn := range fns {
				lv, err := fn(row)
				if err != nil {
					return value.Null, err
				}
				t, err := compareTri(v, lv, parse.OpEq)
				if err != nil {
					return value.Null, err
				}
				res = res.Or(t)
				if res == value.True {
					break
				}
			}
			if x.Not {
				res = res.Not()
			}
			return res.Value(), nil
		}, nil

	case *parse.InSubquery:
		ef, err := b.compile(x.E)
		if err != nil {
			return nil, err
		}
		sub := b.subqueryEval(x.Sub, 1)
		return func(row schema.Row) (value.Value, error) {
			v, err := ef(row)
			if err != nil {
				return value.Null, err
			}
			rows, err := sub(row)
			if err != nil {
				return value.Null, err
			}
			res := value.False
			for _, r := range rows {
				t, err := compareTri(v, r[0], parse.OpEq)
				if err != nil {
					return value.Null, err
				}
				res = res.Or(t)
				if res == value.True {
					break
				}
			}
			if x.Not {
				res = res.Not()
			}
			return res.Value(), nil
		}, nil

	case *parse.ExistsExpr:
		sub := b.subqueryEval(x.Sub, 0)
		return func(row schema.Row) (value.Value, error) {
			rows, err := sub(row)
			if err != nil {
				return value.Null, err
			}
			return value.NewBool((len(rows) > 0) != x.Not), nil
		}, nil

	case *parse.ScalarSubquery:
		sub := b.subqueryEval(x.Sub, 1)
		return func(row schema.Row) (value.Value, error) {
			rows, err := sub(row)
			if err != nil {
				return value.Null, err
			}
			switch len(rows) {
			case 0:
				return value.Null, nil
			case 1:
				return rows[0][0], nil
			default:
				return value.Null, fmt.Errorf("exec: scalar subquery returned %d rows", len(rows))
			}
		}, nil

	case *parse.IsNullExpr:
		sub, err := b.compile(x.E)
		if err != nil {
			return nil, err
		}
		return func(row schema.Row) (value.Value, error) {
			v, err := sub(row)
			if err != nil {
				return value.Null, err
			}
			return value.NewBool(v.IsNull() != x.Not), nil
		}, nil

	case *parse.LikeExpr:
		ef, err := b.compile(x.E)
		if err != nil {
			return nil, err
		}
		pf, err := b.compile(x.Pattern)
		if err != nil {
			return nil, err
		}
		return func(row schema.Row) (value.Value, error) {
			v, err := ef(row)
			if err != nil {
				return value.Null, err
			}
			p, err := pf(row)
			if err != nil {
				return value.Null, err
			}
			if v.IsNull() || p.IsNull() {
				return value.Null, nil
			}
			if v.Type() != value.TypeString || p.Type() != value.TypeString {
				return value.Null, fmt.Errorf("exec: LIKE requires strings")
			}
			m := likeMatch(v.Str(), p.Str())
			return value.NewBool(m != x.Not), nil
		}, nil

	case *parse.CaseExpr:
		return b.compileCase(x)

	case *parse.FuncCall:
		if x.IsAggregate() {
			if b.aggs == nil {
				return nil, &PosError{Err: fmt.Errorf("exec: aggregate %s outside GROUP BY context", x.Name), Off: x.Pos}
			}
			slot, ok := b.aggs[x]
			if !ok {
				return nil, fmt.Errorf("exec: unregistered aggregate %s", x.Name)
			}
			aggRow := b.aggRow
			return func(schema.Row) (value.Value, error) {
				return (*aggRow)[slot], nil
			}, nil
		}
		return b.compileScalarFunc(x)
	}
	return nil, fmt.Errorf("exec: cannot compile %T", e)
}

// compileCase handles both CASE forms. With an operand the WHEN values
// compare for equality; UNKNOWN comparisons (NULLs) never match, per
// SQL92.
func (b *binding) compileCase(x *parse.CaseExpr) (evalFunc, error) {
	var opFn evalFunc
	if x.Operand != nil {
		f, err := b.compile(x.Operand)
		if err != nil {
			return nil, err
		}
		opFn = f
	}
	whenFns := make([]evalFunc, len(x.Whens))
	thenFns := make([]evalFunc, len(x.Whens))
	for i, w := range x.Whens {
		wf, err := b.compile(w.When)
		if err != nil {
			return nil, err
		}
		tf, err := b.compile(w.Then)
		if err != nil {
			return nil, err
		}
		whenFns[i], thenFns[i] = wf, tf
	}
	var elseFn evalFunc
	if x.Else != nil {
		f, err := b.compile(x.Else)
		if err != nil {
			return nil, err
		}
		elseFn = f
	}
	return func(row schema.Row) (value.Value, error) {
		var operand value.Value
		if opFn != nil {
			v, err := opFn(row)
			if err != nil {
				return value.Null, err
			}
			operand = v
		}
		for i, wf := range whenFns {
			wv, err := wf(row)
			if err != nil {
				return value.Null, err
			}
			matched := value.False
			if opFn != nil {
				matched, err = compareTri(operand, wv, parse.OpEq)
				if err != nil {
					return value.Null, err
				}
			} else {
				matched, err = value.TristateFromValue(wv)
				if err != nil {
					return value.Null, err
				}
			}
			if matched == value.True {
				return thenFns[i](row)
			}
		}
		if elseFn != nil {
			return elseFn(row)
		}
		return value.Null, nil
	}, nil
}

func (b *binding) compileBinary(x *parse.BinaryExpr) (evalFunc, error) {
	lf, err := b.compile(x.L)
	if err != nil {
		return nil, err
	}
	rf, err := b.compile(x.R)
	if err != nil {
		return nil, err
	}
	op := x.Op
	switch {
	case op == parse.OpAnd || op == parse.OpOr:
		return func(row schema.Row) (value.Value, error) {
			lv, err := lf(row)
			if err != nil {
				return value.Null, err
			}
			lt, err := value.TristateFromValue(lv)
			if err != nil {
				return value.Null, err
			}
			// Short-circuit where three-valued logic allows it.
			if op == parse.OpAnd && lt == value.False {
				return value.NewBool(false), nil
			}
			if op == parse.OpOr && lt == value.True {
				return value.NewBool(true), nil
			}
			rv, err := rf(row)
			if err != nil {
				return value.Null, err
			}
			rt, err := value.TristateFromValue(rv)
			if err != nil {
				return value.Null, err
			}
			if op == parse.OpAnd {
				return lt.And(rt).Value(), nil
			}
			return lt.Or(rt).Value(), nil
		}, nil

	case op.Comparison():
		return func(row schema.Row) (value.Value, error) {
			lv, err := lf(row)
			if err != nil {
				return value.Null, err
			}
			rv, err := rf(row)
			if err != nil {
				return value.Null, err
			}
			t, err := compareTri(lv, rv, op)
			if err != nil {
				return value.Null, err
			}
			return t.Value(), nil
		}, nil

	case op == parse.OpConcat:
		return func(row schema.Row) (value.Value, error) {
			lv, err := lf(row)
			if err != nil {
				return value.Null, err
			}
			rv, err := rf(row)
			if err != nil {
				return value.Null, err
			}
			if lv.IsNull() || rv.IsNull() {
				return value.Null, nil
			}
			return value.NewString(lv.String() + rv.String()), nil
		}, nil

	default: // arithmetic
		var sym byte
		switch op {
		case parse.OpAdd:
			sym = '+'
		case parse.OpSub:
			sym = '-'
		case parse.OpMul:
			sym = '*'
		case parse.OpDiv:
			sym = '/'
		default:
			return nil, fmt.Errorf("exec: unsupported operator %s", op)
		}
		return func(row schema.Row) (value.Value, error) {
			lv, err := lf(row)
			if err != nil {
				return value.Null, err
			}
			rv, err := rf(row)
			if err != nil {
				return value.Null, err
			}
			return value.Arith(sym, lv, rv)
		}, nil
	}
}

// compareTri applies a comparison with NULL → UNKNOWN and lazy
// string↔date coercion, so that 'date >= ”1995-01-01”' works the way
// users of the paper's dialect expect.
func compareTri(a, bv value.Value, op parse.BinaryOp) (value.Tristate, error) {
	if a.IsNull() || bv.IsNull() {
		return value.Unknown, nil
	}
	if a.Type() == value.TypeDate && bv.Type() == value.TypeString {
		c, err := value.Coerce(bv, value.TypeDate)
		if err != nil {
			return value.Unknown, err
		}
		bv = c
	}
	if bv.Type() == value.TypeDate && a.Type() == value.TypeString {
		c, err := value.Coerce(a, value.TypeDate)
		if err != nil {
			return value.Unknown, err
		}
		a = c
	}
	c, err := value.Compare(a, bv)
	if err != nil {
		return value.Unknown, err
	}
	var ok bool
	switch op {
	case parse.OpEq:
		ok = c == 0
	case parse.OpNe:
		ok = c != 0
	case parse.OpLt:
		ok = c < 0
	case parse.OpLe:
		ok = c <= 0
	case parse.OpGt:
		ok = c > 0
	case parse.OpGe:
		ok = c >= 0
	default:
		return value.Unknown, fmt.Errorf("exec: %s is not a comparison", op)
	}
	return value.TristateOf(ok), nil
}

func (b *binding) compileScalarFunc(x *parse.FuncCall) (evalFunc, error) {
	fns := make([]evalFunc, len(x.Args))
	for i, a := range x.Args {
		f, err := b.compile(a)
		if err != nil {
			return nil, err
		}
		fns[i] = f
	}
	need := func(n int) error {
		if len(fns) != n {
			return fmt.Errorf("exec: %s takes %d argument(s), got %d", x.Name, n, len(fns))
		}
		return nil
	}
	evalArgs := func(row schema.Row) ([]value.Value, error) {
		vs := make([]value.Value, len(fns))
		for i, f := range fns {
			v, err := f(row)
			if err != nil {
				return nil, err
			}
			vs[i] = v
		}
		return vs, nil
	}
	switch x.Name {
	case "ABS":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(row schema.Row) (value.Value, error) {
			vs, err := evalArgs(row)
			if err != nil {
				return value.Null, err
			}
			v := vs[0]
			switch {
			case v.IsNull():
				return value.Null, nil
			case v.Type() == value.TypeInt:
				i := v.Int()
				if i < 0 {
					i = -i
				}
				return value.NewInt(i), nil
			case v.Type() == value.TypeFloat:
				f := v.Float()
				if f < 0 {
					f = -f
				}
				return value.NewFloat(f), nil
			}
			return value.Null, fmt.Errorf("exec: ABS on %s", v.Type())
		}, nil
	case "MOD":
		if err := need(2); err != nil {
			return nil, err
		}
		return func(row schema.Row) (value.Value, error) {
			vs, err := evalArgs(row)
			if err != nil {
				return value.Null, err
			}
			if vs[0].IsNull() || vs[1].IsNull() {
				return value.Null, nil
			}
			if vs[0].Type() != value.TypeInt || vs[1].Type() != value.TypeInt {
				return value.Null, fmt.Errorf("exec: MOD requires integers")
			}
			if vs[1].Int() == 0 {
				return value.Null, fmt.Errorf("exec: MOD by zero")
			}
			return value.NewInt(vs[0].Int() % vs[1].Int()), nil
		}, nil
	case "UPPER", "LOWER":
		if err := need(1); err != nil {
			return nil, err
		}
		upper := x.Name == "UPPER"
		return func(row schema.Row) (value.Value, error) {
			vs, err := evalArgs(row)
			if err != nil {
				return value.Null, err
			}
			if vs[0].IsNull() {
				return value.Null, nil
			}
			if vs[0].Type() != value.TypeString {
				return value.Null, fmt.Errorf("exec: %s on %s", x.Name, vs[0].Type())
			}
			s := vs[0].Str()
			if upper {
				return value.NewString(strings.ToUpper(s)), nil
			}
			return value.NewString(strings.ToLower(s)), nil
		}, nil
	case "LENGTH":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(row schema.Row) (value.Value, error) {
			vs, err := evalArgs(row)
			if err != nil {
				return value.Null, err
			}
			if vs[0].IsNull() {
				return value.Null, nil
			}
			if vs[0].Type() != value.TypeString {
				return value.Null, fmt.Errorf("exec: LENGTH on %s", vs[0].Type())
			}
			return value.NewInt(int64(len(vs[0].Str()))), nil
		}, nil
	case "SUBSTR", "SUBSTRING":
		if len(fns) != 2 && len(fns) != 3 {
			return nil, fmt.Errorf("exec: %s takes 2 or 3 arguments", x.Name)
		}
		return func(row schema.Row) (value.Value, error) {
			vs, err := evalArgs(row)
			if err != nil {
				return value.Null, err
			}
			for _, v := range vs {
				if v.IsNull() {
					return value.Null, nil
				}
			}
			if vs[0].Type() != value.TypeString || vs[1].Type() != value.TypeInt {
				return value.Null, fmt.Errorf("exec: SUBSTR requires (string, int[, int])")
			}
			s := vs[0].Str()
			start := int(vs[1].Int()) - 1 // SQL is 1-based
			if start < 0 {
				start = 0
			}
			if start >= len(s) {
				return value.NewString(""), nil
			}
			end := len(s)
			if len(vs) == 3 {
				if vs[2].Type() != value.TypeInt {
					return value.Null, fmt.Errorf("exec: SUBSTR length must be an integer")
				}
				if n := int(vs[2].Int()); n >= 0 && start+n < end {
					end = start + n
				}
			}
			return value.NewString(s[start:end]), nil
		}, nil
	case "TRIM":
		if err := need(1); err != nil {
			return nil, err
		}
		return func(row schema.Row) (value.Value, error) {
			vs, err := evalArgs(row)
			if err != nil {
				return value.Null, err
			}
			if vs[0].IsNull() {
				return value.Null, nil
			}
			if vs[0].Type() != value.TypeString {
				return value.Null, fmt.Errorf("exec: TRIM on %s", vs[0].Type())
			}
			return value.NewString(strings.TrimSpace(vs[0].Str())), nil
		}, nil
	case "ROUND":
		if len(fns) != 1 && len(fns) != 2 {
			return nil, fmt.Errorf("exec: ROUND takes 1 or 2 arguments")
		}
		return func(row schema.Row) (value.Value, error) {
			vs, err := evalArgs(row)
			if err != nil {
				return value.Null, err
			}
			if vs[0].IsNull() {
				return value.Null, nil
			}
			if !vs[0].Type().Numeric() {
				return value.Null, fmt.Errorf("exec: ROUND on %s", vs[0].Type())
			}
			digits := 0
			if len(vs) == 2 {
				if vs[1].IsNull() {
					return value.Null, nil
				}
				if vs[1].Type() != value.TypeInt {
					return value.Null, fmt.Errorf("exec: ROUND digits must be an integer")
				}
				digits = int(vs[1].Int())
			}
			scale := math.Pow(10, float64(digits))
			return value.NewFloat(math.Round(vs[0].Float()*scale) / scale), nil
		}, nil
	case "COALESCE":
		if len(fns) == 0 {
			return nil, fmt.Errorf("exec: COALESCE needs arguments")
		}
		return func(row schema.Row) (value.Value, error) {
			for _, f := range fns {
				v, err := f(row)
				if err != nil {
					return value.Null, err
				}
				if !v.IsNull() {
					return v, nil
				}
			}
			return value.Null, nil
		}, nil
	}
	return nil, &PosError{Err: fmt.Errorf("exec: unknown function %s", x.Name), Off: x.Pos}
}

// likeMatch implements SQL LIKE with % (any run) and _ (any one byte),
// by simple backtracking on %.
func likeMatch(s, pat string) bool {
	var si, pi int
	var starP, starS = -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			starP, starS = pi, si
			pi++
		case starP >= 0:
			starS++
			si, pi = starS, starP+1
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

// subqueryEval compiles a subquery into a per-row evaluator. A
// self-contained (uncorrelated) subquery executes once and caches its
// rows; a correlated one re-executes per outer row with the enclosing
// row bound through the outerRef chain. Correlation is detected by
// first attempting execution without any enclosing environment — a
// failure there that a correlated environment fixes means the subquery
// references the outer query.
func (b *binding) subqueryEval(sel *parse.Select, wantCols int) func(schema.Row) ([]schema.Row, error) {
	holder := new(schema.Row)
	ref := &outerRef{schema: b.schema, row: holder, parent: b.outer}
	const (
		unknown = iota
		cachedState
		correlated
	)
	state := unknown
	var cached []schema.Row
	var cachedErr error
	run := func(env *outerRef) ([]schema.Row, error) {
		rel, err := b.rt.execSelectEnv(sel, env)
		if err != nil {
			return nil, err
		}
		if wantCols > 0 && rel.schema.Len() != wantCols {
			return nil, fmt.Errorf("exec: subquery must return %d column(s), got %d", wantCols, rel.schema.Len())
		}
		return rel.rows, nil
	}
	return func(row schema.Row) ([]schema.Row, error) {
		switch state {
		case cachedState:
			return cached, cachedErr
		case unknown:
			rows, err := run(nil)
			if err == nil {
				state = cachedState
				cached = rows
				return rows, nil
			}
			// Retry as correlated; if the enclosing environment does
			// not fix the failure, the error stands (and is cached to
			// avoid re-failing per row on genuine mistakes).
			*holder = row
			rows, cerr := run(ref)
			if cerr != nil {
				state = cachedState
				cachedErr = cerr
				return nil, cerr
			}
			state = correlated
			return rows, nil
		default: // correlated
			*holder = row
			return run(ref)
		}
	}
}
