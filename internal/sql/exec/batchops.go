package exec

// batchops.go holds the batch-consuming operators of the vectorized
// path: projection (with streaming DISTINCT), streaming GROUP BY
// aggregation, the build-side-aware batched hash join, and the column
// remap that restores canonical column order after the planner reorders
// a FROM list.

import (
	"fmt"
	"time"

	"minerule/internal/obsv"
	"minerule/internal/sql/parse"
	"minerule/internal/sql/schema"
	"minerule/internal/sql/value"
)

// collectAggregates walks the projection and HAVING for aggregate calls,
// returning them in first-appearance order with their slot map. Shared
// by the row-mode and batched GROUP BY implementations.
func collectAggregates(s *parse.Select, items []projItem) ([]*parse.FuncCall, map[*parse.FuncCall]int) {
	var aggNodes []*parse.FuncCall
	aggSlots := make(map[*parse.FuncCall]int)
	collect := func(e parse.Expr) {
		parse.WalkExprs(e, func(x parse.Expr) bool {
			if f, ok := x.(*parse.FuncCall); ok && f.IsAggregate() {
				if _, seen := aggSlots[f]; !seen {
					aggSlots[f] = len(aggNodes)
					aggNodes = append(aggNodes, f)
				}
				return false
			}
			return true
		})
	}
	for _, it := range items {
		if it.expr != nil {
			collect(it.expr)
		}
	}
	if s.Having != nil {
		collect(s.Having)
	}
	return aggNodes, aggSlots
}

// ---------------------------------------------------------------------------
// Projection

// projectBatched evaluates the select list over a batched input,
// carving output rows from an arena; with distinct set it deduplicates
// while appending (each candidate row evaluates into a reused scratch
// row and only survivors are committed to the arena, so dropped
// duplicates pin no memory).
func (rt *Runtime) projectBatched(s *parse.Select, src batchSource, distinct bool) (*relation, error) {
	sp, parent := rt.pushOp("project")
	items, err := expandItems(s, src.Schema())
	if err != nil {
		rt.popOp(sp, parent)
		return nil, err
	}
	b := rt.bind(src.Schema())
	fns := make([]evalFunc, len(items))
	for i, it := range items {
		if it.ord >= 0 {
			ord := it.ord
			fns[i] = func(row schema.Row) (value.Value, error) { return row[ord], nil }
			continue
		}
		f, err := b.compile(it.expr)
		if err != nil {
			rt.popOp(sp, parent)
			return nil, err
		}
		fns[i] = f
	}

	w := len(fns)
	var (
		arena    rowArena
		outRows  []schema.Row
		batches  int64
		rowsIn   int64
		seen    map[string]bool
		scratch schema.Row
		distBuf []byte
	)
	hint := src.sizeHint()
	if hint > 0 {
		outRows = make([]schema.Row, 0, hint)
	}
	if distinct {
		sz := hint
		if sz < 0 {
			sz = 0
		}
		seen = make(map[string]bool, sz)
		scratch = make(schema.Row, w)
	}
	for {
		in, err := src.NextBatch()
		if err != nil {
			rt.popOp(sp, parent)
			return nil, err
		}
		if in == nil {
			break
		}
		if err := rt.charge(len(in.rows)); err != nil {
			rt.popOp(sp, parent)
			return nil, err
		}
		batches++
		rowsIn += int64(len(in.rows))
		for _, row := range in.rows {
			if distinct {
				for i, f := range fns {
					v, err := f(row)
					if err != nil {
						rt.popOp(sp, parent)
						return nil, err
					}
					scratch[i] = v
				}
				distBuf = scratch.AppendKey(distBuf[:0])
				if seen[string(distBuf)] {
					continue
				}
				seen[string(distBuf)] = true
				out := arena.alloc(w)
				copy(out, scratch)
				outRows = append(outRows, out)
				continue
			}
			out := arena.alloc(w)
			for i, f := range fns {
				v, err := f(row)
				if err != nil {
					rt.popOp(sp, parent)
					return nil, err
				}
				out[i] = v
			}
			outRows = append(outRows, out)
		}
		rt.noteBatch(len(in.rows))
	}
	if sp != nil {
		sp.SetInt("rows", rowsIn)
		sp.SetInt("batches", batches)
	}
	rt.popOp(sp, parent)
	if distinct {
		// The dedup ran inline, but DISTINCT keeps its own plan node so
		// EXPLAIN shows the same operator chain as the row-mode path.
		dsp, dparent := rt.pushOp("distinct")
		if dsp != nil {
			dsp.SetInt("rows_in", rowsIn)
			dsp.SetInt("rows", int64(len(outRows)))
		}
		rt.popOp(dsp, dparent)
	}
	return &relation{schema: outputSchema(items, outRows), rows: outRows}, nil
}

// ---------------------------------------------------------------------------
// Streaming GROUP BY

// aggAcc is one aggregate's running state within one group. The
// batched GROUP BY accumulates each input row exactly once instead of
// materializing per-group row lists and re-iterating them per
// aggregate (the row-mode computeAggregate approach).
type aggAcc struct {
	count  int64 // non-NULL (post-DISTINCT) values accumulated
	isum   int64
	fsum   float64
	allInt bool
	best   value.Value // MIN/MAX champion
	have   bool
	seen   map[string]bool // DISTINCT keys, lazily allocated
}

// accumulate folds one argument value into the accumulator, mirroring
// computeAggregate's per-group semantics value for value.
func (acc *aggAcc) accumulate(a *parse.FuncCall, v value.Value, keyBuf *[]byte) error {
	if v.IsNull() {
		return nil
	}
	if a.Distinct {
		*keyBuf = v.AppendKey((*keyBuf)[:0])
		if acc.seen == nil {
			acc.seen = make(map[string]bool)
		}
		if acc.seen[string(*keyBuf)] {
			return nil
		}
		acc.seen[string(*keyBuf)] = true
	}
	switch a.Name {
	case "COUNT":
		acc.count++
	case "SUM", "AVG":
		if !v.Type().Numeric() {
			return fmt.Errorf("exec: %s over %s", a.Name, v.Type())
		}
		acc.count++
		if v.Type() == value.TypeInt {
			acc.isum += v.Int()
		} else {
			acc.allInt = false
		}
		acc.fsum += v.Float()
	case "MIN", "MAX":
		acc.count++
		if !acc.have {
			acc.best, acc.have = v, true
			return nil
		}
		c, err := value.Compare(v, acc.best)
		if err != nil {
			return err
		}
		if (a.Name == "MIN" && c < 0) || (a.Name == "MAX" && c > 0) {
			acc.best = v
		}
	default:
		return fmt.Errorf("exec: unknown aggregate %s", a.Name)
	}
	return nil
}

// finalize produces the aggregate's value for one finished group; n is
// the group's total row count (COUNT(*)).
func (acc *aggAcc) finalize(a *parse.FuncCall, n int64) value.Value {
	if a.Star {
		return value.NewInt(n)
	}
	switch a.Name {
	case "COUNT":
		return value.NewInt(acc.count)
	case "SUM":
		if acc.count == 0 {
			return value.Null
		}
		if acc.allInt {
			return value.NewInt(acc.isum)
		}
		return value.NewFloat(acc.fsum)
	case "AVG":
		if acc.count == 0 {
			return value.Null
		}
		return value.NewFloat(acc.fsum / float64(acc.count))
	default: // MIN, MAX
		if !acc.have {
			return value.Null
		}
		return acc.best
	}
}

// groupState is one group's accumulated state: its representative row
// (the first seen — non-aggregate projections and HAVING evaluate over
// it, as in row mode) plus one accumulator per aggregate node.
type groupState struct {
	rep  schema.Row
	n    int64
	accs []aggAcc
}

// groupBatched implements GROUP BY / HAVING / aggregate projection over
// a batched input with streaming accumulators. Group keys build into a
// per-batch length-framed key column; group states are carved from
// pooled blocks so a query with many groups does not allocate per group.
func (rt *Runtime) groupBatched(s *parse.Select, src batchSource) (*relation, error) {
	sp, parent := rt.pushOp("group")
	defer rt.popOp(sp, parent)
	in := src.Schema()
	items, err := expandItems(s, in)
	if err != nil {
		return nil, err
	}
	aggNodes, aggSlots := collectAggregates(s, items)

	keyBind := rt.bind(in)
	keyFns := make([]evalFunc, len(s.GroupBy))
	for i, g := range s.GroupBy {
		f, err := keyBind.compile(g)
		if err != nil {
			return nil, err
		}
		keyFns[i] = f
	}
	aggArgFns := make([]evalFunc, len(aggNodes))
	for i, a := range aggNodes {
		if a.Star {
			continue
		}
		if len(a.Args) != 1 {
			return nil, &PosError{Err: fmt.Errorf("exec: %s takes one argument", a.Name), Off: a.Pos}
		}
		f, err := keyBind.compile(a.Args[0])
		if err != nil {
			return nil, err
		}
		aggArgFns[i] = f
	}

	var (
		groups    = make(map[string]*groupState)
		order     []*groupState
		statePool []groupState
		accPool   []aggAcc
		kr        = make([]value.Value, len(keyFns))
		kc        keyColumn
		distBuf   []byte
		batches   int64
		repArena  rowArena // backs rep copies from a volatile source
		vol       = src.volatile()
	)
	poolRows := 4
	newState := func() *groupState {
		if len(statePool) == 0 {
			if poolRows < 256 {
				poolRows *= 2
			}
			statePool = make([]groupState, poolRows)
			if len(aggNodes) > 0 {
				accPool = make([]aggAcc, poolRows*len(aggNodes))
			}
		}
		g := &statePool[0]
		statePool = statePool[1:]
		if len(aggNodes) > 0 {
			g.accs = accPool[:len(aggNodes):len(aggNodes)]
			accPool = accPool[len(aggNodes):]
			for i := range g.accs {
				g.accs[i].allInt = true
			}
		}
		return g
	}

	for {
		b, err := src.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			break
		}
		if err := rt.charge(len(b.rows)); err != nil {
			return nil, err
		}
		batches++
		kc.reset()
		for _, row := range b.rows {
			for i, f := range keyFns {
				v, err := f(row)
				if err != nil {
					return nil, err
				}
				kr[i] = v
			}
			kc.appendValuesKey(kr)
			key := kc.key(len(kc.off) - 2)
			g, ok := groups[string(key)]
			if !ok {
				g = newState()
				g.rep = row
				if vol {
					// The rep outlives the batch; copy it out of the
					// source's recycled storage.
					cp := repArena.alloc(len(row))
					copy(cp, row)
					g.rep = cp
				}
				groups[string(key)] = g
				order = append(order, g)
			}
			g.n++
			for i, a := range aggNodes {
				if a.Star {
					continue
				}
				v, err := aggArgFns[i](row)
				if err != nil {
					return nil, err
				}
				if err := g.accs[i].accumulate(a, v, &distBuf); err != nil {
					return nil, err
				}
			}
		}
	}
	// Global aggregate over empty input still yields one group.
	if len(s.GroupBy) == 0 && len(order) == 0 {
		g := newState()
		order = append(order, g)
	}

	// Compile projection and HAVING against a binding that resolves
	// aggregate calls through aggRow.
	aggRow := make([]value.Value, len(aggNodes))
	pb := rt.bind(in)
	pb.aggs = aggSlots
	pb.aggRow = &aggRow
	itemFns := make([]evalFunc, len(items))
	for i, it := range items {
		if it.ord >= 0 {
			ord := it.ord
			itemFns[i] = func(row schema.Row) (value.Value, error) { return row[ord], nil }
			continue
		}
		f, err := pb.compile(it.expr)
		if err != nil {
			return nil, err
		}
		itemFns[i] = f
	}
	var havingFn evalFunc
	if s.Having != nil {
		f, err := pb.compile(s.Having)
		if err != nil {
			return nil, err
		}
		havingFn = f
	}

	nullRow := make(schema.Row, in.Len())
	var arena rowArena
	w := len(itemFns)
	outRows := make([]schema.Row, 0, len(order))
	for _, g := range order {
		for i, a := range aggNodes {
			aggRow[i] = g.accs[i].finalize(a, g.n)
		}
		rep := g.rep
		if rep == nil {
			rep = nullRow
		}
		if havingFn != nil {
			hv, err := havingFn(rep)
			if err != nil {
				return nil, err
			}
			t, err := value.TristateFromValue(hv)
			if err != nil {
				return nil, err
			}
			if t != value.True {
				continue
			}
		}
		out := arena.alloc(w)
		for i, f := range itemFns {
			v, err := f(rep)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		outRows = append(outRows, out)
	}
	if sp != nil {
		sp.SetInt("groups", int64(len(order)))
		sp.SetInt("rows", int64(len(outRows)))
		sp.SetInt("batches", batches)
	}
	return &relation{schema: outputSchema(items, outRows), rows: outRows}, nil
}

// ---------------------------------------------------------------------------
// Batched hash join and cartesian product

// keyPair is one equi-join key: column ordinals into the left and right
// schemas.
type keyPair struct{ l, r int }

// hashJoinBatched joins left and right on the given equi-key pairs,
// building the hash table on the smaller input (whichever side it is)
// and probing the larger in batches. Output columns stay in
// left-then-right order regardless of build side; output rows carve
// from an arena.
func (rt *Runtime) hashJoinBatched(left, right *relation, keys []keyPair) ([]schema.Row, string, error) {
	buildRel, probeRel := right, left
	buildSide := "right"
	if len(left.rows) < len(right.rows) {
		buildRel, probeRel = left, right
		buildSide = "left"
	}
	buildCols := make([]int, len(keys))
	probeCols := make([]int, len(keys))
	for i, k := range keys {
		if buildSide == "left" {
			buildCols[i], probeCols[i] = k.l, k.r
		} else {
			buildCols[i], probeCols[i] = k.r, k.l
		}
	}

	// Build phase: bucket row positions by key. Pointer-valued buckets
	// keep appends allocation-free after first sight (see storage.Index).
	build := make(map[string]*[]int32, len(buildRel.rows))
	var kc keyColumn
	for base := 0; base < len(buildRel.rows); base += batchSize {
		end := base + batchSize
		if end > len(buildRel.rows) {
			end = len(buildRel.rows)
		}
		kc.reset()
		for i := base; i < end; i++ {
			if !kc.appendRowKey(buildRel.rows[i], buildCols) {
				continue // NULL never joins
			}
			k := kc.key(i - base)
			if bucket := build[string(k)]; bucket != nil {
				*bucket = append(*bucket, int32(i))
				continue
			}
			bucket := []int32{int32(i)}
			build[string(k)] = &bucket
		}
		if err := rt.pollN(end - base); err != nil {
			return nil, buildSide, err
		}
	}

	// Probe phase. Presize the output for the key-foreign-key case
	// (about one match per probe row of the smaller input).
	lw := left.schema.Len()
	w := lw + right.schema.Len()
	var arena rowArena
	out := make([]schema.Row, 0, len(buildRel.rows))
	for base := 0; base < len(probeRel.rows); base += batchSize {
		end := base + batchSize
		if end > len(probeRel.rows) {
			end = len(probeRel.rows)
		}
		kc.reset()
		emitted := 0
		for i := base; i < end; i++ {
			probe := probeRel.rows[i]
			if !kc.appendRowKey(probe, probeCols) {
				continue
			}
			bucket := build[string(kc.key(i-base))]
			if bucket == nil {
				continue
			}
			for _, bi := range *bucket {
				var l, r schema.Row
				if buildSide == "left" {
					l, r = buildRel.rows[bi], probe
				} else {
					l, r = probe, buildRel.rows[bi]
				}
				o := arena.alloc(w)
				copy(o, l)
				copy(o[lw:], r)
				out = append(out, o)
				emitted++
			}
		}
		if err := rt.charge(emitted); err != nil {
			return nil, buildSide, err
		}
		rt.noteBatch(emitted)
	}
	return out, buildSide, nil
}

// hashJoinSource is the streaming form of the hash join, used when the
// join output feeds straight into the batched pipeline (a single
// two-element FROM list): combined rows build into one scratch block
// that is recycled every NextBatch, so the joined intermediate relation
// is never materialized. The source is volatile — consumers that retain
// rows copy them (see batchSource).
type hashJoinSource struct {
	rt          *Runtime
	sch         *schema.Schema
	buildRows   []schema.Row
	probeRows   []schema.Row
	build       map[string]*[]int32
	probeCols   []int
	buildIsLeft bool
	lw, w       int
	pos         int // next probe row
	kb          []byte
	buf         []value.Value // recycled row storage
	out         []schema.Row
	b           batch
	rows        int64
	nb          int64
	spent       time.Duration
	sp          *obsv.Span
	done        bool
}

// newHashJoinSource hashes the smaller input and returns the streaming
// probe source. Span attributes and the trace line match the
// materializing join operator.
func (rt *Runtime) newHashJoinSource(left, right *relation, keys []keyPair) (*hashJoinSource, error) {
	sp, parent := rt.pushOp("join")
	start := time.Now()
	buildRel, probeRel := right, left
	buildSide := "right"
	if len(left.rows) < len(right.rows) {
		buildRel, probeRel = left, right
		buildSide = "left"
	}
	buildCols := make([]int, len(keys))
	probeCols := make([]int, len(keys))
	for i, k := range keys {
		if buildSide == "left" {
			buildCols[i], probeCols[i] = k.l, k.r
		} else {
			buildCols[i], probeCols[i] = k.r, k.l
		}
	}
	s := &hashJoinSource{
		rt:          rt,
		sch:         left.schema.Append(right.schema),
		buildRows:   buildRel.rows,
		probeRows:   probeRel.rows,
		build:       make(map[string]*[]int32, len(buildRel.rows)),
		probeCols:   probeCols,
		buildIsLeft: buildSide == "left",
		lw:          left.schema.Len(),
		sp:          sp,
	}
	s.w = s.sch.Len()
	var kc keyColumn
	for base := 0; base < len(s.buildRows); base += batchSize {
		end := base + batchSize
		if end > len(s.buildRows) {
			end = len(s.buildRows)
		}
		kc.reset()
		for i := base; i < end; i++ {
			if !kc.appendRowKey(s.buildRows[i], buildCols) {
				continue // NULL never joins
			}
			k := kc.key(i - base)
			if bucket := s.build[string(k)]; bucket != nil {
				*bucket = append(*bucket, int32(i))
				continue
			}
			bucket := []int32{int32(i)}
			s.build[string(k)] = &bucket
		}
		if err := rt.pollN(end - base); err != nil {
			rt.popOp(sp, parent)
			return nil, err
		}
	}
	rt.tracef("hash join on %d key(s): %d x %d row(s)", len(keys), len(left.rows), len(right.rows))
	if sp != nil {
		sp.SetStr("strategy", "hash")
		sp.SetInt("keys", int64(len(keys)))
		sp.SetInt("rows_left", int64(len(left.rows)))
		sp.SetInt("rows_right", int64(len(right.rows)))
		est := int64(len(left.rows))
		if r := int64(len(right.rows)); r < est {
			est = r
		}
		sp.SetInt("est_rows", est)
		sp.SetStr("build", buildSide)
	}
	rt.popOp(sp, parent)
	s.spent = time.Since(start)
	return s, nil
}

func (s *hashJoinSource) Schema() *schema.Schema { return s.sch }

// sizeHint assumes the key-foreign-key case: about one match per
// remaining probe row.
func (s *hashJoinSource) sizeHint() int { return len(s.probeRows) - s.pos }

func (s *hashJoinSource) volatile() bool { return true }

// alloc carves one output row from the recycled block. When the block
// fills mid-batch a bigger one is allocated (geometric growth up to
// batchSize rows, so tiny joins stay tiny); rows already carved keep
// referencing the old block, which stays reachable through their headers
// until the next NextBatch resets the source.
func (s *hashJoinSource) alloc() schema.Row {
	if len(s.buf)+s.w > cap(s.buf) {
		c := 2 * cap(s.buf)
		if c == 0 {
			rows := len(s.probeRows)
			if rows > 8 {
				rows = 8
			}
			if rows < 1 {
				rows = 1
			}
			c = rows * s.w
		}
		if max := batchSize * s.w; c > max {
			c = max
		}
		if c < s.w {
			c = s.w
		}
		s.buf = make([]value.Value, 0, c)
	}
	n := len(s.buf)
	s.buf = s.buf[:n+s.w]
	return schema.Row(s.buf[n : n+s.w : n+s.w])
}

func (s *hashJoinSource) NextBatch() (*batch, error) {
	if s.done {
		return nil, nil
	}
	start := time.Now()
	out := s.out[:0]
	s.buf = s.buf[:0]
	probed := 0
	for s.pos < len(s.probeRows) && len(out) < batchSize {
		probe := s.probeRows[s.pos]
		s.pos++
		probed++
		kb := s.kb[:0]
		null := false
		for _, c := range s.probeCols {
			v := probe[c]
			if v.IsNull() {
				null = true
				break
			}
			kb = schema.AppendValueKey(kb, v)
		}
		s.kb = kb
		if null {
			continue
		}
		bucket := s.build[string(kb)]
		if bucket == nil {
			continue
		}
		for _, bi := range *bucket {
			l, r := probe, s.buildRows[bi]
			if s.buildIsLeft {
				l, r = s.buildRows[bi], probe
			}
			o := s.alloc()
			copy(o, l)
			copy(o[s.lw:], r)
			out = append(out, o)
		}
	}
	s.out = out
	if err := s.rt.pollN(probed); err != nil {
		return nil, err
	}
	s.spent += time.Since(start)
	if len(out) == 0 {
		s.finish()
		return nil, nil
	}
	if err := s.rt.charge(len(out)); err != nil {
		return nil, err
	}
	s.rows += int64(len(out))
	s.nb++
	s.rt.noteBatch(len(out))
	if s.pos >= len(s.probeRows) {
		s.finish()
	}
	s.b.rows = out
	return &s.b, nil
}

func (s *hashJoinSource) finish() {
	s.done = true
	if s.sp == nil {
		return
	}
	s.sp.SetInt("rows", s.rows)
	s.sp.SetInt("batches", s.nb)
	s.sp.SetDuration(s.spent)
}

// cartesianBatched is the no-equi-key fallback with arena output and
// batch-granular accounting.
func (rt *Runtime) cartesianBatched(left, right *relation) ([]schema.Row, error) {
	lw := left.schema.Len()
	w := lw + right.schema.Len()
	var arena rowArena
	var out []schema.Row
	emitted := 0
	for _, l := range left.rows {
		for _, r := range right.rows {
			o := arena.alloc(w)
			copy(o, l)
			copy(o[lw:], r)
			out = append(out, o)
			emitted++
			if emitted >= batchSize {
				if err := rt.charge(emitted); err != nil {
					return nil, err
				}
				rt.noteBatch(emitted)
				emitted = 0
			}
		}
	}
	if emitted > 0 {
		if err := rt.charge(emitted); err != nil {
			return nil, err
		}
		rt.noteBatch(emitted)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Column remap after join reordering

// remapColumns restores canonical (FROM-list) column order after the
// planner executed the joins in a different order. One arena pass; only
// runs when the planner actually reordered, which it does only when the
// cost model predicts a win that covers this copy.
func (rt *Runtime) remapColumns(rel *relation, elems []fromElem, order []int) *relation {
	n := len(elems)
	widths := make([]int, n)
	for i, e := range elems {
		widths[i] = e.rel.schema.Len()
	}
	// Offset of each element in the executed (permuted) layout.
	execOff := make([]int, n)
	off := 0
	for _, idx := range order {
		execOff[idx] = off
		off += widths[idx]
	}
	// src[j] is the executed-layout position of canonical column j.
	src := make([]int, off)
	canonical := elems[0].rel.schema
	j := 0
	for i := 0; i < n; i++ {
		if i > 0 {
			canonical = canonical.Append(elems[i].rel.schema)
		}
		for c := 0; c < widths[i]; c++ {
			src[j] = execOff[i] + c
			j++
		}
	}
	var arena rowArena
	out := make([]schema.Row, len(rel.rows))
	for ri, row := range rel.rows {
		o := arena.alloc(len(src))
		for jj, sj := range src {
			o[jj] = row[sj]
		}
		out[ri] = o
	}
	return &relation{schema: canonical, rows: out}
}
