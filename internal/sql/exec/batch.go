package exec

// batch.go implements the batched (vectorized) execution path: rows
// flow between operators in windows of up to batchSize instead of one
// at a time, output rows are carved out of arena blocks instead of
// allocated individually, and group/join keys build into length-framed
// byte columns (one shared buffer + offsets per batch) on the existing
// value.AppendKey zero-allocation paths.
//
// The row-at-a-time operators in select.go remain as the reference
// implementation: Runtime.rowMode switches the executor back to them,
// which is both the compatibility shim for untouched operators
// (set operations, subqueries, ORDER BY run row-at-a-time over
// materialized batches) and the oracle for the differential
// batched-vs-row property suite.

import (
	"time"

	"minerule/internal/obsv"
	"minerule/internal/resource"
	"minerule/internal/sql/parse"
	"minerule/internal/sql/schema"
	"minerule/internal/sql/value"
)

// batchSize is the target number of rows per batch: small enough that a
// batch of row headers and its key column stay cache-resident, large
// enough to amortize per-batch accounting to noise.
const batchSize = 512

// batch is the unit of flow between batched operators: a window of row
// references plus, when the producing operator computed them, a
// column-major key column (length-framed bytes, keyOff[i]..keyOff[i+1]
// is row i's key).
type batch struct {
	rows []schema.Row
	// key column; empty unless the producer filled it via keyColumn.
	keyBuf []byte
	keyOff []int
}

// batchSource is the batched iterator interface. NextBatch returns the
// next non-empty batch, or nil at end of stream; the returned batch and
// its rows slice are owned by the source and valid only until the next
// NextBatch call. sizeHint is an upper bound on the rows still to come
// (consumers use it to presize output buffers); -1 when unknown.
//
// volatile reports whether the row *storage* is also recycled between
// NextBatch calls: a volatile source (the streaming hash join) rebuilds
// its rows in a reused scratch block, so consumers that retain a
// schema.Row beyond the next NextBatch call must copy it first. Rows
// from a non-volatile source may be retained as-is. Individual
// value.Value elements are always safe to copy out either way.
type batchSource interface {
	Schema() *schema.Schema
	NextBatch() (*batch, error)
	sizeHint() int
	volatile() bool
}

// noteBatch feeds the always-on batch counters.
func (rt *Runtime) noteBatch(rows int) {
	if m := rt.Met; m != nil {
		m.ExecBatches.Inc()
		m.ExecBatchRows.Add(int64(rows))
	}
}

// pollN polls the context after accounting n comparison-only operations
// (the batch-granular analogue of poll).
func (rt *Runtime) pollN(n int) error {
	rt.ops += n
	if rt.ops >= pollEvery {
		rt.ops = 0
		return resource.Check(rt.ctx)
	}
	return nil
}

// ---------------------------------------------------------------------------
// Row arena

// rowArena carves output rows out of shared []value.Value blocks, so a
// run of w-wide rows costs one allocation per block instead of one per
// row. Blocks grow geometrically (8 rows up to batchSize rows), so a
// 3-row result does not pay for a 512-row block while bulk pipelines
// amortize to one allocation per batch. Each carved row is
// full-capacity sliced: appends through it can never clobber a
// neighbor.
type rowArena struct {
	buf  []value.Value
	rows int // row capacity of the next block
}

func (a *rowArena) alloc(w int) schema.Row {
	if w == 0 {
		return schema.Row{}
	}
	if len(a.buf)+w > cap(a.buf) {
		if a.rows == 0 {
			a.rows = 8
		} else if a.rows < batchSize {
			a.rows *= 2
		}
		block := a.rows * w
		const maxBlock = 16 << 10
		if block > maxBlock && w < maxBlock {
			block = (maxBlock / w) * w
		}
		a.buf = make([]value.Value, 0, block)
	}
	n := len(a.buf)
	a.buf = a.buf[:n+w]
	return schema.Row(a.buf[n : n+w : n+w])
}

// ---------------------------------------------------------------------------
// Key columns

// keyColumn accumulates length-framed key bytes for one batch: the
// shared buffer and per-row offsets live across batches, so steady
// state allocates nothing.
type keyColumn struct {
	buf []byte
	off []int
}

func (k *keyColumn) reset() {
	k.buf = k.buf[:0]
	k.off = k.off[:0]
	k.off = append(k.off, 0)
}

// appendRowKey appends one row's key built from the given column
// ordinals. It reports false (and records an empty key) when any key
// column is NULL — NULL never equi-joins or groups with anything under
// join semantics; group-by callers use appendValuesKey instead.
func (k *keyColumn) appendRowKey(row schema.Row, cols []int) bool {
	for _, c := range cols {
		if row[c].IsNull() {
			k.buf = k.buf[:k.off[len(k.off)-1]]
			k.off = append(k.off, len(k.buf))
			return false
		}
		k.buf = schema.AppendValueKey(k.buf, row[c])
	}
	k.off = append(k.off, len(k.buf))
	return true
}

// appendValuesKey appends one composite key over already-evaluated
// values (NULLs included, as GROUP BY treats NULLs as equal).
func (k *keyColumn) appendValuesKey(vals []value.Value) {
	for _, v := range vals {
		k.buf = schema.AppendValueKey(k.buf, v)
	}
	k.off = append(k.off, len(k.buf))
}

// key returns row i's key bytes.
func (k *keyColumn) key(i int) []byte { return k.buf[k.off[i]:k.off[i+1]] }

// ---------------------------------------------------------------------------
// Sources

// sliceSource adapts a materialized relation to batchSource by handing
// out zero-copy windows.
type sliceSource struct {
	rt   *Runtime
	sch  *schema.Schema
	rows []schema.Row
	pos  int
	b    batch
}

func (rt *Runtime) newSliceSource(rel *relation) *sliceSource {
	return &sliceSource{rt: rt, sch: rel.schema, rows: rel.rows}
}

func (s *sliceSource) Schema() *schema.Schema { return s.sch }

func (s *sliceSource) sizeHint() int { return len(s.rows) - s.pos }

func (s *sliceSource) volatile() bool { return false }

func (s *sliceSource) NextBatch() (*batch, error) {
	if s.pos >= len(s.rows) {
		return nil, nil
	}
	end := s.pos + batchSize
	if end > len(s.rows) {
		end = len(s.rows)
	}
	s.b.rows = s.rows[s.pos:end]
	s.rt.noteBatch(end - s.pos)
	s.pos = end
	if err := s.rt.pollN(len(s.b.rows)); err != nil {
		return nil, err
	}
	return &s.b, nil
}

// materialize drains a batchSource into a relation — the compatibility
// shim that lets row-at-a-time operators (ORDER BY, set operations,
// subquery results) consume batched pipelines. An unconsumed
// sliceSource unwraps without copying.
func materialize(src batchSource) (*relation, error) {
	if ss, ok := src.(*sliceSource); ok && ss.pos == 0 {
		return &relation{schema: ss.sch, rows: ss.rows}, nil
	}
	vol := src.volatile()
	var arena rowArena
	var rows []schema.Row
	for {
		b, err := src.NextBatch()
		if err != nil {
			return nil, err
		}
		if b == nil {
			return &relation{schema: src.Schema(), rows: rows}, nil
		}
		if vol {
			// The source recycles its row storage; keep copies.
			for _, r := range b.rows {
				cp := arena.alloc(len(r))
				copy(cp, r)
				rows = append(rows, cp)
			}
			continue
		}
		rows = append(rows, b.rows...)
	}
}

// filterSource keeps the rows for which cond is TRUE, refilling its
// output window from as many input batches as needed.
type filterSource struct {
	rt     *Runtime
	src    batchSource
	fn     evalFunc
	out    []schema.Row
	vol    bool     // src recycles row storage; copy survivors
	arena  rowArena // backs the copies when vol
	b      batch
	done   bool
	rowsIn int64
	rows   int64
	nb     int64
	spent  time.Duration
	sp     *obsv.Span
}

func (rt *Runtime) newFilterSource(src batchSource, cond parse.Expr) (*filterSource, error) {
	b := rt.bind(src.Schema())
	fn, err := b.compile(cond)
	if err != nil {
		return nil, err
	}
	sp, parent := rt.pushOp("filter")
	if sp != nil {
		sp.SetStr("cond", cond.SQL())
	}
	rt.popOp(sp, parent)
	return &filterSource{rt: rt, src: src, fn: fn, sp: sp, vol: src.volatile()}, nil
}

func (f *filterSource) Schema() *schema.Schema { return f.src.Schema() }

// sizeHint: a filter can only shrink its input.
func (f *filterSource) sizeHint() int { return f.src.sizeHint() }

// volatile: survivors of a volatile input are copied into the filter's
// own arena, so downstream consumers may retain them.
func (f *filterSource) volatile() bool { return false }

func (f *filterSource) NextBatch() (*batch, error) {
	if f.done {
		return nil, nil
	}
	start := time.Now()
	out := f.out[:0]
	for len(out) < batchSize {
		in, err := f.src.NextBatch()
		if err != nil {
			return nil, err
		}
		if in == nil {
			f.done = true
			break
		}
		f.rowsIn += int64(len(in.rows))
		for _, row := range in.rows {
			v, err := f.fn(row)
			if err != nil {
				return nil, err
			}
			t, err := value.TristateFromValue(v)
			if err != nil {
				return nil, err
			}
			if t == value.True {
				if f.vol {
					cp := f.arena.alloc(len(row))
					copy(cp, row)
					row = cp
				}
				out = append(out, row)
			}
		}
	}
	f.out = out
	f.spent += time.Since(start)
	if len(out) == 0 {
		f.finishSpan()
		return nil, nil
	}
	f.rows += int64(len(out))
	f.nb++
	f.rt.noteBatch(len(out))
	if f.done {
		f.finishSpan()
	}
	f.b.rows = out
	return &f.b, nil
}

func (f *filterSource) finishSpan() {
	f.rt.tracef("filter: %d -> %d row(s)", f.rowsIn, f.rows)
	if f.sp == nil {
		return
	}
	f.sp.SetInt("rows_in", f.rowsIn)
	f.sp.SetInt("rows", f.rows)
	f.sp.SetInt("batches", f.nb)
	f.sp.SetDuration(f.spent)
}
