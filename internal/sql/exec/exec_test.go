package exec

import (
	"testing"
	"testing/quick"

	"minerule/internal/sql/parse"
)

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "", false},
		{"", "", true},
		{"", "%", true},
		{"hello", "%x%", false},
		{"hello", "hello_", false},
		{"ababab", "%abab", true},
		{"ababab", "ab%ab", true},
		{"mississippi", "%iss%ppi", true},
		{"mississippi", "%iss%ippo", false},
		{"a", "%%%a%%%", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.pat); got != c.want {
			t.Errorf("likeMatch(%q, %q) = %v", c.s, c.pat, got)
		}
	}
}

func TestLikeMatchProperties(t *testing.T) {
	// Every string matches itself, "%", and itself with "%" appended.
	f := func(s string) bool {
		return likeMatch(s, s) && likeMatch(s, "%") && likeMatch(s, s+"%") && likeMatch(s, "%"+s)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSplitConjuncts(t *testing.T) {
	e, err := parse.ParseExpr("a = 1 AND b = 2 AND (c = 3 OR d = 4) AND e BETWEEN 1 AND 2")
	if err != nil {
		t.Fatal(err)
	}
	cs := splitConjuncts(e)
	if len(cs) != 4 {
		t.Fatalf("conjuncts = %d", len(cs))
	}
	// OR subtrees stay intact.
	if b, ok := cs[2].(*parse.BinaryExpr); !ok || b.Op != parse.OpOr {
		t.Errorf("third conjunct = %#v", cs[2])
	}
	if splitConjuncts(nil) != nil {
		t.Error("nil input")
	}
	back := conjoin(cs)
	if len(splitConjuncts(back)) != 4 {
		t.Error("conjoin/split round trip")
	}
}
