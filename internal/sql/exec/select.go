package exec

import (
	"fmt"
	"sort"
	"strings"

	"minerule/internal/sql/parse"
	"minerule/internal/sql/schema"
	"minerule/internal/sql/storage"
	"minerule/internal/sql/value"
)

// relation is an intermediate result: a schema plus materialized rows.
type relation struct {
	schema *schema.Schema
	rows   []schema.Row
}

// execSelect evaluates a full query: the core specification, any set
// operations, then ORDER BY over the combined result.
func (rt *Runtime) execSelect(s *parse.Select) (*relation, error) {
	// A query without set operations may satisfy ORDER BY by sorting the
	// input before projection, which lets sort keys reference columns
	// the projection drops (standard SQL). With set operations the sort
	// must happen on the combined output instead.
	allowPreSort := len(s.SetOps) == 0
	out, preSorted, err := rt.execSelectCore(s, allowPreSort)
	if err != nil {
		return nil, err
	}
	for _, op := range s.SetOps {
		sp, parent := rt.pushOp(strings.ToLower(op.Kind.String()))
		right, _, err := rt.execSelectCore(op.Sel, false)
		if err != nil {
			rt.popOp(sp, parent)
			return nil, err
		}
		if right.schema.Len() != out.schema.Len() {
			rt.popOp(sp, parent)
			return nil, fmt.Errorf("exec: %s operands have %d and %d columns",
				op.Kind, out.schema.Len(), right.schema.Len())
		}
		out = combineSetOp(op, out, right)
		sp.SetInt("rows", int64(len(out.rows)))
		rt.popOp(sp, parent)
	}
	if len(s.OrderBy) > 0 && !preSorted {
		sp, parent := rt.pushOp("sort")
		if err := rt.orderBy(out, s.OrderBy); err != nil {
			rt.popOp(sp, parent)
			return nil, err
		}
		sp.SetInt("rows", int64(len(out.rows)))
		rt.popOp(sp, parent)
	}
	if s.Offset > 0 {
		if s.Offset >= int64(len(out.rows)) {
			out.rows = nil
		} else {
			out.rows = out.rows[s.Offset:]
		}
	}
	if s.Limit >= 0 && s.Limit < int64(len(out.rows)) {
		out.rows = out.rows[:s.Limit]
	}
	return out, nil
}

// combineSetOp applies one UNION/EXCEPT/INTERSECT step. The non-ALL
// forms produce distinct rows, per SQL92. All variants stream over the
// operands with one reused key buffer instead of materializing a
// concatenated copy first.
func combineSetOp(op parse.SetOp, left, right *relation) *relation {
	if op.Kind == parse.Union && op.All {
		rows := make([]schema.Row, 0, len(left.rows)+len(right.rows))
		rows = append(rows, left.rows...)
		rows = append(rows, right.rows...)
		return &relation{schema: left.schema, rows: rows}
	}
	var buf []byte
	switch op.Kind {
	case parse.Union:
		seen := make(map[string]bool, len(left.rows)+len(right.rows))
		rows := make([]schema.Row, 0, len(left.rows))
		for _, side := range [][]schema.Row{left.rows, right.rows} {
			for _, r := range side {
				buf = r.AppendKey(buf[:0])
				if seen[string(buf)] {
					continue
				}
				seen[string(buf)] = true
				rows = append(rows, r)
			}
		}
		return &relation{schema: left.schema, rows: rows}
	case parse.Except:
		inRight := make(map[string]bool, len(right.rows))
		for _, r := range right.rows {
			buf = r.AppendKey(buf[:0])
			if !inRight[string(buf)] {
				inRight[string(buf)] = true
			}
		}
		var rows []schema.Row
		seen := make(map[string]bool, len(left.rows))
		for _, r := range left.rows {
			buf = r.AppendKey(buf[:0])
			if seen[string(buf)] || inRight[string(buf)] {
				continue
			}
			seen[string(buf)] = true
			rows = append(rows, r)
		}
		return &relation{schema: left.schema, rows: rows}
	default: // Intersect
		inRight := make(map[string]bool, len(right.rows))
		for _, r := range right.rows {
			buf = r.AppendKey(buf[:0])
			if !inRight[string(buf)] {
				inRight[string(buf)] = true
			}
		}
		var rows []schema.Row
		seen := make(map[string]bool, len(left.rows))
		for _, r := range left.rows {
			buf = r.AppendKey(buf[:0])
			if seen[string(buf)] || !inRight[string(buf)] {
				continue
			}
			seen[string(buf)] = true
			rows = append(rows, r)
		}
		return &relation{schema: left.schema, rows: rows}
	}
}

// execSelectCore evaluates one query specification (no set operations).
// When allowPreSort is set and every ORDER BY key compiles against the
// *input* schema of a plain (non-grouped, non-DISTINCT) query, the input
// is sorted before projection and the second result reports true —
// sort keys may then reference columns the projection drops.
func (rt *Runtime) execSelectCore(s *parse.Select, allowPreSort bool) (*relation, bool, error) {
	if rt.rowMode {
		return rt.execSelectCoreRow(s, allowPreSort)
	}
	return rt.execSelectCoreBatched(s, allowPreSort)
}

// execSelectCoreBatched is the default executor core: rows flow from
// the joined FROM relation through filter, then grouping or projection,
// in batches (see batch.go). ORDER BY and set operations still run
// row-at-a-time over the materialized result.
func (rt *Runtime) execSelectCoreBatched(s *parse.Select, allowPreSort bool) (*relation, bool, error) {
	csp, cparent := rt.pushOp("select")
	defer rt.popOp(csp, cparent)
	src, remaining, err := rt.buildFrom(s)
	if err != nil {
		return nil, false, err
	}
	// Residual WHERE conjuncts not consumed by scans or joins.
	if len(remaining) > 0 {
		fs, err := rt.newFilterSource(src, conjoin(remaining))
		if err != nil {
			return nil, false, err
		}
		src = fs
	}

	grouped := len(s.GroupBy) > 0 || selectHasAggregate(s)

	// Pre-sort needs a materialized relation; re-source it afterwards.
	preSorted := false
	if allowPreSort && !grouped && !s.Distinct && len(s.OrderBy) > 0 &&
		!rt.canOrderByOutput(s, src.Schema()) && rt.canOrder(src.Schema(), s.OrderBy) {
		rel, err := materialize(src)
		if err != nil {
			return nil, false, err
		}
		ssp, sparent := rt.pushOp("sort")
		if err := rt.orderBy(rel, s.OrderBy); err != nil {
			rt.popOp(ssp, sparent)
			return nil, false, err
		}
		ssp.SetInt("rows", int64(len(rel.rows)))
		rt.popOp(ssp, sparent)
		src = rt.newSliceSource(rel)
		preSorted = true
	}

	var out *relation
	if grouped {
		out, err = rt.groupBatched(s, src)
		if err != nil {
			return nil, false, err
		}
		if s.Distinct {
			dsp, dparent := rt.pushOp("distinct")
			n := len(out.rows)
			out.rows = distinctRows(out.rows)
			if dsp != nil {
				dsp.SetInt("rows_in", int64(n))
				dsp.SetInt("rows", int64(len(out.rows)))
			}
			rt.popOp(dsp, dparent)
		}
	} else {
		if s.Having != nil {
			return nil, false, fmt.Errorf("exec: HAVING without GROUP BY or aggregates")
		}
		// projectBatched dedups inline when DISTINCT.
		out, err = rt.projectBatched(s, src, s.Distinct)
		if err != nil {
			return nil, false, err
		}
	}
	csp.SetInt("rows", int64(len(out.rows)))
	return out, preSorted, nil
}

// execSelectCoreRow is the row-at-a-time reference core, kept verbatim
// as the oracle for the differential batched-vs-row suite.
func (rt *Runtime) execSelectCoreRow(s *parse.Select, allowPreSort bool) (*relation, bool, error) {
	csp, cparent := rt.pushOp("select")
	defer rt.popOp(csp, cparent)
	fromSrc, remaining, err := rt.buildFrom(s)
	if err != nil {
		return nil, false, err
	}
	// In row mode buildFrom never streams, so this unwraps without
	// copying.
	input, err := materialize(fromSrc)
	if err != nil {
		return nil, false, err
	}
	// Residual WHERE conjuncts not consumed by scans or joins.
	if len(remaining) > 0 {
		cond := conjoin(remaining)
		input, err = rt.filter(input, cond)
		if err != nil {
			return nil, false, err
		}
	}

	grouped := len(s.GroupBy) > 0 || selectHasAggregate(s)

	// SQL resolves ORDER BY names against the output columns first; only
	// keys that cannot resolve there fall back to the input relation, so
	// pre-sorting is attempted only when the output cannot satisfy the
	// sort.
	preSorted := false
	if allowPreSort && !grouped && !s.Distinct && len(s.OrderBy) > 0 &&
		!rt.canOrderByOutput(s, input.schema) && rt.canOrder(input.schema, s.OrderBy) {
		ssp, sparent := rt.pushOp("sort")
		if err := rt.orderBy(input, s.OrderBy); err != nil {
			rt.popOp(ssp, sparent)
			return nil, false, err
		}
		ssp.SetInt("rows", int64(len(input.rows)))
		rt.popOp(ssp, sparent)
		preSorted = true
	}

	var out *relation
	if grouped {
		out, err = rt.groupProject(s, input)
	} else {
		if s.Having != nil {
			return nil, false, fmt.Errorf("exec: HAVING without GROUP BY or aggregates")
		}
		out, err = rt.project(s, input)
	}
	if err != nil {
		return nil, false, err
	}

	if s.Distinct {
		dsp, dparent := rt.pushOp("distinct")
		n := len(out.rows)
		out.rows = distinctRows(out.rows)
		if dsp != nil {
			dsp.SetInt("rows_in", int64(n))
			dsp.SetInt("rows", int64(len(out.rows)))
		}
		rt.popOp(dsp, dparent)
	}
	csp.SetInt("rows", int64(len(out.rows)))
	return out, preSorted, nil
}

// canOrder reports whether every ORDER BY key compiles against the
// schema (ordinals are excluded — they address output positions).
func (rt *Runtime) canOrder(s *schema.Schema, order []parse.OrderItem) bool {
	b := rt.bind(s)
	for _, o := range order {
		if lit, ok := o.Expr.(*parse.Literal); ok && lit.Val.Type() == value.TypeInt {
			return false
		}
		if _, err := b.compile(o.Expr); err != nil {
			return false
		}
	}
	return true
}

// canOrderByOutput reports whether the ORDER BY would resolve against
// the projection's column names (built without evaluating anything).
func (rt *Runtime) canOrderByOutput(s *parse.Select, in *schema.Schema) bool {
	items, err := expandItems(s, in)
	if err != nil {
		return false
	}
	cols := make([]schema.Column, len(items))
	for i, it := range items {
		cols[i] = it.col
	}
	return rt.canOrder(schema.New("", cols...), s.OrderBy)
}

func selectHasAggregate(s *parse.Select) bool {
	for _, it := range s.Items {
		if it.Expr != nil && parse.HasAggregate(it.Expr) {
			return true
		}
	}
	return s.Having != nil && parse.HasAggregate(s.Having)
}

// buildFrom evaluates the FROM list and performs the joins, consuming
// WHERE conjuncts as scan filters and equi-join predicates where
// possible. It returns the joined input as a batch source plus the
// unconsumed conjuncts. A two-element FROM list joined on hash keys
// streams (the join output is never materialized); everything else
// materializes and is served through a sliceSource.
func (rt *Runtime) buildFrom(s *parse.Select) (batchSource, []parse.Expr, error) {
	if len(s.From) == 0 {
		// Table-less SELECT: one empty row.
		r := &relation{schema: schema.New(""), rows: []schema.Row{{}}}
		var rest []parse.Expr
		if s.Where != nil {
			rest = splitConjuncts(s.Where)
		}
		return rt.newSliceSource(r), rest, nil
	}

	conjuncts := splitConjuncts(s.Where)
	used := make([]bool, len(conjuncts))

	// Scan every FROM element first (consuming index and local
	// predicates), so the planner sees all cardinalities before any
	// join runs.
	elems := make([]fromElem, len(s.From))
	for i, tr := range s.From {
		rel, t, err := rt.scanFor(tr, conjuncts, used)
		if err != nil {
			return nil, nil, err
		}
		rel, err = rt.applyLocal(rel, conjuncts, used)
		if err != nil {
			return nil, nil, err
		}
		elems[i] = fromElem{rel: rel, tab: t}
	}

	// Fetch statistics only when cost-based planning will actually run:
	// three or more inputs whose combined size clears the planning floor.
	if !rt.rowMode && len(elems) >= 3 {
		total := 0
		for _, e := range elems {
			total += len(e.rel.rows)
		}
		if total >= planRowsMin {
			for i := range elems {
				if elems[i].tab != nil {
					elems[i].stats = rt.tableStats(elems[i].tab)
				}
			}
		}
	}

	order := rt.planFromOrder(s, elems, conjuncts, used)

	cur := elems[order[0]].rel
	var err error
	for n, idx := range order[1:] {
		right := elems[idx].rel
		keys := equiJoinKeys(cur, right, conjuncts, used)
		// Streaming hash join for the final pair: nothing joins
		// afterwards, so the combined rows can flow straight into the
		// downstream operators out of a recycled scratch block instead
		// of materializing. Conjuncts over the joined schema stay
		// unconsumed and become the residual filter, exactly as
		// applyLocal would have filtered them. Requires canonical column
		// order (no remap pass after the join).
		last := n == len(order)-2
		if last && !rt.rowMode && isIdentity(order) && len(keys) > 0 {
			src, err := rt.newHashJoinSource(cur, right, keys)
			if err != nil {
				return nil, nil, err
			}
			var rest []parse.Expr
			for i, c := range conjuncts {
				if !used[i] {
					rest = append(rest, c)
				}
			}
			return src, rest, nil
		}
		cur, err = rt.joinKeys(cur, right, keys)
		if err != nil {
			return nil, nil, err
		}
		// Conjuncts that became evaluable over the widened schema.
		cur, err = rt.applyLocal(cur, conjuncts, used)
		if err != nil {
			return nil, nil, err
		}
	}
	if !isIdentity(order) {
		cur = rt.remapColumns(cur, elems, order)
	}

	var rest []parse.Expr
	for i, c := range conjuncts {
		if !used[i] {
			rest = append(rest, c)
		}
	}
	return rt.newSliceSource(cur), rest, nil
}

// scanFor materializes one FROM element, first trying to satisfy an
// equality conjunct through a hash index (point lookup instead of a
// full snapshot); the consumed conjunct is marked used. For a full
// base-table scan it also returns the owning table, so the caller can
// fetch statistics for the join-order planner when planning is worth
// it; index-narrowed results and non-table sources return nil.
func (rt *Runtime) scanFor(tr parse.TableRef, conjuncts []parse.Expr, used []bool) (*relation, *storage.Table, error) {
	if tr.Sub == nil && len(tr.Joins) == 0 {
		if t, ok := rt.tv().Table(tr.Name); ok {
			qual := tr.Alias
			if qual == "" {
				qual = tr.Name
			}
			qualified := t.Schema().WithQualifier(qual)
			for i, c := range conjuncts {
				if used[i] {
					continue
				}
				ord, lit, ok := indexableEquality(c, qualified)
				if !ok {
					continue
				}
				ix := rt.tv().IndexOn(t, ord)
				if ix == nil {
					continue
				}
				// Only take the index when the comparison is well typed,
				// so indexed and unindexed runs fail identically on type
				// mismatches. String literals coerce against DATE
				// columns, as in compareTri.
				colType := qualified.Col(ord).Type
				switch {
				case colType == value.TypeDate && lit.Type() == value.TypeString:
					cv, err := value.Coerce(lit, value.TypeDate)
					if err != nil {
						continue
					}
					lit = cv
				case colType.Numeric() && lit.Type().Numeric():
				case colType == lit.Type():
				default:
					continue
				}
				// Cost gate (batched mode): a one-distinct-value index
				// cannot narrow the scan, so skip it. Everything with
				// NDV >= 2 keeps the point lookup — on equality it is
				// never worse than the full scan. Small tables skip the
				// statistics consult entirely: the lookup is cheap either
				// way and sketch maintenance would dominate.
				var estRows int64 = -1
				if !rt.rowMode && rt.tv().Len(t) >= planRowsMin {
					st := rt.tableStats(t)
					if st.Rows > 0 && st.Cols[ord].NDV <= 1 {
						continue
					}
					if ndv := st.Cols[ord].NDV; ndv > 0 {
						estRows = st.Rows / ndv
					}
					if m := rt.Met; m != nil {
						m.PlannerIndexPaths.Inc()
					}
				}
				used[i] = true
				sp, parent := rt.pushOp("index lookup")
				rows := rt.tv().Lookup(t, ix, lit.Key())
				if m := rt.Met; m != nil {
					m.RowsScanned.Add(int64(len(rows)))
				}
				if sp != nil {
					sp.SetStr("table", tr.Name)
					sp.SetStr("index", ix.Name())
					sp.SetInt("rows", int64(len(rows)))
					if estRows >= 0 {
						sp.SetInt("est_rows", estRows)
					}
				}
				rt.popOp(sp, parent)
				rt.tracef("index lookup %s.%s = %s via %s: %d row(s)",
					tr.Name, qualified.Col(ord).Name, lit, ix.Name(), len(rows))
				return &relation{schema: qualified, rows: rows}, nil, nil
			}
			rel, err := rt.scan(tr)
			if err != nil {
				return nil, nil, err
			}
			return rel, t, nil
		}
	}
	rel, err := rt.scan(tr)
	return rel, nil, err
}

// tableStats fetches a table's statistics, counting refreshes.
func (rt *Runtime) tableStats(t *storage.Table) *storage.TableStats {
	st, refreshed := t.Stats()
	if refreshed {
		if m := rt.Met; m != nil {
			m.StatsRefreshes.Inc()
		}
	}
	return st
}

// indexableEquality matches "col = literal" (either orientation) where
// col resolves in the given schema, returning the column ordinal and
// the literal value.
func indexableEquality(c parse.Expr, s *schema.Schema) (int, value.Value, bool) {
	be, ok := c.(*parse.BinaryExpr)
	if !ok || be.Op != parse.OpEq {
		return 0, value.Null, false
	}
	try := func(refSide, litSide parse.Expr) (int, value.Value, bool) {
		cr, ok := refSide.(*parse.ColumnRef)
		if !ok {
			return 0, value.Null, false
		}
		lit, ok := litSide.(*parse.Literal)
		if !ok || lit.Val.IsNull() {
			return 0, value.Null, false
		}
		ord, err := s.Resolve(cr.Qual, cr.Name)
		if err != nil {
			return 0, value.Null, false
		}
		return ord, lit.Val, true
	}
	if ord, v, ok := try(be.L, be.R); ok {
		return ord, v, true
	}
	return try(be.R, be.L)
}

// scan materializes one FROM element, including any explicit JOIN
// clauses attached to it.
func (rt *Runtime) scan(tr parse.TableRef) (*relation, error) {
	rel, err := rt.scanBase(tr)
	if err != nil {
		return nil, err
	}
	for _, j := range tr.Joins {
		right, err := rt.scanBase(j.Right)
		if err != nil {
			return nil, err
		}
		rel, err = rt.explicitJoin(rel, right, j)
		if err != nil {
			return nil, err
		}
	}
	return rel, nil
}

// explicitJoin evaluates "left [LEFT] JOIN right ON cond". Equi-join
// conjuncts of the ON condition drive a hash join; the residual
// condition evaluates per candidate pair. LEFT JOIN pads unmatched left
// rows with NULLs.
func (rt *Runtime) explicitJoin(left, right *relation, j parse.JoinClause) (*relation, error) {
	sp, parent := rt.pushOp("join")
	defer rt.popOp(sp, parent)
	outSchema := left.schema.Append(right.schema)
	conjuncts := splitConjuncts(j.On)

	// Find hashable equi-key pairs.
	var keys []keyPair
	var residual []parse.Expr
	for _, c := range conjuncts {
		be, ok := c.(*parse.BinaryExpr)
		if ok && be.Op == parse.OpEq {
			lc, lok := be.L.(*parse.ColumnRef)
			rc, rok := be.R.(*parse.ColumnRef)
			if lok && rok {
				if li, err := left.schema.Resolve(lc.Qual, lc.Name); err == nil {
					if ri, err := right.schema.Resolve(rc.Qual, rc.Name); err == nil &&
						!right.schema.Has(lc.Qual, lc.Name) && !left.schema.Has(rc.Qual, rc.Name) {
						keys = append(keys, keyPair{li, ri})
						continue
					}
				}
				if li, err := left.schema.Resolve(rc.Qual, rc.Name); err == nil {
					if ri, err := right.schema.Resolve(lc.Qual, lc.Name); err == nil &&
						!right.schema.Has(rc.Qual, rc.Name) && !left.schema.Has(lc.Qual, lc.Name) {
						keys = append(keys, keyPair{li, ri})
						continue
					}
				}
			}
		}
		residual = append(residual, c)
	}

	var residualFn evalFunc
	if len(residual) > 0 {
		b := rt.bind(outSchema)
		f, err := b.compile(conjoin(residual))
		if err != nil {
			return nil, err
		}
		residualFn = f
	}

	// Bucket the build side by the equi keys (single bucket when none).
	// LEFT JOIN must probe from the left (unmatched left rows pad with
	// NULLs); inner joins in batched mode build on the smaller input.
	buildRel, probeRel := right, left
	buildIsLeft := false
	if j.Kind != parse.LeftJoin && !rt.rowMode && len(left.rows) < len(right.rows) {
		buildRel, probeRel = left, right
		buildIsLeft = true
	}
	// Key bytes build into one reused buffer; the string materializes only
	// when a new bucket is created (map lookups on string(buf) are
	// allocation-free).
	buckets := make(map[string][]schema.Row)
	var kb []byte
	keyOf := func(dst []byte, row schema.Row, left bool) ([]byte, bool) {
		for _, k := range keys {
			c := k.r
			if left {
				c = k.l
			}
			v := row[c]
			if v.IsNull() {
				return dst, false
			}
			dst = schema.AppendValueKey(dst, v)
		}
		return dst, true
	}
	for _, r := range buildRel.rows {
		var ok bool
		kb, ok = keyOf(kb[:0], r, buildIsLeft)
		if !ok {
			continue
		}
		buckets[string(kb)] = append(buckets[string(kb)], r)
	}

	rt.tracef("%s: %d x %d row(s), %d hash key(s), residual=%v",
		j.Kind, len(left.rows), len(right.rows), len(keys), residualFn != nil)
	if sp != nil {
		sp.SetStr("kind", j.Kind.String())
		sp.SetInt("keys", int64(len(keys)))
		sp.SetInt("rows_left", int64(len(left.rows)))
		sp.SetInt("rows_right", int64(len(right.rows)))
		if buildIsLeft {
			sp.SetStr("build", "left")
		}
	}
	nullRight := make(schema.Row, right.schema.Len())
	var out []schema.Row
	combined := make(schema.Row, outSchema.Len())
	lw := left.schema.Len()
	for _, p := range probeRel.rows {
		matched := false
		var ok bool
		kb, ok = keyOf(kb[:0], p, !buildIsLeft)
		if ok {
			for _, b := range buckets[string(kb)] {
				l, r := p, b
				if buildIsLeft {
					l, r = b, p
				}
				copy(combined, l)
				copy(combined[lw:], r)
				if residualFn != nil {
					v, err := residualFn(combined)
					if err != nil {
						return nil, err
					}
					t, err := value.TristateFromValue(v)
					if err != nil {
						return nil, err
					}
					if t != value.True {
						continue
					}
				}
				if err := rt.charge(1); err != nil {
					return nil, err
				}
				matched = true
				out = append(out, append(append(make(schema.Row, 0, len(combined)), l...), r...))
			}
		}
		if !matched && j.Kind == parse.LeftJoin {
			if err := rt.charge(1); err != nil {
				return nil, err
			}
			out = append(out, append(append(make(schema.Row, 0, len(combined)), p...), nullRight...))
		}
	}
	sp.SetInt("rows", int64(len(out)))
	return &relation{schema: outSchema, rows: out}, nil
}

// scanBase materializes a base table, a view (re-planned), or a derived
// table, applying the alias as qualifier.
func (rt *Runtime) scanBase(tr parse.TableRef) (*relation, error) {
	var rel *relation
	qual := tr.Alias
	switch {
	case tr.Sub != nil:
		sp, parent := rt.pushOp("derived")
		sub, err := rt.execSelect(tr.Sub)
		if err != nil {
			rt.popOp(sp, parent)
			return nil, err
		}
		sp.SetInt("rows", int64(len(sub.rows)))
		rt.popOp(sp, parent)
		rt.tracef("derived table: %d row(s)", len(sub.rows))
		rel = sub
	default:
		if t, ok := rt.tv().Table(tr.Name); ok {
			rel = &relation{schema: t.Schema(), rows: rt.tv().Rows(t)}
			if err := rt.poll(); err != nil {
				return nil, err
			}
			if m := rt.Met; m != nil {
				m.RowsScanned.Add(int64(len(rel.rows)))
			}
			if sp, parent := rt.pushOp("scan"); sp != nil {
				sp.SetStr("table", tr.Name)
				sp.SetInt("rows", int64(len(rel.rows)))
				if !rt.rowMode {
					if st := t.CachedStats(); st != nil {
						sp.SetInt("est_rows", st.Rows)
					}
				}
				rt.popOp(sp, parent)
			}
			rt.tracef("scan table %s: %d row(s)", tr.Name, len(rel.rows))
			if qual == "" {
				qual = tr.Name
			}
			break
		}
		if v, ok := rt.tv().View(tr.Name); ok {
			sp, parent := rt.pushOp("view")
			sel, err := rt.planView(v)
			if err != nil {
				rt.popOp(sp, parent)
				return nil, err
			}
			sub, err := rt.execSelect(sel)
			if err != nil {
				rt.popOp(sp, parent)
				return nil, fmt.Errorf("exec: view %s: %w", v.Name, err)
			}
			if sp != nil {
				sp.SetStr("name", v.Name)
				sp.SetInt("rows", int64(len(sub.rows)))
			}
			rt.popOp(sp, parent)
			rt.tracef("expand view %s: %d row(s)", v.Name, len(sub.rows))
			rel = sub
			if qual == "" {
				qual = tr.Name
			}
			break
		}
		return nil, &PosError{Err: fmt.Errorf("exec: unknown table or view %q", tr.Name), Off: tr.Pos}
	}
	if qual != "" {
		rel = &relation{schema: rel.schema.WithQualifier(qual), rows: rel.rows}
	}
	return rel, nil
}

// splitConjuncts flattens a WHERE tree over AND into its conjuncts.
func splitConjuncts(e parse.Expr) []parse.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*parse.BinaryExpr); ok && b.Op == parse.OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []parse.Expr{e}
}

func conjoin(es []parse.Expr) parse.Expr {
	e := es[0]
	for _, n := range es[1:] {
		e = &parse.BinaryExpr{Op: parse.OpAnd, L: e, R: n}
	}
	return e
}

// applyLocal applies every unconsumed conjunct that compiles against the
// relation's schema, marking it used.
func (rt *Runtime) applyLocal(rel *relation, conjuncts []parse.Expr, used []bool) (*relation, error) {
	var applicable []parse.Expr
	for i, c := range conjuncts {
		if used[i] {
			continue
		}
		b := rt.bind(rel.schema)
		if _, err := b.compile(c); err == nil {
			applicable = append(applicable, c)
			used[i] = true
		}
	}
	if len(applicable) == 0 {
		return rel, nil
	}
	return rt.filter(rel, conjoin(applicable))
}

// filter keeps the rows for which cond is TRUE.
func (rt *Runtime) filter(rel *relation, cond parse.Expr) (*relation, error) {
	sp, parent := rt.pushOp("filter")
	defer rt.popOp(sp, parent)
	b := rt.bind(rel.schema)
	f, err := b.compile(cond)
	if err != nil {
		return nil, err
	}
	out := make([]schema.Row, 0, len(rel.rows))
	for _, row := range rel.rows {
		if err := rt.poll(); err != nil {
			return nil, err
		}
		v, err := f(row)
		if err != nil {
			return nil, err
		}
		t, err := value.TristateFromValue(v)
		if err != nil {
			return nil, err
		}
		if t == value.True {
			out = append(out, row)
		}
	}
	rt.tracef("filter %s: %d -> %d row(s)", cond.SQL(), len(rel.rows), len(out))
	if sp != nil {
		sp.SetStr("cond", cond.SQL())
		sp.SetInt("rows_in", int64(len(rel.rows)))
		sp.SetInt("rows", int64(len(out)))
	}
	return &relation{schema: rel.schema, rows: out}, nil
}

// equiJoinKeys collects the unconsumed equality conjuncts that link cur
// and right ("cur.col = right.col" in either orientation, each side
// resolving unambiguously) as hash-join key pairs, marking them used.
func equiJoinKeys(cur, right *relation, conjuncts []parse.Expr, used []bool) []keyPair {
	var keys []keyPair
	for i, c := range conjuncts {
		if used[i] {
			continue
		}
		be, ok := c.(*parse.BinaryExpr)
		if !ok || be.Op != parse.OpEq {
			continue
		}
		lc, lok := be.L.(*parse.ColumnRef)
		rc, rok := be.R.(*parse.ColumnRef)
		if !lok || !rok {
			continue
		}
		li, lerr := cur.schema.Resolve(lc.Qual, lc.Name)
		ri, rerr := right.schema.Resolve(rc.Qual, rc.Name)
		if lerr == nil && rerr == nil && !right.schema.Has(lc.Qual, lc.Name) && !cur.schema.Has(rc.Qual, rc.Name) {
			keys = append(keys, keyPair{li, ri})
			used[i] = true
			continue
		}
		// Try the flipped orientation.
		li2, lerr2 := cur.schema.Resolve(rc.Qual, rc.Name)
		ri2, rerr2 := right.schema.Resolve(lc.Qual, lc.Name)
		if lerr2 == nil && rerr2 == nil && !right.schema.Has(rc.Qual, rc.Name) && !cur.schema.Has(lc.Qual, lc.Name) {
			keys = append(keys, keyPair{li2, ri2})
			used[i] = true
		}
	}
	return keys
}

// joinKeys combines cur and right. With equi-join keys it performs a
// hash join; otherwise it falls back to the Cartesian product
// (subsequent applyLocal passes filter it).
func (rt *Runtime) joinKeys(cur, right *relation, keys []keyPair) (*relation, error) {
	sp, parent := rt.pushOp("join")
	defer rt.popOp(sp, parent)

	outSchema := cur.schema.Append(right.schema)
	var out []schema.Row

	if sp != nil {
		sp.SetInt("rows_left", int64(len(cur.rows)))
		sp.SetInt("rows_right", int64(len(right.rows)))
	}
	if len(keys) > 0 {
		if sp != nil {
			sp.SetStr("strategy", "hash")
			sp.SetInt("keys", int64(len(keys)))
			// Estimated output under the key-foreign-key assumption:
			// every probe row matches about once.
			est := int64(len(cur.rows))
			if r := int64(len(right.rows)); r < est {
				est = r
			}
			sp.SetInt("est_rows", est)
		}
		rt.tracef("hash join on %d key(s): %d x %d row(s)", len(keys), len(cur.rows), len(right.rows))
		if !rt.rowMode {
			rows, buildSide, err := rt.hashJoinBatched(cur, right, keys)
			if err != nil {
				return nil, err
			}
			out = rows
			if sp != nil {
				sp.SetStr("build", buildSide)
			}
		} else {
			// Hash join: build on the right side. One reused key buffer serves
			// both phases; probe lookups never materialize a string.
			build := make(map[string][]schema.Row, len(right.rows))
			var kb []byte
		buildLoop:
			for _, r := range right.rows {
				kb = kb[:0]
				for _, k := range keys {
					if r[k.r].IsNull() {
						continue buildLoop // NULL never joins
					}
					kb = schema.AppendValueKey(kb, r[k.r])
				}
				build[string(kb)] = append(build[string(kb)], r)
			}
		probeLoop:
			for _, l := range cur.rows {
				kb = kb[:0]
				for _, k := range keys {
					if l[k.l].IsNull() {
						continue probeLoop
					}
					kb = schema.AppendValueKey(kb, l[k.l])
				}
				for _, r := range build[string(kb)] {
					if err := rt.charge(1); err != nil {
						return nil, err
					}
					row := make(schema.Row, 0, len(l)+len(r))
					row = append(row, l...)
					row = append(row, r...)
					out = append(out, row)
				}
			}
		}
	} else {
		sp.SetStr("strategy", "cartesian")
		if sp != nil {
			sp.SetInt("est_rows", int64(len(cur.rows))*int64(len(right.rows)))
		}
		rt.tracef("cartesian product: %d x %d row(s)", len(cur.rows), len(right.rows))
		if !rt.rowMode {
			rows, err := rt.cartesianBatched(cur, right)
			if err != nil {
				return nil, err
			}
			out = rows
		} else {
			for _, l := range cur.rows {
				for _, r := range right.rows {
					if err := rt.charge(1); err != nil {
						return nil, err
					}
					row := make(schema.Row, 0, len(l)+len(r))
					row = append(row, l...)
					row = append(row, r...)
					out = append(out, row)
				}
			}
		}
	}
	sp.SetInt("rows", int64(len(out)))
	return &relation{schema: outSchema, rows: out}, nil
}

// ---------------------------------------------------------------------------
// Projection

// expandItems resolves *, qual.* and expression items against the input
// schema, returning one (outputColumn, expr-or-ordinal) per output column.
type projItem struct {
	col  schema.Column
	expr parse.Expr // nil when ordinal >= 0
	ord  int        // input ordinal for star expansion, else -1
}

func expandItems(s *parse.Select, in *schema.Schema) ([]projItem, error) {
	var items []projItem
	for _, it := range s.Items {
		switch {
		case it.Star:
			for i := 0; i < in.Len(); i++ {
				items = append(items, projItem{col: in.Col(i), ord: i})
			}
		case it.StarQual != "":
			q := strings.ToLower(it.StarQual)
			found := false
			for i := 0; i < in.Len(); i++ {
				if in.Qual(i) == q {
					items = append(items, projItem{col: in.Col(i), ord: i})
					found = true
				}
			}
			if !found {
				return nil, fmt.Errorf("exec: unknown relation %q in %s.*", it.StarQual, it.StarQual)
			}
		default:
			name := it.Alias
			if name == "" {
				switch x := it.Expr.(type) {
				case *parse.ColumnRef:
					name = x.Name
				case *parse.FuncCall:
					name = x.Name
				case *parse.NextVal:
					name = "NEXTVAL"
				default:
					name = fmt.Sprintf("COL%d", len(items)+1)
				}
			}
			items = append(items, projItem{col: schema.Column{Name: name}, expr: it.Expr, ord: -1})
		}
	}
	return items, nil
}

// project evaluates the select list over each input row (no grouping).
func (rt *Runtime) project(s *parse.Select, in *relation) (*relation, error) {
	sp, parent := rt.pushOp("project")
	defer rt.popOp(sp, parent)
	items, err := expandItems(s, in.schema)
	if err != nil {
		return nil, err
	}
	b := rt.bind(in.schema)
	fns := make([]evalFunc, len(items))
	for i, it := range items {
		if it.ord >= 0 {
			ord := it.ord
			fns[i] = func(row schema.Row) (value.Value, error) { return row[ord], nil }
			continue
		}
		f, err := b.compile(it.expr)
		if err != nil {
			return nil, err
		}
		fns[i] = f
	}
	outRows := make([]schema.Row, 0, len(in.rows))
	for _, row := range in.rows {
		if err := rt.charge(1); err != nil {
			return nil, err
		}
		out := make(schema.Row, len(fns))
		for i, f := range fns {
			v, err := f(row)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		outRows = append(outRows, out)
	}
	sp.SetInt("rows", int64(len(outRows)))
	return &relation{schema: outputSchema(items, outRows), rows: outRows}, nil
}

// outputSchema derives column types from the first row when available;
// column types of empty results default to the star-expansion types.
func outputSchema(items []projItem, rows []schema.Row) *schema.Schema {
	cols := make([]schema.Column, len(items))
	for i, it := range items {
		cols[i] = it.col
	}
	if len(rows) > 0 {
		for i := range cols {
			if cols[i].Type == value.TypeNull {
				for _, r := range rows {
					if !r[i].IsNull() {
						cols[i].Type = r[i].Type()
						break
					}
				}
			}
		}
	}
	return schema.New("", cols...)
}

// ---------------------------------------------------------------------------
// Grouping

type group struct {
	rows []schema.Row
}

// groupProject implements GROUP BY / HAVING / aggregate projection.
// Non-aggregate select expressions are evaluated on the group's first
// row, which is well-defined for expressions over the grouping columns
// (the only forms the translator emits).
func (rt *Runtime) groupProject(s *parse.Select, in *relation) (*relation, error) {
	sp, parent := rt.pushOp("group")
	defer rt.popOp(sp, parent)
	items, err := expandItems(s, in.schema)
	if err != nil {
		return nil, err
	}

	// Collect aggregate nodes from the projection and HAVING.
	var aggNodes []*parse.FuncCall
	aggSlots := make(map[*parse.FuncCall]int)
	collect := func(e parse.Expr) {
		parse.WalkExprs(e, func(x parse.Expr) bool {
			if f, ok := x.(*parse.FuncCall); ok && f.IsAggregate() {
				if _, seen := aggSlots[f]; !seen {
					aggSlots[f] = len(aggNodes)
					aggNodes = append(aggNodes, f)
				}
				return false
			}
			return true
		})
	}
	for _, it := range items {
		if it.expr != nil {
			collect(it.expr)
		}
	}
	if s.Having != nil {
		collect(s.Having)
	}

	// Group keys.
	keyBind := rt.bind(in.schema)
	keyFns := make([]evalFunc, len(s.GroupBy))
	for i, g := range s.GroupBy {
		f, err := keyBind.compile(g)
		if err != nil {
			return nil, err
		}
		keyFns[i] = f
	}

	groups := make(map[string]*group)
	var order []string
	kr := make(schema.Row, len(keyFns))
	var kbuf []byte
	for _, row := range in.rows {
		if err := rt.charge(1); err != nil {
			return nil, err
		}
		for i, f := range keyFns {
			v, err := f(row)
			if err != nil {
				return nil, err
			}
			kr[i] = v
		}
		kbuf = kr.AppendKey(kbuf[:0])
		g, ok := groups[string(kbuf)]
		if !ok {
			// Materialize the key string only for new groups.
			k := string(kbuf)
			g = &group{}
			groups[k] = g
			order = append(order, k)
		}
		g.rows = append(g.rows, row)
	}
	// Global aggregate over empty input still yields one group.
	if len(s.GroupBy) == 0 && len(order) == 0 {
		groups[""] = &group{}
		order = append(order, "")
	}

	// Compile aggregate argument expressions once.
	aggArgFns := make([]evalFunc, len(aggNodes))
	for i, a := range aggNodes {
		if a.Star {
			continue
		}
		if len(a.Args) != 1 {
			return nil, &PosError{Err: fmt.Errorf("exec: %s takes one argument", a.Name), Off: a.Pos}
		}
		f, err := keyBind.compile(a.Args[0])
		if err != nil {
			return nil, err
		}
		aggArgFns[i] = f
	}

	// Compile projection and HAVING against a binding that resolves
	// aggregate calls through aggRow.
	aggRow := make([]value.Value, len(aggNodes))
	pb := rt.bind(in.schema)
	pb.aggs = aggSlots
	pb.aggRow = &aggRow
	itemFns := make([]evalFunc, len(items))
	for i, it := range items {
		if it.ord >= 0 {
			ord := it.ord
			itemFns[i] = func(row schema.Row) (value.Value, error) { return row[ord], nil }
			continue
		}
		f, err := pb.compile(it.expr)
		if err != nil {
			return nil, err
		}
		itemFns[i] = f
	}
	var havingFn evalFunc
	if s.Having != nil {
		f, err := pb.compile(s.Having)
		if err != nil {
			return nil, err
		}
		havingFn = f
	}

	nullRow := make(schema.Row, in.schema.Len())
	var outRows []schema.Row
	for _, k := range order {
		g := groups[k]
		for i, a := range aggNodes {
			v, err := computeAggregate(a, aggArgFns[i], g.rows)
			if err != nil {
				return nil, err
			}
			aggRow[i] = v
		}
		rep := nullRow
		if len(g.rows) > 0 {
			rep = g.rows[0]
		}
		if havingFn != nil {
			hv, err := havingFn(rep)
			if err != nil {
				return nil, err
			}
			t, err := value.TristateFromValue(hv)
			if err != nil {
				return nil, err
			}
			if t != value.True {
				continue
			}
		}
		out := make(schema.Row, len(itemFns))
		for i, f := range itemFns {
			v, err := f(rep)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		outRows = append(outRows, out)
	}
	if sp != nil {
		sp.SetInt("groups", int64(len(order)))
		sp.SetInt("rows", int64(len(outRows)))
	}
	return &relation{schema: outputSchema(items, outRows), rows: outRows}, nil
}

// computeAggregate evaluates one aggregate call over a group.
func computeAggregate(a *parse.FuncCall, argFn evalFunc, rows []schema.Row) (value.Value, error) {
	if a.Star { // COUNT(*)
		return value.NewInt(int64(len(rows))), nil
	}
	var (
		vals []value.Value
		seen map[string]bool
		buf  []byte
	)
	if a.Distinct {
		seen = make(map[string]bool)
	}
	for _, r := range rows {
		v, err := argFn(r)
		if err != nil {
			return value.Null, err
		}
		if v.IsNull() {
			continue
		}
		if a.Distinct {
			buf = v.AppendKey(buf[:0])
			if seen[string(buf)] {
				continue
			}
			seen[string(buf)] = true
		}
		vals = append(vals, v)
	}
	switch a.Name {
	case "COUNT":
		return value.NewInt(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return value.Null, nil
		}
		allInt := true
		var fsum float64
		var isum int64
		for _, v := range vals {
			if !v.Type().Numeric() {
				return value.Null, fmt.Errorf("exec: %s over %s", a.Name, v.Type())
			}
			if v.Type() != value.TypeInt {
				allInt = false
			}
			fsum += v.Float()
			if v.Type() == value.TypeInt {
				isum += v.Int()
			}
		}
		if a.Name == "AVG" {
			return value.NewFloat(fsum / float64(len(vals))), nil
		}
		if allInt {
			return value.NewInt(isum), nil
		}
		return value.NewFloat(fsum), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return value.Null, nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			c, err := value.Compare(v, best)
			if err != nil {
				return value.Null, err
			}
			if (a.Name == "MIN" && c < 0) || (a.Name == "MAX" && c > 0) {
				best = v
			}
		}
		return best, nil
	}
	return value.Null, fmt.Errorf("exec: unknown aggregate %s", a.Name)
}

// ---------------------------------------------------------------------------
// DISTINCT and ORDER BY

func distinctRows(rows []schema.Row) []schema.Row {
	seen := make(map[string]bool, len(rows))
	out := rows[:0:0]
	var buf []byte
	for _, r := range rows {
		buf = r.AppendKey(buf[:0])
		if seen[string(buf)] {
			continue
		}
		seen[string(buf)] = true
		out = append(out, r)
	}
	return out
}

func (rt *Runtime) orderBy(rel *relation, order []parse.OrderItem) error {
	fns := make([]evalFunc, len(order))
	b := rt.bind(rel.schema)
	for i, o := range order {
		// ORDER BY ordinal (1-based) addresses an output column.
		if lit, ok := o.Expr.(*parse.Literal); ok && lit.Val.Type() == value.TypeInt {
			ord := int(lit.Val.Int()) - 1
			if ord < 0 || ord >= rel.schema.Len() {
				return fmt.Errorf("exec: ORDER BY position %d out of range", ord+1)
			}
			fns[i] = func(row schema.Row) (value.Value, error) { return row[ord], nil }
			continue
		}
		f, err := b.compile(o.Expr)
		if err != nil {
			// The projection drops input qualifiers; let "t.a" fall back
			// to "a" when that resolves in the output schema, so that
			// ORDER BY over joined columns keeps working.
			if cr, ok := o.Expr.(*parse.ColumnRef); ok && cr.Qual != "" {
				if f2, err2 := b.compile(&parse.ColumnRef{Name: cr.Name}); err2 == nil {
					fns[i] = f2
					continue
				}
			}
			return err
		}
		fns[i] = f
	}
	var sortErr error
	sort.SliceStable(rel.rows, func(i, j int) bool {
		if sortErr != nil {
			return false
		}
		if err := rt.poll(); err != nil {
			sortErr = err
			return false
		}
		for k, f := range fns {
			vi, err := f(rel.rows[i])
			if err != nil {
				sortErr = err
				return false
			}
			vj, err := f(rel.rows[j])
			if err != nil {
				sortErr = err
				return false
			}
			// NULLs sort first, as a fixed engine-wide rule.
			switch {
			case vi.IsNull() && vj.IsNull():
				continue
			case vi.IsNull():
				return !order[k].Desc
			case vj.IsNull():
				return order[k].Desc
			}
			c, err := value.Compare(vi, vj)
			if err != nil {
				sortErr = err
				return false
			}
			if c == 0 {
				continue
			}
			if order[k].Desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return sortErr
}
