package exec

import (
	"context"

	"minerule/internal/sql/schema"
	"minerule/internal/sql/storage"
)

// TxnView is the executor's window onto the database: every name
// resolution, row read, mutation, and DDL flows through it. The engine
// installs a transaction (internal/sql/txn.Txn satisfies this
// interface) so reads see the transaction's consistent snapshot and
// writes buffer under its locks; a Runtime used without an engine gets
// directView, which preserves the historical live-read, journal-first
// direct-mutation behavior.
//
// Reads take the *storage.Table returned by Table/ForWrite as a
// handle; the view decides which rows of it are visible. Writers must
// call ForWrite before InsertRows/ReplaceRows.
type TxnView interface {
	// Snapshot reads.
	Table(name string) (*storage.Table, bool)
	View(name string) (*storage.View, bool)
	Sequence(name string) (*storage.Sequence, bool)
	Rows(t *storage.Table) []schema.Row
	Len(t *storage.Table) int
	IndexOn(t *storage.Table, col int) *storage.Index
	Lookup(t *storage.Table, ix *storage.Index, key string) []schema.Row
	// CatalogVersion is the DDL generation the view's reads resolve
	// under — the invalidation key for plan caches. StatsEpoch is the
	// statistics generation for cost-based decisions.
	CatalogVersion() uint64
	StatsEpoch() uint64

	// Writes.
	ForWrite(ctx context.Context, name string) (t *storage.Table, ok bool, err error)
	InsertRows(t *storage.Table, rows []schema.Row) error
	ReplaceRows(t *storage.Table, rows []schema.Row) error

	// DDL. The context bounds lock waits where a lock is involved.
	CreateTable(ctx context.Context, name string, s *schema.Schema) (*storage.Table, error)
	DropTable(ctx context.Context, name string) error
	CreateView(name, text string) error
	DropView(name string) error
	CreateSequence(name string) (*storage.Sequence, error)
	DropSequence(name string) error
	CreateIndex(ctx context.Context, name, table string, col int) (*storage.Index, error)
	DropIndex(ctx context.Context, name string) error
}

// directView is the transactionless TxnView: reads hit the live
// catalog, writes apply immediately through the storage layer's
// journal-first methods. It keeps a bare Runtime (tests, tools built on
// exec alone) behaving exactly as before the transaction subsystem.
type directView struct {
	cat *storage.Catalog
}

func (d directView) Table(name string) (*storage.Table, bool) { return d.cat.Table(name) }
func (d directView) View(name string) (*storage.View, bool)   { return d.cat.View(name) }
func (d directView) Sequence(name string) (*storage.Sequence, bool) {
	return d.cat.Sequence(name)
}
func (d directView) Rows(t *storage.Table) []schema.Row { return t.Snapshot() }
func (d directView) Len(t *storage.Table) int           { return t.Len() }
func (d directView) IndexOn(t *storage.Table, col int) *storage.Index {
	return t.IndexOn(col)
}
func (d directView) Lookup(t *storage.Table, ix *storage.Index, key string) []schema.Row {
	return t.Lookup(ix, key)
}
func (d directView) CatalogVersion() uint64 { return d.cat.Version() }
func (d directView) StatsEpoch() uint64     { return d.cat.StatsEpoch() }

func (d directView) ForWrite(_ context.Context, name string) (*storage.Table, bool, error) {
	t, ok := d.cat.Table(name)
	return t, ok, nil
}
func (d directView) InsertRows(t *storage.Table, rows []schema.Row) error {
	return t.InsertAll(rows)
}
func (d directView) ReplaceRows(t *storage.Table, rows []schema.Row) error {
	if rows == nil {
		// DELETE without WHERE journals a Truncate, as it always has.
		return t.Truncate()
	}
	return t.Replace(rows)
}

func (d directView) CreateTable(_ context.Context, name string, s *schema.Schema) (*storage.Table, error) {
	return d.cat.CreateTable(name, s)
}
func (d directView) DropTable(_ context.Context, name string) error { return d.cat.DropTable(name) }
func (d directView) CreateView(name, text string) error             { return d.cat.CreateView(name, text) }
func (d directView) DropView(name string) error                     { return d.cat.DropView(name) }
func (d directView) CreateSequence(name string) (*storage.Sequence, error) {
	return d.cat.CreateSequence(name)
}
func (d directView) DropSequence(name string) error { return d.cat.DropSequence(name) }
func (d directView) CreateIndex(_ context.Context, name, table string, col int) (*storage.Index, error) {
	return d.cat.CreateIndex(name, table, col)
}
func (d directView) DropIndex(_ context.Context, name string) error { return d.cat.DropIndex(name) }
