package exec

import (
	"context"
	"fmt"
	"runtime/debug"

	"minerule/internal/obsv"
	"minerule/internal/resource"
	"minerule/internal/sql/parse"
	"minerule/internal/sql/schema"
	"minerule/internal/sql/storage"
	"minerule/internal/sql/value"
)

// Runtime executes parsed statements against a catalog.
type Runtime struct {
	Cat *storage.Catalog
	// Txn is the statement's window onto the database: name resolution,
	// row visibility, mutations, and DDL all flow through it. The engine
	// installs the statement's transaction here; when nil, tv() lazily
	// falls back to a direct live view of Cat (the pre-transaction
	// behavior, kept for Runtimes built outside an engine).
	Txn TxnView
	// Trace, when non-nil, receives one line per executor decision
	// (scan source, join strategy, index use, …) — the engine's
	// EXPLAIN ANALYZE facility.
	Trace func(string)
	// Met, when non-nil, receives always-on engine counters (view-plan
	// cache hits, rows scanned); atomic adds, never allocating.
	Met *obsv.Metrics
	// Limits bounds the rows any single statement may materialize;
	// exceeding it fails with a *resource.BudgetError.
	Limits resource.Limits
	// env is the enclosing-subquery environment of the query currently
	// executing (nil at top level); managed by execSelectEnv.
	env *outerRef

	// ctx is the statement's cancellation context; rows and ops track
	// the materialized-row budget and the down-sampled context polling.
	ctx  context.Context
	rows int
	ops  int

	// plan is the operator span currently being built (nil unless an
	// EXPLAIN or a span collector is active). Operators push themselves
	// as children, so the finished tree mirrors the resolved plan; with
	// plan nil every pushOp/popOp is a pointer-comparison no-op.
	plan *obsv.Span

	// viewPlans caches re-parsed view bodies, keyed by view name. An
	// entry is valid only while the catalog version and view text it was
	// built under still match — any DDL invalidates it, so a cached plan
	// can never read a stale dictionary. No lock: the runtime is
	// single-threaded by contract (see execSelectEnv).
	viewPlans map[string]viewPlan

	// rowMode forces the row-at-a-time reference operators instead of
	// the batched path (see batch.go) — the oracle for the differential
	// suite and the compatibility baseline.
	rowMode bool

	// fromPlans caches cost-based FROM-list join orders per SELECT node
	// (statement-cache pointers are stable); entries are valid only
	// while catalog version and stats epoch both still match.
	fromPlans map[*parse.Select]fromPlan
}

// RowMode switches the runtime to the row-at-a-time reference
// executor. The batched path is the default.
func (rt *Runtime) RowMode(on bool) { rt.rowMode = on }

// viewPlan is one cached view resolution.
type viewPlan struct {
	version uint64 // catalog version the plan was built under
	text    string // view text the plan was parsed from
	sel     *parse.Select
}

// NewRuntime returns a Runtime over the given catalog.
func NewRuntime(cat *storage.Catalog) *Runtime { return &Runtime{Cat: cat} }

// tv returns the statement's database view, defaulting to the direct
// live view of the catalog when no transaction is installed.
func (rt *Runtime) tv() TxnView {
	if rt.Txn == nil {
		rt.Txn = directView{cat: rt.Cat}
	}
	return rt.Txn
}

// pollEvery is how many charged operations pass between context polls;
// checking ctx.Err on every row would dominate tight scan loops.
const pollEvery = 1024

// charge accounts n materialized rows against the statement budget and
// polls the context every pollEvery operations.
func (rt *Runtime) charge(n int) error {
	rt.rows += n
	if rt.Limits.MaxRows > 0 && rt.rows > rt.Limits.MaxRows {
		return &resource.BudgetError{Resource: "rows", Limit: rt.Limits.MaxRows}
	}
	rt.ops += n
	if rt.ops >= pollEvery {
		rt.ops = 0
		return resource.Check(rt.ctx)
	}
	return nil
}

// poll checks the statement context (down-sampled) without charging the
// row budget; used in loops that compare rather than materialize.
func (rt *Runtime) poll() error {
	rt.ops++
	if rt.ops >= pollEvery {
		rt.ops = 0
		return resource.Check(rt.ctx)
	}
	return nil
}

// ExecContext runs one parsed statement under a cancellation context and
// the runtime's Limits, with a panic-containment boundary: a bug below
// this point surfaces as a *resource.InternalError (or, for mistyped
// value accessors, the *value.TypeError itself) instead of crashing the
// process.
func (rt *Runtime) ExecContext(ctx context.Context, st parse.Statement) (res *Result, err error) {
	prev := rt.ctx
	rt.ctx = ctx
	rt.rows, rt.ops = 0, 0
	defer func() {
		rt.ctx = prev
		if p := recover(); p != nil {
			res = nil
			if te, ok := p.(*value.TypeError); ok {
				err = fmt.Errorf("exec: %w", te)
				return
			}
			err = resource.NewInternalError("exec", p, debug.Stack())
		}
	}()
	if cerr := resource.Check(ctx); cerr != nil {
		return nil, cerr
	}
	return rt.Exec(st)
}

// tracef emits one trace line when tracing is enabled.
func (rt *Runtime) tracef(format string, args ...interface{}) {
	if rt.Trace != nil {
		rt.Trace(fmt.Sprintf(format, args...))
	}
}

// pushOp opens an operator span as a child of the current plan node and
// makes it current; popOp finishes it and restores the parent. Both are
// no-ops (one pointer comparison, zero allocation) when no plan
// collector is installed.
func (rt *Runtime) pushOp(name string) (sp, parent *obsv.Span) {
	if rt.plan == nil {
		return nil, nil
	}
	parent = rt.plan
	sp = parent.StartChild(name)
	rt.plan = sp
	return sp, parent
}

func (rt *Runtime) popOp(sp, parent *obsv.Span) {
	if sp == nil {
		return
	}
	sp.Finish()
	rt.plan = parent
}

// CollectPlan executes a SELECT with the operator collector installed
// and returns the resolved operator tree alongside the result. It backs
// both the EXPLAIN statement and the kernel's -trace span view.
func (rt *Runtime) CollectPlan(s *parse.Select) (*obsv.Span, *Result, error) {
	root := obsv.NewSpan("query")
	prev := rt.plan
	rt.plan = root
	rel, err := rt.execSelect(s)
	rt.plan = prev
	root.Finish()
	if err != nil {
		return nil, nil, err
	}
	root.SetInt("rows", int64(len(rel.rows)))
	return root, &Result{Schema: rel.schema, Rows: rel.rows}, nil
}

// Result is the outcome of one statement. Schema and Rows are set for
// queries; RowsAffected for DML.
type Result struct {
	Schema       *schema.Schema
	Rows         []schema.Row
	RowsAffected int
}

// Exec runs one parsed statement.
func (rt *Runtime) Exec(st parse.Statement) (*Result, error) {
	switch x := st.(type) {
	case *parse.Select:
		rel, err := rt.execSelect(x)
		if err != nil {
			return nil, err
		}
		return &Result{Schema: rel.schema, Rows: rel.rows}, nil

	case *parse.Explain:
		return rt.execExplain(x)

	case *parse.CreateTable:
		cols := make([]schema.Column, len(x.Cols))
		for i, c := range x.Cols {
			cols[i] = schema.Column{Name: c.Name, Type: c.Type}
		}
		if _, err := rt.tv().CreateTable(rt.ctx, x.Name, schema.New(x.Name, cols...)); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *parse.DropTable:
		if err := rt.tv().DropTable(rt.ctx, x.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *parse.CreateView:
		// Validate the view body against the current catalog before
		// registering; the text re-plans at every use.
		if _, err := rt.execSelect(x.Query); err != nil {
			return nil, fmt.Errorf("exec: invalid view %s: %w", x.Name, err)
		}
		if err := rt.tv().CreateView(x.Name, x.Query.SQL()); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *parse.DropView:
		if err := rt.tv().DropView(x.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *parse.CreateSequence:
		if _, err := rt.tv().CreateSequence(x.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *parse.DropSequence:
		if err := rt.tv().DropSequence(x.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *parse.CreateIndex:
		t, ok := rt.tv().Table(x.Table)
		if !ok {
			return nil, fmt.Errorf("exec: unknown table %q in CREATE INDEX", x.Table)
		}
		col, err := t.Schema().Resolve("", x.Column)
		if err != nil {
			return nil, err
		}
		if _, err := rt.tv().CreateIndex(rt.ctx, x.Name, x.Table, col); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *parse.DropIndex:
		if err := rt.tv().DropIndex(rt.ctx, x.Name); err != nil {
			return nil, err
		}
		return &Result{}, nil

	case *parse.Insert:
		return rt.execInsert(x)

	case *parse.Delete:
		return rt.execDelete(x)

	case *parse.Update:
		return rt.execUpdate(x)
	}
	return nil, fmt.Errorf("exec: unsupported statement %T", st)
}

// execUpdate rewrites matching rows in place (assignments see the
// pre-update row values, per SQL).
func (rt *Runtime) execUpdate(x *parse.Update) (*Result, error) {
	t, ok, err := rt.tv().ForWrite(rt.ctx, x.Table)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("exec: unknown table %q in UPDATE", x.Table)
	}
	b := rt.bind(t.Schema())
	type setOp struct {
		ord int
		fn  evalFunc
		col schema.Column
	}
	sets := make([]setOp, len(x.Set))
	for i, a := range x.Set {
		ord, err := t.Schema().Resolve("", a.Column)
		if err != nil {
			return nil, err
		}
		fn, err := b.compile(a.Value)
		if err != nil {
			return nil, err
		}
		sets[i] = setOp{ord: ord, fn: fn, col: t.Schema().Col(ord)}
	}
	var condFn evalFunc
	if x.Where != nil {
		fn, err := b.compile(x.Where)
		if err != nil {
			return nil, err
		}
		condFn = fn
	}
	old := rt.tv().Rows(t)
	out := make([]schema.Row, 0, len(old))
	changed := 0
	for _, row := range old {
		if err := rt.poll(); err != nil {
			return nil, err
		}
		match := true
		if condFn != nil {
			v, err := condFn(row)
			if err != nil {
				return nil, err
			}
			tri, err := value.TristateFromValue(v)
			if err != nil {
				return nil, err
			}
			match = tri == value.True
		}
		if !match {
			out = append(out, row)
			continue
		}
		next := row.Clone()
		for _, s := range sets {
			v, err := s.fn(row)
			if err != nil {
				return nil, err
			}
			cv, err := coerceForColumn(v, s.col)
			if err != nil {
				return nil, fmt.Errorf("exec: UPDATE %s.%s: %w", x.Table, s.col.Name, err)
			}
			next[s.ord] = cv
		}
		out = append(out, next)
		changed++
	}
	if err := rt.tv().ReplaceRows(t, out); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: changed}, nil
}

// planView parses a view's stored text back into a SELECT, consulting
// the runtime's plan cache first. Hits require both the catalog version
// and the stored text to match the cached entry, so DDL (including
// dropping and recreating the view under the same name) always forces a
// re-parse against the current dictionary.
func (rt *Runtime) planView(v *storage.View) (*parse.Select, error) {
	ver := rt.tv().CatalogVersion()
	if p, ok := rt.viewPlans[v.Name]; ok && p.version == ver && p.text == v.Text {
		if m := rt.Met; m != nil {
			m.ViewPlanHits.Inc()
		}
		return p.sel, nil
	}
	if m := rt.Met; m != nil {
		m.ViewPlanMisses.Inc()
	}
	st, err := parse.Parse(v.Text)
	if err != nil {
		return nil, fmt.Errorf("exec: corrupt view %s: %w", v.Name, err)
	}
	sel, ok := st.(*parse.Select)
	if !ok {
		return nil, fmt.Errorf("exec: view %s is not a SELECT", v.Name)
	}
	if rt.viewPlans == nil {
		rt.viewPlans = make(map[string]viewPlan)
	}
	rt.viewPlans[v.Name] = viewPlan{version: ver, text: v.Text, sel: sel}
	return sel, nil
}

// execSelectEnv executes a subquery under the given enclosing
// environment: every binding compiled during it sees env as its outer
// scope. The previous environment is restored afterwards (the engine is
// single-threaded by contract).
func (rt *Runtime) execSelectEnv(s *parse.Select, env *outerRef) (*relation, error) {
	prev := rt.env
	rt.env = env
	// Expression-level subqueries run once per candidate row; collecting
	// an operator span for each execution would grow the plan tree
	// without bound, so the collector is suspended for their duration.
	prevPlan := rt.plan
	rt.plan = nil
	defer func() { rt.env = prev; rt.plan = prevPlan }()
	return rt.execSelect(s)
}

// bind creates a compilation environment over the schema, carrying the
// runtime's current enclosing-subquery scope.
func (rt *Runtime) bind(s *schema.Schema) *binding {
	return &binding{rt: rt, schema: s, outer: rt.env}
}

// execInsert evaluates an INSERT, coercing values to the target schema
// (int→float, string→date) and checking arity and types.
func (rt *Runtime) execInsert(x *parse.Insert) (*Result, error) {
	t, ok, err := rt.tv().ForWrite(rt.ctx, x.Table)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("exec: unknown table %q in INSERT", x.Table)
	}
	ts := t.Schema()

	// Map the optional column list to target ordinals.
	var target []int
	if len(x.Columns) > 0 {
		target = make([]int, len(x.Columns))
		for i, c := range x.Columns {
			idx, err := ts.Resolve("", c)
			if err != nil {
				return nil, err
			}
			target[i] = idx
		}
	} else {
		target = make([]int, ts.Len())
		for i := range target {
			target[i] = i
		}
	}

	var srcRows []schema.Row
	switch {
	case x.Query != nil:
		rel, err := rt.execSelect(x.Query)
		if err != nil {
			return nil, err
		}
		if rel.schema.Len() != len(target) {
			return nil, fmt.Errorf("exec: INSERT expects %d columns, query returns %d", len(target), rel.schema.Len())
		}
		srcRows = rel.rows
	default:
		b := rt.bind(schema.New(""))
		for _, exprRow := range x.Rows {
			if len(exprRow) != len(target) {
				return nil, fmt.Errorf("exec: INSERT expects %d values, got %d", len(target), len(exprRow))
			}
			row := make(schema.Row, len(exprRow))
			for i, e := range exprRow {
				f, err := b.compile(e)
				if err != nil {
					return nil, err
				}
				v, err := f(nil)
				if err != nil {
					return nil, err
				}
				row[i] = v
			}
			srcRows = append(srcRows, row)
		}
	}

	// Rows that already match the target schema (full column list in
	// order, every value the column's type) are stored as-is: values are
	// immutable and a SELECT's result rows are exclusively owned here,
	// so an INSERT ... SELECT stores the executor's output without a
	// per-row copy.
	identity := len(target) == ts.Len()
	if identity {
		for i, ord := range target {
			if ord != i {
				identity = false
				break
			}
		}
	}
	out := make([]schema.Row, 0, len(srcRows))
	for _, src := range srcRows {
		if err := rt.charge(1); err != nil {
			return nil, err
		}
		if identity {
			copyFree := true
			for i, v := range src {
				if !v.IsNull() && v.Type() != ts.Col(i).Type {
					copyFree = false
					break
				}
			}
			if copyFree {
				out = append(out, src)
				continue
			}
		}
		row := make(schema.Row, ts.Len())
		for i, ord := range target {
			v, err := coerceForColumn(src[i], ts.Col(ord))
			if err != nil {
				return nil, fmt.Errorf("exec: INSERT into %s.%s: %w", x.Table, ts.Col(ord).Name, err)
			}
			row[ord] = v
		}
		out = append(out, row)
	}
	if err := rt.tv().InsertRows(t, out); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: len(out)}, nil
}

func coerceForColumn(v value.Value, c schema.Column) (value.Value, error) {
	if v.IsNull() || v.Type() == c.Type {
		return v, nil
	}
	switch {
	case c.Type == value.TypeFloat && v.Type() == value.TypeInt,
		c.Type == value.TypeInt && v.Type() == value.TypeFloat,
		c.Type == value.TypeDate && v.Type() == value.TypeString:
		return value.Coerce(v, c.Type)
	default:
		return value.Null, fmt.Errorf("cannot store %s into %s column", v.Type(), c.Type)
	}
}

// execDelete removes the rows matching WHERE (all rows when absent).
func (rt *Runtime) execDelete(x *parse.Delete) (*Result, error) {
	t, ok, err := rt.tv().ForWrite(rt.ctx, x.Table)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("exec: unknown table %q in DELETE", x.Table)
	}
	if x.Where == nil {
		n := rt.tv().Len(t)
		if err := rt.tv().ReplaceRows(t, nil); err != nil {
			return nil, err
		}
		return &Result{RowsAffected: n}, nil
	}
	b := rt.bind(t.Schema())
	f, err := b.compile(x.Where)
	if err != nil {
		return nil, err
	}
	old := rt.tv().Rows(t)
	keep := make([]schema.Row, 0, len(old))
	removed := 0
	for _, row := range old {
		if err := rt.poll(); err != nil {
			return nil, err
		}
		v, err := f(row)
		if err != nil {
			return nil, err
		}
		tri, err := value.TristateFromValue(v)
		if err != nil {
			return nil, err
		}
		if tri == value.True {
			removed++
			continue
		}
		keep = append(keep, row)
	}
	if err := rt.tv().ReplaceRows(t, keep); err != nil {
		return nil, err
	}
	return &Result{RowsAffected: removed}, nil
}
