package exec

// plan.go is the cost-based FROM-list planner. After every FROM element
// has been scanned (and local predicates applied), planFromOrder picks
// the join order: table statistics supply per-key NDVs, the classic
// |A ⋈ B| ≈ |A|·|B| / max(ndv(a), ndv(b)) estimate scores each step,
// and a greedy chain from the smallest element wins — but is adopted
// only when it beats the written order by enough to pay for the
// column-remap pass that reordering forces. Decisions are cached per
// statement and invalidated by catalog version or stats epoch.

import (
	"minerule/internal/sql/parse"
	"minerule/internal/sql/storage"
)

// fromElem is one scanned FROM-list element awaiting join planning.
type fromElem struct {
	rel *relation
	// tab is the owning base table when the relation is a full-table
	// scan; nil for derived tables, views, and index-narrowed scans.
	tab *storage.Table
	// stats is the table's statistics snapshot, fetched only when the
	// input is big enough for cost-based planning to matter.
	stats *storage.TableStats
}

// planRowsMin is the combined input size below which join planning (and
// the statistics fetches it needs) is skipped: on inputs this small the
// planning overhead outweighs any join-order win, so the written order
// stands. The same floor gates the index-path NDV check per table.
const planRowsMin = 2048

// fromPlan is one cached join-order decision.
type fromPlan struct {
	version uint64 // catalog version the order was planned under
	epoch   uint64 // stats epoch the order was planned under
	order   []int
}

// maxFromPlans bounds the per-runtime plan cache; statement caches are
// bounded upstream, this is a backstop against unbounded ad-hoc SQL.
const maxFromPlans = 256

// planFromOrder returns the order in which the FROM elements should
// join, as indices into elems. Two-element lists stay in written order
// (the hash join already builds on the smaller side); row mode always
// stays in written order, keeping the reference path pristine.
func (rt *Runtime) planFromOrder(s *parse.Select, elems []fromElem, conjuncts []parse.Expr, used []bool) []int {
	n := len(elems)
	identity := make([]int, n)
	for i := range identity {
		identity[i] = i
	}
	if rt.rowMode || n < 3 {
		return identity
	}
	total := 0
	for _, e := range elems {
		total += len(e.rel.rows)
	}
	if total < planRowsMin {
		return identity
	}
	ver, epoch := rt.tv().CatalogVersion(), rt.tv().StatsEpoch()
	if p, ok := rt.fromPlans[s]; ok && p.version == ver && p.epoch == epoch {
		return p.order
	}
	order := costOrder(elems, conjuncts, used, identity)
	if rt.fromPlans == nil {
		rt.fromPlans = make(map[*parse.Select]fromPlan)
	} else if len(rt.fromPlans) >= maxFromPlans {
		rt.fromPlans = make(map[*parse.Select]fromPlan, maxFromPlans)
	}
	rt.fromPlans[s] = fromPlan{version: ver, epoch: epoch, order: order}
	return order
}

// joinEdge is one equi-join conjunct resolved to its two elements, with
// the per-side key NDVs (0 = unknown: no base-table statistics).
type joinEdge struct {
	a, b       int
	ndvA, ndvB float64
}

// costOrder scores a greedy small-first join chain against the written
// order and returns whichever is cheaper by a clear margin.
func costOrder(elems []fromElem, conjuncts []parse.Expr, used []bool, identity []int) []int {
	n := len(elems)
	edges := joinEdges(elems, conjuncts, used)
	if len(edges) == 0 {
		// All-cartesian FROM lists gain nothing from reordering that
		// could justify the remap.
		return identity
	}
	size := make([]float64, n)
	for i, e := range elems {
		size[i] = float64(len(e.rel.rows))
		if size[i] < 1 {
			size[i] = 1
		}
	}

	// stepEst estimates joining the current intermediate (cur rows, the
	// inSet elements) with element j; -1 when no edge connects them.
	stepEst := func(inSet []bool, cur float64, j int) float64 {
		est := cur * size[j]
		connected := false
		for _, e := range edges {
			if !((e.a == j && inSet[e.b]) || (e.b == j && inSet[e.a])) {
				continue
			}
			connected = true
			ndv := e.ndvA
			if e.ndvB > ndv {
				ndv = e.ndvB
			}
			if ndv <= 0 {
				// Unknown NDV: assume a key-foreign-key join (every
				// probe row matches about once).
				ndv = size[e.a]
				if size[e.b] > ndv {
					ndv = size[e.b]
				}
			}
			if ndv < 1 {
				ndv = 1
			}
			est /= ndv
		}
		if !connected {
			return -1
		}
		if est < 1 {
			est = 1
		}
		return est
	}

	// Greedy chain: start from the smallest element, then repeatedly
	// join the cheapest equi-connected element (cartesian only when
	// nothing connects). Cost is the sum of intermediate sizes — what
	// the executor must materialize and the next join must consume.
	start := 0
	for i := 1; i < n; i++ {
		if size[i] < size[start] {
			start = i
		}
	}
	inSet := make([]bool, n)
	inSet[start] = true
	order := make([]int, 1, n)
	order[0] = start
	cur := size[start]
	greedyCost := 0.0
	for len(order) < n {
		bestJ, bestEst, bestConn := -1, 0.0, false
		for j := 0; j < n; j++ {
			if inSet[j] {
				continue
			}
			est := stepEst(inSet, cur, j)
			conn := est >= 0
			if !conn {
				est = cur * size[j]
			}
			switch {
			case bestJ < 0,
				conn && !bestConn,
				conn == bestConn && est < bestEst:
				bestJ, bestEst, bestConn = j, est, conn
			}
		}
		inSet[bestJ] = true
		order = append(order, bestJ)
		greedyCost += bestEst
		cur = bestEst
	}

	// Written-order cost under the same model.
	for i := range inSet {
		inSet[i] = false
	}
	inSet[identity[0]] = true
	cur = size[identity[0]]
	identityCost := 0.0
	for _, j := range identity[1:] {
		est := stepEst(inSet, cur, j)
		if est < 0 {
			est = cur * size[j]
		}
		identityCost += est
		cur = est
		inSet[j] = true
	}

	// Adopt the reorder only when the predicted win clearly covers the
	// column-remap pass it forces.
	if !isIdentity(order) && greedyCost < 0.7*identityCost {
		return order
	}
	return identity
}

// joinEdges resolves unused "col = col" conjuncts into element-pair
// edges. A side that resolves in no element or in more than one
// (ambiguous without its qualifier) contributes no edge; the join
// itself still applies the predicate.
func joinEdges(elems []fromElem, conjuncts []parse.Expr, used []bool) []joinEdge {
	resolve := func(cr *parse.ColumnRef) (int, int, bool) {
		elem, ord := -1, -1
		for i, e := range elems {
			if o, err := e.rel.schema.Resolve(cr.Qual, cr.Name); err == nil {
				if elem >= 0 {
					return -1, -1, false
				}
				elem, ord = i, o
			}
		}
		return elem, ord, elem >= 0
	}
	var edges []joinEdge
	for i, c := range conjuncts {
		if used[i] {
			continue
		}
		be, ok := c.(*parse.BinaryExpr)
		if !ok || be.Op != parse.OpEq {
			continue
		}
		lc, lok := be.L.(*parse.ColumnRef)
		rc, rok := be.R.(*parse.ColumnRef)
		if !lok || !rok {
			continue
		}
		la, lo, ok := resolve(lc)
		if !ok {
			continue
		}
		ra, ro, ok := resolve(rc)
		if !ok || la == ra {
			continue
		}
		edges = append(edges, joinEdge{a: la, b: ra, ndvA: ndvOf(elems[la], lo), ndvB: ndvOf(elems[ra], ro)})
	}
	return edges
}

func ndvOf(e fromElem, ord int) float64 {
	if e.stats == nil || ord >= len(e.stats.Cols) {
		return 0
	}
	return float64(e.stats.Cols[ord].NDV)
}

func isIdentity(order []int) bool {
	for i, v := range order {
		if v != i {
			return false
		}
	}
	return true
}
