package exec

import (
	"fmt"
	"strings"
	"time"

	"minerule/internal/obsv"
	"minerule/internal/sql/parse"
	"minerule/internal/sql/schema"
	"minerule/internal/sql/value"
)

// execExplain implements EXPLAIN [ANALYZE] select. The engine is an
// interpreter — the plan is discovered while executing — so EXPLAIN
// always runs the query with the operator collector installed and
// returns the resolved tree (one row per node, indented) instead of the
// query's rows; ANALYZE adds per-node wall time.
func (rt *Runtime) execExplain(x *parse.Explain) (*Result, error) {
	root, _, err := rt.CollectPlan(x.Query)
	if err != nil {
		return nil, err
	}
	var lines []string
	planLines(root, 0, x.Analyze, &lines)
	out := make([]schema.Row, len(lines))
	for i, l := range lines {
		out[i] = schema.Row{value.NewString(l)}
	}
	s := schema.New("", schema.Column{Name: "QUERY PLAN", Type: value.TypeString})
	return &Result{Schema: s, Rows: out}, nil
}

// planLines flattens an operator span tree into indented text lines:
//
//	query rows=6
//	  select rows=6
//	    scan table=Sales rows=20
//	    filter cond=(price > 10) rows_in=20 rows=6
func planLines(sp *obsv.Span, depth int, analyze bool, out *[]string) {
	if sp == nil { // spans are nil when the collector is off
		return
	}
	var b strings.Builder
	b.WriteString(strings.Repeat("  ", depth))
	b.WriteString(sp.Name)
	for _, a := range sp.Attrs {
		if a.Str != "" {
			fmt.Fprintf(&b, " %s=%s", a.Key, a.Str)
		} else {
			fmt.Fprintf(&b, " %s=%d", a.Key, a.Int)
		}
	}
	if analyze {
		fmt.Fprintf(&b, " time=%s", sp.Duration.Round(time.Microsecond))
	}
	*out = append(*out, b.String())
	for _, c := range sp.Children {
		planLines(c, depth+1, analyze, out)
	}
}
