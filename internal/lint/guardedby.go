package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strings"
)

// GuardedBy enforces `// guarded by <m>` field annotations (also
// accepted as `// guarded by <recv>.<m>`), where m names a sibling
// sync.Mutex/RWMutex field: every read or write of the annotated field
// must happen while that mutex is held on the same object, or through a
// matching sync/atomic call.
//
// The check reasons across functions within the package. An access in a
// method that is rooted at the receiver but not under the lock does not
// fail on the spot: it turns the method into a *contract* — "caller
// must hold recv.m" — and every call site is checked instead, with the
// obligation propagating up caller chains (the `fooLocked` convention).
// A contract method must stay unexported or carry the Locked suffix;
// otherwise callers outside the package could never be verified.
// Accesses to freshly constructed, not-yet-published objects
// (`t := &Table{…}; t.rows = …`) are exempt, as is test code.
var GuardedBy = &Analyzer{
	Name: "guardedby",
	Doc:  "enforce `// guarded by <m>` field annotations on all access paths",
	Run:  runGuardedBy,
}

// guardedRE extracts the mutex name from a field's doc or line comment.
var guardedRE = regexp.MustCompile(`guarded by\s+([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)*)`)

// collectGuardedFields parses annotations from every struct literal in
// the package, validating that the named mutex is a sibling field.
func collectGuardedFields(p *Pass) map[*types.Var]string {
	out := make(map[*types.Var]string)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			siblings := make(map[string]bool)
			for _, fld := range st.Fields.List {
				for _, nm := range fld.Names {
					siblings[nm.Name] = true
				}
			}
			for _, fld := range st.Fields.List {
				txt := fld.Doc.Text() + " " + fld.Comment.Text()
				m := guardedRE.FindStringSubmatch(txt)
				if m == nil {
					continue
				}
				mutex := m[1]
				if i := strings.LastIndexByte(mutex, '.'); i >= 0 {
					mutex = mutex[i+1:]
				}
				if !siblings[mutex] {
					p.Reportf(fld.Pos(), "guarded-by annotation names %q, which is not a sibling field", m[1])
					continue
				}
				for _, nm := range fld.Names {
					if v, ok := p.Info.Defs[nm].(*types.Var); ok {
						out[v] = mutex
					}
				}
			}
			return true
		})
	}
	return out
}

// freshLocals finds `x := T{…}` / `x := &T{…}` / `x := new(T)` locals:
// objects this function just built and has not shared, whose fields may
// be initialized without the (equally fresh) lock.
func freshLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	fresh := make(map[types.Object]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			isFresh := false
			switch r := ast.Unparen(as.Rhs[i]).(type) {
			case *ast.CompositeLit:
				isFresh = true
			case *ast.UnaryExpr:
				if r.Op == token.AND {
					_, isFresh = ast.Unparen(r.X).(*ast.CompositeLit)
				}
			case *ast.CallExpr:
				if bid, ok := ast.Unparen(r.Fun).(*ast.Ident); ok {
					if b, okb := info.Uses[bid].(*types.Builtin); okb && b.Name() == "new" {
						isFresh = true
					}
				}
			}
			if isFresh {
				if obj := info.Defs[id]; obj != nil {
					fresh[obj] = true
				}
			}
		}
		return true
	})
	return fresh
}

// gbCall is one same-package call site, with the lock paths held there.
type gbCall struct {
	callee     *types.Func
	recvPath   string // textual path of the receiver expression, "" if not a path
	held       map[string]token.Pos
	pos        token.Pos
	caller     *types.Func
	callerRecv string // caller's receiver identifier, "" for plain functions
	inGo       bool   // call happens inside a spawned goroutine body
}

type gbReq struct {
	fn    *types.Func
	mutex string
}

func runGuardedBy(p *Pass) {
	guarded := collectGuardedFields(p)
	if len(guarded) == 0 {
		return
	}
	exempt := make(map[*ast.SelectorExpr]bool)
	for _, f := range p.Files {
		_, sels := atomicArgFields(p.Info, f)
		for s := range sels {
			exempt[s] = true
		}
	}

	var calls []gbCall
	declOf := make(map[*types.Func]*ast.FuncDecl)
	seen := make(map[gbReq]bool)
	var pending []gbReq
	require := func(fn *types.Func, m string) {
		r := gbReq{fn, m}
		if !seen[r] {
			seen[r] = true
			pending = append(pending, r)
		}
	}

	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := p.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			declOf[obj] = fd
			recvName := ""
			if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
				recvName = fd.Recv.List[0].Names[0].Name
			}
			fresh := freshLocals(p.Info, fd.Body)
			w := &heldWalker{info: p.Info, keyOf: exprPath}
			w.onNode = func(n ast.Node, held map[string]token.Pos) {
				switch x := n.(type) {
				case *ast.SelectorExpr:
					if exempt[x] {
						return
					}
					v := fieldVarOf(p.Info, x)
					if v == nil {
						return
					}
					m, isGuarded := guarded[v]
					if !isGuarded {
						return
					}
					base := exprPath(x.X)
					if base != "" {
						if _, ok := held[base+"."+m]; ok {
							return
						}
					}
					root := identRoot(x.X)
					if root != nil && fresh[p.Info.ObjectOf(root)] {
						return
					}
					if w.inGo == 0 && recvName != "" && root != nil && root.Name == recvName {
						require(obj, m) // check this method's callers instead
						return
					}
					lock := m
					if base != "" {
						lock = base + "." + m
					}
					p.Reportf(x.Pos(), "field %s is guarded by %s but accessed without holding %s", v.Name(), m, lock)
				case *ast.CallExpr:
					callee := funcObj(p.Info, x)
					if callee == nil || callee.Pkg() != p.Pkg {
						return
					}
					recvPath := ""
					if sel, ok := ast.Unparen(x.Fun).(*ast.SelectorExpr); ok {
						recvPath = exprPath(sel.X)
					}
					calls = append(calls, gbCall{callee, recvPath, copyHeld(held), x.Pos(), obj, recvName, w.inGo > 0})
				}
			}
			w.walkFunc(fd.Body)
		}
	}

	// Propagate contracts up caller chains until quiescent.
	for len(pending) > 0 {
		r := pending[0]
		pending = pending[1:]
		if ast.IsExported(r.fn.Name()) && !strings.HasSuffix(r.fn.Name(), "Locked") {
			pos := r.fn.Pos()
			if fd, ok := declOf[r.fn]; ok {
				pos = fd.Name.Pos()
			}
			p.Reportf(pos, "exported method %s accesses fields guarded by %s without locking; external callers cannot be verified (lock internally or use a *Locked name)", r.fn.Name(), r.mutex)
		}
		for _, c := range calls {
			if c.callee != r.fn {
				continue
			}
			if c.recvPath != "" {
				if _, ok := c.held[c.recvPath+"."+r.mutex]; ok {
					continue
				}
			}
			if !c.inGo && c.callerRecv != "" && c.recvPath == c.callerRecv {
				require(c.caller, r.mutex) // same object: obligation moves up one frame
				continue
			}
			recv := c.recvPath
			if recv == "" {
				recv = "receiver"
			}
			p.Reportf(c.pos, "call to %s requires holding %s.%s (guards annotated fields)", r.fn.Name(), recv, r.mutex)
		}
	}
}
