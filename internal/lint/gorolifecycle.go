package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLifecycle requires every spawned goroutine to have a visible
// lifecycle: its body (or a same-package function it calls) must reach
// a join or cancellation point — a sync.WaitGroup.Done, a channel send,
// close or receive (which includes the `select { case <-ctx.Done(): }`
// idiom and `for range ch`), — so the goroutine provably ends or is
// owned by someone who can end it. A `go` statement with none of these
// is the leaked-goroutine class: it outlives its spawner, pins memory
// and sockets, and turns graceful shutdown into a timeout.
//
// The check is evidence-based, not a proof: a send can still block
// forever on an abandoned channel. Its runtime counterpart,
// internal/leakcheck, catches what slips through.
var GoroLifecycle = &Analyzer{
	Name: "gorolifecycle",
	Doc:  "flag go statements whose goroutine has no join or cancellation path",
	Run:  runGoroLifecycle,
}

func runGoroLifecycle(p *Pass) {
	// Resolve same-package function bodies so `go s.readLoop()` is
	// analyzed through the named method, and helpers called from a
	// goroutine body can supply the evidence.
	bodies := make(map[*types.Func]*ast.BlockStmt)
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := p.Info.Defs[fd.Name].(*types.Func); ok {
				bodies[obj] = fd.Body
			}
		}
	}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			var body *ast.BlockStmt
			if lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit); ok {
				body = lit.Body
			} else if obj := funcObj(p.Info, g.Call); obj != nil {
				body = bodies[obj] // nil for cross-package callees: skip
			}
			if body == nil {
				return true
			}
			if !joinEvidence(p.Info, body, bodies, make(map[*ast.BlockStmt]bool)) {
				p.Reportf(g.Pos(), "goroutine is never joined: body has no WaitGroup.Done, channel send/close/receive, or ctx.Done path")
			}
			return true
		})
	}
}

// joinEvidence reports whether body — or any same-package function it
// calls, transitively — contains a join or cancellation point.
func joinEvidence(info *types.Info, body *ast.BlockStmt, bodies map[*types.Func]*ast.BlockStmt, seen map[*ast.BlockStmt]bool) bool {
	if seen[body] {
		return false
	}
	seen[body] = true
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t, ok := info.Types[x.X]; ok && t.Type != nil {
				if _, isChan := t.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
				if b, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && b.Name() == "close" {
					found = true
					return false
				}
			}
			if f := funcObj(info, x); f != nil {
				if f.Pkg() != nil && f.Pkg().Path() == "sync" && recvTypeName(f) == "WaitGroup" && f.Name() == "Done" {
					found = true
					return false
				}
				if callee, ok := bodies[f]; ok && joinEvidence(info, callee, bodies, seen) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}
