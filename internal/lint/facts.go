package lint

import (
	"encoding/json"
	"fmt"
	"sort"
)

// FactStore carries serialized per-package analysis facts between
// passes, in the style of go/analysis facts: an analyzer running over
// package P may export a fact value under its own name, and an analyzer
// running over a package that (transitively) imports P may read it
// back. Facts are JSON-serialized so the same store works in-process
// (TestRepoClean, standalone minerule-vet) and across processes (the
// unitchecker protocol's .vetx files, one per package).
//
// The zero value is ready to use. A FactStore is not safe for
// concurrent use; drivers analyze packages sequentially in dependency
// order, which is also what makes facts sound — a package's facts are
// complete before any importer reads them.
type FactStore struct {
	facts map[factKey]json.RawMessage
}

type factKey struct {
	pkg      string // import path the fact describes
	analyzer string // exporting analyzer
}

// ExportFact records v as the analyzer's fact for pkgPath, replacing
// any previous value.
func (s *FactStore) ExportFact(pkgPath, analyzer string, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("lint: encoding %s fact for %s: %w", analyzer, pkgPath, err)
	}
	if s.facts == nil {
		s.facts = make(map[factKey]json.RawMessage)
	}
	s.facts[factKey{pkgPath, analyzer}] = data
	return nil
}

// ImportFact decodes the analyzer's fact for pkgPath into v, reporting
// whether one was present.
func (s *FactStore) ImportFact(pkgPath, analyzer string, v any) bool {
	if s == nil || s.facts == nil {
		return false
	}
	data, ok := s.facts[factKey{pkgPath, analyzer}]
	if !ok {
		return false
	}
	return json.Unmarshal(data, v) == nil
}

// wireFact is the serialized form of one fact (for .vetx files).
type wireFact struct {
	Pkg      string          `json:"pkg"`
	Analyzer string          `json:"analyzer"`
	Data     json.RawMessage `json:"data"`
}

// Encode serializes the store's entire contents. A package's .vetx file
// therefore carries its own facts and those of its dependencies, which
// is how facts reach transitive importers under the unitchecker
// protocol (cmd/go hands a tool only its direct imports' fact files).
func (s *FactStore) Encode() ([]byte, error) {
	var out []wireFact
	for k, v := range s.facts {
		out = append(out, wireFact{Pkg: k.pkg, Analyzer: k.analyzer, Data: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkg != out[j].Pkg {
			return out[i].Pkg < out[j].Pkg
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return json.Marshal(out)
}

// Decode merges a serialized fact set (produced by Encode) into the
// store. Later decodes win on conflicts, which cannot matter: a
// package's facts are identical in every .vetx that embeds them.
func (s *FactStore) Decode(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	var in []wireFact
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("lint: decoding fact file: %w", err)
	}
	if s.facts == nil {
		s.facts = make(map[factKey]json.RawMessage)
	}
	for _, f := range in {
		s.facts[factKey{f.Pkg, f.Analyzer}] = f.Data
	}
	return nil
}
