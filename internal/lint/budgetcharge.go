package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// BudgetCharge enforces the mining package's resource-accounting
// invariant: every levelwise mining entry point must charge the Budget,
// and every pass loop that records progress (NotePass) must also charge
// or consult the stop flag. A miner that iterates without charging
// escapes the row budget and the cancellation checks riding on it.
//
// Rule A: a function or method named LargeItemsets or MineGeneral must
// transitively (within its package) reach (*Budget).Charge.
//
// Rule B: a for/range loop whose body calls (*Budget).NotePass must
// also, within the same loop body, call (or transitively reach)
// (*Budget).Charge or (*Budget).Stop.
//
// Function literals are attributed to their enclosing declaration, so
// charging from a worker closure satisfies Rule A.
var BudgetCharge = &Analyzer{
	Name: "budgetcharge",
	Doc:  "mining entry points and pass loops must charge the Budget",
	Run:  runBudgetCharge,
}

func runBudgetCharge(p *Pass) {
	if !strings.HasSuffix(p.Pkg.Path(), "internal/mining") && p.Pkg.Name() != "mining" {
		return
	}

	// calls maps each declared function to the same-package functions it
	// calls; budgetCalls records which Budget methods it calls directly.
	type funcInfo struct {
		calls  map[*types.Func]bool
		budget map[string]bool
	}
	infos := make(map[*types.Func]*funcInfo)
	decls := make(map[*types.Func]*ast.FuncDecl)

	collect := func(fd *ast.FuncDecl) *funcInfo {
		fi := &funcInfo{calls: make(map[*types.Func]bool), budget: make(map[string]bool)}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := funcObj(p.Info, call)
			if f == nil {
				return true
			}
			if recvTypeName(f) == "Budget" {
				fi.budget[f.Name()] = true
			}
			if f.Pkg() == p.Pkg {
				fi.calls[f] = true
			}
			return true
		})
		return fi
	}

	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := p.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			infos[obj] = collect(fd)
			decls[obj] = fd
		}
	}

	// reaches reports whether fn transitively calls a Budget method in
	// want (method-name set), within the package.
	var reaches func(fn *types.Func, want map[string]bool, seen map[*types.Func]bool) bool
	reaches = func(fn *types.Func, want map[string]bool, seen map[*types.Func]bool) bool {
		if seen[fn] {
			return false
		}
		seen[fn] = true
		fi := infos[fn]
		if fi == nil {
			return false
		}
		for m := range fi.budget {
			if want[m] {
				return true
			}
		}
		for callee := range fi.calls {
			if reaches(callee, want, seen) {
				return true
			}
		}
		return false
	}

	wantCharge := map[string]bool{"Charge": true}
	wantChargeOrStop := map[string]bool{"Charge": true, "Stop": true}

	// Rule A.
	for obj, fd := range decls {
		name := obj.Name()
		if name != "LargeItemsets" && name != "MineGeneral" {
			continue
		}
		if !reaches(obj, wantCharge, make(map[*types.Func]bool)) {
			p.Reportf(fd.Name.Pos(), "%s does not charge the Budget (directly or transitively): unbounded mining pass", name)
		}
	}

	// Rule B: scan loops in every declaration.
	loopBodyCalls := func(body *ast.BlockStmt, want map[string]bool) bool {
		found := false
		ast.Inspect(body, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := funcObj(p.Info, call)
			if f == nil {
				return true
			}
			if recvTypeName(f) == "Budget" && want[f.Name()] {
				found = true
				return false
			}
			if f.Pkg() == p.Pkg && reaches(f, want, make(map[*types.Func]bool)) {
				found = true
				return false
			}
			return true
		})
		return found
	}

	for _, fd := range decls {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch loop := n.(type) {
			case *ast.ForStmt:
				body = loop.Body
			case *ast.RangeStmt:
				body = loop.Body
			default:
				return true
			}
			if loopBodyCalls(body, map[string]bool{"NotePass": true}) &&
				!loopBodyCalls(body, wantChargeOrStop) {
				p.Reportf(n.Pos(), "loop records passes (NotePass) without charging the Budget or checking Stop")
			}
			return true
		})
	}
}
