package lint

import (
	"go/ast"
	"go/token"
)

// CtxFlow enforces the kernel's cancellation invariant: contexts flow
// down from the API layer, they are not minted mid-stack. A call to
// context.Background() or context.TODO() below the API boundary
// detaches the work under it from the caller's cancellation — a mining
// run that keeps executing SQL after its deadline fired.
//
// Allowed occurrences:
//   - package main and test files (entry points own their context);
//   - the nil-guard idiom `if ctx == nil { ctx = context.Background() }`
//     at the top of an exported entry point;
//   - single-statement convenience wrappers that forward to a
//     context-taking sibling, e.g.
//     `func (db *DB) Exec(q string) { return db.ExecContext(context.Background(), q) }`.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flag context.Background()/TODO() below the API layer",
	Run:  runCtxFlow,
}

func runCtxFlow(p *Pass) {
	if p.Pkg.Name() == "main" {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkCtxFlowFunc(p, fd)
		}
	}
}

func checkCtxFlowFunc(p *Pass, fd *ast.FuncDecl) {
	allowed := make(map[*ast.CallExpr]bool)
	for _, c := range nilGuardedCtxCalls(p, fd.Body) {
		allowed[c] = true
	}
	if c := wrapperForwardCall(p, fd); c != nil {
		allowed[c] = true
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := ctxMintName(p, call)
		if name == "" || allowed[call] {
			return true
		}
		p.Reportf(call.Pos(), "context.%s() below the API layer: thread the caller's ctx instead", name)
		return true
	})
}

// ctxMintName returns "Background" or "TODO" when the call mints a
// fresh context, "" otherwise.
func ctxMintName(p *Pass, call *ast.CallExpr) string {
	f := funcObj(p.Info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "context" {
		return ""
	}
	if f.Name() == "Background" || f.Name() == "TODO" {
		return f.Name()
	}
	return ""
}

// nilGuardedCtxCalls collects Background()/TODO() calls that appear as
// `v = context.Background()` inside `if v == nil { ... }` — the
// defaulting idiom for optional contexts.
func nilGuardedCtxCalls(p *Pass, body *ast.BlockStmt) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		cond, ok := ifs.Cond.(*ast.BinaryExpr)
		if !ok || cond.Op != token.EQL || !isNilIdent(cond.Y) {
			return true
		}
		guarded, ok := ast.Unparen(cond.X).(*ast.Ident)
		if !ok {
			return true
		}
		for _, st := range ifs.Body.List {
			as, ok := st.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
				continue
			}
			lhs, ok := as.Lhs[0].(*ast.Ident)
			if !ok || lhs.Name != guarded.Name {
				continue
			}
			if call, ok := as.Rhs[0].(*ast.CallExpr); ok && ctxMintName(p, call) != "" {
				out = append(out, call)
			}
		}
		return true
	})
	return out
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// wrapperForwardCall recognizes the convenience-wrapper shape: a
// function whose body is a single return (or expression) statement
// calling another function with context.Background()/TODO() passed
// directly as an argument. Such wrappers ARE the API layer — they exist
// to give context-free callers an entry point.
func wrapperForwardCall(p *Pass, fd *ast.FuncDecl) *ast.CallExpr {
	if len(fd.Body.List) != 1 {
		return nil
	}
	var call *ast.CallExpr
	switch st := fd.Body.List[0].(type) {
	case *ast.ReturnStmt:
		if len(st.Results) != 1 {
			return nil
		}
		call, _ = ast.Unparen(st.Results[0]).(*ast.CallExpr)
	case *ast.ExprStmt:
		call, _ = st.X.(*ast.CallExpr)
	}
	if call == nil {
		return nil
	}
	for _, arg := range call.Args {
		if inner, ok := ast.Unparen(arg).(*ast.CallExpr); ok && ctxMintName(p, inner) != "" {
			return inner
		}
	}
	return nil
}
