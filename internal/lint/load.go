package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Loaded is one parsed and type-checked package ready for analysis.
type Loaded struct {
	ImportPath string
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	Info       *types.Info
}

// listPkg is the subset of `go list -json` output the loader needs.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	DepOnly    bool
	Standard   bool
	Error      *struct{ Err string }
}

// Load resolves the patterns with `go list -deps -export -json`, then
// parses and type-checks each matched (non-dependency) package against
// the export data of its dependencies. It shells out to the go tool for
// package resolution only; parsing and type checking run in-process so
// the analyzers get full go/types information without golang.org/x/tools.
func Load(dir string, patterns ...string) ([]*Loaded, error) {
	args := append([]string{"list", "-deps", "-export", "-json=ImportPath,Dir,Export,GoFiles,DepOnly,Standard,Error", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, errb.String())
	}

	exports := make(map[string]string)
	var targets []listPkg
	dec := json.NewDecoder(&out)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: go list: %s", p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	}

	var loaded []*Loaded
	for _, t := range targets {
		fset := token.NewFileSet()
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("lint: %v", err)
			}
			files = append(files, f)
		}
		pkg, info, err := TypeCheck(fset, t.ImportPath, files, importer.ForCompiler(fset, "gc", lookup))
		if err != nil {
			return nil, fmt.Errorf("lint: type-checking %s: %v", t.ImportPath, err)
		}
		loaded = append(loaded, &Loaded{ImportPath: t.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: info})
	}
	return loaded, nil
}

// TypeCheck runs go/types over the files with the given importer and
// returns the package plus the Info maps the analyzers consume.
func TypeCheck(fset *token.FileSet, path string, files []*ast.File, imp types.Importer) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}
