package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// ---------------------------------------------------------------------------
// Fixture loading

// stdExports maps stdlib import paths to export-data files, resolved
// once per test binary via `go list` (modern toolchains ship no
// pre-built .a files, so importer.Default cannot load stdlib).
var (
	stdOnce    sync.Once
	stdExport  map[string]string
	stdLoadErr error
)

func stdLookup(t *testing.T) func(path string) (io.ReadCloser, error) {
	t.Helper()
	stdOnce.Do(func() {
		cmd := exec.Command("go", "list", "-deps", "-export", "-json=ImportPath,Export", "context", "fmt", "errors", "strings", "os", "sync", "sync/atomic", "time")
		var out, errb bytes.Buffer
		cmd.Stdout = &out
		cmd.Stderr = &errb
		if err := cmd.Run(); err != nil {
			stdLoadErr = fmt.Errorf("go list std: %v\n%s", err, errb.String())
			return
		}
		stdExport = make(map[string]string)
		dec := json.NewDecoder(&out)
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				stdLoadErr = err
				return
			}
			if p.Export != "" {
				stdExport[p.ImportPath] = p.Export
			}
		}
	})
	if stdLoadErr != nil {
		t.Fatalf("resolving stdlib export data: %v", stdLoadErr)
	}
	return func(path string) (io.ReadCloser, error) {
		f, ok := stdExport[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
}

// fixtureImporter resolves fixture-local packages (obsv) before
// delegating to the gc importer for the standard library.
type fixtureImporter struct {
	std   types.Importer
	extra map[string]*types.Package
}

func (fi fixtureImporter) Import(path string) (*types.Package, error) {
	if p, ok := fi.extra[path]; ok {
		return p, nil
	}
	return fi.std.Import(path)
}

func parseFixture(t *testing.T, fset *token.FileSet, dir string) []*ast.File {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var files []*ast.File
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	return files
}

// checkFixture type-checks testdata/src/<name> with the given extra
// packages available for import and runs one analyzer over it.
func checkFixture(t *testing.T, name string, a *Analyzer, extra map[string]*types.Package) ([]Diagnostic, *token.FileSet, []*ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	files := parseFixture(t, fset, filepath.Join("testdata", "src", name))
	imp := fixtureImporter{std: importer.ForCompiler(fset, "gc", stdLookup(t)), extra: extra}
	pkg, info, err := TypeCheck(fset, name, files, imp)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", name, err)
	}
	return Run(fset, files, pkg, info, []*Analyzer{a}), fset, files, pkg, info
}

// wantDiag is one `// want "regex"` expectation from a fixture.
type wantDiag struct {
	file string
	line int
	re   *regexp.Regexp
}

var wantRE = regexp.MustCompile("// want `([^`]+)`")

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) []wantDiag {
	t.Helper()
	var wants []wantDiag
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want regexp: %v", pos, err)
				}
				wants = append(wants, wantDiag{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	return wants
}

// matchWants asserts the diagnostics and the fixture's want comments
// agree line for line.
func matchWants(t *testing.T, diags []Diagnostic, wants []wantDiag) {
	t.Helper()
	usedW := make([]bool, len(wants))
	for _, d := range diags {
		matched := false
		for i, w := range wants {
			if usedW[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				usedW[i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !usedW[i] {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

func runFixtureTest(t *testing.T, name string, a *Analyzer, extra map[string]*types.Package) {
	diags, fset, files, _, _ := checkFixture(t, name, a, extra)
	wants := collectWants(t, fset, files)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", name)
	}
	matchWants(t, diags, wants)
}

// runFixtureTreeTest loads a multi-package fixture: each subdirectory
// of testdata/src/<name> is one package, importable by its directory
// name. Packages are type-checked and analyzed in dependency order with
// a shared fact store — the setup lockorder's cross-package fact tests
// need. Want comments are collected across the whole tree.
func runFixtureTreeTest(t *testing.T, name string, a *Analyzer) {
	root := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	parsed := make(map[string][]*ast.File)
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		names = append(names, e.Name())
		parsed[e.Name()] = parseFixture(t, fset, filepath.Join(root, e.Name()))
	}
	if len(parsed) == 0 {
		t.Fatalf("fixture %s has no packages", name)
	}
	sort.Strings(names)
	localDeps := func(pkg string) []string {
		var deps []string
		for _, f := range parsed[pkg] {
			for _, im := range f.Imports {
				p := strings.Trim(im.Path.Value, `"`)
				if _, ok := parsed[p]; ok {
					deps = append(deps, p)
				}
			}
		}
		return deps
	}
	var order []string
	done := make(map[string]bool)
	for len(order) < len(names) {
		progress := false
		for _, n := range names {
			if done[n] {
				continue
			}
			ready := true
			for _, d := range localDeps(n) {
				if !done[d] {
					ready = false
				}
			}
			if ready {
				order = append(order, n)
				done[n] = true
				progress = true
			}
		}
		if !progress {
			t.Fatalf("fixture %s has an import cycle", name)
		}
	}
	std := importer.ForCompiler(fset, "gc", stdLookup(t))
	extra := make(map[string]*types.Package)
	facts := new(FactStore)
	var diags []Diagnostic
	var allFiles []*ast.File
	for _, n := range order {
		pkg, info, err := TypeCheck(fset, n, parsed[n], fixtureImporter{std: std, extra: extra})
		if err != nil {
			t.Fatalf("type-checking fixture package %s/%s: %v", name, n, err)
		}
		extra[n] = pkg
		diags = append(diags, RunWithFacts(fset, parsed[n], pkg, info, []*Analyzer{a}, facts)...)
		allFiles = append(allFiles, parsed[n]...)
	}
	wants := collectWants(t, fset, allFiles)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", name)
	}
	matchWants(t, diags, wants)
}

// ---------------------------------------------------------------------------
// Analyzer fixture tests

func TestCtxFlowFixture(t *testing.T) {
	runFixtureTest(t, "ctxflow", CtxFlow, nil)
}

func TestBudgetChargeFixture(t *testing.T) {
	runFixtureTest(t, "budgetcharge", BudgetCharge, nil)
}

func TestSpanSafeFixture(t *testing.T) {
	// The spansafe fixture imports a fixture-local obsv package; check
	// that one first and feed it to the importer.
	fset := token.NewFileSet()
	files := parseFixture(t, fset, filepath.Join("testdata", "src", "obsv"))
	obsvPkg, _, err := TypeCheck(fset, "obsv", files, importer.ForCompiler(fset, "gc", stdLookup(t)))
	if err != nil {
		t.Fatalf("type-checking obsv fixture: %v", err)
	}
	runFixtureTest(t, "spansafe", SpanSafe, map[string]*types.Package{"obsv": obsvPkg})
}

func TestErrTaxonFixture(t *testing.T) {
	runFixtureTest(t, "errtaxon", ErrTaxon, nil)
}

// The storage rules key on the import-path suffix, so the fixture lives
// under testdata/src/internal/sql/wal and is checked under that path.
func TestErrTaxonStorageFixture(t *testing.T) {
	runFixtureTest(t, "internal/sql/wal", ErrTaxon, nil)
}

// The network packages (internal/server, driver) carry the error-chain
// rule but not the vfs-seam rule; the fixture checks both sides.
func TestErrTaxonChainFixture(t *testing.T) {
	runFixtureTest(t, "internal/server", ErrTaxon, nil)
}

func TestLockOrderFixture(t *testing.T) {
	runFixtureTreeTest(t, "lockorder", LockOrder)
}

func TestGuardedByFixture(t *testing.T) {
	runFixtureTest(t, "guardedby", GuardedBy, nil)
}

func TestAtomicMixFixture(t *testing.T) {
	runFixtureTest(t, "atomicmix", AtomicMix, nil)
}

func TestGoroLifecycleFixture(t *testing.T) {
	runFixtureTest(t, "gorolifecycle", GoroLifecycle, nil)
}

// TestIgnoreDirectives pins the suppression contract: a justified
// directive silences its analyzer on the next line only, an unjustified
// one is itself a finding, and other analyzers are unaffected.
func TestIgnoreDirectives(t *testing.T) {
	src := "package p\n\n//lint:ignore demo covered elsewhere\nvar x = 1\n\n//lint:ignore demo\nvar y = 2\n"
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	diags := []Diagnostic{
		{Analyzer: "demo", Pos: token.Position{Filename: "p.go", Line: 4}, Message: "suppressed"},
		{Analyzer: "demo", Pos: token.Position{Filename: "p.go", Line: 7}, Message: "kept: directive above has no justification"},
		{Analyzer: "other", Pos: token.Position{Filename: "p.go", Line: 4}, Message: "kept: different analyzer"},
	}
	out := applyIgnores(fset, []*ast.File{f}, diags)
	var got []string
	for _, d := range out {
		got = append(got, fmt.Sprintf("%s:%d", d.Analyzer, d.Pos.Line))
	}
	sort.Strings(got)
	want := []string{"demo:7", "lint:6", "other:4"}
	if strings.Join(got, " ") != strings.Join(want, " ") {
		t.Fatalf("applyIgnores kept %v, want %v", got, want)
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("")
	if err != nil || len(all) != 8 {
		t.Fatalf("ByName(\"\") = %d analyzers, err %v; want 8, nil", len(all), err)
	}
	two, err := ByName("ctxflow, spansafe")
	if err != nil || len(two) != 2 || two[0].Name != "ctxflow" || two[1].Name != "spansafe" {
		t.Fatalf("ByName selection failed: %v %v", two, err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(nope) should fail")
	}
}

// ---------------------------------------------------------------------------
// The suite must run clean on the repository itself.

func TestRepoClean(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(root, "./...")
	if err != nil {
		t.Fatalf("loading repository packages: %v", err)
	}
	if len(loaded) == 0 {
		t.Fatal("Load matched no packages")
	}
	// Load returns packages in `go list -deps` order — dependencies
	// before dependents — which is exactly what the fact store needs.
	facts := new(FactStore)
	for _, l := range loaded {
		diags := RunWithFacts(l.Fset, l.Files, l.Pkg, l.Info, All(), facts)
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
