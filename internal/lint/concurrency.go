package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// This file holds the flow machinery shared by the concurrency
// analyzers (lockorder, guardedby): recognizing sync.Mutex/RWMutex
// acquire and release calls, naming locks — by instance path for
// guardedby, by class for lockorder — and walking a function body in
// statement order while tracking which locks are held.
//
// The walk is a deliberate approximation, tuned so the repository's
// locking idioms (Lock/defer Unlock at the top, Lock…Unlock windows,
// early-unlock-and-return branches) analyze exactly and everything
// else degrades toward fewer findings, never toward false positives:
//
//   - statements run in source order; branch bodies (if/for/switch/
//     select) are walked on a copy of the held set and their effects
//     dropped afterwards, so an unlock on an early-return path does not
//     clear the lock for the fall-through path;
//   - `defer mu.Unlock()` leaves the lock held to the end of the
//     function, which is what the held set already says;
//   - a `go` statement's function literal starts with nothing held (a
//     goroutine does not inherit its creator's locks); other literals
//     (callbacks like sort.Slice comparators, which run inline) inherit
//     a copy of the current held set.

// mutexAcquire / mutexRelease classify sync lock-discipline calls.
const (
	mutexNone = iota
	mutexAcquire
	mutexRelease
)

// mutexOp reports whether call is a (*sync.Mutex)/(*sync.RWMutex)
// Lock/RLock (acquire) or Unlock/RUnlock (release), and the expression
// the method was invoked on. TryLock is not an acquire: it cannot
// block, so it cannot deadlock.
func mutexOp(info *types.Info, call *ast.CallExpr) (op int, mutexExpr ast.Expr) {
	f := funcObj(info, call)
	if f == nil || f.Pkg() == nil || f.Pkg().Path() != "sync" {
		return mutexNone, nil
	}
	recv := recvTypeName(f)
	if recv != "Mutex" && recv != "RWMutex" {
		return mutexNone, nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return mutexNone, nil
	}
	switch f.Name() {
	case "Lock", "RLock":
		return mutexAcquire, sel.X
	case "Unlock", "RUnlock":
		return mutexRelease, sel.X
	}
	return mutexNone, nil
}

// exprPath renders a pure selector chain of identifiers ("db.cache.mu")
// or "" when the expression routes through anything else (a call, an
// index); such locks are untrackable by instance and are skipped.
func exprPath(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		base := exprPath(x.X)
		if base == "" {
			return ""
		}
		return base + "." + x.Sel.Name
	}
	return ""
}

// lockClass names a mutex by what it protects rather than which
// instance it is: "pkgpath.Type.field" for a struct-field mutex,
// "pkgpath.var.field" for a field of a package-level (anonymous
// struct) variable, "pkgpath.var" for a bare package-level mutex.
// Function-local mutexes return "" — they cannot participate in a
// cross-function acquisition order.
func lockClass(info *types.Info, mutexExpr ast.Expr) string {
	switch x := ast.Unparen(mutexExpr).(type) {
	case *ast.SelectorExpr:
		base := ast.Unparen(x.X)
		if t, ok := info.Types[base]; ok && t.Type != nil {
			typ := t.Type
			if p, ok := typ.(*types.Pointer); ok {
				typ = p.Elem()
			}
			if n, ok := typ.(*types.Named); ok && n.Obj().Pkg() != nil {
				return n.Obj().Pkg().Path() + "." + n.Obj().Name() + "." + x.Sel.Name
			}
		}
		// Field of a package-level variable of anonymous struct type
		// (e.g. translator's selfCheckMemo.mu).
		if id, ok := base.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && v.Pkg() != nil && isPackageLevel(v) {
				return v.Pkg().Path() + "." + v.Name() + "." + x.Sel.Name
			}
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok && v.Pkg() != nil && isPackageLevel(v) {
			return v.Pkg().Path() + "." + v.Name()
		}
	}
	return ""
}

// isPackageLevel reports whether v is declared at package scope.
func isPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Pkg().Scope().Lookup(v.Name()) == v
}

// heldWalker drives the statement-order walk. keyOf names a mutex
// expression (empty = untracked); onAcquire fires before the new lock
// joins the held set; onNode fires for every expression node visited,
// with the held set live at that point.
type heldWalker struct {
	info      *types.Info
	keyOf     func(ast.Expr) string
	onAcquire func(key string, call *ast.CallExpr, held map[string]token.Pos)
	onNode    func(n ast.Node, held map[string]token.Pos)

	// inGo counts how many `go func(){…}` literal bodies enclose the
	// current position. Callbacks consult it: work inside a spawned
	// goroutine runs concurrently with the enclosing function, so its
	// acquisitions must not be attributed to callers of that function,
	// and a caller's locks cannot satisfy its accesses.
	inGo int
}

func copyHeld(held map[string]token.Pos) map[string]token.Pos {
	out := make(map[string]token.Pos, len(held))
	for k, v := range held {
		out[k] = v
	}
	return out
}

// walkFunc analyzes one function body from an empty held set.
func (w *heldWalker) walkFunc(body *ast.BlockStmt) {
	w.walkStmts(body.List, make(map[string]token.Pos))
}

// walkStmts processes stmts sequentially, mutating held.
func (w *heldWalker) walkStmts(stmts []ast.Stmt, held map[string]token.Pos) {
	for _, st := range stmts {
		w.walkStmt(st, held)
	}
}

func (w *heldWalker) walkStmt(st ast.Stmt, held map[string]token.Pos) {
	switch s := st.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if op, mx := mutexOp(w.info, call); op != mutexNone {
				key := ""
				if w.keyOf != nil {
					key = w.keyOf(mx)
				}
				if key == "" {
					return
				}
				switch op {
				case mutexAcquire:
					if w.onAcquire != nil {
						w.onAcquire(key, call, held)
					}
					held[key] = call.Pos()
				case mutexRelease:
					delete(held, key)
				}
				return
			}
		}
		w.visitExpr(s.X, held)
	case *ast.DeferStmt:
		if op, _ := mutexOp(w.info, s.Call); op != mutexNone {
			return // defer mu.Unlock(): lock stays held to function end
		}
		w.visitExpr(s.Call, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.visitExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.visitExpr(e, held)
		}
	case *ast.IncDecStmt:
		w.visitExpr(s.X, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.visitExpr(e, held)
		}
	case *ast.SendStmt:
		w.visitExpr(s.Chan, held)
		w.visitExpr(s.Value, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.visitExpr(e, held)
					}
				}
			}
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List, held)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.visitExpr(s.Cond, held)
		w.walkStmts(s.Body.List, copyHeld(held))
		if s.Else != nil {
			w.walkStmt(s.Else, copyHeld(held))
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.visitExpr(s.Cond, held)
		}
		body := copyHeld(held)
		w.walkStmts(s.Body.List, body)
		if s.Post != nil {
			w.walkStmt(s.Post, body)
		}
	case *ast.RangeStmt:
		w.visitExpr(s.X, held)
		w.walkStmts(s.Body.List, copyHeld(held))
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.visitExpr(s.Tag, held)
		}
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, e := range cc.List {
					w.visitExpr(e, held)
				}
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.walkStmt(s.Assign, held)
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				w.walkStmts(cc.Body, copyHeld(held))
			}
		}
	case *ast.SelectStmt:
		for _, c := range s.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				inner := copyHeld(held)
				if cc.Comm != nil {
					w.walkStmt(cc.Comm, inner)
				}
				w.walkStmts(cc.Body, inner)
			}
		}
	case *ast.GoStmt:
		// Arguments evaluate on the spawning goroutine, under its locks;
		// the body runs on a fresh goroutine holding nothing.
		for _, a := range s.Call.Args {
			w.visitExpr(a, held)
		}
		if lit, ok := ast.Unparen(s.Call.Fun).(*ast.FuncLit); ok {
			w.inGo++
			w.walkStmts(lit.Body.List, make(map[string]token.Pos))
			w.inGo--
		} else {
			w.visitExpr(s.Call.Fun, held)
		}
	}
}

// visitExpr fires onNode for every node of e in source order, recursing
// into function literals with a copy of the held set (inline callbacks
// run under the caller's locks).
func (w *heldWalker) visitExpr(e ast.Expr, held map[string]token.Pos) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			if lit != e {
				w.walkStmts(lit.Body.List, copyHeld(held))
				return false
			}
			// A bare literal at the root (shouldn't occur via statements
			// above, but keep it total).
			w.walkStmts(lit.Body.List, copyHeld(held))
			return false
		}
		if n != nil && w.onNode != nil {
			w.onNode(n, held)
		}
		return true
	})
}
