// Package lint is a small, dependency-free static-analysis framework in
// the style of go/analysis, carrying the repository's custom analyzers.
// Each Analyzer inspects one type-checked package and reports
// diagnostics; drivers (cmd/minerule-vet) adapt the same analyzers to
// standalone invocation and to `go vet -vettool`. The framework is
// hand-rolled because the module is dependency-free by policy —
// golang.org/x/tools is not available — so the subset of go/analysis
// the analyzers need (a typed Pass, positional Report) is reimplemented
// on the standard library's go/ast, go/types and go/token.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// Facts is the cross-package fact store, nil when the driver runs
	// packages in isolation (facts then silently degrade to
	// package-local analysis).
	Facts *FactStore

	// report collects diagnostics; analyzers call Reportf.
	diags    *[]Diagnostic
	analyzer string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, with its resolved file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Run applies the analyzers to one type-checked package and returns the
// findings sorted by position. Cross-package facts degrade to
// package-local analysis; drivers that analyze whole programs use
// RunWithFacts.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	return RunWithFacts(fset, files, pkg, info, analyzers, nil)
}

// RunWithFacts is Run with a fact store: analyzers read facts exported
// by the package's (transitive) dependencies and export their own for
// downstream packages. The driver must analyze packages in dependency
// order with one shared store for facts to be complete.
func RunWithFacts(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer, facts *FactStore) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		p := &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info, Facts: facts, diags: &diags, analyzer: a.Name}
		a.Run(p)
	}
	diags = applyIgnores(fset, files, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}

// ignoreRE matches suppression directives:
//
//	//lint:ignore <analyzer> <justification>
//
// The directive suppresses that analyzer's findings on its own line and
// on the directive's line + 1 (the comment-above-the-statement idiom).
// The justification is mandatory: a directive without one is itself
// reported, so every suppression in the tree explains why the finding
// is a false positive or an accepted risk.
var ignoreRE = regexp.MustCompile(`^//lint:ignore\s+(\S+)\s*(.*)$`)

// applyIgnores drops diagnostics covered by a justified //lint:ignore
// directive and reports unjustified directives.
func applyIgnores(fset *token.FileSet, files []*ast.File, diags []Diagnostic) []Diagnostic {
	type ignoreKey struct {
		file     string
		line     int
		analyzer string
	}
	ignores := make(map[ignoreKey]bool)
	var out []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				if strings.TrimSpace(m[2]) == "" {
					out = append(out, Diagnostic{
						Analyzer: "lint",
						Pos:      pos,
						Message:  fmt.Sprintf("//lint:ignore %s has no justification: explain why the finding is suppressed", m[1]),
					})
					continue
				}
				ignores[ignoreKey{pos.Filename, pos.Line, m[1]}] = true
				ignores[ignoreKey{pos.Filename, pos.Line + 1, m[1]}] = true
			}
		}
	}
	for _, d := range diags {
		if ignores[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// All returns the repository's analyzer suite: the four statement-local
// analyzers from PR 5 plus the concurrency-safety suite.
func All() []*Analyzer {
	return []*Analyzer{
		CtxFlow, BudgetCharge, SpanSafe, ErrTaxon,
		LockOrder, GuardedBy, AtomicMix, GoroLifecycle,
	}
}

// ByName resolves a comma-separated analyzer selection; empty selects
// all.
func ByName(sel string) ([]*Analyzer, error) {
	if sel == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(sel, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Shared helpers

// isTestFile reports whether the file's name ends in _test.go.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// funcObj resolves a call expression to the *types.Func it invokes, or
// nil for indirect calls, builtins and conversions.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// recvTypeName returns the bare name of a method's receiver named type
// ("Budget" for func (b *Budget) Charge), or "" for plain functions.
func recvTypeName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// identRoot returns the leftmost identifier of a selector chain (x for
// x.y.z), or nil when the expression does not start at an identifier.
func identRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}
