// Package lint is a small, dependency-free static-analysis framework in
// the style of go/analysis, carrying the repository's custom analyzers.
// Each Analyzer inspects one type-checked package and reports
// diagnostics; drivers (cmd/minerule-vet) adapt the same analyzers to
// standalone invocation and to `go vet -vettool`. The framework is
// hand-rolled because the module is dependency-free by policy —
// golang.org/x/tools is not available — so the subset of go/analysis
// the analyzers need (a typed Pass, positional Report) is reimplemented
// on the standard library's go/ast, go/types and go/token.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Pass carries one type-checked package through an analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	// report collects diagnostics; analyzers call Reportf.
	diags    *[]Diagnostic
	analyzer string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, with its resolved file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Run applies the analyzers to one type-checked package and returns the
// findings sorted by position.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		p := &Pass{Fset: fset, Files: files, Pkg: pkg, Info: info, diags: &diags, analyzer: a.Name}
		a.Run(p)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return diags
}

// All returns the repository's analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{CtxFlow, BudgetCharge, SpanSafe, ErrTaxon}
}

// ByName resolves a comma-separated analyzer selection; empty selects
// all.
func ByName(sel string) ([]*Analyzer, error) {
	if sel == "" {
		return All(), nil
	}
	byName := make(map[string]*Analyzer)
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, n := range strings.Split(sel, ",") {
		a, ok := byName[strings.TrimSpace(n)]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", n)
		}
		out = append(out, a)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Shared helpers

// isTestFile reports whether the file's name ends in _test.go.
func isTestFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Pos()).Filename, "_test.go")
}

// funcObj resolves a call expression to the *types.Func it invokes, or
// nil for indirect calls, builtins and conversions.
func funcObj(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}

// recvTypeName returns the bare name of a method's receiver named type
// ("Budget" for func (b *Budget) Charge), or "" for plain functions.
func recvTypeName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// identRoot returns the leftmost identifier of a selector chain (x for
// x.y.z), or nil when the expression does not start at an identifier.
func identRoot(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}
