package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// SpanSafe enforces the observability contract of obsv.Span: spans are
// nil when tracing is off, every Span method is nil-safe, and code
// outside the obsv package that reads Span struct fields directly
// (Name, Attrs, Children, Duration — which a nil receiver would panic
// on) must guard the value against nil in the same function. Method
// calls need no guard — that nil-safety is the package's contract.
var SpanSafe = &Analyzer{
	Name: "spansafe",
	Doc:  "direct obsv.Span field reads outside obsv need a nil guard",
	Run:  runSpanSafe,
}

var spanFields = map[string]bool{
	"Name": true, "Attrs": true, "Children": true, "Duration": true,
}

func runSpanSafe(p *Pass) {
	if p.Pkg.Name() == "obsv" {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkSpanFunc(p, fd)
		}
	}
}

func checkSpanFunc(p *Pass, fd *ast.FuncDecl) {
	// guarded collects the names of identifiers that appear in any nil
	// comparison within the function (x == nil, x != nil). One guard
	// anywhere in the function is accepted — the analyzer checks that
	// the author thought about nil, not the dominator tree.
	guarded := make(map[string]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			if isNilIdent(side) {
				continue
			}
			if id := identRoot(side); id != nil {
				guarded[id.Name] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !spanFields[sel.Sel.Name] {
			return true
		}
		if !isSpanPtr(p.Info.Types[sel.X].Type) {
			return true
		}
		// Only direct field selections count; p.Info tells fields from
		// methods apart.
		if _, isField := p.Info.Selections[sel]; !isField {
			return true
		}
		if obj := p.Info.Selections[sel].Obj(); obj == nil || !isFieldVar(obj) {
			return true
		}
		root := identRoot(sel.X)
		if root != nil && guarded[root.Name] {
			return true
		}
		p.Reportf(sel.Pos(), "field %s read on *obsv.Span without a nil guard (spans are nil when tracing is off)", sel.Sel.Name)
		return true
	})
}

func isFieldVar(obj types.Object) bool {
	v, ok := obj.(*types.Var)
	return ok && v.IsField()
}

// isSpanPtr reports whether t is *Span of a package named obsv.
func isSpanPtr(t types.Type) bool {
	if t == nil {
		return false
	}
	ptr, ok := t.Underlying().(*types.Pointer)
	if !ok {
		p2, ok2 := t.(*types.Pointer)
		if !ok2 {
			return false
		}
		ptr = p2
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	if named.Obj().Name() != "Span" || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Name() == "obsv"
}
