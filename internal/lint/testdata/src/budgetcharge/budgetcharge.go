package mining

type Budget struct{ rows int64 }

func (b *Budget) Charge(n int64) bool { b.rows += n; return true }
func (b *Budget) Stop() bool          { return false }
func (b *Budget) NotePass()           {}

type good struct{ bud *Budget }

// LargeItemsets charging transitively through a helper: allowed.
func (g *good) LargeItemsets() { g.scan() }

func (g *good) scan() { g.bud.Charge(1) }

// MineGeneral charging from a worker closure: allowed.
func MineGeneral(b *Budget) {
	work := func() { b.Charge(1) }
	work()
}

type bad struct{ bud *Budget }

func (b *bad) LargeItemsets() { // want `LargeItemsets does not charge the Budget`
	b.helper()
}

func (b *bad) helper() {}

func passLoop(b *Budget, n int) {
	for i := 0; i < n; i++ { // want `loop records passes \(NotePass\) without charging`
		b.NotePass()
	}
}

func goodLoop(b *Budget, n int) {
	for i := 0; i < n; i++ {
		b.NotePass()
		if !b.Charge(1) {
			return
		}
	}
}
