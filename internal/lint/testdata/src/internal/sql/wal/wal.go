// Fixture for the errtaxon storage rules: this package's import path
// ends in internal/sql/wal, so direct os file calls and flattened
// error wraps must be flagged.
package wal

import (
	"fmt"
	"os"
)

func badOps(path string) error {
	f, err := os.Create(path) // want `direct os.Create bypasses the vfs seam`
	if err != nil {
		return fmt.Errorf("create %s failed: %v", path, err) // want `error flattened out of the chain`
	}
	f.Close()                               // method on *os.File, not a package-level op: fine
	if err := os.Remove(path); err != nil { // want `direct os.Remove bypasses the vfs seam`
		return err
	}
	_, err = os.ReadFile(path) // want `direct os.ReadFile bypasses the vfs seam`
	return err
}

func badWrap(err error) error {
	return fmt.Errorf("wal append broke: %s", err) // want `error flattened out of the chain`
}

func goodWrap(path string, err error) error {
	if err != nil {
		return fmt.Errorf("wal %s: %w", path, err)
	}
	// Non-filesystem os calls and non-error Errorf args are fine.
	_ = os.Getenv("HOME")
	return fmt.Errorf("torn tail of %d bytes in %s", 7, path)
}
