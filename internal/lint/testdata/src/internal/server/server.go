// Fixture for the errtaxon error-chain rule on the network packages:
// the server and driver relay the typed taxonomy over the wire, so an
// error flattened with %v/%s breaks remote classification. The vfs-seam
// rule does NOT apply here — the server speaks sockets, not storage.
package server

import (
	"errors"
	"fmt"
	"os"
)

func sendError(err error) error {
	return fmt.Errorf("server: request failed: %v", err) // want `error flattened out of the chain`
}

func sendErrorString(err error) error {
	return fmt.Errorf("server: request failed: %s", err) // want `error flattened out of the chain`
}

func sendWrapped(err error) error {
	return fmt.Errorf("server: request failed: %w", err) // ok: chain intact
}

func plainMessage(code string) error {
	return fmt.Errorf("server: refused with code %s", code) // ok: no error argument
}

func sentinel() error {
	return errors.New("server: protocol violation") // ok: fresh error, nothing to chain
}

func notStorage(path string) error {
	// os.* is fine here: the vfs-seam rule is storage-only.
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("server: pidfile: %w", err)
	}
	return f.Close()
}
