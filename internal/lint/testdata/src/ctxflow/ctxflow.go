package ctxflow

import "context"

type DB struct{}

func (db *DB) ExecContext(ctx context.Context, q string) error { return nil }

// Exec is a convenience wrapper: it IS the API layer, so minting a
// context in the single forwarding statement is allowed.
func (db *DB) Exec(q string) error {
	return db.ExecContext(context.Background(), q)
}

// Run defaults an optional context with the nil-guard idiom: allowed.
func Run(ctx context.Context, db *DB) error {
	if ctx == nil {
		ctx = context.Background()
	}
	return db.ExecContext(ctx, "SELECT 1")
}

func deepWorker(db *DB) error {
	ctx := context.Background() // want `context\.Background\(\) below the API layer`
	return db.ExecContext(ctx, "SELECT 1")
}

func todoWorker(db *DB) error {
	q := "SELECT 1"
	return db.ExecContext(context.TODO(), q) // want `context\.TODO\(\) below the API layer`
}
