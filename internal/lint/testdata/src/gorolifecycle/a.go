package gorolifecycle

import "sync"

// leak spawns a goroutine nothing can join or stop.
func leak() {
	go func() { // want `goroutine is never joined`
		println("working")
	}()
}

// joined is the WaitGroup pattern.
func joined() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		println("working")
	}()
	wg.Wait()
}

// doneChannel closes a channel the owner can wait on.
func doneChannel() <-chan struct{} {
	done := make(chan struct{})
	go func() {
		defer close(done)
		println("working")
	}()
	return done
}

// sender reports completion over a result channel.
func sender() <-chan int {
	out := make(chan int, 1)
	go func() {
		out <- 42
	}()
	return out
}

// viaHelper's evidence lives in a same-package callee.
func viaHelper() {
	ch := make(chan int, 1)
	go pump(ch)
	<-ch
}

func pump(ch chan int) { ch <- 1 }

// stoppable is the cancellation-path pattern.
func stoppable(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				println("tick")
			}
		}
	}()
}

// leakyHelper has no evidence even through its callee.
func leakyHelper() {
	go spin() // want `goroutine is never joined`
}

func spin() {
	for {
		println("spinning")
	}
}
