// Package b imports a and violates its lock orders; the analyzer sees
// a's orders only through exported facts.
package b

import "a"

// Invert acquires directly in the reverse of a.Establish's order.
func Invert(x *a.A, y *a.B) {
	y.Mu.Lock()
	defer y.Mu.Unlock()
	x.Mu.Lock() // want `lock order inversion`
	x.Mu.Unlock()
}

// InvertViaFact holds D and calls a function that a's facts say
// acquires C — the reverse of a.EstablishCD.
func InvertViaFact(c *a.C, d *a.D) {
	d.Mu.Lock()
	a.LockC(c) // want `lock order inversion`
	d.Mu.Unlock()
}

// Aligned follows the established A -> B order: clean.
func Aligned(x *a.A, y *a.B) {
	x.Mu.Lock()
	y.Mu.Lock()
	y.Mu.Unlock()
	x.Mu.Unlock()
}

// AlignedViaCall holds C and calls a.LockD: consistent with C -> D.
func AlignedViaCall(c *a.C, d *a.D) {
	c.Mu.Lock()
	a.LockD(d)
	c.Mu.Unlock()
}
