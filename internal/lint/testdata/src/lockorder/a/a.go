// Package a establishes lock orders that package b must respect; its
// acquisition facts cross the package boundary through the fact store.
package a

import "sync"

type A struct{ Mu sync.Mutex }
type B struct{ Mu sync.Mutex }
type C struct{ Mu sync.Mutex }
type D struct{ Mu sync.Mutex }

// Establish fixes the order A -> B.
func Establish(x *A, y *B) {
	x.Mu.Lock()
	defer x.Mu.Unlock()
	y.Mu.Lock()
	y.Mu.Unlock()
}

// EstablishCD fixes C -> D through a hold-and-call edge.
func EstablishCD(c *C, d *D) {
	c.Mu.Lock()
	defer c.Mu.Unlock()
	LockD(d)
}

// LockD acquires and releases D.
func LockD(d *D) {
	d.Mu.Lock()
	d.Mu.Unlock()
}

// LockC acquires and releases C.
func LockC(c *C) {
	c.Mu.Lock()
	c.Mu.Unlock()
}
