package minerule

import (
	"errors"
	"fmt"
)

func Public(x int) error {
	if x < 0 {
		return fmt.Errorf("bad input %d", x) // want `bare fmt.Errorf at the public API boundary`
	}
	if x == 0 {
		return fmt.Errorf("minerule: zero input")
	}
	return fmt.Errorf("run failed: %w", errors.New("inner"))
}

// Unexported helpers are below the boundary: no diagnostic.
func internalHelper(x int) error {
	return fmt.Errorf("anything goes here %d", x)
}
