package atomicmix

import "sync/atomic"

type counter struct {
	n    int64 // accessed both ways: the bug
	safe int64 // only ever atomic: fine
}

func (c *counter) bump() {
	atomic.AddInt64(&c.n, 1)
}

func (c *counter) read() int64 {
	return c.n // want `field n is accessed with sync/atomic`
}

func (c *counter) store(v int64) {
	c.n = v // want `field n is accessed with sync/atomic`
}

func (c *counter) bumpSafe() {
	atomic.AddInt64(&c.safe, 1)
}

func (c *counter) readSafe() int64 {
	return atomic.LoadInt64(&c.safe)
}
