package spansafe

import "obsv"

func dumpBad(sp *obsv.Span) string {
	return sp.Name // want `field Name read on \*obsv\.Span without a nil guard`
}

func attrsBad(sp *obsv.Span) int {
	return len(sp.Attrs) // want `field Attrs read on \*obsv\.Span without a nil guard`
}

func dumpGood(sp *obsv.Span) string {
	if sp == nil {
		return ""
	}
	return sp.Name
}

func kidsGood(sp *obsv.Span) int {
	if sp != nil {
		return len(sp.Children)
	}
	return 0
}

// Methods are nil-safe by the obsv contract: no guard needed.
func methodOK(sp *obsv.Span) {
	sp.Finish()
}
