package guardedby

import (
	"sync"
	"sync/atomic"
)

type box struct {
	mu sync.Mutex
	n  int   // guarded by mu
	a  int64 // guarded by mu
}

type badAnno struct {
	m int // guarded by missing // want `guarded-by annotation names "missing"`
}

// good holds the lock across the access.
func (b *box) good() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// window is the explicit Lock…Unlock form.
func (b *box) window() int {
	b.mu.Lock()
	v := b.n
	b.mu.Unlock()
	return v
}

// bad touches another object's guarded field with no lock at all.
func (b *box) bad(other *box) int {
	return other.n // want `field n is guarded by mu but accessed without holding other.mu`
}

// atomicOK discharges the obligation through sync/atomic.
func (b *box) atomicOK() int64 {
	return atomic.LoadInt64(&b.a)
}

// spawned goroutines do not inherit the spawner's locks.
func (b *box) spawn() {
	b.mu.Lock()
	defer b.mu.Unlock()
	go func() {
		b.n++ // want `field n is guarded by mu but accessed without holding b.mu`
	}()
}

// addLocked's bare access becomes a caller obligation, not a finding.
func (b *box) addLocked(d int) { b.n += d }

// callerGood discharges addLocked's obligation.
func (b *box) callerGood(d int) {
	b.mu.Lock()
	b.addLocked(d)
	b.mu.Unlock()
}

// use calls a contract method without the lock.
func use(x *box) {
	x.addLocked(1) // want `call to addLocked requires holding x.mu`
}

// Bump inherits the obligation from addLocked; being exported, its
// callers cannot all be seen, so the obligation surfaces here.
func (b *box) Bump(d int) { // want `exported method Bump accesses fields guarded by mu`
	b.addLocked(d)
}

// fresh objects are unpublished: initialization needs no lock.
func fresh() *box {
	b := &box{}
	b.n = 7
	return b
}
