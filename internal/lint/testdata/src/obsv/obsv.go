package obsv

// Span mirrors the repository's obsv.Span shape for the spansafe
// fixtures: nil when tracing is off, methods nil-safe, fields not.
type Span struct {
	Name     string
	Duration int64
	Attrs    map[string]string
	Children []*Span
}

func (s *Span) Finish() {}
