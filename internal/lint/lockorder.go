package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder builds the mutex-acquisition graph and flags order
// inversions — the two-lock deadlock class. Locks are named by *class*
// (pkgpath.Type.field), so any Table.mu counts as the same lock: an
// edge A→B means "somewhere, B is acquired while A is held". If the
// reverse order is also reachable, two goroutines can each hold one
// lock and wait for the other forever; the analyzer reports the local
// edge and the conflicting path.
//
// Reasoning is cross-function and cross-package: each function's set of
// possibly-acquired classes is closed over its same-package callees,
// and exported per package as a fact (go/analysis style); a downstream
// package that calls storage while holding engine locks gets the
// storage-internal acquisitions from the fact store. Self-edges are
// skipped — instances of a class are conflated, and lock-both-tables
// code would otherwise always fire. Acquisitions inside `go` literals
// belong to the spawned goroutine, not to callers of the spawning
// function. Calls through interfaces contribute no edges (the concrete
// method is unknown); sync.Mutex.TryLock cannot block and is ignored.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "flag mutex acquisition-order inversions (deadlock candidates)",
	Run:  runLockOrder,
}

// lockOrderFact is the per-package fact: the transitively-closed set of
// lock classes each function may acquire, and the package's local
// acquisition-order edges with their source positions.
type lockOrderFact struct {
	Functions map[string][]string `json:"functions,omitempty"`
	Edges     []lockEdgeFact      `json:"edges,omitempty"`
}

type lockEdgeFact struct {
	From string `json:"from"`
	To   string `json:"to"`
	At   string `json:"at"` // "file:line:col", for diagnostics only
}

// transImports returns the transitive import closure of pkg.
func transImports(pkg *types.Package) []*types.Package {
	seen := make(map[*types.Package]bool)
	var out []*types.Package
	var rec func(p *types.Package)
	rec = func(p *types.Package) {
		for _, im := range p.Imports() {
			if !seen[im] {
				seen[im] = true
				out = append(out, im)
				rec(im)
			}
		}
	}
	rec(pkg)
	return out
}

type loCall struct {
	callee   *types.Func
	held     map[string]token.Pos
	pos      token.Pos
	detached bool // inside a `go` literal: not part of the caller's behavior
}

type loFunc struct {
	obj    *types.Func
	direct map[string]bool
	calls  []loCall
}

type loEdge struct{ from, to string }

func runLockOrder(p *Pass) {
	var fns []*loFunc
	localEdges := make(map[loEdge]token.Pos)
	var edgeOrder []loEdge // insertion order, for deterministic reports
	addEdge := func(from, to string, pos token.Pos) {
		if from == to {
			return
		}
		k := loEdge{from, to}
		if _, ok := localEdges[k]; !ok {
			localEdges[k] = pos
			edgeOrder = append(edgeOrder, k)
		}
	}

	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := p.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			fn := &loFunc{obj: obj, direct: make(map[string]bool)}
			w := &heldWalker{info: p.Info, keyOf: func(e ast.Expr) string { return lockClass(p.Info, e) }}
			w.onAcquire = func(key string, call *ast.CallExpr, held map[string]token.Pos) {
				for h := range held {
					addEdge(h, key, call.Pos())
				}
				if w.inGo == 0 {
					fn.direct[key] = true
				}
			}
			w.onNode = func(n ast.Node, held map[string]token.Pos) {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return
				}
				callee := funcObj(p.Info, call)
				if callee == nil || callee.Pkg() == nil {
					return
				}
				if path := callee.Pkg().Path(); path == "sync" || path == "sync/atomic" {
					return
				}
				fn.calls = append(fn.calls, loCall{callee, copyHeld(held), call.Pos(), w.inGo > 0})
			}
			w.walkFunc(fd.Body)
			fns = append(fns, fn)
		}
	}

	// Pull facts from the transitive dependencies.
	depFns := make(map[string][]string)
	var depEdges []lockEdgeFact
	if p.Facts != nil {
		for _, dep := range transImports(p.Pkg) {
			var fact lockOrderFact
			if p.Facts.ImportFact(dep.Path(), "lockorder", &fact) {
				for name, classes := range fact.Functions {
					depFns[name] = classes
				}
				depEdges = append(depEdges, fact.Edges...)
			}
		}
	}

	// Close each function's acquired-class set over its callees.
	eff := make(map[string]map[string]bool, len(fns))
	for _, fn := range fns {
		s := make(map[string]bool, len(fn.direct))
		for c := range fn.direct {
			s[c] = true
		}
		eff[fn.obj.FullName()] = s
	}
	acquiredOf := func(callee *types.Func) []string {
		name := callee.FullName()
		if s, ok := eff[name]; ok {
			out := make([]string, 0, len(s))
			for c := range s {
				out = append(out, c)
			}
			return out
		}
		return depFns[name]
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range fns {
			s := eff[fn.obj.FullName()]
			for _, c := range fn.calls {
				if c.detached {
					continue
				}
				for _, cls := range acquiredOf(c.callee) {
					if !s[cls] {
						s[cls] = true
						changed = true
					}
				}
			}
		}
	}

	// Hold-and-call edges: held locks order before everything the
	// callee may acquire.
	for _, fn := range fns {
		for _, c := range fn.calls {
			if len(c.held) == 0 {
				continue
			}
			for _, cls := range acquiredOf(c.callee) {
				for h := range c.held {
					addEdge(h, cls, c.pos)
				}
			}
		}
	}

	// Cycle check over local ∪ dependency edges.
	addAdj := func(adj map[string]map[string]bool, from, to string) {
		if adj[from] == nil {
			adj[from] = make(map[string]bool)
		}
		adj[from][to] = true
	}
	adjDep := make(map[string]map[string]bool)
	for _, e := range depEdges {
		addAdj(adjDep, e.From, e.To)
	}
	adj := make(map[string]map[string]bool)
	for k := range localEdges {
		addAdj(adj, k.from, k.to)
	}
	for _, e := range depEdges {
		addAdj(adj, e.From, e.To)
	}
	sort.Slice(edgeOrder, func(i, j int) bool {
		if edgeOrder[i].from != edgeOrder[j].from {
			return edgeOrder[i].from < edgeOrder[j].from
		}
		return edgeOrder[i].to < edgeOrder[j].to
	})
	reportedCycles := make(map[string]bool)
	report := func(k loEdge, path []string) {
		cyc := append([]string(nil), path...)
		sort.Strings(cyc)
		canon := strings.Join(cyc, "|")
		if reportedCycles[canon] {
			return
		}
		reportedCycles[canon] = true
		p.Reportf(localEdges[k], "lock order inversion: %s acquired while %s is held, but elsewhere the order is %s",
			k.to, k.from, strings.Join(path, " -> "))
	}
	// First report local edges that invert an order the dependencies
	// already established: dependency order is "first" in every sense,
	// so the violation is unambiguously the local edge. Only then scan
	// the combined graph, so a cycle's report lands on the inverting
	// edge rather than on a consistent edge that happens to sort
	// earlier.
	for _, k := range edgeOrder {
		if path := lockPath(adjDep, k.to, k.from); path != nil {
			report(k, path)
		}
	}
	for _, k := range edgeOrder {
		if path := lockPath(adj, k.to, k.from); path != nil {
			report(k, path)
		}
	}

	// Export this package's contribution for downstream importers.
	if p.Facts != nil {
		fact := lockOrderFact{Functions: make(map[string][]string)}
		for name, s := range eff {
			if len(s) == 0 {
				continue
			}
			classes := make([]string, 0, len(s))
			for c := range s {
				classes = append(classes, c)
			}
			sort.Strings(classes)
			fact.Functions[name] = classes
		}
		for _, k := range edgeOrder {
			fact.Edges = append(fact.Edges, lockEdgeFact{From: k.from, To: k.to, At: p.Fset.Position(localEdges[k]).String()})
		}
		if len(fact.Functions) > 0 || len(fact.Edges) > 0 {
			if err := p.Facts.ExportFact(p.Pkg.Path(), "lockorder", fact); err != nil {
				p.Reportf(token.NoPos, "exporting lockorder fact: %v", err)
			}
		}
	}
}

// lockPath finds a path from → to over adj (both endpoints included),
// or nil. Neighbor order is sorted so reports are deterministic.
func lockPath(adj map[string]map[string]bool, from, to string) []string {
	visited := map[string]bool{from: true}
	var dfs func(cur string, path []string) []string
	dfs = func(cur string, path []string) []string {
		if cur == to {
			return path
		}
		next := make([]string, 0, len(adj[cur]))
		for n := range adj[cur] {
			next = append(next, n)
		}
		sort.Strings(next)
		for _, n := range next {
			if visited[n] {
				continue
			}
			visited[n] = true
			if r := dfs(n, append(path, n)); r != nil {
				return r
			}
		}
		return nil
	}
	return dfs(from, []string{from})
}
