package lint

import (
	"go/ast"
	"go/constant"
	"strings"
)

// ErrTaxon enforces the error taxonomy at the public API boundary: the
// top-level minerule package returns either wrapped errors (%w, so
// callers can errors.Is/As into the kernel's typed errors) or errors
// carrying the "minerule: " prefix that names the failing subsystem.
// A bare fmt.Errorf("something broke") in an exported function leaks an
// unclassifiable error to library users.
var ErrTaxon = &Analyzer{
	Name: "errtaxon",
	Doc:  "public API errors must wrap (%w) or carry the minerule: prefix",
	Run:  runErrTaxon,
}

func runErrTaxon(p *Pass) {
	if p.Pkg.Name() != "minerule" {
		return
	}
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			checkErrTaxonFunc(p, fd)
		}
	}
}

func checkErrTaxonFunc(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := funcObj(p.Info, call)
		if f == nil || f.Pkg() == nil || f.Pkg().Path() != "fmt" || f.Name() != "Errorf" {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		format, ok := constFormat(p, call.Args[0])
		if !ok {
			// Non-constant format: cannot classify, leave it alone.
			return true
		}
		if strings.Contains(format, "%w") || strings.HasPrefix(format, "minerule: ") {
			return true
		}
		p.Reportf(call.Pos(), "bare fmt.Errorf at the public API boundary: wrap with %%w or prefix \"minerule: \"")
		return true
	})
}

// constFormat evaluates e as a constant string, following the typed
// constant value go/types computed (covers literals and named string
// constants alike).
func constFormat(p *Pass, e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
