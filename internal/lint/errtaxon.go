package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ErrTaxon enforces the error taxonomy at two boundaries.
//
// At the public API (package minerule), exported functions must return
// either wrapped errors (%w, so callers can errors.Is/As into the
// kernel's typed errors) or errors carrying the "minerule: " prefix
// that names the failing subsystem. A bare fmt.Errorf("something
// broke") in an exported function leaks an unclassifiable error to
// library users.
//
// In the storage subsystem (internal/sql/wal, internal/sql/pager,
// internal/sql/engine), two stricter rules apply:
//
//   - no direct os.* file operations: all storage I/O goes through the
//     vfs.FS seam, or fault injection and the crash simulation cannot
//     see it;
//   - fmt.Errorf must not flatten an error argument with %v/%s — use
//     %w, or errors.Is can no longer classify the failure (ENOSPC vs
//     EIO vs corruption drives veto/retry/degrade decisions).
var ErrTaxon = &Analyzer{
	Name: "errtaxon",
	Doc:  "public API errors wrap or carry the minerule: prefix; storage code stays on the vfs seam and keeps error chains intact",
	Run:  runErrTaxon,
}

// storagePackages are the import-path suffixes under the stricter
// storage rules.
var storagePackages = []string{
	"internal/sql/wal",
	"internal/sql/pager",
	"internal/sql/engine",
}

// chainPackages are additionally under the error-chain rule (%w, never
// %v/%s on an error argument) without the vfs-seam rule: the network
// server and the database/sql driver relay the typed taxonomy across
// the wire, so an error flattened in either breaks remote
// classification exactly like a flattened storage error breaks local
// errors.Is.
var chainPackages = []string{
	"internal/server",
	"internal/server/wire",
	"driver",
}

// osFileOps are the package-level os functions that touch the
// filesystem and therefore must be reached through vfs.FS.
var osFileOps = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "Rename": true,
	"Remove": true, "RemoveAll": true, "Truncate": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true, "ReadDir": true,
	"Link": true, "Symlink": true, "Chtimes": true,
}

func isStoragePkg(path string) bool { return matchesPkg(path, storagePackages) }

func isChainPkg(path string) bool { return matchesPkg(path, chainPackages) }

func matchesPkg(path string, suffixes []string) bool {
	for _, s := range suffixes {
		if path == s || strings.HasSuffix(path, "/"+s) {
			return true
		}
	}
	return false
}

func runErrTaxon(p *Pass) {
	if p.Pkg.Name() == "minerule" {
		for _, f := range p.Files {
			if isTestFile(p.Fset, f) {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !fd.Name.IsExported() {
					continue
				}
				checkErrTaxonFunc(p, fd)
			}
		}
	}
	if isStoragePkg(p.Pkg.Path()) {
		for _, f := range p.Files {
			if isTestFile(p.Fset, f) {
				continue
			}
			checkVFSSeam(p, f)
			checkErrChain(p, f)
		}
	}
	if isChainPkg(p.Pkg.Path()) {
		for _, f := range p.Files {
			if isTestFile(p.Fset, f) {
				continue
			}
			checkErrChain(p, f)
		}
	}
}

func checkErrTaxonFunc(p *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := funcObj(p.Info, call)
		if f == nil || f.Pkg() == nil || f.Pkg().Path() != "fmt" || f.Name() != "Errorf" {
			return true
		}
		if len(call.Args) == 0 {
			return true
		}
		format, ok := constFormat(p, call.Args[0])
		if !ok {
			// Non-constant format: cannot classify, leave it alone.
			return true
		}
		if strings.Contains(format, "%w") || strings.HasPrefix(format, "minerule: ") {
			return true
		}
		p.Reportf(call.Pos(), "bare fmt.Errorf at the public API boundary: wrap with %%w or prefix \"minerule: \"")
		return true
	})
}

// checkVFSSeam flags direct os.* filesystem calls: all storage I/O
// goes through the vfs.FS seam so fault injection and crash simulation
// cover it.
func checkVFSSeam(p *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := funcObj(p.Info, call)
		if f == nil || f.Pkg() == nil || f.Pkg().Path() != "os" {
			return true
		}
		if osFileOps[f.Name()] {
			p.Reportf(call.Pos(), "direct os.%s bypasses the vfs seam: storage I/O must go through vfs.FS so fault injection and crash simulation cover it", f.Name())
		}
		return true
	})
}

// checkErrChain flags fmt.Errorf calls that flatten an error argument
// with %v/%s instead of wrapping it with %w, which would sever the
// chain errors.Is classification depends on.
func checkErrChain(p *Pass, file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := funcObj(p.Info, call)
		if f == nil || f.Pkg() == nil || f.Pkg().Path() != "fmt" {
			return true
		}
		if f.Name() != "Errorf" || len(call.Args) < 2 {
			return true
		}
		format, ok := constFormat(p, call.Args[0])
		if !ok || strings.Contains(format, "%w") {
			return true
		}
		for _, arg := range call.Args[1:] {
			if isErrorExpr(p.Info, arg) {
				p.Reportf(call.Pos(), "error flattened out of the chain: use %%w so errors.Is can still classify the failure")
				break
			}
		}
		return true
	})
}

// isErrorExpr reports whether the expression's static type implements
// the error interface.
func isErrorExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	errType := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(tv.Type, errType)
}

// constFormat evaluates e as a constant string, following the typed
// constant value go/types computed (covers literals and named string
// constants alike).
func constFormat(p *Pass, e ast.Expr) (string, bool) {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
