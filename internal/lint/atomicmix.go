package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicMix flags struct fields that are accessed both through
// sync/atomic calls and through plain reads/writes — the exact bug
// class of PR 9's SetLimits race, where a field written under
// atomic.StorePointer was read bare elsewhere. Once any access to a
// field is atomic, every access must be: a plain load can observe a
// torn or stale value, and the race detector only catches the schedules
// it happens to see. (Fields of the atomic.Int64/Bool/Pointer wrapper
// types cannot mix by construction; this analyzer covers the legacy
// &x.f + atomic.AddInt64 style.)
var AtomicMix = &Analyzer{
	Name: "atomicmix",
	Doc:  "flag fields accessed both atomically and non-atomically",
	Run:  runAtomicMix,
}

// atomicArgFields finds every `&x.f` argument to a sync/atomic function
// in the file, returning the field objects so used and the selector
// nodes themselves (which are by definition legitimate accesses).
// Shared with guardedby, where an atomic access discharges the
// lock-held obligation.
func atomicArgFields(info *types.Info, f *ast.File) (fields map[*types.Var]token.Pos, sels map[*ast.SelectorExpr]bool) {
	fields = make(map[*types.Var]token.Pos)
	sels = make(map[*ast.SelectorExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := funcObj(info, call)
		if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
			return true
		}
		for _, arg := range call.Args {
			u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
			if !ok || u.Op != token.AND {
				continue
			}
			sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
			if !ok {
				continue
			}
			if v := fieldVarOf(info, sel); v != nil {
				if _, dup := fields[v]; !dup {
					fields[v] = sel.Pos()
				}
				sels[sel] = true
			}
		}
		return true
	})
	return fields, sels
}

// fieldVarOf resolves a selector to the struct field it denotes, or nil
// when the selector is a method, package member, or unresolvable.
func fieldVarOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}

func runAtomicMix(p *Pass) {
	// First pass: which fields does this package treat atomically, and
	// which selector nodes are the atomic accesses themselves.
	atomicFields := make(map[*types.Var]token.Pos)
	exempt := make(map[*ast.SelectorExpr]bool)
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		fields, sels := atomicArgFields(p.Info, f)
		for v, pos := range fields {
			if _, dup := atomicFields[v]; !dup {
				atomicFields[v] = pos
			}
		}
		for s := range sels {
			exempt[s] = true
		}
	}
	if len(atomicFields) == 0 {
		return
	}
	// Second pass: any other selector touching one of those fields is a
	// mixed access.
	for _, f := range p.Files {
		if isTestFile(p.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || exempt[sel] {
				return true
			}
			v := fieldVarOf(p.Info, sel)
			if v == nil {
				return true
			}
			first, isAtomic := atomicFields[v]
			if !isAtomic {
				return true
			}
			p.Reportf(sel.Pos(), "field %s is accessed with sync/atomic (first at %s); this plain access races with it",
				v.Name(), p.Fset.Position(first))
			return true
		})
	}
}
