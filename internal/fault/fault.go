// Package fault is a test-only fault injector for the engine's
// pre-statement hook (engine.SetExecHook): it arms exactly one failure —
// by SQL substring or by statement ordinal — and disarms after firing,
// so the kernel's failure-cleanup statements (which run after the fault)
// are not re-broken by the injector itself.
package fault

import (
	"errors"
	"strings"
	"sync"
)

// ErrInjected is the error an armed Injector returns from the hook.
var ErrInjected = errors.New("injected fault")

// Injector is one armed failure. The zero value is inert; arm it with
// FailOnMatch, FailNth or PanicNth. Safe for concurrent use.
type Injector struct {
	mu        sync.Mutex
	match     string // fail the first statement containing this substring
	nth       int    // fail the nth statement seen (1-based)
	panicMode bool   // panic instead of returning an error
	seen      int
	fired     bool
}

// New returns an inert Injector.
func New() *Injector { return &Injector{} }

// Hook adapts the injector to engine.SetExecHook.
func (in *Injector) Hook() func(sql string) error {
	return func(sql string) error { return in.check(sql) }
}

// FailOnMatch arms the injector: the first statement whose SQL contains
// substr fails with ErrInjected, then the injector disarms.
func (in *Injector) FailOnMatch(substr string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.match, in.nth, in.panicMode, in.seen, in.fired = substr, 0, false, 0, false
}

// FailNth arms the injector: the n-th statement (1-based, counted from
// arming) fails with ErrInjected, then the injector disarms.
func (in *Injector) FailNth(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.match, in.nth, in.panicMode, in.seen, in.fired = "", n, false, 0, false
}

// PanicNth arms the injector like FailNth but panics instead of
// returning an error, exercising the recover-to-error boundaries.
func (in *Injector) PanicNth(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.match, in.nth, in.panicMode, in.seen, in.fired = "", n, true, 0, false
}

// Fired reports whether the armed fault has gone off.
func (in *Injector) Fired() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Seen returns how many statements the hook has observed since arming.
func (in *Injector) Seen() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seen
}

// Reset disarms the injector.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.match, in.nth, in.panicMode, in.seen, in.fired = "", 0, false, 0, false
}

func (in *Injector) check(sql string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.fired {
		return nil
	}
	in.seen++
	hit := false
	switch {
	case in.match != "":
		hit = strings.Contains(sql, in.match)
	case in.nth > 0:
		hit = in.seen == in.nth
	}
	if !hit {
		return nil
	}
	in.fired = true
	if in.panicMode {
		panic("fault: injected panic")
	}
	return ErrInjected
}
