// Package fault is a test-only fault injector for the engine's
// pre-statement hook (engine.SetExecHook): it arms exactly one failure —
// by SQL substring or by statement ordinal — and disarms after firing,
// so the kernel's failure-cleanup statements (which run after the fault)
// are not re-broken by the injector itself.
package fault

import (
	"errors"
	"strings"
	"sync"
)

// ErrInjected is the error an armed Injector returns from the hook.
var ErrInjected = errors.New("injected fault")

// Injector is one armed failure. The zero value is inert; arm it with
// FailOnMatch, FailNth or PanicNth. Safe for concurrent use.
type Injector struct {
	mu        sync.Mutex
	match     string // guarded by mu; fail the first statement containing this substring
	nth       int    // guarded by mu; fail the nth statement seen (1-based)
	panicMode bool   // guarded by mu; panic instead of returning an error
	seen      int    // guarded by mu
	fired     bool   // guarded by mu
}

// New returns an inert Injector.
func New() *Injector { return &Injector{} }

// Hook adapts the injector to engine.SetExecHook.
func (in *Injector) Hook() func(sql string) error {
	return func(sql string) error { return in.check(sql) }
}

// FailOnMatch arms the injector: the first statement whose SQL contains
// substr fails with ErrInjected, then the injector disarms.
func (in *Injector) FailOnMatch(substr string) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.match, in.nth, in.panicMode, in.seen, in.fired = substr, 0, false, 0, false
}

// FailNth arms the injector: the n-th statement (1-based, counted from
// arming) fails with ErrInjected, then the injector disarms.
func (in *Injector) FailNth(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.match, in.nth, in.panicMode, in.seen, in.fired = "", n, false, 0, false
}

// PanicNth arms the injector like FailNth but panics instead of
// returning an error, exercising the recover-to-error boundaries.
func (in *Injector) PanicNth(n int) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.match, in.nth, in.panicMode, in.seen, in.fired = "", n, true, 0, false
}

// Fired reports whether the armed fault has gone off.
func (in *Injector) Fired() bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.fired
}

// Seen returns how many statements the hook has observed since arming.
func (in *Injector) Seen() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.seen
}

// Reset disarms the injector.
func (in *Injector) Reset() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.match, in.nth, in.panicMode, in.seen, in.fired = "", 0, false, 0, false
}

func (in *Injector) check(sql string) error {
	in.mu.Lock()
	defer in.mu.Unlock()
	if in.fired {
		return nil
	}
	in.seen++
	hit := false
	switch {
	case in.match != "":
		hit = strings.Contains(sql, in.match)
	case in.nth > 0:
		hit = in.seen == in.nth
	}
	if !hit {
		return nil
	}
	in.fired = true
	if in.panicMode {
		panic("fault: injected panic")
	}
	return ErrInjected
}

// ErrKilled is the error a tripped WriteGate returns: it stands in for
// the process dying mid-write, so callers treat it as unrecoverable.
var ErrKilled = errors.New("fault: simulated crash")

// WriteGate simulates a power cut at a chosen WAL frame write. Armed
// with KillNth, it lets n-1 frames through untouched, then delivers
// only the first keep bytes of frame n and returns ErrKilled — and
// unlike Injector it stays dead afterwards, failing every later write,
// because a crashed process does not come back mid-run. Plug the Hook
// into wal.Writer.WriteHook.
type WriteGate struct {
	mu    sync.Mutex
	nth   int  // guarded by mu; crash on this frame write (1-based); 0 = inert
	keep  int  // guarded by mu; bytes of the fatal frame that still reach the disk
	seen  int  // guarded by mu
	fired bool // guarded by mu
}

// NewWriteGate returns an inert gate: all writes pass through whole.
func NewWriteGate() *WriteGate { return &WriteGate{} }

// KillNth arms the gate: the n-th frame write (1-based, counted from
// arming) persists only its first keep bytes (clamped to the frame
// length) and fails with ErrKilled, as does everything after it.
func (g *WriteGate) KillNth(n, keep int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nth, g.keep, g.seen, g.fired = n, keep, 0, false
}

// Fired reports whether the simulated crash has happened.
func (g *WriteGate) Fired() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.fired
}

// Seen returns how many frame writes the gate has observed since arming.
func (g *WriteGate) Seen() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.seen
}

// Reset disarms the gate and revives the "process".
func (g *WriteGate) Reset() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.nth, g.keep, g.seen, g.fired = 0, 0, 0, false
}

// Hook adapts the gate to wal.Writer.WriteHook.
func (g *WriteGate) Hook() func(frame []byte) ([]byte, error) {
	return func(frame []byte) ([]byte, error) {
		g.mu.Lock()
		defer g.mu.Unlock()
		if g.fired {
			return nil, ErrKilled
		}
		if g.nth == 0 {
			return frame, nil
		}
		g.seen++
		if g.seen != g.nth {
			return frame, nil
		}
		g.fired = true
		keep := g.keep
		if keep > len(frame) {
			keep = len(frame)
		}
		return frame[:keep], ErrKilled
	}
}
