// Package postproc implements the paper's postprocessor (§4.4): it
// stores the core operator's encoded rules into the DBMS and decodes
// them, through the Bset/Hset dictionaries, into the user-readable
// normalized output tables <name>, <name>_Bodies and <name>_Heads.
package postproc

import (
	"context"
	"fmt"

	"minerule/internal/kernel/translator"
	"minerule/internal/mining"
	"minerule/internal/resource"
	"minerule/internal/sql/engine"
	"minerule/internal/sql/schema"
	"minerule/internal/sql/value"
)

// EmptyItemsetError reports a mined rule whose body or head carries no
// items. Such a rule must not be stored: interning the empty itemset
// would hand out an id with zero dictionary rows, and the Decode join
// over <name>_Bodies/<name>_Heads would then silently drop the rule
// from the user-readable tables. The core boundary rejects it instead.
type EmptyItemsetError struct {
	Rule int    // index of the offending rule in the core result
	Side string // "body" or "head"
}

func (e *EmptyItemsetError) Error() string {
	return fmt.Sprintf("postproc: rule %d has an empty %s; MINE RULE itemsets must be non-empty", e.Rule, e.Side)
}

// StoreEncoded writes the core operator's result into the encoded output
// tables (OutputRules, OutputBodies, OutputHeads) the preprocessor
// created. Bodies and heads are dictionary-compressed: identical
// itemsets across rules share one identifier, as §4.4's normalized form
// intends. Rows go through the storage layer directly — the paper's core
// operator likewise hands its result to the DBMS without re-parsing SQL.
// Rules with an empty body or head fail with *EmptyItemsetError before
// anything is written.
func StoreEncoded(ctx context.Context, db *engine.Database, tr *translator.Translation, rules []mining.Rule) error {
	if err := resource.Check(ctx); err != nil {
		return fmt.Errorf("postproc: %w", err)
	}
	n := tr.Names
	rulesT, ok := db.Catalog().Table(n.OutputRules)
	if !ok {
		return fmt.Errorf("postproc: missing %s (preprocessor not run?)", n.OutputRules)
	}
	bodiesT, ok := db.Catalog().Table(n.OutputBodies)
	if !ok {
		return fmt.Errorf("postproc: missing %s", n.OutputBodies)
	}
	headsT, ok := db.Catalog().Table(n.OutputHeads)
	if !ok {
		return fmt.Errorf("postproc: missing %s", n.OutputHeads)
	}

	bodyIDs := make(map[string]int64)
	headIDs := make(map[string]int64)
	var ruleRows, bodyRows, headRows []schema.Row

	intern := func(ids map[string]int64, items []mining.Item, rows *[]schema.Row) int64 {
		k := itemsKey(items)
		if id, ok := ids[k]; ok {
			return id
		}
		id := int64(len(ids) + 1)
		ids[k] = id
		for _, it := range items {
			*rows = append(*rows, schema.Row{value.NewInt(id), value.NewInt(int64(it))})
		}
		return id
	}

	for i, r := range rules {
		if len(r.Body) == 0 {
			return &EmptyItemsetError{Rule: i, Side: "body"}
		}
		if len(r.Head) == 0 {
			return &EmptyItemsetError{Rule: i, Side: "head"}
		}
		bid := intern(bodyIDs, r.Body, &bodyRows)
		hid := intern(headIDs, r.Head, &headRows)
		ruleRows = append(ruleRows, schema.Row{
			value.NewInt(bid),
			value.NewInt(hid),
			value.NewFloat(r.Support),
			value.NewFloat(r.Confidence),
		})
	}
	if err := rulesT.InsertAll(ruleRows); err != nil {
		return err
	}
	if err := bodiesT.InsertAll(bodyRows); err != nil {
		return err
	}
	return headsT.InsertAll(headRows)
}

func itemsKey(items []mining.Item) string {
	b := make([]byte, 0, len(items)*4)
	for _, it := range items {
		v := uint64(it)
		for v >= 0x80 {
			b = append(b, byte(v)|0x80)
			v >>= 7
		}
		b = append(b, byte(v))
	}
	return string(b)
}

// Decode runs the translator's decode programs, producing the
// user-readable output tables.
func Decode(ctx context.Context, db *engine.Database, tr *translator.Translation) error {
	for _, q := range tr.Program.Decode {
		if _, err := db.ExecContext(ctx, q); err != nil {
			return fmt.Errorf("postproc: %w", err)
		}
	}
	return nil
}
