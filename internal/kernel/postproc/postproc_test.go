package postproc

import (
	"context"
	"errors"
	"strings"
	"testing"

	"minerule/internal/kernel/preproc"
	"minerule/internal/kernel/translator"
	mrparse "minerule/internal/minerule/parse"
	"minerule/internal/mining"
	"minerule/internal/sql/engine"
)

func setup(t *testing.T) (*engine.Database, *translator.Translation) {
	t.Helper()
	db := engine.New()
	err := db.ExecScript(`
		CREATE TABLE P (gid INTEGER, item VARCHAR);
		INSERT INTO P VALUES (1, 'a'), (1, 'b'), (2, 'a'), (2, 'b'), (3, 'a');
	`)
	if err != nil {
		t.Fatal(err)
	}
	st, err := mrparse.Parse(`MINE RULE Out AS
		SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
		FROM P GROUP BY gid
		EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := translator.Translate(db, st)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := preproc.Run(context.Background(), db, tr); err != nil {
		t.Fatal(err)
	}
	return db, tr
}

// bidOf resolves an item name to its encoded Bid.
func bidOf(t *testing.T, db *engine.Database, tr *translator.Translation, item string) int64 {
	t.Helper()
	id, err := db.QueryInt("SELECT mr_bid FROM " + tr.Names.Bset + " WHERE item = '" + item + "'")
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestStoreAndDecode(t *testing.T) {
	db, tr := setup(t)
	a := mining.Item(bidOf(t, db, tr, "a"))
	bI := mining.Item(bidOf(t, db, tr, "b"))
	rules := []mining.Rule{
		{Body: []mining.Item{a}, Head: []mining.Item{bI}, Support: 2.0 / 3, Confidence: 2.0 / 3},
		{Body: []mining.Item{bI}, Head: []mining.Item{a}, Support: 2.0 / 3, Confidence: 1},
		// A rule sharing the body {a} with the first: the dictionary
		// must reuse the BodyId.
		{Body: []mining.Item{a}, Head: []mining.Item{a}, Support: 1, Confidence: 1},
	}
	if err := StoreEncoded(context.Background(), db, tr, rules); err != nil {
		t.Fatal(err)
	}
	n, _ := db.QueryInt("SELECT COUNT(*) FROM " + tr.Names.OutputRules)
	if n != 3 {
		t.Fatalf("OutputRules = %d", n)
	}
	// Two distinct bodies ({a}, {b}) despite three rules.
	n, _ = db.QueryInt("SELECT COUNT(DISTINCT BodyId) FROM " + tr.Names.OutputBodies)
	if n != 2 {
		t.Fatalf("distinct bodies = %d", n)
	}

	if err := Decode(context.Background(), db, tr); err != nil {
		t.Fatal(err)
	}
	res, err := db.Query("SELECT R.SUPPORT, B.item, H.item FROM Out R, Out_Bodies B, Out_Heads H WHERE R.BodyId = B.BodyId AND R.HeadId = H.HeadId ORDER BY 1, 2, 3")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("decoded rules = %d", len(res.Rows))
	}
	// The decoded join must reproduce item names, not ids.
	var names []string
	for _, r := range res.Rows {
		names = append(names, r[1].Str()+">"+r[2].Str())
	}
	got := strings.Join(names, ",")
	if got != "a>b,b>a,a>a" && got != "b>a,a>b,a>a" {
		t.Logf("decoded order: %s", got)
	}
	for _, n := range names {
		if strings.ContainsAny(n, "0123456789") {
			t.Errorf("decoded rule leaked an encoded id: %s", n)
		}
	}
}

func TestStoreWithoutPreprocFails(t *testing.T) {
	db := engine.New()
	if err := db.ExecScript("CREATE TABLE P (gid INTEGER, item VARCHAR); INSERT INTO P VALUES (1, 'a')"); err != nil {
		t.Fatal(err)
	}
	st, err := mrparse.Parse(`MINE RULE X AS
		SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD
		FROM P GROUP BY gid
		EXTRACTING RULES WITH SUPPORT: 0.5, CONFIDENCE: 0.5`)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := translator.Translate(db, st)
	if err != nil {
		t.Fatal(err)
	}
	if err := StoreEncoded(context.Background(), db, tr, nil); err == nil {
		t.Fatal("StoreEncoded without preprocessing must fail")
	}
}

func TestEmptyRuleSetStillDecodes(t *testing.T) {
	db, tr := setup(t)
	if err := StoreEncoded(context.Background(), db, tr, nil); err != nil {
		t.Fatal(err)
	}
	if err := Decode(context.Background(), db, tr); err != nil {
		t.Fatal(err)
	}
	n, err := db.QueryInt("SELECT COUNT(*) FROM Out")
	if err != nil || n != 0 {
		t.Fatalf("rules = %d (%v)", n, err)
	}
	// The _Bodies and _Heads tables exist and are empty.
	for _, tab := range []string{"Out_Bodies", "Out_Heads"} {
		n, err := db.QueryInt("SELECT COUNT(*) FROM " + tab)
		if err != nil || n != 0 {
			t.Errorf("%s = %d (%v)", tab, n, err)
		}
	}
}

// TestEmptyItemsetRejected is the regression test for the silent-drop
// bug: StoreEncoded used to intern an empty body/head as an id with
// zero dictionary rows, so the rule survived storage but vanished from
// the decoded output (the Decode join found no dictionary match). The
// core boundary must now reject it with a typed error — and write
// nothing, so a failed batch leaves the output tables untouched.
func TestEmptyItemsetRejected(t *testing.T) {
	db, tr := setup(t)
	a := mining.Item(bidOf(t, db, tr, "a"))

	for _, tc := range []struct {
		name string
		rule mining.Rule
		side string
	}{
		{"empty body", mining.Rule{Body: nil, Head: []mining.Item{a}, Support: 1, Confidence: 1}, "body"},
		{"empty head", mining.Rule{Body: []mining.Item{a}, Head: nil, Support: 1, Confidence: 1}, "head"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			good := mining.Rule{Body: []mining.Item{a}, Head: []mining.Item{a}, Support: 1, Confidence: 1}
			err := StoreEncoded(context.Background(), db, tr, []mining.Rule{good, tc.rule})
			if err == nil {
				t.Fatal("StoreEncoded accepted a rule with an empty itemset")
			}
			var ee *EmptyItemsetError
			if !errors.As(err, &ee) {
				t.Fatalf("error type = %T (%v), want *EmptyItemsetError", err, err)
			}
			if ee.Rule != 1 || ee.Side != tc.side {
				t.Errorf("error = %+v, want Rule=1 Side=%s", ee, tc.side)
			}
			// Nothing was stored — not even the valid rule in the batch.
			n, err2 := db.QueryInt("SELECT COUNT(*) FROM " + tr.Names.OutputRules)
			if err2 != nil || n != 0 {
				t.Errorf("OutputRules = %d (%v), want 0 after rejected batch", n, err2)
			}
		})
	}
}

func TestItemsKeyDistinguishesSplits(t *testing.T) {
	// Varint packing must not collide across different item splits.
	a := itemsKey([]mining.Item{1, 2})
	b := itemsKey([]mining.Item{1, 2, 3})
	c := itemsKey([]mining.Item{12})
	if a == b || a == c {
		t.Error("itemsKey collision")
	}
	if itemsKey([]mining.Item{300}) != itemsKey([]mining.Item{300}) {
		t.Error("itemsKey not deterministic")
	}
	if itemsKey([]mining.Item{1, 300}) == itemsKey([]mining.Item{301}) {
		t.Error("multibyte varint collision")
	}
}
