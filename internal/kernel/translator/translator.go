// Package translator implements the first kernel component of the
// paper's architecture (§4.1): it checks a MINE RULE statement against
// the data dictionary, classifies it through the boolean variables
// H, W, M, G, C, K, F and R, and produces the translation programs (SQL
// text) that drive the preprocessor and postprocessor, plus the
// directives that select the core-processing variant.
package translator

import (
	"fmt"
	"sort"
	"strings"

	"minerule/internal/minerule/ast"
	"minerule/internal/sql/engine"
	"minerule/internal/sql/parse"
	"minerule/internal/sql/schema"
	"minerule/internal/sql/value"
)

// Class holds the paper's classification variables (§4.1). The first
// five are orthogonal; K ⇒ C, F ⇒ K and R ⇒ G by construction.
type Class struct {
	H bool // body and head on different attributes
	W bool // source condition (or a join) present
	M bool // mining condition present
	G bool // group HAVING present
	C bool // CLUSTER BY present
	K bool // cluster HAVING present
	F bool // aggregates in the cluster HAVING
	R bool // aggregates in the group HAVING
}

// Simple reports whether the statement falls in the simple-association-
// rules class (Figure 3.b): same body/head attributes, no clusters, no
// mining condition.
func (c Class) Simple() bool { return !c.H && !c.C && !c.M }

// String renders the set of true variables, e.g. "{H,C,K}".
func (c Class) String() string {
	var on []string
	for _, v := range []struct {
		n string
		b bool
	}{{"H", c.H}, {"W", c.W}, {"M", c.M}, {"G", c.G}, {"C", c.C}, {"K", c.K}, {"F", c.F}, {"R", c.R}} {
		if v.b {
			on = append(on, v.n)
		}
	}
	return "{" + strings.Join(on, ",") + "}"
}

// Names fixes the identifiers of every working object a statement uses.
// All names are prefixed with the output-table name so that independent
// MINE RULE runs do not collide in the shared DBMS.
type Names struct {
	Prefix string

	Source          string // materialized (or viewed) source data (Q0)
	ValidGroupsView string // Q2
	ValidGroups     string // Q2
	GroupsInBody    string // Q3 temporary
	Bset            string // Q3
	GroupsInHead    string // Q5 temporary
	Hset            string // Q5
	Clusters        string // Q6
	ClusterCouples  string // Q7
	MiningSource    string // Q4b
	CodedSource     string // Q4 / Q11
	Elementary      string // Q8
	LargeRules      string // Q9
	InputRules      string // Q10
	OutputRules     string // core → postprocessor
	OutputBodies    string
	OutputHeads     string

	GidSeq    string
	BidSeq    string
	HidSeq    string
	CidSeq    string
	BodyIDSeq string
	HeadIDSeq string

	Meta string // preprocessing metadata for reuse (§3)

	Output      string // user-visible rule table
	OutputBodyT string // <output>_Bodies
	OutputHeadT string // <output>_Heads
}

func makeNames(output string) Names {
	p := "mr_" + strings.ToLower(output) + "_"
	return Names{
		Prefix:          p,
		Source:          p + "source",
		ValidGroupsView: p + "validgroupsview",
		ValidGroups:     p + "validgroups",
		GroupsInBody:    p + "groupsinbody",
		Bset:            p + "bset",
		GroupsInHead:    p + "groupsinhead",
		Hset:            p + "hset",
		Clusters:        p + "clusters",
		ClusterCouples:  p + "clustercouples",
		MiningSource:    p + "miningsource",
		CodedSource:     p + "codedsource",
		Elementary:      p + "elementaryrules",
		LargeRules:      p + "largerules",
		InputRules:      p + "inputrules",
		OutputRules:     p + "outputrules",
		OutputBodies:    p + "outputbodies",
		OutputHeads:     p + "outputheads",
		GidSeq:          p + "gidseq",
		BidSeq:          p + "bidseq",
		HidSeq:          p + "hidseq",
		CidSeq:          p + "cidseq",
		BodyIDSeq:       p + "bodyidseq",
		HeadIDSeq:       p + "headidseq",
		Meta:            p + "meta",
		Output:          output,
		OutputBodyT:     output + "_Bodies",
		OutputHeadT:     output + "_Heads",
	}
}

// clusterAgg is one aggregate occurring in the cluster condition; Q6
// computes it per cluster into the column Col.
type clusterAgg struct {
	Func string // COUNT, SUM, …
	Attr string // source attribute aggregated
	Col  string // column name in the Clusters table ("agg_0", …)
}

// Translation is the translator's full output: classification,
// directives, working names and the generated SQL programs.
type Translation struct {
	Stmt  *ast.Statement
	Class Class
	Names Names

	// NeededAttrs is the paper's <needed attr list>: every source
	// attribute the mining process touches, deduplicated, with types.
	NeededAttrs []schema.Column
	// MineAttrs are the attributes referenced by the mining condition.
	MineAttrs []string
	// ClusterAggs are the aggregates of the cluster condition (F).
	ClusterAggs []clusterAgg

	Program Program
}

// attrSet answers membership case-insensitively, matching SQL rules.
type attrSet map[string]bool

func newAttrSet(names []string) attrSet {
	s := make(attrSet, len(names))
	for _, n := range names {
		s[strings.ToLower(n)] = true
	}
	return s
}

func (s attrSet) has(n string) bool { return s[strings.ToLower(n)] }

// Translate checks and classifies the statement against db's data
// dictionary and generates the SQL programs.
func Translate(db *engine.Database, st *ast.Statement) (*Translation, error) {
	tr := &Translation{Stmt: st, Names: makeNames(st.Output)}

	srcSchema, err := sourceSchema(db, st)
	if err != nil {
		return nil, err
	}

	groupSet := newAttrSet(st.GroupAttrs)
	clusterSet := newAttrSet(st.ClusterAttrs)

	// Check 2: grouping and clustering attributes disjoint; body and
	// head schemas disjoint from both.
	for _, a := range st.ClusterAttrs {
		if groupSet.has(a) {
			return nil, fmt.Errorf("translator: attribute %q appears in both GROUP BY and CLUSTER BY", a)
		}
	}
	for _, role := range []struct {
		what  string
		attrs []string
	}{{"body", st.Body.Attrs}, {"head", st.Head.Attrs}} {
		for _, a := range role.attrs {
			if groupSet.has(a) || clusterSet.has(a) {
				return nil, fmt.Errorf("translator: %s attribute %q overlaps grouping or clustering attributes", role.what, a)
			}
		}
	}

	// Check 1: every attribute list resolves on the source schema. The
	// "mr_" namespace is reserved for the kernel's encoded columns; the
	// decode step additionally claims BodyId/HeadId (and SUPPORT/
	// CONFIDENCE when requested) in the output tables.
	resolveAll := func(what string, attrs []string) error {
		for _, a := range attrs {
			if strings.HasPrefix(strings.ToLower(a), "mr_") {
				return fmt.Errorf("translator: %s attribute %q: the mr_ prefix is reserved for encoded columns", what, a)
			}
			switch strings.ToLower(a) {
			case "bodyid", "headid", "support", "confidence":
				if what == "body" || what == "head" {
					return fmt.Errorf("translator: %s attribute %q collides with an output column name", what, a)
				}
			}
			if _, err := srcSchema.Resolve("", a); err != nil {
				return fmt.Errorf("translator: %s attribute %q: %v", what, a, err)
			}
		}
		return nil
	}
	for _, l := range []struct {
		what  string
		attrs []string
	}{
		{"body", st.Body.Attrs}, {"head", st.Head.Attrs},
		{"grouping", st.GroupAttrs}, {"clustering", st.ClusterAttrs},
	} {
		if err := resolveAll(l.what, l.attrs); err != nil {
			return nil, err
		}
	}

	// Classification (orthogonal variables).
	tr.Class.H = !sameAttrSet(st.Body.Attrs, st.Head.Attrs)
	tr.Class.W = st.SourceCond != nil || len(st.From) > 1
	tr.Class.M = st.MiningCond != nil
	tr.Class.G = st.GroupCond != nil
	tr.Class.C = len(st.ClusterAttrs) > 0
	tr.Class.K = st.ClusterCond != nil
	if tr.Class.K {
		tr.Class.F = parse.HasAggregate(st.ClusterCond)
	}
	if tr.Class.G {
		tr.Class.R = parse.HasAggregate(st.GroupCond)
	}

	// Check 3a: group HAVING refers only to grouping attributes (plain
	// references; aggregate arguments may touch any source attribute).
	var aggAttrs []string
	if tr.Class.G {
		attrs, err := checkGroupCond(st.GroupCond, groupSet, srcSchema)
		if err != nil {
			return nil, err
		}
		aggAttrs = append(aggAttrs, attrs...)
	}

	// Check 3b + F handling: cluster HAVING refers to BODY./HEAD.
	// qualified clustering attributes; its aggregates to any qualified
	// source attribute.
	if tr.Class.K {
		aggs, attrs, err := checkClusterCond(st.ClusterCond, clusterSet, srcSchema)
		if err != nil {
			return nil, err
		}
		tr.ClusterAggs = aggs
		aggAttrs = append(aggAttrs, attrs...)
	}

	// Check 4: mining condition refers (BODY/HEAD-qualified) to any
	// attribute except grouping and clustering ones.
	if tr.Class.M {
		mine, err := checkMiningCond(st.MiningCond, groupSet, clusterSet, srcSchema)
		if err != nil {
			return nil, err
		}
		tr.MineAttrs = mine
	}

	// The <needed attr list>: group, cluster, body, head, mining and
	// aggregate attributes, first occurrence wins.
	tr.NeededAttrs = neededAttrs(srcSchema,
		st.GroupAttrs, st.ClusterAttrs, st.Body.Attrs, st.Head.Attrs, tr.MineAttrs, aggAttrs)

	if err := tr.generate(); err != nil {
		return nil, err
	}
	// Every generated program must pass the engine's own prepare-time
	// semantic analysis before anything executes (paper Figure 3.a: the
	// translator consults the data dictionary, not the data).
	if err := tr.selfCheckCached(db.Catalog()); err != nil {
		return nil, err
	}
	return tr, nil
}

// sourceSchema joins the FROM tables' schemas, applying aliases, exactly
// as the engine would for the FROM list.
func sourceSchema(db *engine.Database, st *ast.Statement) (*schema.Schema, error) {
	if len(st.From) == 0 {
		return nil, fmt.Errorf("translator: empty FROM list")
	}
	var joined *schema.Schema
	for _, tref := range st.From {
		t, ok := db.Catalog().Table(tref.Name)
		var s *schema.Schema
		if ok {
			s = t.Schema()
		} else if v, vok := db.Catalog().View(tref.Name); vok {
			// Derive the view schema by planning an empty query on it.
			res, err := db.Query("SELECT * FROM " + v.Name + " WHERE 1 = 0")
			if err != nil {
				return nil, fmt.Errorf("translator: view %s: %w", v.Name, err)
			}
			s = res.Schema
		} else {
			return nil, fmt.Errorf("translator: unknown table %q in FROM", tref.Name)
		}
		qual := tref.Alias
		if qual == "" {
			qual = tref.Name
		}
		s = s.WithQualifier(qual)
		if joined == nil {
			joined = s
		} else {
			joined = joined.Append(s)
		}
	}
	return joined, nil
}

func sameAttrSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	as := newAttrSet(a)
	for _, x := range b {
		if !as.has(x) {
			return false
		}
	}
	return true
}

// checkGroupCond validates the group HAVING and returns the attributes
// its aggregates touch.
func checkGroupCond(cond parse.Expr, groupSet attrSet, src *schema.Schema) ([]string, error) {
	var aggAttrs []string
	var fail error
	parse.WalkExprs(cond, func(e parse.Expr) bool {
		switch x := e.(type) {
		case *parse.FuncCall:
			if !x.IsAggregate() {
				return true
			}
			for _, a := range x.Args {
				cr, ok := a.(*parse.ColumnRef)
				if !ok {
					fail = fmt.Errorf("translator: group HAVING aggregate arguments must be plain attributes")
					return false
				}
				if _, err := src.Resolve("", cr.Name); err != nil {
					fail = fmt.Errorf("translator: group HAVING: %v", err)
					return false
				}
				aggAttrs = append(aggAttrs, cr.Name)
			}
			return false // don't re-visit args as plain refs
		case *parse.ColumnRef:
			if x.Qual != "" {
				fail = fmt.Errorf("translator: group HAVING must not qualify attributes (%s)", x.SQL())
				return false
			}
			if !groupSet.has(x.Name) {
				fail = fmt.Errorf("translator: group HAVING may refer only to grouping attributes, got %q", x.Name)
				return false
			}
		case *parse.ScalarSubquery, *parse.InSubquery, *parse.ExistsExpr:
			fail = fmt.Errorf("translator: subqueries are not allowed in the group HAVING")
			return false
		}
		return true
	})
	return aggAttrs, fail
}

// checkClusterCond validates the cluster HAVING, collecting its
// aggregates (F) and the source attributes they touch. Plain references
// must be BODY.<cluster attr> or HEAD.<cluster attr>; aggregate
// arguments must be BODY/HEAD-qualified source attributes.
func checkClusterCond(cond parse.Expr, clusterSet attrSet, src *schema.Schema) ([]clusterAgg, []string, error) {
	var (
		aggs     []clusterAgg
		aggAttrs []string
		fail     error
	)
	seen := make(map[string]string) // "SUM(price)" → column
	parse.WalkExprs(cond, func(e parse.Expr) bool {
		switch x := e.(type) {
		case *parse.FuncCall:
			if !x.IsAggregate() {
				return true
			}
			if x.Star {
				fail = fmt.Errorf("translator: COUNT(*) in the cluster HAVING is ambiguous; aggregate a BODY or HEAD attribute")
				return false
			}
			if len(x.Args) != 1 {
				fail = fmt.Errorf("translator: cluster HAVING aggregates take one argument")
				return false
			}
			cr, ok := x.Args[0].(*parse.ColumnRef)
			if !ok || !roleQual(cr.Qual) {
				fail = fmt.Errorf("translator: cluster HAVING aggregate arguments must be BODY.x or HEAD.x")
				return false
			}
			if _, err := src.Resolve("", cr.Name); err != nil {
				fail = fmt.Errorf("translator: cluster HAVING: %v", err)
				return false
			}
			key := x.Name + "(" + strings.ToLower(cr.Name) + ")"
			if _, dup := seen[key]; !dup {
				col := fmt.Sprintf("mr_agg_%d", len(aggs))
				seen[key] = col
				aggs = append(aggs, clusterAgg{Func: x.Name, Attr: cr.Name, Col: col})
				aggAttrs = append(aggAttrs, cr.Name)
			}
			return false
		case *parse.ColumnRef:
			if !roleQual(x.Qual) {
				fail = fmt.Errorf("translator: cluster HAVING references must be BODY.x or HEAD.x, got %q", x.SQL())
				return false
			}
			if !clusterSet.has(x.Name) {
				fail = fmt.Errorf("translator: cluster HAVING may refer only to clustering attributes, got %q", x.Name)
				return false
			}
		case *parse.ScalarSubquery, *parse.InSubquery, *parse.ExistsExpr:
			fail = fmt.Errorf("translator: subqueries are not allowed in the cluster HAVING")
			return false
		}
		return true
	})
	return aggs, aggAttrs, fail
}

// checkMiningCond validates the mining condition and returns the
// distinct source attributes it references (the <mine attr list>).
func checkMiningCond(cond parse.Expr, groupSet, clusterSet attrSet, src *schema.Schema) ([]string, error) {
	var (
		mine []string
		fail error
	)
	seen := make(attrSet)
	parse.WalkExprs(cond, func(e parse.Expr) bool {
		switch x := e.(type) {
		case *parse.FuncCall:
			if x.IsAggregate() {
				fail = fmt.Errorf("translator: aggregates are not allowed in the mining condition")
				return false
			}
		case *parse.ScalarSubquery, *parse.InSubquery, *parse.ExistsExpr:
			fail = fmt.Errorf("translator: subqueries are not allowed in the mining condition")
			return false
		case *parse.ColumnRef:
			if !roleQual(x.Qual) {
				fail = fmt.Errorf("translator: mining condition references must be BODY.x or HEAD.x, got %q", x.SQL())
				return false
			}
			if groupSet.has(x.Name) || clusterSet.has(x.Name) {
				fail = fmt.Errorf("translator: mining condition must not reference grouping or clustering attribute %q", x.Name)
				return false
			}
			if _, err := src.Resolve("", x.Name); err != nil {
				fail = fmt.Errorf("translator: mining condition: %v", err)
				return false
			}
			if !seen.has(x.Name) {
				seen[strings.ToLower(x.Name)] = true
				mine = append(mine, x.Name)
			}
		}
		return true
	})
	return mine, fail
}

func roleQual(q string) bool {
	return strings.EqualFold(q, "body") || strings.EqualFold(q, "head")
}

// neededAttrs deduplicates the attribute lists (first occurrence wins)
// and attaches the source types.
func neededAttrs(src *schema.Schema, lists ...[]string) []schema.Column {
	var out []schema.Column
	seen := make(attrSet)
	for _, l := range lists {
		for _, a := range l {
			if seen.has(a) {
				continue
			}
			seen[strings.ToLower(a)] = true
			idx, err := src.Resolve("", a)
			if err != nil {
				continue // validated earlier
			}
			c := src.Col(idx)
			out = append(out, schema.Column{Name: c.Name, Type: c.Type})
		}
	}
	return out
}

// attrType looks a needed attribute's type up.
func (tr *Translation) attrType(name string) value.Type {
	for _, c := range tr.NeededAttrs {
		if strings.EqualFold(c.Name, name) {
			return c.Type
		}
	}
	return value.TypeString
}

// sortedLower returns the lower-cased, sorted copy of names (used for
// deterministic diagnostics).
func sortedLower(names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = strings.ToLower(n)
	}
	sort.Strings(out)
	return out
}

// Fingerprint identifies the preprocessing a statement needs,
// independent of its thresholds: two statements with the same
// fingerprint share encoded tables (paper §3's preprocessing reuse).
// The support threshold is excluded because the encoded tables built at
// a support s remain valid for any support ≥ s (the large-item and
// large-elementary-rule filters only get more selective); the caller
// checks that side condition against the stored metadata.
func (tr *Translation) Fingerprint() string {
	st := *tr.Stmt // shallow copy; SQL() does not mutate
	st.MinSupport = 0
	st.MinConfidence = 0
	return tr.Class.String() + "|" + st.SQL()
}
