package translator

import (
	"fmt"
	"strings"

	"minerule/internal/sql/value"
)

// MinGroupsPlaceholder is the host-variable-style placeholder the paper
// writes as ":mingroups". The preprocessor substitutes the computed
// minimum group count (⌈support·totg⌉) before running the query.
const MinGroupsPlaceholder = ":mingroups"

// Program is the set of SQL translation programs (paper Figure 4 and
// Appendix A). Each field is a sequence of statements executed in order;
// empty sequences mean the classification switched the step off.
type Program struct {
	// Cleanup drops every working object a previous run of the same
	// statement may have left (errors are ignored by the preprocessor).
	Cleanup []string
	// Q0: materialize (W) or view (¬W) the source data.
	Q0 []string
	// Q1: the total-group count query (the paper's SELECT … INTO :totg).
	Q1 string
	// Q2: group selection and encoding.
	Q2 []string
	// Q3: body item encoding (uses MinGroupsPlaceholder).
	Q3 []string
	// Q5: head item encoding, when H (uses MinGroupsPlaceholder).
	Q5 []string
	// Q6: cluster encoding, when C.
	Q6 []string
	// Q7: valid cluster pair selection, when K.
	Q7 []string
	// Q4: CodedSource (simple) or MiningSource+CodedSource view
	// (general; the paper's Q4b and Q11).
	Q4 []string
	// Q8, Q9, Q10: elementary rules, their supports, and the pruned
	// InputRules, when M (Q10 uses MinGroupsPlaceholder).
	Q8  []string
	Q9  []string
	Q10 []string
	// OutputSetup creates the encoded output tables the core operator
	// fills (OutputRules/OutputBodies/OutputHeads, §4.4).
	OutputSetup []string
	// Decode are the postprocessor queries producing the user-readable
	// output tables.
	Decode []string
}

// Steps returns the preprocessing statements in execution order with
// their paper names, for tracing.
func (p *Program) Steps() []struct {
	Name string
	SQL  string
} {
	var out []struct {
		Name string
		SQL  string
	}
	add := func(name string, sqls []string) {
		for _, s := range sqls {
			out = append(out, struct {
				Name string
				SQL  string
			}{name, s})
		}
	}
	add("Q0", p.Q0)
	add("Q2", p.Q2)
	add("Q3", p.Q3)
	add("Q5", p.Q5)
	add("Q6", p.Q6)
	add("Q7", p.Q7)
	add("Q4", p.Q4)
	add("Q8", p.Q8)
	add("Q9", p.Q9)
	add("Q10", p.Q10)
	add("output", p.OutputSetup)
	return out
}

// generate fills tr.Program from the checked, classified statement.
func (tr *Translation) generate() error {
	st, n, cl := tr.Stmt, tr.Names, tr.Class
	p := &tr.Program

	list := func(attrs []string) string { return strings.Join(attrs, ", ") }
	qlist := func(alias string, attrs []string) string {
		parts := make([]string, len(attrs))
		for i, a := range attrs {
			parts[i] = alias + "." + a
		}
		return strings.Join(parts, ", ")
	}
	typed := func(attrs []string) string {
		parts := make([]string, len(attrs))
		for i, a := range attrs {
			parts[i] = a + " " + typeName(tr.attrType(a))
		}
		return strings.Join(parts, ", ")
	}
	joinOn := func(a, b string, attrs []string) string {
		parts := make([]string, len(attrs))
		for i, at := range attrs {
			parts[i] = fmt.Sprintf("%s.%s = %s.%s", a, at, b, at)
		}
		return strings.Join(parts, " AND ")
	}

	neededNames := make([]string, len(tr.NeededAttrs))
	for i, c := range tr.NeededAttrs {
		neededNames[i] = c.Name
	}

	// ---- Cleanup --------------------------------------------------------
	for _, t := range []string{
		n.ValidGroups, n.GroupsInBody, n.Bset, n.GroupsInHead, n.Hset,
		n.Clusters, n.ClusterCouples, n.MiningSource, n.CodedSource,
		n.Elementary, n.LargeRules, n.InputRules, n.OutputRules,
		n.OutputBodies, n.OutputHeads, n.Meta, n.Source,
	} {
		p.Cleanup = append(p.Cleanup, "DROP TABLE "+t)
	}
	for _, v := range []string{n.ValidGroupsView, n.CodedSource, n.Source} {
		p.Cleanup = append(p.Cleanup, "DROP VIEW "+v)
	}
	for _, s := range []string{n.GidSeq, n.BidSeq, n.HidSeq, n.CidSeq} {
		p.Cleanup = append(p.Cleanup, "DROP SEQUENCE "+s)
	}

	// ---- Q0: Source -----------------------------------------------------
	fromList := make([]string, len(st.From))
	for i, t := range st.From {
		fromList[i] = t.Name
		if t.Alias != "" {
			fromList[i] += " AS " + t.Alias
		}
	}
	if cl.W {
		p.Q0 = append(p.Q0,
			fmt.Sprintf("CREATE TABLE %s (%s)", n.Source, typed(neededNames)))
		q := fmt.Sprintf("INSERT INTO %s (SELECT %s FROM %s",
			n.Source, list(neededNames), strings.Join(fromList, ", "))
		if st.SourceCond != nil {
			q += " WHERE " + st.SourceCond.SQL()
		}
		q += ")"
		p.Q0 = append(p.Q0, q)
	} else {
		// The paper skips Q0 when W is false; a non-materialized view
		// keeps the downstream programs uniform at zero copy cost.
		p.Q0 = append(p.Q0,
			fmt.Sprintf("CREATE VIEW %s AS SELECT %s FROM %s",
				n.Source, list(neededNames), fromList[0]))
	}

	// ---- Q1: total groups ------------------------------------------------
	p.Q1 = fmt.Sprintf("SELECT COUNT(*) FROM (SELECT DISTINCT %s FROM %s)",
		list(st.GroupAttrs), n.Source)

	// ---- Q2: group selection and encoding --------------------------------
	p.Q2 = append(p.Q2, "CREATE SEQUENCE "+n.GidSeq)
	q2v := fmt.Sprintf("CREATE VIEW %s AS SELECT %s FROM %s GROUP BY %s",
		n.ValidGroupsView, list(st.GroupAttrs), n.Source, list(st.GroupAttrs))
	if cl.G {
		q2v += " HAVING " + st.GroupCond.SQL()
	}
	p.Q2 = append(p.Q2, q2v,
		fmt.Sprintf("CREATE TABLE %s (mr_gid INTEGER, %s)", n.ValidGroups, typed(st.GroupAttrs)),
		fmt.Sprintf("INSERT INTO %s (SELECT %s.NEXTVAL AS mr_gid, V.* FROM %s AS V)",
			n.ValidGroups, n.GidSeq, n.ValidGroupsView))

	// ---- Q3 / Q5: item encoding ------------------------------------------
	encodeItems := func(attrs []string, groupsT, set, seq, idCol string) []string {
		return []string{
			fmt.Sprintf("CREATE TABLE %s (%s, mr_gid INTEGER)", groupsT, typed(attrs)),
			fmt.Sprintf("INSERT INTO %s (SELECT DISTINCT %s, V.mr_gid FROM %s S, %s V WHERE %s)",
				groupsT, qlist("S", attrs), n.Source, n.ValidGroups,
				joinOn("S", "V", st.GroupAttrs)),
			"CREATE SEQUENCE " + seq,
			fmt.Sprintf("CREATE TABLE %s (%s INTEGER, %s, mr_gcount INTEGER)", set, idCol, typed(attrs)),
			fmt.Sprintf("INSERT INTO %s (SELECT %s.NEXTVAL AS %s, %s, COUNT(*) AS mr_gcount FROM %s GROUP BY %s HAVING COUNT(*) >= %s)",
				set, seq, idCol, list(attrs), groupsT, list(attrs), MinGroupsPlaceholder),
		}
	}
	p.Q3 = encodeItems(st.Body.Attrs, n.GroupsInBody, n.Bset, n.BidSeq, "mr_bid")
	if cl.H {
		p.Q5 = encodeItems(st.Head.Attrs, n.GroupsInHead, n.Hset, n.HidSeq, "mr_hid")
	}

	// ---- Q6: cluster encoding --------------------------------------------
	if cl.C {
		cols := fmt.Sprintf("mr_cid INTEGER, mr_gid INTEGER, %s", typed(st.ClusterAttrs))
		inner := fmt.Sprintf("SELECT V.mr_gid AS mr_gid, %s", qlist("S", st.ClusterAttrs))
		for _, a := range tr.ClusterAggs {
			cols += fmt.Sprintf(", %s %s", a.Col, aggColType(a, tr))
			inner += fmt.Sprintf(", %s(S.%s) AS %s", a.Func, a.Attr, a.Col)
		}
		inner += fmt.Sprintf(" FROM %s S, %s V WHERE %s GROUP BY V.mr_gid, %s",
			n.Source, n.ValidGroups, joinOn("S", "V", st.GroupAttrs), qlist("S", st.ClusterAttrs))
		p.Q6 = append(p.Q6,
			"CREATE SEQUENCE "+n.CidSeq,
			fmt.Sprintf("CREATE TABLE %s (%s)", n.Clusters, cols),
			fmt.Sprintf("INSERT INTO %s (SELECT %s.NEXTVAL AS mr_cid, T.* FROM (%s) AS T)",
				n.Clusters, n.CidSeq, inner))
	}

	// ---- Q7: valid cluster pairs -----------------------------------------
	if cl.K {
		cond, err := tr.rewriteClusterCond(st.ClusterCond, "b", "h")
		if err != nil {
			return err
		}
		p.Q7 = append(p.Q7,
			fmt.Sprintf("CREATE TABLE %s (mr_gid INTEGER, mr_bcid INTEGER, mr_hcid INTEGER)", n.ClusterCouples),
			fmt.Sprintf("INSERT INTO %s (SELECT b.mr_gid, b.mr_cid AS mr_bcid, h.mr_cid AS mr_hcid FROM %s b, %s h WHERE b.mr_gid = h.mr_gid AND %s)",
				n.ClusterCouples, n.Clusters, n.Clusters, cond.SQL()))
	}

	// ---- Q4: CodedSource / MiningSource -----------------------------------
	groupJoin := joinOn("S", "V", st.GroupAttrs)
	bodyJoin := joinOn("S", "B", st.Body.Attrs)
	if cl.Simple() {
		p.Q4 = append(p.Q4,
			fmt.Sprintf("CREATE TABLE %s (mr_gid INTEGER, mr_bid INTEGER)", n.CodedSource),
			fmt.Sprintf("INSERT INTO %s (SELECT DISTINCT V.mr_gid, B.mr_bid FROM %s S, %s V, %s B WHERE %s AND %s)",
				n.CodedSource, n.Source, n.ValidGroups, n.Bset, groupJoin, bodyJoin))
	} else {
		// Q4b: MiningSource carries (mr_gid[, mr_cid], mr_bid[, mr_hid][, mine attrs]).
		cols := "mr_gid INTEGER"
		sel := "V.mr_gid"
		var clusterJoin string
		if cl.C {
			cols += ", mr_cid INTEGER"
			sel += ", C.mr_cid"
			clusterJoin = " AND C.mr_gid = V.mr_gid AND " + joinOn("S", "C", st.ClusterAttrs)
		}
		cols += ", mr_bid INTEGER"
		if cl.H {
			cols += ", mr_hid INTEGER"
		}
		mineSel := ""
		if cl.M {
			cols += ", " + typed(tr.MineAttrs)
			mineSel = ", " + qlist("S", tr.MineAttrs)
		}
		p.Q4 = append(p.Q4, fmt.Sprintf("CREATE TABLE %s (%s)", n.MiningSource, cols))

		fromClusters := ""
		if cl.C {
			fromClusters = ", " + n.Clusters + " C"
		}
		if !cl.H {
			p.Q4 = append(p.Q4, fmt.Sprintf(
				"INSERT INTO %s (SELECT DISTINCT %s, B.mr_bid%s FROM %s S, %s V, %s B%s WHERE %s AND %s%s)",
				n.MiningSource, sel, mineSel, n.Source, n.ValidGroups, n.Bset,
				fromClusters, groupJoin, bodyJoin, clusterJoin))
		} else {
			headJoin := joinOn("S", "HS", st.Head.Attrs)
			p.Q4 = append(p.Q4,
				fmt.Sprintf("INSERT INTO %s (SELECT DISTINCT %s, B.mr_bid, NULL%s FROM %s S, %s V, %s B%s WHERE %s AND %s%s)",
					n.MiningSource, sel, mineSel, n.Source, n.ValidGroups, n.Bset,
					fromClusters, groupJoin, bodyJoin, clusterJoin),
				fmt.Sprintf("INSERT INTO %s (SELECT DISTINCT %s, NULL, HS.mr_hid%s FROM %s S, %s V, %s HS%s WHERE %s AND %s%s)",
					n.MiningSource, sel, mineSel, n.Source, n.ValidGroups, n.Hset,
					fromClusters, groupJoin, headJoin, clusterJoin))
		}

		// Q11: CodedSource hides the mining attributes from the core.
		coded := "mr_gid"
		if cl.C {
			coded += ", mr_cid"
		}
		coded += ", mr_bid"
		if cl.H {
			coded += ", mr_hid"
		}
		p.Q4 = append(p.Q4, fmt.Sprintf("CREATE VIEW %s AS SELECT %s FROM %s",
			n.CodedSource, coded, n.MiningSource))
	}

	// ---- Q8/Q9/Q10: elementary rules under the mining condition -----------
	if cl.M {
		cond := tr.rewriteRoles(st.MiningCond, "b", "h")
		hidCol := "mr_bid"
		if cl.H {
			hidCol = "mr_hid"
		}
		cols := "mr_gid INTEGER"
		sel := "b.mr_gid"
		if cl.C {
			cols += ", mr_bcid INTEGER, mr_hcid INTEGER"
			sel += ", b.mr_cid AS mr_bcid, h.mr_cid AS mr_hcid"
		}
		cols += ", mr_bid INTEGER, mr_hid INTEGER"
		sel += fmt.Sprintf(", b.mr_bid, h.%s AS mr_hid", hidCol)

		where := "b.mr_gid = h.mr_gid"
		from := fmt.Sprintf("%s b, %s h", n.MiningSource, n.MiningSource)
		if cl.H {
			where += " AND b.mr_bid IS NOT NULL AND h.mr_hid IS NOT NULL"
		} else {
			where += " AND b.mr_bid <> h.mr_bid"
		}
		if cl.K {
			from += ", " + n.ClusterCouples + " cc"
			where += " AND cc.mr_gid = b.mr_gid AND cc.mr_bcid = b.mr_cid AND cc.mr_hcid = h.mr_cid"
		}
		where += " AND " + cond.SQL()

		p.Q8 = append(p.Q8,
			fmt.Sprintf("CREATE TABLE %s (%s)", n.Elementary, cols),
			fmt.Sprintf("INSERT INTO %s (SELECT DISTINCT %s FROM %s WHERE %s)",
				n.Elementary, sel, from, where))

		p.Q9 = append(p.Q9,
			fmt.Sprintf("CREATE TABLE %s (mr_bid INTEGER, mr_hid INTEGER, mr_scount INTEGER)", n.LargeRules),
			fmt.Sprintf("INSERT INTO %s (SELECT mr_bid, mr_hid, COUNT(DISTINCT mr_gid) AS mr_scount FROM %s GROUP BY mr_bid, mr_hid)",
				n.LargeRules, n.Elementary))

		esel := "e.mr_gid"
		if cl.C {
			esel += ", e.mr_bcid, e.mr_hcid"
		}
		esel += ", e.mr_bid, e.mr_hid"
		p.Q10 = append(p.Q10,
			fmt.Sprintf("CREATE TABLE %s (%s)", n.InputRules, cols),
			fmt.Sprintf("INSERT INTO %s (SELECT %s FROM %s e, %s l WHERE e.mr_bid = l.mr_bid AND e.mr_hid = l.mr_hid AND l.mr_scount >= %s)",
				n.InputRules, esel, n.Elementary, n.LargeRules, MinGroupsPlaceholder))
	}

	// ---- Encoded output tables (§4.4) --------------------------------------
	p.OutputSetup = append(p.OutputSetup,
		fmt.Sprintf("CREATE TABLE %s (BodyId INTEGER, HeadId INTEGER, support FLOAT, confidence FLOAT)", n.OutputRules),
		fmt.Sprintf("CREATE TABLE %s (BodyId INTEGER, mr_bid INTEGER)", n.OutputBodies),
		fmt.Sprintf("CREATE TABLE %s (HeadId INTEGER, mr_hid INTEGER)", n.OutputHeads))

	// ---- Postprocessor: decode into the user-readable tables ---------------
	outCols := "BodyId INTEGER, HeadId INTEGER"
	outSel := "BodyId, HeadId"
	if st.WantSupport {
		outCols += ", SUPPORT FLOAT"
		outSel += ", support"
	}
	if st.WantConfidence {
		outCols += ", CONFIDENCE FLOAT"
		outSel += ", confidence"
	}
	p.Decode = append(p.Decode,
		fmt.Sprintf("CREATE TABLE %s (%s)", n.Output, outCols),
		fmt.Sprintf("INSERT INTO %s (SELECT %s FROM %s)", n.Output, outSel, n.OutputRules),
		fmt.Sprintf("CREATE TABLE %s (BodyId INTEGER, %s)", n.OutputBodyT, typed(st.Body.Attrs)),
		fmt.Sprintf("INSERT INTO %s (SELECT O.BodyId, %s FROM %s O, %s B WHERE O.mr_bid = B.mr_bid)",
			n.OutputBodyT, qlist("B", st.Body.Attrs), n.OutputBodies, n.Bset))
	headSet, headID := n.Bset, "mr_bid"
	if cl.H {
		headSet, headID = n.Hset, "mr_hid"
	}
	p.Decode = append(p.Decode,
		fmt.Sprintf("CREATE TABLE %s (HeadId INTEGER, %s)", n.OutputHeadT, typed(st.Head.Attrs)),
		fmt.Sprintf("INSERT INTO %s (SELECT O.HeadId, %s FROM %s O, %s HS WHERE O.mr_hid = HS.%s)",
			n.OutputHeadT, qlist("HS", st.Head.Attrs), n.OutputHeads, headSet, headID))

	return nil
}

func typeName(t value.Type) string {
	switch t {
	case value.TypeInt:
		return "INTEGER"
	case value.TypeFloat:
		return "FLOAT"
	case value.TypeDate:
		return "DATE"
	case value.TypeBool:
		return "BOOLEAN"
	default:
		return "VARCHAR"
	}
}

// aggColType picks the column type Q6 stores a cluster aggregate into.
func aggColType(a clusterAgg, tr *Translation) string {
	switch a.Func {
	case "COUNT":
		return "INTEGER"
	case "AVG":
		return "FLOAT"
	case "SUM":
		if tr.attrType(a.Attr) == value.TypeInt {
			return "INTEGER"
		}
		return "FLOAT"
	default: // MIN, MAX preserve the attribute type
		return typeName(tr.attrType(a.Attr))
	}
}
