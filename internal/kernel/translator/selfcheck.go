package translator

import (
	"fmt"
	"strings"
	"sync"

	"minerule/internal/sql/parse"
	"minerule/internal/sql/semck"
	"minerule/internal/sql/storage"
)

// SelfCheckError reports a generated SQL statement that failed the
// prepare-time semantic check, identifying the translation step it
// belongs to. Seeing one means the translator produced a program the
// engine would reject — a translator bug, caught before any row moves.
type SelfCheckError struct {
	Step string // paper step name: Q0 … Q10, output, decode
	SQL  string // the offending statement (placeholders substituted)
	Err  error  // the underlying diagnostic (*semck.Error or parse error)
}

func (e *SelfCheckError) Error() string {
	return fmt.Sprintf("translator: self-check failed at %s: %v\n  in: %s", e.Step, e.Err, e.SQL)
}

func (e *SelfCheckError) Unwrap() error { return e.Err }

// selfCheckMemo records programs (by full text) that have already
// passed the self-check. The program text embeds everything the check
// consults — table and attribute names, schema-derived column types —
// so a byte-identical program is identical to semck, and re-proving the
// translator's self-consistency per translation would only repeat work:
// repeated mining of one statement re-generates the same text, and the
// engine's statement cache still semantically checks every statement
// against the live catalog before execution. Failures are never cached
// (they are terminal, and may depend on transient catalog state such as
// a name collision with a user table). The map is cleared when it grows
// past a bound a real workload never reaches.
var selfCheckMemo struct {
	mu sync.Mutex
	m  map[string]bool // guarded by mu
}

const selfCheckMemoLimit = 256

// programKey concatenates every generated statement in check order; two
// translations with identical programs are interchangeable to semck.
func (tr *Translation) programKey() string {
	p := &tr.Program
	var b strings.Builder
	for _, sqls := range [][]string{
		p.Cleanup, p.Q0, {p.Q1}, p.Q2, p.Q3, p.Q5, p.Q6, p.Q7,
		p.Q4, p.Q8, p.Q9, p.Q10, p.OutputSetup, p.Decode,
	} {
		for _, q := range sqls {
			b.WriteString(q)
			b.WriteByte(0)
		}
	}
	return b.String()
}

// selfCheckCached runs SelfCheck through the memo.
func (tr *Translation) selfCheckCached(cat *storage.Catalog) error {
	key := tr.programKey()
	sc := &selfCheckMemo
	sc.mu.Lock()
	passed := sc.m[key]
	sc.mu.Unlock()
	if passed {
		return nil
	}

	if err := tr.SelfCheck(semck.FromStorage(cat)); err != nil {
		return err
	}

	sc.mu.Lock()
	if sc.m == nil || len(sc.m) >= selfCheckMemoLimit {
		sc.m = make(map[string]bool)
	}
	sc.m[key] = true
	sc.mu.Unlock()
	return nil
}

// SelfCheck validates every generated statement against the data
// dictionary in the order the kernel executes them, threading DDL
// effects through an overlay so each statement sees the tables,
// sequences and views its predecessors create. The support placeholder
// is substituted with a neutral literal — thresholds change values, not
// names or types. Cleanup (and the core's output-table replacement) is
// simulated tolerantly, mirroring how the preprocessor ignores drop
// errors on a first run.
func (tr *Translation) SelfCheck(base semck.Catalog) error {
	ov := semck.NewOverlay(base)

	tolerantDrop := func(sqls []string) {
		for _, q := range sqls {
			st, err := parse.Parse(q)
			if err != nil {
				continue
			}
			if semck.Check(ov, st, q) == nil {
				ov.Apply(st)
			}
		}
	}
	tolerantDrop(tr.Program.Cleanup)
	n := tr.Names
	tolerantDrop([]string{
		"DROP TABLE " + n.Output,
		"DROP TABLE " + n.OutputBodyT,
		"DROP TABLE " + n.OutputHeadT,
	})

	check := func(step string, sqls []string) error {
		for _, q := range sqls {
			src := strings.ReplaceAll(q, MinGroupsPlaceholder, "1")
			st, err := parse.Parse(src)
			if err != nil {
				return &SelfCheckError{Step: step, SQL: src, Err: err}
			}
			if cerr := semck.Check(ov, st, src); cerr != nil {
				return &SelfCheckError{Step: step, SQL: src, Err: cerr}
			}
			ov.Apply(st)
		}
		return nil
	}

	p := &tr.Program
	for _, s := range []struct {
		name string
		sqls []string
	}{
		{"Q0", p.Q0},
		{"Q1", []string{p.Q1}},
		{"Q2", p.Q2},
		{"Q3", p.Q3},
		{"Q5", p.Q5},
		{"Q6", p.Q6},
		{"Q7", p.Q7},
		{"Q4", p.Q4},
		{"Q8", p.Q8},
		{"Q9", p.Q9},
		{"Q10", p.Q10},
		{"output", p.OutputSetup},
		{"decode", p.Decode},
	} {
		if err := check(s.name, s.sqls); err != nil {
			return err
		}
	}
	return nil
}
