package translator

import (
	"strings"
	"testing"

	mrparse "minerule/internal/minerule/parse"
	"minerule/internal/sql/engine"
	sqlparse "minerule/internal/sql/parse"
)

func newDB(t *testing.T) *engine.Database {
	t.Helper()
	db := engine.New()
	err := db.ExecScript(`
		CREATE TABLE Purchase (tr INTEGER, cust VARCHAR, item VARCHAR, dt DATE, price FLOAT, qty INTEGER);
		CREATE TABLE Products (pitem VARCHAR, category VARCHAR);
	`)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func translate(t *testing.T, db *engine.Database, stmt string) *Translation {
	t.Helper()
	st, err := mrparse.Parse(stmt)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := Translate(db, st)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

const simpleStmt = `MINE RULE S AS SELECT DISTINCT 1..n item AS BODY, 1..1 item AS HEAD, SUPPORT, CONFIDENCE
	FROM Purchase GROUP BY cust EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.2`

const generalStmt = `MINE RULE G AS SELECT DISTINCT 1..n item AS BODY, 1..n item AS HEAD, SUPPORT, CONFIDENCE
	WHERE BODY.price >= 100 AND HEAD.price < 100
	FROM Purchase WHERE dt BETWEEN DATE '1995-01-01' AND DATE '1995-12-31'
	GROUP BY cust HAVING COUNT(*) > 2
	CLUSTER BY dt HAVING BODY.dt < HEAD.dt AND SUM(BODY.price) > 50
	EXTRACTING RULES WITH SUPPORT: 0.2, CONFIDENCE: 0.3`

func TestClassificationSimple(t *testing.T) {
	tr := translate(t, newDB(t), simpleStmt)
	c := tr.Class
	if c.H || c.W || c.M || c.G || c.C || c.K || c.F || c.R {
		t.Errorf("classification = %s, want all false", c)
	}
	if !c.Simple() {
		t.Error("Simple() = false")
	}
}

func TestClassificationGeneral(t *testing.T) {
	tr := translate(t, newDB(t), generalStmt)
	c := tr.Class
	if c.H {
		t.Error("H must be false (same attribute)")
	}
	for name, v := range map[string]bool{
		"W": c.W, "M": c.M, "G": c.G, "C": c.C, "K": c.K, "F": c.F, "R": c.R,
	} {
		if !v {
			t.Errorf("%s must be true: %s", name, c)
		}
	}
	if c.Simple() {
		t.Error("Simple() = true for a general statement")
	}
	if got := c.String(); got != "{W,M,G,C,K,F,R}" {
		t.Errorf("String() = %s", got)
	}
}

func TestClassDependencies(t *testing.T) {
	// K ⇒ C and F ⇒ K and R ⇒ G by construction: check the parser and
	// translator never produce violating combinations.
	db := newDB(t)
	tr := translate(t, db, `MINE RULE D AS SELECT DISTINCT item AS BODY, item AS HEAD
		FROM Purchase GROUP BY cust CLUSTER BY dt
		EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1`)
	if !tr.Class.C || tr.Class.K || tr.Class.F {
		t.Errorf("got %s", tr.Class)
	}
}

func TestNeededAttrs(t *testing.T) {
	tr := translate(t, newDB(t), generalStmt)
	var names []string
	for _, c := range tr.NeededAttrs {
		names = append(names, strings.ToLower(c.Name))
	}
	// group (cust), cluster (dt), body (item), head (item → dup),
	// mining (price), cluster aggregates (price → dup).
	want := "cust,dt,item,price"
	if got := strings.Join(names, ","); got != want {
		t.Errorf("needed attrs = %s, want %s", got, want)
	}
}

func TestMineAttrs(t *testing.T) {
	tr := translate(t, newDB(t), generalStmt)
	if len(tr.MineAttrs) != 1 || !strings.EqualFold(tr.MineAttrs[0], "price") {
		t.Errorf("mine attrs = %v", tr.MineAttrs)
	}
}

func TestClusterAggregates(t *testing.T) {
	tr := translate(t, newDB(t), generalStmt)
	if len(tr.ClusterAggs) != 1 {
		t.Fatalf("cluster aggs = %v", tr.ClusterAggs)
	}
	a := tr.ClusterAggs[0]
	if a.Func != "SUM" || !strings.EqualFold(a.Attr, "price") || a.Col != "mr_agg_0" {
		t.Errorf("agg = %+v", a)
	}
	// Q6 must compute the aggregate, Q7 must reference its column.
	q6 := strings.Join(tr.Program.Q6, "\n")
	if !strings.Contains(q6, "SUM(S.price) AS mr_agg_0") {
		t.Errorf("Q6 missing aggregate:\n%s", q6)
	}
	q7 := strings.Join(tr.Program.Q7, "\n")
	if !strings.Contains(q7, "b.mr_agg_0") {
		t.Errorf("Q7 missing rewritten aggregate:\n%s", q7)
	}
}

func TestProgramShapeSimple(t *testing.T) {
	tr := translate(t, newDB(t), simpleStmt)
	p := tr.Program
	if len(p.Q5)+len(p.Q6)+len(p.Q7)+len(p.Q8)+len(p.Q9)+len(p.Q10) != 0 {
		t.Error("simple statements must not generate general-path queries")
	}
	// W false: Source is a view, not a copy.
	if !strings.HasPrefix(p.Q0[0], "CREATE VIEW") {
		t.Errorf("Q0 = %v", p.Q0)
	}
	if !strings.Contains(p.Q1, "COUNT(*)") || !strings.Contains(p.Q1, "DISTINCT cust") {
		t.Errorf("Q1 = %s", p.Q1)
	}
	// Q3's large filter uses the placeholder.
	q3 := strings.Join(p.Q3, "\n")
	if !strings.Contains(q3, MinGroupsPlaceholder) {
		t.Errorf("Q3 misses %s:\n%s", MinGroupsPlaceholder, q3)
	}
	// CodedSource is a table here.
	q4 := strings.Join(p.Q4, "\n")
	if !strings.Contains(q4, "CREATE TABLE mr_s_codedsource") {
		t.Errorf("Q4 = %s", q4)
	}
}

func TestProgramShapeGeneral(t *testing.T) {
	tr := translate(t, newDB(t), generalStmt)
	p := tr.Program
	if len(p.Q6) == 0 || len(p.Q7) == 0 || len(p.Q8) == 0 || len(p.Q9) == 0 || len(p.Q10) == 0 {
		t.Fatal("general-path queries missing")
	}
	// W true: Source is materialized with the source condition.
	q0 := strings.Join(p.Q0, "\n")
	if !strings.Contains(q0, "CREATE TABLE mr_g_source") || !strings.Contains(q0, "BETWEEN") {
		t.Errorf("Q0 = %s", q0)
	}
	// Group HAVING flows into the ValidGroupsView.
	q2 := strings.Join(p.Q2, "\n")
	if !strings.Contains(q2, "HAVING") {
		t.Errorf("Q2 misses HAVING: %s", q2)
	}
	// The mining condition is rewritten onto the b/h self-join.
	q8 := strings.Join(p.Q8, "\n")
	if !strings.Contains(q8, "b.price") || !strings.Contains(q8, "h.price") {
		t.Errorf("Q8 = %s", q8)
	}
	if strings.Contains(q8, "BODY.") || strings.Contains(q8, "HEAD.") {
		t.Errorf("Q8 leaked role qualifiers: %s", q8)
	}
	// CodedSource is a view hiding mining attributes.
	q4 := strings.Join(p.Q4, "\n")
	if !strings.Contains(q4, "CREATE VIEW mr_g_codedsource") {
		t.Errorf("Q4/Q11 = %s", q4)
	}
	if !strings.Contains(q4, "price") {
		t.Error("MiningSource must carry the mining attribute")
	}
	coded := ""
	for _, q := range p.Q4 {
		if strings.HasPrefix(q, "CREATE VIEW") {
			coded = q
		}
	}
	if strings.Contains(coded, "price") {
		t.Errorf("CodedSource must hide mining attributes: %s", coded)
	}
}

func TestProgramHeterogeneous(t *testing.T) {
	tr := translate(t, newDB(t), `MINE RULE X AS
		SELECT DISTINCT 1..1 item AS BODY, 1..1 category AS HEAD
		FROM Purchase, Products WHERE Purchase.item = Products.pitem
		GROUP BY cust
		EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1`)
	if !tr.Class.H {
		t.Fatalf("H = false: %s", tr.Class)
	}
	if len(tr.Program.Q5) == 0 {
		t.Fatal("Q5 (head encoding) missing")
	}
	q5 := strings.Join(tr.Program.Q5, "\n")
	if !strings.Contains(q5, "mr_x_hset") || !strings.Contains(q5, "mr_hid") {
		t.Errorf("Q5 = %s", q5)
	}
	// Two role inserts into MiningSource.
	inserts := 0
	for _, q := range tr.Program.Q4 {
		if strings.HasPrefix(q, "INSERT INTO mr_x_miningsource") {
			inserts++
		}
	}
	if inserts != 2 {
		t.Errorf("MiningSource inserts = %d, want 2 (body and head roles)", inserts)
	}
	// Decode must join heads against Hset.
	dec := strings.Join(tr.Program.Decode, "\n")
	if !strings.Contains(dec, "mr_x_hset") {
		t.Errorf("decode must use Hset: %s", dec)
	}
}

func TestStepsOrdering(t *testing.T) {
	tr := translate(t, newDB(t), generalStmt)
	steps := tr.Program.Steps()
	var order []string
	last := ""
	for _, s := range steps {
		if s.Name != last {
			order = append(order, s.Name)
			last = s.Name
		}
	}
	want := "Q0,Q2,Q3,Q6,Q7,Q4,Q8,Q9,Q10,output"
	if got := strings.Join(order, ","); got != want {
		t.Errorf("step order = %s, want %s", got, want)
	}
}

func TestGeneratedSQLParses(t *testing.T) {
	// Every generated statement must be valid in the engine's dialect —
	// the portability claim, checked syntactically.
	db := newDB(t)
	for _, stmt := range []string{simpleStmt, generalStmt} {
		tr := translate(t, db, stmt)
		all := append([]string{}, tr.Program.Cleanup...)
		for _, s := range tr.Program.Steps() {
			all = append(all, s.SQL)
		}
		all = append(all, tr.Program.Q1)
		all = append(all, tr.Program.Decode...)
		for _, q := range all {
			q = strings.ReplaceAll(q, MinGroupsPlaceholder, "1")
			if err := parseCheck(q); err != nil {
				t.Errorf("generated SQL does not parse: %v\n  %s", err, q)
			}
		}
	}
}

func parseCheck(q string) error {
	_, err := sqlparse.Parse(q)
	return err
}

func TestSemanticErrors(t *testing.T) {
	db := newDB(t)
	bad := map[string]string{
		"cluster cond plain ref not cluster attr": `MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD
			FROM Purchase GROUP BY cust CLUSTER BY dt HAVING BODY.price < HEAD.price
			EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1`,
		"cluster cond unqualified": `MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD
			FROM Purchase GROUP BY cust CLUSTER BY dt HAVING dt > DATE '1995-01-01'
			EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1`,
		"cluster cond COUNT(*)": `MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD
			FROM Purchase GROUP BY cust CLUSTER BY dt HAVING COUNT(*) > 2
			EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1`,
		"mining cond aggregate": `MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD
			WHERE SUM(BODY.price) > 10 FROM Purchase GROUP BY cust
			EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1`,
		"mining cond cluster attr": `MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD
			WHERE BODY.dt < HEAD.dt FROM Purchase GROUP BY cust CLUSTER BY dt
			EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1`,
		"group cond qualified": `MINE RULE R AS SELECT DISTINCT item AS BODY, item AS HEAD
			FROM Purchase GROUP BY cust HAVING BODY.cust = 'x'
			EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1`,
		"head overlaps cluster": `MINE RULE R AS SELECT DISTINCT item AS BODY, dt AS HEAD
			FROM Purchase GROUP BY cust CLUSTER BY dt
			EXTRACTING RULES WITH SUPPORT: 0.1, CONFIDENCE: 0.1`,
	}
	for name, stmt := range bad {
		st, err := mrparse.Parse(stmt)
		if err != nil {
			t.Errorf("%s: parse failed early: %v", name, err)
			continue
		}
		if _, err := Translate(db, st); err == nil {
			t.Errorf("%s: Translate should fail", name)
		}
	}
}
