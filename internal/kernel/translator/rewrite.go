package translator

import (
	"fmt"
	"strings"

	"minerule/internal/sql/parse"
)

// rewrite rebuilds an expression tree, replacing column references and
// aggregate calls through the supplied hooks. A nil hook leaves the node
// class untouched. The input tree is not modified.
func rewrite(e parse.Expr, refFn func(*parse.ColumnRef) parse.Expr, aggFn func(*parse.FuncCall) parse.Expr) parse.Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *parse.ColumnRef:
		if refFn != nil {
			return refFn(x)
		}
		return x
	case *parse.Literal:
		return x
	case *parse.BinaryExpr:
		return &parse.BinaryExpr{Op: x.Op,
			L: rewrite(x.L, refFn, aggFn),
			R: rewrite(x.R, refFn, aggFn)}
	case *parse.NotExpr:
		return &parse.NotExpr{E: rewrite(x.E, refFn, aggFn)}
	case *parse.NegExpr:
		return &parse.NegExpr{E: rewrite(x.E, refFn, aggFn)}
	case *parse.BetweenExpr:
		return &parse.BetweenExpr{Not: x.Not,
			E:  rewrite(x.E, refFn, aggFn),
			Lo: rewrite(x.Lo, refFn, aggFn),
			Hi: rewrite(x.Hi, refFn, aggFn)}
	case *parse.InListExpr:
		list := make([]parse.Expr, len(x.List))
		for i, le := range x.List {
			list[i] = rewrite(le, refFn, aggFn)
		}
		return &parse.InListExpr{Not: x.Not, E: rewrite(x.E, refFn, aggFn), List: list}
	case *parse.IsNullExpr:
		return &parse.IsNullExpr{Not: x.Not, E: rewrite(x.E, refFn, aggFn)}
	case *parse.LikeExpr:
		return &parse.LikeExpr{Not: x.Not,
			E:       rewrite(x.E, refFn, aggFn),
			Pattern: rewrite(x.Pattern, refFn, aggFn)}
	case *parse.FuncCall:
		if x.IsAggregate() && aggFn != nil {
			return aggFn(x)
		}
		args := make([]parse.Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = rewrite(a, refFn, aggFn)
		}
		return &parse.FuncCall{Name: x.Name, Star: x.Star, Distinct: x.Distinct, Args: args}
	default:
		// Subqueries are rejected by the checks before rewriting.
		return x
	}
}

// rewriteRoles maps BODY.x / HEAD.x references onto the bodyAlias /
// headAlias relations (used for the mining condition over MiningSource
// and the plain part of the cluster condition over Clusters).
func (tr *Translation) rewriteRoles(e parse.Expr, bodyAlias, headAlias string) parse.Expr {
	refFn := func(c *parse.ColumnRef) parse.Expr {
		switch {
		case strings.EqualFold(c.Qual, "body"):
			return &parse.ColumnRef{Qual: bodyAlias, Name: c.Name}
		case strings.EqualFold(c.Qual, "head"):
			return &parse.ColumnRef{Qual: headAlias, Name: c.Name}
		default:
			return c
		}
	}
	return rewrite(e, refFn, nil)
}

// rewriteClusterCond maps the cluster condition onto the self-join of
// the Clusters table: plain BODY./HEAD. references become b./h. cluster
// attributes, aggregates become the per-cluster columns Q6 computed.
func (tr *Translation) rewriteClusterCond(e parse.Expr, bodyAlias, headAlias string) (parse.Expr, error) {
	var fail error
	aggFn := func(f *parse.FuncCall) parse.Expr {
		cr, ok := f.Args[0].(*parse.ColumnRef)
		if !ok {
			fail = fmt.Errorf("translator: internal: unchecked cluster aggregate %s", f.SQL())
			return f
		}
		col := ""
		for _, a := range tr.ClusterAggs {
			if a.Func == f.Name && strings.EqualFold(a.Attr, cr.Name) {
				col = a.Col
				break
			}
		}
		if col == "" {
			fail = fmt.Errorf("translator: internal: unregistered cluster aggregate %s", f.SQL())
			return f
		}
		alias := bodyAlias
		if strings.EqualFold(cr.Qual, "head") {
			alias = headAlias
		}
		return &parse.ColumnRef{Qual: alias, Name: col}
	}
	refFn := func(c *parse.ColumnRef) parse.Expr {
		switch {
		case strings.EqualFold(c.Qual, "body"):
			return &parse.ColumnRef{Qual: bodyAlias, Name: c.Name}
		case strings.EqualFold(c.Qual, "head"):
			return &parse.ColumnRef{Qual: headAlias, Name: c.Name}
		default:
			return c
		}
	}
	out := rewrite(e, refFn, aggFn)
	return out, fail
}
