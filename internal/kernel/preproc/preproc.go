// Package preproc implements the paper's preprocessor (§4.2): it runs
// the translator-generated SQL programs against the relational server,
// producing the encoded tables (ValidGroups, Bset/Hset, Clusters,
// ClusterCouples, CodedSource/MiningSource, InputRules) that are the
// core operator's only view of the data.
package preproc

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"minerule/internal/kernel/translator"
	"minerule/internal/mining"
	"minerule/internal/resource"
	"minerule/internal/sql/engine"
)

// Result reports what the preprocessing computed.
type Result struct {
	// Totg is the paper's :totg — the total number of groups (Q1).
	Totg int
	// MinGroups is the substituted :mingroups value (⌈support·totg⌉).
	MinGroups int
	// StepDurations records how long each Q-step took, in execution
	// order, for the phase-split experiments.
	StepDurations []StepDuration
}

// StepDuration is one preprocessing step's wall time, with the number
// of SQL statements it executed and the rows they wrote.
type StepDuration struct {
	Name     string
	Duration time.Duration
	Stmts    int
	Rows     int
}

// Run executes the full preprocessing for the translation, checking the
// context between Q-steps so a cancellation lands at the next step
// boundary (and, via the executor's own polling, inside long steps).
// Cleanup errors (objects that do not exist yet) are ignored; everything
// else is fatal.
func Run(ctx context.Context, db *engine.Database, tr *translator.Translation) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	p := &tr.Program
	for _, drop := range p.Cleanup {
		_, _ = db.Exec(drop) // first run: nothing to drop
	}

	res := &Result{}
	step := func(name string, sqls []string) error {
		if len(sqls) == 0 {
			return nil
		}
		if err := resource.Check(ctx); err != nil {
			return fmt.Errorf("preproc: step %s: %w", name, err)
		}
		start := time.Now()
		rows := 0
		for _, q := range sqls {
			q = strings.ReplaceAll(q, translator.MinGroupsPlaceholder, strconv.Itoa(res.MinGroups))
			r, err := db.ExecContext(ctx, q)
			if err != nil {
				return fmt.Errorf("preproc: step %s: %w", name, err)
			}
			rows += r.RowsAffected
		}
		res.StepDurations = append(res.StepDurations, StepDuration{
			Name: name, Duration: time.Since(start), Stmts: len(sqls), Rows: rows,
		})
		return nil
	}

	if err := step("Q0", p.Q0); err != nil {
		return nil, err
	}

	// Q1: the paper's SELECT COUNT(*) INTO :totg.
	if err := resource.Check(ctx); err != nil {
		return nil, fmt.Errorf("preproc: step Q1: %w", err)
	}
	start := time.Now()
	totg, err := db.QueryIntContext(ctx, p.Q1)
	if err != nil {
		return nil, fmt.Errorf("preproc: step Q1: %w", err)
	}
	res.Totg = int(totg)
	res.MinGroups = mining.MinCount(tr.Stmt.MinSupport, res.Totg)
	res.StepDurations = append(res.StepDurations, StepDuration{Name: "Q1", Duration: time.Since(start), Stmts: 1})

	for _, s := range []struct {
		name string
		sqls []string
	}{
		{"Q2", p.Q2},
		{"Q3", p.Q3},
		{"Q5", p.Q5},
		{"Q6", p.Q6},
		{"Q7", p.Q7},
		{"Q4", p.Q4},
		{"Q8", p.Q8},
		{"Q9", p.Q9},
		{"Q10", p.Q10},
		{"output", p.OutputSetup},
	} {
		if err := step(s.name, s.sqls); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// WriteMeta records the preprocessing fingerprint and parameters so a
// later run of an equivalent statement can reuse the encoded tables
// (paper §3). Call it after a successful Run when the tables are kept.
func WriteMeta(db *engine.Database, tr *translator.Translation, res *Result) error {
	n := tr.Names.Meta
	_, _ = db.Exec("DROP TABLE " + n)
	if _, err := db.Exec(fmt.Sprintf(
		"CREATE TABLE %s (fp VARCHAR, totg INTEGER, minsupport FLOAT)", n)); err != nil {
		return err
	}
	fp := strings.ReplaceAll(tr.Fingerprint(), "'", "''")
	_, err := db.Exec(fmt.Sprintf("INSERT INTO %s VALUES ('%s', %d, %g)",
		n, fp, res.Totg, tr.Stmt.MinSupport))
	return err
}

// TryReuse checks whether a previous KeepEncoded run left compatible
// encoded tables behind: same fingerprint, and a stored support no
// higher than the current one (the encoded tables were pruned at the
// stored support, so they contain everything a stricter threshold
// needs). On success it recreates only the encoded output tables and
// returns a Result without running any Q-step.
func TryReuse(db *engine.Database, tr *translator.Translation) (*Result, bool) {
	n := tr.Names
	if _, ok := db.Catalog().Table(n.Meta); !ok {
		return nil, false
	}
	rows, err := db.Query("SELECT fp, totg, minsupport FROM " + n.Meta)
	if err != nil || len(rows.Rows) != 1 {
		return nil, false
	}
	row := rows.Rows[0]
	if row[0].Str() != tr.Fingerprint() {
		return nil, false
	}
	storedSupport := row[2].Float()
	if tr.Stmt.MinSupport < storedSupport {
		return nil, false // the kept tables were pruned too aggressively
	}
	// The core's input tables must still exist.
	needed := []string{n.CodedSource}
	if !tr.Class.Simple() {
		needed = append(needed, n.MiningSource) // CodedSource is a view over it
	}
	if tr.Class.K {
		needed = append(needed, n.ClusterCouples)
	}
	if tr.Class.M {
		needed = append(needed, n.InputRules)
	}
	for _, t := range needed {
		if !db.Catalog().Exists(t) {
			return nil, false
		}
	}
	// Fresh encoded output tables for this run.
	for _, t := range []string{n.OutputRules, n.OutputBodies, n.OutputHeads} {
		_, _ = db.Exec("DROP TABLE " + t)
	}
	res := &Result{Totg: int(row[1].Int())}
	res.MinGroups = mining.MinCount(tr.Stmt.MinSupport, res.Totg)
	for _, q := range tr.Program.OutputSetup {
		if _, err := db.Exec(q); err != nil {
			return nil, false
		}
	}
	res.StepDurations = append(res.StepDurations, StepDuration{Name: "reused", Duration: 0})
	return res, true
}

// Drop removes every working object of the translation from the
// database (used by the kernel after a successful run unless the caller
// asked to keep the encoded tables for reuse — §3's observation that
// "the same preprocessing could be in common to the execution of several
// data mining queries").
func Drop(db *engine.Database, tr *translator.Translation) {
	for _, drop := range tr.Program.Cleanup {
		_, _ = db.Exec(drop)
	}
}
